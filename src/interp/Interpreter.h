//===- interp/Interpreter.h - Functional Alpha interpreter ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional Alpha interpreter: the reference V-ISA semantics. The
/// co-designed VM runs it during the interpret/profile stage (paper Section
/// 3.1) and every translated-code backend is validated against it.
///
/// step() reports everything the profiler and superblock recorder need:
/// the decoded instruction, control-flow outcome, and memory address. Traps
/// (memory faults, GENTRAP, illegal instructions) are reported precisely —
/// architected state is left exactly as of the trapping instruction.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_INTERP_INTERPRETER_H
#define ILDP_INTERP_INTERPRETER_H

#include "alpha/AlphaInst.h"
#include "interp/ArchState.h"
#include "mem/GuestMemory.h"

#include <cstdint>
#include <unordered_map>

namespace ildp {

/// Why execution stopped or what a step produced.
enum class StepStatus : uint8_t {
  Ok,      ///< Instruction retired normally.
  Halted,  ///< CALL_PAL HALT retired; program finished.
  Trapped, ///< The instruction raised a precise trap.
};

/// Precise trap descriptor.
enum class TrapKind : uint8_t {
  None,
  MemUnmapped,  ///< Load/store to an unmapped page.
  MemUnaligned, ///< Misaligned load/store.
  FetchFault,   ///< Instruction fetch failed.
  IllegalInst,  ///< Undecodable instruction word.
  Gentrap,      ///< CALL_PAL GENTRAP.
};

struct Trap {
  TrapKind Kind = TrapKind::None;
  uint64_t Pc = 0;      ///< V-ISA address of the trapping instruction.
  uint64_t MemAddr = 0; ///< Faulting address for memory traps.
};

/// Canonical trap for a failed guest memory access. BadSize means the
/// instruction asked for an impossible access width — an illegal
/// encoding, not a memory-management fault.
inline TrapKind trapKindForMemFault(MemFaultKind Fault) {
  switch (Fault) {
  case MemFaultKind::Unmapped:
    return TrapKind::MemUnmapped;
  case MemFaultKind::Unaligned:
    return TrapKind::MemUnaligned;
  default:
    return TrapKind::IllegalInst;
  }
}

/// Everything one retired (or trapped) instruction did.
struct StepInfo {
  StepStatus Status = StepStatus::Ok;
  uint64_t Pc = 0;
  alpha::AlphaInst Inst;
  uint64_t NextPc = 0;   ///< Actual successor PC (valid when Status==Ok).
  bool IsControl = false;
  bool Taken = false;    ///< For control transfers: was it taken?
  uint64_t MemAddr = 0;  ///< Effective address for loads/stores.
  Trap TrapInfo;
};

/// Functional Alpha interpreter over a GuestMemory image.
class Interpreter {
public:
  explicit Interpreter(GuestMemory &Mem) : Mem(Mem) {}

  ArchState &state() { return State; }
  const ArchState &state() const { return State; }
  GuestMemory &memory() { return Mem; }

  /// Executes one instruction at State.Pc. On StepStatus::Ok, State.Pc has
  /// advanced to the successor. On Trapped, architected state (including
  /// Pc) is left at the trapping instruction.
  StepInfo step();

  /// Runs until HALT, a trap, or \p MaxSteps instructions.
  /// Returns the last StepInfo (Status Ok means MaxSteps was hit).
  StepInfo run(uint64_t MaxSteps);

  /// Number of instructions retired by this interpreter so far.
  uint64_t retiredCount() const { return Retired; }

  /// Decodes the instruction at \p Addr via the decode cache (shared with
  /// the superblock recorder so decode work is not repeated).
  const alpha::AlphaInst *decodeAt(uint64_t Addr);

private:
  GuestMemory &Mem;
  ArchState State;
  uint64_t Retired = 0;
  std::unordered_map<uint64_t, alpha::AlphaInst> DecodeCache;
};

} // namespace ildp

#endif // ILDP_INTERP_INTERPRETER_H
