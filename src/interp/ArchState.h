//===- interp/ArchState.h - Architected Alpha register state --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architected (V-ISA visible) state of the guest: the 32 integer
/// registers and the program counter. The precise-trap machinery
/// reconstructs exactly this structure, and the equivalence tests compare
/// instances of it between the interpreter and the translated-code
/// executor.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_INTERP_ARCHSTATE_H
#define ILDP_INTERP_ARCHSTATE_H

#include "alpha/AlphaIsa.h"

#include <array>
#include <cstdint>

namespace ildp {

/// Architected Alpha integer state. R31 is hardwired to zero.
struct ArchState {
  std::array<uint64_t, alpha::NumGprs> Gpr{};
  uint64_t Pc = 0;

  uint64_t readGpr(unsigned Reg) const {
    return Reg == alpha::RegZero ? 0 : Gpr[Reg];
  }

  void writeGpr(unsigned Reg, uint64_t Value) {
    if (Reg != alpha::RegZero)
      Gpr[Reg] = Value;
  }

  bool operator==(const ArchState &) const = default;
};

} // namespace ildp

#endif // ILDP_INTERP_ARCHSTATE_H
