//===- interp/Interpreter.cpp - Functional Alpha interpreter --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "alpha/Decoder.h"
#include "alpha/Semantics.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

const AlphaInst *Interpreter::decodeAt(uint64_t Addr) {
  auto It = DecodeCache.find(Addr);
  if (It != DecodeCache.end())
    return &It->second;
  MemAccessResult Fetch = Mem.fetch32(Addr);
  if (!Fetch.ok())
    return nullptr;
  AlphaInst Inst = decode(uint32_t(Fetch.Value));
  return &DecodeCache.emplace(Addr, Inst).first->second;
}

StepInfo Interpreter::step() {
  StepInfo Info;
  Info.Pc = State.Pc;

  const AlphaInst *InstPtr = decodeAt(State.Pc);
  if (!InstPtr) {
    Info.Status = StepStatus::Trapped;
    Info.TrapInfo = {TrapKind::FetchFault, State.Pc, State.Pc};
    return Info;
  }
  const AlphaInst &Inst = *InstPtr;
  Info.Inst = Inst;
  if (!Inst.valid()) {
    Info.Status = StepStatus::Trapped;
    Info.TrapInfo = {TrapKind::IllegalInst, State.Pc, 0};
    return Info;
  }

  const OpInfo &OpI = Inst.info();
  uint64_t NextPc = State.Pc + InstBytes;

  switch (OpI.Kind) {
  case InstKind::IntOp: {
    uint64_t A, B;
    if (OpI.Form == Format::Mem) {
      // LDA/LDAH: base + displacement.
      A = State.readGpr(Inst.Rb);
      B = uint64_t(int64_t(Inst.Disp));
      State.writeGpr(Inst.Ra, evalIntOp(Inst.Op, A, B));
    } else {
      A = State.readGpr(Inst.Ra);
      B = Inst.HasLit ? Inst.Lit : State.readGpr(Inst.Rb);
      State.writeGpr(Inst.Rc, evalIntOp(Inst.Op, A, B));
    }
    break;
  }
  case InstKind::Mul: {
    uint64_t A = State.readGpr(Inst.Ra);
    uint64_t B = Inst.HasLit ? Inst.Lit : State.readGpr(Inst.Rb);
    State.writeGpr(Inst.Rc, evalIntOp(Inst.Op, A, B));
    break;
  }
  case InstKind::CondMove: {
    uint64_t A = State.readGpr(Inst.Ra);
    uint64_t B = Inst.HasLit ? Inst.Lit : State.readGpr(Inst.Rb);
    if (evalCmovCond(Inst.Op, A))
      State.writeGpr(Inst.Rc, B);
    break;
  }
  case InstKind::Load: {
    uint64_t Addr = State.readGpr(Inst.Rb) + uint64_t(int64_t(Inst.Disp));
    Info.MemAddr = Addr;
    MemAccessResult Access = Mem.load(Addr, OpI.MemSize);
    if (!Access.ok()) {
      Info.Status = StepStatus::Trapped;
      Info.TrapInfo = {trapKindForMemFault(Access.Fault), State.Pc, Addr};
      return Info;
    }
    State.writeGpr(Inst.Ra, extendLoadedValue(Inst.Op, Access.Value));
    break;
  }
  case InstKind::Store: {
    uint64_t Addr = State.readGpr(Inst.Rb) + uint64_t(int64_t(Inst.Disp));
    Info.MemAddr = Addr;
    MemFaultKind Fault = Mem.store(Addr, State.readGpr(Inst.Ra), OpI.MemSize);
    if (Fault != MemFaultKind::None) {
      Info.Status = StepStatus::Trapped;
      Info.TrapInfo = {trapKindForMemFault(Fault), State.Pc, Addr};
      return Info;
    }
    break;
  }
  case InstKind::CondBranch: {
    Info.IsControl = true;
    Info.Taken = evalBranchCond(Inst.Op, State.readGpr(Inst.Ra));
    if (Info.Taken)
      NextPc = Inst.branchTarget(State.Pc);
    break;
  }
  case InstKind::Br:
  case InstKind::Bsr: {
    Info.IsControl = true;
    Info.Taken = true;
    State.writeGpr(Inst.Ra, State.Pc + InstBytes);
    NextPc = Inst.branchTarget(State.Pc);
    break;
  }
  case InstKind::Jmp:
  case InstKind::Jsr: {
    Info.IsControl = true;
    Info.Taken = true;
    uint64_t Target = State.readGpr(Inst.Rb) & ~uint64_t(3);
    State.writeGpr(Inst.Ra, State.Pc + InstBytes);
    NextPc = Target;
    break;
  }
  case InstKind::Ret: {
    Info.IsControl = true;
    Info.Taken = true;
    NextPc = State.readGpr(Inst.Rb) & ~uint64_t(3);
    break;
  }
  case InstKind::Pal: {
    switch (Inst.PalFunc) {
    case PalHalt:
      ++Retired;
      Info.Status = StepStatus::Halted;
      Info.NextPc = State.Pc;
      return Info;
    case PalGentrap:
      Info.Status = StepStatus::Trapped;
      Info.TrapInfo = {TrapKind::Gentrap, State.Pc, 0};
      return Info;
    default:
      Info.Status = StepStatus::Trapped;
      Info.TrapInfo = {TrapKind::IllegalInst, State.Pc, 0};
      return Info;
    }
  }
  }

  ++Retired;
  State.Pc = NextPc;
  Info.NextPc = NextPc;
  return Info;
}

StepInfo Interpreter::run(uint64_t MaxSteps) {
  StepInfo Last;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    Last = step();
    if (Last.Status != StepStatus::Ok)
      return Last;
  }
  return Last;
}
