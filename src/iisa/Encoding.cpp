//===- iisa/Encoding.cpp - I-ISA encoding-size model ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Encoding.h"

#include "support/BitUtil.h"

using namespace ildp;
using namespace ildp::iisa;

static unsigned countGprRefs(const IisaInst &Inst) {
  // Distinct GPR numbers referenced: a destination GPR equal to a source
  // (the modified ISA's in-place forms, e.g. "R17 (A1) <- R17 - 1") shares
  // one register field.
  unsigned Count = 0;
  uint8_t Seen[3];
  auto Add = [&](uint8_t Reg) {
    for (unsigned I = 0; I != Count; ++I)
      if (Seen[I] == Reg)
        return;
    Seen[Count++] = Reg;
  };
  if (Inst.A.isGpr())
    Add(Inst.A.Reg);
  if (Inst.B.isGpr())
    Add(Inst.B.Reg);
  if (Inst.DestGpr != NoReg)
    Add(Inst.DestGpr);
  return Count;
}

/// Returns the instruction's immediate, or nullopt.
static bool getImm(const IisaInst &Inst, int64_t &Imm) {
  if (Inst.A.isImm()) {
    Imm = Inst.A.Imm;
    return true;
  }
  if (Inst.B.isImm()) {
    Imm = Inst.B.Imm;
    return true;
  }
  if (Inst.MemDisp != 0) {
    Imm = Inst.MemDisp;
    return true;
  }
  return false;
}

unsigned iisa::encodedSize(const IisaInst &Inst, IsaVariant Variant) {
  (void)Variant; // The variant is already reflected in DestGpr presence.
  switch (Inst.Kind) {
  // Embedded-address formats are always 48 bits.
  case IKind::SetVpcBase:
  case IKind::SaveRetAddr:
  case IKind::LoadEmbTarget:
  case IKind::PushDualRas:
    return 6;

  // Fragment-exit control transfers carry a displacement: 32 bits.
  case IKind::CondExit:
  case IKind::Branch:
  case IKind::JumpPredict:
    return 4;

  // Register-indirect transfers name one register only.
  case IKind::JumpDispatch:
  case IKind::ReturnDual:
    return 2;

  case IKind::Halt:
  case IKind::Gentrap:
    return 2;

  case IKind::CmovBlend:
    return 4;

  case IKind::Compute:
  case IKind::CmovMask:
  case IKind::Load:
  case IKind::Store:
  case IKind::CopyToGpr:
  case IKind::CopyFromGpr: {
    int64_t Imm = 0;
    bool HasImm = getImm(Inst, Imm);
    if (HasImm && !fitsSigned(Imm, 16))
      return 6;
    // The 16-bit format's short immediate field is a 3-bit unsigned value.
    if (HasImm && !(Imm >= 0 && fitsUnsigned(uint64_t(Imm), 3)))
      return 4;
    if (countGprRefs(Inst) > 1)
      return 4;
    return 2;
  }
  }
  return 4;
}

void iisa::assignSizes(IisaInst *Begin, IisaInst *End, IsaVariant Variant) {
  for (IisaInst *I = Begin; I != End; ++I)
    I->SizeBytes = uint8_t(encodedSize(*I, Variant));
}
