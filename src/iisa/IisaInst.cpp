//===- iisa/IisaInst.cpp - Accumulator-oriented I-ISA instructions --------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/IisaInst.h"

using namespace ildp;
using namespace ildp::iisa;

const char *iisa::getKindName(IKind Kind) {
  switch (Kind) {
  case IKind::Compute:
    return "compute";
  case IKind::CmovMask:
    return "cmov_mask";
  case IKind::CmovBlend:
    return "cmov_blend";
  case IKind::Load:
    return "load";
  case IKind::Store:
    return "store";
  case IKind::CopyToGpr:
    return "copy_to_gpr";
  case IKind::CopyFromGpr:
    return "copy_from_gpr";
  case IKind::SetVpcBase:
    return "set_vpc_base";
  case IKind::SaveRetAddr:
    return "save_ret_addr";
  case IKind::LoadEmbTarget:
    return "load_emb_target";
  case IKind::PushDualRas:
    return "push_dual_ras";
  case IKind::CondExit:
    return "cond_exit";
  case IKind::Branch:
    return "branch";
  case IKind::JumpPredict:
    return "jump_predict";
  case IKind::JumpDispatch:
    return "jump_dispatch";
  case IKind::ReturnDual:
    return "return_dual";
  case IKind::Halt:
    return "halt";
  case IKind::Gentrap:
    return "gentrap";
  }
  return "unknown";
}

const char *iisa::getUsageName(UsageClass Usage) {
  switch (Usage) {
  case UsageClass::None:
    return "none";
  case UsageClass::NoUser:
    return "no_user";
  case UsageClass::Local:
    return "local";
  case UsageClass::Temp:
    return "temp";
  case UsageClass::LiveOutGlobal:
    return "liveout_global";
  case UsageClass::CommGlobal:
    return "comm_global";
  case UsageClass::SpillGlobal:
    return "spill_global";
  case UsageClass::LocalToGlobal:
    return "local_to_global";
  case UsageClass::NoUserToGlobal:
    return "no_user_to_global";
  }
  return "unknown";
}

static unsigned countAccInputs(const IisaInst &Inst) {
  return unsigned(Inst.A.isAcc()) + unsigned(Inst.B.isAcc());
}

static unsigned countGprRefs(const IisaInst &Inst) {
  return unsigned(Inst.A.isGpr()) + unsigned(Inst.B.isGpr()) +
         unsigned(Inst.DestGpr != NoReg);
}

std::string iisa::validate(const IisaInst &Inst, IsaVariant Variant) {
  if (countAccInputs(Inst) > 1)
    return "more than one accumulator input";
  if (Inst.A.isAcc() && Inst.B.isAcc())
    return "two accumulator operands";

  // The basic ISA allows at most one GPR reference per instruction
  // (Section 2.1). The modified ISA adds the destination GPR but still
  // allows only one *source* GPR. The straightening backend keeps plain
  // Alpha operand rules (two source GPRs, no accumulators).
  switch (Variant) {
  case IsaVariant::Basic:
    if (countGprRefs(Inst) > 1)
      return "basic ISA allows only one GPR per instruction";
    break;
  case IsaVariant::Modified: {
    unsigned SrcGprs = unsigned(Inst.A.isGpr()) + unsigned(Inst.B.isGpr());
    if (SrcGprs > 1)
      return "more than one source GPR";
    break;
  }
  case IsaVariant::Straight:
    if (Inst.DestAcc != NoReg || Inst.A.isAcc() || Inst.B.isAcc())
      return "straightened Alpha code must not use accumulators";
    break;
  }

  if (Inst.DestAcc != NoReg && Inst.DestAcc >= MaxAccumulators)
    return "accumulator number out of range";
  if (Inst.DestGpr != NoReg && Inst.DestGpr >= NumIisaGprs)
    return "GPR number out of range";

  bool ProducesValue = Inst.DestAcc != NoReg || Inst.DestGpr != NoReg;
  switch (Inst.Kind) {
  case IKind::Compute:
    if (!ProducesValue)
      return "compute must produce a value";
    if (Variant != IsaVariant::Straight && Inst.DestAcc == NoReg)
      return "compute must produce an accumulator value";
    if (Inst.AlphaOp == alpha::Opcode::Invalid)
      return "compute without an operation";
    if (alpha::isCondMove(Inst.AlphaOp) && Variant != IsaVariant::Straight)
      return "conditional moves must be decomposed in accumulator code";
    break;
  case IKind::CmovMask:
    if (!alpha::isCondMove(Inst.AlphaOp))
      return "cmov_mask needs a conditional-move opcode";
    if (!ProducesValue)
      return "cmov_mask must produce a value";
    break;
  case IKind::CmovBlend:
    if (Variant != IsaVariant::Modified)
      return "cmov_blend exists only in the modified ISA";
    if (Inst.DestGpr == NoReg || Inst.DestAcc == NoReg)
      return "cmov_blend needs accumulator and GPR destinations";
    if (Inst.A.isNone() || Inst.A.isImm())
      return "cmov_blend needs a register mask operand";
    break;
  case IKind::Load:
    if (!alpha::isLoad(Inst.AlphaOp))
      return "load without a load opcode";
    if (Inst.B.isNone() || Inst.B.isImm())
      return "load needs a register address operand";
    if (!ProducesValue)
      return "load must produce a value";
    if (Variant != IsaVariant::Straight && Inst.DestAcc == NoReg)
      return "load must produce an accumulator value";
    break;
  case IKind::Store:
    if (!alpha::isStore(Inst.AlphaOp))
      return "store without a store opcode";
    if (Inst.B.isNone() || Inst.B.isImm())
      return "store needs a register address operand";
    if (Inst.A.isNone())
      return "store needs a data operand";
    if (Inst.DestAcc != NoReg || Inst.DestGpr != NoReg)
      return "store produces no register value";
    break;
  case IKind::CopyToGpr:
    if (!Inst.A.isAcc())
      return "copy_to_gpr source must be an accumulator";
    if (Inst.DestGpr == NoReg)
      return "copy_to_gpr needs a GPR destination";
    break;
  case IKind::CopyFromGpr:
    if (!Inst.A.isGpr())
      return "copy_from_gpr source must be a GPR";
    if (Inst.DestAcc == NoReg)
      return "copy_from_gpr needs an accumulator destination";
    break;
  case IKind::SetVpcBase:
  case IKind::PushDualRas:
    break;
  case IKind::SaveRetAddr:
    if (Inst.DestGpr == NoReg)
      return "save_ret_addr needs a GPR destination";
    break;
  case IKind::LoadEmbTarget:
    if (!ProducesValue)
      return "load_emb_target needs a destination";
    break;
  case IKind::CondExit:
    if (!alpha::isCondBranch(Inst.AlphaOp))
      return "cond_exit needs a conditional branch opcode";
    if (Inst.A.isNone() || Inst.A.isImm())
      return "cond_exit needs a register condition operand";
    break;
  case IKind::JumpPredict:
    if (Inst.A.isNone() || Inst.A.isImm())
      return "jump_predict needs a register condition operand";
    if (Variant != IsaVariant::Straight && !Inst.A.isAcc())
      return "jump_predict condition must be an accumulator";
    if (Inst.B.isNone() || Inst.B.isImm())
      return "jump_predict needs the actual target operand";
    break;
  case IKind::JumpDispatch:
  case IKind::ReturnDual:
    if (Inst.B.isNone() || Inst.B.isImm())
      return "indirect transfer needs a register target operand";
    break;
  case IKind::Branch:
  case IKind::Halt:
  case IKind::Gentrap:
    break;
  }
  return "";
}
