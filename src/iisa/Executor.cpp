//===- iisa/Executor.cpp - I-ISA functional executor ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Executor.h"

#include "alpha/Semantics.h"

#include <cassert>

using namespace ildp;
using namespace ildp::iisa;
using ildp::alpha::getOpInfo;

static uint64_t readOperand(const IOperand &Op, const IExecState &State) {
  switch (Op.K) {
  case IOperand::Kind::None:
    return 0;
  case IOperand::Kind::Acc:
    assert(Op.Reg < MaxAccumulators && "Accumulator out of range");
    return State.Acc[Op.Reg];
  case IOperand::Kind::Gpr:
    return State.readGpr(Op.Reg);
  case IOperand::Kind::Imm:
    return uint64_t(Op.Imm);
  }
  return 0;
}

static void writeResult(const IisaInst &Inst, uint64_t Value,
                        IExecState &State) {
  if (Inst.DestAcc != NoReg) {
    assert(Inst.DestAcc < MaxAccumulators && "Accumulator out of range");
    State.Acc[Inst.DestAcc] = Value;
  }
  if (Inst.DestGpr != NoReg)
    State.writeGpr(Inst.DestGpr, Value);
}

IExit iisa::execute(const IisaInst *Insts, size_t Count, IExecState &State,
                    GuestMemory &Mem, std::vector<IisaEvent> *Events) {
  for (size_t Index = 0; Index != Count; ++Index) {
    const IisaInst &Inst = Insts[Index];
    IisaEvent Event;
    Event.Index = uint32_t(Index);

    switch (Inst.Kind) {
    case IKind::Compute: {
      uint64_t A = readOperand(Inst.A, State);
      uint64_t B = readOperand(Inst.B, State);
      if (alpha::isCondMove(Inst.AlphaOp)) {
        // Only the straightening backend emits whole conditional moves
        // (the accumulator backends decompose them via CmovMask).
        uint64_t Old = Inst.DestGpr != NoReg ? State.readGpr(Inst.DestGpr)
                                             : State.Acc[Inst.DestAcc];
        writeResult(Inst, alpha::evalCmovCond(Inst.AlphaOp, A) ? B : Old,
                    State);
      } else {
        writeResult(Inst, alpha::evalIntOp(Inst.AlphaOp, A, B), State);
      }
      break;
    }
    case IKind::CmovMask: {
      uint64_t A = readOperand(Inst.A, State);
      writeResult(Inst,
                  alpha::evalCmovCond(Inst.AlphaOp, A) ? ~uint64_t(0) : 0,
                  State);
      break;
    }
    case IKind::CmovBlend: {
      // The destination-GPR field doubles as the third (old-value) source.
      uint64_t Mask = readOperand(Inst.A, State);
      uint64_t New = readOperand(Inst.B, State);
      uint64_t Old = State.readGpr(Inst.DestGpr);
      writeResult(Inst, Mask ? New : Old, State);
      break;
    }
    case IKind::Load: {
      uint64_t Addr =
          readOperand(Inst.B, State) + uint64_t(int64_t(Inst.MemDisp));
      Event.MemAddr = Addr;
      MemAccessResult Access = Mem.load(Addr, getOpInfo(Inst.AlphaOp).MemSize);
      if (!Access.ok()) {
        if (Events)
          Events->push_back(Event);
        IExit Exit;
        Exit.K = IExit::Kind::Trap;
        Exit.InstIndex = uint32_t(Index);
        Exit.TrapInfo = {trapKindForMemFault(Access.Fault), 0, Addr};
        return Exit;
      }
      writeResult(Inst, alpha::extendLoadedValue(Inst.AlphaOp, Access.Value),
                  State);
      break;
    }
    case IKind::Store: {
      uint64_t Addr =
          readOperand(Inst.B, State) + uint64_t(int64_t(Inst.MemDisp));
      Event.MemAddr = Addr;
      MemFaultKind Fault = Mem.store(Addr, readOperand(Inst.A, State),
                                     getOpInfo(Inst.AlphaOp).MemSize);
      if (Fault != MemFaultKind::None) {
        if (Events)
          Events->push_back(Event);
        IExit Exit;
        Exit.K = IExit::Kind::Trap;
        Exit.InstIndex = uint32_t(Index);
        Exit.TrapInfo = {trapKindForMemFault(Fault), 0, Addr};
        return Exit;
      }
      break;
    }
    case IKind::CopyToGpr:
      State.writeGpr(Inst.DestGpr, readOperand(Inst.A, State));
      break;
    case IKind::CopyFromGpr:
      assert(Inst.DestAcc < MaxAccumulators && "Accumulator out of range");
      State.Acc[Inst.DestAcc] = readOperand(Inst.A, State);
      break;
    case IKind::SetVpcBase:
      State.VpcBase = Inst.VTarget;
      break;
    case IKind::SaveRetAddr:
      State.writeGpr(Inst.DestGpr, Inst.VTarget);
      break;
    case IKind::LoadEmbTarget:
      // Accumulator destination in the I-ISA backends; a scratch GPR in the
      // straightening backend.
      writeResult(Inst, Inst.VTarget, State);
      break;
    case IKind::PushDualRas:
      // Architecturally invisible; the VM models the dual-address RAS.
      break;
    case IKind::CondExit: {
      uint64_t A = readOperand(Inst.A, State);
      bool Taken = alpha::evalBranchCond(Inst.AlphaOp, A);
      Event.Taken = Taken;
      if (Events)
        Events->push_back(Event);
      if (Taken) {
        IExit Exit;
        Exit.K = Inst.ToTranslator ? IExit::Kind::ToTranslator
                                   : IExit::Kind::Chained;
        Exit.VTarget = Inst.VTarget;
        Exit.InstIndex = uint32_t(Index);
        return Exit;
      }
      continue; // Event already recorded.
    }
    case IKind::Branch: {
      Event.Taken = true;
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = Inst.ToTranslator ? IExit::Kind::ToTranslator
                                 : IExit::Kind::Chained;
      Exit.VTarget = Inst.VTarget;
      Exit.InstIndex = uint32_t(Index);
      return Exit;
    }
    case IKind::JumpPredict: {
      bool Hit = readOperand(Inst.A, State) != 0;
      Event.Taken = Hit;
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = Hit ? IExit::Kind::PredictHit : IExit::Kind::PredictMiss;
      Exit.VTarget =
          Hit ? Inst.VTarget : (readOperand(Inst.B, State) & ~uint64_t(3));
      Exit.InstIndex = uint32_t(Index);
      return Exit;
    }
    case IKind::JumpDispatch: {
      Event.Taken = true;
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = IExit::Kind::Dispatch;
      Exit.VTarget = readOperand(Inst.B, State) & ~uint64_t(3);
      Exit.InstIndex = uint32_t(Index);
      return Exit;
    }
    case IKind::ReturnDual: {
      Event.Taken = true;
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = IExit::Kind::Return;
      Exit.VTarget = readOperand(Inst.B, State) & ~uint64_t(3);
      Exit.InstIndex = uint32_t(Index);
      return Exit;
    }
    case IKind::Halt: {
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = IExit::Kind::Halt;
      Exit.InstIndex = uint32_t(Index);
      return Exit;
    }
    case IKind::Gentrap: {
      if (Events)
        Events->push_back(Event);
      IExit Exit;
      Exit.K = IExit::Kind::Trap;
      Exit.InstIndex = uint32_t(Index);
      Exit.TrapInfo = {TrapKind::Gentrap, 0, 0};
      return Exit;
    }
    }

    if (Events)
      Events->push_back(Event);
  }
  assert(false && "Fragment body fell off the end without an exit");
  IExit Exit;
  Exit.K = IExit::Kind::Halt;
  return Exit;
}
