//===- iisa/Encoding.h - I-ISA encoding-size model ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns each I-ISA instruction a concrete encoded size. The paper's
/// basic ISA encodes many instructions in 16 bits ("one GPR per
/// instruction" keeps formats small, Section 2.1); the modified ISA's extra
/// destination-GPR specifier pushes some of those to 32 bits (Section 2.3).
/// Embedded-address special instructions use a 48-bit format.
///
/// The model (documented in DESIGN.md) drives the paper's Table 2 "relative
/// static instruction bytes" statistic. Fragments themselves are stored
/// decoded; no binary image of I-ISA code is materialized.
///
/// Size rules:
///   16 bits — at most one GPR reference in total, immediate representable
///             in 3 bits (or absent), no embedded address. Covers in-place
///             accumulator computes, loads/stores with register address,
///             copies, halt/gentrap, and the dual-RAS return.
///   32 bits — everything with a second GPR reference (modified-ISA
///             destination specifier), an 8..16-bit immediate, or a
///             fragment-relative branch displacement (cond_exit, branch,
///             jump_predict, jump_dispatch).
///   48 bits — embedded-address formats (set_vpc_base, save_ret_addr,
///             load_emb_target, push_dual_ras) and immediates wider than
///             16 bits.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_IISA_ENCODING_H
#define ILDP_IISA_ENCODING_H

#include "iisa/IisaInst.h"

namespace ildp {
namespace iisa {

/// Returns the encoded size in bytes (2, 4, or 6) of \p Inst under
/// \p Variant.
unsigned encodedSize(const IisaInst &Inst, IsaVariant Variant);

/// Sets Inst.SizeBytes for every instruction in [Begin, End).
void assignSizes(IisaInst *Begin, IisaInst *End, IsaVariant Variant);

} // namespace iisa
} // namespace ildp

#endif // ILDP_IISA_ENCODING_H
