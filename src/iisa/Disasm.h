//===- iisa/Disasm.h - I-ISA disassembler ---------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders I-ISA instructions in the paper's Figure 2 notation:
/// "A0 <- mem[R16]", "R17 (A1) <- R17 - 1", "P <- L1, if (A1 != 0)".
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_IISA_DISASM_H
#define ILDP_IISA_DISASM_H

#include "iisa/IisaInst.h"

#include <string>

namespace ildp {
namespace iisa {

/// Disassembles one I-ISA instruction.
std::string disassemble(const IisaInst &Inst);

} // namespace iisa
} // namespace ildp

#endif // ILDP_IISA_DISASM_H
