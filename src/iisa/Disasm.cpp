//===- iisa/Disasm.cpp - I-ISA disassembler -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Disasm.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::iisa;
using ildp::alpha::Opcode;

static std::string hex(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

static std::string operand(const IOperand &Op) {
  switch (Op.K) {
  case IOperand::Kind::None:
    return "?";
  case IOperand::Kind::Acc:
    return "A" + std::to_string(Op.Reg);
  case IOperand::Kind::Gpr:
    return "R" + std::to_string(Op.Reg);
  case IOperand::Kind::Imm:
    return std::to_string(Op.Imm);
  }
  return "?";
}

/// Renders the destination in Figure 2 style: "A0" (basic) or "R3 (A0)"
/// (modified, destination GPR present).
static std::string dest(const IisaInst &Inst) {
  std::string Acc =
      Inst.DestAcc == NoReg ? "" : "A" + std::to_string(Inst.DestAcc);
  if (Inst.DestGpr == NoReg)
    return Acc;
  std::string Gpr = "R" + std::to_string(Inst.DestGpr);
  if (Acc.empty())
    return Gpr;
  return Gpr + " (" + Acc + ")";
}

/// Infix rendering of the common ALU operations; function style otherwise.
static std::string computeExpr(const IisaInst &Inst) {
  std::string A = operand(Inst.A);
  std::string B = operand(Inst.B);
  switch (Inst.AlphaOp) {
  case Opcode::ADDL:
  case Opcode::ADDQ:
  case Opcode::LDA:
    return A + " + " + B;
  case Opcode::SUBL:
  case Opcode::SUBQ:
    return A + " - " + B;
  case Opcode::S4ADDL:
  case Opcode::S4ADDQ:
    return "4*" + A + " + " + B;
  case Opcode::S8ADDL:
  case Opcode::S8ADDQ:
    return "8*" + A + " + " + B;
  case Opcode::S4SUBL:
  case Opcode::S4SUBQ:
    return "4*" + A + " - " + B;
  case Opcode::S8SUBL:
  case Opcode::S8SUBQ:
    return "8*" + A + " - " + B;
  case Opcode::AND:
    return A + " and " + B;
  case Opcode::BIS:
    // Canonical register move renders without the "or".
    if (Inst.B.isImm() && Inst.B.Imm == 0)
      return A;
    if (Inst.A.isImm() && Inst.A.Imm == 0)
      return B;
    return A + " or " + B;
  case Opcode::XOR:
    return A + " xor " + B;
  case Opcode::BIC:
    return A + " and not " + B;
  case Opcode::ORNOT:
    return A + " or not " + B;
  case Opcode::EQV:
    return A + " xnor " + B;
  case Opcode::SLL:
    return A + " << " + B;
  case Opcode::SRL:
  case Opcode::SRA:
    return A + " >> " + B;
  case Opcode::MULL:
  case Opcode::MULQ:
    return A + " * " + B;
  case Opcode::CMPEQ:
    return A + " == " + B;
  case Opcode::CMPLT:
    return A + " < " + B;
  case Opcode::CMPLE:
    return A + " <= " + B;
  case Opcode::CMPULT:
    return A + " <u " + B;
  case Opcode::CMPULE:
    return A + " <=u " + B;
  default:
    return std::string(alpha::getMnemonic(Inst.AlphaOp)) + "(" + A + ", " +
           B + ")";
  }
}

static std::string condExpr(Opcode Op, const std::string &Value) {
  switch (Op) {
  case Opcode::BEQ:
    return Value + " == 0";
  case Opcode::BNE:
    return Value + " != 0";
  case Opcode::BLT:
    return Value + " < 0";
  case Opcode::BLE:
    return Value + " <= 0";
  case Opcode::BGT:
    return Value + " > 0";
  case Opcode::BGE:
    return Value + " >= 0";
  case Opcode::BLBC:
    return Value + " lbc";
  case Opcode::BLBS:
    return Value + " lbs";
  default:
    return Value;
  }
}

static std::string memOperand(const IisaInst &Inst) {
  std::string Addr = operand(Inst.B);
  if (Inst.MemDisp != 0)
    Addr += " + " + std::to_string(Inst.MemDisp);
  return "mem[" + Addr + "]";
}

std::string iisa::disassemble(const IisaInst &Inst) {
  switch (Inst.Kind) {
  case IKind::Compute:
    return dest(Inst) + " <- " + computeExpr(Inst);
  case IKind::CmovMask:
    return dest(Inst) + " <- mask(" +
           condExpr(Inst.AlphaOp == Opcode::CMOVEQ   ? Opcode::BEQ
                    : Inst.AlphaOp == Opcode::CMOVNE ? Opcode::BNE
                    : Inst.AlphaOp == Opcode::CMOVLT ? Opcode::BLT
                    : Inst.AlphaOp == Opcode::CMOVGE ? Opcode::BGE
                    : Inst.AlphaOp == Opcode::CMOVLE ? Opcode::BLE
                    : Inst.AlphaOp == Opcode::CMOVGT ? Opcode::BGT
                    : Inst.AlphaOp == Opcode::CMOVLBS ? Opcode::BLBS
                                                      : Opcode::BLBC,
                    operand(Inst.A)) +
           ")";
  case IKind::CmovBlend:
    return dest(Inst) + " <- " + operand(Inst.A) + " ? " +
           operand(Inst.B) + " : R" + std::to_string(Inst.DestGpr);
  case IKind::Load:
    return dest(Inst) + " <- " + memOperand(Inst);
  case IKind::Store:
    return memOperand(Inst) + " <- " + operand(Inst.A);
  case IKind::CopyToGpr:
    return "R" + std::to_string(Inst.DestGpr) + " <- " + operand(Inst.A);
  case IKind::CopyFromGpr:
    return "A" + std::to_string(Inst.DestAcc) + " <- " + operand(Inst.A);
  case IKind::SetVpcBase:
    return "VPC <- " + hex(Inst.VTarget);
  case IKind::SaveRetAddr:
    return "R" + std::to_string(Inst.DestGpr) + " <- ret " +
           hex(Inst.VTarget);
  case IKind::LoadEmbTarget:
    return "A" + std::to_string(Inst.DestAcc) + " <- target " +
           hex(Inst.VTarget);
  case IKind::PushDualRas:
    return "push_ras v=" + hex(Inst.VTarget);
  case IKind::CondExit:
    return "P <- " + hex(Inst.VTarget) + ", if (" +
           condExpr(Inst.AlphaOp, operand(Inst.A)) + ")" +
           (Inst.ToTranslator ? " [translator]" : "");
  case IKind::Branch:
    return "P <- " + hex(Inst.VTarget) +
           (Inst.ToTranslator ? " [translator]" : "");
  case IKind::JumpPredict:
    return "P <- " + hex(Inst.VTarget) + " if (" + operand(Inst.A) +
           ") else dispatch[" + operand(Inst.B) + "]";
  case IKind::JumpDispatch:
    return "P <- dispatch[" + operand(Inst.B) + "]";
  case IKind::ReturnDual:
    return "P <- ras (" + operand(Inst.B) + ")";
  case IKind::Halt:
    return "halt";
  case IKind::Gentrap:
    return "gentrap";
  }
  return "<unknown>";
}
