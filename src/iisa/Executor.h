//===- iisa/Executor.h - I-ISA functional executor ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional execution of translated I-ISA code. The executor runs one
/// fragment body (a linear array of IisaInst) until an exit or trap,
/// updating accumulators, the GPR file, and guest memory, and optionally
/// recording per-instruction events for the timing models.
///
/// Arithmetic goes through alpha::evalIntOp and friends — the exact
/// functions the reference interpreter uses — so architected-state
/// equivalence between interpreted and translated execution is a matter of
/// translation correctness only, never of divergent operator semantics.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_IISA_EXECUTOR_H
#define ILDP_IISA_EXECUTOR_H

#include "iisa/IisaInst.h"
#include "interp/ArchState.h"
#include "interp/Interpreter.h"
#include "mem/GuestMemory.h"

#include <cstdint>
#include <vector>

namespace ildp {
namespace iisa {

/// Implementation (I-ISA level) machine state.
struct IExecState {
  std::array<uint64_t, MaxAccumulators> Acc{};
  /// The I-ISA GPR file (64 registers; 0..31 mirror the V-ISA GPRs, 32..63
  /// are VM scratch). In the basic ISA only copy-to-GPR instructions write
  /// it; in the modified ISA every producer with a destination GPR does.
  /// Register 31 is hardwired to zero.
  std::array<uint64_t, NumIisaGprs> Gpr{};
  uint64_t VpcBase = 0; ///< Special register written by set_vpc_base.

  uint64_t readGpr(unsigned Reg) const {
    return Reg == alpha::RegZero ? 0 : Gpr[Reg];
  }
  void writeGpr(unsigned Reg, uint64_t Value) {
    if (Reg != alpha::RegZero)
      Gpr[Reg] = Value;
  }

  /// Extracts the V-ISA-visible register portion (GPRs 0..31).
  ArchState toArchState() const {
    ArchState State;
    for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
      State.Gpr[Reg] = readGpr(Reg);
    return State;
  }

  /// Seeds GPRs 0..31 from a V-ISA architected state (fragment entry).
  void loadArchState(const ArchState &State) {
    for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
      Gpr[Reg] = State.readGpr(Reg);
  }
};

/// One executed-instruction record for trace-driven timing simulation.
struct IisaEvent {
  uint32_t Index = 0;    ///< Index into the fragment body.
  bool Taken = false;    ///< cond_exit outcome.
  uint64_t MemAddr = 0;  ///< Effective address for loads/stores.
};

/// How fragment execution ended.
struct IExit {
  enum class Kind : uint8_t {
    Chained,      ///< Direct exit to a known V-target (branch/cond_exit).
    ToTranslator, ///< call-translator exit (target not yet translated).
    PredictHit,   ///< Software jump prediction matched; VTarget=predicted.
    PredictMiss,  ///< Prediction failed; VTarget=actual, via dispatch.
    Dispatch,     ///< no_pred indirect jump; VTarget=actual, via dispatch.
    Return,       ///< Dual-RAS return; VTarget=actual V-ISA return address.
    Halt,         ///< Guest executed HALT.
    Trap,         ///< Precise trap (memory fault or GENTRAP).
  };
  Kind K = Kind::Halt;
  uint64_t VTarget = 0;
  uint32_t InstIndex = 0; ///< Index of the exiting/trapping instruction.
  Trap TrapInfo;          ///< Valid when K == Trap (Pc filled in by the VM
                          ///< via the PEI table).
};

/// Executes \p Insts (a fragment body of \p Count instructions) starting at
/// index 0 until an exit, appending one IisaEvent per executed instruction
/// to \p Events when non-null.
IExit execute(const IisaInst *Insts, size_t Count, IExecState &State,
              GuestMemory &Mem, std::vector<IisaEvent> *Events);

} // namespace iisa
} // namespace ildp

#endif // ILDP_IISA_EXECUTOR_H
