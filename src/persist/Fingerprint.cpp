//===- persist/Fingerprint.cpp - Cache-file compatibility fingerprint -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/Fingerprint.h"

#include "persist/Crc32.h"

using namespace ildp;
using namespace ildp::persist;

uint32_t persist::configCrc(const dbt::DbtConfig &Config) {
  Crc32 C;
  C.updateU8(uint8_t(Config.Variant));
  C.updateU8(uint8_t(Config.Chaining));
  C.updateU32(Config.HotThreshold);
  C.updateU32(Config.MaxSuperblockInsts);
  C.updateU32(Config.NumAccumulators);
  C.updateU8(Config.SplitMemoryOps ? 1 : 0);
  C.updateU8(Config.CmovTwoOp ? 1 : 0);
  return C.value();
}

uint32_t persist::guestCrc(const GuestMemory &Mem, uint64_t EntryPc) {
  Crc32 C;
  C.updateU64(EntryPc);
  for (uint64_t Base : Mem.mappedPageBases()) {
    C.updateU64(Base);
    C.update(Mem.pageData(Base), GuestMemory::PageSize);
  }
  return C.value();
}

uint64_t persist::fingerprint(const GuestMemory &Mem, uint64_t EntryPc,
                              const dbt::DbtConfig &Config) {
  return uint64_t(configCrc(Config)) << 32 | guestCrc(Mem, EntryPc);
}
