//===- persist/CacheStore.cpp - Multi-image persistent cache store --------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"

#include "persist/ByteStream.h"
#include "persist/CacheFile.h"
#include "persist/Crc32.h"
#include "persist/FragmentCodec.h"
#include "persist/StoreLock.h"
#include "support/CrashInjector.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using support::CrashPoint;
using support::crashPoint;

namespace {

constexpr size_t HeaderBytes = 8 + 4 + 4 + 4;
constexpr size_t IndexEntryBytes = 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8;

/// Unique staging-file name: pid + a process-wide counter, so even two
/// unlocked writers (lock timeout) never scribble on each other's temp.
std::string uniqueTmpPath(const std::string &Path) {
  static std::atomic<uint64_t> Seq{0};
#ifndef _WIN32
  long Pid = long(::getpid());
#else
  long Pid = 0;
#endif
  return Path + ".tmp." + std::to_string(Pid) + "." +
         std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

const char *persist::getStoreStatusName(StoreStatus Status) {
  switch (Status) {
  case StoreStatus::Ok:
    return "ok";
  case StoreStatus::FileNotFound:
    return "file-not-found";
  case StoreStatus::LegacyFile:
    return "legacy-file";
  case StoreStatus::BadMagic:
    return "bad-magic";
  case StoreStatus::BadVersion:
    return "bad-version";
  case StoreStatus::Truncated:
    return "truncated";
  case StoreStatus::BadIndex:
    return "bad-index";
  case StoreStatus::BadChecksum:
    return "bad-checksum";
  case StoreStatus::DuplicateImage:
    return "duplicate-image";
  case StoreStatus::BadPayload:
    return "bad-payload";
  case StoreStatus::ImageNotFound:
    return "image-not-found";
  }
  return "unknown";
}

StoreStatus CacheStore::open(const std::string &Path) {
  Images.clear();
  ReadOnlyMode = false;

  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return StoreStatus::FileNotFound;
  std::vector<uint8_t> File((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  ByteReader R(File);
  uint64_t Magic = R.getU64();
  if (R.failed())
    return StoreStatus::Truncated;
  if (Magic == CacheFileMagic)
    return StoreStatus::LegacyFile;
  if (Magic != CacheStoreMagic)
    return StoreStatus::BadMagic;
  uint32_t Version = R.getU32();
  uint32_t ImageCount = R.getU32();
  uint32_t IndexCrc = R.getU32();
  if (R.failed())
    return StoreStatus::Truncated;
  if (Version != CacheStoreVersion)
    return StoreStatus::BadVersion;
  if (ImageCount > MaxStoreImages)
    return StoreStatus::BadIndex;

  // The index is CRC-checked as a unit before any field is believed: a
  // flipped fingerprint or offset byte must surface as a typed rejection,
  // not as a silent lookup miss or a mis-sliced payload.
  size_t IndexBytes = size_t(ImageCount) * IndexEntryBytes;
  if (File.size() - HeaderBytes < IndexBytes)
    return StoreStatus::Truncated;
  if (crc32(File.data() + HeaderBytes, IndexBytes) != IndexCrc)
    return StoreStatus::BadIndex;

  std::vector<StoreImage> Loaded;
  Loaded.reserve(ImageCount);
  std::unordered_set<uint64_t> Seen;
  for (uint32_t I = 0; I != ImageCount; ++I) {
    StoreImage Img;
    Img.Fingerprint = R.getU64();
    uint64_t Offset = R.getU64();
    uint64_t Size = R.getU64();
    uint32_t PayloadCrc = R.getU32();
    Img.FragmentCount = R.getU32();
    Img.BodyBytes = R.getU64();
    Img.SaveCount = R.getU32();
    Img.CostUnits = R.getU64();
    if (R.failed())
      return StoreStatus::Truncated; // Unreachable given the bound above.
    // Payload lengths come from disk — never trust them.
    if (Offset > File.size() || Size > File.size() - Offset)
      return StoreStatus::Truncated;
    // Each encoded fragment occupies well over one byte; a count that
    // exceeds the payload size is corruption the CRCs happened to bless.
    if (Img.FragmentCount > Size)
      return StoreStatus::BadIndex;
    if (crc32(File.data() + Offset, size_t(Size)) != PayloadCrc)
      return StoreStatus::BadChecksum;
    if (!Seen.insert(Img.Fingerprint).second)
      return StoreStatus::DuplicateImage;
    Img.Payload.assign(File.begin() + long(Offset),
                       File.begin() + long(Offset + Size));
    Loaded.push_back(std::move(Img));
  }

  Images = std::move(Loaded);
  return StoreStatus::Ok;
}

StoreStatus CacheStore::openReadOnly(const std::string &Path) {
  StoreStatus Status = open(Path);
  ReadOnlyMode = true;
  return Status;
}

StoreStatus CacheStore::lookup(uint64_t Fingerprint,
                               std::vector<Fragment> &Out) const {
  Out.clear();
  const StoreImage *Img = find(Fingerprint);
  if (!Img)
    return StoreStatus::ImageNotFound;

  ByteReader R(Img->Payload.data(), Img->Payload.size());
  Out.reserve(Img->FragmentCount);
  uint64_t DecodedBodyBytes = 0;
  for (uint32_t I = 0; I != Img->FragmentCount; ++I) {
    Fragment Frag;
    if (!decodeFragment(R, Frag)) {
      Out.clear();
      return StoreStatus::BadPayload;
    }
    DecodedBodyBytes += Frag.BodyBytes;
    Out.push_back(std::move(Frag));
  }
  // The payload must be exactly consumed and the index cross-checks must
  // agree — leftover bytes or a byte-total mismatch mean corruption that
  // happened to keep the CRCs intact.
  if (!R.atEnd() || DecodedBodyBytes != Img->BodyBytes) {
    Out.clear();
    return StoreStatus::BadPayload;
  }
  return StoreStatus::Ok;
}

const StoreImage *CacheStore::find(uint64_t Fingerprint) const {
  for (const StoreImage &Img : Images)
    if (Img.Fingerprint == Fingerprint)
      return &Img;
  return nullptr;
}

void CacheStore::put(uint64_t Fingerprint,
                     const std::vector<const Fragment *> &Fragments,
                     uint64_t CostUnits) {
  if (ReadOnlyMode)
    return;
  StoreImage Img;
  Img.Fingerprint = Fingerprint;
  Img.FragmentCount = uint32_t(Fragments.size());
  Img.CostUnits = CostUnits;
  Img.SaveCount = 1;
  ByteWriter W;
  for (const Fragment *Frag : Fragments) {
    encodeFragment(*Frag, W);
    Img.BodyBytes += Frag->BodyBytes;
  }
  Img.Payload = W.take();

  auto It = std::find_if(Images.begin(), Images.end(),
                         [&](const StoreImage &Slot) {
                           return Slot.Fingerprint == Fingerprint;
                         });
  if (It != Images.end()) {
    Img.SaveCount = It->SaveCount + 1;
    Images.erase(It);
  }
  Images.push_back(std::move(Img)); // Back = most recently written.
}

void CacheStore::putRaw(uint64_t Fingerprint, std::vector<uint8_t> Payload,
                        uint64_t CostUnits) {
  if (ReadOnlyMode)
    return;
  StoreImage Img;
  Img.Fingerprint = Fingerprint;
  Img.FragmentCount = 0; // Raw slot: no fragment records inside.
  Img.BodyBytes = 0;
  Img.CostUnits = CostUnits;
  Img.SaveCount = 1;
  Img.Payload = std::move(Payload);

  auto It = std::find_if(Images.begin(), Images.end(),
                         [&](const StoreImage &Slot) {
                           return Slot.Fingerprint == Fingerprint;
                         });
  if (It != Images.end()) {
    Img.SaveCount = It->SaveCount + 1;
    Images.erase(It);
  }
  Images.push_back(std::move(Img));
}

const std::vector<uint8_t> *CacheStore::lookupRaw(uint64_t Fingerprint) const {
  const StoreImage *Img = find(Fingerprint);
  return Img ? &Img->Payload : nullptr;
}

bool CacheStore::erase(uint64_t Fingerprint) {
  if (ReadOnlyMode)
    return false;
  auto It = std::find_if(Images.begin(), Images.end(),
                         [&](const StoreImage &Slot) {
                           return Slot.Fingerprint == Fingerprint;
                         });
  if (It == Images.end())
    return false;
  Images.erase(It);
  return true;
}

size_t CacheStore::compact(size_t MaxImages) {
  if (ReadOnlyMode || MaxImages == 0 || Images.size() <= MaxImages)
    return 0;
  size_t Drop = Images.size() - MaxImages;
  Images.erase(Images.begin(), Images.begin() + long(Drop));
  return Drop;
}

uint64_t CacheStore::totalPayloadBytes() const {
  uint64_t Total = 0;
  for (const StoreImage &Img : Images)
    Total += Img.Payload.size();
  return Total;
}

bool CacheStore::save(const std::string &Path) const {
  ByteWriter W;
  W.putU64(CacheStoreMagic);
  W.putU32(CacheStoreVersion);
  W.putU32(uint32_t(Images.size()));
  size_t IndexCrcOffset = W.size();
  W.putU32(0); // Index CRC; patched once offsets are known.

  size_t IndexOffset = W.size();
  for (size_t B = 0; B != Images.size() * IndexEntryBytes; ++B)
    W.putU8(0); // Index placeholder; patched below.

  for (size_t I = 0; I != Images.size(); ++I) {
    const StoreImage &Img = Images[I];
    size_t Offset = W.size();
    W.putBytes(Img.Payload.data(), Img.Payload.size());
    size_t Entry = IndexOffset + I * IndexEntryBytes;
    W.patchU64(Entry, Img.Fingerprint);
    W.patchU64(Entry + 8, Offset);
    W.patchU64(Entry + 16, Img.Payload.size());
    W.patchU32(Entry + 24, crc32(Img.Payload.data(), Img.Payload.size()));
    W.patchU32(Entry + 28, Img.FragmentCount);
    W.patchU64(Entry + 32, Img.BodyBytes);
    W.patchU32(Entry + 40, Img.SaveCount);
    W.patchU64(Entry + 44, Img.CostUnits);
  }
  W.patchU32(IndexCrcOffset, crc32(W.bytes().data() + IndexOffset,
                                   Images.size() * IndexEntryBytes));

  // Stage and rename so a crash mid-write cannot corrupt an existing
  // store; the staging name is unique so unlocked concurrent savers never
  // truncate each other's in-progress temp. The temp is fsynced before
  // the rename and the containing directory after it, so "save succeeded"
  // is durable against power loss, not merely against process death —
  // without the ordering fsync, a crash after the rename could leave the
  // *name* pointing at unwritten blocks.
  std::string TmpPath = uniqueTmpPath(Path);
#ifndef _WIN32
  {
    int Fd = ::open(TmpPath.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Fd < 0)
      return false;
    const uint8_t *Data = W.bytes().data();
    size_t Len = W.size();
    auto WriteAll = [&](size_t From, size_t To) {
      while (From != To) {
        ssize_t N = ::write(Fd, Data + From, To - From);
        if (N < 0) {
          if (errno == EINTR)
            continue;
          return false;
        }
        From += size_t(N);
      }
      return true;
    };
    // Two halves with the crash point between them: an injected death
    // leaves the staging file holding only a prefix of the image. The
    // store name still points at the old artifact — a reopen must see
    // old, never a torn half-write.
    size_t Half = Len / 2;
    bool Ok = WriteAll(0, Half);
    if (Ok)
      crashPoint(CrashPoint::MidTmpWrite);
    if (Ok)
      Ok = WriteAll(Half, Len);
    if (!Ok) {
      ::close(Fd);
      std::remove(TmpPath.c_str());
      return false;
    }
    if (::fsync(Fd) != 0) {
      ::close(Fd);
      std::remove(TmpPath.c_str());
      return false;
    }
    ::close(Fd);
  }
  // Crash point: the staging file is complete and durable, but the store
  // name was never switched — a reopen must see the old image set intact.
  crashPoint(CrashPoint::PostTmpPreRename);
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
  // Durability of the rename itself: fsync the containing directory so
  // the new directory entry survives power loss (best-effort — a store in
  // an unfsyncable location still saved correctly for process death).
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
#else
  {
    std::ofstream Out(TmpPath, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(W.bytes().data()),
              std::streamsize(W.size()));
    if (!Out)
      return false;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
#endif
  return true;
}

SaveMergeResult CacheStore::saveMerged(const std::string &Path,
                                       size_t MaxImages) {
  SaveMergeResult Result;
  // A read-only store never writes and — the point of the mode — never
  // creates "<path>.lock": a fleet of readers must not contend with (or
  // delay) a concurrent writer's lock acquisition.
  if (ReadOnlyMode)
    return Result;
  // The crash-recoverable lock (StoreLock.h): a holder that dies at ANY
  // point below leaves a lock file naming a dead PID, which the next
  // writer detects and breaks instead of waiting out a timeout — and a
  // *live* holder is waited for rather than raced (the PR-5 version fell
  // through to unlocked read-merge-write after 500ms, reopening the
  // lost-update window it existed to close).
  StoreLock Lock(Path + ".lock");
  Result.LockContended = Lock.contended();
  Result.LockBroken = Lock.broken();
  Result.LockTimedOut = Lock.timedOut();

  // Adopt slots written since this store was opened (or that a
  // load-disabled VM never read): concurrent writers of *different*
  // images all survive. Our own slots win on fingerprint collision —
  // last writer wins per image, never per store. A legacy or corrupt
  // on-disk file contributes nothing and is rewritten in store format.
  CacheStore Disk;
  StoreStatus DiskState = Disk.open(Path);
  // Crash point: the on-disk store has been read, nothing written, and
  // this process holds "<path>.lock". Dying here must leave the old
  // artifact intact and a breakable (dead-PID) lock behind.
  crashPoint(CrashPoint::MidMergeRead);
  if (DiskState == StoreStatus::Ok) {
    // Keep adopted slots older than everything this store wrote itself.
    size_t InsertAt = 0;
    for (StoreImage &Img : Disk.Images)
      if (!contains(Img.Fingerprint)) {
        Images.insert(Images.begin() + long(InsertAt++), std::move(Img));
        ++Result.Adopted;
      }
  }

  Result.Compacted = compact(MaxImages);
  Result.Saved = save(Path);
  // Crash point: the new store is durably in place but the lock file
  // still names this process. Readers see new; the next writer must
  // break the dead lock within one takeover, not wait out a timeout.
  crashPoint(CrashPoint::PostRenamePreUnlock);
  return Result;
}
