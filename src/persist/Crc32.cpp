//===- persist/Crc32.cpp - CRC-32 checksums -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/Crc32.h"

#include <array>

using namespace ildp;
using namespace ildp::persist;

namespace {

/// Byte-at-a-time lookup table for the reflected polynomial 0xEDB88320.
std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

const std::array<uint32_t, 256> &table() {
  static const std::array<uint32_t, 256> Table = makeTable();
  return Table;
}

} // namespace

void Crc32::update(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  const std::array<uint32_t, 256> &T = table();
  for (size_t I = 0; I != Size; ++I)
    State = T[(State ^ Bytes[I]) & 0xFF] ^ (State >> 8);
}

void Crc32::updateU64(uint64_t Value) {
  uint8_t Bytes[8];
  for (int I = 0; I != 8; ++I)
    Bytes[I] = uint8_t(Value >> (8 * I));
  update(Bytes, 8);
}

void Crc32::updateU32(uint32_t Value) {
  uint8_t Bytes[4];
  for (int I = 0; I != 4; ++I)
    Bytes[I] = uint8_t(Value >> (8 * I));
  update(Bytes, 4);
}

void Crc32::updateU8(uint8_t Value) { update(&Value, 1); }

uint32_t persist::crc32(const void *Data, size_t Size) {
  Crc32 C;
  C.update(Data, Size);
  return C.value();
}
