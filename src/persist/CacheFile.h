//===- persist/CacheFile.h - Persistent translation-cache files -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk format of a persisted translation cache and its reader and
/// writer. Layout (all integers little-endian):
///
///   header         magic u64, format version u32, section count u32,
///                  fingerprint u64                          (24 bytes)
///   section table  per section: id u32, file offset u64, byte size u64,
///                  CRC32 u32                                (24 bytes each)
///   sections       META      fragment count u32, total body bytes u64
///                  FRAGMENTS FragmentCodec encodings, back to back
///
/// The loader is strictly fail-safe: magic/version gates first, then every
/// section is bounds- and CRC-checked before a single fragment byte is
/// decoded, then the fingerprint is compared, and only then is the payload
/// deserialized (itself bounds-checked; see ByteStream/FragmentCodec). Any
/// failure yields a distinct LoadStatus and an empty fragment list — the
/// VM counts the reason and runs cold. A load NEVER crashes on a bad file.
///
/// The writer stages through "<path>.tmp" and renames into place so a
/// crashed save cannot leave a half-written cache under the real name.
///
/// Under a bounded cache (VmConfig::CodeCacheBytes, DESIGN.md §10) a save
/// naturally covers only the *resident* fragments — eviction removes a
/// fragment from the cache's export set the moment it is torn down — and a
/// warm-start import skips fragments that would not fit the budget. The
/// budget itself is deliberately not part of the fingerprint: like fault
/// injection, it changes which fragments exist, never their contents, so
/// cache files stay interchangeable across budget settings.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_CACHEFILE_H
#define ILDP_PERSIST_CACHEFILE_H

#include "core/Fragment.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace persist {

/// "ILDPTC1\0" as a little-endian u64.
constexpr uint64_t CacheFileMagic = 0x0031435450444C49ull;
/// Bumped on any incompatible change to the header, section, or fragment
/// encoding; also folded into the fingerprint via the file header check.
constexpr uint32_t CacheFormatVersion = 1;

/// Why a cache-file load succeeded or was rejected.
enum class LoadStatus : uint8_t {
  Ok,
  FileNotFound,        ///< No file at the path (first run; not an error).
  BadMagic,            ///< Not a translation-cache file.
  BadVersion,          ///< Produced by an incompatible format revision.
  Truncated,           ///< Header or a section extends past end of file.
  BadChecksum,         ///< A section's CRC32 does not match its bytes.
  FingerprintMismatch, ///< Guest image or DbtConfig changed since the save.
  BadPayload,          ///< CRC passed but fragment decoding failed
                       ///< (structurally invalid records).
};

const char *getLoadStatusName(LoadStatus Status);

/// Result of loadCacheFile(). Fragments is empty unless Status == Ok.
struct LoadResult {
  LoadStatus Status = LoadStatus::FileNotFound;
  uint64_t FileFingerprint = 0;
  std::vector<dbt::Fragment> Fragments;
};

/// Reads and validates the cache file at \p Path against
/// \p ExpectedFingerprint.
LoadResult loadCacheFile(const std::string &Path,
                         uint64_t ExpectedFingerprint);

/// Writes \p Fragments (install order) to \p Path, stamped with
/// \p Fingerprint. Returns false on I/O failure.
bool saveCacheFile(const std::string &Path, uint64_t Fingerprint,
                   const std::vector<const dbt::Fragment *> &Fragments);

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_CACHEFILE_H
