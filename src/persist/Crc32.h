//===- persist/Crc32.h - CRC-32 checksums ---------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (the IEEE 802.3 / zlib polynomial, reflected form). The persistent
/// translation cache uses it twice: per-section integrity checks inside
/// cache files, and the guest-code/configuration fingerprint that decides
/// whether a cache file may be reused for a warm start.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_CRC32_H
#define ILDP_PERSIST_CRC32_H

#include <cstddef>
#include <cstdint>

namespace ildp {
namespace persist {

/// Incremental CRC-32 accumulator.
class Crc32 {
public:
  /// Folds \p Size bytes at \p Data into the running checksum.
  void update(const void *Data, size_t Size);

  /// Convenience: folds a little-endian integral value.
  void updateU64(uint64_t Value);
  void updateU32(uint32_t Value);
  void updateU8(uint8_t Value);

  /// The finalized checksum of everything fed so far (the accumulator
  /// stays usable; value() may be read repeatedly).
  uint32_t value() const { return ~State; }

private:
  uint32_t State = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte buffer.
uint32_t crc32(const void *Data, size_t Size);

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_CRC32_H
