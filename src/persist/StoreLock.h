//===- persist/StoreLock.h - Crash-recoverable store lock file ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advisory lock serializing CacheStore::saveMerged writers, hardened
/// against writer death (DESIGN.md §15). The PR-5 lock was a bare
/// O_CREAT|O_EXCL file: correct between live writers, but a writer that
/// died while holding it left a stale "<path>.lock" that made every later
/// save wait out a fixed timeout and then scribble unlocked — the exact
/// lost-update window the lock exists to close, reopened by the crash it
/// should be immune to.
///
/// StoreLock records the holder's PID inside the lock file and recovers
/// dead holders:
///
///  - acquisition creates the file O_CREAT|O_EXCL and writes the holder
///    PID (decimal, newline-terminated) into it;
///  - a contender that finds the file reads the PID and probes it with
///    kill(pid, 0): ESRCH means the holder died without unlocking, and
///    the contender *breaks* the lock (takeover) instead of waiting for a
///    timeout that cannot help;
///  - breaking is serialized through a short-lived secondary
///    "<lock>.break" file, under which the main lock's content is
///    re-verified before the unlink — two contenders that both saw the
///    dead PID cannot unlink two generations of the lock;
///  - a live holder is *waited for* (default bound 30s — saves take
///    milliseconds; the bound only exists so a wedged-but-alive holder
///    cannot hang a fleet forever). Only that pathological case reaches
///    the proceed-unlocked fallback, and it is reported as timedOut() so
///    callers can count it (persist.store_lock_timeout) rather than
///    silently racing.
///
/// An unreadable or empty lock file (a foreign creator, or a holder
/// killed inside the create-to-write window, which is a handful of
/// instructions wide) is treated as dead after a short grace period: it
/// names no live PID, so no live writer can be protected by it.
///
/// The lock is advisory and best-effort by design (mirrors PR-5): an
/// unwritable directory degrades to unlocked read-merge-write rather
/// than failing the save.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_STORELOCK_H
#define ILDP_PERSIST_STORELOCK_H

#include <cstdint>
#include <string>

namespace ildp {
namespace persist {

/// Scoped crash-recoverable lock file. Acquisition happens in the
/// constructor; the destructor releases (unlinks) only a lock this
/// process acquired.
class StoreLock {
public:
  struct Options {
    /// Bound on waiting for a LIVE holder, in milliseconds. Dead holders
    /// never consume the bound — they are broken as soon as detected.
    unsigned MaxWaitMillis = 30'000;
    /// Poll interval while a live holder works, in milliseconds.
    unsigned PollMillis = 2;
    /// How long an empty/unreadable lock file must persist before it is
    /// treated as a dead holder, in milliseconds.
    unsigned EmptyGraceMillis = 250;
  };

  /// Acquires "<LockPath>" per the protocol above (default Options; the
  /// two-argument overload exists because GCC cannot use a nested
  /// struct's member initializers in a default argument).
  explicit StoreLock(std::string LockPath);
  StoreLock(std::string LockPath, Options Opts);
  StoreLock(const StoreLock &) = delete;
  StoreLock &operator=(const StoreLock &) = delete;
  ~StoreLock();

  /// True when this process holds the lock.
  bool held() const { return Held; }
  /// True when acquisition found the file held at least once.
  bool contended() const { return Contended; }
  /// Dead-holder locks this acquisition broke (0, 1, or — if a breaker
  /// itself died mid-takeover — more).
  unsigned broken() const { return Broken; }
  /// True when a live holder outlasted MaxWaitMillis and the caller is
  /// proceeding unlocked (the only remaining lost-update path).
  bool timedOut() const { return TimedOut; }

  /// The PID recorded in \p LockPath, or -1 when the file is absent,
  /// empty, or unparseable.
  static long readHolderPid(const std::string &LockPath);

private:
  bool tryCreate();
  bool breakLock(long ExpectDeadPid);

  std::string Path;
  Options Opts;
  bool Held = false;
  bool Contended = false;
  bool TimedOut = false;
  unsigned Broken = 0;
};

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_STORELOCK_H
