//===- persist/StoreLock.h - Crash-recoverable store lock file ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advisory lock serializing CacheStore::saveMerged writers, hardened
/// against writer death (DESIGN.md §15). The PR-5 lock was a bare
/// O_CREAT|O_EXCL file: correct between live writers, but a writer that
/// died while holding it left a stale "<path>.lock" that made every later
/// save wait out a fixed timeout and then scribble unlocked — the exact
/// lost-update window the lock exists to close, reopened by the crash it
/// should be immune to.
///
/// StoreLock records the holder's identity inside the lock file and
/// recovers dead holders:
///
///  - acquisition creates the file O_CREAT|O_EXCL and writes
///    "<pid> <starttime>\n" into it — the start-time token (from
///    /proc/<pid>/stat, 0 where unavailable) distinguishes the recorded
///    holder from an unrelated process that later recycled its PID;
///  - a contender that finds the file reads the PID and probes it with
///    kill(pid, 0): ESRCH — or a live PID whose start-time token no
///    longer matches the recorded one (recycled) — means the holder died
///    without unlocking, and the contender *breaks* the lock (takeover)
///    instead of waiting for a timeout that cannot help;
///  - breaking is serialized through a short-lived secondary
///    "<lock>.break" file, under which the main lock's content is
///    re-verified before the unlink — two contenders that both saw the
///    dead PID cannot unlink two generations of the lock;
///  - a live holder is *waited for* (default bound 30s — saves take
///    milliseconds). The bound caps EVERY non-progressing wait — a
///    wedged-but-alive holder, and equally a takeover that can never
///    complete (e.g. a break file pinned by a live recycled PID) — so no
///    shape of on-disk wreckage can hang a save forever. Reaching it is
///    reported as timedOut() so callers can count it
///    (persist.store_lock_timeout) rather than silently racing.
///
/// An unreadable or empty lock file (a foreign creator, or a holder
/// killed inside the create-to-write window, which is a handful of
/// instructions wide) is treated as dead after a short grace period: it
/// names no live PID, so no live writer can be protected by it. The
/// grace is tied to the file's identity (inode + mtime), re-verified
/// under the break lock before the unlink: a holder merely preempted
/// inside that window, or a fresh lock created after the grace expired,
/// restarts the clock instead of losing a live lock.
///
/// The lock is advisory and best-effort by design (mirrors PR-5): an
/// unwritable directory degrades to unlocked read-merge-write rather
/// than failing the save.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_STORELOCK_H
#define ILDP_PERSIST_STORELOCK_H

#include <cstdint>
#include <string>

namespace ildp {
namespace persist {

/// Scoped crash-recoverable lock file. Acquisition happens in the
/// constructor; the destructor releases (unlinks) only a lock this
/// process acquired.
class StoreLock {
public:
  struct Options {
    /// Bound on the whole acquisition, in milliseconds. Dead holders are
    /// normally broken within one poll and never approach it; the bound
    /// exists so that NO waiting path — a live holder, a takeover that
    /// cannot complete, an unreadable-file grace — can hang the caller
    /// forever instead of degrading to timedOut().
    unsigned MaxWaitMillis = 30'000;
    /// Poll interval while a live holder works, in milliseconds.
    unsigned PollMillis = 2;
    /// How long an empty/unreadable lock file must persist before it is
    /// treated as a dead holder, in milliseconds.
    unsigned EmptyGraceMillis = 250;
  };

  /// Acquires "<LockPath>" per the protocol above (default Options; the
  /// two-argument overload exists because GCC cannot use a nested
  /// struct's member initializers in a default argument).
  explicit StoreLock(std::string LockPath);
  StoreLock(std::string LockPath, Options Opts);
  StoreLock(const StoreLock &) = delete;
  StoreLock &operator=(const StoreLock &) = delete;
  ~StoreLock();

  /// True when this process holds the lock.
  bool held() const { return Held; }
  /// True when acquisition found the file held at least once.
  bool contended() const { return Contended; }
  /// Dead-holder locks this acquisition broke (0, 1, or — if a breaker
  /// itself died mid-takeover — more).
  unsigned broken() const { return Broken; }
  /// True when a live holder outlasted MaxWaitMillis and the caller is
  /// proceeding unlocked (the only remaining lost-update path).
  bool timedOut() const { return TimedOut; }

  /// The PID recorded in \p LockPath, or -1 when the file is absent,
  /// empty, or unparseable. (The start-time token that follows the PID
  /// in current-format files is ignored here.)
  static long readHolderPid(const std::string &LockPath);

private:
  /// What a takeover expects to find under the break lock: a dead
  /// holder (Pid > 0, with the start-time token it was recorded with),
  /// or — Pid < 0 — an unreadable lock file whose grace the caller sat
  /// out, identified by inode + mtime so a lock created since keeps its
  /// life.
  struct DeadHolder {
    long Pid = -1;
    unsigned long long StartTime = 0;
    unsigned long long Ino = 0;
    long long MtimeNs = 0;
  };

  bool tryCreate();
  bool breakLock(const DeadHolder &Expect);

  std::string Path;
  Options Opts;
  bool Held = false;
  bool Contended = false;
  bool TimedOut = false;
  unsigned Broken = 0;
};

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_STORELOCK_H
