//===- persist/FragmentCodec.h - Fragment binary encode/decode ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of translation-cache fragments: the decoded I-ISA
/// body, the PEI side table (Section 2.2's precise-trap metadata), the
/// patchable exit records, and the source-address map. Encoding is
/// byte-exact and deterministic (a fragment always encodes to the same
/// bytes), which lets round-trip tests compare encodings directly and lets
/// cache files carry flat CRCs.
///
/// Decoding validates every enum, register number, and table index against
/// the structural invariants the rest of the system assumes (the executor
/// indexes Body with exit InstIndex values, trap recovery indexes the PEI
/// table with PeiIndex, ...). A fragment that decodes successfully is safe
/// to install; anything else fails the reader without partial effects
/// beyond the scratch fragment.
///
/// Installation-time state (IBase, ExecCount) is NOT serialized: imported
/// fragments go through TranslationCache::install() again, which reassigns
/// I-PCs and re-runs exit patching.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_FRAGMENTCODEC_H
#define ILDP_PERSIST_FRAGMENTCODEC_H

#include "core/Fragment.h"
#include "persist/ByteStream.h"

namespace ildp {
namespace persist {

/// Appends the serialized form of \p Frag to \p W.
void encodeFragment(const dbt::Fragment &Frag, ByteWriter &W);

/// Decodes one fragment from \p R into \p Out. Returns true on success;
/// on failure the reader is failed and \p Out is unspecified.
bool decodeFragment(ByteReader &R, dbt::Fragment &Out);

/// Convenience: the canonical encoding of \p Frag as a byte vector
/// (round-trip tests compare these for byte identity).
std::vector<uint8_t> encodedBytes(const dbt::Fragment &Frag);

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_FRAGMENTCODEC_H
