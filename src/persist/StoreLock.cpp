//===- persist/StoreLock.cpp - Crash-recoverable store lock file ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/StoreLock.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::persist;

#ifndef _WIN32

namespace {

/// Creates \p Path O_CREAT|O_EXCL and writes "<pid>\n" into it. Returns
/// true on acquisition. EEXIST means held; any other error means the
/// directory refuses lock files (best-effort: caller degrades).
bool createPidFile(const std::string &Path, bool &Unsupported) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (Fd < 0) {
    Unsupported = errno != EEXIST;
    return false;
  }
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%ld\n", long(::getpid()));
  const char *P = Buf;
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, size_t(Len));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // Unwritable fd: the empty-grace path will reap the file.
    }
    P += N;
    Len -= int(N);
  }
  ::close(Fd);
  return true;
}

/// True when \p Pid names no live process (ESRCH). EPERM — a live process
/// we may not signal — counts as alive.
bool pidDead(long Pid) {
  return ::kill(pid_t(Pid), 0) != 0 && errno == ESRCH;
}

} // namespace

long StoreLock::readHolderPid(const std::string &LockPath) {
  int Fd = ::open(LockPath.c_str(), O_RDONLY);
  if (Fd < 0)
    return -1;
  char Buf[32];
  ssize_t N;
  do
    N = ::read(Fd, Buf, sizeof(Buf) - 1);
  while (N < 0 && errno == EINTR);
  ::close(Fd);
  if (N <= 0)
    return -1;
  Buf[N] = '\0';
  char *End = nullptr;
  long Pid = std::strtol(Buf, &End, 10);
  if (End == Buf || Pid <= 0)
    return -1;
  return Pid;
}

bool StoreLock::tryCreate() {
  bool Unsupported = false;
  if (createPidFile(Path, Unsupported)) {
    Held = true;
    return true;
  }
  if (Unsupported) {
    // Locking is best-effort: an unwritable directory must not fail the
    // save. Report as a (non-)acquisition with no holder to wait for.
    TimedOut = true;
    return true;
  }
  return false;
}

/// Serialized takeover of a dead holder's lock. The break lock is held
/// only across a re-verify + unlink (microseconds), so its own staleness
/// handling can be blunt: a break file naming a dead PID is unlinked on
/// sight. Returns true when the main lock was (or turned out to already
/// be) cleared.
bool StoreLock::breakLock(long ExpectDeadPid) {
  std::string BreakPath = Path + ".break";
  bool Unsupported = false;
  if (!createPidFile(BreakPath, Unsupported)) {
    if (Unsupported)
      return false; // Cannot break; outer loop keeps polling.
    long BreakerPid = readHolderPid(BreakPath);
    // A breaker that died inside its microseconds-wide critical section:
    // clear its break file and let the outer loop retry. -1 (empty file)
    // gets the same treatment — the window between create and write is a
    // few instructions, so an empty break file is overwhelmingly a dead
    // one, and the worst false positive re-runs a re-verified takeover.
    if (BreakerPid < 0 || pidDead(BreakerPid))
      std::remove(BreakPath.c_str());
    return false; // Someone is (or was) breaking; retry the outer loop.
  }
  // Under the break lock: re-verify before unlinking. The main lock may
  // have been broken and re-acquired by a live writer since we read the
  // dead PID — unlinking *that* would hand two writers the same lock.
  long Now = readHolderPid(Path);
  bool Cleared = false;
  if (Now == ExpectDeadPid || (Now > 0 && pidDead(Now))) {
    std::remove(Path.c_str());
    Cleared = true;
    ++Broken;
  } else if (Now < 0) {
    // Unreadable main lock under the break lock: only reap it when the
    // caller already sat out the empty-file grace (ExpectDeadPid < 0).
    if (ExpectDeadPid < 0) {
      std::remove(Path.c_str());
      Cleared = true;
      ++Broken;
    }
  }
  std::remove(BreakPath.c_str());
  return Cleared;
}

StoreLock::StoreLock(std::string LockPath)
    : StoreLock(std::move(LockPath), Options()) {}

StoreLock::StoreLock(std::string LockPath, Options O)
    : Path(std::move(LockPath)), Opts(O) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  Clock::time_point FirstUnreadable{};
  for (;;) {
    if (tryCreate())
      return;
    Contended = true;

    long Holder = readHolderPid(Path);
    if (Holder > 0) {
      FirstUnreadable = Clock::time_point{};
      if (pidDead(Holder)) {
        // Crashed holder: take over now. Never wait a timeout on a PID
        // that can no longer release the lock.
        if (!breakLock(Holder)) // Another breaker beat us; let it finish.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.PollMillis));
        continue; // Race others for the cleared slot immediately.
      }
      // Live holder: wait, bounded only against the pathological wedged
      // case. The holder's own save is milliseconds of work.
      if (Clock::now() - Start >
          std::chrono::milliseconds(Opts.MaxWaitMillis)) {
        TimedOut = true;
        return;
      }
    } else {
      // Present but empty/unparseable: either a holder killed inside the
      // create-to-write window or a foreign artifact. Neither names a
      // live writer; reap it after a short grace.
      if (FirstUnreadable == Clock::time_point{})
        FirstUnreadable = Clock::now();
      else if (Clock::now() - FirstUnreadable >
               std::chrono::milliseconds(Opts.EmptyGraceMillis)) {
        breakLock(-1);
        FirstUnreadable = Clock::time_point{};
        continue;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(Opts.PollMillis));
  }
}

StoreLock::~StoreLock() {
  if (Held)
    std::remove(Path.c_str());
}

#else // _WIN32

long StoreLock::readHolderPid(const std::string &) { return -1; }
bool StoreLock::tryCreate() { return true; }
bool StoreLock::breakLock(long) { return false; }
StoreLock::StoreLock(std::string LockPath)
    : StoreLock(std::move(LockPath), Options()) {}
StoreLock::StoreLock(std::string LockPath, Options O)
    : Path(std::move(LockPath)), Opts(O) {
  TimedOut = true; // No lock support: callers proceed unlocked.
}
StoreLock::~StoreLock() = default;

#endif
