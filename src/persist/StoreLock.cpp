//===- persist/StoreLock.cpp - Crash-recoverable store lock file ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/StoreLock.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::persist;

#ifndef _WIN32

namespace {

/// Start-time token for \p Pid: /proc/<pid>/stat field 22 (clock ticks
/// since boot at process start), or 0 where unavailable (non-Linux,
/// /proc gone, process exited mid-read). Stable for a process's whole
/// life, and different for every reuse of the same PID — the tiebreak
/// that tells the recorded holder apart from a recycled number.
unsigned long long procStartTime(long Pid) {
#ifdef __linux__
  char StatPath[64];
  std::snprintf(StatPath, sizeof(StatPath), "/proc/%ld/stat", Pid);
  int Fd = ::open(StatPath, O_RDONLY);
  if (Fd < 0)
    return 0;
  char Buf[1024];
  ssize_t N;
  do
    N = ::read(Fd, Buf, sizeof(Buf) - 1);
  while (N < 0 && errno == EINTR);
  ::close(Fd);
  if (N <= 0)
    return 0;
  Buf[N] = '\0';
  // comm (field 2) may itself contain spaces and parentheses; the
  // numeric fields resume after the LAST ')'. starttime is field 22 —
  // the 20th whitespace-separated token past it.
  const char *P = std::strrchr(Buf, ')');
  if (!P)
    return 0;
  ++P;
  for (int Tok = 0; Tok != 19; ++Tok) {
    while (*P == ' ')
      ++P;
    while (*P && *P != ' ')
      ++P;
  }
  while (*P == ' ')
    ++P;
  char *End = nullptr;
  unsigned long long Start = std::strtoull(P, &End, 10);
  return End == P ? 0 : Start;
#else
  (void)Pid;
  return 0;
#endif
}

/// Creates \p Path O_CREAT|O_EXCL and writes "<pid> <starttime>\n" into
/// it. Returns true on acquisition. EEXIST means held; any other error
/// means the directory refuses lock files (best-effort: caller
/// degrades).
bool createPidFile(const std::string &Path, bool &Unsupported) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (Fd < 0) {
    Unsupported = errno != EEXIST;
    return false;
  }
  char Buf[64];
  int Len =
      std::snprintf(Buf, sizeof(Buf), "%ld %llu\n", long(::getpid()),
                    procStartTime(long(::getpid())));
  const char *P = Buf;
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, size_t(Len));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // Unwritable fd: the empty-grace path will reap the file.
    }
    P += N;
    Len -= int(N);
  }
  ::close(Fd);
  return true;
}

/// Parses "<pid> [starttime]" out of \p LockPath. Returns the PID (-1
/// when the file is absent, empty, or unparseable) and sets
/// \p StartTime to the recorded token (0 when the file predates tokens
/// or omits one).
long readHolder(const std::string &LockPath, unsigned long long &StartTime) {
  StartTime = 0;
  int Fd = ::open(LockPath.c_str(), O_RDONLY);
  if (Fd < 0)
    return -1;
  char Buf[64];
  ssize_t N;
  do
    N = ::read(Fd, Buf, sizeof(Buf) - 1);
  while (N < 0 && errno == EINTR);
  ::close(Fd);
  if (N <= 0)
    return -1;
  Buf[N] = '\0';
  char *End = nullptr;
  long Pid = std::strtol(Buf, &End, 10);
  if (End == Buf || Pid <= 0)
    return -1;
  char *TokEnd = nullptr;
  unsigned long long Tok = std::strtoull(End, &TokEnd, 10);
  if (TokEnd != End)
    StartTime = Tok;
  return Pid;
}

/// True when \p Pid can no longer be the recorded holder: ESRCH (dead
/// outright), or alive but with a start time different from the
/// recorded token — the holder died and an unrelated process recycled
/// its PID. EPERM — a live process we may not signal — counts as
/// alive, and a zero token (old-format file, /proc unavailable) falls
/// back to the kill() verdict alone.
bool pidDead(long Pid, unsigned long long StartTok) {
  if (::kill(pid_t(Pid), 0) != 0)
    return errno == ESRCH;
  if (StartTok == 0)
    return false;
  unsigned long long Now = procStartTime(Pid);
  return Now != 0 && Now != StartTok;
}

/// \p St's mtime as nanoseconds — half of the identity (with st_ino)
/// that ties an empty-file grace period to one specific lock file.
long long mtimeNs(const struct stat &St) {
#ifdef __APPLE__
  return St.st_mtimespec.tv_sec * 1'000'000'000LL + St.st_mtimespec.tv_nsec;
#else
  return St.st_mtim.tv_sec * 1'000'000'000LL + St.st_mtim.tv_nsec;
#endif
}

} // namespace

long StoreLock::readHolderPid(const std::string &LockPath) {
  unsigned long long Tok = 0;
  return readHolder(LockPath, Tok);
}

bool StoreLock::tryCreate() {
  bool Unsupported = false;
  if (createPidFile(Path, Unsupported)) {
    Held = true;
    return true;
  }
  if (Unsupported) {
    // Locking is best-effort: an unwritable directory must not fail the
    // save. Report as a (non-)acquisition with no holder to wait for.
    TimedOut = true;
    return true;
  }
  return false;
}

/// Serialized takeover of a dead holder's lock. The break lock is held
/// only across a re-verify + unlink (microseconds), so its own staleness
/// handling can be blunt: a break file naming a dead PID is unlinked on
/// sight. Returns true when the main lock was (or turned out to already
/// be) cleared.
bool StoreLock::breakLock(const DeadHolder &Expect) {
  std::string BreakPath = Path + ".break";
  bool Unsupported = false;
  if (!createPidFile(BreakPath, Unsupported)) {
    if (Unsupported)
      return false; // Cannot break; outer loop keeps polling.
    unsigned long long BreakerTok = 0;
    long BreakerPid = readHolder(BreakPath, BreakerTok);
    // A breaker that died inside its microseconds-wide critical section:
    // clear its break file and let the outer loop retry. -1 (empty file)
    // gets the same treatment — the window between create and write is a
    // few instructions, so an empty break file is overwhelmingly a dead
    // one, and the worst false positive re-runs a re-verified takeover.
    if (BreakerPid < 0 || pidDead(BreakerPid, BreakerTok))
      std::remove(BreakPath.c_str());
    return false; // Someone is (or was) breaking; retry the outer loop.
  }
  // Under the break lock: re-verify before unlinking. The main lock may
  // have been broken and re-acquired by a live writer since we read the
  // dead PID — unlinking *that* would hand two writers the same lock.
  unsigned long long NowTok = 0;
  long Now = readHolder(Path, NowTok);
  bool Cleared = false;
  if (Now > 0) {
    if ((Now == Expect.Pid && NowTok == Expect.StartTime) ||
        pidDead(Now, NowTok)) {
      std::remove(Path.c_str());
      Cleared = true;
      ++Broken;
    }
  } else if (Now < 0 && Expect.Pid < 0) {
    // Unreadable main lock under the break lock: reap it only when it
    // is the SAME file whose grace the caller sat out — inode and mtime
    // unchanged. A lock created (or rewritten) since is someone's live
    // acquisition inside its create-to-write window; it keeps its life
    // and the caller's grace clock restarts on the new identity.
    struct stat St;
    if (::stat(Path.c_str(), &St) == 0 &&
        (unsigned long long)(St.st_ino) == Expect.Ino &&
        mtimeNs(St) == Expect.MtimeNs) {
      std::remove(Path.c_str());
      Cleared = true;
      ++Broken;
    }
  }
  std::remove(BreakPath.c_str());
  return Cleared;
}

StoreLock::StoreLock(std::string LockPath)
    : StoreLock(std::move(LockPath), Options()) {}

StoreLock::StoreLock(std::string LockPath, Options O)
    : Path(std::move(LockPath)), Opts(O) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  Clock::time_point FirstUnreadable{};
  unsigned long long GraceIno = 0;
  long long GraceMtimeNs = 0;
  for (;;) {
    if (tryCreate())
      return;
    Contended = true;

    // One bound covers EVERY waiting path — a live holder, a dead
    // holder whose takeover cannot complete (a break file pinned by a
    // live recycled PID), an unreadable-file grace. Dead holders are
    // normally broken within one poll and never feel it; the bound only
    // guarantees that no shape of on-disk wreckage hangs the save
    // forever instead of degrading to unlocked read-merge-write.
    if (Clock::now() - Start >
        std::chrono::milliseconds(Opts.MaxWaitMillis)) {
      TimedOut = true;
      return;
    }

    unsigned long long HolderTok = 0;
    long Holder = readHolder(Path, HolderTok);
    if (Holder > 0) {
      FirstUnreadable = Clock::time_point{};
      if (pidDead(Holder, HolderTok)) {
        // Crashed holder (or a recycled PID wearing its number): take
        // over now rather than waiting a timeout on a lock nobody can
        // release.
        DeadHolder D;
        D.Pid = Holder;
        D.StartTime = HolderTok;
        if (!breakLock(D)) // Another breaker beat us; let it finish.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.PollMillis));
        continue; // Race others for the cleared slot immediately.
      }
      // Live holder: wait it out under the bound above. The holder's
      // own save is milliseconds of work.
    } else {
      // Present but empty/unparseable: either a holder killed inside the
      // create-to-write window or a foreign artifact. Neither names a
      // live writer; reap it after a short grace — tied to THIS file's
      // identity, so a holder merely preempted inside that window (or a
      // fresh lock created meanwhile) restarts the clock instead of
      // losing a live lock.
      struct stat St;
      if (::stat(Path.c_str(), &St) != 0) {
        FirstUnreadable = Clock::time_point{};
        continue; // Vanished: race for the free slot immediately.
      }
      unsigned long long Ino = (unsigned long long)(St.st_ino);
      long long Mt = mtimeNs(St);
      if (FirstUnreadable == Clock::time_point{} || Ino != GraceIno ||
          Mt != GraceMtimeNs) {
        FirstUnreadable = Clock::now();
        GraceIno = Ino;
        GraceMtimeNs = Mt;
      } else if (Clock::now() - FirstUnreadable >
                 std::chrono::milliseconds(Opts.EmptyGraceMillis)) {
        DeadHolder D;
        D.Ino = Ino;
        D.MtimeNs = Mt;
        breakLock(D);
        FirstUnreadable = Clock::time_point{};
        continue;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(Opts.PollMillis));
  }
}

StoreLock::~StoreLock() {
  if (Held)
    std::remove(Path.c_str());
}

#else // _WIN32

long StoreLock::readHolderPid(const std::string &) { return -1; }
bool StoreLock::tryCreate() { return true; }
bool StoreLock::breakLock(const DeadHolder &) { return false; }
StoreLock::StoreLock(std::string LockPath)
    : StoreLock(std::move(LockPath), Options()) {}
StoreLock::StoreLock(std::string LockPath, Options O)
    : Path(std::move(LockPath)), Opts(O) {
  TimedOut = true; // No lock support: callers proceed unlocked.
}
StoreLock::~StoreLock() = default;

#endif
