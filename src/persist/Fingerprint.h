//===- persist/Fingerprint.h - Cache-file compatibility fingerprint -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persisted translation cache is only reusable when the guest program
/// and the translator configuration that produced it are both unchanged:
/// fragments embed absolute V-ISA addresses, chaining decisions, and
/// variant-specific code shapes. The fingerprint binds a cache file to
/// (guest image bytes, entry PC, DbtConfig, format version); a warm start
/// whose fingerprint differs falls back to a cold run.
///
/// The guest half hashes every mapped page (base address + contents) in
/// ascending address order, so it must be computed over the *initial*
/// image, before execution mutates data pages. The VM does this at
/// construction time and reuses the value for the save on exit.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_FINGERPRINT_H
#define ILDP_PERSIST_FINGERPRINT_H

#include "core/Config.h"
#include "mem/GuestMemory.h"

#include <cstdint>

namespace ildp {
namespace persist {

/// Fingerprint of (guest image, entry PC, translator config). The two
/// halves are independent CRC32s — guest image in the low word, config in
/// the high word — so a mismatch diagnostic can tell "program changed"
/// from "configuration changed".
uint64_t fingerprint(const GuestMemory &Mem, uint64_t EntryPc,
                     const dbt::DbtConfig &Config);

/// Config-only half (high word of fingerprint()).
uint32_t configCrc(const dbt::DbtConfig &Config);

/// Guest-image-only half (low word of fingerprint()).
uint32_t guestCrc(const GuestMemory &Mem, uint64_t EntryPc);

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_FINGERPRINT_H
