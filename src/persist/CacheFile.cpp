//===- persist/CacheFile.cpp - Persistent translation-cache files ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/CacheFile.h"

#include "persist/ByteStream.h"
#include "persist/Crc32.h"
#include "persist/FragmentCodec.h"

#include <cstdio>
#include <fstream>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;

namespace {

constexpr uint32_t SectionMeta = 1;
constexpr uint32_t SectionFragments = 2;
constexpr size_t HeaderBytes = 8 + 4 + 4 + 8;
constexpr size_t SectionEntryBytes = 4 + 8 + 8 + 4;
/// Corruption guard on the section count; the format defines two sections
/// and leaves generous room for additions.
constexpr uint32_t MaxSections = 16;

struct SectionEntry {
  uint32_t Id = 0;
  uint64_t Offset = 0;
  uint64_t Size = 0;
  uint32_t Crc = 0;
};

} // namespace

const char *persist::getLoadStatusName(LoadStatus Status) {
  switch (Status) {
  case LoadStatus::Ok:
    return "ok";
  case LoadStatus::FileNotFound:
    return "file-not-found";
  case LoadStatus::BadMagic:
    return "bad-magic";
  case LoadStatus::BadVersion:
    return "bad-version";
  case LoadStatus::Truncated:
    return "truncated";
  case LoadStatus::BadChecksum:
    return "bad-checksum";
  case LoadStatus::FingerprintMismatch:
    return "fingerprint-mismatch";
  case LoadStatus::BadPayload:
    return "bad-payload";
  }
  return "unknown";
}

LoadResult persist::loadCacheFile(const std::string &Path,
                                  uint64_t ExpectedFingerprint) {
  LoadResult Result;

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Result.Status = LoadStatus::FileNotFound;
    return Result;
  }
  std::vector<uint8_t> File((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  ByteReader R(File);
  uint64_t Magic = R.getU64();
  if (R.failed() || Magic != CacheFileMagic) {
    Result.Status = File.size() < HeaderBytes ? LoadStatus::Truncated
                                              : LoadStatus::BadMagic;
    return Result;
  }
  uint32_t Version = R.getU32();
  uint32_t SectionCount = R.getU32();
  Result.FileFingerprint = R.getU64();
  if (R.failed()) {
    Result.Status = LoadStatus::Truncated;
    return Result;
  }
  if (Version != CacheFormatVersion) {
    Result.Status = LoadStatus::BadVersion;
    return Result;
  }
  if (SectionCount == 0 || SectionCount > MaxSections) {
    Result.Status = LoadStatus::Truncated;
    return Result;
  }

  // Section table: validate bounds and CRC of every section before any
  // payload decoding. The lengths come from disk — never trust them.
  std::vector<SectionEntry> Sections(SectionCount);
  for (SectionEntry &S : Sections) {
    S.Id = R.getU32();
    S.Offset = R.getU64();
    S.Size = R.getU64();
    S.Crc = R.getU32();
  }
  if (R.failed()) {
    Result.Status = LoadStatus::Truncated;
    return Result;
  }
  for (const SectionEntry &S : Sections) {
    if (S.Offset > File.size() || S.Size > File.size() - S.Offset) {
      Result.Status = LoadStatus::Truncated;
      return Result;
    }
    if (crc32(File.data() + S.Offset, size_t(S.Size)) != S.Crc) {
      Result.Status = LoadStatus::BadChecksum;
      return Result;
    }
  }

  // Structure and checksums are sound; now gate on compatibility.
  if (Result.FileFingerprint != ExpectedFingerprint) {
    Result.Status = LoadStatus::FingerprintMismatch;
    return Result;
  }

  const SectionEntry *Meta = nullptr, *Frags = nullptr;
  for (const SectionEntry &S : Sections) {
    if (S.Id == SectionMeta)
      Meta = &S;
    else if (S.Id == SectionFragments)
      Frags = &S;
  }
  if (!Meta || !Frags) {
    Result.Status = LoadStatus::BadPayload;
    return Result;
  }

  ByteReader MetaR(File.data() + Meta->Offset, size_t(Meta->Size));
  uint32_t FragmentCount = MetaR.getU32();
  uint64_t TotalBodyBytes = MetaR.getU64();
  if (MetaR.failed()) {
    Result.Status = LoadStatus::BadPayload;
    return Result;
  }

  ByteReader FragR(File.data() + Frags->Offset, size_t(Frags->Size));
  Result.Fragments.reserve(FragmentCount);
  uint64_t DecodedBodyBytes = 0;
  for (uint32_t I = 0; I != FragmentCount; ++I) {
    Fragment Frag;
    if (!decodeFragment(FragR, Frag)) {
      Result.Fragments.clear();
      Result.Status = LoadStatus::BadPayload;
      return Result;
    }
    DecodedBodyBytes += Frag.BodyBytes;
    Result.Fragments.push_back(std::move(Frag));
  }
  // The fragment section must be exactly consumed, and the meta cross-check
  // must agree — leftover bytes or a count mismatch mean corruption that
  // happened to keep the CRC intact (e.g. a truncated-then-repacked file).
  if (!FragR.atEnd() || DecodedBodyBytes != TotalBodyBytes) {
    Result.Fragments.clear();
    Result.Status = LoadStatus::BadPayload;
    return Result;
  }

  Result.Status = LoadStatus::Ok;
  return Result;
}

bool persist::saveCacheFile(const std::string &Path, uint64_t Fingerprint,
                            const std::vector<const Fragment *> &Fragments) {
  ByteWriter MetaW;
  uint64_t TotalBodyBytes = 0;
  for (const Fragment *Frag : Fragments)
    TotalBodyBytes += Frag->BodyBytes;
  MetaW.putU32(uint32_t(Fragments.size()));
  MetaW.putU64(TotalBodyBytes);

  ByteWriter FragW;
  for (const Fragment *Frag : Fragments)
    encodeFragment(*Frag, FragW);

  ByteWriter W;
  W.putU64(CacheFileMagic);
  W.putU32(CacheFormatVersion);
  W.putU32(2); // section count
  W.putU64(Fingerprint);
  size_t TableOffset = W.size();
  for (int I = 0; I != 2; ++I)
    for (size_t B = 0; B != SectionEntryBytes; ++B)
      W.putU8(0); // Placeholder; patched below once offsets are known.

  auto EmitSection = [&](int Index, uint32_t Id, const ByteWriter &Body) {
    size_t Offset = W.size();
    W.putBytes(Body.bytes().data(), Body.size());
    size_t Entry = TableOffset + size_t(Index) * SectionEntryBytes;
    W.patchU32(Entry, Id);
    W.patchU64(Entry + 4, Offset);
    W.patchU64(Entry + 12, Body.size());
    W.patchU32(Entry + 20, crc32(Body.bytes().data(), Body.size()));
  };
  EmitSection(0, SectionMeta, MetaW);
  EmitSection(1, SectionFragments, FragW);

  // Stage and rename so a crash mid-write cannot corrupt an existing file.
  std::string TmpPath = Path + ".tmp";
  {
    std::ofstream Out(TmpPath, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(W.bytes().data()),
              std::streamsize(W.size()));
    if (!Out)
      return false;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}
