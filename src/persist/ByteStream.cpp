//===- persist/ByteStream.cpp - Bounded binary (de)serialization ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/ByteStream.h"

#include <cassert>
#include <cstring>

using namespace ildp;
using namespace ildp::persist;

void ByteWriter::putU16(uint16_t Value) {
  putU8(uint8_t(Value));
  putU8(uint8_t(Value >> 8));
}

void ByteWriter::putU32(uint32_t Value) {
  for (int I = 0; I != 4; ++I)
    putU8(uint8_t(Value >> (8 * I)));
}

void ByteWriter::putU64(uint64_t Value) {
  for (int I = 0; I != 8; ++I)
    putU8(uint8_t(Value >> (8 * I)));
}

void ByteWriter::putBytes(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  Buf.insert(Buf.end(), Bytes, Bytes + Size);
}

void ByteWriter::patchU32(size_t Offset, uint32_t Value) {
  assert(Offset + 4 <= Buf.size() && "Patch outside written range");
  for (int I = 0; I != 4; ++I)
    Buf[Offset + I] = uint8_t(Value >> (8 * I));
}

void ByteWriter::patchU64(size_t Offset, uint64_t Value) {
  assert(Offset + 8 <= Buf.size() && "Patch outside written range");
  for (int I = 0; I != 8; ++I)
    Buf[Offset + I] = uint8_t(Value >> (8 * I));
}

uint8_t ByteReader::getU8() {
  if (Failed || Pos + 1 > Size) {
    Failed = true;
    return 0;
  }
  return Data[Pos++];
}

uint16_t ByteReader::getU16() {
  if (Failed || Pos + 2 > Size) {
    Failed = true;
    return 0;
  }
  uint16_t V = uint16_t(Data[Pos]) | uint16_t(Data[Pos + 1]) << 8;
  Pos += 2;
  return V;
}

uint32_t ByteReader::getU32() {
  if (Failed || Pos + 4 > Size) {
    Failed = true;
    return 0;
  }
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= uint32_t(Data[Pos + I]) << (8 * I);
  Pos += 4;
  return V;
}

uint64_t ByteReader::getU64() {
  if (Failed || Pos + 8 > Size) {
    Failed = true;
    return 0;
  }
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= uint64_t(Data[Pos + I]) << (8 * I);
  Pos += 8;
  return V;
}

bool ByteReader::getBytes(void *Out, size_t Count) {
  if (Failed || Pos + Count > Size || Pos + Count < Pos) {
    Failed = true;
    std::memset(Out, 0, Count);
    return false;
  }
  std::memcpy(Out, Data + Pos, Count);
  Pos += Count;
  return true;
}

uint32_t ByteReader::getCount(size_t MinElemBytes) {
  uint32_t Count = getU32();
  if (Failed)
    return 0;
  // A count claiming more elements than the remaining bytes could possibly
  // encode is corruption; reject before any caller allocates.
  if (MinElemBytes != 0 && uint64_t(Count) * MinElemBytes > remaining()) {
    Failed = true;
    return 0;
  }
  return Count;
}

ByteReader ByteReader::slice(size_t Offset, size_t Length) {
  if (Failed || Offset > Size || Length > Size - Offset) {
    Failed = true;
    return ByteReader(nullptr, 0);
  }
  return ByteReader(Data + Offset, Length);
}
