//===- persist/ByteStream.h - Bounded binary (de)serialization ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary writer/reader for the persistent translation cache.
/// The reader is deliberately paranoid: every read is bounds-checked against
/// the underlying buffer, length prefixes are validated before any
/// allocation, and once a read fails the stream latches into a failed state
/// and every subsequent read returns zeros. Cache files come from disk and
/// may be truncated or corrupted arbitrarily; the deserializer must degrade
/// to "reject the file", never to undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_BYTESTREAM_H
#define ILDP_PERSIST_BYTESTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace persist {

/// Append-only little-endian byte buffer.
class ByteWriter {
public:
  void putU8(uint8_t Value) { Buf.push_back(Value); }
  void putU16(uint16_t Value);
  void putU32(uint32_t Value);
  void putU64(uint64_t Value);
  void putI64(int64_t Value) { putU64(uint64_t(Value)); }
  void putI32(int32_t Value) { putU32(uint32_t(Value)); }
  void putI16(int16_t Value) { putU16(uint16_t(Value)); }
  void putBytes(const void *Data, size_t Size);

  /// Overwrites 4 bytes at \p Offset (for back-patching section tables).
  void patchU32(size_t Offset, uint32_t Value);
  /// Overwrites 8 bytes at \p Offset.
  void patchU64(size_t Offset, uint64_t Value);

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader over a byte buffer it does not own.
/// All getters return 0 once the stream has failed; callers check ok()
/// (or failed()) after a decode pass rather than after every read.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : ByteReader(Buf.data(), Buf.size()) {}

  uint8_t getU8();
  uint16_t getU16();
  uint32_t getU32();
  uint64_t getU64();
  int64_t getI64() { return int64_t(getU64()); }
  int32_t getI32() { return int32_t(getU32()); }
  int16_t getI16() { return int16_t(getU16()); }
  /// Copies \p Count bytes out; zero-fills and fails on overrun.
  bool getBytes(void *Out, size_t Count);

  /// Reads a u32 element count and validates it against the bytes actually
  /// remaining (each element occupying at least \p MinElemBytes), so a
  /// corrupted length prefix can never drive a huge allocation. Returns 0
  /// and fails the stream when the count is implausible.
  uint32_t getCount(size_t MinElemBytes);

  /// Marks the stream failed (decoders call this on semantic violations,
  /// e.g. an out-of-range enum value).
  void fail() { Failed = true; }

  bool ok() const { return !Failed; }
  bool failed() const { return Failed; }
  size_t pos() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  /// Returns a sub-reader over [Offset, Offset+Length) of this reader's
  /// buffer; fails this stream and returns an empty reader on overrun.
  ByteReader slice(size_t Offset, size_t Length);

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_BYTESTREAM_H
