//===- persist/CacheStore.h - Multi-image persistent cache store ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-image translation-cache store: one checksummed artifact holding
/// any number of fingerprinted guest images, each with its own fragment
/// payload and per-image bookkeeping. A server process warming many Alpha
/// guests shares one store file instead of one cache file per (image,
/// config) pair; a VM warm-starts by fingerprint lookup and saves (or
/// updates) only its own image slot on exit, leaving every other slot
/// intact. Layout (all integers little-endian):
///
///   header  magic u64 ("ILDPTS1\0"), format version u32, image count u32,
///           index CRC32 u32                                    (20 bytes)
///   index   per image: fingerprint u64, payload offset u64, payload size
///           u64, payload CRC32 u32, fragment count u32, total body bytes
///           u64, save count u32, translation cost units u64    (52 bytes)
///   images  per image: FragmentCodec encodings, back to back
///
/// The loader is strictly fail-safe, mirroring CacheFile: magic/version
/// gate first, then the index is CRC-checked as a unit (a flipped
/// fingerprint or offset must be caught, not silently missed at lookup),
/// then every payload is bounds- and CRC-checked, and duplicate
/// fingerprints are rejected — all before a single fragment byte is
/// decoded. Fragment decoding happens per image at lookup() time and is
/// itself bounds-checked with count/byte cross-checks. Any failure yields
/// a distinct StoreStatus and an empty store — the VM counts the reason
/// under persist.import_rejected.<reason> and runs cold. Loading NEVER
/// crashes on a bad file.
///
/// Saves stage through a unique "<path>.tmp.*" file — fsynced, renamed
/// into place, directory fsynced — so a crashed save never corrupts a
/// good store and a completed save survives power loss. saveMerged()
/// additionally serializes concurrent writers through a crash-recoverable
/// "<path>.lock" file (StoreLock.h: holder PID recorded, dead holders
/// detected and broken within one takeover) and re-reads the on-disk
/// store under the lock, adopting image slots written by other processes
/// since this store was opened: two VMs saving different images into one
/// store both survive. A live-but-wedged holder is waited for up to a
/// generous bound before the save degrades to unlocked read-merge-write
/// (reported via SaveMergeResult::LockTimedOut) — last writer wins on the
/// file, but each writer still merges every slot it can see. The §15
/// crash model is chaos-tested by ildp-crashtest at named crash points
/// (support/CrashInjector.h) covering every instant of this protocol.
///
/// Legacy single-image cache files (CacheFile format, PR 1) are detected
/// by magic: open() returns StoreStatus::LegacyFile and the caller imports
/// them through loadCacheFile() instead; the next save rewrites the path
/// in store format.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_PERSIST_CACHESTORE_H
#define ILDP_PERSIST_CACHESTORE_H

#include "core/Fragment.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace persist {

/// "ILDPTS1\0" as a little-endian u64 (TS = translation store; distinct
/// from the legacy single-image magic "ILDPTC1\0").
constexpr uint64_t CacheStoreMagic = 0x0031535450444C49ull;
/// Bumped on any incompatible change to the header, index, or fragment
/// encoding.
constexpr uint32_t CacheStoreVersion = 1;
/// Corruption guard on the image count: a store serving even a very large
/// fleet holds a few dozen images, and a corrupt count must never drive a
/// huge allocation.
constexpr uint32_t MaxStoreImages = 4096;

/// Why a store operation succeeded or was rejected.
enum class StoreStatus : uint8_t {
  Ok,
  FileNotFound,   ///< No file at the path (first run; not an error).
  LegacyFile,     ///< Single-image CacheFile format; import via
                  ///< loadCacheFile() instead (see persist.import_legacy).
  BadMagic,       ///< Not a translation-cache artifact at all.
  BadVersion,     ///< Produced by an incompatible format revision.
  Truncated,      ///< Header, index, or a payload extends past end of file.
  BadIndex,       ///< Index CRC mismatch or implausible index fields.
  BadChecksum,    ///< An image payload's CRC32 does not match its bytes.
  DuplicateImage, ///< Two index entries carry the same fingerprint.
  BadPayload,     ///< CRCs passed but fragment decoding failed
                  ///< (structurally invalid records).
  ImageNotFound,  ///< lookup(): no slot with that fingerprint (not an
                  ///< error; the image runs cold and saves a new slot).
};

const char *getStoreStatusName(StoreStatus Status);

/// One image slot held in memory: identity, bookkeeping, and the encoded
/// (not yet decoded) fragment payload.
struct StoreImage {
  uint64_t Fingerprint = 0;
  uint32_t FragmentCount = 0;
  uint64_t BodyBytes = 0; ///< Sum of fragment body bytes (cross-check).
  uint32_t SaveCount = 0; ///< Times this slot has been written.
  /// Translator work units (dbt.cost.total) invested in this slot across
  /// its producing runs — the work a warm start avoids re-spending.
  uint64_t CostUnits = 0;
  std::vector<uint8_t> Payload; ///< FragmentCodec encodings, back to back.
};

/// Result of saveMerged().
struct SaveMergeResult {
  bool Saved = false;
  size_t Adopted = 0;     ///< Slots adopted from concurrent writers.
  size_t Compacted = 0;   ///< Oldest slots dropped by the image bound.
  bool LockContended = false; ///< The lock file was busy at least once.
  /// Dead-holder locks broken during acquisition (StoreLock takeover;
  /// counted by the VM under persist.store_lock_broken).
  unsigned LockBroken = 0;
  /// A LIVE holder outlasted the wait bound and this save proceeded
  /// unlocked — the last remaining lost-update path, reported so callers
  /// can count it (persist.store_lock_timeout) instead of racing silently.
  bool LockTimedOut = false;
};

/// An in-memory multi-image store. Slot order is write order (put() moves
/// an updated slot to the back), so compaction drops the stalest slots.
class CacheStore {
public:
  /// Loads and validates the store at \p Path, replacing this store's
  /// contents. On any non-Ok status the store is left empty, so a
  /// subsequent save rewrites the path with a clean artifact.
  StoreStatus open(const std::string &Path);

  /// open() + freeze: loads the store and marks it read-only. A read-only
  /// store never touches "<path>.lock" (open() never did; the flag
  /// guarantees no later saveMerged() will either) and refuses every
  /// mutation — put/erase/compact become no-ops and saveMerged() returns
  /// Saved=false without staging a temp file or taking the lock. The
  /// fleet service opens one store this way and shares it across every
  /// pool VM, so a thousand concurrent warm starts contend on nothing:
  /// lookup() is const over an immutable payload. Counted by the VM under
  /// "persist.store_readonly".
  StoreStatus openReadOnly(const std::string &Path);

  /// True once openReadOnly() loaded this store.
  bool readOnly() const { return ReadOnlyMode; }

  /// Decodes the fragments of the image slot fingerprinted \p Fingerprint
  /// into \p Out. Returns Ok, ImageNotFound, or BadPayload (corruption
  /// that kept the CRC intact); \p Out is empty unless Ok.
  StoreStatus lookup(uint64_t Fingerprint,
                     std::vector<dbt::Fragment> &Out) const;

  /// Inserts or replaces the slot for \p Fingerprint with \p Fragments
  /// (install order) and moves it to the back (most recently written).
  /// A replaced slot's SaveCount carries over (and is incremented).
  void put(uint64_t Fingerprint,
           const std::vector<const dbt::Fragment *> &Fragments,
           uint64_t CostUnits);

  /// Inserts or replaces the slot for \p Fingerprint with an opaque
  /// payload that is NOT FragmentCodec data (e.g. the native-object
  /// payload, NativeStore.h). Raw slots ride the same index, CRC, and
  /// merge machinery as image slots; FragmentCount/BodyBytes are zero so
  /// the loader's fragment cross-checks are vacuous, and lookup() on a
  /// raw slot reports BadPayload rather than decoding garbage — readers
  /// must use lookupRaw(). Callers keep raw fingerprints disjoint from
  /// image fingerprints by salting (see native::slotFingerprint).
  void putRaw(uint64_t Fingerprint, std::vector<uint8_t> Payload,
              uint64_t CostUnits = 0);

  /// The raw payload bytes for \p Fingerprint, or nullptr if absent.
  const std::vector<uint8_t> *lookupRaw(uint64_t Fingerprint) const;

  /// Drops the slot for \p Fingerprint. Returns true if one existed.
  bool erase(uint64_t Fingerprint);

  /// Drops oldest-written slots until at most \p MaxImages remain
  /// (0 = no bound). Returns the number dropped.
  size_t compact(size_t MaxImages);

  /// Writes the store to \p Path via a unique temp file + atomic rename.
  /// Returns false on I/O failure (the previous file is left intact).
  bool save(const std::string &Path) const;

  /// Read-merge-write: under a best-effort "<path>.lock", re-reads the
  /// on-disk store, adopts every slot this store does not already hold,
  /// applies the image bound, and saves atomically. See file comment.
  SaveMergeResult saveMerged(const std::string &Path, size_t MaxImages = 0);

  bool contains(uint64_t Fingerprint) const { return find(Fingerprint); }
  /// The slot for \p Fingerprint, or nullptr.
  const StoreImage *find(uint64_t Fingerprint) const;

  size_t imageCount() const { return Images.size(); }
  const std::vector<StoreImage> &images() const { return Images; }
  /// Total encoded payload bytes across all slots.
  uint64_t totalPayloadBytes() const;
  void clear() { Images.clear(); }

private:
  std::vector<StoreImage> Images;
  bool ReadOnlyMode = false;
};

} // namespace persist
} // namespace ildp

#endif // ILDP_PERSIST_CACHESTORE_H
