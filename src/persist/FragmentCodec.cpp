//===- persist/FragmentCodec.cpp - Fragment binary encode/decode ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "persist/FragmentCodec.h"

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

// Fixed encoded sizes, used as getCount() plausibility floors.
constexpr size_t OperandBytes = 1 + 1 + 8;           // kind, reg, imm
constexpr size_t InstBytes = 1 + 2 + 2 * OperandBytes // kind, op, A, B
                             + 1 + 1 + 1              // dests, arch-only
                             + 8 + 8 + 4              // vaddr, vtarget, disp
                             + 1 + 1 + 1 + 1 + 1 + 2; // flags..peiindex
constexpr size_t ExitBytes = 4 + 8 + 1;
constexpr size_t PeiMinBytes = 4 + 8 + 4; // inst index, vaddr, pair count

void encodeOperand(const IOperand &Op, ByteWriter &W) {
  W.putU8(uint8_t(Op.K));
  W.putU8(Op.Reg);
  W.putI64(Op.Imm);
}

bool decodeOperand(ByteReader &R, IOperand &Op) {
  uint8_t Kind = R.getU8();
  Op.Reg = R.getU8();
  Op.Imm = R.getI64();
  if (Kind > uint8_t(IOperand::Kind::Imm))
    return false;
  Op.K = IOperand::Kind(Kind);
  // Register numbers feed direct array indexing in the executor; reject
  // anything out of range for its register space.
  if (Op.isAcc() && Op.Reg >= MaxAccumulators)
    return false;
  if (Op.isGpr() && Op.Reg >= NumIisaGprs)
    return false;
  return true;
}

void encodeInst(const IisaInst &Inst, ByteWriter &W) {
  W.putU8(uint8_t(Inst.Kind));
  W.putU16(uint16_t(Inst.AlphaOp));
  encodeOperand(Inst.A, W);
  encodeOperand(Inst.B, W);
  W.putU8(Inst.DestAcc);
  W.putU8(Inst.DestGpr);
  W.putU8(Inst.GprWriteArchOnly ? 1 : 0);
  W.putU64(Inst.VAddr);
  W.putU64(Inst.VTarget);
  W.putI32(Inst.MemDisp);
  W.putU8(Inst.ToTranslator ? 1 : 0);
  W.putU8(Inst.VCredit);
  W.putU8(Inst.IsSourceOp ? 1 : 0);
  W.putU8(uint8_t(Inst.Usage));
  W.putU8(Inst.SizeBytes);
  W.putI16(Inst.PeiIndex);
}

bool decodeInst(ByteReader &R, IisaInst &Inst) {
  uint8_t Kind = R.getU8();
  uint16_t AlphaOp = R.getU16();
  bool OperandsOk = decodeOperand(R, Inst.A);
  OperandsOk &= decodeOperand(R, Inst.B);
  Inst.DestAcc = R.getU8();
  Inst.DestGpr = R.getU8();
  Inst.GprWriteArchOnly = R.getU8() != 0;
  Inst.VAddr = R.getU64();
  Inst.VTarget = R.getU64();
  Inst.MemDisp = R.getI32();
  Inst.ToTranslator = R.getU8() != 0;
  Inst.VCredit = R.getU8();
  Inst.IsSourceOp = R.getU8() != 0;
  uint8_t Usage = R.getU8();
  Inst.SizeBytes = R.getU8();
  Inst.PeiIndex = R.getI16();
  if (R.failed() || !OperandsOk)
    return false;
  if (Kind > uint8_t(IKind::Gentrap) ||
      AlphaOp > uint16_t(alpha::Opcode::Invalid) ||
      Usage > uint8_t(UsageClass::NoUserToGlobal))
    return false;
  Inst.Kind = IKind(Kind);
  Inst.AlphaOp = alpha::Opcode(AlphaOp);
  Inst.Usage = UsageClass(Usage);
  if (Inst.DestAcc != NoReg && Inst.DestAcc >= MaxAccumulators)
    return false;
  if (Inst.DestGpr != NoReg && Inst.DestGpr >= NumIisaGprs)
    return false;
  return true;
}

} // namespace

void persist::encodeFragment(const Fragment &Frag, ByteWriter &W) {
  W.putU64(Frag.EntryVAddr);
  W.putU8(uint8_t(Frag.Variant));
  W.putU32(Frag.SourceInsts);
  W.putU32(Frag.NopsRemoved);
  W.putU32(Frag.BodyBytes);

  W.putU32(uint32_t(Frag.Body.size()));
  for (const IisaInst &Inst : Frag.Body)
    encodeInst(Inst, W);
  // InstOffset runs parallel to Body; its length is implied.
  for (uint32_t Offset : Frag.InstOffset)
    W.putU32(Offset);

  W.putU32(uint32_t(Frag.PeiTable.size()));
  for (const PeiEntry &Pei : Frag.PeiTable) {
    W.putU32(Pei.InstIndex);
    W.putU64(Pei.VAddr);
    W.putU32(uint32_t(Pei.AccHeldRegs.size()));
    for (auto [Reg, Acc] : Pei.AccHeldRegs) {
      W.putU8(Reg);
      W.putU8(Acc);
    }
  }

  W.putU32(uint32_t(Frag.Exits.size()));
  for (const ExitRecord &Exit : Frag.Exits) {
    W.putU32(Exit.InstIndex);
    W.putU64(Exit.VTarget);
    W.putU8(Exit.Pending ? 1 : 0);
  }

  W.putU32(uint32_t(Frag.SourceVAddrs.size()));
  for (uint64_t VAddr : Frag.SourceVAddrs)
    W.putU64(VAddr);
}

bool persist::decodeFragment(ByteReader &R, Fragment &Out) {
  Out = Fragment();
  Out.EntryVAddr = R.getU64();
  uint8_t Variant = R.getU8();
  Out.SourceInsts = R.getU32();
  Out.NopsRemoved = R.getU32();
  Out.BodyBytes = R.getU32();
  if (R.failed() || Variant > uint8_t(IsaVariant::Straight)) {
    R.fail();
    return false;
  }
  Out.Variant = IsaVariant(Variant);

  uint32_t BodyCount = R.getCount(InstBytes);
  if (R.failed() || BodyCount == 0) {
    // Fragments are never empty (every superblock ends in an exit).
    R.fail();
    return false;
  }
  Out.Body.resize(BodyCount);
  for (IisaInst &Inst : Out.Body)
    if (!decodeInst(R, Inst)) {
      R.fail();
      return false;
    }
  Out.InstOffset.resize(BodyCount);
  for (uint32_t &Offset : Out.InstOffset)
    Offset = R.getU32();

  uint32_t PeiCount = R.getCount(PeiMinBytes);
  if (R.failed())
    return false;
  Out.PeiTable.resize(PeiCount);
  for (PeiEntry &Pei : Out.PeiTable) {
    Pei.InstIndex = R.getU32();
    Pei.VAddr = R.getU64();
    uint32_t Pairs = R.getCount(2);
    if (R.failed() || Pei.InstIndex >= BodyCount) {
      R.fail();
      return false;
    }
    Pei.AccHeldRegs.resize(Pairs);
    for (auto &[Reg, Acc] : Pei.AccHeldRegs) {
      Reg = R.getU8();
      Acc = R.getU8();
      if (Reg >= NumIisaGprs || Acc >= MaxAccumulators) {
        R.fail();
        return false;
      }
    }
  }

  uint32_t ExitCount = R.getCount(ExitBytes);
  if (R.failed())
    return false;
  Out.Exits.resize(ExitCount);
  for (ExitRecord &Exit : Out.Exits) {
    Exit.InstIndex = R.getU32();
    Exit.VTarget = R.getU64();
    Exit.Pending = R.getU8() != 0;
    if (R.failed() || Exit.InstIndex >= BodyCount) {
      R.fail();
      return false;
    }
  }

  uint32_t SourceCount = R.getCount(8);
  if (R.failed())
    return false;
  Out.SourceVAddrs.resize(SourceCount);
  for (uint64_t &VAddr : Out.SourceVAddrs)
    VAddr = R.getU64();

  if (R.failed())
    return false;
  // Cross-table index validation: trap recovery dereferences PeiIndex.
  for (const IisaInst &Inst : Out.Body)
    if (Inst.PeiIndex != -1 &&
        (Inst.PeiIndex < 0 || size_t(Inst.PeiIndex) >= Out.PeiTable.size())) {
      R.fail();
      return false;
    }
  return true;
}

std::vector<uint8_t> persist::encodedBytes(const Fragment &Frag) {
  ByteWriter W;
  encodeFragment(Frag, W);
  return W.take();
}
