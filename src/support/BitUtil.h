//===- support/BitUtil.h - Bit manipulation helpers -----------------------===//
//
// Part of the ILDP-DBT project: a reproduction of Kim & Smith, "Dynamic
// Binary Translation for Accumulator-Oriented Architectures" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small bit-twiddling helpers shared by the instruction-set encoders,
/// decoders, and microarchitecture models.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_BITUTIL_H
#define ILDP_SUPPORT_BITUTIL_H

#include <cassert>
#include <cstdint>

namespace ildp {

/// Extracts the bit-field [Lo, Lo+Width) of \p Value.
constexpr uint64_t extractBits(uint64_t Value, unsigned Lo, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "Invalid field width");
  assert(Lo < 64 && "Invalid field position");
  uint64_t Mask = Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  return (Value >> Lo) & Mask;
}

/// Sign-extends the low \p Width bits of \p Value to a signed 64-bit value.
constexpr int64_t signExtend(uint64_t Value, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "Invalid width");
  if (Width == 64)
    return static_cast<int64_t>(Value);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  uint64_t Mask = (uint64_t(1) << Width) - 1;
  Value &= Mask;
  return static_cast<int64_t>((Value ^ SignBit) - SignBit);
}

/// Returns true if \p Value fits in a signed field of \p Width bits.
constexpr bool fitsSigned(int64_t Value, unsigned Width) {
  assert(Width >= 1 && Width < 64 && "Invalid width");
  int64_t Lo = -(int64_t(1) << (Width - 1));
  int64_t Hi = (int64_t(1) << (Width - 1)) - 1;
  return Value >= Lo && Value <= Hi;
}

/// Returns true if \p Value fits in an unsigned field of \p Width bits.
constexpr bool fitsUnsigned(uint64_t Value, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "Invalid width");
  return Width == 64 || Value < (uint64_t(1) << Width);
}

/// Returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Returns floor(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Floor(uint64_t Value) {
  assert(Value != 0 && "log2 of zero");
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

/// Truncates a 64-bit value to its low 32 bits and sign-extends back, the
/// canonical Alpha longword canonicalization.
constexpr uint64_t sextLongword(uint64_t Value) {
  return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(Value)));
}

} // namespace ildp

#endif // ILDP_SUPPORT_BITUTIL_H
