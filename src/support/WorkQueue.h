//===- support/WorkQueue.h - Bounded blocking work queue ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer blocking queue: the transport
/// between the VM thread and the background translation workers, and
/// between request submitters and the fleet scheduler's execution workers.
/// Producers block while the queue is full (back-pressure keeps the number
/// of outstanding translation requests bounded) or use tryPush() to turn a
/// full queue into an immediate typed rejection (admission control for the
/// execution service); consumers block while it is empty. close() wakes
/// everyone: pop() drains the remaining items first and then reports
/// exhaustion, so a worker can either finish queued work or the owner can
/// discard it with closeAndClear().
///
/// MultiLaneQueue generalizes the shape for the overload-hardened fleet
/// scheduler: a small fixed set of independently bounded FIFO lanes
/// drained by one weighted-deficit round-robin pop, so a high-priority
/// lane is served ahead of — but never starves — a low-priority one.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_WORKQUEUE_H
#define ILDP_SUPPORT_WORKQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace ildp {

/// Bounded blocking FIFO.
template <typename T> class WorkQueue {
public:
  explicit WorkQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Enqueues \p Item, blocking while the queue is full. Returns false if
  /// the queue was closed (the item is dropped).
  bool push(T Item) {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Items.size() < Capacity || Closed; });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty. Returns
  /// std::nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// Non-blocking push: enqueues \p Item only when the queue has room and
  /// is still open. On failure \p Item is left untouched, so the caller
  /// can reject it in a typed way instead of losing it — the request
  /// scheduler turns a full queue into an ExecStatus::QueueFull response
  /// carrying the request's reply promise.
  bool tryPush(T &Item) {
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns std::nullopt when the queue is empty.
  std::optional<T> tryPop() {
    std::unique_lock<std::mutex> Lock(M);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// Stops accepting items. Queued items remain poppable (drain shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  /// Stops accepting items and discards everything queued (cancel
  /// shutdown). Returns the number of items dropped.
  size_t closeAndClear() {
    size_t Dropped;
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
      Dropped = Items.size();
      Items.clear();
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
    return Dropped;
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Items;
  bool Closed = false;
};

/// A fixed set of independently bounded FIFO lanes behind one blocking
/// consumer interface. Producers tryPush() into a specific lane (a full
/// or closed lane is an immediate, typed-rejectable failure, never a
/// block); consumers pop() under weighted-deficit round-robin: each
/// refill round grants lane L up to Weights[L] dequeues, so over any
/// window the served mix approaches the weight ratio — a heavy lane can
/// delay a light one by at most one round, and an idle lane costs the
/// others nothing. close() has WorkQueue semantics: queued items remain
/// poppable (the owner drains or typed-rejects them), then pop() reports
/// exhaustion.
template <typename T> class MultiLaneQueue {
public:
  /// One dequeued item, tagged with the lane it came from.
  struct Popped {
    unsigned Lane;
    T Item;
  };

  /// \p Capacities bound each lane independently (0 -> 1); \p Weights are
  /// the per-round dequeue grants (0 -> 1). The two vectors fix the lane
  /// count and must be the same, nonzero size.
  MultiLaneQueue(std::vector<size_t> Capacities, std::vector<unsigned> Weights)
      : Caps(std::move(Capacities)), Weights(std::move(Weights)) {
    if (Caps.empty())
      Caps.push_back(1);
    this->Weights.resize(Caps.size(), 1);
    for (size_t &C : Caps)
      C = C ? C : 1;
    for (unsigned &W : this->Weights)
      W = W ? W : 1;
    Lanes.resize(Caps.size());
    Credit.assign(Caps.size(), 0);
  }

  /// Non-blocking push into \p Lane. On failure (full lane or closed
  /// queue) \p Item is left untouched so the caller can reject it typed.
  bool tryPush(unsigned Lane, T &Item) {
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Closed || Lanes[Lane].size() >= Caps[Lane])
        return false;
      Lanes[Lane].push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues the next item under weighted-deficit round-robin, blocking
  /// while all lanes are empty. Returns std::nullopt once the queue is
  /// closed and fully drained.
  std::optional<Popped> pop() {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return anyQueued() || Closed; });
    if (!anyQueued())
      return std::nullopt;
    unsigned Lane = pickLane();
    Popped P{Lane, std::move(Lanes[Lane].front())};
    Lanes[Lane].pop_front();
    return P;
  }

  /// Non-blocking pop (same lane policy). Returns std::nullopt when every
  /// lane is empty.
  std::optional<Popped> tryPop() {
    std::unique_lock<std::mutex> Lock(M);
    if (!anyQueued())
      return std::nullopt;
    unsigned Lane = pickLane();
    Popped P{Lane, std::move(Lanes[Lane].front())};
    Lanes[Lane].pop_front();
    return P;
  }

  /// Stops accepting items. Queued items remain poppable (drain shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Closed;
  }

  unsigned laneCount() const { return unsigned(Caps.size()); }
  size_t laneCapacity(unsigned Lane) const { return Caps[Lane]; }
  unsigned laneWeight(unsigned Lane) const { return Weights[Lane]; }

  size_t laneSize(unsigned Lane) const {
    std::lock_guard<std::mutex> Lock(M);
    return Lanes[Lane].size();
  }

  /// Total items queued across all lanes.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    size_t N = 0;
    for (const std::deque<T> &L : Lanes)
      N += L.size();
    return N;
  }

private:
  bool anyQueued() const {
    for (const std::deque<T> &L : Lanes)
      if (!L.empty())
        return true;
    return false;
  }

  /// Weighted-deficit scan (lock held; at least one lane nonempty): serve
  /// the first queued lane that still has round credit; when every queued
  /// lane's credit is spent, refill all credits from the weights and start
  /// the next round. Scanning always from lane 0 keeps the policy
  /// deterministic and priority-ordered within a round (lane 0 spends its
  /// grant first), while the refill keeps every lane's long-run share at
  /// its weight — no lane starves.
  unsigned pickLane() {
    for (;;) {
      for (unsigned L = 0; L != unsigned(Lanes.size()); ++L)
        if (!Lanes[L].empty() && Credit[L] > 0) {
          --Credit[L];
          return L;
        }
      for (unsigned L = 0; L != unsigned(Lanes.size()); ++L)
        Credit[L] = Weights[L];
    }
  }

  std::vector<size_t> Caps;
  std::vector<unsigned> Weights;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::vector<std::deque<T>> Lanes;
  std::vector<unsigned> Credit;
  bool Closed = false;
};

} // namespace ildp

#endif // ILDP_SUPPORT_WORKQUEUE_H
