//===- support/WorkQueue.h - Bounded blocking work queue ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer blocking queue: the transport
/// between the VM thread and the background translation workers, and
/// between request submitters and the fleet scheduler's execution workers.
/// Producers block while the queue is full (back-pressure keeps the number
/// of outstanding translation requests bounded) or use tryPush() to turn a
/// full queue into an immediate typed rejection (admission control for the
/// execution service); consumers block while it is empty. close() wakes
/// everyone: pop() drains the remaining items first and then reports
/// exhaustion, so a worker can either finish queued work or the owner can
/// discard it with closeAndClear().
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_WORKQUEUE_H
#define ILDP_SUPPORT_WORKQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ildp {

/// Bounded blocking FIFO.
template <typename T> class WorkQueue {
public:
  explicit WorkQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Enqueues \p Item, blocking while the queue is full. Returns false if
  /// the queue was closed (the item is dropped).
  bool push(T Item) {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Items.size() < Capacity || Closed; });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty. Returns
  /// std::nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// Non-blocking push: enqueues \p Item only when the queue has room and
  /// is still open. On failure \p Item is left untouched, so the caller
  /// can reject it in a typed way instead of losing it — the request
  /// scheduler turns a full queue into an ExecStatus::QueueFull response
  /// carrying the request's reply promise.
  bool tryPush(T &Item) {
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns std::nullopt when the queue is empty.
  std::optional<T> tryPop() {
    std::unique_lock<std::mutex> Lock(M);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// Stops accepting items. Queued items remain poppable (drain shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  /// Stops accepting items and discards everything queued (cancel
  /// shutdown). Returns the number of items dropped.
  size_t closeAndClear() {
    size_t Dropped;
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
      Dropped = Items.size();
      Items.clear();
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
    return Dropped;
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace ildp

#endif // ILDP_SUPPORT_WORKQUEUE_H
