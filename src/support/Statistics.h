//===- support/Statistics.h - Named statistic counters --------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight named-counter registry. Components (translator, timing
/// models, VM driver) register counters into a StatisticSet; the benchmark
/// harness reads them back by name to print paper-style tables.
///
/// Unlike LLVM's global \c Statistic, counters here are instance-scoped so
/// that several simulator configurations can run side by side in one process
/// (the benches sweep machine parameters in a single binary).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_STATISTICS_H
#define ILDP_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ildp {

/// A collection of named 64-bit counters with hierarchical dotted names
/// ("dbt.fragments", "uarch.bpred.mispredicts", ...).
class StatisticSet {
public:
  /// Adds \p Delta to the counter \p Name, creating it at zero if absent.
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Sets the counter \p Name to \p Value.
  void set(const std::string &Name, uint64_t Value);

  /// Returns the value of \p Name, or zero if it was never touched.
  uint64_t get(const std::string &Name) const;

  /// Returns true if the counter \p Name exists.
  bool has(const std::string &Name) const;

  /// Returns all counters whose name starts with \p Prefix, sorted by name.
  std::vector<std::pair<std::string, uint64_t>>
  getWithPrefix(const std::string &Prefix) const;

  /// Merges all counters of \p Other into this set (summing).
  void mergeFrom(const StatisticSet &Other);

  /// Counter-wise difference against an earlier snapshot of the same set:
  /// for every counter present here, the result holds its value minus the
  /// baseline's (saturating at zero for gauges that shrank, e.g. a
  /// translation-cache size after a flush). Zero-delta counters are
  /// omitted, so a per-request delta lists only what the request actually
  /// moved. The foundation of VirtualMachine::statsDelta(), which the
  /// fleet service uses to attribute exact per-request statistics to VMs
  /// that serve many requests back to back.
  StatisticSet deltaFrom(const StatisticSet &Baseline) const;

  /// Removes every counter.
  void clear() { Counters.clear(); }

  /// Renders the whole set as "name = value" lines (sorted), for debugging.
  std::string toString() const;

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace ildp

#endif // ILDP_SUPPORT_STATISTICS_H
