//===- support/CrashInjector.cpp - Process-level crash-point injection ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CrashInjector.h"

#include <cstdlib>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::support;

const char *support::getCrashPointName(CrashPoint Point) {
  switch (Point) {
  case CrashPoint::MidTmpWrite:
    return "mid_tmp_write";
  case CrashPoint::PostTmpPreRename:
    return "post_tmp_pre_rename";
  case CrashPoint::MidMergeRead:
    return "mid_merge_read";
  case CrashPoint::PostRenamePreUnlock:
    return "post_rename_pre_unlock";
  case CrashPoint::MidRequest:
    return "mid_request";
  }
  return "unknown";
}

bool support::parseCrashPointName(const std::string &Name,
                                  CrashPoint &Point) {
  for (unsigned I = 0; I != NumCrashPoints; ++I)
    if (Name == getCrashPointName(CrashPoint(I))) {
      Point = CrashPoint(I);
      return true;
    }
  return false;
}

CrashInjector &CrashInjector::process() {
  // Arming from the environment happens exactly once, inside the
  // function-local static's guarded initialization — later calls (from
  // any thread) see a fully armed injector.
  struct EnvArmed {
    CrashInjector Injector;
    EnvArmed() {
      if (const char *Spec = std::getenv("ILDP_CRASH_SCHEDULE"))
        Injector.armFromSpec(Spec);
    }
  };
  static EnvArmed Process;
  return Process.Injector;
}

bool CrashInjector::armFromSpec(const std::string &Spec) {
  // Parse into a staging copy of the schedule first: a malformed clause
  // must leave the injector fully inert, not half-armed.
  struct Clause {
    CrashPoint P;
    Mode M;
    uint64_t Param, Denom, Seed;
  };
  std::vector<Clause> Clauses;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Part = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Part.empty())
      continue;
    size_t Eq = Part.find('=');
    if (Eq == std::string::npos)
      return false;
    Clause C{};
    if (!parseCrashPointName(Part.substr(0, Eq), C.P))
      return false;
    std::string Val = Part.substr(Eq + 1);
    if (Val == "always") {
      C.M = Mode::OnHit;
      C.Param = 1;
    } else if (Val.rfind("random:", 0) == 0) {
      // random:<seed>/<num>/<den>
      std::string Rest = Val.substr(7);
      size_t S1 = Rest.find('/');
      size_t S2 = S1 == std::string::npos ? S1 : Rest.find('/', S1 + 1);
      if (S2 == std::string::npos)
        return false;
      char *End = nullptr;
      C.M = Mode::Random;
      C.Seed = std::strtoull(Rest.substr(0, S1).c_str(), &End, 0);
      C.Param = std::strtoull(Rest.substr(S1 + 1, S2 - S1 - 1).c_str(),
                              &End, 0);
      C.Denom = std::strtoull(Rest.substr(S2 + 1).c_str(), &End, 0);
      if (C.Denom == 0)
        return false;
    } else {
      char *End = nullptr;
      uint64_t Nth = std::strtoull(Val.c_str(), &End, 0);
      if (End == Val.c_str() || *End != '\0' || Nth == 0)
        return false;
      C.M = Mode::OnHit;
      C.Param = Nth;
    }
    Clauses.push_back(C);
  }
  for (const Clause &C : Clauses) {
    Point &P = Points[unsigned(C.P)];
    P.Param = C.Param;
    P.Denom = C.Denom ? C.Denom : 1;
    P.Seed = C.Seed;
    P.M.store(C.M, std::memory_order_release);
  }
  if (!Clauses.empty())
    AnyArmed.store(true, std::memory_order_release);
  return true;
}

void CrashInjector::armOnHit(CrashPoint Point, uint64_t Nth) {
  auto &P = Points[unsigned(Point)];
  P.Param = Nth ? Nth : 1;
  P.M.store(Mode::OnHit, std::memory_order_release);
  AnyArmed.store(true, std::memory_order_release);
}

void CrashInjector::armRandom(CrashPoint Point, uint64_t Seed,
                              uint64_t Numerator, uint64_t Denominator) {
  auto &P = Points[unsigned(Point)];
  P.Param = Numerator;
  P.Denom = Denominator ? Denominator : 1;
  P.Seed = Seed;
  P.M.store(Mode::Random, std::memory_order_release);
  AnyArmed.store(true, std::memory_order_release);
}

void CrashInjector::disarm(CrashPoint Point) {
  Points[unsigned(Point)].M.store(Mode::Off, std::memory_order_release);
}

bool CrashInjector::fires(const Point &P, uint64_t HitIndex) const {
  switch (P.M.load(std::memory_order_acquire)) {
  case Mode::Off:
    return false;
  case Mode::OnHit:
    return HitIndex == P.Param;
  case Mode::Random: {
    // splitmix64 over (seed, index): the same deterministic schedule the
    // FaultInjector's Random mode uses.
    uint64_t X = P.Seed + 0x9E3779B97F4A7C15ull * (HitIndex + 1);
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    X ^= X >> 31;
    return (X % P.Denom) < P.Param;
  }
  }
  return false;
}

void CrashInjector::maybeCrash(CrashPoint CP) {
  Point &P = Points[unsigned(CP)];
  uint64_t Index = P.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fires(P, Index))
    return;
#ifndef _WIN32
  // _exit, not exit or abort: no destructors, no atexit, no core, no
  // buffered-I/O flush — the closest user-space stand-in for SIGKILL.
  ::_exit(ExitCode);
#else
  std::_Exit(ExitCode);
#endif
}

bool CrashInjector::wouldCrashNext(CrashPoint CP) const {
  const Point &P = Points[unsigned(CP)];
  return fires(P, P.Hits.load(std::memory_order_relaxed) + 1);
}

uint64_t CrashInjector::hitCount(CrashPoint CP) const {
  return Points[unsigned(CP)].Hits.load(std::memory_order_relaxed);
}
