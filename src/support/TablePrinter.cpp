//===- support/TablePrinter.cpp - Fixed-width table output ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

using namespace ildp;

std::string ildp::formatFloat(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::beginRow() { Rows.emplace_back(); }

void TablePrinter::cell(const std::string &Text) {
  assert(!Rows.empty() && "cell() before beginRow()");
  Rows.back().push_back(Text);
}

void TablePrinter::cellInt(int64_t Value) { cell(std::to_string(Value)); }

void TablePrinter::cellFloat(double Value, int Decimals) {
  cell(formatFloat(Value, Decimals));
}

std::string TablePrinter::toString() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size() && I != Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : "";
      if (I == 0) {
        Line += Cell;
        Line.append(Widths[I] - Cell.size(), ' ');
      } else {
        Line += "  ";
        Line.append(Widths[I] - Cell.size(), ' ');
        Line += Cell;
      }
    }
    // Trim trailing spaces so output diffs cleanly.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t RuleWidth = 0;
  for (size_t I = 0; I != Widths.size(); ++I)
    RuleWidth += Widths[I] + (I == 0 ? 0 : 2);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string TablePrinter::toCsv() const {
  auto RenderRow = [](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I)
        Line += ',';
      Line += Row[I];
    }
    Line += '\n';
    return Line;
  };
  std::string Out = RenderRow(Headers);
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

void TablePrinter::print() const {
  std::fputs(toString().c_str(), stdout);
}
