//===- support/TablePrinter.h - Fixed-width table output ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats rows of mixed string/number cells into an aligned text table (and
/// optionally CSV). The bench binaries use this to print the paper's tables
/// and figure series in a uniform way.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_TABLEPRINTER_H
#define ILDP_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {

/// Accumulates a table of cells and renders it column-aligned.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Starts a new row; subsequent cell() calls append to it.
  void beginRow();

  /// Appends a string cell to the current row.
  void cell(const std::string &Text);

  /// Appends an integer cell.
  void cellInt(int64_t Value);

  /// Appends a floating-point cell with \p Decimals fraction digits.
  void cellFloat(double Value, int Decimals = 2);

  /// Renders the table with aligned columns. Column 0 is left-aligned,
  /// all other columns right-aligned.
  std::string toString() const;

  /// Renders the table as comma-separated values.
  std::string toCsv() const;

  /// Convenience: renders with toString() and writes to stdout.
  void print() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Decimals fraction digits ("3.14").
std::string formatFloat(double Value, int Decimals = 2);

} // namespace ildp

#endif // ILDP_SUPPORT_TABLEPRINTER_H
