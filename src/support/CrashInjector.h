//===- support/CrashInjector.h - Process-level crash-point injection ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable *process death* injection — the crash-safety
/// counterpart of the translation pipeline's FaultInjector (DESIGN.md §9).
/// Where a fault site makes a stage report failure and degrade, a crash
/// point makes the whole process vanish mid-operation via _exit(137), the
/// way SIGKILL, the OOM killer, or a power cut would: no destructors, no
/// atexit handlers, no flushed buffers, no released lock files. The
/// persist and serve layers call crashPoint() at the instants a real
/// crash is most damaging:
///
///   MidTmpWrite         - halfway through writing a save's staging file
///   PostTmpPreRename    - staging file complete (and fsynced), rename not
///                         yet issued
///   MidMergeRead        - inside saveMerged: on-disk store read, merge
///                         not yet applied (the store lock is held)
///   PostRenamePreUnlock - the new store is in place, "<path>.lock" still
///                         names this (now dead) process
///   MidRequest          - a fleet host with requests in flight
///
/// Arming crosses the process boundary through the ILDP_CRASH_SCHEDULE
/// environment variable, parsed on first use — a supervisor or test
/// harness arms a *child* it is about to spawn without that child's
/// cooperation. Spec grammar (comma-separated, one clause per point):
///
///   ILDP_CRASH_SCHEDULE="<point>=<n>"               fire on the Nth hit
///   ILDP_CRASH_SCHEDULE="<point>=always"            fire on the first hit
///   ILDP_CRASH_SCHEDULE="<point>=random:<seed>/<num>/<den>"
///                                                   each hit fires with
///                                                   probability num/den
///                                                   under a seeded hash
///
/// e.g. ILDP_CRASH_SCHEDULE="post_tmp_pre_rename=1,mid_request=3".
///
/// Firing decisions depend only on the per-point hit index (the Random
/// mode hashes index and seed, FaultInjector-style), so a schedule is
/// exactly reproducible run to run. A process with no schedule pays one
/// relaxed atomic load per crash point.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_CRASHINJECTOR_H
#define ILDP_SUPPORT_CRASHINJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ildp {
namespace support {

/// Named process crash points, one per crash-critical instant.
enum class CrashPoint : uint8_t {
  MidTmpWrite,
  PostTmpPreRename,
  MidMergeRead,
  PostRenamePreUnlock,
  MidRequest,
};

constexpr unsigned NumCrashPoints = 5;

/// Stable lowercase point name ("mid_tmp_write", ...), the spelling the
/// ILDP_CRASH_SCHEDULE grammar uses.
const char *getCrashPointName(CrashPoint Point);

/// Parses a point name as printed by getCrashPointName(). Returns false
/// and leaves \p Point untouched on an unknown name.
bool parseCrashPointName(const std::string &Name, CrashPoint &Point);

/// Deterministic per-point crash scheduler. One process-wide instance
/// (process()) is armed lazily from ILDP_CRASH_SCHEDULE; tests may also
/// construct and arm instances directly.
class CrashInjector {
public:
  /// The exit status an injected crash dies with — the value a SIGKILLed
  /// child's wait status maps to (128 + 9), so supervisors cannot tell an
  /// injected crash from a real kill.
  static constexpr int ExitCode = 137;

  CrashInjector() = default;
  CrashInjector(const CrashInjector &) = delete;
  CrashInjector &operator=(const CrashInjector &) = delete;

  /// The process-wide injector, armed from ILDP_CRASH_SCHEDULE (if set)
  /// the first time it is reached. Thread-safe.
  static CrashInjector &process();

  /// Arms points per a schedule spec (see file comment). Unknown points
  /// or malformed clauses make the whole spec inert and return false — a
  /// typo must not silently disable one clause of a chaos schedule.
  bool armFromSpec(const std::string &Spec);

  /// The Nth pass (1-based) through \p Point crashes the process.
  void armOnHit(CrashPoint Point, uint64_t Nth);
  /// A pass crashes iff a seeded hash of its hit index lands under
  /// \p Numerator / \p Denominator.
  void armRandom(CrashPoint Point, uint64_t Seed, uint64_t Numerator,
                 uint64_t Denominator);
  /// Stops \p Point from firing. Hit counters are preserved.
  void disarm(CrashPoint Point);

  /// Called at \p Point: counts the hit and _exit(ExitCode)s the process
  /// if the schedule fires. Thread-safe. Returns (having counted) when
  /// the point is unarmed.
  void maybeCrash(CrashPoint Point);

  /// True when the schedule at \p Point would fire on the next hit —
  /// maybeCrash() without the exit, for tests of the scheduler itself.
  bool wouldCrashNext(CrashPoint Point) const;

  /// Times the point was reached since arming.
  uint64_t hitCount(CrashPoint Point) const;
  /// True if any point is armed.
  bool armed() const { return AnyArmed.load(std::memory_order_relaxed); }

private:
  enum class Mode : uint8_t { Off, OnHit, Random };

  struct Point {
    std::atomic<Mode> M{Mode::Off};
    uint64_t Param = 0; ///< Nth for OnHit, numerator for Random.
    uint64_t Denom = 1;
    uint64_t Seed = 0;
    std::atomic<uint64_t> Hits{0};
  };

  bool fires(const Point &P, uint64_t HitIndex) const;

  std::array<Point, NumCrashPoints> Points;
  std::atomic<bool> AnyArmed{false};
};

/// The persist/serve layers' one-liner: counts a hit on the process-wide
/// injector and dies there if armed. A process with no ILDP_CRASH_SCHEDULE
/// pays a relaxed load.
inline void crashPoint(CrashPoint P) {
  CrashInjector &I = CrashInjector::process();
  if (I.armed())
    I.maybeCrash(P);
}

} // namespace support
} // namespace ildp

#endif // ILDP_SUPPORT_CRASHINJECTOR_H
