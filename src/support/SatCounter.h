//===- support/SatCounter.h - Saturating counters -------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N-bit saturating counter used by the branch predictors in src/uarch.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_SATCOUNTER_H
#define ILDP_SUPPORT_SATCOUNTER_H

#include <cassert>
#include <cstdint>

namespace ildp {

/// An N-bit up/down saturating counter (the classic bimodal predictor cell).
class SatCounter {
public:
  explicit SatCounter(unsigned Bits = 2, unsigned Initial = 0)
      : Max((1u << Bits) - 1), Value(Initial) {
    assert(Bits >= 1 && Bits <= 8 && "Unreasonable counter width");
    assert(Initial <= Max && "Initial value out of range");
  }

  /// Increments toward saturation.
  void increment() {
    if (Value < Max)
      ++Value;
  }

  /// Decrements toward zero.
  void decrement() {
    if (Value > 0)
      --Value;
  }

  /// Trains the counter toward \p Taken.
  void update(bool Taken) {
    if (Taken)
      increment();
    else
      decrement();
  }

  /// Returns the predicted direction (counter in its upper half).
  bool predictTaken() const { return Value > Max / 2; }

  unsigned value() const { return Value; }
  unsigned max() const { return Max; }

private:
  unsigned Max;
  unsigned Value;
};

} // namespace ildp

#endif // ILDP_SUPPORT_SATCOUNTER_H
