//===- support/Statistics.cpp - Named statistic counters ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

using namespace ildp;

void StatisticSet::add(const std::string &Name, uint64_t Delta) {
  Counters[Name] += Delta;
}

void StatisticSet::set(const std::string &Name, uint64_t Value) {
  Counters[Name] = Value;
}

uint64_t StatisticSet::get(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

bool StatisticSet::has(const std::string &Name) const {
  return Counters.count(Name) != 0;
}

std::vector<std::pair<std::string, uint64_t>>
StatisticSet::getWithPrefix(const std::string &Prefix) const {
  std::vector<std::pair<std::string, uint64_t>> Result;
  for (auto It = Counters.lower_bound(Prefix), E = Counters.end(); It != E;
       ++It) {
    if (It->first.compare(0, Prefix.size(), Prefix) != 0)
      break;
    Result.push_back(*It);
  }
  return Result;
}

void StatisticSet::mergeFrom(const StatisticSet &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
}

StatisticSet StatisticSet::deltaFrom(const StatisticSet &Baseline) const {
  StatisticSet Delta;
  for (const auto &[Name, Value] : Counters) {
    uint64_t Before = Baseline.get(Name);
    if (Value > Before)
      Delta.Counters.emplace(Name, Value - Before);
  }
  return Delta;
}

std::string StatisticSet::toString() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    Out += Name;
    Out += " = ";
    Out += std::to_string(Value);
    Out += '\n';
  }
  return Out;
}
