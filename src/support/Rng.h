//===- support/Rng.h - Deterministic pseudo-random numbers ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small xorshift64* generator. Every stochastic component in the project
/// (random cache replacement, synthetic workload data) draws from an
/// explicitly seeded Rng so simulations are bit-reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_RNG_H
#define ILDP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ildp {

/// Deterministic xorshift64* pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed ? Seed : 1) {}

  /// Returns the next raw 64-bit pseudo-random value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "Bound must be nonzero");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "Empty range");
    return Lo + static_cast<int64_t>(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  /// Returns true with probability Numer/Denom.
  bool nextChance(uint64_t Numer, uint64_t Denom) {
    assert(Denom != 0 && Numer <= Denom && "Bad probability");
    return nextBelow(Denom) < Numer;
  }

private:
  uint64_t State;
};

} // namespace ildp

#endif // ILDP_SUPPORT_RNG_H
