//===- support/FixedRing.h - Fixed-capacity ring buffer -------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity double-ended ring buffer. Replaces the
/// vector-erase(begin()) anti-pattern for bounded windows and stacks (the
/// VM's dual-address RAS and its phase-detection window): all operations
/// are O(1) and no memory is allocated after construction.
///
/// pushBackEvict() drops the oldest element when the ring is full, which
/// is exactly the recency semantics both VM users want — a return-address
/// stack that forgets the deepest frame, and a sliding event window that
/// only ever needs the newest capacity() timestamps.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SUPPORT_FIXEDRING_H
#define ILDP_SUPPORT_FIXEDRING_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace ildp {

/// Fixed-capacity deque backed by a circular buffer.
template <typename T> class FixedRing {
public:
  explicit FixedRing(size_t Capacity) : Buf(Capacity ? Capacity : 1) {}

  bool empty() const { return Count == 0; }
  bool full() const { return Count == Buf.size(); }
  size_t size() const { return Count; }
  size_t capacity() const { return Buf.size(); }

  /// Appends \p Value, evicting the oldest element if the ring is full.
  void pushBackEvict(const T &Value) {
    if (full())
      popFront();
    Buf[wrap(Head + Count)] = Value;
    ++Count;
  }

  const T &front() const {
    assert(Count && "front() on empty ring");
    return Buf[Head];
  }

  const T &back() const {
    assert(Count && "back() on empty ring");
    return Buf[wrap(Head + Count - 1)];
  }

  /// Element \p Index positions from the front (0 = oldest).
  const T &at(size_t Index) const {
    assert(Index < Count && "at() out of range");
    return Buf[wrap(Head + Index)];
  }

  void popFront() {
    assert(Count && "popFront() on empty ring");
    Head = wrap(Head + 1);
    --Count;
  }

  void popBack() {
    assert(Count && "popBack() on empty ring");
    --Count;
  }

  void clear() {
    Head = 0;
    Count = 0;
  }

private:
  size_t wrap(size_t Index) const { return Index % Buf.size(); }

  std::vector<T> Buf;
  size_t Head = 0;
  size_t Count = 0;
};

} // namespace ildp

#endif // ILDP_SUPPORT_FIXEDRING_H
