//===- native/NativeEmitter.h - Lower I-ISA fragments to C source ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a settled I-ISA fragment body to a self-contained C translation
/// unit implementing the NativeAbi entry point (DESIGN.md §13). Every
/// instruction becomes straight-line C over locals that mirror exactly the
/// accumulators and GPRs the body touches; the Alpha operation semantics
/// are emitted as expressions that mirror alpha::evalIntOp and friends
/// term for term, so the host compiler constant-folds operand selection
/// and opcode dispatch away entirely — that interpretive dispatch is the
/// cost the native tier exists to eliminate.
///
/// The emitter is total over the I-ISA the translator generates today and
/// *refuses* anything else (unknown opcode, out-of-range register):
/// refusal is a typed degrade — the fragment simply stays on the I-ISA
/// tier — never a miscompile.
///
/// fragmentKey() hashes only the emission-relevant instruction fields
/// (kind, opcode, operands, destinations, embedded targets/displacements)
/// — NOT the patchable ToTranslator flag, exec counts, or accounting
/// metadata — so one compiled object stays valid across exit re-patching,
/// eviction/re-install, and persist round-trips, and identical bodies at
/// different entry points share a module.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVEEMITTER_H
#define ILDP_NATIVE_NATIVEEMITTER_H

#include "iisa/IisaInst.h"

#include <string>
#include <vector>

namespace ildp {
namespace native {

/// Bumped whenever emitted code changes meaning; folded into the
/// compile-command checksum so stale persisted objects are rejected.
constexpr uint32_t NativeEmitterVersion = 1;

/// Result of lowering a fragment body to C.
struct EmitResult {
  bool Ok = false;
  std::string Source;       ///< Complete C translation unit when Ok.
  const char *Reason = "";  ///< Static refusal reason when !Ok.
};

/// Lowers \p Body to a C translation unit exporting ildp_native_run().
/// Refuses (Ok = false, typed Reason) anything outside the supported
/// I-ISA surface instead of guessing.
EmitResult emitFragmentC(const std::vector<iisa::IisaInst> &Body,
                         iisa::IsaVariant Variant);

/// Content key over the emission-relevant fields of \p Body (FNV-1a 64).
/// Stable across exit patching, install state, and persist round-trips.
uint64_t fragmentKey(const std::vector<iisa::IisaInst> &Body,
                     iisa::IsaVariant Variant);

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVEEMITTER_H
