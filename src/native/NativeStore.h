//===- native/NativeStore.h - Native-object persistence codec -------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes a VM's compiled native objects as an opaque CacheStore raw-slot
/// payload, so warm starts skip host compilation entirely and VmFleet
/// workers share one read-only set of native modules. Payload layout (all
/// integers little-endian):
///
///   sub-magic u64 ("ILDPNAT1"), format version u32,
///   compile-command checksum u64, object count u32,
///   then per object: fragment content key u64, size u32, object bytes
///
/// The slot rides the store's index/CRC/merge machinery (CacheStore
/// putRaw/lookupRaw) under slotFingerprint(imageFp) — the image
/// fingerprint salted so native slots can never collide with fragment
/// slots. The compile-command checksum (NativeCompiler) gates import: a
/// payload produced by a different toolchain, ABI revision, or emitter
/// revision is typed-rejected as `persist.import_rejected.native_stale`
/// and the VM recompiles from scratch; structural damage inside an intact
/// CRC decodes to `native_malformed`. Either way the run degrades, never
/// crashes, never dlopen's bytes it cannot vouch for.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVESTORE_H
#define ILDP_NATIVE_NATIVESTORE_H

#include <cstdint>
#include <map>
#include <vector>

namespace ildp {
namespace native {

/// "ILDPNAT1" as a little-endian u64.
constexpr uint64_t NativeStoreMagic = 0x3154414E50444C49ull;
constexpr uint32_t NativeStoreVersion = 1;
/// Corruption guard: no real run compiles anywhere near this many
/// distinct hot fragments per image.
constexpr uint32_t MaxNativeObjects = 65536;

/// Why decodeObjects() rejected a payload.
enum class NativeStoreStatus : uint8_t {
  Ok,
  Stale,     ///< Compile-command checksum differs from the current host.
  Malformed, ///< Bad sub-magic/version/structure inside an intact slot.
};

/// The CacheStore fingerprint of the native slot belonging to the image
/// fingerprinted \p ImageFp (splitmix64-salted; disjoint from image
/// slots for any realistic fingerprint population).
uint64_t slotFingerprint(uint64_t ImageFp);

/// Encodes \p Objects (fragment content key -> shared-object bytes) into
/// a raw-slot payload stamped with \p CommandChecksum.
std::vector<uint8_t>
encodeObjects(const std::map<uint64_t, std::vector<uint8_t>> &Objects,
              uint64_t CommandChecksum);

/// Decodes \p Payload into \p Out (cleared first). Rejects payloads whose
/// stamp differs from \p CommandChecksum as Stale without decoding any
/// object bytes; structural violations yield Malformed and an empty map.
NativeStoreStatus
decodeObjects(const std::vector<uint8_t> &Payload, uint64_t CommandChecksum,
              std::map<uint64_t, std::vector<uint8_t>> &Out);

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVESTORE_H
