//===- native/NativeService.h - Background native compilation workers -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line native compilation, following the TranslationService
/// worker-pool idiom: the VM thread submits a fragment body (by value —
/// workers never touch VM-owned state) and later drains completions at
/// its safepoints. Two deliberate differences from TranslationService:
/// submission is non-blocking (trySubmit drops the request when the queue
/// is full — a fragment that stays hot simply re-qualifies at a later
/// threshold crossing, and host compilation must NEVER stall dispatch),
/// and completions are delivered unordered (native installation has no
/// chain-environment ordering constraint; each completion is keyed by the
/// fragment content key).
///
/// The worker emits C (NativeEmitter), checks the NativeCompile fault
/// site, and runs the host compiler (NativeCompiler). Emission refusal,
/// injected faults, and compiler failures all come back as typed failure
/// completions — the fragment is marked failed and stays on the I-ISA
/// tier, never retried in a loop.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVESERVICE_H
#define ILDP_NATIVE_NATIVESERVICE_H

#include "core/FaultInjector.h"
#include "iisa/IisaInst.h"
#include "native/NativeCompiler.h"
#include "support/WorkQueue.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace ildp {
namespace native {

/// One fragment body to compile.
struct NativeRequest {
  uint64_t Key = 0;        ///< fragmentKey() of the body.
  uint64_t EntryVAddr = 0; ///< For diagnostics only.
  std::vector<iisa::IisaInst> Body;
  iisa::IsaVariant Variant = iisa::IsaVariant::Basic;
};

/// One finished compilation attempt.
struct NativeCompletion {
  uint64_t Key = 0;
  uint64_t EntryVAddr = 0;
  bool Ok = false;
  const char *Reason = ""; ///< Static string ("emit", "fault", "compile").
  std::vector<uint8_t> Object;
};

/// A pool of native-compilation worker threads with unordered delivery.
class NativeService {
public:
  /// Spawns \p Workers threads compiling with \p CC. \p Fault may be
  /// null. \p QueueDepth bounds the request queue.
  NativeService(const HostCompiler &CC, unsigned Workers, size_t QueueDepth,
                dbt::FaultInjector *Fault);
  ~NativeService();

  NativeService(const NativeService &) = delete;
  NativeService &operator=(const NativeService &) = delete;

  /// Non-blocking submit; false when the queue is full or shut down
  /// (caller leaves the fragment pending-free to re-qualify later).
  bool trySubmit(NativeRequest Req);

  /// Cheap VM-thread check: any completion buffered?
  bool hasCompleted() const {
    return CompletedCount.load(std::memory_order_acquire) != 0;
  }

  /// Moves all buffered completions into \p Out (appended). Never blocks.
  void drainCompleted(std::vector<NativeCompletion> &Out);

  /// Blocks until every submitted request has a buffered completion.
  /// (Save paths use this so persisted stores capture in-flight work.)
  void waitAllIdle();

  /// Requests submitted (accepted) so far.
  uint64_t submittedCount() const {
    return Submitted.load(std::memory_order_relaxed);
  }

  unsigned workerCount() const { return unsigned(Workers.size()); }

  /// The toolchain this service compiles with (stable snapshot of the
  /// probe taken at construction; use this, not hostCompiler(), for
  /// checksums that must match the produced objects).
  const HostCompiler &compiler() const { return CC; }

private:
  void workerMain();

  /// By value: hostCompiler()'s reference is only stable until the next
  /// ILDP_NATIVE_CC change, and workers outlive any such change.
  const HostCompiler CC;
  dbt::FaultInjector *Fault;
  WorkQueue<NativeRequest> Requests;
  std::vector<std::thread> Workers;

  mutable std::mutex DoneMutex;
  std::condition_variable DoneCv;
  std::vector<NativeCompletion> Done;
  std::atomic<size_t> CompletedCount{0};
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Finished{0}; ///< Completions produced (incl. drained).
};

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVESERVICE_H
