//===- native/NativeModule.cpp - dlopen'd fragment modules + registry -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeModule.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <mutex>
#include <unistd.h>
#include <unordered_map>

using namespace ildp;
using namespace ildp::native;

namespace {

uint64_t contentHash64(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Process-global registry: content hash -> live module. weak_ptr so the
/// registry never extends a module's lifetime past its last fragment.
struct Registry {
  std::mutex Mutex;
  std::unordered_map<uint64_t, std::weak_ptr<NativeModule>> Modules;
  size_t Live = 0;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

NativeModule::~NativeModule() {
  if (Handle)
    ::dlclose(Handle);
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  // Another thread may have re-registered the same content hash between
  // our refcount hitting zero and this lock; only erase a dead entry.
  auto It = R.Modules.find(Hash);
  if (It != R.Modules.end() && It->second.expired())
    R.Modules.erase(It);
  --R.Live;
}

std::shared_ptr<NativeModule>
native::loadModule(const std::vector<uint8_t> &Object) {
  if (Object.empty())
    return nullptr;
  uint64_t Hash = contentHash64(Object);

  Registry &R = registry();
  std::unique_lock<std::mutex> Lock(R.Mutex);
  auto It = R.Modules.find(Hash);
  if (It != R.Modules.end())
    if (std::shared_ptr<NativeModule> M = It->second.lock())
      return M;

  // dlopen needs a path; write the bytes to a process-unique temp file
  // and unlink it immediately after mapping (libriscv's idiom, minus the
  // persistent /tmp cache — persistence lives in CacheStore instead).
  static std::atomic<uint64_t> Counter{0};
  const char *Dir = ::getenv("TMPDIR");
  if (!Dir || !*Dir)
    Dir = "/tmp";
  std::string Path = std::string(Dir) + "/ildp-native-mod-" +
                     std::to_string(uint64_t(::getpid())) + "-" +
                     std::to_string(Counter.fetch_add(1)) + ".so";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Object.data()),
              std::streamsize(Object.size()));
    if (!Out) {
      std::remove(Path.c_str());
      return nullptr;
    }
  }
  void *Handle = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  std::remove(Path.c_str());
  if (!Handle)
    return nullptr;
  void *Sym = ::dlsym(Handle, nativeEntrySymbol());
  if (!Sym) {
    ::dlclose(Handle);
    return nullptr;
  }

  std::shared_ptr<NativeModule> M(new NativeModule());
  M->Handle = Handle;
  M->Fn = reinterpret_cast<NativeEntryFn>(Sym);
  M->Hash = Hash;
  R.Modules[Hash] = M;
  ++R.Live;
  return M;
}

size_t native::liveModuleCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Live;
}
