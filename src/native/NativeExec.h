//===- native/NativeExec.h - Run compiled fragments, map exits ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host side of native fragment execution. NativeCode is what a
/// fragment carries once tiered up: the shared dlopen'd module (shared
/// across all fragments with the same content key, fleet-wide), the
/// resolved entry function, and per-fragment accounting metadata.
///
/// The metadata exists because the I-ISA executor emits one IisaEvent per
/// executed instruction and the VM accounts V-instruction credit, copy
/// instructions, source ops, and usage-class tallies from those events.
/// Native bodies produce no events — but the executor's event stream for
/// an exit at body index i is always exactly instructions 0..i inclusive
/// (events are recorded for not-taken cond_exits and for faulting memory
/// ops before the trap return), so all of that accounting is a pure
/// function of the exit index. NativeMeta precomputes it as prefix sums
/// at attach time; dual-RAS pushes (the one event side effect that is
/// not a counter) are replayed from an (index, target) list. Metadata is
/// per-fragment, not per-module: fragments sharing a compiled body can
/// still differ in VCredit/usage metadata, which is excluded from the
/// content key precisely because it does not affect emitted code.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVEEXEC_H
#define ILDP_NATIVE_NATIVEEXEC_H

#include "iisa/Executor.h"
#include "native/NativeModule.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ildp {

class GuestMemory;

namespace dbt {
struct Fragment;
}

namespace native {

constexpr size_t NumUsageClasses =
    size_t(iisa::UsageClass::NoUserToGlobal) + 1;

/// Cumulative accounting over body instructions 0..i inclusive.
struct CumCounters {
  uint64_t VCredit = 0;
  uint64_t CopyInsts = 0;
  uint64_t SourceOps = 0;
  std::array<uint64_t, NumUsageClasses> Usage{};
};

/// Per-fragment accounting metadata (see file comment).
struct NativeMeta {
  std::vector<CumCounters> Cum; ///< One entry per body instruction.
  /// push_dual_ras sites: (body index, V-ISA return address), ascending.
  std::vector<std::pair<uint32_t, uint64_t>> RasPushes;
};

/// Everything a fragment needs to run natively.
struct NativeCode {
  std::shared_ptr<NativeModule> Module; ///< Keeps the mapping alive.
  NativeEntryFn Fn = nullptr;
  NativeMeta Meta;
};

/// Builds the prefix-sum metadata for \p Body.
NativeMeta buildMeta(const std::vector<iisa::IisaInst> &Body);

/// Runs \p Code over \p State / \p Mem and maps the NativeContext outputs
/// to the same iisa::IExit the interpretive executor would have returned
/// for \p Body (the live body supplies V-targets and the chained /
/// call-translator flavor for direct exits — see NativeAbi.h).
iisa::IExit runFragment(const NativeCode &Code, iisa::IExecState &State,
                        GuestMemory &Mem,
                        const std::vector<iisa::IisaInst> &Body);

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVEEXEC_H
