//===- native/NativeExec.cpp - Run compiled fragments, map exits ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeExec.h"

#include "mem/GuestMemory.h"

using namespace ildp;
using namespace ildp::native;
using namespace ildp::iisa;

NativeMeta native::buildMeta(const std::vector<IisaInst> &Body) {
  NativeMeta Meta;
  Meta.Cum.resize(Body.size());
  CumCounters Run;
  for (size_t I = 0; I != Body.size(); ++I) {
    const IisaInst &Inst = Body[I];
    Run.VCredit += Inst.VCredit;
    if (Inst.Kind == IKind::CopyToGpr || Inst.Kind == IKind::CopyFromGpr)
      ++Run.CopyInsts;
    if (Inst.IsSourceOp) {
      ++Run.SourceOps;
      ++Run.Usage[size_t(Inst.Usage)];
    }
    if (Inst.Kind == IKind::PushDualRas)
      Meta.RasPushes.emplace_back(uint32_t(I), Inst.VTarget);
    Meta.Cum[I] = Run;
  }
  return Meta;
}

namespace {

/// ABI callbacks: thin shims over GuestMemory, returning the fault kind
/// as an int exactly as the emitted code expects.
int hostLoad(void *Mem, uint64_t Addr, uint32_t Size, uint64_t *Out) {
  MemAccessResult R = static_cast<GuestMemory *>(Mem)->load(Addr, Size);
  *Out = R.Value;
  return int(R.Fault);
}

int hostStore(void *Mem, uint64_t Addr, uint64_t Value, uint32_t Size) {
  return int(static_cast<GuestMemory *>(Mem)->store(Addr, Value, Size));
}

} // namespace

IExit native::runFragment(const NativeCode &Code, IExecState &State,
                          GuestMemory &Mem,
                          const std::vector<IisaInst> &Body) {
  NativeContext Ctx;
  Ctx.Acc = State.Acc.data();
  Ctx.Gpr = State.Gpr.data();
  Ctx.VpcBase = &State.VpcBase;
  Ctx.Mem = &Mem;
  Ctx.Load = &hostLoad;
  Ctx.Store = &hostStore;
  Ctx.InstBudget = 0;
  Ctx.ExitCode = NativeExitHalt;
  Ctx.InstIndex = 0;
  Ctx.VTarget = 0;
  Ctx.MemFault = 0;
  Ctx.TrapAddr = 0;

  Code.Fn(&Ctx);
  // The emitted body never writes r31; keep the hardwired-zero invariant
  // even against a miscompiled object.
  State.Gpr[alpha::RegZero] = 0;

  IExit Exit;
  if (Ctx.InstIndex >= Body.size()) {
    // Out-of-range index from a compiled object: never index the body on
    // its say-so; trap at the entry so recovery re-derives interpretively.
    Exit.InstIndex = 0;
    Exit.K = IExit::Kind::Trap;
    Exit.TrapInfo = Trap{TrapKind::IllegalInst, 0, 0};
    return Exit;
  }
  Exit.InstIndex = Ctx.InstIndex;
  const IisaInst &Inst = Body[Ctx.InstIndex];
  switch (Ctx.ExitCode) {
  case NativeExitDirect:
    // Deopt-neutral: chained-vs-translator and the V-target come from the
    // LIVE instruction, so exit repatching never touches compiled code.
    Exit.K = Inst.ToTranslator ? IExit::Kind::ToTranslator
                               : IExit::Kind::Chained;
    Exit.VTarget = Inst.VTarget;
    break;
  case NativeExitPredictHit:
    Exit.K = IExit::Kind::PredictHit;
    Exit.VTarget = Inst.VTarget;
    break;
  case NativeExitPredictMiss:
    Exit.K = IExit::Kind::PredictMiss;
    Exit.VTarget = Ctx.VTarget;
    break;
  case NativeExitDispatch:
    Exit.K = IExit::Kind::Dispatch;
    Exit.VTarget = Ctx.VTarget;
    break;
  case NativeExitReturn:
    Exit.K = IExit::Kind::Return;
    Exit.VTarget = Ctx.VTarget;
    break;
  case NativeExitHalt:
    Exit.K = IExit::Kind::Halt;
    break;
  case NativeExitTrap:
    Exit.K = IExit::Kind::Trap;
    if (Ctx.MemFault == NativeGentrapFault) {
      Exit.TrapInfo = Trap{TrapKind::Gentrap, 0, 0};
    } else {
      Exit.TrapInfo =
          Trap{trapKindForMemFault(MemFaultKind(Ctx.MemFault)), 0,
               Ctx.TrapAddr};
    }
    break;
  default:
    // Unknown exit code from a compiled object: treat as a halt at the
    // reported index would be unsound; trap as an illegal instruction so
    // the precise-recovery path re-derives state interpretively.
    Exit.K = IExit::Kind::Trap;
    Exit.TrapInfo = Trap{TrapKind::IllegalInst, 0, 0};
    break;
  }
  return Exit;
}
