//===- native/NativeAbi.h - Host <-> emitted-C execution ABI --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pinned ABI between the VM and natively compiled fragments
/// (DESIGN.md §13). A compiled fragment is a shared object exporting one
/// symbol, `ildp_native_run`, taking a NativeContext: pointers into the
/// live IExecState (accumulators, the 64-entry GPR file, the VPC-base
/// special register), an opaque guest-memory handle with load/store
/// callbacks (guest memory is sparse and paged, so there is no flat base
/// pointer to hand out), and output fields describing how the body
/// exited.
///
/// The emitted code reports exits in *deopt-neutral* form: a direct exit
/// (taken cond_exit or branch) carries only the instruction index, and
/// the host re-derives chained-vs-call-translator and the V-target from
/// the live fragment body — so exit patching/unchaining in the I-ISA
/// fragment never invalidates an installed native module. Indirect exits
/// (predict-miss, dispatch, return) carry the register-computed V-target.
/// Memory faults and GENTRAP surface as trap exits with the architected
/// state written back exactly as the I-ISA executor would leave it; the
/// VM then runs the ordinary PEI recovery path — deopt is just another
/// degrade.
///
/// The guest-instruction budget stays fragment-granular (the I-ISA tier
/// checks it between body runs, never mid-body; bodies are linear and
/// bounded so a run always terminates); InstBudget is carried in the
/// context for future intra-fragment slicing and currently ignored by
/// emitted code.
///
/// NativeAbiVersion is folded into the compile-command checksum, so a
/// persisted object compiled against an older ABI is rejected as stale
/// instead of being dlopen'd.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVEABI_H
#define ILDP_NATIVE_NATIVEABI_H

#include <cstdint>

namespace ildp {
namespace native {

/// Bumped on any incompatible change to NativeContext, the exit-code
/// numbering, or the emitted helper semantics.
constexpr uint32_t NativeAbiVersion = 2;

/// How a natively executed body exited (NativeContext::ExitCode).
enum NativeExitCode : uint32_t {
  NativeExitDirect = 0,      ///< Taken cond_exit / branch at InstIndex; the
                             ///< host reads the live body instruction for
                             ///< the V-target and chained/translator flavor.
  NativeExitPredictHit = 1,  ///< jump_predict hit (V-target from the body).
  NativeExitPredictMiss = 2, ///< jump_predict miss; VTarget = actual.
  NativeExitDispatch = 3,    ///< jump_dispatch; VTarget = actual.
  NativeExitReturn = 4,      ///< return_dual; VTarget = actual.
  NativeExitHalt = 5,
  NativeExitTrap = 6,        ///< MemFault + TrapAddr describe the fault.
};

/// NativeContext::MemFault value for a GENTRAP trap exit (memory faults
/// use the MemFaultKind numeric values, which are all small).
constexpr uint32_t NativeGentrapFault = 255;

/// Guest-memory load callback: fills *Out, returns the MemFaultKind as an
/// int (0 = success).
using NativeLoadFn = int (*)(void *Mem, uint64_t Addr, uint32_t Size,
                             uint64_t *Out);
/// Guest-memory store callback: returns the MemFaultKind as an int.
using NativeStoreFn = int (*)(void *Mem, uint64_t Addr, uint64_t Value,
                              uint32_t Size);

/// The pinned entry/exit context. Field order and types are frozen by
/// NativeAbiVersion; the emitted C declares a structurally identical
/// struct (kNativeAbiPreamble below is the single source of that text).
struct NativeContext {
  uint64_t *Acc;        ///< MaxAccumulators entries of IExecState::Acc.
  uint64_t *Gpr;        ///< NumIisaGprs entries; r31 reads as zero.
  uint64_t *VpcBase;    ///< IExecState::VpcBase.
  void *Mem;            ///< Opaque GuestMemory handle for the callbacks.
  NativeLoadFn Load;
  NativeStoreFn Store;
  uint64_t InstBudget;  ///< Reserved (fragment-granular budget today).
  // Outputs.
  uint32_t ExitCode;    ///< A NativeExitCode value.
  uint32_t InstIndex;   ///< Body index of the exiting/trapping instruction.
  uint64_t VTarget;     ///< Indirect-exit target (already & ~3).
  uint32_t MemFault;    ///< Trap exits: MemFaultKind or NativeGentrapFault.
  uint64_t TrapAddr;    ///< Trap exits: faulting effective address.
};

/// C text of the context struct and helper functions, prepended to every
/// emitted fragment. Kept next to NativeContext so the two cannot drift
/// without touching the same file (and bumping NativeAbiVersion).
inline const char *nativeAbiPreamble() {
  return
      "typedef unsigned char uint8_t;\n"
      "typedef unsigned int uint32_t;\n"
      "typedef unsigned long long uint64_t;\n"
      "typedef int int32_t;\n"
      "typedef long long int64_t;\n"
      "typedef struct ildp_native_ctx {\n"
      "  uint64_t *acc;\n"
      "  uint64_t *gpr;\n"
      "  uint64_t *vpc_base;\n"
      "  void *mem;\n"
      "  int (*ld)(void *mem, uint64_t addr, uint32_t size, uint64_t *out);\n"
      "  int (*st)(void *mem, uint64_t addr, uint64_t value, uint32_t size);\n"
      "  uint64_t inst_budget;\n"
      "  uint32_t exit_code;\n"
      "  uint32_t inst_index;\n"
      "  uint64_t vtarget;\n"
      "  uint32_t mem_fault;\n"
      "  uint64_t trap_addr;\n"
      "} ildp_native_ctx;\n"
      "static inline uint64_t ildp_sextl(uint64_t x) {\n"
      "  return (uint64_t)(int64_t)(int32_t)x;\n"
      "}\n"
      "static inline uint64_t ildp_cmpbge(uint64_t a, uint64_t b) {\n"
      "  uint64_t m = 0; unsigned i;\n"
      "  for (i = 0; i != 8; ++i)\n"
      "    if ((uint8_t)(a >> (8 * i)) >= (uint8_t)(b >> (8 * i)))\n"
      "      m |= (uint64_t)1 << i;\n"
      "  return m;\n"
      "}\n"
      "static inline uint64_t ildp_zap(uint64_t a, uint64_t b) {\n"
      "  uint64_t r = a; unsigned i;\n"
      "  for (i = 0; i != 8; ++i)\n"
      "    if (b & ((uint64_t)1 << i)) r &= ~((uint64_t)0xFF << (8 * i));\n"
      "  return r;\n"
      "}\n"
      "static inline uint64_t ildp_zapnot(uint64_t a, uint64_t b) {\n"
      "  uint64_t r = 0; unsigned i;\n"
      "  for (i = 0; i != 8; ++i)\n"
      "    if (b & ((uint64_t)1 << i)) r |= a & ((uint64_t)0xFF << (8 * i));\n"
      "  return r;\n"
      "}\n"
      "static inline uint64_t ildp_umulh(uint64_t a, uint64_t b) {\n"
      "  return (uint64_t)(((unsigned __int128)a * (unsigned __int128)b)"
      " >> 64);\n"
      "}\n"
      "static inline uint64_t ildp_ctpop(uint64_t b) {\n"
      "  uint64_t n = 0;\n"
      "  for (; b; b &= b - 1) ++n;\n"
      "  return n;\n"
      "}\n"
      "static inline uint64_t ildp_ctlz(uint64_t b) {\n"
      "  uint64_t n = 0, bit;\n"
      "  if (b == 0) return 64;\n"
      "  for (bit = (uint64_t)1 << 63; !(b & bit); bit >>= 1) ++n;\n"
      "  return n;\n"
      "}\n"
      "static inline uint64_t ildp_cttz(uint64_t b) {\n"
      "  uint64_t n = 0, bit;\n"
      "  if (b == 0) return 64;\n"
      "  for (bit = 1; !(b & bit); bit <<= 1) ++n;\n"
      "  return n;\n"
      "}\n";
}

/// Name of the exported entry symbol in a compiled fragment object.
inline const char *nativeEntrySymbol() { return "ildp_native_run"; }

/// Entry function type (host view of `void ildp_native_run(ctx *)`).
using NativeEntryFn = void (*)(NativeContext *);

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVEABI_H
