//===- native/NativeStore.cpp - Native-object persistence codec -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeStore.h"

#include "persist/ByteStream.h"

using namespace ildp;
using namespace ildp::native;
using persist::ByteReader;
using persist::ByteWriter;

uint64_t native::slotFingerprint(uint64_t ImageFp) {
  // splitmix64 finalizer over the salted image fingerprint: a native slot
  // never lands on an image slot (which uses the raw fingerprint).
  uint64_t X = ImageFp ^ NativeStoreMagic;
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

std::vector<uint8_t>
native::encodeObjects(const std::map<uint64_t, std::vector<uint8_t>> &Objects,
                      uint64_t CommandChecksum) {
  ByteWriter W;
  W.putU64(NativeStoreMagic);
  W.putU32(NativeStoreVersion);
  W.putU64(CommandChecksum);
  W.putU32(uint32_t(Objects.size()));
  for (const auto &KV : Objects) {
    W.putU64(KV.first);
    W.putU32(uint32_t(KV.second.size()));
    W.putBytes(KV.second.data(), KV.second.size());
  }
  return W.take();
}

NativeStoreStatus
native::decodeObjects(const std::vector<uint8_t> &Payload,
                      uint64_t CommandChecksum,
                      std::map<uint64_t, std::vector<uint8_t>> &Out) {
  Out.clear();
  ByteReader R(Payload);
  if (R.getU64() != NativeStoreMagic || R.failed())
    return NativeStoreStatus::Malformed;
  if (R.getU32() != NativeStoreVersion || R.failed())
    return NativeStoreStatus::Malformed;
  uint64_t Stamp = R.getU64();
  uint32_t Count = R.getU32();
  if (R.failed() || Count > MaxNativeObjects)
    return NativeStoreStatus::Malformed;
  // The staleness gate comes before any object decoding: bytes from
  // another toolchain are rejected wholesale, never partially adopted.
  if (Stamp != CommandChecksum)
    return NativeStoreStatus::Stale;
  for (uint32_t I = 0; I != Count; ++I) {
    uint64_t Key = R.getU64();
    uint32_t Size = R.getU32();
    if (R.failed() || Size == 0 || Size > R.remaining()) {
      Out.clear();
      return NativeStoreStatus::Malformed;
    }
    std::vector<uint8_t> Bytes(Size);
    if (!R.getBytes(Bytes.data(), Size) || !Out.emplace(Key, std::move(Bytes)).second) {
      Out.clear();
      return NativeStoreStatus::Malformed; // Overrun or duplicate key.
    }
  }
  if (!R.atEnd()) {
    Out.clear();
    return NativeStoreStatus::Malformed; // Trailing garbage.
  }
  return NativeStoreStatus::Ok;
}
