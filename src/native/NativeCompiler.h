//===- native/NativeCompiler.h - Host toolchain probe + C compilation -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds a working host C compiler once per process and turns emitted C
/// sources into shared-object bytes. The probe honours the
/// `ILDP_NATIVE_CC` environment variable (set to a nonexistent or broken
/// command, it deterministically fails the probe — the test hook for the
/// graceful no-toolchain path), then falls back to `cc`, `gcc`, `clang`
/// on PATH; each candidate must actually compile a trivial translation
/// unit before being accepted.
///
/// commandChecksum() fingerprints everything that affects the meaning of
/// a compiled object: compiler path + reported version, the compile
/// flags, NativeAbiVersion, and NativeEmitterVersion. CacheStore native
/// payloads carry this checksum so a persisted object from a different
/// toolchain/ABI/emitter is rejected as `native_stale` instead of being
/// dlopen'd.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVECOMPILER_H
#define ILDP_NATIVE_NATIVECOMPILER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace native {

/// The probed host toolchain. found() == false means the native tier is
/// unavailable and the VM runs exactly as without it.
struct HostCompiler {
  bool Found = false;
  std::string Path;      ///< Resolved compiler command (argv[0]).
  std::string Version;   ///< First line of `--version` output.
  uint64_t Checksum = 0; ///< commandChecksum() result.

  bool found() const { return Found; }
};

/// Probes once per process and caches the result; thread-safe. The cache
/// is keyed by the current ILDP_NATIVE_CC value, so a test that changes
/// the variable between VM constructions gets a fresh probe. (Callers
/// keep the HostCompiler *by value* for exactly this reason: the
/// reference is only stable until the next env change.)
const HostCompiler &hostCompiler();

/// Result of one out-of-line compilation.
struct CompileResult {
  bool Ok = false;
  std::vector<uint8_t> Object; ///< Shared-object bytes when Ok.
  std::string Diag;            ///< Compiler stderr (truncated) when !Ok.
};

/// Compiles \p Source (a complete C translation unit) to a shared object
/// with \p CC. Thread-safe; uses process-unique temp files. Never throws.
CompileResult compileToObject(const HostCompiler &CC,
                              const std::string &Source);

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVECOMPILER_H
