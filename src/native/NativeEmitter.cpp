//===- native/NativeEmitter.cpp - Lower I-ISA fragments to C source -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeEmitter.h"

#include "alpha/AlphaIsa.h"
#include "native/NativeAbi.h"

#include <array>
#include <cstdio>

using namespace ildp;
using namespace ildp::native;
using namespace ildp::iisa;
using alpha::Opcode;

namespace {

std::string hexU64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llxULL", (unsigned long long)V);
  return Buf;
}

std::string decU32(uint32_t V) { return std::to_string(V) + "u"; }

/// Mirrors alpha::evalIntOp term for term. Returns "" for opcodes outside
/// the integer-operate set (the emitter refuses the fragment).
std::string intOpExpr(Opcode Op, const std::string &A, const std::string &B) {
  switch (Op) {
  case Opcode::LDA:
    return "(" + A + " + " + B + ")";
  case Opcode::LDAH:
    return "(" + A + " + (" + B + " << 16))";
  case Opcode::ADDL:
    return "ildp_sextl(" + A + " + " + B + ")";
  case Opcode::ADDQ:
    return "(" + A + " + " + B + ")";
  case Opcode::SUBL:
    return "ildp_sextl(" + A + " - " + B + ")";
  case Opcode::SUBQ:
    return "(" + A + " - " + B + ")";
  case Opcode::S4ADDL:
    return "ildp_sextl(" + A + " * 4 + " + B + ")";
  case Opcode::S4ADDQ:
    return "(" + A + " * 4 + " + B + ")";
  case Opcode::S8ADDL:
    return "ildp_sextl(" + A + " * 8 + " + B + ")";
  case Opcode::S8ADDQ:
    return "(" + A + " * 8 + " + B + ")";
  case Opcode::S4SUBL:
    return "ildp_sextl(" + A + " * 4 - " + B + ")";
  case Opcode::S4SUBQ:
    return "(" + A + " * 4 - " + B + ")";
  case Opcode::S8SUBL:
    return "ildp_sextl(" + A + " * 8 - " + B + ")";
  case Opcode::S8SUBQ:
    return "(" + A + " * 8 - " + B + ")";
  case Opcode::CMPEQ:
    return "((uint64_t)(" + A + " == " + B + "))";
  case Opcode::CMPLT:
    return "((uint64_t)((int64_t)" + A + " < (int64_t)" + B + "))";
  case Opcode::CMPLE:
    return "((uint64_t)((int64_t)" + A + " <= (int64_t)" + B + "))";
  case Opcode::CMPULT:
    return "((uint64_t)(" + A + " < " + B + "))";
  case Opcode::CMPULE:
    return "((uint64_t)(" + A + " <= " + B + "))";
  case Opcode::CMPBGE:
    return "ildp_cmpbge(" + A + ", " + B + ")";
  case Opcode::AND:
    return "(" + A + " & " + B + ")";
  case Opcode::BIC:
    return "(" + A + " & ~" + B + ")";
  case Opcode::BIS:
    return "(" + A + " | " + B + ")";
  case Opcode::ORNOT:
    return "(" + A + " | ~" + B + ")";
  case Opcode::XOR:
    return "(" + A + " ^ " + B + ")";
  case Opcode::EQV:
    return "(" + A + " ^ ~" + B + ")";
  case Opcode::SLL:
    return "(" + A + " << (" + B + " & 63))";
  case Opcode::SRL:
    return "(" + A + " >> (" + B + " & 63))";
  case Opcode::SRA:
    return "((uint64_t)((int64_t)" + A + " >> (" + B + " & 63)))";
  case Opcode::ZAP:
    return "ildp_zap(" + A + ", " + B + ")";
  case Opcode::ZAPNOT:
    return "ildp_zapnot(" + A + ", " + B + ")";
  case Opcode::EXTBL:
    return "((" + A + " >> (8 * (" + B + " & 7))) & 0xFF)";
  case Opcode::EXTWL:
    return "((" + A + " >> (8 * (" + B + " & 7))) & 0xFFFF)";
  case Opcode::INSBL:
    return "((" + A + " & 0xFF) << (8 * (" + B + " & 7)))";
  case Opcode::MSKBL:
    return "(" + A + " & ~((uint64_t)0xFF << (8 * (" + B + " & 7))))";
  case Opcode::MULL:
    return "ildp_sextl(" + A + " * " + B + ")";
  case Opcode::MULQ:
    return "(" + A + " * " + B + ")";
  case Opcode::UMULH:
    return "ildp_umulh(" + A + ", " + B + ")";
  case Opcode::SEXTB:
    return "((uint64_t)(int64_t)(int8_t)" + B + ")";
  case Opcode::SEXTW:
    return "((uint64_t)(int64_t)(int16_t)" + B + ")";
  case Opcode::CTPOP:
    return "ildp_ctpop(" + B + ")";
  case Opcode::CTLZ:
    return "ildp_ctlz(" + B + ")";
  case Opcode::CTTZ:
    return "ildp_cttz(" + B + ")";
  default:
    return "";
  }
}

/// Mirrors alpha::evalBranchCond. "" for non-branch opcodes.
std::string branchCondExpr(Opcode Op, const std::string &A) {
  switch (Op) {
  case Opcode::BEQ:
    return "(" + A + " == 0)";
  case Opcode::BNE:
    return "(" + A + " != 0)";
  case Opcode::BLT:
    return "((int64_t)" + A + " < 0)";
  case Opcode::BLE:
    return "((int64_t)" + A + " <= 0)";
  case Opcode::BGT:
    return "((int64_t)" + A + " > 0)";
  case Opcode::BGE:
    return "((int64_t)" + A + " >= 0)";
  case Opcode::BLBC:
    return "((" + A + " & 1) == 0)";
  case Opcode::BLBS:
    return "((" + A + " & 1) != 0)";
  default:
    return "";
  }
}

/// Mirrors alpha::evalCmovCond. "" for non-cmov opcodes.
std::string cmovCondExpr(Opcode Op, const std::string &A) {
  switch (Op) {
  case Opcode::CMOVEQ:
    return "(" + A + " == 0)";
  case Opcode::CMOVNE:
    return "(" + A + " != 0)";
  case Opcode::CMOVLT:
    return "((int64_t)" + A + " < 0)";
  case Opcode::CMOVGE:
    return "((int64_t)" + A + " >= 0)";
  case Opcode::CMOVLE:
    return "((int64_t)" + A + " <= 0)";
  case Opcode::CMOVGT:
    return "((int64_t)" + A + " > 0)";
  case Opcode::CMOVLBS:
    return "((" + A + " & 1) != 0)";
  case Opcode::CMOVLBC:
    return "((" + A + " & 1) == 0)";
  default:
    return "";
  }
}

/// Tracks which accumulator/GPR locals the body reads or writes, so the
/// function loads exactly the touched registers at entry and the
/// write-back macro stores exactly the written ones at every exit.
struct RegPlan {
  std::array<bool, MaxAccumulators> AccUsed{};
  std::array<bool, MaxAccumulators> AccWritten{};
  std::array<bool, NumIisaGprs> GprUsed{};
  std::array<bool, NumIisaGprs> GprWritten{};
  bool VpcWritten = false;

  void readAcc(uint8_t R) { AccUsed[R] = true; }
  void writeAcc(uint8_t R) { AccUsed[R] = AccWritten[R] = true; }
  void readGpr(uint8_t R) {
    if (R != alpha::RegZero)
      GprUsed[R] = true;
  }
  void writeGpr(uint8_t R) {
    if (R != alpha::RegZero)
      GprUsed[R] = GprWritten[R] = true;
  }
};

class Emitter {
public:
  Emitter(const std::vector<IisaInst> &Body, IsaVariant Variant)
      : Body(Body), Variant(Variant) {}

  EmitResult run() {
    EmitResult R;
    const char *Refusal = plan();
    if (Refusal) {
      R.Reason = Refusal;
      return R;
    }
    std::string Text = emit();
    if (!Refused) {
      R.Ok = true;
      R.Source = std::move(Text);
    } else {
      R.Reason = RefuseReason;
    }
    return R;
  }

private:
  const std::vector<IisaInst> &Body;
  IsaVariant Variant;
  RegPlan Plan;
  bool Refused = false;
  const char *RefuseReason = "";

  void refuse(const char *Why) {
    if (!Refused) {
      Refused = true;
      RefuseReason = Why;
    }
  }

  /// First pass: validate operands and collect the touched-register plan.
  /// Returns a refusal reason, or nullptr to proceed.
  const char *plan() {
    if (Body.empty())
      return "empty-body";
    for (const IisaInst &Inst : Body) {
      if (const char *Why = planOperand(Inst.A))
        return Why;
      if (const char *Why = planOperand(Inst.B))
        return Why;
      if (Inst.DestAcc != NoReg) {
        if (Inst.DestAcc >= MaxAccumulators)
          return "acc-out-of-range";
        Plan.writeAcc(Inst.DestAcc);
      }
      if (Inst.DestGpr != NoReg) {
        if (Inst.DestGpr >= NumIisaGprs)
          return "gpr-out-of-range";
        // CmovBlend and straight-variant cond-moves read the old
        // destination value; marking every DestGpr as read keeps the
        // plan simple (an extra entry load is harmless).
        Plan.readGpr(Inst.DestGpr);
        Plan.writeGpr(Inst.DestGpr);
      }
      if (Inst.Kind == IKind::SetVpcBase)
        Plan.VpcWritten = true;
    }
    return nullptr;
  }

  const char *planOperand(const IOperand &Op) {
    switch (Op.K) {
    case IOperand::Kind::None:
    case IOperand::Kind::Imm:
      return nullptr;
    case IOperand::Kind::Acc:
      if (Op.Reg >= MaxAccumulators)
        return "acc-out-of-range";
      Plan.readAcc(Op.Reg);
      return nullptr;
    case IOperand::Kind::Gpr:
      if (Op.Reg >= NumIisaGprs)
        return "gpr-out-of-range";
      Plan.readGpr(Op.Reg);
      return nullptr;
    }
    return "bad-operand";
  }

  std::string operandExpr(const IOperand &Op) {
    switch (Op.K) {
    case IOperand::Kind::None:
      return "0";
    case IOperand::Kind::Acc:
      return "a" + std::to_string(Op.Reg);
    case IOperand::Kind::Gpr:
      return Op.Reg == alpha::RegZero ? std::string("0")
                                      : "g" + std::to_string(Op.Reg);
    case IOperand::Kind::Imm:
      return hexU64(uint64_t(Op.Imm));
    }
    return "0";
  }

  /// Assignments performing writeResult(): DestAcc then DestGpr, both
  /// receiving \p Value (a side-effect-free expression).
  std::string writeResult(const IisaInst &Inst, const std::string &Value) {
    std::string Out;
    bool ToAcc = Inst.DestAcc != NoReg;
    bool ToGpr = Inst.DestGpr != NoReg && Inst.DestGpr != alpha::RegZero;
    if (ToAcc) {
      Out += "a" + std::to_string(Inst.DestAcc) + " = " + Value + "; ";
      if (ToGpr)
        Out += "g" + std::to_string(Inst.DestGpr) + " = a" +
               std::to_string(Inst.DestAcc) + "; ";
    } else if (ToGpr) {
      Out += "g" + std::to_string(Inst.DestGpr) + " = " + Value + "; ";
    } else {
      Out += "; "; // Value is pure; a write to r31 alone is a no-op.
    }
    return Out;
  }

  std::string memAccess(const IisaInst &Inst, uint32_t Index, bool IsLoad) {
    unsigned Size = alpha::getOpInfo(Inst.AlphaOp).MemSize;
    if (Size == 0) {
      refuse("mem-size-zero");
      return "";
    }
    std::string S = "addr = " + operandExpr(Inst.B) + " + " +
                    hexU64(uint64_t(int64_t(Inst.MemDisp))) + ";\n";
    if (IsLoad) {
      S += "  f = c->ld(c->mem, addr, " + std::to_string(Size) + ", &t);\n";
      S += "  if (f) ILDP_TRAP(" + decU32(Index) + ", f, addr);\n";
      std::string Value = "t";
      const alpha::OpInfo &Info = alpha::getOpInfo(Inst.AlphaOp);
      if (Info.MemSigned) {
        if (Info.MemSize != 4) {
          refuse("unsupported-signed-load");
          return "";
        }
        Value = "ildp_sextl(t)";
      }
      S += "  " + writeResult(Inst, Value);
    } else {
      S += "  f = c->st(c->mem, addr, " + operandExpr(Inst.A) + ", " +
           std::to_string(Size) + ");\n";
      S += "  if (f) ILDP_TRAP(" + decU32(Index) + ", f, addr);";
    }
    return S;
  }

  std::string instCode(const IisaInst &Inst, uint32_t Index) {
    std::string A = operandExpr(Inst.A);
    std::string B = operandExpr(Inst.B);
    switch (Inst.Kind) {
    case IKind::Compute: {
      if (alpha::isCondMove(Inst.AlphaOp)) {
        // Straightening backend only: whole conditional move, old value
        // from the destination register.
        std::string Cond = cmovCondExpr(Inst.AlphaOp, A);
        if (Cond.empty()) {
          refuse("unknown-cmov-op");
          return "";
        }
        std::string Old;
        if (Inst.DestGpr != NoReg)
          Old = Inst.DestGpr == alpha::RegZero
                    ? std::string("0")
                    : "g" + std::to_string(Inst.DestGpr);
        else if (Inst.DestAcc != NoReg)
          Old = "a" + std::to_string(Inst.DestAcc);
        else {
          refuse("cmov-no-dest");
          return "";
        }
        return writeResult(Inst, "(" + Cond + " ? " + B + " : " + Old + ")");
      }
      std::string Expr = intOpExpr(Inst.AlphaOp, A, B);
      if (Expr.empty()) {
        refuse("unknown-int-op");
        return "";
      }
      return writeResult(Inst, Expr);
    }
    case IKind::CmovMask: {
      std::string Cond = cmovCondExpr(Inst.AlphaOp, A);
      if (Cond.empty()) {
        refuse("unknown-cmov-op");
        return "";
      }
      return writeResult(Inst, "(" + Cond + " ? ~(uint64_t)0 : 0)");
    }
    case IKind::CmovBlend: {
      // The destination-GPR field doubles as the old-value source.
      if (Inst.DestGpr == NoReg) {
        refuse("blend-no-dest");
        return "";
      }
      std::string Old = Inst.DestGpr == alpha::RegZero
                            ? std::string("0")
                            : "g" + std::to_string(Inst.DestGpr);
      return writeResult(Inst, "(" + A + " ? " + B + " : " + Old + ")");
    }
    case IKind::Load:
      return memAccess(Inst, Index, /*IsLoad=*/true);
    case IKind::Store:
      return memAccess(Inst, Index, /*IsLoad=*/false);
    case IKind::CopyToGpr:
      if (Inst.DestGpr == NoReg) {
        refuse("copy-no-dest");
        return "";
      }
      if (Inst.DestGpr == alpha::RegZero)
        return "; /* write to r31 */";
      return "g" + std::to_string(Inst.DestGpr) + " = " + A + ";";
    case IKind::CopyFromGpr:
      if (Inst.DestAcc == NoReg) {
        refuse("copy-no-dest");
        return "";
      }
      return "a" + std::to_string(Inst.DestAcc) + " = " + A + ";";
    case IKind::SetVpcBase:
      return "vpb = " + hexU64(Inst.VTarget) + ";";
    case IKind::SaveRetAddr:
      if (Inst.DestGpr == NoReg) {
        refuse("save-no-dest");
        return "";
      }
      if (Inst.DestGpr == alpha::RegZero)
        return "; /* write to r31 */";
      return "g" + std::to_string(Inst.DestGpr) + " = " +
             hexU64(Inst.VTarget) + ";";
    case IKind::LoadEmbTarget:
      return writeResult(Inst, hexU64(Inst.VTarget));
    case IKind::PushDualRas:
      // Architecturally invisible; the host replays RAS pushes from the
      // fragment metadata after the body returns.
      return "; /* push_dual_ras (host-side) */";
    case IKind::CondExit: {
      std::string Cond = branchCondExpr(Inst.AlphaOp, A);
      if (Cond.empty()) {
        refuse("unknown-branch-op");
        return "";
      }
      return "if " + Cond + " ILDP_EXIT(0u, " + decU32(Index) + ", 0);";
    }
    case IKind::Branch:
      return "ILDP_EXIT(0u, " + decU32(Index) + ", 0);";
    case IKind::JumpPredict:
      return "if (" + A + " != 0) ILDP_EXIT(1u, " + decU32(Index) +
             ", 0); else ILDP_EXIT(2u, " + decU32(Index) + ", " + B +
             " & ~(uint64_t)3);";
    case IKind::JumpDispatch:
      return "ILDP_EXIT(3u, " + decU32(Index) + ", " + B +
             " & ~(uint64_t)3);";
    case IKind::ReturnDual:
      return "ILDP_EXIT(4u, " + decU32(Index) + ", " + B +
             " & ~(uint64_t)3);";
    case IKind::Halt:
      return "ILDP_EXIT(5u, " + decU32(Index) + ", 0);";
    case IKind::Gentrap:
      return "ILDP_TRAP(" + decU32(Index) + ", 255, 0);";
    }
    refuse("unknown-kind");
    return "";
  }

  std::string emit() {
    std::string S = nativeAbiPreamble();

    // Write-back macro: stores exactly the registers the body can have
    // changed; entry loads cover exactly the registers it can read.
    std::string Wb = "#define ILDP_WB() do { ";
    for (unsigned R = 0; R != MaxAccumulators; ++R)
      if (Plan.AccWritten[R])
        Wb += "c->acc[" + std::to_string(R) + "] = a" + std::to_string(R) +
              "; ";
    for (unsigned R = 0; R != NumIisaGprs; ++R)
      if (Plan.GprWritten[R])
        Wb += "c->gpr[" + std::to_string(R) + "] = g" + std::to_string(R) +
              "; ";
    if (Plan.VpcWritten)
      Wb += "c->vpc_base[0] = vpb; ";
    Wb += "} while (0)\n";
    S += Wb;
    S += "#define ILDP_EXIT(code, idx, vt) do { ILDP_WB(); "
         "c->exit_code = (code); c->inst_index = (idx); "
         "c->vtarget = (vt); return; } while (0)\n";
    S += "#define ILDP_TRAP(idx, fault, a) do { ILDP_WB(); "
         "c->exit_code = 6u; c->inst_index = (idx); "
         "c->mem_fault = (uint32_t)(fault); c->trap_addr = (a); return; } "
         "while (0)\n";

    S += "void ildp_native_run(ildp_native_ctx *c) {\n";
    for (unsigned R = 0; R != MaxAccumulators; ++R)
      if (Plan.AccUsed[R])
        S += "  uint64_t a" + std::to_string(R) + " = c->acc[" +
             std::to_string(R) + "];\n";
    for (unsigned R = 0; R != NumIisaGprs; ++R)
      if (Plan.GprUsed[R])
        S += "  uint64_t g" + std::to_string(R) + " = c->gpr[" +
             std::to_string(R) + "];\n";
    if (Plan.VpcWritten)
      S += "  uint64_t vpb = c->vpc_base[0];\n";
    S += "  uint64_t addr; uint64_t t; int f;\n"
         "  (void)addr; (void)t; (void)f;\n";

    for (size_t I = 0; I != Body.size(); ++I) {
      const IisaInst &Inst = Body[I];
      S += "  /* " + std::to_string(I) + ": " + getKindName(Inst.Kind) +
           " */ " + instCode(Inst, uint32_t(I)) + "\n";
      if (Refused)
        return "";
    }
    // Unreachable: the translator ends every body with an unconditional
    // exit. Mirror the executor's defensive Halt.
    S += "  ILDP_EXIT(5u, " + decU32(uint32_t(Body.size() - 1)) + ", 0);\n";
    S += "}\n";
    (void)Variant;
    return S;
  }
};

} // namespace

EmitResult native::emitFragmentC(const std::vector<IisaInst> &Body,
                                 IsaVariant Variant) {
  return Emitter(Body, Variant).run();
}

uint64_t native::fragmentKey(const std::vector<IisaInst> &Body,
                             IsaVariant Variant) {
  // FNV-1a 64 over the emission-relevant fields only (see header).
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xFF;
      H *= 0x100000001b3ull;
    }
  };
  Mix(uint64_t(Variant));
  Mix(Body.size());
  for (const IisaInst &Inst : Body) {
    Mix(uint64_t(Inst.Kind));
    Mix(uint64_t(Inst.AlphaOp));
    Mix(uint64_t(Inst.A.K) | (uint64_t(Inst.A.Reg) << 8));
    Mix(uint64_t(Inst.A.Imm));
    Mix(uint64_t(Inst.B.K) | (uint64_t(Inst.B.Reg) << 8));
    Mix(uint64_t(Inst.B.Imm));
    Mix(uint64_t(Inst.DestAcc) | (uint64_t(Inst.DestGpr) << 8));
    Mix(Inst.VTarget);
    Mix(uint64_t(int64_t(Inst.MemDisp)));
  }
  return H;
}
