//===- native/NativeCompiler.cpp - Host toolchain probe + C compilation ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeCompiler.h"

#include "native/NativeAbi.h"
#include "native/NativeEmitter.h"

#include <atomic>
#include <cstdio>
#include <fcntl.h>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ildp;
using namespace ildp::native;

extern "C" char **environ;

namespace {

/// Compile flags shared by the probe, real compilations, and the command
/// checksum. -fPIC -shared because we dlopen the result; -O2 because
/// eliminating interpretive dispatch only pays off if the host compiler
/// actually optimizes the straight-line body.
const char *const CompileFlags[] = {"-O2", "-fPIC", "-shared", "-x", "c"};

std::string uniqueTempBase(const char *Tag) {
  static std::atomic<uint64_t> Counter{0};
  const char *Dir = ::getenv("TMPDIR");
  if (!Dir || !*Dir)
    Dir = "/tmp";
  return std::string(Dir) + "/ildp-native-" + Tag + "-" +
         std::to_string(uint64_t(::getpid())) + "-" +
         std::to_string(Counter.fetch_add(1));
}

/// Runs \p Argv with stdout and stderr redirected to \p OutputPath.
/// Returns the exit status, or -1 on spawn failure.
int runCommand(const std::vector<std::string> &Argv,
               const std::string &OutputPath) {
  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  posix_spawn_file_actions_addopen(&Actions, 1, OutputPath.c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0600);
  posix_spawn_file_actions_adddup2(&Actions, 1, 2);
  posix_spawn_file_actions_addopen(&Actions, 0, "/dev/null", O_RDONLY, 0);

  pid_t Pid = -1;
  int Rc = ::posix_spawnp(&Pid, Args[0], &Actions, nullptr, Args.data(),
                          environ);
  posix_spawn_file_actions_destroy(&Actions);
  if (Rc != 0)
    return -1;
  int Status = 0;
  if (::waitpid(Pid, &Status, 0) != Pid)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string readFileText(const std::string &Path, size_t MaxBytes) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (Text.size() > MaxBytes)
    Text.resize(MaxBytes);
  return Text;
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

uint64_t fnv1a64(const void *Data, size_t Size, uint64_t H) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string firstLine(const std::string &Text) {
  size_t Nl = Text.find('\n');
  return Nl == std::string::npos ? Text : Text.substr(0, Nl);
}

/// Full verification of one candidate: query its version and compile a
/// trivial translation unit to a shared object.
bool verifyCandidate(const std::string &Cmd, HostCompiler &Out) {
  std::string VerPath = uniqueTempBase("ver");
  int Rc = runCommand({Cmd, "--version"}, VerPath);
  std::string VerText = readFileText(VerPath, 4096);
  std::remove(VerPath.c_str());
  if (Rc != 0)
    return false;

  std::string SrcPath = uniqueTempBase("probe") + ".c";
  std::string ObjPath = SrcPath + ".so";
  std::string LogPath = SrcPath + ".log";
  {
    std::ofstream Src(SrcPath);
    Src << "int ildp_native_probe(int x) { return x + 1; }\n";
  }
  std::vector<std::string> Argv{Cmd};
  for (const char *F : CompileFlags)
    Argv.push_back(F);
  Argv.push_back(SrcPath);
  Argv.push_back("-o");
  Argv.push_back(ObjPath);
  Rc = runCommand(Argv, LogPath);
  bool Ok = Rc == 0 && !readFileBytes(ObjPath).empty();
  std::remove(SrcPath.c_str());
  std::remove(ObjPath.c_str());
  std::remove(LogPath.c_str());
  if (!Ok)
    return false;

  Out.Found = true;
  Out.Path = Cmd;
  Out.Version = firstLine(VerText);

  // Everything that can change the meaning of a compiled object.
  uint64_t H = 0xcbf29ce484222325ull;
  H = fnv1a64(Out.Path.data(), Out.Path.size(), H);
  H = fnv1a64(Out.Version.data(), Out.Version.size(), H);
  for (const char *F : CompileFlags)
    H = fnv1a64(F, std::strlen(F), H);
  uint32_t Versions[2] = {NativeAbiVersion, NativeEmitterVersion};
  H = fnv1a64(Versions, sizeof(Versions), H);
  Out.Checksum = H;
  return true;
}

HostCompiler probe() {
  HostCompiler CC;
  // The env override is authoritative: if set, we use it or nothing.
  // Pointing it at a nonexistent command is the deterministic
  // no-toolchain test hook.
  if (const char *Env = ::getenv("ILDP_NATIVE_CC")) {
    if (*Env)
      verifyCandidate(Env, CC);
    return CC;
  }
  for (const char *Cand : {"cc", "gcc", "clang"})
    if (verifyCandidate(Cand, CC))
      return CC;
  return CC;
}

} // namespace

const HostCompiler &native::hostCompiler() {
  static std::mutex Mutex;
  static HostCompiler CC;
  static std::string ProbedEnv;
  static bool Probed = false;
  std::lock_guard<std::mutex> Lock(Mutex);
  const char *Env = ::getenv("ILDP_NATIVE_CC");
  std::string Key = Env ? Env : "";
  if (!Probed || Key != ProbedEnv) {
    CC = probe();
    ProbedEnv = std::move(Key);
    Probed = true;
  }
  return CC;
}

CompileResult native::compileToObject(const HostCompiler &CC,
                                      const std::string &Source) {
  CompileResult R;
  if (!CC.found()) {
    R.Diag = "no host compiler";
    return R;
  }
  std::string SrcPath = uniqueTempBase("frag") + ".c";
  std::string ObjPath = SrcPath + ".so";
  std::string LogPath = SrcPath + ".log";
  {
    std::ofstream Src(SrcPath, std::ios::binary);
    Src << Source;
    if (!Src) {
      R.Diag = "cannot write temp source";
      std::remove(SrcPath.c_str());
      return R;
    }
  }
  std::vector<std::string> Argv{CC.Path};
  for (const char *F : CompileFlags)
    Argv.push_back(F);
  Argv.push_back(SrcPath);
  Argv.push_back("-o");
  Argv.push_back(ObjPath);
  int Rc = runCommand(Argv, LogPath);
  if (Rc == 0)
    R.Object = readFileBytes(ObjPath);
  R.Ok = Rc == 0 && !R.Object.empty();
  if (!R.Ok)
    R.Diag = readFileText(LogPath, 2048);
  std::remove(SrcPath.c_str());
  std::remove(ObjPath.c_str());
  std::remove(LogPath.c_str());
  return R;
}
