//===- native/NativeModule.h - dlopen'd fragment modules + registry -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns a dlopen'd compiled-fragment shared object and its resolved entry
/// function. Modules are handed out as shared_ptr through a process-global
/// registry keyed by a content hash of the object bytes, so VmFleet
/// workers warm-started from one shared store map each unique native
/// module into the process exactly once. The registry holds weak_ptr
/// entries only — a module's lifetime is exactly the union of the
/// fragments referencing it, and dlclose happens in the destructor, i.e.
/// when the last referencing fragment is destroyed. Fragments are only
/// destroyed at the translation-cache graveyard reclaim safepoints
/// (TranslationCache::reclaimEvicted), so a native body can never be
/// unmapped while any frame could still be executing inside it — the
/// exact deferred-unchain discipline PR 4 established, now carrying
/// dlclose too.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_NATIVE_NATIVEMODULE_H
#define ILDP_NATIVE_NATIVEMODULE_H

#include "native/NativeAbi.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ildp {
namespace native {

/// One dlopen'd compiled-fragment object. Construct via loadModule().
class NativeModule {
public:
  ~NativeModule(); ///< dlclose (reached only at reclaim safepoints).

  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;

  NativeEntryFn entry() const { return Fn; }
  uint64_t contentHash() const { return Hash; }

private:
  friend std::shared_ptr<NativeModule> loadModule(
      const std::vector<uint8_t> &Object);
  NativeModule() = default;

  void *Handle = nullptr;
  NativeEntryFn Fn = nullptr;
  uint64_t Hash = 0;
};

/// Maps \p Object into the process (writing it to a temp file, dlopen,
/// unlink) and resolves the entry symbol. Deduplicated process-wide by
/// content hash: a second call with identical bytes returns the already
/// loaded module. Returns nullptr on dlopen/dlsym failure. Thread-safe.
std::shared_ptr<NativeModule> loadModule(const std::vector<uint8_t> &Object);

/// Number of modules currently mapped process-wide (test/stat hook).
size_t liveModuleCount();

} // namespace native
} // namespace ildp

#endif // ILDP_NATIVE_NATIVEMODULE_H
