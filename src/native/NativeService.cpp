//===- native/NativeService.cpp - Background native compilation workers ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/NativeService.h"

#include "native/NativeEmitter.h"

using namespace ildp;
using namespace ildp::native;

NativeService::NativeService(const HostCompiler &CC, unsigned Workers,
                             size_t QueueDepth, dbt::FaultInjector *Fault)
    : CC(CC), Fault(Fault), Requests(QueueDepth) {
  if (Workers == 0)
    Workers = 1;
  this->Workers.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    this->Workers.emplace_back([this] { workerMain(); });
}

NativeService::~NativeService() {
  Requests.close();
  for (std::thread &W : Workers)
    W.join();
}

bool NativeService::trySubmit(NativeRequest Req) {
  if (!Requests.tryPush(Req))
    return false;
  Submitted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void NativeService::drainCompleted(std::vector<NativeCompletion> &Out) {
  std::lock_guard<std::mutex> Lock(DoneMutex);
  for (NativeCompletion &C : Done)
    Out.push_back(std::move(C));
  Done.clear();
  CompletedCount.store(0, std::memory_order_release);
}

void NativeService::waitAllIdle() {
  std::unique_lock<std::mutex> Lock(DoneMutex);
  DoneCv.wait(Lock, [&] {
    return Finished.load(std::memory_order_acquire) ==
           Submitted.load(std::memory_order_acquire);
  });
}

void NativeService::workerMain() {
  while (auto Req = Requests.pop()) {
    NativeCompletion C;
    C.Key = Req->Key;
    C.EntryVAddr = Req->EntryVAddr;

    if (Fault && Fault->shouldFail(dbt::FaultSite::NativeCompile)) {
      C.Reason = "injected-fault";
    } else {
      EmitResult Emitted = emitFragmentC(Req->Body, Req->Variant);
      if (!Emitted.Ok) {
        C.Reason = Emitted.Reason;
      } else {
        CompileResult Compiled = compileToObject(CC, Emitted.Source);
        if (Compiled.Ok) {
          C.Ok = true;
          C.Object = std::move(Compiled.Object);
        } else {
          C.Reason = "host-compile-failed";
        }
      }
    }

    {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      Done.push_back(std::move(C));
      CompletedCount.store(Done.size(), std::memory_order_release);
      Finished.fetch_add(1, std::memory_order_release);
    }
    DoneCv.notify_all();
  }
}
