//===- serve/HostSupervisor.h - Multi-process fleet host supervision ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process half of the fleet (DESIGN.md §15): a supervisor that
/// runs N fleet *host processes* (the ildp-crashhost binary) over one
/// shared store artifact and makes host death a served event instead of a
/// hung one. Each host is an ordinary in-process fleet (ExecutionScheduler
/// over CacheStore::openReadOnly) behind a pipe pair speaking a tagged
/// line protocol:
///
///   supervisor -> host   <id> run <workload> [tenant=..] [deadline_us=..]
///   host -> supervisor   <id> ok <checksum> insts=<n> cost=<n> worker=<n>
///                        <id> err <status> <detail> [retry_after_ms=<n>]
///
/// The contract process death must not break:
///
///  - every submit() future resolves — a request in flight on a host that
///    exits (crash-injected, SIGKILLed, or OOM-killed) is fulfilled with
///    a typed ExecStatus::HostCrashed response carrying RetryAfterMs,
///    never left hanging;
///  - the dead host is restarted (up to MaxRestarts per slot) and — the
///    §11 payoff — warm-starts from the shared store, so its first
///    request does zero translation work;
///  - surviving hosts keep serving throughout: submission fails over to
///    live slots, and only a fleet with zero live hosts rejects.
///
/// Hosts are spawned with posix_spawn (fork+exec is unsafe under the
/// sanitized test builds) and owned each by a slot thread that reaps the
/// child, fails its in-flight requests typed, and respawns. Crash
/// schedules for chaos testing cross into children via the
/// ILDP_CRASH_SCHEDULE environment variable (support/CrashInjector.h).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_HOSTSUPERVISOR_H
#define ILDP_SERVE_HOSTSUPERVISOR_H

#include "serve/ExecRequest.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ildp {
namespace serve {

/// Configuration of a supervised multi-process fleet.
struct SupervisorConfig {
  /// Path to the host binary (ildp-crashhost).
  std::string HostBinary;
  /// Shared warm-store artifact every host opens read-only (may be empty:
  /// a cold multi-process fleet).
  std::string StorePath;
  /// Host processes to run.
  unsigned Hosts = 2;
  /// Scheduler workers inside each host.
  unsigned WorkersPerHost = 1;
  /// Times a slot may be restarted after a crash before it is abandoned
  /// (a crash-looping host must not flap forever). The initial spawn does
  /// not count.
  unsigned MaxRestarts = 16;
  /// RetryAfterMs stamped on HostCrashed responses: how long a restarted
  /// host typically needs before it serves again.
  uint32_t CrashRetryAfterMs = 50;
  /// Extra environment for every host ("NAME=VALUE"), e.g. an
  /// ILDP_CRASH_SCHEDULE chaos schedule.
  std::vector<std::string> HostEnv;
};

/// A host's answer to one request, parsed from its response line (or
/// synthesized when the host died with the request in flight).
struct HostReply {
  ExecStatus Status = ExecStatus::Ok;
  std::string Detail;
  uint32_t RetryAfterMs = 0;
  uint64_t Checksum = 0;
  uint64_t GuestInsts = 0;
  /// dbt.cost.total the host spent on this request — 0 on a warm host
  /// (the §11 zero-translation-work contract, per request, per process).
  uint64_t CostUnits = 0;
  unsigned Host = 0;  ///< Slot that served (or died holding) the request.
  std::string Raw;    ///< The verbatim response line ("" on a crash).

  bool ok() const { return Status == ExecStatus::Ok; }
};

/// Supervisor of N fleet host processes over one shared store.
class HostSupervisor {
public:
  explicit HostSupervisor(SupervisorConfig Config);
  ~HostSupervisor(); // shutdown().

  HostSupervisor(const HostSupervisor &) = delete;
  HostSupervisor &operator=(const HostSupervisor &) = delete;

  /// Spawns the host processes. Returns false when no host could be
  /// spawned at all (bad binary path). Idempotent.
  bool start();

  /// Submits one request line (e.g. "run gzip tenant=t deadline_us=500")
  /// to a live host, round-robin. Never blocks on a dead fleet: with zero
  /// live hosts the future is fulfilled immediately with a typed
  /// HostCrashed rejection. Every returned future resolves.
  std::future<HostReply> submit(const std::string &RequestLine);

  /// Graceful stop: asks every live host to drain ("quit" — each host
  /// finishes its queued requests first), reaps all children, joins the
  /// slot threads. Requests a host failed to answer before exiting are
  /// fulfilled HostCrashed. Idempotent.
  void shutdown();

  unsigned hostCount() const { return unsigned(Slots.size()); }
  /// Live (spawned, not yet exited) hosts right now.
  unsigned liveHosts() const;
  /// OS pid of slot \p Slot, or -1 when the slot is down (tests use this
  /// to SIGKILL a specific host).
  long hostPid(unsigned Slot) const;

  /// Times any slot was respawned after a child exit.
  uint64_t restarts() const {
    return Restarts.load(std::memory_order_relaxed);
  }
  /// In-flight requests converted to typed HostCrashed responses.
  uint64_t crashedInFlight() const {
    return CrashedInFlight.load(std::memory_order_relaxed);
  }
  /// Submissions rejected because no host slot was live.
  uint64_t rejectedNoHost() const {
    return RejectedNoHost.load(std::memory_order_relaxed);
  }

private:
  struct Slot {
    unsigned Index = 0;
    std::thread Thread;            ///< Owns the child lifecycle.
    mutable std::mutex Mutex;      ///< Guards everything below.
    bool Live = false;
    long Pid = -1;
    int WriteFd = -1;              ///< Supervisor -> host request pipe.
    unsigned RestartsUsed = 0;
    std::unordered_map<uint64_t, std::promise<HostReply>> InFlight;
  };

  void slotMain(Slot &S);
  bool spawnHost(Slot &S, int &ReadFd);
  void failInFlight(Slot &S, const char *Detail);
  static bool parseReply(const std::string &Line, unsigned SlotIndex,
                         uint64_t &Id, HostReply &Reply);

  SupervisorConfig Config;
  std::vector<std::unique_ptr<Slot>> Slots;
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> NextId{1};
  std::atomic<unsigned> RoundRobin{0};
  std::atomic<uint64_t> Restarts{0};
  std::atomic<uint64_t> CrashedInFlight{0};
  std::atomic<uint64_t> RejectedNoHost{0};
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_HOSTSUPERVISOR_H
