//===- serve/ExecutionScheduler.h - Bounded request scheduler -------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer over VmFleet (DESIGN.md §12): a bounded request
/// queue (the PR-2 WorkQueue, generalized with non-blocking admission)
/// feeding a pool of execution worker threads. submit() never blocks —
/// admission control turns a full queue into an immediate typed
/// ExecStatus::QueueFull response, so an overloaded fleet degrades
/// instead of wedging its tenants.
///
/// Shutdown mirrors TranslationService semantics: shutdown(true) drains —
/// queued requests all execute before the workers exit; shutdown(false)
/// cancels — in-flight requests complete, still-queued requests are
/// rejected with a typed ExecStatus::ShutDown response. Either way every
/// accepted promise is fulfilled (no broken futures, no leaks) and the
/// destructor performs a cancelling shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_EXECUTIONSCHEDULER_H
#define ILDP_SERVE_EXECUTIONSCHEDULER_H

#include "serve/VmFleet.h"
#include "support/WorkQueue.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

namespace ildp {
namespace serve {

/// Asynchronous multi-tenant execution service.
class ExecutionScheduler {
public:
  /// Opens the shared store (read-only) and spawns Config.Workers
  /// execution threads.
  explicit ExecutionScheduler(const FleetConfig &Config);
  ~ExecutionScheduler(); // Cancelling shutdown.

  ExecutionScheduler(const ExecutionScheduler &) = delete;
  ExecutionScheduler &operator=(const ExecutionScheduler &) = delete;

  /// Enqueues \p Request and returns the future response. Never blocks:
  /// a full queue or a stopped scheduler fulfills the future immediately
  /// with a typed rejection (QueueFull / ShutDown). Every returned
  /// future is eventually fulfilled.
  std::future<ExecResponse> submit(ExecRequest Request);

  /// Stops the service. With \p FinishQueued, workers complete every
  /// queued request first (drain); otherwise queued requests are
  /// rejected with ExecStatus::ShutDown (cancel) — in-flight requests
  /// complete either way. Joins the workers. Returns the number of
  /// queued requests cancelled. Idempotent.
  size_t shutdown(bool FinishQueued);

  bool stopped() const { return Stopped.load(std::memory_order_acquire); }

  VmFleet &fleet() { return Fleet; }
  const VmFleet &fleet() const { return Fleet; }
  unsigned workerCount() const { return unsigned(Workers.size()); }

  /// Requests accepted into the queue so far.
  uint64_t submittedCount() const {
    return Submitted.load(std::memory_order_relaxed);
  }

private:
  struct Job {
    ExecRequest Request;
    std::promise<ExecResponse> Promise;
  };

  void workerMain(unsigned Id);
  static ExecResponse makeReject(ExecStatus Status, const char *Detail);

  VmFleet Fleet;
  WorkQueue<Job> Queue;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopped{false};
  /// Set by a cancelling shutdown: workers reject (rather than execute)
  /// everything still queued.
  std::atomic<bool> CancelQueued{false};
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Cancelled{0};
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_EXECUTIONSCHEDULER_H
