//===- serve/ExecutionScheduler.h - Overload-hardened request scheduler ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer over VmFleet (DESIGN.md §12/§14): per-tenant
/// admission control, priority lanes, and deadline-aware load shedding in
/// front of a pool of execution worker threads. submit() never blocks —
/// every overload condition turns into an immediate typed response:
///
///  - a tenant over its token-bucket rate or in-flight cap gets
///    TenantQuotaExceeded with a computed RetryAfterMs backoff hint;
///  - a request whose estimated queue wait already exceeds its wall
///    deadline is shed at admission ("deadline-unmeetable") instead of
///    rotting in the queue;
///  - a full priority lane gets QueueFull (per-lane depth bounds — a
///    batch flood fills the batch lane, not the interactive one).
///
/// Queued requests are drained by weighted-deficit dequeue across the
/// Interactive/Normal/Batch lanes (FleetConfig::LaneWeights), and a
/// request whose deadline expired while it sat in the queue is rejected
/// typed at dequeue ("wall-deadline") without consuming a VM or a worker
/// slice.
///
/// Shutdown mirrors TranslationService semantics: shutdown(true) drains —
/// queued requests all execute before the workers exit; shutdown(false)
/// cancels — in-flight requests complete, still-queued requests are
/// rejected with a typed ExecStatus::ShutDown response. Either way every
/// accepted promise is fulfilled (no broken futures, no leaks) and the
/// destructor performs a cancelling shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_EXECUTIONSCHEDULER_H
#define ILDP_SERVE_EXECUTIONSCHEDULER_H

#include "serve/AdmissionControl.h"
#include "serve/VmFleet.h"
#include "support/WorkQueue.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace ildp {
namespace serve {

/// Asynchronous multi-tenant execution service.
class ExecutionScheduler {
public:
  /// Opens the shared store (read-only) and spawns Config.Workers
  /// execution threads.
  explicit ExecutionScheduler(const FleetConfig &Config);
  ~ExecutionScheduler(); // Cancelling shutdown.

  ExecutionScheduler(const ExecutionScheduler &) = delete;
  ExecutionScheduler &operator=(const ExecutionScheduler &) = delete;

  /// Enqueues \p Request into its priority lane and returns the future
  /// response. Never blocks: a stopped scheduler, an exhausted tenant
  /// quota, an unmeetable deadline, or a full lane fulfills the future
  /// immediately with a typed rejection (ShutDown / TenantQuotaExceeded /
  /// DeadlineExceeded / QueueFull). Every returned future is eventually
  /// fulfilled. DeadlineMicros is measured from this call — queueing time
  /// counts against the deadline.
  std::future<ExecResponse> submit(ExecRequest Request);

  /// Stops the service. With \p FinishQueued, workers complete every
  /// queued request first (drain); otherwise queued requests are
  /// rejected with ExecStatus::ShutDown (cancel) — in-flight requests
  /// complete either way. Joins the workers. Returns the number of
  /// queued requests cancelled. Idempotent.
  size_t shutdown(bool FinishQueued);

  bool stopped() const { return Stopped.load(std::memory_order_acquire); }

  VmFleet &fleet() { return Fleet; }
  const VmFleet &fleet() const { return Fleet; }
  unsigned workerCount() const { return NumWorkers; }

  /// Requests accepted into the queue so far.
  uint64_t submittedCount() const {
    return Submitted.load(std::memory_order_relaxed);
  }

  /// Admission-control state (quotas, in-flight counts, service EWMA).
  const AdmissionControl &admission() const { return Admission; }

  /// Estimated queue wait for a request entering \p Lane right now, in
  /// microseconds: the requests the weighted-deficit dequeue would serve
  /// first, priced at the observed mean service time and divided across
  /// the workers. Zero until the first completion (no sample, no shed).
  uint64_t estimateQueueWaitMicros(Priority Lane) const;

private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    ExecRequest Request;
    std::promise<ExecResponse> Promise;
    Clock::time_point Deadline{};
    bool HasDeadline = false;
  };

  void workerMain(unsigned Id);
  static ExecResponse makeReject(ExecStatus Status, const char *Detail,
                                 uint32_t RetryAfterMs = 0);

  VmFleet Fleet;
  AdmissionControl Admission;
  MultiLaneQueue<Job> Queue;
  /// Fixed at construction. submit() prices retry hints by it while
  /// shutdown() may be tearing Workers down — it must not read the
  /// vector.
  unsigned NumWorkers = 0;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopped{false};
  /// Set by a cancelling shutdown: workers reject (rather than execute)
  /// everything still queued.
  std::atomic<bool> CancelQueued{false};
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Cancelled{0};
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_EXECUTIONSCHEDULER_H
