//===- serve/ExecRequest.cpp - Execution-service request/response types ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ExecRequest.h"

#include "workloads/Workloads.h"

using namespace ildp;
using namespace ildp::serve;

const char *serve::getExecStatusName(ExecStatus Status) {
  switch (Status) {
  case ExecStatus::Ok:
    return "ok";
  case ExecStatus::Trapped:
    return "trapped";
  case ExecStatus::BadImage:
    return "bad-image";
  case ExecStatus::QueueFull:
    return "queue-full";
  case ExecStatus::DeadlineExceeded:
    return "deadline";
  case ExecStatus::InstBudgetExceeded:
    return "inst-budget";
  case ExecStatus::ShutDown:
    return "shutdown";
  case ExecStatus::TenantQuotaExceeded:
    return "tenant-quota";
  case ExecStatus::HostCrashed:
    return "host-crashed";
  }
  return "unknown";
}

bool serve::parseExecStatusName(const std::string &Name, ExecStatus &Status) {
  for (unsigned I = 0; I != NumExecStatuses; ++I)
    if (Name == getExecStatusName(ExecStatus(I))) {
      Status = ExecStatus(I);
      return true;
    }
  return false;
}

const char *serve::getPriorityName(Priority P) {
  switch (P) {
  case Priority::Interactive:
    return "interactive";
  case Priority::Normal:
    return "normal";
  case Priority::Batch:
    return "batch";
  }
  return "unknown";
}

bool serve::parsePriorityName(const std::string &Name, Priority &P) {
  for (unsigned I = 0; I != NumPriorities; ++I)
    if (Name == getPriorityName(Priority(I))) {
      P = Priority(I);
      return true;
    }
  return false;
}

GuestImage serve::imageFromWorkload(const std::string &Name, unsigned Scale) {
  GuestMemory Mem;
  workloads::WorkloadImage Built = workloads::buildWorkload(Name, Mem, Scale);
  GuestImage Image;
  Image.Name = Built.Name;
  Image.EntryPc = Built.EntryPc;
  // Snapshot page-for-page: a memory rebuilt from these segments maps the
  // same pages with the same bytes, so the persistence fingerprint (and
  // with it the shared-store slot) is identical to a directly built
  // workload's.
  for (uint64_t Base : Mem.mappedPageBases()) {
    ImageSegment Seg;
    Seg.Base = Base;
    const uint8_t *Data = Mem.pageData(Base);
    Seg.Bytes.assign(Data, Data + GuestMemory::PageSize);
    Image.Segments.push_back(std::move(Seg));
  }
  return Image;
}

const char *serve::buildGuestMemory(const GuestImage &Image,
                                    GuestMemory &Mem) {
  if (Image.empty())
    return "empty-image";
  if (Image.EntryPc % 4 != 0)
    return "entry-misaligned";
  uint64_t TotalBytes = 0;
  for (const ImageSegment &Seg : Image.Segments) {
    if (Seg.Bytes.empty())
      return "empty-segment";
    // Overflow/absurd-size guard: segment lengths come from tenants —
    // never trust them to drive an allocation.
    if (Seg.Bytes.size() > (uint64_t(1) << 32) ||
        Seg.Base + Seg.Bytes.size() < Seg.Base)
      return "segment-bounds";
    TotalBytes += Seg.Bytes.size();
    if (TotalBytes > (uint64_t(1) << 32))
      return "image-too-large";
  }
  for (const ImageSegment &Seg : Image.Segments)
    Mem.writeBlob(Seg.Base, Seg.Bytes.data(), Seg.Bytes.size());
  if (!Mem.isMapped(Image.EntryPc))
    return "entry-unmapped";
  return nullptr;
}
