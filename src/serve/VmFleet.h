//===- serve/VmFleet.h - Multi-tenant VM execution fleet ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate of the fleet service (DESIGN.md §12): a pool
/// of pre-configured VM slots that all warm-start from ONE shared
/// read-only CacheStore, opened once at fleet construction. The paper's
/// amortization argument — pay translation once, reap it across
/// executions — extended across tenants: every request served warm does
/// zero translation work, and a thousand concurrent warm starts contend
/// on nothing (CacheStore::openReadOnly never takes the save lock, and
/// lookup() is a const walk over immutable payload bytes).
///
/// VmFleet itself is the synchronous, in-process core: execute() runs one
/// request to a typed ExecResponse, enforcing per-request instruction
/// ceilings, wall-clock deadlines (as budget slices over the resumable
/// VM), and per-tenant code-cache byte budgets (the PR-4 eviction
/// machinery, one budget per tenant). ExecutionScheduler puts the bounded
/// queue and the worker threads on top.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_VMFLEET_H
#define ILDP_SERVE_VMFLEET_H

#include "persist/CacheStore.h"
#include "serve/AdmissionControl.h"
#include "serve/ExecRequest.h"
#include "vm/VirtualMachine.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ildp {
namespace serve {

/// Fleet-wide configuration.
struct FleetConfig {
  /// Execution worker slots (ExecutionScheduler threads; VmFleet::execute
  /// itself is callable from any of them concurrently).
  unsigned Workers = 1;
  /// Default per-lane bound of the request queue; a full lane rejects
  /// QueueFull. Lanes may be bounded individually via LaneDepths.
  size_t QueueDepth = 64;
  /// Per-lane depth bounds, indexed by Priority (0 = use QueueDepth).
  std::array<size_t, NumPriorities> LaneDepths{{0, 0, 0}};
  /// Weighted-deficit dequeue grants per round, indexed by Priority: the
  /// long-run served mix under sustained pressure on every lane. The
  /// default serves 8 interactive : 3 normal : 1 batch, so interactive
  /// latency stays bounded under a batch backlog while batch never
  /// starves (0 entries are clamped to 1).
  std::array<unsigned, NumPriorities> LaneWeights{{8, 3, 1}};
  /// Per-tenant admission quotas (token-bucket rate + max in-flight).
  /// Tenants not listed use DefaultQuota.
  std::map<std::string, TenantQuota> TenantQuotas;
  /// Quota for tenants without an entry. Fully permissive by default, so
  /// admission control is opt-in.
  TenantQuota DefaultQuota;
  /// Template VM configuration for every request. PersistPath/PersistSave
  /// are ignored (fleet VMs never write a store); the DbtConfig half
  /// participates in image fingerprints, so it must match the
  /// configuration that produced the warm store.
  vm::VmConfig BaseVm;
  /// Warm store: opened read-only once at construction and shared by
  /// every request VM. Empty = cold fleet (every request translates for
  /// itself).
  std::string StorePath;
  /// Guest-instruction ceiling for requests that do not set their own.
  uint64_t DefaultMaxGuestInsts = 400'000'000;
  /// Deadline enforcement granularity: wall-clock checks happen between
  /// budget slices of this many guest instructions.
  uint64_t DeadlineSliceInsts = 1'000'000;
  /// Per-tenant translation-cache byte budgets (0 = unbounded). Tenants
  /// not listed use DefaultCacheBytes.
  std::map<std::string, uint64_t> TenantCacheBytes;
  /// Budget for tenants without an entry (0 = unbounded).
  uint64_t DefaultCacheBytes = 0;
};

/// The fleet: shared warm store + image registry + request executor.
class VmFleet {
public:
  explicit VmFleet(const FleetConfig &Config);

  VmFleet(const VmFleet &) = delete;
  VmFleet &operator=(const VmFleet &) = delete;

  /// Registers \p Image for execution by fingerprint or name and returns
  /// its fingerprint (under the fleet's DbtConfig — the same identity the
  /// warm store slots use). Re-registering a fingerprint or name replaces
  /// the previous entry. NOT thread-safe against concurrent execute();
  /// populate the registry before serving.
  uint64_t registerImage(GuestImage Image);

  /// Registers all twelve paper workloads at \p Scale. Returns the count.
  size_t registerWorkloads(unsigned Scale = 1);

  /// Executes one request synchronously on the calling thread and returns
  /// its typed response. Thread-safe: any number of workers may execute
  /// concurrently (each request gets a fresh VM; the shared store is
  /// read-only). \p Worker tags the response with the executing slot.
  /// Request.DeadlineMicros is measured from this call.
  ExecResponse execute(const ExecRequest &Request, unsigned Worker = 0);

  /// As execute(), but against an absolute wall deadline established at
  /// admission time — the scheduler path, where queueing time counts
  /// against the deadline. An already-expired deadline rejects typed
  /// ("wall-deadline") before a VM is constructed.
  ExecResponse
  executeUntil(const ExecRequest &Request, unsigned Worker,
               std::chrono::steady_clock::time_point Deadline);

  /// Counts a scheduler-level rejection (queue-full / quota / shutdown /
  /// shed) in the fleet statistics, so serve.* totals cover every
  /// submitted request. \p Tenant additionally attributes the rejection
  /// to "serve.tenant.<id>.rejected.<reason>" for quota tuning.
  void countRejected(ExecStatus Status, const std::string &Tenant);
  void countRejected(ExecStatus Status) {
    countRejected(Status, std::string());
  }

  /// Counts a deadline-aware load shed under "serve.shed.<kind>" on top
  /// of its typed rejection: \p Kind is "expired_in_queue" (dequeue-time
  /// re-check) or "deadline_unmeetable" (admission-time estimate).
  void countShed(const char *Kind, ExecStatus Status,
                 const std::string &Tenant);

  /// Counts one request served from lane \p P ("serve.lane.<name>.served").
  void countLaneServed(Priority P);

  /// The shared warm store (empty when StorePath was empty or bad).
  const persist::CacheStore &store() const { return Store; }
  /// Status of the read-only store open (Ok also when StorePath empty —
  /// a cold fleet is not an error; FileNotFound etc. otherwise).
  persist::StoreStatus storeStatus() const { return StoreState; }
  /// True when requests warm-start from the shared store.
  bool storeLoaded() const { return StoreLoaded; }

  const FleetConfig &config() const { return Config; }

  /// Fleet-level statistics ("serve.*"): request counts by status, guest
  /// instructions served, translation work paid, evictions, warm hits.
  /// Thread-safe; materialized from atomics on call.
  StatisticSet stats() const;

private:
  const char *materialize(const ExecRequest &Request, GuestMemory &Mem,
                          uint64_t &EntryPc) const;
  uint64_t resolveCacheBudget(const ExecRequest &Request) const;
  ExecResponse executeImpl(const ExecRequest &Request, unsigned Worker,
                           bool HasDeadline,
                           std::chrono::steady_clock::time_point Deadline);
  void countTenantRejected(const std::string &Tenant, ExecStatus Status);

  FleetConfig Config;
  persist::CacheStore Store;
  persist::StoreStatus StoreState = persist::StoreStatus::Ok;
  bool StoreLoaded = false;

  /// Image registry (fixed after setup; see registerImage).
  std::vector<GuestImage> Images;
  std::unordered_map<uint64_t, size_t> ImageByFingerprint;
  std::unordered_map<std::string, size_t> ImageByName;

  /// Lock-free accounting: execute() runs on many workers at once.
  struct Counters {
    std::atomic<uint64_t> Requests{0};
    std::array<std::atomic<uint64_t>, NumExecStatuses> ByStatus{};
    std::atomic<uint64_t> GuestInsts{0};
    std::atomic<uint64_t> TranslationUnits{0};
    std::atomic<uint64_t> Evictions{0};
    std::atomic<uint64_t> Bailouts{0};
    std::atomic<uint64_t> StoreHits{0};
    std::atomic<uint64_t> StoreMisses{0};
    std::atomic<uint64_t> WallMicros{0};
    std::array<std::atomic<uint64_t>, NumPriorities> LaneServed{};
  };
  Counters Count;

  /// Per-tenant rejection counts by reason and shed counts by kind
  /// ("serve.tenant.<id>.rejected.<reason>", "serve.shed.<kind>").
  /// Rejections are rare relative to execution, so a mutex-guarded map is
  /// the right tool — the hot path (Finish on an Ok response) never takes
  /// it.
  mutable std::mutex RejectMutex;
  std::map<std::string, std::array<uint64_t, NumExecStatuses>>
      TenantRejected;
  std::map<std::string, uint64_t> ShedCounts;
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_VMFLEET_H
