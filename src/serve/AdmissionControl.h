//===- serve/AdmissionControl.h - Per-tenant admission quotas -------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant admission control for the fleet scheduler (DESIGN.md §14):
/// a token-bucket rate limiter plus a max-in-flight cap per tenant. Both
/// continue the report-and-degrade discipline — an over-quota submit is
/// an immediate typed ExecStatus::TenantQuotaExceeded carrying a computed
/// RetryAfterMs backoff hint, never a block and never a silent drop — so
/// one misbehaving tenant degrades only its own service, not the fleet's.
///
/// The controller also tracks a fleet-wide EWMA of request service time,
/// which prices the two hints a rejected tenant receives (how long until
/// a token accrues; how long one in-flight slot typically stays busy) and
/// lets the scheduler estimate queue wait for deadline-aware shedding.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_ADMISSIONCONTROL_H
#define ILDP_SERVE_ADMISSIONCONTROL_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ildp {
namespace serve {

/// Admission quota of one tenant. The zero-initialized quota is fully
/// permissive (no rate limit, no in-flight cap), so quotas are opt-in.
struct TenantQuota {
  /// Steady-state admission rate in requests/second (0 = unlimited).
  double TokensPerSec = 0;
  /// Token-bucket capacity: how many requests may arrive back to back
  /// before the rate gates them (0 = max(1, TokensPerSec)).
  double Burst = 0;
  /// Maximum admitted-but-unfinished requests (queued + executing;
  /// 0 = unlimited).
  uint32_t MaxInFlight = 0;

  bool unlimited() const { return TokensPerSec <= 0 && MaxInFlight == 0; }
};

/// Thread-safe per-tenant token buckets + in-flight counts.
class AdmissionControl {
public:
  using Clock = std::chrono::steady_clock;

  /// \p Quotas maps tenant ids to their quotas; tenants not listed use
  /// \p Default (itself fully permissive unless configured otherwise).
  AdmissionControl(const std::map<std::string, TenantQuota> &Quotas,
                   const TenantQuota &Default);

  /// Outcome of one admission attempt.
  struct Decision {
    bool Admitted = true;
    /// Static rejection detail ("tenant-rate" / "tenant-inflight").
    const char *Reason = "";
    /// Computed backoff hint (>= 1ms on rejection).
    uint32_t RetryAfterMs = 0;
  };

  /// Tries to admit one request for \p Tenant at \p Now. On success the
  /// tenant's in-flight count is incremented; the caller MUST pair every
  /// admitted request with exactly one release() / noteCompleted().
  Decision tryAdmit(const std::string &Tenant, Clock::time_point Now);
  Decision tryAdmit(const std::string &Tenant) {
    return tryAdmit(Tenant, Clock::now());
  }

  /// Releases an admitted request without a service-time sample (shed
  /// while queued, cancelled at shutdown).
  void release(const std::string &Tenant);

  /// Releases an admitted request that actually executed, folding its
  /// wall time into the service-time EWMA.
  void noteCompleted(const std::string &Tenant, double WallMicros);

  /// Fleet-wide EWMA of executed-request wall time, in microseconds
  /// (0 until the first completion).
  uint64_t ewmaServiceMicros() const;

  /// Current admitted-but-unfinished count for \p Tenant.
  uint32_t inFlight(const std::string &Tenant) const;

private:
  struct Bucket {
    TenantQuota Quota;
    double Tokens = 0;
    Clock::time_point LastRefill{};
    uint32_t InFlight = 0;
    bool Primed = false; ///< Tokens start at Burst on first touch.
  };

  Bucket &bucketFor(const std::string &Tenant); // Lock held.

  const std::map<std::string, TenantQuota> Quotas;
  const TenantQuota Default;

  mutable std::mutex M;
  std::map<std::string, Bucket> Buckets;
  uint64_t EwmaMicros = 0;
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_ADMISSIONCONTROL_H
