//===- serve/VmFleet.cpp - Multi-tenant VM execution fleet ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/VmFleet.h"

#include "persist/Fingerprint.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>

using namespace ildp;
using namespace ildp::serve;

VmFleet::VmFleet(const FleetConfig &Config) : Config(Config) {
  // Normalize the VM template: fleet VMs never open or write a store
  // themselves — the one read-only store below is their only warm source.
  this->Config.BaseVm.PersistPath.clear();
  this->Config.BaseVm.PersistSave = false;
  this->Config.BaseVm.SharedStore = nullptr;
  if (this->Config.Workers == 0)
    this->Config.Workers = 1;

  if (!Config.StorePath.empty()) {
    StoreState = Store.openReadOnly(Config.StorePath);
    // Report-and-degrade: a missing or corrupt store serves cold, it does
    // not kill the fleet. (The VM-level persist.* taxonomy already counts
    // per-reason rejections; storeStatus() exposes the open status.)
    StoreLoaded = StoreState == persist::StoreStatus::Ok;
  }
}

uint64_t VmFleet::registerImage(GuestImage Image) {
  GuestMemory Mem;
  if (buildGuestMemory(Image, Mem) != nullptr)
    return 0;
  uint64_t Fingerprint =
      persist::fingerprint(Mem, Image.EntryPc, Config.BaseVm.Dbt);
  size_t Index;
  auto Existing = ImageByFingerprint.find(Fingerprint);
  if (Existing != ImageByFingerprint.end()) {
    Index = Existing->second;
    Images[Index] = std::move(Image);
  } else {
    Index = Images.size();
    Images.push_back(std::move(Image));
    ImageByFingerprint.emplace(Fingerprint, Index);
  }
  ImageByName[Images[Index].Name] = Index;
  return Fingerprint;
}

size_t VmFleet::registerWorkloads(unsigned Scale) {
  for (const std::string &Name : workloads::workloadNames())
    registerImage(imageFromWorkload(Name, Scale));
  return workloads::workloadNames().size();
}

const char *VmFleet::materialize(const ExecRequest &Request, GuestMemory &Mem,
                                 uint64_t &EntryPc) const {
  const GuestImage *Image = nullptr;
  if (!Request.Image.empty()) {
    Image = &Request.Image;
  } else if (Request.ImageFingerprint != 0) {
    auto It = ImageByFingerprint.find(Request.ImageFingerprint);
    if (It == ImageByFingerprint.end())
      return "unknown-fingerprint";
    Image = &Images[It->second];
  } else if (!Request.Workload.empty()) {
    auto It = ImageByName.find(Request.Workload);
    if (It == ImageByName.end())
      return "unknown-workload";
    Image = &Images[It->second];
  } else {
    return "no-image";
  }
  EntryPc = Image->EntryPc;
  return buildGuestMemory(*Image, Mem);
}

uint64_t VmFleet::resolveCacheBudget(const ExecRequest &Request) const {
  if (Request.CodeCacheBytes != InheritCacheBudget)
    return Request.CodeCacheBytes;
  auto It = Config.TenantCacheBytes.find(Request.Tenant);
  if (It != Config.TenantCacheBytes.end())
    return It->second;
  return Config.DefaultCacheBytes;
}

void VmFleet::countTenantRejected(const std::string &Tenant,
                                  ExecStatus Status) {
  std::lock_guard<std::mutex> Lock(RejectMutex);
  TenantRejected[Tenant][size_t(Status)] += 1;
}

void VmFleet::countRejected(ExecStatus Status, const std::string &Tenant) {
  Count.Requests.fetch_add(1, std::memory_order_relaxed);
  Count.ByStatus[size_t(Status)].fetch_add(1, std::memory_order_relaxed);
  countTenantRejected(Tenant, Status);
}

void VmFleet::countShed(const char *Kind, ExecStatus Status,
                        const std::string &Tenant) {
  countRejected(Status, Tenant);
  std::lock_guard<std::mutex> Lock(RejectMutex);
  ShedCounts[Kind] += 1;
}

void VmFleet::countLaneServed(Priority P) {
  Count.LaneServed[size_t(P)].fetch_add(1, std::memory_order_relaxed);
}

ExecResponse VmFleet::execute(const ExecRequest &Request, unsigned Worker) {
  using Clock = std::chrono::steady_clock;
  bool HasDeadline = Request.DeadlineMicros != 0;
  return executeImpl(Request, Worker, HasDeadline,
                     Clock::now() +
                         std::chrono::microseconds(Request.DeadlineMicros));
}

ExecResponse
VmFleet::executeUntil(const ExecRequest &Request, unsigned Worker,
                      std::chrono::steady_clock::time_point Deadline) {
  return executeImpl(Request, Worker, /*HasDeadline=*/true, Deadline);
}

ExecResponse
VmFleet::executeImpl(const ExecRequest &Request, unsigned Worker,
                     bool HasDeadline,
                     std::chrono::steady_clock::time_point Deadline) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();

  ExecResponse Resp;
  Resp.Worker = Worker;

  auto Finish = [&](ExecStatus Status, const char *Detail) -> ExecResponse & {
    Resp.Status = Status;
    Resp.Detail = Detail;
    Resp.WallMicros = std::chrono::duration<double, std::micro>(
                          Clock::now() - Start)
                          .count();
    Count.Requests.fetch_add(1, std::memory_order_relaxed);
    Count.ByStatus[size_t(Status)].fetch_add(1, std::memory_order_relaxed);
    Count.GuestInsts.fetch_add(Resp.GuestInsts, std::memory_order_relaxed);
    Count.WallMicros.fetch_add(uint64_t(Resp.WallMicros),
                               std::memory_order_relaxed);
    Count.TranslationUnits.fetch_add(Resp.Stats.get("dbt.cost.total"),
                                     std::memory_order_relaxed);
    Count.Evictions.fetch_add(Resp.Stats.get("cache.evictions"),
                              std::memory_order_relaxed);
    Count.Bailouts.fetch_add(Resp.Stats.get("robust.bailouts"),
                             std::memory_order_relaxed);
    Count.StoreHits.fetch_add(Resp.Stats.get("persist.store_hit"),
                              std::memory_order_relaxed);
    Count.StoreMisses.fetch_add(Resp.Stats.get("persist.store_miss"),
                                std::memory_order_relaxed);
    if (Status != ExecStatus::Ok && Status != ExecStatus::Trapped)
      countTenantRejected(Request.Tenant, Status);
    return Resp;
  };

  // Belt-and-braces deadline re-check: a request whose deadline already
  // passed (it expired between the scheduler's dequeue check and here, or
  // the caller handed in a stale deadline) must not consume a VM or a
  // budget slice — reject typed before any work.
  if (HasDeadline && Start >= Deadline)
    return Finish(ExecStatus::DeadlineExceeded, "wall-deadline");

  GuestMemory Mem;
  uint64_t EntryPc = 0;
  if (const char *Bad = materialize(Request, Mem, EntryPc))
    return Finish(ExecStatus::BadImage, Bad);

  vm::VmConfig VmConf = Config.BaseVm;
  if (StoreLoaded)
    VmConf.SharedStore = &Store;
  VmConf.CodeCacheBytes = resolveCacheBudget(Request);

  uint64_t Ceiling = Request.MaxGuestInsts ? Request.MaxGuestInsts
                                           : Config.DefaultMaxGuestInsts;
  uint64_t Slice =
      Config.DeadlineSliceInsts ? Config.DeadlineSliceInsts : 1'000'000;
  // With a deadline the VM runs in budget slices so the wall clock is
  // checked at bounded guest-instruction intervals; run() is resumable
  // after a Budget stop (setGuestInstBudget raises the ceiling in place).
  VmConf.MaxGuestInsts = HasDeadline ? std::min(Ceiling, Slice) : Ceiling;

  vm::VirtualMachine Vm(Mem, EntryPc, VmConf);

  ExecStatus Status = ExecStatus::Ok;
  const char *Detail = "";
  for (;;) {
    vm::RunResult Run = Vm.run();
    if (Run.Reason == vm::StopReason::Halted)
      break;
    if (Run.Reason == vm::StopReason::Trapped) {
      Status = ExecStatus::Trapped;
      Detail = "guest-trap";
      break;
    }
    // Budget stop: the ceiling, the deadline slice, or both.
    if (Vm.guestInsts() >= Ceiling) {
      Status = ExecStatus::InstBudgetExceeded;
      Detail = "guest-inst-ceiling";
      break;
    }
    if (HasDeadline && Clock::now() >= Deadline) {
      Status = ExecStatus::DeadlineExceeded;
      Detail = "wall-deadline";
      break;
    }
    Vm.setGuestInstBudget(std::min(Ceiling, Vm.guestInsts() + Slice));
  }

  Resp.Arch = Vm.interpreter().state();
  Resp.Checksum = Resp.Arch.readGpr(alpha::RegV0);
  Resp.GuestInsts = Vm.guestInsts();
  Resp.Stats = Vm.statsDelta();
  return Finish(Status, Detail);
}

StatisticSet VmFleet::stats() const {
  StatisticSet S;
  S.set("serve.workers", Config.Workers);
  S.set("serve.queue_depth", Config.QueueDepth);
  S.set("serve.registered_images", Images.size());
  S.set("serve.store_loaded", StoreLoaded ? 1 : 0);
  if (StoreLoaded) {
    S.set("serve.store_images", Store.imageCount());
    S.set("serve.store_bytes", Store.totalPayloadBytes());
  }
  S.set("serve.requests", Count.Requests.load(std::memory_order_relaxed));
  for (unsigned I = 0; I != NumExecStatuses; ++I) {
    uint64_t N = Count.ByStatus[I].load(std::memory_order_relaxed);
    if (I == size_t(ExecStatus::Ok))
      S.set("serve.ok", N);
    else if (I == size_t(ExecStatus::Trapped))
      S.set("serve.trapped", N); // An outcome, not a rejection.
    else if (N)
      S.set(std::string("serve.rejected.") +
                getExecStatusName(ExecStatus(I)),
            N);
  }
  for (unsigned I = 0; I != NumPriorities; ++I) {
    uint64_t N = Count.LaneServed[I].load(std::memory_order_relaxed);
    if (N)
      S.set(std::string("serve.lane.") + getPriorityName(Priority(I)) +
                ".served",
            N);
  }
  {
    std::lock_guard<std::mutex> Lock(RejectMutex);
    for (const auto &[Tenant, ByStatus] : TenantRejected) {
      std::string Prefix = "serve.tenant." +
                           (Tenant.empty() ? std::string("default") : Tenant) +
                           ".rejected.";
      for (unsigned I = 0; I != NumExecStatuses; ++I)
        if (ByStatus[I])
          S.set(Prefix + getExecStatusName(ExecStatus(I)), ByStatus[I]);
    }
    for (const auto &[Kind, N] : ShedCounts)
      S.set(std::string("serve.shed.") + Kind, N);
  }
  S.set("serve.guest_insts", Count.GuestInsts.load(std::memory_order_relaxed));
  S.set("serve.translation_units",
        Count.TranslationUnits.load(std::memory_order_relaxed));
  S.set("serve.cache_evictions",
        Count.Evictions.load(std::memory_order_relaxed));
  S.set("serve.robust_bailouts",
        Count.Bailouts.load(std::memory_order_relaxed));
  S.set("serve.store_hits", Count.StoreHits.load(std::memory_order_relaxed));
  S.set("serve.store_misses",
        Count.StoreMisses.load(std::memory_order_relaxed));
  S.set("serve.wall_micros", Count.WallMicros.load(std::memory_order_relaxed));
  return S;
}
