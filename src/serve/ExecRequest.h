//===- serve/ExecRequest.h - Execution-service request/response types -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire-level-ish types of the fleet execution service (DESIGN.md
/// §12): a GuestImage (relocatable description of a guest program, the
/// unit tenants submit), an ExecRequest (what to run, as whom, under
/// which limits), and an ExecResponse (typed outcome, architected result,
/// and an exact per-request statistics delta).
///
/// The request taxonomy continues the report-and-degrade discipline of
/// the translation pipeline (DESIGN.md §9): an overloaded queue, an
/// unknown or malformed image, a guest trap, a missed deadline, or a
/// shutting-down fleet all produce a typed ExecResponse — the service
/// never throws a request away silently and never dies on one.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_SERVE_EXECREQUEST_H
#define ILDP_SERVE_EXECREQUEST_H

#include "interp/ArchState.h"
#include "mem/GuestMemory.h"
#include "support/Statistics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace serve {

/// Typed outcome of one execution request.
enum class ExecStatus : uint8_t {
  Ok,                 ///< Ran to HALT; Arch/Checksum are the result.
  Trapped,            ///< Guest trapped; Arch is the precisely recovered
                      ///< state (the paper's Section 2.2 machinery).
  BadImage,           ///< Unknown fingerprint/workload, empty or
                      ///< malformed image, or an unmapped/misaligned
                      ///< entry point. Rejected before execution.
  QueueFull,          ///< Admission control: the bounded request queue
                      ///< was full at submit time.
  DeadlineExceeded,   ///< The per-request wall-clock deadline passed;
                      ///< Arch is the state at the abandonment point.
  InstBudgetExceeded, ///< The per-request guest-instruction ceiling was
                      ///< reached; Arch is the state at the ceiling.
  ShutDown,           ///< The scheduler was draining or stopped: the
                      ///< request was cancelled while still queued (or
                      ///< refused at submit time).
  TenantQuotaExceeded, ///< Admission control: the tenant exhausted its
                       ///< token-bucket rate or max-in-flight quota.
                       ///< ExecResponse::RetryAfterMs says when to retry.
  HostCrashed,         ///< Multi-process mode (HostSupervisor): the host
                       ///< process serving this request died mid-flight.
                       ///< The request was NOT completed; RetryAfterMs
                       ///< hints when a restarted host will be warm.
                       ///< Never produced by the in-process scheduler.
};

constexpr unsigned NumExecStatuses = 9;

/// Stable lowercase status name ("ok", "queue-full", ...), used for the
/// "serve.rejected.<reason>" statistics and the demo front end.
const char *getExecStatusName(ExecStatus Status);

/// Parses a status name as printed by getExecStatusName(). Returns false
/// and leaves \p Status untouched on an unknown name. Used by the
/// multi-process supervisor to type child "err <status> ..." lines.
bool parseExecStatusName(const std::string &Name, ExecStatus &Status);

/// Priority lane of a request. The scheduler keeps one independently
/// bounded queue per lane and drains them by weighted-deficit dequeue
/// (FleetConfig::LaneWeights), so a tiny Interactive request is served
/// ahead of — but never starves — a Batch backlog.
enum class Priority : uint8_t {
  Interactive, ///< Latency-sensitive; largest dequeue weight.
  Normal,      ///< The default.
  Batch,       ///< Throughput work; smallest dequeue weight.
};

constexpr unsigned NumPriorities = 3;

/// Stable lowercase lane name ("interactive", "normal", "batch"), used
/// for the "serve.lane.<name>.*" statistics and the demo front end.
const char *getPriorityName(Priority P);

/// Parses a lane name as printed by getPriorityName(). Returns false and
/// leaves \p P untouched on an unknown name.
bool parsePriorityName(const std::string &Name, Priority &P);

/// One contiguous run of initialized guest bytes.
struct ImageSegment {
  uint64_t Base = 0;
  std::vector<uint8_t> Bytes;
};

/// A relocatable description of a guest program: everything needed to
/// materialize a fresh GuestMemory per request. Obtained from
/// imageFromWorkload() (the twelve paper workloads) or built directly by
/// a tenant from raw image bytes.
struct GuestImage {
  std::string Name; ///< Diagnostic label; not part of the identity.
  uint64_t EntryPc = 0;
  std::vector<ImageSegment> Segments;

  bool empty() const { return Segments.empty(); }
};

/// Snapshots workload \p Name (built at \p Scale) into a GuestImage. The
/// rebuilt memory is page-for-page identical to a directly built
/// workload, so its persistence fingerprint — and therefore its slot in
/// a shared warm store — is the same.
GuestImage imageFromWorkload(const std::string &Name, unsigned Scale = 1);

/// Materializes \p Image into \p Mem. Returns nullptr on success or a
/// static reason string ("empty-image", "entry-unmapped", ...) that the
/// fleet surfaces as an ExecStatus::BadImage detail.
const char *buildGuestMemory(const GuestImage &Image, GuestMemory &Mem);

/// Sentinel for ExecRequest::CodeCacheBytes: inherit the tenant's (or
/// fleet's) budget instead of overriding it per request.
constexpr uint64_t InheritCacheBudget = ~uint64_t(0);

/// One unit of service work. Exactly one image source must be given:
/// Image (inline bytes), ImageFingerprint (a fleet-registered image), or
/// Workload (a fleet-registered image by name).
struct ExecRequest {
  /// Inline image bytes (takes precedence when non-empty).
  GuestImage Image;
  /// Fingerprint of an image pre-registered with the fleet (used when
  /// Image is empty and this is nonzero).
  uint64_t ImageFingerprint = 0;
  /// Name of an image pre-registered with the fleet (used last).
  std::string Workload;

  /// Tenant identity; selects the per-tenant code-cache budget
  /// (FleetConfig::TenantCacheBytes) and admission quota
  /// (FleetConfig::TenantQuotas). Empty = the fleet defaults.
  std::string Tenant;
  /// Priority lane (scheduler path only; VmFleet::execute ignores it).
  Priority Lane = Priority::Normal;
  /// Per-request guest-instruction ceiling (0 = fleet default). Reaching
  /// it yields ExecStatus::InstBudgetExceeded.
  uint64_t MaxGuestInsts = 0;
  /// Per-request wall-clock deadline in microseconds from dispatch
  /// (0 = none). Enforced between budget slices of
  /// FleetConfig::DeadlineSliceInsts guest instructions.
  uint64_t DeadlineMicros = 0;
  /// Per-request translation-cache byte budget override
  /// (InheritCacheBudget = use the tenant/fleet budget; 0 = unbounded).
  uint64_t CodeCacheBytes = InheritCacheBudget;
};

/// Typed outcome plus results and exact per-request accounting.
struct ExecResponse {
  ExecStatus Status = ExecStatus::Ok;
  const char *Detail = ""; ///< Static string; never owned.
  /// Backoff hint for load-shed rejections, in milliseconds. Populated
  /// (>= 1) for every TenantQuotaExceeded response — the time until a
  /// rate token accrues, or one observed mean service time for an
  /// in-flight-cap rejection — and best-effort for QueueFull (estimated
  /// lane drain time). Zero for all other statuses.
  uint32_t RetryAfterMs = 0;

  /// Final architected state: the HALT state (Ok), the precisely
  /// recovered trap state (Trapped), or the state at the abandonment
  /// point (deadline/ceiling). Untouched for pre-execution rejections.
  ArchState Arch;
  /// Workload convention: the data-dependent checksum left in v0.
  uint64_t Checksum = 0;
  /// Guest (V-ISA) instructions this request executed.
  uint64_t GuestInsts = 0;
  /// Exact statistics delta for this request (VirtualMachine::statsDelta):
  /// translation work, evictions, fallbacks, warm-start hits, ...
  StatisticSet Stats;
  /// Wall-clock execution time (dispatch to completion; queueing excluded).
  double WallMicros = 0;
  /// Fleet worker slot that executed the request.
  unsigned Worker = 0;

  bool ok() const { return Status == ExecStatus::Ok; }
};

} // namespace serve
} // namespace ildp

#endif // ILDP_SERVE_EXECREQUEST_H
