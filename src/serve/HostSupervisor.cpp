//===- serve/HostSupervisor.cpp - Multi-process fleet host supervision ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/HostSupervisor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;
#endif

using namespace ildp;
using namespace ildp::serve;

HostSupervisor::HostSupervisor(SupervisorConfig C) : Config(std::move(C)) {
  if (Config.Hosts == 0)
    Config.Hosts = 1;
  Slots.reserve(Config.Hosts);
  for (unsigned I = 0; I != Config.Hosts; ++I) {
    Slots.push_back(std::make_unique<Slot>());
    Slots.back()->Index = I;
  }
}

HostSupervisor::~HostSupervisor() { shutdown(); }

#ifndef _WIN32

bool HostSupervisor::spawnHost(Slot &S, int &ReadFd) {
  // supervisor -> host (requests) and host -> supervisor (responses).
  // O_CLOEXEC is load-bearing: slot threads spawn concurrently, and a
  // sibling child inheriting this host's stdout write end would hold the
  // pipe open past this host's death — the supervisor would never see
  // EOF and the dead host's in-flight requests would hang instead of
  // failing typed. The dup2 file actions below clear the flag on the
  // child's own stdin/stdout copies.
  int Req[2], Resp[2];
  if (::pipe2(Req, O_CLOEXEC) != 0)
    return false;
  if (::pipe2(Resp, O_CLOEXEC) != 0) {
    ::close(Req[0]);
    ::close(Req[1]);
    return false;
  }

  std::vector<std::string> Args;
  Args.push_back(Config.HostBinary);
  Args.push_back("--serve");
  Args.push_back("--workers");
  Args.push_back(std::to_string(Config.WorkersPerHost));
  if (!Config.StorePath.empty()) {
    Args.push_back("--store");
    Args.push_back(Config.StorePath);
  }
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  // Child environment: ours plus the configured extras (chaos schedules).
  std::vector<char *> Envp;
  for (char **E = environ; *E; ++E)
    Envp.push_back(*E);
  std::vector<std::string> Extra = Config.HostEnv; // Keep storage alive.
  for (std::string &E : Extra)
    Envp.push_back(E.data());
  Envp.push_back(nullptr);

  // posix_spawn, not fork+exec: the supervisor runs inside multithreaded
  // (and sanitized) test processes where a raw fork may deadlock on
  // runtime-internal locks.
  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  posix_spawn_file_actions_adddup2(&Actions, Req[0], STDIN_FILENO);
  posix_spawn_file_actions_adddup2(&Actions, Resp[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&Actions, Req[0]);
  posix_spawn_file_actions_addclose(&Actions, Req[1]);
  posix_spawn_file_actions_addclose(&Actions, Resp[0]);
  posix_spawn_file_actions_addclose(&Actions, Resp[1]);

  pid_t Pid = -1;
  int Err = ::posix_spawn(&Pid, Config.HostBinary.c_str(), &Actions,
                          nullptr, Argv.data(), Envp.data());
  posix_spawn_file_actions_destroy(&Actions);
  ::close(Req[0]);
  ::close(Resp[1]);
  if (Err != 0) {
    ::close(Req[1]);
    ::close(Resp[0]);
    return false;
  }

  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Live = true;
    S.Pid = long(Pid);
    S.WriteFd = Req[1];
  }
  ReadFd = Resp[0];
  return true;
}

void HostSupervisor::failInFlight(Slot &S, const char *Detail) {
  std::unordered_map<uint64_t, std::promise<HostReply>> Orphaned;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Orphaned.swap(S.InFlight);
  }
  // Count before fulfilling: a caller woken by its future must already
  // see the conversion in crashedInFlight().
  CrashedInFlight.fetch_add(Orphaned.size(), std::memory_order_relaxed);
  for (auto &[Id, Promise] : Orphaned) {
    (void)Id;
    HostReply R;
    R.Status = ExecStatus::HostCrashed;
    R.Detail = Detail;
    R.RetryAfterMs = Config.CrashRetryAfterMs ? Config.CrashRetryAfterMs : 1;
    R.Host = S.Index;
    Promise.set_value(std::move(R));
  }
}

bool HostSupervisor::parseReply(const std::string &Line, unsigned SlotIndex,
                                uint64_t &Id, HostReply &Reply) {
  std::istringstream In(Line);
  std::string Tok;
  if (!(In >> Tok) || Tok.empty() ||
      Tok.find_first_not_of("0123456789") != std::string::npos)
    return false;
  Id = std::strtoull(Tok.c_str(), nullptr, 10);
  std::string Kind;
  if (!(In >> Kind))
    return false;
  Reply = HostReply();
  Reply.Host = SlotIndex;
  Reply.Raw = Line;
  if (Kind == "ok") {
    Reply.Status = ExecStatus::Ok;
    std::string Checksum;
    if (In >> Checksum)
      Reply.Checksum = std::strtoull(Checksum.c_str(), nullptr, 16);
    std::string Opt;
    while (In >> Opt) {
      size_t Eq = Opt.find('=');
      if (Eq == std::string::npos)
        continue;
      std::string Key = Opt.substr(0, Eq);
      uint64_t Val = std::strtoull(Opt.c_str() + Eq + 1, nullptr, 10);
      if (Key == "insts")
        Reply.GuestInsts = Val;
      else if (Key == "cost")
        Reply.CostUnits = Val;
    }
    return true;
  }
  if (Kind == "err") {
    std::string Name;
    In >> Name;
    if (!parseExecStatusName(Name, Reply.Status))
      Reply.Status = ExecStatus::BadImage; // Unknown: still typed, never Ok.
    std::string Opt;
    while (In >> Opt) {
      if (Opt.rfind("retry_after_ms=", 0) == 0)
        Reply.RetryAfterMs =
            uint32_t(std::strtoul(Opt.c_str() + 15, nullptr, 10));
      else if (Reply.Detail.empty())
        Reply.Detail = Opt;
    }
    return true;
  }
  return false; // Informational ("# ...") or garbage: not a response.
}

void HostSupervisor::slotMain(Slot &S) {
  for (;;) {
    if (Stopping.load(std::memory_order_acquire))
      return;
    int ReadFd = -1;
    if (!spawnHost(S, ReadFd)) {
      // Spawn failure burns a restart credit too — a bad binary path or
      // fd exhaustion must not spin this thread forever.
      std::lock_guard<std::mutex> Lock(S.Mutex);
      if (S.RestartsUsed >= Config.MaxRestarts)
        return;
      ++S.RestartsUsed;
      continue;
    }

    // Close the shutdown/respawn race: shutdown() may have run its quit
    // pass while this slot was between teardown and spawnHost (Live was
    // false, so it wrote nothing), and a host that never hears "quit"
    // never exits — the read loop below would block forever and
    // shutdown()'s join would never return. Both sides synchronize on
    // S.Mutex (shutdown's quit pass and spawnHost's Live=true), so
    // exactly one of two things holds: shutdown() saw Live==true and
    // delivered quit, or Stopping is visible here and we deliver it
    // ourselves. Either way the child drains, exits, and the read loop
    // unwinds through the normal teardown.
    if (Stopping.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      if (S.WriteFd >= 0) {
        const char Quit[] = "quit\n";
        ssize_t W = ::write(S.WriteFd, Quit, sizeof(Quit) - 1);
        (void)W; // Dead pipe: EOF is already on its way.
      }
    }

    // Read this child's responses until its stdout closes — which is
    // exactly process exit, graceful or violent.
    FILE *In = ::fdopen(ReadFd, "r");
    if (In) {
      char *LineBuf = nullptr;
      size_t Cap = 0;
      ssize_t Len;
      while ((Len = ::getline(&LineBuf, &Cap, In)) > 0) {
        std::string Line(LineBuf, size_t(Len));
        while (!Line.empty() &&
               (Line.back() == '\n' || Line.back() == '\r'))
          Line.pop_back();
        uint64_t Id = 0;
        HostReply Reply;
        if (!parseReply(Line, S.Index, Id, Reply))
          continue;
        std::promise<HostReply> Promise;
        bool Found = false;
        {
          std::lock_guard<std::mutex> Lock(S.Mutex);
          auto It = S.InFlight.find(Id);
          if (It != S.InFlight.end()) {
            Promise = std::move(It->second);
            S.InFlight.erase(It);
            Found = true;
          }
        }
        if (Found)
          Promise.set_value(std::move(Reply));
      }
      std::free(LineBuf);
      ::fclose(In);
    } else {
      ::close(ReadFd);
    }

    // Child gone: reap it, take the slot down, resolve its orphans typed.
    long Pid;
    {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      S.Live = false;
      Pid = S.Pid;
      S.Pid = -1;
      if (S.WriteFd >= 0) {
        ::close(S.WriteFd);
        S.WriteFd = -1;
      }
    }
    int WaitStatus = 0;
    if (Pid > 0)
      ::waitpid(pid_t(Pid), &WaitStatus, 0);
    failInFlight(S, "host-crashed");

    if (Stopping.load(std::memory_order_acquire))
      return;
    {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      if (S.RestartsUsed >= Config.MaxRestarts)
        return; // Crash-looping host: abandon the slot.
      ++S.RestartsUsed;
    }
    Restarts.fetch_add(1, std::memory_order_relaxed);
  }
}

bool HostSupervisor::start() {
  if (Started.load(std::memory_order_acquire))
    return true;
  // Validate before latching Started: a failed start (bad binary path)
  // must stay retryable — latching first would turn every later start()
  // into a vacuous success over zero live hosts.
  if (::access(Config.HostBinary.c_str(), X_OK) != 0)
    return false;
  bool Expected = false;
  if (!Started.compare_exchange_strong(Expected, true))
    return true;
  // A host dying mid-write must cost this process an EPIPE, not a signal.
  ::signal(SIGPIPE, SIG_IGN);
  for (auto &S : Slots)
    S->Thread = std::thread([this, &S] { slotMain(*S); });
  // Wait (bounded) for the initial spawns: a submit() racing start()
  // must find live slots, not synthesize no-live-host rejections while
  // the fleet is still forking.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (liveHosts() < hostCount() &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return liveHosts() > 0;
}

std::future<HostReply> HostSupervisor::submit(const std::string &Line) {
  uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  std::string Wire = std::to_string(Id) + " " + Line + "\n";

  unsigned N = unsigned(Slots.size());
  unsigned First = RoundRobin.fetch_add(1, std::memory_order_relaxed);
  if (!Stopping.load(std::memory_order_acquire))
    for (unsigned Try = 0; Try != N; ++Try) {
      Slot &S = *Slots[(First + Try) % N];
      std::unique_lock<std::mutex> Lock(S.Mutex);
      if (!S.Live || S.WriteFd < 0)
        continue;
      auto [It, Inserted] =
          S.InFlight.emplace(Id, std::promise<HostReply>());
      std::future<HostReply> Future = It->second.get_future();
      // Write under the slot lock: the reader thread's EOF teardown takes
      // the same lock, so the request either reaches a live pipe or we
      // see the failure here and fail over.
      const char *P = Wire.data();
      size_t Left = Wire.size();
      bool WriteOk = true;
      while (Left != 0) {
        ssize_t W = ::write(S.WriteFd, P, Left);
        if (W < 0) {
          if (errno == EINTR)
            continue;
          WriteOk = false;
          break;
        }
        P += W;
        Left -= size_t(W);
      }
      (void)Inserted;
      if (WriteOk)
        return Future;
      // Dead pipe: the child is gone but the reader thread has not torn
      // the slot down yet. Withdraw the record and try the next host.
      S.InFlight.erase(Id);
      continue;
    }

  // No live host (all crashed-out, never started, or shutting down).
  RejectedNoHost.fetch_add(1, std::memory_order_relaxed);
  std::promise<HostReply> Promise;
  HostReply R;
  R.Status = ExecStatus::HostCrashed;
  R.Detail = "no-live-host";
  R.RetryAfterMs = Config.CrashRetryAfterMs ? Config.CrashRetryAfterMs : 1;
  Promise.set_value(std::move(R));
  return Promise.get_future();
}

void HostSupervisor::shutdown() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true))
    return;
  if (!Started.load(std::memory_order_acquire))
    return;
  for (auto &S : Slots) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    if (S->Live && S->WriteFd >= 0) {
      // Graceful drain: the host answers everything already submitted,
      // then exits; the slot thread sees EOF and returns (Stopping).
      const char Quit[] = "quit\n";
      ssize_t W = ::write(S->WriteFd, Quit, sizeof(Quit) - 1);
      (void)W; // A dead pipe is fine — the reader path cleans up.
    }
  }
  for (auto &S : Slots)
    if (S->Thread.joinable())
      S->Thread.join();
  // Belt and braces: a slot torn down between the quit write and the
  // join may still hold orphans.
  for (auto &S : Slots)
    failInFlight(*S, "supervisor-shutdown");
}

unsigned HostSupervisor::liveHosts() const {
  unsigned Live = 0;
  for (const auto &S : Slots) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    if (S->Live)
      ++Live;
  }
  return Live;
}

long HostSupervisor::hostPid(unsigned SlotIndex) const {
  if (SlotIndex >= Slots.size())
    return -1;
  std::lock_guard<std::mutex> Lock(Slots[SlotIndex]->Mutex);
  return Slots[SlotIndex]->Live ? Slots[SlotIndex]->Pid : -1;
}

#else // _WIN32: the multi-process mode is POSIX-only.

bool HostSupervisor::spawnHost(Slot &, int &) { return false; }
void HostSupervisor::failInFlight(Slot &, const char *) {}
bool HostSupervisor::parseReply(const std::string &, unsigned, uint64_t &,
                                HostReply &) {
  return false;
}
void HostSupervisor::slotMain(Slot &) {}
bool HostSupervisor::start() { return false; }
std::future<HostReply> HostSupervisor::submit(const std::string &) {
  std::promise<HostReply> Promise;
  HostReply R;
  R.Status = ExecStatus::HostCrashed;
  R.Detail = "unsupported-platform";
  Promise.set_value(std::move(R));
  return Promise.get_future();
}
void HostSupervisor::shutdown() {}
unsigned HostSupervisor::liveHosts() const { return 0; }
long HostSupervisor::hostPid(unsigned) const { return -1; }

#endif
