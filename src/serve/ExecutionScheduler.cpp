//===- serve/ExecutionScheduler.cpp - Bounded request scheduler -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ExecutionScheduler.h"

using namespace ildp;
using namespace ildp::serve;

ExecutionScheduler::ExecutionScheduler(const FleetConfig &Config)
    : Fleet(Config), Queue(Config.QueueDepth ? Config.QueueDepth : 1) {
  unsigned N = Fleet.config().Workers;
  Workers.reserve(N);
  for (unsigned Id = 0; Id != N; ++Id)
    Workers.emplace_back([this, Id] { workerMain(Id); });
}

ExecutionScheduler::~ExecutionScheduler() { shutdown(/*FinishQueued=*/false); }

ExecResponse ExecutionScheduler::makeReject(ExecStatus Status,
                                            const char *Detail) {
  ExecResponse Resp;
  Resp.Status = Status;
  Resp.Detail = Detail;
  return Resp;
}

std::future<ExecResponse> ExecutionScheduler::submit(ExecRequest Request) {
  Job J;
  J.Request = std::move(Request);
  std::future<ExecResponse> Future = J.Promise.get_future();
  if (Stopped.load(std::memory_order_acquire)) {
    Fleet.countRejected(ExecStatus::ShutDown);
    J.Promise.set_value(makeReject(ExecStatus::ShutDown, "scheduler-stopped"));
    return Future;
  }
  if (!Queue.tryPush(J)) {
    // A closed queue means shutdown raced ahead of the Stopped check; a
    // full one is plain admission control. Either way the caller gets an
    // immediate typed answer instead of blocking on a saturated fleet.
    bool WasClosed = Queue.closed();
    ExecStatus Status =
        WasClosed ? ExecStatus::ShutDown : ExecStatus::QueueFull;
    Fleet.countRejected(Status);
    J.Promise.set_value(makeReject(
        Status, WasClosed ? "scheduler-stopped" : "queue-full"));
    return Future;
  }
  Submitted.fetch_add(1, std::memory_order_relaxed);
  return Future;
}

void ExecutionScheduler::workerMain(unsigned Id) {
  while (std::optional<Job> J = Queue.pop()) {
    if (CancelQueued.load(std::memory_order_acquire)) {
      Fleet.countRejected(ExecStatus::ShutDown);
      Cancelled.fetch_add(1, std::memory_order_relaxed);
      J->Promise.set_value(
          makeReject(ExecStatus::ShutDown, "cancelled-queued"));
      continue;
    }
    J->Promise.set_value(Fleet.execute(J->Request, Id));
  }
}

size_t ExecutionScheduler::shutdown(bool FinishQueued) {
  bool Expected = false;
  if (!Stopped.compare_exchange_strong(Expected, true,
                                       std::memory_order_acq_rel))
    return 0; // Someone else already shut us down.
  if (!FinishQueued)
    CancelQueued.store(true, std::memory_order_release);
  // close(), not closeAndClear(): queued Jobs carry promises that must be
  // fulfilled, so the workers drain them — executing (drain) or typed-
  // rejecting (cancel) — and exit on queue exhaustion.
  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  return size_t(Cancelled.load(std::memory_order_relaxed));
}
