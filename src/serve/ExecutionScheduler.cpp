//===- serve/ExecutionScheduler.cpp - Overload-hardened request scheduler -===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ExecutionScheduler.h"

#include <algorithm>

using namespace ildp;
using namespace ildp::serve;

namespace {

std::vector<size_t> laneCapacities(const FleetConfig &Config) {
  std::vector<size_t> Caps(NumPriorities);
  for (unsigned I = 0; I != NumPriorities; ++I)
    Caps[I] = Config.LaneDepths[I] ? Config.LaneDepths[I]
                                   : (Config.QueueDepth ? Config.QueueDepth
                                                        : 1);
  return Caps;
}

std::vector<unsigned> laneWeights(const FleetConfig &Config) {
  return std::vector<unsigned>(Config.LaneWeights.begin(),
                               Config.LaneWeights.end());
}

} // namespace

ExecutionScheduler::ExecutionScheduler(const FleetConfig &Config)
    : Fleet(Config),
      Admission(Config.TenantQuotas, Config.DefaultQuota),
      Queue(laneCapacities(Fleet.config()), laneWeights(Fleet.config())),
      NumWorkers(Fleet.config().Workers) {
  unsigned N = NumWorkers;
  Workers.reserve(N);
  for (unsigned Id = 0; Id != N; ++Id)
    Workers.emplace_back([this, Id] { workerMain(Id); });
}

ExecutionScheduler::~ExecutionScheduler() { shutdown(/*FinishQueued=*/false); }

ExecResponse ExecutionScheduler::makeReject(ExecStatus Status,
                                            const char *Detail,
                                            uint32_t RetryAfterMs) {
  ExecResponse Resp;
  Resp.Status = Status;
  Resp.Detail = Detail;
  Resp.RetryAfterMs = RetryAfterMs;
  return Resp;
}

uint64_t ExecutionScheduler::estimateQueueWaitMicros(Priority Lane) const {
  uint64_t Ewma = Admission.ewmaServiceMicros();
  if (Ewma == 0)
    return 0; // No sample yet: never shed on a guess of zero knowledge.
  unsigned L = unsigned(Lane);
  size_t Self = Queue.laneSize(L);
  // The weighted-deficit dequeue interleaves other lanes' items with this
  // lane's: while this request's (Self + 1) predecessors-in-lane drain,
  // lane M contributes up to Weight(M)/Weight(L) items per lane-L item —
  // but never more than it has queued.
  uint64_t Ahead = Self;
  uint64_t SelfWeight = std::max(1u, Queue.laneWeight(L));
  for (unsigned M = 0; M != Queue.laneCount(); ++M) {
    if (M == L)
      continue;
    uint64_t Interleaved =
        ((Self + 1) * Queue.laneWeight(M) + SelfWeight - 1) / SelfWeight;
    Ahead += std::min<uint64_t>(Queue.laneSize(M), Interleaved);
  }
  unsigned W = std::max(1u, NumWorkers);
  return Ahead * Ewma / W;
}

std::future<ExecResponse> ExecutionScheduler::submit(ExecRequest Request) {
  Job J;
  J.Request = std::move(Request);
  std::future<ExecResponse> Future = J.Promise.get_future();
  if (Stopped.load(std::memory_order_acquire)) {
    Fleet.countRejected(ExecStatus::ShutDown, J.Request.Tenant);
    J.Promise.set_value(makeReject(ExecStatus::ShutDown, "scheduler-stopped"));
    return Future;
  }

  // Per-tenant admission: rate token + in-flight slot, or an immediate
  // typed rejection with a computed backoff hint. Reserved before the
  // queue push so concurrent submitters cannot overshoot the cap; every
  // path below that fails to enqueue must release the reservation.
  AdmissionControl::Decision D = Admission.tryAdmit(J.Request.Tenant);
  if (!D.Admitted) {
    Fleet.countRejected(ExecStatus::TenantQuotaExceeded, J.Request.Tenant);
    J.Promise.set_value(makeReject(ExecStatus::TenantQuotaExceeded, D.Reason,
                                   D.RetryAfterMs));
    return Future;
  }

  Clock::time_point Now = Clock::now();
  if (J.Request.DeadlineMicros != 0) {
    J.HasDeadline = true;
    J.Deadline = Now + std::chrono::microseconds(J.Request.DeadlineMicros);
    // Deadline-aware shedding, admission side: a request that would
    // already be past its deadline by the time a worker reached it is
    // doomed — reject it now, while the tenant can still retry elsewhere,
    // instead of letting it occupy a lane slot and die at dequeue.
    uint64_t WaitMicros = estimateQueueWaitMicros(J.Request.Lane);
    if (WaitMicros > J.Request.DeadlineMicros) {
      Admission.release(J.Request.Tenant);
      Fleet.countShed("deadline_unmeetable", ExecStatus::DeadlineExceeded,
                      J.Request.Tenant);
      J.Promise.set_value(
          makeReject(ExecStatus::DeadlineExceeded, "deadline-unmeetable"));
      return Future;
    }
  }

  unsigned Lane = unsigned(J.Request.Lane);
  std::string Tenant = J.Request.Tenant; // J may be consumed by tryPush.
  if (!Queue.tryPush(Lane, J)) {
    Admission.release(Tenant);
    // A closed queue means shutdown raced ahead of the Stopped check; a
    // full lane is plain admission control. Either way the caller gets an
    // immediate typed answer instead of blocking on a saturated fleet.
    bool WasClosed = Queue.closed();
    ExecStatus Status =
        WasClosed ? ExecStatus::ShutDown : ExecStatus::QueueFull;
    Fleet.countRejected(Status, Tenant);
    uint32_t RetryMs = 0;
    if (!WasClosed) {
      // Best-effort drain estimate for the full lane (1ms floor so the
      // hint is always actionable).
      uint64_t Ewma = Admission.ewmaServiceMicros();
      unsigned W = std::max(1u, NumWorkers);
      RetryMs = uint32_t(std::max<uint64_t>(
          1, Queue.laneCapacity(Lane) * Ewma / W / 1000));
    }
    J.Promise.set_value(makeReject(
        Status, WasClosed ? "scheduler-stopped" : "queue-full", RetryMs));
    return Future;
  }
  Submitted.fetch_add(1, std::memory_order_relaxed);
  return Future;
}

void ExecutionScheduler::workerMain(unsigned Id) {
  while (std::optional<MultiLaneQueue<Job>::Popped> P = Queue.pop()) {
    Job &J = P->Item;
    if (CancelQueued.load(std::memory_order_acquire)) {
      Admission.release(J.Request.Tenant);
      Fleet.countRejected(ExecStatus::ShutDown, J.Request.Tenant);
      Cancelled.fetch_add(1, std::memory_order_relaxed);
      J.Promise.set_value(
          makeReject(ExecStatus::ShutDown, "cancelled-queued"));
      continue;
    }
    // Deadline-aware shedding, dequeue side: the deadline may have passed
    // while the request sat in the queue. Reject typed before touching a
    // VM or a budget slice — a doomed request must not consume the very
    // capacity the fleet is short of.
    if (J.HasDeadline && Clock::now() >= J.Deadline) {
      Admission.release(J.Request.Tenant);
      Fleet.countShed("expired_in_queue", ExecStatus::DeadlineExceeded,
                      J.Request.Tenant);
      J.Promise.set_value(
          makeReject(ExecStatus::DeadlineExceeded, "wall-deadline"));
      continue;
    }
    Fleet.countLaneServed(Priority(P->Lane));
    ExecResponse Resp =
        J.HasDeadline ? Fleet.executeUntil(J.Request, Id, J.Deadline)
                      : Fleet.execute(J.Request, Id);
    Admission.noteCompleted(J.Request.Tenant, Resp.WallMicros);
    J.Promise.set_value(std::move(Resp));
  }
}

size_t ExecutionScheduler::shutdown(bool FinishQueued) {
  bool Expected = false;
  if (!Stopped.compare_exchange_strong(Expected, true,
                                       std::memory_order_acq_rel))
    return 0; // Someone else already shut us down.
  if (!FinishQueued)
    CancelQueued.store(true, std::memory_order_release);
  // close(), not a clearing close: queued Jobs carry promises that must be
  // fulfilled, so the workers drain them — executing (drain) or typed-
  // rejecting (cancel) — and exit on queue exhaustion.
  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  return size_t(Cancelled.load(std::memory_order_relaxed));
}
