//===- serve/AdmissionControl.cpp - Per-tenant admission quotas -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/AdmissionControl.h"

#include <algorithm>
#include <cmath>

using namespace ildp;
using namespace ildp::serve;

AdmissionControl::AdmissionControl(
    const std::map<std::string, TenantQuota> &Quotas,
    const TenantQuota &Default)
    : Quotas(Quotas), Default(Default) {}

AdmissionControl::Bucket &AdmissionControl::bucketFor(
    const std::string &Tenant) {
  auto It = Buckets.find(Tenant);
  if (It != Buckets.end())
    return It->second;
  Bucket B;
  auto Q = Quotas.find(Tenant);
  B.Quota = Q != Quotas.end() ? Q->second : Default;
  if (B.Quota.Burst <= 0)
    B.Quota.Burst = std::max(1.0, B.Quota.TokensPerSec);
  return Buckets.emplace(Tenant, B).first->second;
}

AdmissionControl::Decision
AdmissionControl::tryAdmit(const std::string &Tenant, Clock::time_point Now) {
  std::lock_guard<std::mutex> Lock(M);
  Bucket &B = bucketFor(Tenant);

  if (B.Quota.TokensPerSec > 0) {
    if (!B.Primed) {
      // A fresh bucket starts full: a tenant's first burst is admitted up
      // to its Burst, then the rate takes over.
      B.Tokens = B.Quota.Burst;
      B.Primed = true;
    } else {
      double Dt = std::chrono::duration<double>(Now - B.LastRefill).count();
      if (Dt > 0)
        B.Tokens = std::min(B.Quota.Burst,
                            B.Tokens + Dt * B.Quota.TokensPerSec);
    }
    B.LastRefill = Now;
    if (B.Tokens < 1.0) {
      // RetryAfter = time until one whole token accrues, rounded up so the
      // hint is never an under-estimate (a retry at the hinted time must
      // find a token).
      double Ms = (1.0 - B.Tokens) / B.Quota.TokensPerSec * 1000.0;
      Decision D;
      D.Admitted = false;
      D.Reason = "tenant-rate";
      D.RetryAfterMs = uint32_t(std::max(1.0, std::ceil(Ms)));
      return D;
    }
    B.Tokens -= 1.0;
  }

  if (B.Quota.MaxInFlight != 0 && B.InFlight >= B.Quota.MaxInFlight) {
    // Refund the rate token: this request was never admitted, so it must
    // not count against the tenant's rate either.
    if (B.Quota.TokensPerSec > 0)
      B.Tokens = std::min(B.Quota.Burst, B.Tokens + 1.0);
    Decision D;
    D.Admitted = false;
    D.Reason = "tenant-inflight";
    // A slot frees when one of the tenant's requests finishes: one mean
    // service time is the natural backoff (1ms floor before any sample).
    D.RetryAfterMs = uint32_t(std::max<uint64_t>(1, EwmaMicros / 1000));
    return D;
  }

  ++B.InFlight;
  return Decision{};
}

void AdmissionControl::release(const std::string &Tenant) {
  std::lock_guard<std::mutex> Lock(M);
  Bucket &B = bucketFor(Tenant);
  if (B.InFlight > 0)
    --B.InFlight;
}

void AdmissionControl::noteCompleted(const std::string &Tenant,
                                     double WallMicros) {
  std::lock_guard<std::mutex> Lock(M);
  Bucket &B = bucketFor(Tenant);
  if (B.InFlight > 0)
    --B.InFlight;
  uint64_t Wall = uint64_t(std::max(0.0, WallMicros));
  EwmaMicros = EwmaMicros == 0 ? Wall : (7 * EwmaMicros + Wall) / 8;
}

uint64_t AdmissionControl::ewmaServiceMicros() const {
  std::lock_guard<std::mutex> Lock(M);
  return EwmaMicros;
}

uint32_t AdmissionControl::inFlight(const std::string &Tenant) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Buckets.find(Tenant);
  return It != Buckets.end() ? It->second.InFlight : 0;
}
