//===- alpha/AlphaIsa.cpp - Alpha (V-ISA) instruction set definition ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/AlphaIsa.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

static const OpInfo OpInfos[] = {
#define ILDP_ALPHA_INFO(Enum, Mnemonic, Form, Kind, Prim, Func, Size, Signed) \
  {Mnemonic, Format::Form, InstKind::Kind, Prim, Func, Size, Signed},
    ILDP_ALPHA_OPCODES(ILDP_ALPHA_INFO)
#undef ILDP_ALPHA_INFO
};

const OpInfo &alpha::getOpInfo(Opcode Op) {
  assert(Op != Opcode::Invalid && "No info for invalid opcode");
  return OpInfos[static_cast<unsigned>(Op)];
}

const char *alpha::getMnemonic(Opcode Op) {
  if (Op == Opcode::Invalid)
    return "invalid";
  return getOpInfo(Op).Mnemonic;
}

const char *alpha::getRegName(unsigned Reg) {
  static const char *const Names[NumGprs] = {
      "v0", "t0", "t1",  "t2",  "t3", "t4", "t5", "t6", "t7", "s0", "s1",
      "s2", "s3", "s4",  "s5",  "fp", "a0", "a1", "a2", "a3", "a4", "a5",
      "t8", "t9", "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};
  assert(Reg < NumGprs && "Register number out of range");
  return Names[Reg];
}

static InstKind kindOf(Opcode Op) {
  if (Op == Opcode::Invalid)
    return InstKind::Pal;
  return getOpInfo(Op).Kind;
}

bool alpha::isLoad(Opcode Op) { return kindOf(Op) == InstKind::Load; }

bool alpha::isStore(Opcode Op) { return kindOf(Op) == InstKind::Store; }

bool alpha::isMemory(Opcode Op) { return isLoad(Op) || isStore(Op); }

bool alpha::isCondBranch(Opcode Op) {
  return kindOf(Op) == InstKind::CondBranch;
}

bool alpha::isDirectBranch(Opcode Op) {
  InstKind Kind = kindOf(Op);
  return Kind == InstKind::Br || Kind == InstKind::Bsr;
}

bool alpha::isIndirectBranch(Opcode Op) {
  InstKind Kind = kindOf(Op);
  return Kind == InstKind::Jmp || Kind == InstKind::Jsr ||
         Kind == InstKind::Ret;
}

bool alpha::isControl(Opcode Op) {
  if (Op == Opcode::Invalid)
    return false;
  return isCondBranch(Op) || isDirectBranch(Op) || isIndirectBranch(Op) ||
         Op == Opcode::CALL_PAL;
}

bool alpha::isCall(Opcode Op) {
  InstKind Kind = kindOf(Op);
  return Kind == InstKind::Bsr || Kind == InstKind::Jsr;
}

bool alpha::isCondMove(Opcode Op) { return kindOf(Op) == InstKind::CondMove; }

bool alpha::isMul(Opcode Op) { return kindOf(Op) == InstKind::Mul; }

bool alpha::isPei(Opcode Op) {
  if (Op == Opcode::Invalid)
    return false;
  return isMemory(Op) || Op == Opcode::CALL_PAL;
}
