//===- alpha/Disasm.h - Alpha disassembler --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decoded Alpha instructions as text in the paper's Figure 2
/// style ("ldbu r3, 0[r16]", "subl r17, 1, r17").
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_DISASM_H
#define ILDP_ALPHA_DISASM_H

#include "alpha/AlphaInst.h"

#include <string>

namespace ildp {
namespace alpha {

/// Disassembles \p Inst; \p Pc (the instruction's own address) is used to
/// render absolute branch targets.
std::string disassemble(const AlphaInst &Inst, uint64_t Pc);

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_DISASM_H
