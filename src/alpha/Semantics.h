//===- alpha/Semantics.h - Pure Alpha operation semantics -----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure (state-free) semantics of the Alpha integer operations. The
/// functional interpreter and the I-ISA functional executor both evaluate
/// through these functions, so translated code provably computes with the
/// same arithmetic as the V-ISA reference — a cornerstone of the
/// architected-state-equivalence tests.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_SEMANTICS_H
#define ILDP_ALPHA_SEMANTICS_H

#include "alpha/AlphaIsa.h"

#include <cstdint>

namespace ildp {
namespace alpha {

/// Evaluates an integer operate instruction (INTA/INTL/INTS/INTM/CIX group,
/// i.e. InstKind IntOp or Mul) on operand values \p A (Ra) and \p B (Rb or
/// zero-extended literal). LDA/LDAH are also accepted with \p A the base
/// register value and \p B the (pre-scaled) displacement.
uint64_t evalIntOp(Opcode Op, uint64_t A, uint64_t B);

/// Evaluates a conditional branch predicate on the Ra value.
bool evalBranchCond(Opcode Op, uint64_t RaValue);

/// Evaluates a conditional-move predicate on the Ra value.
bool evalCmovCond(Opcode Op, uint64_t RaValue);

/// Extends a loaded value per the load opcode's size/signedness.
uint64_t extendLoadedValue(Opcode Op, uint64_t Raw);

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_SEMANTICS_H
