//===- alpha/AlphaInst.h - Decoded Alpha instruction ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded form of an Alpha instruction plus the operand-role queries
/// the translator's dependence/usage analysis (paper Section 3.3) relies on.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_ALPHAINST_H
#define ILDP_ALPHA_ALPHAINST_H

#include "alpha/AlphaIsa.h"

#include <array>
#include <cstdint>

namespace ildp {
namespace alpha {

/// A decoded Alpha instruction. Field meaning depends on the format:
///  - Mem:     Ra (data/result), Rb (base), Disp (signed 16-bit).
///  - Branch:  Ra (condition/return), Disp (signed 21-bit, in instructions).
///  - Operate: Ra, Rb or Lit, Rc.
///  - Jump:    Ra (return), Rb (target), JumpHint.
///  - Pal:     PalFunc.
struct AlphaInst {
  Opcode Op = Opcode::Invalid;
  uint8_t Ra = RegZero;
  uint8_t Rb = RegZero;
  uint8_t Rc = RegZero;
  bool HasLit = false;
  uint8_t Lit = 0;
  int32_t Disp = 0;
  uint16_t JumpHint = 0;
  uint32_t PalFunc = 0;

  bool valid() const { return Op != Opcode::Invalid; }
  const OpInfo &info() const { return getOpInfo(Op); }

  /// Architected registers read by this instruction (R31 excluded).
  /// Returns the number of inputs written into \p Regs.
  unsigned inputRegs(std::array<uint8_t, 3> &Regs) const;

  /// The architected register written, or -1 if none (R31 writes and
  /// stores/branches-on-condition produce no architected result).
  int outputReg() const;

  /// True if the instruction is an architectural no-op: it produces no
  /// architected result and has no side effects. The paper removes NOPs
  /// during translation (Section 4.4).
  bool isNop() const;

  /// For direct branches: the target of a branch at \p Pc.
  uint64_t branchTarget(uint64_t Pc) const {
    return Pc + InstBytes + int64_t(Disp) * InstBytes;
  }
};

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_ALPHAINST_H
