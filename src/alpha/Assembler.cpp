//===- alpha/Assembler.cpp - Programmatic Alpha assembler -----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"

#include "alpha/Encoder.h"
#include "support/BitUtil.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

Assembler::Label Assembler::createLabel(std::string Name) {
  LabelOffsets.push_back(-1);
  LabelNames.push_back(std::move(Name));
  return Label(LabelOffsets.size() - 1);
}

void Assembler::bind(Label L) {
  assert(L < LabelOffsets.size() && "Unknown label");
  assert(LabelOffsets[L] < 0 && "Label bound twice");
  LabelOffsets[L] = int64_t(Words.size()) * InstBytes;
}

uint64_t Assembler::labelAddr(Label L) const {
  assert(L < LabelOffsets.size() && "Unknown label");
  assert(LabelOffsets[L] >= 0 && "Label not bound");
  return Base + uint64_t(LabelOffsets[L]);
}

void Assembler::emit(const AlphaInst &Inst) {
  assert(!Finalized && "Assembler already finalized");
  Words.push_back(encode(Inst));
}

void Assembler::mem(Opcode Op, uint8_t Ra, int32_t Disp, uint8_t Rb) {
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = Ra;
  Inst.Rb = Rb;
  Inst.Disp = Disp;
  emit(Inst);
}

void Assembler::operate(Opcode Op, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = Ra;
  Inst.Rb = Rb;
  Inst.Rc = Rc;
  emit(Inst);
}

void Assembler::operatei(Opcode Op, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = Ra;
  Inst.HasLit = true;
  Inst.Lit = Lit;
  Inst.Rc = Rc;
  emit(Inst);
}

void Assembler::loadImm(uint8_t Rd, int64_t Value) {
  assert(Rd != RegZero && "loadImm into the zero register");
  // Split off the LDA/LDAH-reachable low 32 bits.
  int64_t Lo16 = int64_t(int16_t(Value & 0xFFFF));
  int64_t AfterLo = Value - Lo16;
  int64_t Hi16 = int64_t(int16_t((AfterLo >> 16) & 0xFFFF));
  int64_t After32 = AfterLo - (Hi16 << 16);

  if (After32 == 0) {
    // Fits in an LDAH/LDA pair (or just one of them).
    if (Hi16 != 0) {
      ldah(Rd, int32_t(Hi16), RegZero);
      if (Lo16 != 0)
        lda(Rd, int32_t(Lo16), Rd);
    } else {
      lda(Rd, int32_t(Lo16), RegZero);
    }
    return;
  }

  // General 64-bit case: four carry-corrected 16-bit chunks assembled with
  // shift-and-add. By construction
  //   ((t*2^16 + e)*2^16 + h)*2^16 + l == Value (mod 2^64)
  // regardless of sign carries, so no boundary case can overflow.
  int64_t L = int64_t(int16_t(Value));
  int64_t V1 = Value - L;
  int64_t H = int64_t(int16_t(V1 >> 16));
  int64_t V2 = V1 - (H << 16);
  int64_t E = int64_t(int16_t(V2 >> 32));
  int64_t V3 = V2 - (E << 32);
  int64_t T = int64_t(int16_t(V3 >> 48));
  lda(Rd, int32_t(T), RegZero);
  operatei(Opcode::SLL, Rd, 16, Rd);
  if (E != 0)
    lda(Rd, int32_t(E), Rd);
  operatei(Opcode::SLL, Rd, 16, Rd);
  if (H != 0)
    lda(Rd, int32_t(H), Rd);
  operatei(Opcode::SLL, Rd, 16, Rd);
  if (L != 0)
    lda(Rd, int32_t(L), Rd);
}

void Assembler::loadLabelAddr(uint8_t Rd, Label L) {
  assert(L < LabelOffsets.size() && "Unknown label");
  // Emit LDAH+LDA with zero displacements; finalize() patches them.
  Fixups.push_back({Words.size(), L, Fixup::Kind::AbsHi});
  ldah(Rd, 0, RegZero);
  Fixups.push_back({Words.size(), L, Fixup::Kind::AbsLo});
  lda(Rd, 0, Rd);
}

void Assembler::directBr(Opcode Op, uint8_t Ra, Label Target) {
  assert((Op == Opcode::BR || Op == Opcode::BSR) && "Not a direct branch");
  assert(Target < LabelOffsets.size() && "Unknown label");
  Fixups.push_back({Words.size(), Target, Fixup::Kind::Branch21});
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = Ra;
  emit(Inst);
}

void Assembler::condBr(Opcode Op, uint8_t Ra, Label Target) {
  assert(isCondBranch(Op) && "Not a conditional branch");
  assert(Target < LabelOffsets.size() && "Unknown label");
  Fixups.push_back({Words.size(), Target, Fixup::Kind::Branch21});
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = Ra;
  emit(Inst);
}

void Assembler::jmp(uint8_t Ra, uint8_t Rb) {
  AlphaInst Inst;
  Inst.Op = Opcode::JMP;
  Inst.Ra = Ra;
  Inst.Rb = Rb;
  emit(Inst);
}

void Assembler::jsr(uint8_t Ra, uint8_t Rb) {
  AlphaInst Inst;
  Inst.Op = Opcode::JSR;
  Inst.Ra = Ra;
  Inst.Rb = Rb;
  emit(Inst);
}

void Assembler::ret(uint8_t Rb) {
  AlphaInst Inst;
  Inst.Op = Opcode::RET;
  Inst.Ra = RegZero;
  Inst.Rb = Rb;
  emit(Inst);
}

void Assembler::callPal(uint32_t Func) {
  AlphaInst Inst;
  Inst.Op = Opcode::CALL_PAL;
  Inst.PalFunc = Func;
  emit(Inst);
}

std::vector<uint32_t> Assembler::finalize() {
  assert(!Finalized && "finalize() called twice");
  Finalized = true;
  for (const Fixup &Fix : Fixups) {
    assert(Fix.TargetLabel < LabelOffsets.size() && "Unknown label");
    int64_t Offset = LabelOffsets[Fix.TargetLabel];
    assert(Offset >= 0 && "Referenced label never bound");
    uint64_t TargetAddr = Base + uint64_t(Offset);
    uint32_t &Word = Words[Fix.Index];
    switch (Fix.FixKind) {
    case Fixup::Kind::Branch21: {
      uint64_t BranchPc = Base + Fix.Index * InstBytes;
      int64_t Delta =
          (int64_t(TargetAddr) - int64_t(BranchPc + InstBytes)) / InstBytes;
      assert(fitsSigned(Delta, 21) && "Branch displacement out of range");
      Word = (Word & ~uint32_t(0x1FFFFF)) | (uint32_t(Delta) & 0x1FFFFF);
      break;
    }
    case Fixup::Kind::AbsHi: {
      int64_t Addr = int64_t(TargetAddr);
      int64_t Lo = int64_t(int16_t(Addr & 0xFFFF));
      int64_t Hi = (Addr - Lo) >> 16;
      assert(fitsSigned(Hi, 16) && "Label address out of LDAH range");
      Word = (Word & ~uint32_t(0xFFFF)) | uint32_t(uint16_t(Hi));
      break;
    }
    case Fixup::Kind::AbsLo: {
      int64_t Addr = int64_t(TargetAddr);
      int64_t Lo = int64_t(int16_t(Addr & 0xFFFF));
      Word = (Word & ~uint32_t(0xFFFF)) | uint32_t(uint16_t(Lo));
      break;
    }
    }
  }
  return std::move(Words);
}
