//===- alpha/Encoder.h - Alpha instruction encoder ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes AlphaInst back into raw 32-bit instruction words. The assembler
/// builds on this; decode(encode(I)) == I is a tested invariant.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_ENCODER_H
#define ILDP_ALPHA_ENCODER_H

#include "alpha/AlphaInst.h"

#include <cstdint>

namespace ildp {
namespace alpha {

/// Encodes \p Inst into an instruction word. Field values must be in range
/// (asserted): 16-bit memory displacement, 21-bit branch displacement,
/// 8-bit literal.
uint32_t encode(const AlphaInst &Inst);

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_ENCODER_H
