//===- alpha/Semantics.cpp - Pure Alpha operation semantics ---------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Semantics.h"

#include "support/BitUtil.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

uint64_t alpha::evalIntOp(Opcode Op, uint64_t A, uint64_t B) {
  switch (Op) {
  // Address formation (memory format, but pure arithmetic).
  case Opcode::LDA:
    return A + B;
  case Opcode::LDAH:
    return A + (B << 16);

  // INTA.
  case Opcode::ADDL:
    return sextLongword(A + B);
  case Opcode::ADDQ:
    return A + B;
  case Opcode::SUBL:
    return sextLongword(A - B);
  case Opcode::SUBQ:
    return A - B;
  case Opcode::S4ADDL:
    return sextLongword(A * 4 + B);
  case Opcode::S4ADDQ:
    return A * 4 + B;
  case Opcode::S8ADDL:
    return sextLongword(A * 8 + B);
  case Opcode::S8ADDQ:
    return A * 8 + B;
  case Opcode::S4SUBL:
    return sextLongword(A * 4 - B);
  case Opcode::S4SUBQ:
    return A * 4 - B;
  case Opcode::S8SUBL:
    return sextLongword(A * 8 - B);
  case Opcode::S8SUBQ:
    return A * 8 - B;
  case Opcode::CMPEQ:
    return A == B ? 1 : 0;
  case Opcode::CMPLT:
    return int64_t(A) < int64_t(B) ? 1 : 0;
  case Opcode::CMPLE:
    return int64_t(A) <= int64_t(B) ? 1 : 0;
  case Opcode::CMPULT:
    return A < B ? 1 : 0;
  case Opcode::CMPULE:
    return A <= B ? 1 : 0;
  case Opcode::CMPBGE: {
    uint64_t Mask = 0;
    for (unsigned I = 0; I != 8; ++I) {
      uint8_t ByteA = uint8_t(A >> (8 * I));
      uint8_t ByteB = uint8_t(B >> (8 * I));
      if (ByteA >= ByteB)
        Mask |= uint64_t(1) << I;
    }
    return Mask;
  }

  // INTL.
  case Opcode::AND:
    return A & B;
  case Opcode::BIC:
    return A & ~B;
  case Opcode::BIS:
    return A | B;
  case Opcode::ORNOT:
    return A | ~B;
  case Opcode::XOR:
    return A ^ B;
  case Opcode::EQV:
    return A ^ ~B;

  // INTS.
  case Opcode::SLL:
    return A << (B & 63);
  case Opcode::SRL:
    return A >> (B & 63);
  case Opcode::SRA:
    return uint64_t(int64_t(A) >> (B & 63));
  case Opcode::ZAP: {
    uint64_t Result = A;
    for (unsigned I = 0; I != 8; ++I)
      if (B & (uint64_t(1) << I))
        Result &= ~(uint64_t(0xFF) << (8 * I));
    return Result;
  }
  case Opcode::ZAPNOT: {
    uint64_t Result = 0;
    for (unsigned I = 0; I != 8; ++I)
      if (B & (uint64_t(1) << I))
        Result |= A & (uint64_t(0xFF) << (8 * I));
    return Result;
  }
  case Opcode::EXTBL:
    return (A >> (8 * (B & 7))) & 0xFF;
  case Opcode::EXTWL:
    return (A >> (8 * (B & 7))) & 0xFFFF;
  case Opcode::INSBL:
    return (A & 0xFF) << (8 * (B & 7));
  case Opcode::MSKBL:
    return A & ~(uint64_t(0xFF) << (8 * (B & 7)));

  // INTM.
  case Opcode::MULL:
    return sextLongword(A * B);
  case Opcode::MULQ:
    return A * B;
  case Opcode::UMULH:
    return uint64_t((unsigned __int128)A * (unsigned __int128)B >> 64);

  // CIX / sign extension.
  case Opcode::SEXTB:
    return uint64_t(int64_t(int8_t(B)));
  case Opcode::SEXTW:
    return uint64_t(int64_t(int16_t(B)));
  case Opcode::CTPOP: {
    uint64_t Count = 0;
    for (uint64_t Value = B; Value; Value &= Value - 1)
      ++Count;
    return Count;
  }
  case Opcode::CTLZ: {
    if (B == 0)
      return 64;
    uint64_t Count = 0;
    for (uint64_t Bit = uint64_t(1) << 63; !(B & Bit); Bit >>= 1)
      ++Count;
    return Count;
  }
  case Opcode::CTTZ: {
    if (B == 0)
      return 64;
    uint64_t Count = 0;
    for (uint64_t Bit = 1; !(B & Bit); Bit <<= 1)
      ++Count;
    return Count;
  }

  default:
    assert(false && "evalIntOp: not an integer operate opcode");
    return 0;
  }
}

bool alpha::evalBranchCond(Opcode Op, uint64_t RaValue) {
  switch (Op) {
  case Opcode::BEQ:
    return RaValue == 0;
  case Opcode::BNE:
    return RaValue != 0;
  case Opcode::BLT:
    return int64_t(RaValue) < 0;
  case Opcode::BLE:
    return int64_t(RaValue) <= 0;
  case Opcode::BGT:
    return int64_t(RaValue) > 0;
  case Opcode::BGE:
    return int64_t(RaValue) >= 0;
  case Opcode::BLBC:
    return (RaValue & 1) == 0;
  case Opcode::BLBS:
    return (RaValue & 1) != 0;
  default:
    assert(false && "evalBranchCond: not a conditional branch");
    return false;
  }
}

bool alpha::evalCmovCond(Opcode Op, uint64_t RaValue) {
  switch (Op) {
  case Opcode::CMOVEQ:
    return RaValue == 0;
  case Opcode::CMOVNE:
    return RaValue != 0;
  case Opcode::CMOVLT:
    return int64_t(RaValue) < 0;
  case Opcode::CMOVGE:
    return int64_t(RaValue) >= 0;
  case Opcode::CMOVLE:
    return int64_t(RaValue) <= 0;
  case Opcode::CMOVGT:
    return int64_t(RaValue) > 0;
  case Opcode::CMOVLBS:
    return (RaValue & 1) != 0;
  case Opcode::CMOVLBC:
    return (RaValue & 1) == 0;
  default:
    assert(false && "evalCmovCond: not a conditional move");
    return false;
  }
}

uint64_t alpha::extendLoadedValue(Opcode Op, uint64_t Raw) {
  const OpInfo &Info = getOpInfo(Op);
  assert(Info.Kind == InstKind::Load && "Not a load");
  if (!Info.MemSigned)
    return Raw;
  switch (Info.MemSize) {
  case 4:
    return sextLongword(Raw);
  default:
    assert(false && "Unexpected signed load size");
    return Raw;
  }
}
