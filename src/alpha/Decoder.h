//===- alpha/Decoder.h - Alpha instruction decoder ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes raw 32-bit Alpha instruction words into AlphaInst. Decoding is
/// total: unrecognized words decode to Opcode::Invalid (the interpreter
/// raises an illegal-instruction trap for those).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_DECODER_H
#define ILDP_ALPHA_DECODER_H

#include "alpha/AlphaInst.h"

#include <cstdint>

namespace ildp {
namespace alpha {

/// Decodes one instruction word.
AlphaInst decode(uint32_t Word);

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_DECODER_H
