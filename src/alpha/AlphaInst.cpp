//===- alpha/AlphaInst.cpp - Decoded Alpha instruction --------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/AlphaInst.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

unsigned AlphaInst::inputRegs(std::array<uint8_t, 3> &Regs) const {
  unsigned Count = 0;
  auto Push = [&](uint8_t Reg) {
    if (Reg != RegZero)
      Regs[Count++] = Reg;
  };
  if (!valid())
    return 0;
  const OpInfo &Info = info();
  switch (Info.Form) {
  case Format::Mem:
    // Loads and LDA/LDAH read the base; stores additionally read the data.
    Push(Rb);
    if (Info.Kind == InstKind::Store)
      Push(Ra);
    break;
  case Format::Branch:
    // Conditional branches test Ra; BR/BSR read nothing.
    if (Info.Kind == InstKind::CondBranch)
      Push(Ra);
    break;
  case Format::Operate:
    Push(Ra);
    if (!HasLit)
      Push(Rb);
    // Conditional moves merge with the old destination value.
    if (Info.Kind == InstKind::CondMove)
      Push(Rc);
    break;
  case Format::Jump:
    Push(Rb);
    break;
  case Format::Pal:
    break;
  }
  return Count;
}

int AlphaInst::outputReg() const {
  if (!valid())
    return -1;
  const OpInfo &Info = info();
  uint8_t Out = RegZero;
  switch (Info.Form) {
  case Format::Mem:
    if (Info.Kind != InstKind::Store)
      Out = Ra;
    break;
  case Format::Branch:
    // BR/BSR write the return address into Ra (commonly R31 for plain BR).
    if (Info.Kind != InstKind::CondBranch)
      Out = Ra;
    break;
  case Format::Operate:
    Out = Rc;
    break;
  case Format::Jump:
    Out = Ra;
    break;
  case Format::Pal:
    break;
  }
  return Out == RegZero ? -1 : int(Out);
}

bool AlphaInst::isNop() const {
  if (!valid())
    return false;
  const OpInfo &Info = info();
  // Control transfers, memory accesses, and CALL_PAL always have effects.
  if (Info.Kind == InstKind::Load || Info.Kind == InstKind::Store ||
      isControl(Op))
    return false;
  return outputReg() == -1;
}
