//===- alpha/Disasm.cpp - Alpha disassembler ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Disasm.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::alpha;

static std::string reg(unsigned R) { return "r" + std::to_string(R); }

static std::string hex(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string alpha::disassemble(const AlphaInst &Inst, uint64_t Pc) {
  if (!Inst.valid())
    return "<invalid>";
  const OpInfo &Info = Inst.info();
  std::string Text = Info.Mnemonic;
  Text += ' ';
  switch (Info.Form) {
  case Format::Mem:
    Text += reg(Inst.Ra) + ", " + std::to_string(Inst.Disp) + "[" +
            reg(Inst.Rb) + "]";
    break;
  case Format::Branch:
    if (Info.Kind == InstKind::CondBranch || Inst.Ra != RegZero)
      Text += reg(Inst.Ra) + ", ";
    Text += hex(Inst.branchTarget(Pc));
    break;
  case Format::Operate: {
    Text += reg(Inst.Ra) + ", ";
    if (Inst.HasLit)
      Text += std::to_string(unsigned(Inst.Lit));
    else
      Text += reg(Inst.Rb);
    Text += ", " + reg(Inst.Rc);
    break;
  }
  case Format::Jump:
    if (Info.Kind != InstKind::Ret)
      Text += reg(Inst.Ra) + ", ";
    Text += "(" + reg(Inst.Rb) + ")";
    break;
  case Format::Pal:
    if (Inst.PalFunc == PalHalt)
      Text += "halt";
    else if (Inst.PalFunc == PalGentrap)
      Text += "gentrap";
    else
      Text += hex(Inst.PalFunc);
    break;
  }
  return Text;
}
