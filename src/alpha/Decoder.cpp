//===- alpha/Decoder.cpp - Alpha instruction decoder ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Decoder.h"

#include "support/BitUtil.h"

#include <array>

using namespace ildp;
using namespace ildp::alpha;

namespace {

/// Reverse lookup tables built once from the opcode metadata: primary
/// opcode -> Opcode for single-opcode formats, and (primary, function) ->
/// Opcode for the operate groups.
struct DecodeTables {
  // Non-operate primary opcodes map directly.
  std::array<Opcode, 64> Primary;
  // Operate groups: 64 primaries x 128 function codes.
  std::array<std::array<Opcode, 128>, 64> OperateFunc;
  // Jump types for primary 0x1A.
  std::array<Opcode, 4> JumpTypes;

  DecodeTables() {
    Primary.fill(Opcode::Invalid);
    for (auto &Row : OperateFunc)
      Row.fill(Opcode::Invalid);
    JumpTypes.fill(Opcode::Invalid);
    for (unsigned I = 0; I != NumOpcodes; ++I) {
      Opcode Op = static_cast<Opcode>(I);
      const OpInfo &Info = getOpInfo(Op);
      switch (Info.Form) {
      case Format::Mem:
      case Format::Branch:
      case Format::Pal:
        Primary[Info.PrimaryOpcode] = Op;
        break;
      case Format::Operate:
        OperateFunc[Info.PrimaryOpcode][Info.Function & 0x7F] = Op;
        break;
      case Format::Jump:
        JumpTypes[Info.Function & 0x3] = Op;
        break;
      }
    }
  }
};

} // namespace

static const DecodeTables &getTables() {
  static DecodeTables Tables;
  return Tables;
}

AlphaInst alpha::decode(uint32_t Word) {
  const DecodeTables &Tables = getTables();
  AlphaInst Inst;
  unsigned Prim = unsigned(extractBits(Word, 26, 6));

  // Jump format is its own primary opcode.
  if (Prim == 0x1A) {
    unsigned Type = unsigned(extractBits(Word, 14, 2));
    Inst.Op = Tables.JumpTypes[Type];
    if (Inst.Op == Opcode::Invalid)
      return Inst;
    Inst.Ra = uint8_t(extractBits(Word, 21, 5));
    Inst.Rb = uint8_t(extractBits(Word, 16, 5));
    Inst.JumpHint = uint16_t(extractBits(Word, 0, 14));
    return Inst;
  }

  // Operate groups carry a 7-bit function field at bits 11:5.
  if (Prim == 0x10 || Prim == 0x11 || Prim == 0x12 || Prim == 0x13 ||
      Prim == 0x1C) {
    unsigned Func = unsigned(extractBits(Word, 5, 7));
    Inst.Op = Tables.OperateFunc[Prim][Func];
    if (Inst.Op == Opcode::Invalid)
      return Inst;
    Inst.Ra = uint8_t(extractBits(Word, 21, 5));
    Inst.Rc = uint8_t(extractBits(Word, 0, 5));
    if (extractBits(Word, 12, 1)) {
      Inst.HasLit = true;
      Inst.Lit = uint8_t(extractBits(Word, 13, 8));
    } else {
      Inst.Rb = uint8_t(extractBits(Word, 16, 5));
    }
    return Inst;
  }

  Opcode Op = Tables.Primary[Prim];
  if (Op == Opcode::Invalid)
    return Inst;
  const OpInfo &Info = getOpInfo(Op);
  Inst.Op = Op;
  switch (Info.Form) {
  case Format::Mem:
    Inst.Ra = uint8_t(extractBits(Word, 21, 5));
    Inst.Rb = uint8_t(extractBits(Word, 16, 5));
    Inst.Disp = int32_t(signExtend(extractBits(Word, 0, 16), 16));
    break;
  case Format::Branch:
    Inst.Ra = uint8_t(extractBits(Word, 21, 5));
    Inst.Disp = int32_t(signExtend(extractBits(Word, 0, 21), 21));
    break;
  case Format::Pal:
    Inst.PalFunc = uint32_t(extractBits(Word, 0, 26));
    break;
  case Format::Operate:
  case Format::Jump:
    // Handled above.
    Inst.Op = Opcode::Invalid;
    break;
  }
  return Inst;
}
