//===- alpha/Encoder.cpp - Alpha instruction encoder ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Encoder.h"

#include "support/BitUtil.h"

#include <cassert>

using namespace ildp;
using namespace ildp::alpha;

uint32_t alpha::encode(const AlphaInst &Inst) {
  assert(Inst.valid() && "Cannot encode an invalid instruction");
  const OpInfo &Info = Inst.info();
  uint32_t Word = uint32_t(Info.PrimaryOpcode) << 26;
  switch (Info.Form) {
  case Format::Mem:
    assert(fitsSigned(Inst.Disp, 16) && "Memory displacement out of range");
    Word |= uint32_t(Inst.Ra) << 21;
    Word |= uint32_t(Inst.Rb) << 16;
    Word |= uint32_t(uint16_t(Inst.Disp));
    break;
  case Format::Branch:
    assert(fitsSigned(Inst.Disp, 21) && "Branch displacement out of range");
    Word |= uint32_t(Inst.Ra) << 21;
    Word |= uint32_t(Inst.Disp) & 0x1FFFFF;
    break;
  case Format::Operate:
    Word |= uint32_t(Inst.Ra) << 21;
    Word |= uint32_t(Info.Function & 0x7F) << 5;
    Word |= uint32_t(Inst.Rc);
    if (Inst.HasLit) {
      Word |= uint32_t(1) << 12;
      Word |= uint32_t(Inst.Lit) << 13;
    } else {
      Word |= uint32_t(Inst.Rb) << 16;
    }
    break;
  case Format::Jump:
    Word |= uint32_t(Inst.Ra) << 21;
    Word |= uint32_t(Inst.Rb) << 16;
    Word |= uint32_t(Info.Function & 0x3) << 14;
    Word |= uint32_t(Inst.JumpHint & 0x3FFF);
    break;
  case Format::Pal:
    assert(fitsUnsigned(Inst.PalFunc, 26) && "PAL function out of range");
    Word |= Inst.PalFunc;
    break;
  }
  return Word;
}
