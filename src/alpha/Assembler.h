//===- alpha/Assembler.h - Programmatic Alpha assembler -------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small label-based assembler for building Alpha guest programs in
/// memory. The synthetic SPEC stand-in workloads (src/workloads) are written
/// against this API; it replaces the paper's DEC-cc-compiled SPEC binaries,
/// which are unobtainable (see DESIGN.md, substitutions).
///
/// Typical use:
/// \code
///   Assembler Asm(0x120000000);
///   auto Loop = Asm.createLabel("loop");
///   Asm.bind(Loop);
///   Asm.ldq(3, 0, 16);
///   Asm.operate(Opcode::ADDQ, 3, 4, 3);
///   Asm.condBr(Opcode::BNE, 17, Loop);
///   Asm.halt();
///   std::vector<uint32_t> Words = Asm.finalize();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_ASSEMBLER_H
#define ILDP_ALPHA_ASSEMBLER_H

#include "alpha/AlphaInst.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace alpha {

class GuestMemoryRef;

/// Label-based Alpha instruction stream builder.
class Assembler {
public:
  /// Opaque label handle.
  using Label = unsigned;

  explicit Assembler(uint64_t BaseAddr) : Base(BaseAddr) {}

  /// Creates a new unbound label. \p Name is for diagnostics only.
  Label createLabel(std::string Name = "");

  /// Binds \p L to the current position. A label may be bound only once.
  void bind(Label L);

  /// Address of the label; the label must be bound (call after finalize()
  /// or after bind()).
  uint64_t labelAddr(Label L) const;

  /// Address of the next instruction to be emitted.
  uint64_t currentAddr() const { return Base + Words.size() * InstBytes; }

  uint64_t baseAddr() const { return Base; }

  // --- Memory format -------------------------------------------------------
  void mem(Opcode Op, uint8_t Ra, int32_t Disp, uint8_t Rb);
  void lda(uint8_t Ra, int32_t Disp, uint8_t Rb) {
    mem(Opcode::LDA, Ra, Disp, Rb);
  }
  void ldah(uint8_t Ra, int32_t Disp, uint8_t Rb) {
    mem(Opcode::LDAH, Ra, Disp, Rb);
  }
  void ldbu(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::LDBU, Ra, D, Rb); }
  void ldwu(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::LDWU, Ra, D, Rb); }
  void ldl(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::LDL, Ra, D, Rb); }
  void ldq(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::LDQ, Ra, D, Rb); }
  void stb(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::STB, Ra, D, Rb); }
  void stw(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::STW, Ra, D, Rb); }
  void stl(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::STL, Ra, D, Rb); }
  void stq(uint8_t Ra, int32_t D, uint8_t Rb) { mem(Opcode::STQ, Ra, D, Rb); }

  // --- Operate format ------------------------------------------------------
  /// Register form: Rc <- Ra op Rb.
  void operate(Opcode Op, uint8_t Ra, uint8_t Rb, uint8_t Rc);
  /// Literal form: Rc <- Ra op Lit (Lit is an unsigned 8-bit literal).
  void operatei(Opcode Op, uint8_t Ra, uint8_t Lit, uint8_t Rc);

  /// Rd <- Rs (canonical BIS move).
  void mov(uint8_t Rs, uint8_t Rd) { operate(Opcode::BIS, RegZero, Rs, Rd); }
  /// Rd <- small unsigned literal.
  void movi(uint8_t Lit, uint8_t Rd) {
    operatei(Opcode::BIS, RegZero, Lit, Rd);
  }
  /// The canonical Alpha NOP (BIS R31, R31, R31).
  void nop() { operate(Opcode::BIS, RegZero, RegZero, RegZero); }

  /// Loads an arbitrary 64-bit immediate using LDA/LDAH/SLL sequences
  /// (1-6 instructions depending on the value).
  void loadImm(uint8_t Rd, int64_t Value);

  /// Loads the address of a label (must eventually be bound; fixed up at
  /// finalize()). Always emits exactly two instructions (LDAH+LDA), so the
  /// label address must be within +/-2^31 of zero.
  void loadLabelAddr(uint8_t Rd, Label L);

  // --- Branch format -------------------------------------------------------
  void condBr(Opcode Op, uint8_t Ra, Label Target);
  void br(Label Target) { directBr(Opcode::BR, RegZero, Target); }
  /// BR that records its return address in Ra.
  void directBr(Opcode Op, uint8_t Ra, Label Target);
  void bsr(uint8_t Ra, Label Target) { directBr(Opcode::BSR, Ra, Target); }

  // --- Jump format ---------------------------------------------------------
  void jmp(uint8_t Ra, uint8_t Rb);
  void jsr(uint8_t Ra, uint8_t Rb);
  void ret(uint8_t Rb = RegRA);

  // --- PALcode -------------------------------------------------------------
  void callPal(uint32_t Func);
  void halt() { callPal(PalHalt); }
  void gentrap() { callPal(PalGentrap); }

  /// Emits an already-built instruction.
  void emit(const AlphaInst &Inst);

  /// Resolves all branch fixups and returns the instruction words. All
  /// referenced labels must be bound. The assembler may not be used after
  /// finalize().
  std::vector<uint32_t> finalize();

  /// Number of instructions emitted so far.
  size_t size() const { return Words.size(); }

private:
  struct Fixup {
    size_t Index;     ///< Instruction index needing patching.
    Label TargetLabel;
    enum class Kind { Branch21, AbsHi, AbsLo } FixKind;
  };

  uint64_t Base;
  std::vector<uint32_t> Words;
  std::vector<int64_t> LabelOffsets; ///< -1 when unbound; else byte offset.
  std::vector<std::string> LabelNames;
  std::vector<Fixup> Fixups;
  bool Finalized = false;
};

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_ASSEMBLER_H
