//===- alpha/AlphaIsa.h - Alpha (V-ISA) instruction set definition --------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the Alpha AXP integer subset used as the paper's virtual ISA
/// (V-ISA). The subset covers everything the SPEC CPU2000 integer stand-in
/// workloads need: integer operate instructions (arithmetic, logical,
/// shift, compare, conditional move, multiply, byte manipulation), the BWX
/// byte/word loads and stores, longword/quadword loads and stores, LDA/LDAH
/// address formation, all conditional branches, BR/BSR, the JMP/JSR/RET
/// register-indirect group, and CALL_PAL (HALT and GENTRAP).
///
/// Floating point is intentionally omitted: the paper evaluates SPEC INT
/// only (Section 4.1).
///
/// Primary opcodes and function codes follow the Alpha Architecture
/// Handbook so that encodings round-trip through real Alpha bit layouts.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ALPHA_ALPHAISA_H
#define ILDP_ALPHA_ALPHAISA_H

#include <cstdint>

namespace ildp {
namespace alpha {

/// Number of architected integer registers. R31 reads as zero and discards
/// writes.
constexpr unsigned NumGprs = 32;
constexpr uint8_t RegZero = 31;
/// Standard Alpha software conventions used by the workloads.
constexpr uint8_t RegV0 = 0;    ///< Return value.
constexpr uint8_t RegRA = 26;   ///< Return address.
constexpr uint8_t RegPV = 27;   ///< Procedure value (indirect call target).
constexpr uint8_t RegGP = 29;   ///< Global pointer.
constexpr uint8_t RegSP = 30;   ///< Stack pointer.

/// Instruction word size in bytes; all Alpha instructions are 32 bits.
constexpr unsigned InstBytes = 4;

/// The five Alpha encoding formats we implement.
enum class Format : uint8_t {
  Mem,     ///< opcode ra rb disp16 (loads, stores, LDA/LDAH).
  Branch,  ///< opcode ra disp21 (conditional branches, BR, BSR).
  Operate, ///< opcode ra rb/lit func rc (integer operates).
  Jump,    ///< opcode 0x1A: ra rb type hint (JMP/JSR/RET).
  Pal,     ///< opcode 0x00: CALL_PAL func26.
};

/// Semantic classification used by the interpreter, the translator's
/// operand analysis, and the timing models.
enum class InstKind : uint8_t {
  IntOp,      ///< Single-cycle integer operate (incl. LDA/LDAH).
  Mul,        ///< Integer multiply (long latency).
  CondMove,   ///< CMOVxx: reads Ra (condition), Rb/lit, and old Rc.
  Load,       ///< Memory load.
  Store,      ///< Memory store.
  CondBranch, ///< Conditional branch on Ra.
  Br,         ///< Unconditional direct branch (BR), writes return address.
  Bsr,        ///< Direct call (BSR), writes return address.
  Jmp,        ///< Register-indirect jump.
  Jsr,        ///< Register-indirect call.
  Ret,        ///< Register-indirect return.
  Pal,        ///< CALL_PAL.
};

/// PALcode function codes recognized by the VM.
enum PalFunc : uint32_t {
  PalHalt = 0x0000,    ///< Terminate the guest program.
  PalGentrap = 0x00AA, ///< Explicit software trap (used by trap tests).
};

/// Jump-format type field (bits 15:14 of the hint).
enum JumpType : uint16_t {
  JumpTypeJmp = 0,
  JumpTypeJsr = 1,
  JumpTypeRet = 2,
};

// The master opcode list.
//
// ALPHA_OPCODE(Enum, Mnemonic, Format, Kind, PrimaryOp, Func, MemSize,
//              MemSigned)
//   Func: operate function code, jump type, or 0.
//   MemSize: access bytes for loads/stores, else 0.
//   MemSigned: load result sign-extended (LDL) vs zero-extended.
#define ILDP_ALPHA_OPCODES(X)                                                  \
  /* Memory-format address arithmetic. */                                      \
  X(LDA, "lda", Mem, IntOp, 0x08, 0, 0, false)                                 \
  X(LDAH, "ldah", Mem, IntOp, 0x09, 0, 0, false)                               \
  /* Loads. */                                                                 \
  X(LDBU, "ldbu", Mem, Load, 0x0A, 0, 1, false)                                \
  X(LDWU, "ldwu", Mem, Load, 0x0C, 0, 2, false)                                \
  X(LDL, "ldl", Mem, Load, 0x28, 0, 4, true)                                   \
  X(LDQ, "ldq", Mem, Load, 0x29, 0, 8, false)                                  \
  /* Stores. */                                                                \
  X(STB, "stb", Mem, Store, 0x0E, 0, 1, false)                                 \
  X(STW, "stw", Mem, Store, 0x0D, 0, 2, false)                                 \
  X(STL, "stl", Mem, Store, 0x2C, 0, 4, false)                                 \
  X(STQ, "stq", Mem, Store, 0x2D, 0, 8, false)                                 \
  /* Branch format. */                                                         \
  X(BR, "br", Branch, Br, 0x30, 0, 0, false)                                   \
  X(BSR, "bsr", Branch, Bsr, 0x34, 0, 0, false)                                \
  X(BLBC, "blbc", Branch, CondBranch, 0x38, 0, 0, false)                       \
  X(BEQ, "beq", Branch, CondBranch, 0x39, 0, 0, false)                         \
  X(BLT, "blt", Branch, CondBranch, 0x3A, 0, 0, false)                         \
  X(BLE, "ble", Branch, CondBranch, 0x3B, 0, 0, false)                         \
  X(BLBS, "blbs", Branch, CondBranch, 0x3C, 0, 0, false)                       \
  X(BNE, "bne", Branch, CondBranch, 0x3D, 0, 0, false)                         \
  X(BGE, "bge", Branch, CondBranch, 0x3E, 0, 0, false)                         \
  X(BGT, "bgt", Branch, CondBranch, 0x3F, 0, 0, false)                         \
  /* Jump format (opcode 0x1A, type in hint bits 15:14). */                    \
  X(JMP, "jmp", Jump, Jmp, 0x1A, JumpTypeJmp, 0, false)                        \
  X(JSR, "jsr", Jump, Jsr, 0x1A, JumpTypeJsr, 0, false)                        \
  X(RET, "ret", Jump, Ret, 0x1A, JumpTypeRet, 0, false)                        \
  /* INTA: opcode 0x10. */                                                     \
  X(ADDL, "addl", Operate, IntOp, 0x10, 0x00, 0, false)                        \
  X(S4ADDL, "s4addl", Operate, IntOp, 0x10, 0x02, 0, false)                    \
  X(SUBL, "subl", Operate, IntOp, 0x10, 0x09, 0, false)                        \
  X(S4SUBL, "s4subl", Operate, IntOp, 0x10, 0x0B, 0, false)                    \
  X(CMPBGE, "cmpbge", Operate, IntOp, 0x10, 0x0F, 0, false)                    \
  X(S8ADDL, "s8addl", Operate, IntOp, 0x10, 0x12, 0, false)                    \
  X(S8SUBL, "s8subl", Operate, IntOp, 0x10, 0x1B, 0, false)                    \
  X(CMPULT, "cmpult", Operate, IntOp, 0x10, 0x1D, 0, false)                    \
  X(ADDQ, "addq", Operate, IntOp, 0x10, 0x20, 0, false)                        \
  X(S4ADDQ, "s4addq", Operate, IntOp, 0x10, 0x22, 0, false)                    \
  X(SUBQ, "subq", Operate, IntOp, 0x10, 0x29, 0, false)                        \
  X(S4SUBQ, "s4subq", Operate, IntOp, 0x10, 0x2B, 0, false)                    \
  X(CMPEQ, "cmpeq", Operate, IntOp, 0x10, 0x2D, 0, false)                      \
  X(S8ADDQ, "s8addq", Operate, IntOp, 0x10, 0x32, 0, false)                    \
  X(S8SUBQ, "s8subq", Operate, IntOp, 0x10, 0x3B, 0, false)                    \
  X(CMPULE, "cmpule", Operate, IntOp, 0x10, 0x3D, 0, false)                    \
  X(CMPLT, "cmplt", Operate, IntOp, 0x10, 0x4D, 0, false)                      \
  X(CMPLE, "cmple", Operate, IntOp, 0x10, 0x6D, 0, false)                      \
  /* INTL: opcode 0x11. */                                                     \
  X(AND, "and", Operate, IntOp, 0x11, 0x00, 0, false)                          \
  X(BIC, "bic", Operate, IntOp, 0x11, 0x08, 0, false)                          \
  X(CMOVLBS, "cmovlbs", Operate, CondMove, 0x11, 0x14, 0, false)               \
  X(CMOVLBC, "cmovlbc", Operate, CondMove, 0x11, 0x16, 0, false)               \
  X(BIS, "bis", Operate, IntOp, 0x11, 0x20, 0, false)                          \
  X(CMOVEQ, "cmoveq", Operate, CondMove, 0x11, 0x24, 0, false)                 \
  X(CMOVNE, "cmovne", Operate, CondMove, 0x11, 0x26, 0, false)                 \
  X(ORNOT, "ornot", Operate, IntOp, 0x11, 0x28, 0, false)                      \
  X(XOR, "xor", Operate, IntOp, 0x11, 0x40, 0, false)                          \
  X(CMOVLT, "cmovlt", Operate, CondMove, 0x11, 0x44, 0, false)                 \
  X(CMOVGE, "cmovge", Operate, CondMove, 0x11, 0x46, 0, false)                 \
  X(EQV, "eqv", Operate, IntOp, 0x11, 0x48, 0, false)                          \
  X(CMOVLE, "cmovle", Operate, CondMove, 0x11, 0x64, 0, false)                 \
  X(CMOVGT, "cmovgt", Operate, CondMove, 0x11, 0x66, 0, false)                 \
  /* INTS: opcode 0x12 (shift / byte manipulation). */                         \
  X(MSKBL, "mskbl", Operate, IntOp, 0x12, 0x02, 0, false)                      \
  X(EXTBL, "extbl", Operate, IntOp, 0x12, 0x06, 0, false)                      \
  X(INSBL, "insbl", Operate, IntOp, 0x12, 0x0B, 0, false)                      \
  X(EXTWL, "extwl", Operate, IntOp, 0x12, 0x16, 0, false)                      \
  X(ZAP, "zap", Operate, IntOp, 0x12, 0x30, 0, false)                          \
  X(ZAPNOT, "zapnot", Operate, IntOp, 0x12, 0x31, 0, false)                    \
  X(SRL, "srl", Operate, IntOp, 0x12, 0x34, 0, false)                          \
  X(SLL, "sll", Operate, IntOp, 0x12, 0x39, 0, false)                          \
  X(SRA, "sra", Operate, IntOp, 0x12, 0x3C, 0, false)                          \
  /* INTM: opcode 0x13. */                                                     \
  X(MULL, "mull", Operate, Mul, 0x13, 0x00, 0, false)                          \
  X(MULQ, "mulq", Operate, Mul, 0x13, 0x20, 0, false)                          \
  X(UMULH, "umulh", Operate, Mul, 0x13, 0x30, 0, false)                        \
  /* FPTI/CIX: opcode 0x1C (sign extension, population counts). */             \
  X(SEXTB, "sextb", Operate, IntOp, 0x1C, 0x00, 0, false)                      \
  X(SEXTW, "sextw", Operate, IntOp, 0x1C, 0x01, 0, false)                      \
  X(CTPOP, "ctpop", Operate, IntOp, 0x1C, 0x30, 0, false)                      \
  X(CTLZ, "ctlz", Operate, IntOp, 0x1C, 0x32, 0, false)                        \
  X(CTTZ, "cttz", Operate, IntOp, 0x1C, 0x33, 0, false)                        \
  /* CALL_PAL. */                                                              \
  X(CALL_PAL, "call_pal", Pal, Pal, 0x00, 0, 0, false)

/// Semantic opcodes of the supported Alpha subset.
enum class Opcode : uint8_t {
#define ILDP_ALPHA_ENUM(Enum, Mnemonic, Form, Kind, Prim, Func, Size, Signed) \
  Enum,
  ILDP_ALPHA_OPCODES(ILDP_ALPHA_ENUM)
#undef ILDP_ALPHA_ENUM
  Invalid,
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Invalid);

/// Static per-opcode properties.
struct OpInfo {
  const char *Mnemonic;
  Format Form;
  InstKind Kind;
  uint8_t PrimaryOpcode;
  uint16_t Function; ///< Operate function code, or jump type field.
  uint8_t MemSize;   ///< Bytes accessed (loads/stores), else 0.
  bool MemSigned;    ///< Load result is sign-extended.
};

/// Returns the static properties of \p Op. \p Op must be valid.
const OpInfo &getOpInfo(Opcode Op);

/// Returns the mnemonic of \p Op ("invalid" for Opcode::Invalid).
const char *getMnemonic(Opcode Op);

/// Returns the conventional register name ("v0", "t0", ..., "zero").
const char *getRegName(unsigned Reg);

// Convenience kind queries (valid for any Opcode, including Invalid).
bool isLoad(Opcode Op);
bool isStore(Opcode Op);
bool isMemory(Opcode Op);
bool isCondBranch(Opcode Op);
/// BR or BSR.
bool isDirectBranch(Opcode Op);
/// JMP, JSR, or RET.
bool isIndirectBranch(Opcode Op);
/// Any control transfer (cond branch, BR/BSR, JMP/JSR/RET, CALL_PAL).
bool isControl(Opcode Op);
/// BSR or JSR (pushes a return address in the software convention).
bool isCall(Opcode Op);
bool isCondMove(Opcode Op);
bool isMul(Opcode Op);
/// Potentially excepting instruction: may raise a precise trap
/// (memory access or CALL_PAL GENTRAP).
bool isPei(Opcode Op);

} // namespace alpha
} // namespace ildp

#endif // ILDP_ALPHA_ALPHAISA_H
