//===- uarch/FrontEnd.cpp - Shared fetch/predict front end ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/FrontEnd.h"

using namespace ildp;
using namespace ildp::uarch;

FrontEnd::FrontEnd(const FrontEndParams &P, MemorySide &Mem,
                   bool UseConventionalRas)
    : Params(P), Mem(Mem), UseConventionalRas(UseConventionalRas),
      ICache(P.ICache, /*Seed=*/3), Gshare(P.GshareEntries, P.GshareHistBits),
      TargetBuffer(P.BtbEntries, P.BtbAssoc), Ras(P.RasEntries) {}

void FrontEnd::startSegment(uint64_t AtCycle) {
  if (FetchCycle < AtCycle)
    FetchCycle = AtCycle;
  FetchedThisCycle = 0;
  BlocksThisCycle = 0;
  BreakPending = false;
  CurLine = ~uint64_t(0);
}

FrontEnd::Fetched FrontEnd::next(const TraceOp &Op) {
  if (BreakPending) {
    advanceCycle();
    BreakPending = false;
  }
  if (FetchedThisCycle >= Params.FetchWidth)
    advanceCycle();

  // I-cache: access once per line.
  uint64_t Line = Op.Pc / Params.ICache.LineBytes;
  if (Line != CurLine) {
    CurLine = Line;
    ++Stats.ICacheAccesses;
    if (!ICache.access(Op.Pc)) {
      ++Stats.ICacheMisses;
      FetchCycle += ICache.params().HitLatency + Mem.missLatency(Op.Pc);
      FetchedThisCycle = 0;
      BlocksThisCycle = 0;
    }
  }

  Fetched Result;
  ++FetchedThisCycle;

  // Control-transfer prediction.
  bool IsControl = Op.Class == OpClass::CondBr ||
                   Op.Class == OpClass::DirectBr ||
                   Op.Class == OpClass::Indirect ||
                   Op.Class == OpClass::Return;
  if (IsControl) {
    ++Stats.ControlOps;
    // A branch ends a basic block; at most MaxBlocksPerCycle can be fetched
    // per cycle.
    if (++BlocksThisCycle >= Params.MaxBlocksPerCycle && !Op.Taken)
      BreakPending = true;

    switch (Op.Class) {
    case OpClass::CondBr: {
      ++Stats.CondBranches;
      bool Pred = Gshare.predict(Op.Pc);
      if (Pred != Op.Taken) {
        ++Stats.CondMispredicts;
        Result.NeedResolveRedirect = true;
      } else if (Op.Taken) {
        // Correct direction; the target must come from the BTB.
        if (TargetBuffer.predict(Op.Pc) != Op.NextPc) {
          ++Stats.Misfetches;
          FetchCycle += Params.RedirectLatency;
        }
      }
      Gshare.update(Op.Pc, Op.Taken);
      if (Op.Taken)
        TargetBuffer.update(Op.Pc, Op.NextPc);
      break;
    }
    case OpClass::DirectBr: {
      if (TargetBuffer.predict(Op.Pc) != Op.NextPc) {
        ++Stats.Misfetches;
        FetchCycle += Params.RedirectLatency;
      }
      TargetBuffer.update(Op.Pc, Op.NextPc);
      break;
    }
    case OpClass::Indirect: {
      if (TargetBuffer.predict(Op.Pc) != Op.NextPc) {
        ++Stats.TargetMispredicts;
        Result.NeedResolveRedirect = true;
      }
      TargetBuffer.update(Op.Pc, Op.NextPc);
      break;
    }
    case OpClass::Return: {
      bool Hit;
      if (Op.RasHitKnown) {
        Hit = Op.RasHit; // Dual-address RAS, resolved by the VM.
      } else if (UseConventionalRas) {
        Hit = Ras.pop() == Op.NextPc;
      } else {
        Hit = TargetBuffer.predict(Op.Pc) == Op.NextPc;
        TargetBuffer.update(Op.Pc, Op.NextPc);
      }
      if (!Hit) {
        ++Stats.RasMispredicts;
        Result.NeedResolveRedirect = true;
      }
      break;
    }
    default:
      break;
    }

    if (Op.Taken && !Result.NeedResolveRedirect)
      BreakPending = true; // Redirected fetch starts next cycle.
  }

  if (UseConventionalRas && Op.RasPush)
    Ras.push(Op.Pc + Op.SizeBytes);

  Result.DispatchCycle = FetchCycle + Params.FrontPipeDepth;
  return Result;
}

void FrontEnd::redirect(uint64_t ResolveCycle) {
  uint64_t Resume = ResolveCycle + Params.RedirectLatency;
  if (FetchCycle < Resume)
    FetchCycle = Resume;
  FetchedThisCycle = 0;
  BlocksThisCycle = 0;
  BreakPending = false;
  CurLine = ~uint64_t(0);
}
