//===- uarch/Cache.h - Set-associative cache model ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic set-associative cache tag array (LRU or seeded-random
/// replacement) plus the two-level hierarchy used by the timing models.
/// Timing is additive-latency (no MSHR/bandwidth modeling): an access
/// returns its total latency and updates tag state.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_CACHE_H
#define ILDP_UARCH_CACHE_H

#include "support/Rng.h"
#include "uarch/Params.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ildp {
namespace uarch {

/// Tag-array-only cache model.
class Cache {
public:
  explicit Cache(const CacheParams &Params, uint64_t Seed = 1);

  /// Looks up \p Addr; on a miss the line is allocated. Returns true on
  /// hit.
  bool access(uint64_t Addr);

  /// Lookup without allocation (e.g. store-through probes).
  bool probe(uint64_t Addr) const;

  /// Invalidates the line containing \p Addr if present.
  void invalidate(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  const CacheParams &params() const { return Params; }

private:
  struct Way {
    uint64_t Tag = ~uint64_t(0);
    uint64_t Lru = 0;
    bool Valid = false;
  };

  CacheParams Params;
  unsigned NumSets;
  unsigned LineShift;
  std::vector<Way> Ways; ///< NumSets x Assoc.
  uint64_t Stamp = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  Rng Rand;

  Way *findLine(uint64_t Addr);
  const Way *findLine(uint64_t Addr) const;
};

/// L2 + memory behind an L1 (latencies from Table 1).
class MemorySide {
public:
  explicit MemorySide(const MemoryParams &Params, uint64_t Seed = 7)
      : L2(Params.L2, Seed), MemLatency(Params.MemLatency) {}

  /// Latency of servicing an L1 miss for \p Addr.
  unsigned missLatency(uint64_t Addr) {
    if (L2Cache().access(Addr))
      return L2Cache().params().HitLatency;
    return L2Cache().params().HitLatency + MemLatency;
  }

  Cache &L2Cache() { return L2; }

private:
  Cache L2;
  unsigned MemLatency;
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_CACHE_H
