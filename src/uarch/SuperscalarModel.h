//===- uarch/SuperscalarModel.h - Out-of-order superscalar timing ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's reference machine (Table 1, left column): an idealized
/// 4-wide out-of-order superscalar with a 128-entry ROB-sized issue
/// window, four symmetric functional units, oldest-first issue, and no
/// communication latency. Used for the "original" and
/// "code-straightening-only" simulations.
///
/// The model is one-pass trace-driven: each committed instruction's
/// fetch/dispatch/issue/complete/commit cycles are derived from
/// dependence-readiness and structural constraints (fetch bandwidth +
/// prediction via the shared FrontEnd, window occupancy, issue bandwidth,
/// cache latencies, in-order commit). Branches resolve at completion and
/// redirect the front end.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_SUPERSCALARMODEL_H
#define ILDP_UARCH_SUPERSCALARMODEL_H

#include "uarch/FrontEnd.h"
#include "uarch/SlotRing.h"

#include <array>

namespace ildp {
namespace uarch {

/// Backend statistics shared by both machines.
struct PipelineStats {
  uint64_t Cycles = 0;
  uint64_t Insts = 0;   ///< Committed (I-ISA / native) instructions.
  uint64_t VInsts = 0;  ///< V-ISA instructions credited.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t DCacheMisses = 0;
  uint64_t Segments = 0;

  double ipc() const { return Cycles ? double(VInsts) / double(Cycles) : 0; }
  double nativeIpc() const {
    return Cycles ? double(Insts) / double(Cycles) : 0;
  }
};

/// Trace-driven out-of-order superscalar model.
class SuperscalarModel : public TimingModel {
public:
  /// \p ConventionalRas: predict returns with the hardware RAS (original
  /// Alpha code). DBT traces pass false.
  SuperscalarModel(const SuperscalarParams &Params, bool ConventionalRas);

  void beginSegment() override;
  void consume(const TraceOp &Op) override;
  uint64_t finish() override;

  const PipelineStats &stats() const { return Stats; }
  const FrontEndStats &frontEndStats() const { return Front.stats(); }

private:
  SuperscalarParams Params;
  MemorySide Mem;
  Cache DCache;
  FrontEnd Front;
  SlotRing IssueSlots;
  SlotRing CommitSlots;

  /// Commit cycles of the last RobSize instructions (window occupancy).
  std::vector<uint64_t> RobRing;
  uint64_t OpIndex = 0;
  uint64_t LastCommit = 0;
  std::array<uint64_t, 80> RegReady{}; ///< Unified regs (64 GPR + 8 acc).

  PipelineStats Stats;

  unsigned loadLatency(uint64_t Addr);
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_SUPERSCALARMODEL_H
