//===- uarch/IldpModel.cpp - ILDP distributed microarchitecture timing ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/IldpModel.h"

#include <algorithm>
#include <cassert>

using namespace ildp;
using namespace ildp::uarch;

IldpModel::IldpModel(const IldpParams &P)
    : Params(P), Mem(P.Memory, /*Seed=*/21),
      Front(P.Front, Mem, /*UseConventionalRas=*/false),
      CommitSlots(P.Width), RobRing(P.RobSize, 0) {
  assert(P.NumPEs >= 1 && P.NumPEs <= 8 && "Unsupported PE count");
  Pes.resize(P.NumPEs);
  for (unsigned I = 0; I != P.NumPEs; ++I) {
    Pes[I].DCache = std::make_unique<Cache>(P.DCache, /*Seed=*/31 + I);
    Pes[I].FifoRing.assign(P.FifoDepth, 0);
  }
  AccPe.fill(-1);
  GprPe.fill(-1);
}

void IldpModel::beginSegment() {
  Front.startSegment(LastCommit + 1);
  ++Stats.Segments;
}

unsigned IldpModel::loadLatency(unsigned PeIdx, uint64_t Addr) {
  // Loads access the PE-local replica; a miss goes to the shared L2.
  if (Pes[PeIdx].DCache->access(Addr))
    return Params.DCache.HitLatency;
  ++Stats.DCacheMisses;
  return Params.DCache.HitLatency + Mem.missLatency(Addr);
}

unsigned IldpModel::steer(const TraceOp &Op) {
  // Strand continuation: follow the accumulator to its PE.
  if (Op.AccIn && Op.StrandAcc != NoTraceReg && AccPe[Op.StrandAcc] >= 0) {
    ++Continuations;
    return unsigned(AccPe[Op.StrandAcc]);
  }
  if (!Op.AccIn && Op.StrandAcc != NoTraceReg) {
    uint64_t MinLoad = Pes[0].LastIssue;
    for (unsigned I = 1; I != Params.NumPEs; ++I)
      MinLoad = std::min(MinLoad, Pes[I].LastIssue);

    // New strand: dependence-affine steering (the ISCA 2002 design steers
    // by accumulator number toward producers). If a GPR source was
    // produced on a PE that is not badly backlogged, start the strand
    // there — the value arrives without the global communication latency.
    if (Params.CommLatency > 0) {
      for (uint8_t Src : {Op.Src1, Op.Src2}) {
        if (Src == NoTraceReg || Src >= TraceAccBase)
          continue;
        int Producer = GprPe[Src];
        if (Producer < 0)
          continue;
        if (Pes[Producer].LastIssue <= MinLoad + 2 * Params.CommLatency) {
          ++Continuations;
          return unsigned(Producer);
        }
      }
    }
    // Otherwise pick the least-loaded PE (earliest last issue), breaking
    // ties round-robin to spread strands.
    unsigned Best = RoundRobin % Params.NumPEs;
    for (unsigned I = 0; I != Params.NumPEs; ++I) {
      unsigned Cand = (RoundRobin + I) % Params.NumPEs;
      if (Pes[Cand].LastIssue < Pes[Best].LastIssue)
        Best = Cand;
    }
    ++RoundRobin;
    return Best;
  }
  // No accumulator involvement (chaining/dispatch code): least loaded.
  unsigned Best = 0;
  for (unsigned I = 1; I != Params.NumPEs; ++I)
    if (Pes[I].LastIssue < Pes[Best].LastIssue)
      Best = I;
  return Best;
}

uint64_t IldpModel::gprReadyAt(uint8_t Reg, unsigned PeIdx) const {
  if (Reg >= GprReady.size())
    return 0;
  uint64_t Ready = GprReady[Reg];
  if (Ready == 0 || GprPe[Reg] < 0 || unsigned(GprPe[Reg]) == PeIdx)
    return Ready;
  return Ready + Params.CommLatency;
}

void IldpModel::consume(const TraceOp &Op) {
  uint64_t RobFree = RobRing[OpIndex % Params.RobSize];
  if (RobFree)
    Front.clampFetch(RobFree > Params.Front.FrontPipeDepth
                         ? RobFree - Params.Front.FrontPipeDepth
                         : 0);

  FrontEnd::Fetched Fetch = Front.next(Op);
  uint64_t Dispatch = std::max(Fetch.DispatchCycle, RobFree);

  unsigned PeIdx = steer(Op);
  Pe &P = Pes[PeIdx];

  // FIFO capacity back-pressure — and dispatch is in order, so a stalled
  // instruction holds up everything behind it regardless of target PE.
  uint64_t FifoFree = P.FifoRing[P.FifoIndex % Params.FifoDepth];
  Dispatch = std::max({Dispatch, FifoFree, LastDispatch});
  LastDispatch = Dispatch;

  // Operand readiness: accumulator input is PE-local (the producer sits
  // earlier in the same FIFO); GPR inputs may cross PEs.
  uint64_t Ready = Dispatch + 1;
  if (Op.AccIn && Op.StrandAcc != NoTraceReg)
    Ready = std::max(Ready, AccReady[Op.StrandAcc]);
  if (Op.Src1 != NoTraceReg && Op.Src1 < TraceAccBase)
    Ready = std::max(Ready, gprReadyAt(Op.Src1, PeIdx));
  if (Op.Src2 != NoTraceReg && Op.Src2 < TraceAccBase)
    Ready = std::max(Ready, gprReadyAt(Op.Src2, PeIdx));

  // In-order single issue per PE.
  uint64_t Issue = std::max(Ready, P.LastIssue + 1);
  P.LastIssue = Issue;
  P.FifoRing[P.FifoIndex % Params.FifoDepth] = Issue;
  ++P.FifoIndex;

  unsigned Latency = 1;
  switch (Op.Class) {
  case OpClass::IntMul:
    Latency = Params.MulLatency;
    break;
  case OpClass::Load:
    ++Stats.Loads;
    Latency = 1 + loadLatency(PeIdx, Op.MemAddr);
    break;
  case OpClass::Store: {
    ++Stats.Stores;
    // Stores update every replica (kept coherent by broadcast).
    for (Pe &Other : Pes)
      Other.DCache->access(Op.MemAddr);
    break;
  }
  default:
    break;
  }
  uint64_t Complete = Issue + Latency;

  if (Op.StrandAcc != NoTraceReg) {
    AccReady[Op.StrandAcc] = Complete;
    AccPe[Op.StrandAcc] = int(PeIdx);
  }
  if (Op.Dest != NoTraceReg && Op.Dest < TraceAccBase &&
      !Op.GprWriteArchOnly) {
    GprReady[Op.Dest] = Complete;
    GprPe[Op.Dest] = int(PeIdx);
  }

  uint64_t Commit = CommitSlots.findSlot(std::max(Complete + 1, LastCommit));
  LastCommit = std::max(LastCommit, Commit);
  RobRing[OpIndex % Params.RobSize] = Commit;
  ++OpIndex;

  ++Stats.Insts;
  Stats.VInsts += Op.VCredit;

  if (Fetch.NeedResolveRedirect)
    Front.redirect(Complete);
}

uint64_t IldpModel::finish() {
  Stats.Cycles = LastCommit;
  return LastCommit;
}
