//===- uarch/Predictors.h - Branch prediction structures ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 1 prediction structures: a 16K-entry 12-bit-history g-share
/// direction predictor, a 512-entry 4-way BTB, the conventional 8-entry
/// return address stack, and the paper's proposed **dual-address RAS**
/// that pairs V-ISA return addresses with their translated I-ISA return
/// addresses (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_PREDICTORS_H
#define ILDP_UARCH_PREDICTORS_H

#include "support/SatCounter.h"
#include "uarch/Params.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ildp {
namespace uarch {

/// G-share direction predictor.
class GsharePredictor {
public:
  GsharePredictor(unsigned Entries, unsigned HistBits);

  /// Predicts the direction of the branch at \p Pc.
  bool predict(uint64_t Pc) const;

  /// Trains on the actual outcome and updates global history.
  void update(uint64_t Pc, bool Taken);

private:
  unsigned index(uint64_t Pc) const;

  std::vector<SatCounter> Table;
  unsigned Mask;
  unsigned HistMask;
  unsigned History = 0;
};

/// Branch target buffer (set-associative, LRU).
class Btb {
public:
  Btb(unsigned Entries, unsigned Assoc);

  /// Predicted target for the branch at \p Pc, or 0 on a BTB miss.
  uint64_t predict(uint64_t Pc) const;

  /// Installs/updates the target of the branch at \p Pc.
  void update(uint64_t Pc, uint64_t Target);

private:
  struct Entry {
    uint64_t Tag = 0;
    uint64_t Target = 0;
    uint64_t Lru = 0;
    bool Valid = false;
  };
  std::vector<Entry> Entries;
  unsigned NumSets;
  unsigned Assoc;
  uint64_t Stamp = 0;
};

/// Conventional return address stack.
class ReturnAddressStack {
public:
  explicit ReturnAddressStack(unsigned Entries) : Stack(Entries) {}

  void push(uint64_t Addr) {
    Top = (Top + 1) % Stack.size();
    Stack[Top] = Addr;
    if (Depth < Stack.size())
      ++Depth;
  }

  /// Pops the predicted return address (0 when empty).
  uint64_t pop() {
    if (Depth == 0)
      return 0;
    uint64_t Addr = Stack[Top];
    Top = (Top + Stack.size() - 1) % Stack.size();
    --Depth;
    return Addr;
  }

private:
  std::vector<uint64_t> Stack;
  size_t Top = 0;
  size_t Depth = 0;
};

/// The dual-address RAS (Section 3.2): entries pair the V-ISA return
/// address with the corresponding translated (I-ISA) return address. On a
/// return, the popped pair predicts the next I-fetch address; the V-ISA
/// half is checked against the return instruction's register value.
class DualAddressRas {
public:
  explicit DualAddressRas(unsigned Entries) : Stack(Entries) {}

  struct Pair {
    uint64_t VAddr = 0;
    uint64_t IAddr = 0;
  };

  void push(uint64_t VAddr, uint64_t IAddr) {
    Top = (Top + 1) % Stack.size();
    Stack[Top] = {VAddr, IAddr};
    if (Depth < Stack.size())
      ++Depth;
  }

  /// Pops a prediction; returns false when the stack is empty.
  bool pop(Pair &Out) {
    if (Depth == 0)
      return false;
    Out = Stack[Top];
    Top = (Top + Stack.size() - 1) % Stack.size();
    --Depth;
    return true;
  }

private:
  std::vector<Pair> Stack;
  size_t Top = 0;
  size_t Depth = 0;
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_PREDICTORS_H
