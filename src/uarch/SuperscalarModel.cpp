//===- uarch/SuperscalarModel.cpp - Out-of-order superscalar timing -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/SuperscalarModel.h"

using namespace ildp;
using namespace ildp::uarch;

SuperscalarModel::SuperscalarModel(const SuperscalarParams &P,
                                   bool ConventionalRas)
    : Params(P), Mem(P.Memory, /*Seed=*/11), DCache(P.DCache, /*Seed=*/13),
      Front(P.Front, Mem, ConventionalRas), IssueSlots(P.IssueWidth),
      CommitSlots(P.Width), RobRing(P.RobSize, 0) {}

void SuperscalarModel::beginSegment() {
  // Empty pipeline: fetch restarts after everything in flight drains.
  Front.startSegment(LastCommit + 1);
  ++Stats.Segments;
}

unsigned SuperscalarModel::loadLatency(uint64_t Addr) {
  if (DCache.access(Addr))
    return Params.DCache.HitLatency;
  ++Stats.DCacheMisses;
  return Params.DCache.HitLatency + Mem.missLatency(Addr);
}

void SuperscalarModel::consume(const TraceOp &Op) {
  // ROB occupancy: the window entry of the instruction RobSize back must
  // have committed before this one can enter.
  uint64_t RobFree = RobRing[OpIndex % Params.RobSize];
  if (RobFree)
    Front.clampFetch(RobFree > Params.Front.FrontPipeDepth
                         ? RobFree - Params.Front.FrontPipeDepth
                         : 0);

  FrontEnd::Fetched Fetch = Front.next(Op);
  uint64_t Dispatch = std::max(Fetch.DispatchCycle, RobFree);

  // Operand readiness.
  uint64_t Ready = Dispatch;
  if (Op.Src1 != NoTraceReg)
    Ready = std::max(Ready, RegReady[Op.Src1]);
  if (Op.Src2 != NoTraceReg)
    Ready = std::max(Ready, RegReady[Op.Src2]);

  uint64_t Issue = IssueSlots.findSlot(std::max(Ready, Dispatch + 1));

  unsigned Latency = 1;
  switch (Op.Class) {
  case OpClass::IntMul:
    Latency = Params.MulLatency;
    break;
  case OpClass::Load:
    ++Stats.Loads;
    Latency = 1 + loadLatency(Op.MemAddr);
    break;
  case OpClass::Store:
    ++Stats.Stores;
    // Stores write the cache at commit; latency off the critical path.
    DCache.access(Op.MemAddr);
    break;
  default:
    break;
  }
  uint64_t Complete = Issue + Latency;

  if (Op.Dest != NoTraceReg)
    RegReady[Op.Dest] = Complete;

  // In-order commit, Width per cycle.
  uint64_t Commit =
      CommitSlots.findSlot(std::max(Complete + 1, LastCommit));
  LastCommit = std::max(LastCommit, Commit);
  RobRing[OpIndex % Params.RobSize] = Commit;
  ++OpIndex;

  ++Stats.Insts;
  Stats.VInsts += Op.VCredit;

  if (Fetch.NeedResolveRedirect)
    Front.redirect(Complete);
}

uint64_t SuperscalarModel::finish() {
  Stats.Cycles = LastCommit;
  return LastCommit;
}
