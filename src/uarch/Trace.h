//===- uarch/Trace.h - Committed-instruction trace format -----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The committed-instruction stream consumed by the timing models. The VM
/// produces one TraceOp per executed instruction — V-ISA instructions for
/// the "original" superscalar runs, I-ISA (or straightened-Alpha)
/// instructions plus chaining/dispatch overhead for DBT runs — and streams
/// them into a TimingModel. Timing is trace-driven: functional execution is
/// the single source of truth and both microarchitectures see identical
/// streams (see DESIGN.md, key decisions).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_TRACE_H
#define ILDP_UARCH_TRACE_H

#include <cstdint>

namespace ildp {
namespace uarch {

/// Operation classes relevant to timing.
enum class OpClass : uint8_t {
  IntAlu,   ///< Single-cycle integer operation.
  IntMul,   ///< Integer multiply.
  Load,
  Store,
  CondBr,   ///< Conditional branch (direction-predicted).
  DirectBr, ///< Unconditional direct branch (always taken).
  Indirect, ///< Register-indirect jump (BTB target-predicted).
  Return,   ///< Return (RAS-predicted).
};

constexpr uint8_t NoTraceReg = 0xFF;
/// Unified register-id space for dependence tracking: 0..63 = I-ISA GPRs
/// (0..31 architected), 64..71 = accumulators, NoTraceReg = none.
constexpr uint8_t TraceAccBase = 64;

/// One committed instruction.
struct TraceOp {
  OpClass Class = OpClass::IntAlu;
  uint64_t Pc = 0;       ///< Fetch address (V-PC or translation-cache I-PC).
  uint8_t SizeBytes = 4; ///< Instruction size (I-cache accounting).
  uint64_t MemAddr = 0;  ///< Effective address (loads/stores).

  bool Taken = false;    ///< Actual direction of control transfers.
  uint64_t NextPc = 0;   ///< Actual successor address.

  uint8_t Src1 = NoTraceReg; ///< Unified source register ids.
  uint8_t Src2 = NoTraceReg;
  uint8_t Dest = NoTraceReg; ///< Unified destination register id.

  // ---- ILDP steering / hierarchy info ----
  uint8_t StrandAcc = NoTraceReg; ///< Destination accumulator (strand id).
  bool AccIn = false;  ///< Reads its strand's accumulator (stays on-PE).
  bool GprWriteArchOnly = false; ///< Modified-ISA shadow-file-only write.

  // ---- Return-address-stack info ----
  bool RasPush = false; ///< Call: pushes a return address.
  bool RasHitKnown = false; ///< Return under the dual-address RAS: the VM
                            ///< resolved the prediction architecturally.
  bool RasHit = false;      ///< Valid when RasHitKnown.

  uint8_t VCredit = 0; ///< V-ISA instructions retired with this op.
};

/// A streaming timing-model interface. beginSegment() marks a pipeline
/// drain/refill boundary (the paper starts timing with an empty pipeline
/// whenever control re-enters translated code, Section 4.1).
class TimingModel {
public:
  virtual ~TimingModel() = default;
  virtual void beginSegment() = 0;
  virtual void consume(const TraceOp &Op) = 0;
  /// Completes all in-flight work and returns the final cycle count.
  virtual uint64_t finish() = 0;
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_TRACE_H
