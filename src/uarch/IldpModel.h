//===- uarch/IldpModel.h - ILDP distributed microarchitecture timing ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ILDP machine (Table 1, right column; Kim & Smith ISCA 2002): a
/// 4-wide pipelined front end steering instructions by accumulator number
/// into 4/6/8 processing elements. Each PE has an in-order issue FIFO, a
/// local physical accumulator, a local copy of the GPR file, and a
/// replicated L1 data cache. Values communicated between PEs through GPRs
/// incur the global communication latency (0 or 2 cycles); intra-strand
/// accumulator values are PE-local and free. A shared 128-entry ROB
/// commits 4 per cycle. Architected-state-only GPR writes (modified ISA)
/// bypass the critical-path communication network entirely — they retire
/// to the shadow file (Section 2.3).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_ILDPMODEL_H
#define ILDP_UARCH_ILDPMODEL_H

#include "uarch/FrontEnd.h"
#include "uarch/SlotRing.h"
#include "uarch/SuperscalarModel.h" // PipelineStats

#include <memory>
#include <vector>

namespace ildp {
namespace uarch {

/// Trace-driven ILDP pipeline model.
class IldpModel : public TimingModel {
public:
  explicit IldpModel(const IldpParams &Params);

  void beginSegment() override;
  void consume(const TraceOp &Op) override;
  uint64_t finish() override;

  const PipelineStats &stats() const { return Stats; }
  const FrontEndStats &frontEndStats() const { return Front.stats(); }

  /// Steering statistics: instructions that continued on their strand's PE.
  uint64_t strandContinuations() const { return Continuations; }

private:
  IldpParams Params;
  MemorySide Mem;
  FrontEnd Front;
  SlotRing CommitSlots;

  struct Pe {
    std::unique_ptr<Cache> DCache; ///< Replicated L1 data cache.
    uint64_t LastIssue = 0;
    /// Issue cycles of the last FifoDepth ops (FIFO occupancy).
    std::vector<uint64_t> FifoRing;
    uint64_t FifoIndex = 0;
  };
  std::vector<Pe> Pes;

  std::vector<uint64_t> RobRing;
  uint64_t OpIndex = 0;
  uint64_t LastCommit = 0;
  /// Dispatch is in order: a full target FIFO stalls everything behind it.
  uint64_t LastDispatch = 0;

  /// Accumulator state: completion time of the last writer and its PE.
  std::array<uint64_t, 8> AccReady{};
  std::array<int, 8> AccPe{};
  /// GPR state: completion time and producing PE (-1 = start of time,
  /// available everywhere).
  std::array<uint64_t, 64> GprReady{};
  std::array<int, 64> GprPe{};

  unsigned RoundRobin = 0;
  uint64_t Continuations = 0;
  PipelineStats Stats;

  unsigned loadLatency(unsigned PeIdx, uint64_t Addr);
  unsigned steer(const TraceOp &Op);
  uint64_t gprReadyAt(uint8_t Reg, unsigned PeIdx) const;
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_ILDPMODEL_H
