//===- uarch/Cache.cpp - Set-associative cache model ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/Cache.h"

#include "support/BitUtil.h"

#include <cassert>

using namespace ildp;
using namespace ildp::uarch;

Cache::Cache(const CacheParams &P, uint64_t Seed) : Params(P), Rand(Seed) {
  assert(isPowerOf2(P.LineBytes) && "Line size must be a power of two");
  unsigned Lines = P.SizeBytes / P.LineBytes;
  assert(P.Assoc >= 1 && Lines >= P.Assoc && "Bad cache geometry");
  NumSets = Lines / P.Assoc;
  assert(isPowerOf2(NumSets) && "Set count must be a power of two");
  LineShift = log2Floor(P.LineBytes);
  Ways.resize(size_t(NumSets) * P.Assoc);
}

Cache::Way *Cache::findLine(uint64_t Addr) {
  uint64_t Line = Addr >> LineShift;
  unsigned Set = unsigned(Line & (NumSets - 1));
  uint64_t Tag = Line >> log2Floor(NumSets);
  Way *Base = &Ways[size_t(Set) * Params.Assoc];
  for (unsigned W = 0; W != Params.Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return &Base[W];
  return nullptr;
}

const Cache::Way *Cache::findLine(uint64_t Addr) const {
  return const_cast<Cache *>(this)->findLine(Addr);
}

bool Cache::access(uint64_t Addr) {
  ++Stamp;
  if (Way *Line = findLine(Addr)) {
    Line->Lru = Stamp;
    ++Hits;
    return true;
  }
  ++Misses;
  uint64_t LineAddr = Addr >> LineShift;
  unsigned Set = unsigned(LineAddr & (NumSets - 1));
  uint64_t Tag = LineAddr >> log2Floor(NumSets);
  Way *Base = &Ways[size_t(Set) * Params.Assoc];

  Way *Victim = nullptr;
  for (unsigned W = 0; W != Params.Assoc; ++W) {
    if (!Base[W].Valid) {
      Victim = &Base[W];
      break;
    }
  }
  if (!Victim) {
    if (Params.RandomRepl) {
      Victim = &Base[Rand.nextBelow(Params.Assoc)];
    } else {
      Victim = &Base[0];
      for (unsigned W = 1; W != Params.Assoc; ++W)
        if (Base[W].Lru < Victim->Lru)
          Victim = &Base[W];
    }
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Lru = Stamp;
  return false;
}

bool Cache::probe(uint64_t Addr) const { return findLine(Addr) != nullptr; }

void Cache::invalidate(uint64_t Addr) {
  if (Way *Line = findLine(Addr))
    Line->Valid = false;
}
