//===- uarch/Predictors.cpp - Branch prediction structures ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/Predictors.h"

#include "support/BitUtil.h"

#include <cassert>

using namespace ildp;
using namespace ildp::uarch;

GsharePredictor::GsharePredictor(unsigned Entries, unsigned HistBits) {
  assert(isPowerOf2(Entries) && "G-share table size must be a power of two");
  assert(HistBits <= log2Floor(Entries) && "History wider than the index");
  Table.assign(Entries, SatCounter(2, 1)); // Weakly not-taken.
  Mask = Entries - 1;
  HistMask = (1u << HistBits) - 1;
}

unsigned GsharePredictor::index(uint64_t Pc) const {
  return (unsigned(Pc >> 2) ^ History) & Mask;
}

bool GsharePredictor::predict(uint64_t Pc) const {
  return Table[index(Pc)].predictTaken();
}

void GsharePredictor::update(uint64_t Pc, bool Taken) {
  Table[index(Pc)].update(Taken);
  History = ((History << 1) | unsigned(Taken)) & HistMask;
}

Btb::Btb(unsigned NumEntries, unsigned Associativity)
    : Entries(NumEntries), NumSets(NumEntries / Associativity),
      Assoc(Associativity) {
  assert(isPowerOf2(NumSets) && "BTB set count must be a power of two");
}

uint64_t Btb::predict(uint64_t Pc) const {
  uint64_t Line = Pc >> 2;
  unsigned Set = unsigned(Line & (NumSets - 1));
  uint64_t Tag = Line >> log2Floor(NumSets);
  const Entry *Base = &Entries[size_t(Set) * Assoc];
  for (unsigned W = 0; W != Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return Base[W].Target;
  return 0;
}

void Btb::update(uint64_t Pc, uint64_t Target) {
  ++Stamp;
  uint64_t Line = Pc >> 2;
  unsigned Set = unsigned(Line & (NumSets - 1));
  uint64_t Tag = Line >> log2Floor(NumSets);
  Entry *Base = &Entries[size_t(Set) * Assoc];
  for (unsigned W = 0; W != Assoc; ++W) {
    Entry &E = Base[W];
    if (E.Valid && E.Tag == Tag) {
      E.Target = Target;
      E.Lru = Stamp;
      return;
    }
  }
  Entry *Victim = nullptr;
  for (unsigned W = 0; W != Assoc; ++W) {
    Entry &E = Base[W];
    if (!E.Valid) {
      Victim = &E;
      break;
    }
    if (!Victim || E.Lru < Victim->Lru)
      Victim = &E;
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Target = Target;
  Victim->Lru = Stamp;
}
