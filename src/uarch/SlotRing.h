//===- uarch/SlotRing.h - Per-cycle bandwidth slots -----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ring of per-cycle slot counters used to model issue/commit bandwidth
/// in the one-pass trace-driven pipeline models: findSlot() returns the
/// first cycle at or after a lower bound with spare bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_SLOTRING_H
#define ILDP_UARCH_SLOTRING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ildp {
namespace uarch {

/// Bounded-width per-cycle resource.
class SlotRing {
public:
  explicit SlotRing(unsigned Width, size_t RingSize = 8192)
      : Width(Width), Cycle(RingSize, ~uint64_t(0)), Count(RingSize, 0) {}

  /// First cycle >= \p Earliest with a free slot; claims it.
  uint64_t findSlot(uint64_t Earliest) {
    uint64_t C = Earliest;
    for (;;) {
      size_t Idx = C % Cycle.size();
      if (Cycle[Idx] != C) {
        Cycle[Idx] = C;
        Count[Idx] = 0;
      }
      if (Count[Idx] < Width) {
        ++Count[Idx];
        return C;
      }
      ++C;
    }
  }

private:
  unsigned Width;
  std::vector<uint64_t> Cycle;
  std::vector<unsigned> Count;
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_SLOTRING_H
