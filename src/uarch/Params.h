//===- uarch/Params.h - Table 1 microarchitecture parameters --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Table 1 machine configurations: the idealized 4-way
/// out-of-order superscalar reference and the ILDP microarchitecture with
/// 4/6/8 processing elements, replicated L1 data caches, and explicit
/// global communication latency.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_PARAMS_H
#define ILDP_UARCH_PARAMS_H

#include <cstdint>

namespace ildp {
namespace uarch {

/// Cache geometry.
struct CacheParams {
  unsigned LineBytes = 64;
  unsigned Assoc = 4;        ///< 1 = direct-mapped.
  unsigned SizeBytes = 32 * 1024;
  unsigned HitLatency = 2;
  bool RandomRepl = false;   ///< Random vs LRU replacement.
};

/// Shared front-end parameters (both machines, Table 1 top rows).
struct FrontEndParams {
  unsigned FetchWidth = 4;
  unsigned MaxBlocksPerCycle = 3; ///< Up to 3 sequential basic blocks.
  unsigned GshareEntries = 16 * 1024;
  unsigned GshareHistBits = 12;
  unsigned BtbEntries = 512;
  unsigned BtbAssoc = 4;
  unsigned RasEntries = 8;
  unsigned RedirectLatency = 3; ///< Misfetch and misprediction redirection.
  CacheParams ICache{/*LineBytes=*/128, /*Assoc=*/1,
                     /*SizeBytes=*/32 * 1024, /*HitLatency=*/1,
                     /*RandomRepl=*/false};
  unsigned FrontPipeDepth = 3; ///< Fetch-to-dispatch stages.
};

/// Memory-side latencies shared by both machines.
struct MemoryParams {
  CacheParams L2{/*LineBytes=*/128, /*Assoc=*/4,
                 /*SizeBytes=*/1024 * 1024, /*HitLatency=*/8,
                 /*RandomRepl=*/true};
  unsigned MemLatency = 76; ///< 72-cycle latency + 4-cycle burst.
};

/// The idealized out-of-order superscalar (original / straightened runs).
struct SuperscalarParams {
  FrontEndParams Front;
  MemoryParams Memory;
  CacheParams DCache{/*LineBytes=*/64, /*Assoc=*/4,
                     /*SizeBytes=*/32 * 1024, /*HitLatency=*/2,
                     /*RandomRepl=*/true};
  unsigned RobSize = 128; ///< Issue window size == ROB size.
  unsigned Width = 4;     ///< Decode/retire bandwidth.
  unsigned IssueWidth = 4;
  unsigned NumFus = 4;    ///< Fully symmetric functional units.
  unsigned MulLatency = 7;
};

/// The ILDP distributed microarchitecture.
struct IldpParams {
  FrontEndParams Front;
  MemoryParams Memory;
  /// Replicated per-PE L1 data cache: 32KB/4-way (same as the superscalar)
  /// or the 8KB/2-way small option.
  CacheParams DCache{/*LineBytes=*/64, /*Assoc=*/4,
                     /*SizeBytes=*/32 * 1024, /*HitLatency=*/2,
                     /*RandomRepl=*/true};
  unsigned NumPEs = 8;      ///< 4, 6, or 8 processing elements.
  unsigned CommLatency = 0; ///< Global (inter-PE) communication latency.
  unsigned RobSize = 128;
  unsigned Width = 4;       ///< Decode/retire bandwidth.
  unsigned MulLatency = 7;
  unsigned FifoDepth = 32;  ///< Per-PE issue FIFO capacity.

  /// The paper's 8KB replicated cache option.
  void useSmallDCache() {
    DCache.SizeBytes = 8 * 1024;
    DCache.Assoc = 2;
  }
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_PARAMS_H
