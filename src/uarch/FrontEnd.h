//===- uarch/FrontEnd.h - Shared fetch/predict front end ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction-fetch front end shared by the superscalar and ILDP
/// timing models: fetch bandwidth (4 wide, up to 3 sequential basic blocks
/// per cycle), the direct-mapped I-cache, the g-share/BTB/RAS prediction
/// structures, and the 3-cycle misfetch/misprediction redirection of
/// Table 1. For DBT runs the dual-address RAS outcome arrives pre-resolved
/// on the trace op (the VM models the structure architecturally).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_UARCH_FRONTEND_H
#define ILDP_UARCH_FRONTEND_H

#include "uarch/Cache.h"
#include "uarch/Predictors.h"
#include "uarch/Trace.h"

namespace ildp {
namespace uarch {

/// Front-end statistics (Figure 4's misprediction taxonomy).
struct FrontEndStats {
  uint64_t ControlOps = 0;
  uint64_t CondBranches = 0;
  uint64_t CondMispredicts = 0;
  uint64_t TargetMispredicts = 0; ///< Indirect-jump target mispredictions.
  uint64_t RasMispredicts = 0;
  uint64_t Misfetches = 0; ///< Taken branch with BTB miss/wrong target.
  uint64_t ICacheAccesses = 0;
  uint64_t ICacheMisses = 0;

  uint64_t totalMispredicts() const {
    return CondMispredicts + TargetMispredicts + RasMispredicts;
  }
};

/// One-pass trace-driven fetch model.
class FrontEnd {
public:
  /// \p UseConventionalRas: predict returns with the hardware RAS trained
  /// by RasPush ops (original-Alpha runs). When false, returns are either
  /// pre-resolved (dual-address RAS) or BTB-predicted like other indirect
  /// jumps.
  FrontEnd(const FrontEndParams &Params, MemorySide &Mem,
           bool UseConventionalRas);

  /// Marks a pipeline drain: fetch resumes empty at \p AtCycle.
  void startSegment(uint64_t AtCycle);

  struct Fetched {
    uint64_t DispatchCycle = 0;
    /// The op was mispredicted; the backend must call redirect() with its
    /// resolve cycle before fetching further.
    bool NeedResolveRedirect = false;
  };

  /// Fetches the next trace op and returns its dispatch cycle.
  Fetched next(const TraceOp &Op);

  /// Applies the resolve-time redirect for the op that requested it.
  void redirect(uint64_t ResolveCycle);

  /// Back-pressure from the window/ROB: fetch cannot run ahead.
  void clampFetch(uint64_t MinFetchCycle) {
    if (FetchCycle < MinFetchCycle)
      FetchCycle = MinFetchCycle;
  }

  uint64_t fetchCycle() const { return FetchCycle; }
  const FrontEndStats &stats() const { return Stats; }

private:
  FrontEndParams Params;
  MemorySide &Mem;
  bool UseConventionalRas;

  Cache ICache;
  GsharePredictor Gshare;
  Btb TargetBuffer;
  ReturnAddressStack Ras;

  uint64_t FetchCycle = 0;
  unsigned FetchedThisCycle = 0;
  unsigned BlocksThisCycle = 0;
  bool BreakPending = false; ///< Last op was a taken transfer.
  uint64_t CurLine = ~uint64_t(0);

  FrontEndStats Stats;

  void advanceCycle() {
    ++FetchCycle;
    FetchedThisCycle = 0;
    BlocksThisCycle = 0;
  }
};

} // namespace uarch
} // namespace ildp

#endif // ILDP_UARCH_FRONTEND_H
