//===- include/ildp/ildp.h - Umbrella header ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella header pulling in the whole public API. For
/// fine-grained builds include the per-library headers directly (each is
/// self-contained); the include path is the repository's `src/` directory.
///
/// Layering (each layer depends only on those above it):
///   support  -> statistics, tables, RNG, bit utilities
///   mem      -> guest memory
///   alpha    -> the V-ISA: decode/encode/assemble/disassemble/semantics
///   interp   -> the reference functional interpreter
///   iisa     -> the accumulator I-ISA and its functional executor
///   core     -> the dynamic binary translator (the paper's contribution)
///   persist  -> the persistent translation cache (warm-start files)
///   native   -> the native-host execution tier (emit-C + dlopen)
///   uarch    -> the ILDP and superscalar timing models
///   vm       -> the co-designed virtual machine driver
///   workloads-> the synthetic SPEC CPU2000 stand-ins
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_ILDP_H
#define ILDP_ILDP_H

// Support utilities.
#include "support/BitUtil.h"
#include "support/Rng.h"
#include "support/SatCounter.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

// Guest memory.
#include "mem/GuestMemory.h"

// The Alpha V-ISA.
#include "alpha/AlphaInst.h"
#include "alpha/AlphaIsa.h"
#include "alpha/Assembler.h"
#include "alpha/Decoder.h"
#include "alpha/Disasm.h"
#include "alpha/Encoder.h"
#include "alpha/Semantics.h"

// The reference interpreter.
#include "interp/ArchState.h"
#include "interp/Interpreter.h"

// The accumulator-oriented I-ISA.
#include "iisa/Disasm.h"
#include "iisa/Encoding.h"
#include "iisa/Executor.h"
#include "iisa/IisaInst.h"

// The dynamic binary translator.
#include "core/CodeGen.h"
#include "core/Config.h"
#include "core/Fragment.h"
#include "core/Lowering.h"
#include "core/ProfileController.h"
#include "core/StrandAlloc.h"
#include "core/Superblock.h"
#include "core/SuperblockBuilder.h"
#include "core/TranslationCache.h"
#include "core/Translator.h"
#include "core/TrapRecovery.h"
#include "core/Uop.h"
#include "core/UsageAnalysis.h"

// The persistent translation cache (warm starts).
#include "persist/ByteStream.h"
#include "persist/CacheFile.h"
#include "persist/Crc32.h"
#include "persist/Fingerprint.h"
#include "persist/FragmentCodec.h"

// The native-host execution tier.
#include "native/NativeAbi.h"
#include "native/NativeCompiler.h"
#include "native/NativeEmitter.h"
#include "native/NativeExec.h"
#include "native/NativeModule.h"
#include "native/NativeService.h"
#include "native/NativeStore.h"

// Timing models.
#include "uarch/Cache.h"
#include "uarch/FrontEnd.h"
#include "uarch/IldpModel.h"
#include "uarch/Params.h"
#include "uarch/Predictors.h"
#include "uarch/SuperscalarModel.h"
#include "uarch/Trace.h"

// The co-designed virtual machine.
#include "vm/VirtualMachine.h"

// Synthetic workloads.
#include "workloads/Workloads.h"

#endif // ILDP_ILDP_H
