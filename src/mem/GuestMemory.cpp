//===- mem/GuestMemory.cpp - Sparse guest address space -------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mem/GuestMemory.h"

#include <algorithm>
#include <cstring>

using namespace ildp;

uint8_t *GuestMemory::pageFor(uint64_t Addr, bool Allocate) {
  uint64_t PageIndex = Addr >> PageShift;
  auto It = Pages.find(PageIndex);
  if (It != Pages.end())
    return It->second.get();
  if (!Allocate)
    return nullptr;
  auto Page = std::make_unique<uint8_t[]>(PageSize);
  std::memset(Page.get(), 0, PageSize);
  uint8_t *Raw = Page.get();
  Pages.emplace(PageIndex, std::move(Page));
  return Raw;
}

const uint8_t *GuestMemory::pageFor(uint64_t Addr) const {
  auto It = Pages.find(Addr >> PageShift);
  return It == Pages.end() ? nullptr : It->second.get();
}

void GuestMemory::mapRegion(uint64_t Base, uint64_t Size) {
  if (Size == 0)
    return;
  uint64_t First = Base >> PageShift;
  uint64_t Last = (Base + Size - 1) >> PageShift;
  for (uint64_t Index = First; Index <= Last; ++Index)
    (void)pageFor(Index << PageShift, /*Allocate=*/true);
}

bool GuestMemory::isMapped(uint64_t Addr) const {
  return pageFor(Addr) != nullptr;
}

MemAccessResult GuestMemory::load(uint64_t Addr, unsigned Size) const {
  MemAccessResult Result;
  if (Size != 1 && Size != 2 && Size != 4 && Size != 8) {
    Result.Fault = MemFaultKind::BadSize;
    return Result;
  }
  if (Addr & (Size - 1)) {
    Result.Fault = MemFaultKind::Unaligned;
    return Result;
  }
  const uint8_t *Page = pageFor(Addr);
  if (!Page) {
    Result.Fault = MemFaultKind::Unmapped;
    return Result;
  }
  // Natural alignment guarantees the access does not cross a page boundary.
  uint64_t Offset = Addr & (PageSize - 1);
  uint64_t Value = 0;
  for (unsigned I = 0; I != Size; ++I)
    Value |= uint64_t(Page[Offset + I]) << (8 * I);
  Result.Value = Value;
  return Result;
}

MemFaultKind GuestMemory::store(uint64_t Addr, uint64_t Value, unsigned Size) {
  if (Size != 1 && Size != 2 && Size != 4 && Size != 8)
    return MemFaultKind::BadSize;
  if (Addr & (Size - 1))
    return MemFaultKind::Unaligned;
  uint8_t *Page = pageFor(Addr, /*Allocate=*/false);
  if (!Page)
    return MemFaultKind::Unmapped;
  uint64_t Offset = Addr & (PageSize - 1);
  for (unsigned I = 0; I != Size; ++I)
    Page[Offset + I] = uint8_t(Value >> (8 * I));
  return MemFaultKind::None;
}

void GuestMemory::writeBlob(uint64_t Addr, const void *Data, uint64_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  for (uint64_t I = 0; I != Size; ++I) {
    uint8_t *Page = pageFor(Addr + I, /*Allocate=*/true);
    Page[(Addr + I) & (PageSize - 1)] = Bytes[I];
  }
}

std::vector<uint64_t> GuestMemory::mappedPageBases() const {
  std::vector<uint64_t> Bases;
  Bases.reserve(Pages.size());
  for (const auto &[Index, Page] : Pages)
    Bases.push_back(Index << PageShift);
  std::sort(Bases.begin(), Bases.end());
  return Bases;
}

const uint8_t *GuestMemory::pageData(uint64_t PageBase) const {
  if (PageBase & (PageSize - 1))
    return nullptr;
  return pageFor(PageBase);
}

void GuestMemory::poke8(uint64_t Addr, uint8_t Value) {
  writeBlob(Addr, &Value, 1);
}

void GuestMemory::poke32(uint64_t Addr, uint32_t Value) {
  uint8_t Bytes[4];
  for (unsigned I = 0; I != 4; ++I)
    Bytes[I] = uint8_t(Value >> (8 * I));
  writeBlob(Addr, Bytes, 4);
}

void GuestMemory::poke64(uint64_t Addr, uint64_t Value) {
  uint8_t Bytes[8];
  for (unsigned I = 0; I != 8; ++I)
    Bytes[I] = uint8_t(Value >> (8 * I));
  writeBlob(Addr, Bytes, 8);
}
