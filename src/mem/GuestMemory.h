//===- mem/GuestMemory.h - Sparse guest address space ---------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse, page-granular 64-bit guest memory image shared by the Alpha
/// interpreter, the I-ISA functional executor, and the workload loader.
///
/// Accesses outside mapped pages and misaligned accesses report faults
/// instead of aborting: these are exactly the potentially-excepting events
/// (PEIs) the paper's precise-trap machinery (Section 2.2) must recover
/// from, and the trap tests inject them deliberately.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_MEM_GUESTMEMORY_H
#define ILDP_MEM_GUESTMEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ildp {

/// Why a guest memory access failed.
enum class MemFaultKind {
  None,      ///< Access succeeded.
  Unmapped,  ///< No page is mapped at the address.
  Unaligned, ///< Address not naturally aligned for the access size.
  BadSize,   ///< Access size is not 1, 2, 4, or 8 bytes.
};

/// Result of a guest load: the value plus the fault status.
struct MemAccessResult {
  uint64_t Value = 0;
  MemFaultKind Fault = MemFaultKind::None;

  bool ok() const { return Fault == MemFaultKind::None; }
};

/// Sparse paged little-endian guest memory.
///
/// Pages are allocated on demand by mapRegion() (or implicitly by the
/// poke*() test helpers). Regular load()/store() never allocate: they fault
/// on unmapped addresses, which the VM turns into precise traps.
class GuestMemory {
public:
  static constexpr unsigned PageShift = 12;
  static constexpr uint64_t PageSize = uint64_t(1) << PageShift;

  GuestMemory() = default;

  // GuestMemory owns page storage: movable, not copyable.
  GuestMemory(const GuestMemory &) = delete;
  GuestMemory &operator=(const GuestMemory &) = delete;
  GuestMemory(GuestMemory &&) = default;
  GuestMemory &operator=(GuestMemory &&) = default;

  /// Maps (allocates and zeroes) all pages overlapping [Base, Base+Size).
  void mapRegion(uint64_t Base, uint64_t Size);

  /// Returns true if the byte at \p Addr is backed by a mapped page.
  bool isMapped(uint64_t Addr) const;

  /// Loads \p Size bytes (1, 2, 4, or 8) from \p Addr, little-endian.
  /// Requires natural alignment; faults otherwise. Any other size reports
  /// MemFaultKind::BadSize (a malformed guest encoding traps, it does not
  /// abort the host).
  MemAccessResult load(uint64_t Addr, unsigned Size) const;

  /// Stores the low \p Size bytes of \p Value at \p Addr, little-endian.
  /// Requires natural alignment; returns the fault status (BadSize for any
  /// size other than 1, 2, 4, or 8).
  MemFaultKind store(uint64_t Addr, uint64_t Value, unsigned Size);

  /// Copies a raw byte blob into guest memory, mapping pages as needed.
  void writeBlob(uint64_t Addr, const void *Data, uint64_t Size);

  /// Test/loader convenience: stores that map pages on demand.
  void poke8(uint64_t Addr, uint8_t Value);
  void poke32(uint64_t Addr, uint32_t Value);
  void poke64(uint64_t Addr, uint64_t Value);

  /// Fetches a 32-bit instruction word; instruction fetch requires 4-byte
  /// alignment on Alpha.
  MemAccessResult fetch32(uint64_t Addr) const { return load(Addr, 4); }

  /// Number of currently mapped pages (for footprint statistics).
  size_t mappedPageCount() const { return Pages.size(); }

  /// Base addresses of all mapped pages, sorted ascending. Deterministic
  /// order makes whole-image fingerprints (persistent translation cache)
  /// reproducible across runs.
  std::vector<uint64_t> mappedPageBases() const;

  /// Read-only bytes of the mapped page starting at \p PageBase (exactly
  /// PageSize bytes), or nullptr when unmapped or misaligned.
  const uint8_t *pageData(uint64_t PageBase) const;

private:
  uint8_t *pageFor(uint64_t Addr, bool Allocate);
  const uint8_t *pageFor(uint64_t Addr) const;

  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Pages;
};

} // namespace ildp

#endif // ILDP_MEM_GUESTMEMORY_H
