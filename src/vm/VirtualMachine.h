//===- vm/VirtualMachine.h - The co-designed virtual machine --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The co-designed VM of Figure 1: interpret/profile -> record ->
/// translate -> execute-translated, with mode switching exactly as
/// Section 4.1 describes. Detailed timing covers translated code only
/// (including all chaining and dispatch code); every re-entry into
/// translated execution starts the pipeline empty.
///
/// The VM also models the architecturally visible parts of chaining: the
/// shared dispatch code (20 instructions ending in an indirect jump at a
/// fixed translation-cache location — hence the single-BTB-entry pathology
/// of Section 4.3), the exit stubs, and the proposed dual-address return
/// address stack.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_VM_VIRTUALMACHINE_H
#define ILDP_VM_VIRTUALMACHINE_H

#include "core/Config.h"
#include "core/ProfileController.h"
#include "core/TranslateStatus.h"
#include "core/TranslationCache.h"
#include "core/TranslationService.h"
#include "core/TrapRecovery.h"
#include "interp/Interpreter.h"
#include "support/FixedRing.h"
#include "support/Statistics.h"
#include "uarch/Trace.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace ildp {
namespace persist {
class CacheStore;
}
namespace native {
class NativeService;
struct NativeCompletion;
}
namespace vm {

/// VM run configuration.
struct VmConfig {
  dbt::DbtConfig Dbt;
  /// Stop after this many guest (V-ISA) instructions, interpreted plus
  /// translated (safety net; workloads normally HALT first).
  uint64_t MaxGuestInsts = 400'000'000;

  /// Dynamo-style translation-cache flushing on program phase changes
  /// (Section 4.1 notes the paper's system lacks this and may pay for it):
  /// when fragment creation accelerates past PhaseFragmentThreshold new
  /// fragments within PhaseWindow guest instructions, the whole cache is
  /// flushed and hot paths re-qualify, giving fragments a second chance to
  /// form along the new phase's paths.
  bool FlushOnPhaseChange = false;
  uint64_t PhaseWindow = 200'000;
  unsigned PhaseFragmentThreshold = 24;

  /// Persistent translation cache (warm start). When PersistPath is
  /// non-empty it names a multi-image cache *store* (persist::CacheStore,
  /// DESIGN.md §11): the VM fingerprints the guest image + DbtConfig at
  /// construction, looks its image up in the store by fingerprint before
  /// the first instruction executes (PersistLoad), and saves-or-updates
  /// only its own image slot when run() returns (PersistSave), leaving
  /// every other image's slot intact — one artifact warm-starts a whole
  /// fleet of guests. Legacy single-image cache files are detected by
  /// magic and imported under "persist.import_legacy"; the next save
  /// rewrites the path in store format. Any load problem — missing file,
  /// truncation, corruption, bad index, duplicate image — is counted in
  /// the statistics ("persist.*", typed under
  /// "persist.import_rejected.<reason>") and the run degrades to a normal
  /// cold start. A store miss (other images present, not this one) is a
  /// normal first run for this image, not a rejection.
  std::string PersistPath;
  bool PersistLoad = true;
  bool PersistSave = true;
  /// Shared read-only warm-start source (the fleet service, DESIGN.md
  /// §12): when set, the VM warm-starts by fingerprint lookup in this
  /// already-opened store instead of opening PersistPath itself — no file
  /// I/O, no lock file, no contention, one store image shared by every VM
  /// in a pool. Counted under "persist.store_readonly"; hits/misses and
  /// import rejections use the same "persist.*" taxonomy as the file
  /// path. The store must outlive the VM and must not be mutated while
  /// any VM reads it. Never saved to: PersistSave applies only to
  /// PersistPath (normally empty in this mode). Takes precedence over
  /// PersistPath when both are set.
  const persist::CacheStore *SharedStore = nullptr;
  /// Persist only fragments executed at least this many times (first slice
  /// of the translation-cache eviction roadmap item): cold fragments are
  /// dropped from the save and counted under
  /// "persist.fragments_skipped_cold". 0 persists everything. Applies to
  /// this VM's image slot only; other slots in the store are untouched.
  uint64_t PersistMinExecCount = 0;
  /// Bound on the number of image slots the store keeps at save time
  /// (0 = unbounded): oldest-written slots beyond the bound are dropped
  /// and counted under "persist.store_compacted".
  size_t PersistMaxImages = 0;

  /// Asynchronous background translation. When AsyncTranslate is set and
  /// TranslateWorkers > 0, superblock recording stays on the VM thread but
  /// the translation pipeline (lowering -> usage -> strands -> codegen)
  /// runs on a pool of worker threads; the interpreter keeps executing
  /// past a hot PC and completed fragments are drained — in submission
  /// order — at dispatch-loop safepoints. Execution, statistics (all but
  /// the "async.*" group), chaining, and the persisted cache are
  /// deterministic and identical to a synchronous run; only wall-clock
  /// dispatch-path stalls change. TranslateWorkers = 0 is the synchronous
  /// fallback, bit-identical to a VM without this feature.
  bool AsyncTranslate = false;
  unsigned TranslateWorkers = 0;
  /// Bound of the translation request queue (back-pressure: submission
  /// blocks the VM thread when this many requests are in flight).
  size_t TranslateQueueDepth = 64;

  /// Native-host execution tier (DESIGN.md §13). When NativeTier is set
  /// and a working host C compiler is found at startup, a fragment whose
  /// exec count crosses NativeThreshold is lowered to C, compiled to a
  /// shared object on NativeWorkers background threads (never blocking
  /// dispatch), dlopen'd, and thereafter entered through a function
  /// pointer instead of the I-ISA interpreter loop. Architected state is
  /// bit-identical to the interpretive tiers; side exits, traps, and any
  /// compile/load failure deopt to the I-ISA tier. Compiled objects ride
  /// the persistent store (keyed by fragment content + compile-command
  /// checksum), so warm starts skip host compilation entirely. With no
  /// toolchain ("native.no_toolchain") or NativeTier=false the VM runs
  /// exactly as without this feature. The native tier is bypassed while a
  /// timing model is attached: detailed timing simulates the I-ISA, and
  /// the two tiers' per-instruction event streams are not comparable.
  bool NativeTier = false;
  uint64_t NativeThreshold = 64;
  unsigned NativeWorkers = 1;
  /// Bound of the compile request queue. Unlike translation, submission
  /// never blocks: a full queue drops the request and the fragment simply
  /// re-qualifies on a later execution.
  size_t NativeQueueDepth = 16;

  /// Graceful degradation on translation failure (DESIGN.md §9). When a
  /// pipeline stage bails out, the VM keeps interpreting the entry and
  /// re-profiles it with its hot threshold multiplied by BlacklistBackoff
  /// per failure; after MaxTranslateRetries failed retries the entry is
  /// blacklisted and interpreted for the rest of the run.
  unsigned MaxTranslateRetries = 3;
  uint64_t BlacklistBackoff = 8;

  /// Hard byte budget for the translation cache (DESIGN.md §10). When an
  /// install would push the cache's total body bytes past this bound,
  /// exec-weighted-LRU victims are evicted (and every surviving chained
  /// exit into them unchained) until the new fragment fits; evicted-hot
  /// entries re-enter profiling with their counters intact. 0 (the
  /// default) disables eviction and is bit-identical to the unbounded
  /// cache. The VM clamps Dbt.MaxFragmentBytes to this value so a single
  /// fragment can never exceed the whole cache. Accounting lands in the
  /// "cache.*" statistics group.
  uint64_t CodeCacheBytes = 0;
};

/// Why the VM stopped.
enum class StopReason : uint8_t {
  Halted,
  Trapped,
  Budget,
};

/// Result of a VM run.
struct RunResult {
  StopReason Reason = StopReason::Halted;
  /// Valid when Reason == Trapped: the precisely recovered state.
  dbt::RecoveredState Trap;
};

/// The co-designed virtual machine.
class VirtualMachine {
public:
  VirtualMachine(GuestMemory &Mem, uint64_t EntryPc, const VmConfig &Config);
  ~VirtualMachine(); // Out of line: persist::CacheStore is incomplete here.

  /// Optional timing model; when set, all translated execution (fragments,
  /// stubs, dispatch) is streamed into it.
  void setTimingModel(uarch::TimingModel *Model) { Timing = Model; }

  /// Runs to completion (HALT), a precise trap, or the budget.
  RunResult run();

  /// Guest (V-ISA) instructions executed so far, both modes.
  uint64_t guestInsts() const { return GuestInsts; }

  /// Raises (or lowers) MaxGuestInsts for subsequent run() calls. A run()
  /// that stopped with StopReason::Budget is resumable: raise the budget
  /// and call run() again. The fleet service executes deadline-bounded
  /// requests as budget slices, checking the wall clock between slices.
  void setGuestInstBudget(uint64_t MaxInsts) {
    Config.MaxGuestInsts = MaxInsts;
  }

  /// Run statistics. Hot-path counters are synced into the set on call.
  const StatisticSet &stats();

  /// Per-request statistic attribution under VM reuse: everything the VM
  /// did since the previous statsDelta() call (since construction for the
  /// first call). Monotonic counters are subtracted exactly; the handful
  /// of gauges (current cache occupancy, high-water marks, worker counts
  /// — see GaugeStats in the implementation) are reported at their
  /// current value, because "fragments resident now" is per-VM state that
  /// a subtraction would silently misattribute across requests.
  StatisticSet statsDelta();
  dbt::TranslationCache &tcache() { return TCache; }
  const Interpreter &interpreter() const { return Interp; }

  /// Synthetic address of the shared dispatch code in the translation
  /// cache address space.
  static constexpr uint64_t DispatchIPc = 0x2F0000000ull;
  /// Synthetic address representing "exit to the translator/VM".
  static constexpr uint64_t TranslatorIPc = 0x2F8000000ull;
  /// Guest region used by the dispatch code's PC-translation-table loads.
  static constexpr uint64_t DispatchTableBase = 0x0F0000000ull;
  /// Instruction count of the shared dispatch sequence (Section 3.2).
  static constexpr unsigned DispatchInsts = 20;

private:
  GuestMemory &Mem;
  VmConfig Config;
  Interpreter Interp;
  dbt::ProfileController Profile;
  dbt::TranslationCache TCache;
  uarch::TimingModel *Timing = nullptr;
  StatisticSet Stats;

  /// Dual-address RAS (architectural model; Section 3.2). Entries hold the
  /// V-ISA return address; the paired I-ISA address is resolved against
  /// the translation cache at pop time. A fixed ring: pushes beyond the
  /// depth forget the deepest frame in O(1).
  static constexpr size_t DualRasDepth = 8;
  FixedRing<uint64_t> DualRas{DualRasDepth};

  uint64_t GuestInsts = 0; ///< V-ISA instructions executed (both modes).
  iisa::IExecState ExecState;
  /// GuestInsts stamps of recent fragment creations (flush heuristic). A
  /// fixed ring of the newest PhaseFragmentThreshold + 1 stamps — the
  /// flush decision only asks whether more than the threshold fall inside
  /// the window, so older stamps are dead weight.
  FixedRing<uint64_t> RecentCreates;
  uint64_t Flushes = 0;
  /// Fragments logically created since the last flush: installed ones
  /// plus, under async translation, those still pending. Equals
  /// TCache.fragmentCount() in synchronous operation; the phase-change
  /// heuristic uses it so both modes decide flushes identically.
  uint64_t LogicalFragments = 0;

  /// Hot-path counters (kept out of the string-keyed StatisticSet).
  struct HotCounters {
    uint64_t InterpInsts = 0;
    uint64_t Segments = 0;
    uint64_t FragInsts = 0;
    uint64_t VInstsTranslated = 0;
    uint64_t CopyInsts = 0;
    uint64_t SourceOps = 0;
    std::array<uint64_t, 9> Usage{}; ///< Indexed by iisa::UsageClass.
    uint64_t ExitChained = 0;
    uint64_t ExitChainedMissing = 0;
    uint64_t ExitTranslator = 0;
    uint64_t PredictHit = 0;
    uint64_t PredictHitUntranslated = 0;
    uint64_t PredictMiss = 0;
    uint64_t ExitDispatch = 0;
    uint64_t ReturnHit = 0;
    uint64_t ReturnMiss = 0;
    uint64_t ExitHalt = 0;
    uint64_t ExitTrap = 0;
    uint64_t StubInsts = 0;
    uint64_t DispatchCalls = 0;
    uint64_t DispatchInsts = 0;
    uint64_t RasPushes = 0;
  };
  HotCounters Hot;

  // ---- Bounded translation cache (CodeCacheBytes; DESIGN.md §10) ----
  /// Entries whose fragment was evicted and not yet re-translated; feeds
  /// the cache.retranslations statistic.
  std::unordered_set<uint64_t> EvictedEntries;
  uint64_t CacheRetranslations = 0;
  /// Asynchronous completions that drained after an eviction event their
  /// chainability snapshot predates (install() reconciles their exits).
  uint64_t EvictRaces = 0;
  /// Eviction listener body: un-marks the entry in the profiler (counters
  /// intact, so a hot entry re-qualifies on its next bump) and drops it
  /// from the async chain view.
  void onFragmentEvicted(const dbt::Fragment &Frag);
  /// Rebuilds profile marks, phase bookkeeping, and the async chain view
  /// after the cache degraded a failed eviction to a wholesale flush in
  /// the middle of an install.
  void handleDegradedFlush();

  /// Robustness accounting (translation bailouts and their fallout).
  struct RobustCounters {
    uint64_t Bailouts = 0; ///< Failed translation attempts, any reason.
    uint64_t Retries = 0;  ///< Attempts for an entry that failed before.
    /// Source instructions of failed superblocks: recording work that was
    /// interpreted and then thrown away, now served by the interpreter.
    uint64_t FallbackInsts = 0;
    std::array<uint64_t, dbt::NumTranslateStatuses> ByReason{};
  };
  RobustCounters Robust;

  // ---- Interpretation / profiling ----
  struct InterpOutcome {
    StepStatus Status;
    Trap TrapInfo;
    /// Set when interpretation stopped because \c Pc reached translated
    /// code; the caller executes it directly (no second cache probe).
    dbt::Fragment *Frag = nullptr;
  };
  InterpOutcome interpretUntilTranslated();
  void recordAndTranslate(uint64_t HotPc);
  /// Accounts a translation bailout for \p EntryPc and feeds it back into
  /// the profiler (backoff, eventually blacklisting). Never throws; the VM
  /// simply keeps interpreting the entry.
  void noteTranslateFailure(uint64_t EntryPc, dbt::TranslateStatus Status,
                            uint64_t SourceInsts);
  void installFragment(dbt::Fragment Frag);
  void maybePhaseFlush();
  void installPrepared(dbt::Fragment Frag);

  // ---- Asynchronous background translation ----
  //
  // The invariant that makes an async run statistic-for-statistic equal to
  // a synchronous one: every effect of a synchronous install that other
  // code can observe *before the fragment itself executes* (profile marks,
  // exit-target candidates, exit patching in live fragments, the phase
  // flush decision) happens at submission time — exactly the logical point
  // the synchronous translator installs — while the fragment body arrives
  // later and is installed, in submission order, before anything looks it
  // up (lookupSettled blocks on a pending entry).
  std::unique_ptr<dbt::TranslationService> Service;
  /// Entries submitted but not yet drained, by request sequence number.
  std::unordered_map<uint64_t, uint64_t> PendingSeqByEntry;
  /// Entries a new translation may chain to: installed plus pending.
  /// Snapshot-copied into each request (the worker must not see entries
  /// submitted after it).
  std::unordered_set<uint64_t> ChainView;
  /// Flush epoch; results from earlier epochs are accounted, not installed.
  uint64_t Epoch = 0;
  struct AsyncCounters {
    uint64_t Submitted = 0;
    uint64_t Installed = 0;
    uint64_t DiscardedStale = 0;
    uint64_t DemandWaits = 0;
    uint64_t InlineUnits = 0;    ///< Translator work paid on the VM thread.
    uint64_t OffloadedUnits = 0; ///< Translator work moved to the workers.
    uint64_t InstsDuringXlate = 0; ///< Guest insts retired while >=1 pending.
    uint64_t XlateStartInsts = 0;
  };
  AsyncCounters Async;
  void submitTranslation(dbt::Superblock Sb);
  void drainCompleted();
  void finishCompletion(dbt::TranslateCompletion C);
  void waitForSeq(uint64_t Seq);
  void drainAllOutstanding();
  /// TCache.lookup that first waits out a pending background translation
  /// of \p VAddr (a synchronous run would already have installed it).
  dbt::Fragment *lookupSettled(uint64_t VAddr);

  // ---- Native-host execution tier (src/native; DESIGN.md §13) ----
  /// Worker pool; null when the tier is off or no toolchain was found
  /// (every native code path is gated on this pointer).
  std::unique_ptr<native::NativeService> NativeSvc;
  /// Compiled objects by fragment content key: imported from the store at
  /// warm start plus compiled this run. Re-attach (after eviction and
  /// re-translation of an identical body, or for a same-key fragment at a
  /// different entry) is a map hit, never a recompile; the save path
  /// persists exactly this map.
  std::map<uint64_t, std::vector<uint8_t>> NativeObjects;
  struct NativeCounters {
    uint64_t Submitted = 0;      ///< Compile requests accepted.
    uint64_t Compiles = 0;       ///< Successful host compilations.
    uint64_t CompileFailed = 0;  ///< Emit refusals/faults/cc failures.
    uint64_t LoadFailed = 0;     ///< dlopen/dlsym/fault failures.
    uint64_t Installed = 0;      ///< Fresh-compile attaches.
    uint64_t Reattached = 0;     ///< Attaches served from NativeObjects.
    uint64_t PendingDrops = 0;   ///< Completions whose fragment was gone.
    uint64_t Runs = 0;           ///< Native body executions.
    uint64_t Insts = 0;          ///< I-ISA instructions executed natively.
    uint64_t ImportedObjects = 0;
    uint64_t NoToolchain = 0;    ///< 1 when enabled but no compiler found.
  };
  NativeCounters Nat;
  /// Frag.NativeKey, computed on first use and cached.
  uint64_t nativeKey(dbt::Fragment &Frag);
  /// Submits a compile (or re-attaches a known object) once \p Frag's
  /// exec count crosses NativeThreshold.
  void maybeNativeTierUp(dbt::Fragment *Frag);
  /// Drains finished compilations and attaches them (VM thread only; also
  /// called between body runs inside executeTranslated — safe, as attach
  /// never destroys a fragment).
  void drainNativeCompleted();
  /// dlopen + entry resolution + metadata; NativeLoad fault site. Marks
  /// the fragment failed (stays on the I-ISA tier) on any failure.
  bool attachNative(dbt::Fragment &Frag, const std::vector<uint8_t> &Object);
  /// Warm-start import of the image's native-object slot from \p St
  /// (typed rejects: native_stale / native_malformed).
  void importNativeObjects(const persist::CacheStore &St);

  // ---- Translated execution ----
  struct SegmentOutcome {
    enum class Kind { ToInterpreter, Halted, Trapped, Budget } K;
    uint64_t NextVPc = 0;
    dbt::RecoveredState Trap;
  };
  SegmentOutcome executeTranslated(dbt::Fragment *Frag);
  void emitFragmentTrace(const dbt::Fragment &Frag,
                         const std::vector<iisa::IisaEvent> &Events,
                         const iisa::IExit &Exit, uint64_t NextIPc);
  void emitStubBranch(uint64_t FromIPc);
  void emitDispatch(uint64_t TargetVAddr, uint64_t ResolvedIPc);
  uint64_t exitTargetIPc(const iisa::IExit &Exit, dbt::Fragment *Next);

  void dualRasPush(uint64_t VRet);
  bool dualRasPop(uint64_t Actual);

  // ---- Persistent translation cache ----
  /// Fingerprint of (initial guest image, entry PC, DbtConfig), computed
  /// at construction while memory still holds the pristine image; reused
  /// for the save on exit.
  uint64_t PersistFingerprint = 0;
  /// The multi-image store backing PersistPath: opened (with every other
  /// image's slot) at construction, this VM's slot put back and the whole
  /// store saved with read-merge-write on exit. Null until the warm start
  /// or save path first needs it.
  std::unique_ptr<persist::CacheStore> Store;
  /// Translator work units previously invested in this VM's image slot
  /// (carried forward so a warm run's re-save does not zero the slot's
  /// CostUnits bookkeeping).
  uint64_t ImportedCostUnits = 0;
  /// stats() snapshot taken by the previous statsDelta() call.
  StatisticSet StatsBaseline;
  void warmStartFromPersisted();
  /// Warm start by lookup in Config.SharedStore (read-only, pre-opened;
  /// no file I/O on this path). Same degrade taxonomy as the file path.
  void warmStartFromShared();
  /// Installs \p Frags as the warm-start image and marks their entries
  /// translated in the profiler. Shared by the store and legacy paths.
  void importFragments(std::vector<dbt::Fragment> Frags);
  /// Legacy single-image CacheFile import ("persist.import_legacy"); a
  /// foreign-fingerprint legacy image is preserved as a store slot instead
  /// of being clobbered by the save. Returns the rejection reason, or
  /// nullptr on success/clean miss.
  const char *importLegacyFile();
  void savePersistedCache();

  RunResult runLoop();
};

/// Runs \p Mem's program at \p EntryPc through the plain interpreter,
/// streaming every retired V-ISA instruction into \p Model (the paper's
/// "original" superscalar simulation). Returns the stop status.
StepStatus runOriginal(GuestMemory &Mem, uint64_t EntryPc,
                       uarch::TimingModel *Model, uint64_t MaxInsts,
                       StatisticSet *Stats = nullptr);

} // namespace vm
} // namespace ildp

#endif // ILDP_VM_VIRTUALMACHINE_H
