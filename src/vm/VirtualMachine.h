//===- vm/VirtualMachine.h - The co-designed virtual machine --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The co-designed VM of Figure 1: interpret/profile -> record ->
/// translate -> execute-translated, with mode switching exactly as
/// Section 4.1 describes. Detailed timing covers translated code only
/// (including all chaining and dispatch code); every re-entry into
/// translated execution starts the pipeline empty.
///
/// The VM also models the architecturally visible parts of chaining: the
/// shared dispatch code (20 instructions ending in an indirect jump at a
/// fixed translation-cache location — hence the single-BTB-entry pathology
/// of Section 4.3), the exit stubs, and the proposed dual-address return
/// address stack.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_VM_VIRTUALMACHINE_H
#define ILDP_VM_VIRTUALMACHINE_H

#include "core/Config.h"
#include "core/ProfileController.h"
#include "core/TranslationCache.h"
#include "core/TrapRecovery.h"
#include "interp/Interpreter.h"
#include "support/Statistics.h"
#include "uarch/Trace.h"

#include <memory>
#include <string>

namespace ildp {
namespace vm {

/// VM run configuration.
struct VmConfig {
  dbt::DbtConfig Dbt;
  /// Stop after this many guest (V-ISA) instructions, interpreted plus
  /// translated (safety net; workloads normally HALT first).
  uint64_t MaxGuestInsts = 400'000'000;

  /// Dynamo-style translation-cache flushing on program phase changes
  /// (Section 4.1 notes the paper's system lacks this and may pay for it):
  /// when fragment creation accelerates past PhaseFragmentThreshold new
  /// fragments within PhaseWindow guest instructions, the whole cache is
  /// flushed and hot paths re-qualify, giving fragments a second chance to
  /// form along the new phase's paths.
  bool FlushOnPhaseChange = false;
  uint64_t PhaseWindow = 200'000;
  unsigned PhaseFragmentThreshold = 24;

  /// Persistent translation cache (warm start). When PersistPath is
  /// non-empty, the VM fingerprints the guest image + DbtConfig at
  /// construction, imports fragments from the file before the first
  /// instruction executes (PersistLoad), and writes the final translation
  /// cache back when run() returns (PersistSave). Any load problem —
  /// missing file, truncation, corruption, fingerprint mismatch — is
  /// counted in the statistics ("persist.*") and the run degrades to a
  /// normal cold start.
  std::string PersistPath;
  bool PersistLoad = true;
  bool PersistSave = true;
};

/// Why the VM stopped.
enum class StopReason : uint8_t {
  Halted,
  Trapped,
  Budget,
};

/// Result of a VM run.
struct RunResult {
  StopReason Reason = StopReason::Halted;
  /// Valid when Reason == Trapped: the precisely recovered state.
  dbt::RecoveredState Trap;
};

/// The co-designed virtual machine.
class VirtualMachine {
public:
  VirtualMachine(GuestMemory &Mem, uint64_t EntryPc, const VmConfig &Config);

  /// Optional timing model; when set, all translated execution (fragments,
  /// stubs, dispatch) is streamed into it.
  void setTimingModel(uarch::TimingModel *Model) { Timing = Model; }

  /// Runs to completion (HALT), a precise trap, or the budget.
  RunResult run();

  /// Run statistics. Hot-path counters are synced into the set on call.
  const StatisticSet &stats();
  dbt::TranslationCache &tcache() { return TCache; }
  const Interpreter &interpreter() const { return Interp; }

  /// Synthetic address of the shared dispatch code in the translation
  /// cache address space.
  static constexpr uint64_t DispatchIPc = 0x2F0000000ull;
  /// Synthetic address representing "exit to the translator/VM".
  static constexpr uint64_t TranslatorIPc = 0x2F8000000ull;
  /// Guest region used by the dispatch code's PC-translation-table loads.
  static constexpr uint64_t DispatchTableBase = 0x0F0000000ull;
  /// Instruction count of the shared dispatch sequence (Section 3.2).
  static constexpr unsigned DispatchInsts = 20;

private:
  GuestMemory &Mem;
  VmConfig Config;
  Interpreter Interp;
  dbt::ProfileController Profile;
  dbt::TranslationCache TCache;
  uarch::TimingModel *Timing = nullptr;
  StatisticSet Stats;

  /// Dual-address RAS (architectural model; Section 3.2). Entries hold the
  /// V-ISA return address; the paired I-ISA address is resolved against
  /// the translation cache at pop time.
  std::vector<uint64_t> DualRas;
  static constexpr size_t DualRasDepth = 8;

  uint64_t GuestInsts = 0; ///< V-ISA instructions executed (both modes).
  iisa::IExecState ExecState;
  /// GuestInsts stamps of recent fragment creations (flush heuristic).
  std::vector<uint64_t> RecentCreates;
  uint64_t Flushes = 0;

  /// Hot-path counters (kept out of the string-keyed StatisticSet).
  struct HotCounters {
    uint64_t InterpInsts = 0;
    uint64_t Segments = 0;
    uint64_t FragInsts = 0;
    uint64_t VInstsTranslated = 0;
    uint64_t CopyInsts = 0;
    uint64_t SourceOps = 0;
    std::array<uint64_t, 9> Usage{}; ///< Indexed by iisa::UsageClass.
    uint64_t ExitChained = 0;
    uint64_t ExitChainedMissing = 0;
    uint64_t ExitTranslator = 0;
    uint64_t PredictHit = 0;
    uint64_t PredictHitUntranslated = 0;
    uint64_t PredictMiss = 0;
    uint64_t ExitDispatch = 0;
    uint64_t ReturnHit = 0;
    uint64_t ReturnMiss = 0;
    uint64_t ExitHalt = 0;
    uint64_t ExitTrap = 0;
    uint64_t StubInsts = 0;
    uint64_t DispatchCalls = 0;
    uint64_t DispatchInsts = 0;
    uint64_t RasPushes = 0;
  };
  HotCounters Hot;

  // ---- Interpretation / profiling ----
  struct InterpOutcome {
    StepStatus Status;
    Trap TrapInfo;
    /// Set when interpretation stopped because \c Pc reached translated
    /// code; the caller executes it directly (no second cache probe).
    dbt::Fragment *Frag = nullptr;
  };
  InterpOutcome interpretUntilTranslated();
  void recordAndTranslate(uint64_t HotPc);
  void installFragment(dbt::Fragment Frag);

  // ---- Translated execution ----
  struct SegmentOutcome {
    enum class Kind { ToInterpreter, Halted, Trapped, Budget } K;
    uint64_t NextVPc = 0;
    dbt::RecoveredState Trap;
  };
  SegmentOutcome executeTranslated(dbt::Fragment *Frag);
  void emitFragmentTrace(const dbt::Fragment &Frag,
                         const std::vector<iisa::IisaEvent> &Events,
                         const iisa::IExit &Exit, uint64_t NextIPc);
  void emitStubBranch(uint64_t FromIPc);
  void emitDispatch(uint64_t TargetVAddr, uint64_t ResolvedIPc);
  uint64_t exitTargetIPc(const iisa::IExit &Exit, dbt::Fragment *Next);

  void dualRasPush(uint64_t VRet);
  bool dualRasPop(uint64_t Actual);

  // ---- Persistent translation cache ----
  /// Fingerprint of (initial guest image, entry PC, DbtConfig), computed
  /// at construction while memory still holds the pristine image; reused
  /// for the save on exit.
  uint64_t PersistFingerprint = 0;
  void warmStartFromPersisted();
  void savePersistedCache();

  RunResult runLoop();
};

/// Runs \p Mem's program at \p EntryPc through the plain interpreter,
/// streaming every retired V-ISA instruction into \p Model (the paper's
/// "original" superscalar simulation). Returns the stop status.
StepStatus runOriginal(GuestMemory &Mem, uint64_t EntryPc,
                       uarch::TimingModel *Model, uint64_t MaxInsts,
                       StatisticSet *Stats = nullptr);

} // namespace vm
} // namespace ildp

#endif // ILDP_VM_VIRTUALMACHINE_H
