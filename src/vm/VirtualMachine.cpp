//===- vm/VirtualMachine.cpp - The co-designed virtual machine ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"

#include "core/FaultInjector.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "native/NativeCompiler.h"
#include "native/NativeEmitter.h"
#include "native/NativeExec.h"
#include "native/NativeModule.h"
#include "native/NativeService.h"
#include "native/NativeStore.h"
#include "persist/CacheFile.h"
#include "persist/CacheStore.h"
#include "persist/Fingerprint.h"

#include <algorithm>
#include <cassert>

using namespace ildp;
using namespace ildp::vm;
using namespace ildp::iisa;
using ildp::uarch::OpClass;
using ildp::uarch::TraceOp;

VirtualMachine::VirtualMachine(GuestMemory &Mem, uint64_t EntryPc,
                               const VmConfig &Config)
    : Mem(Mem), Config(Config), Interp(Mem),
      Profile(Config.Dbt.HotThreshold),
      RecentCreates(Config.PhaseFragmentThreshold + 1) {
  Interp.state().Pc = EntryPc;
  Profile.addCandidate(EntryPc);
  if (Config.CodeCacheBytes != 0) {
    // No single fragment may exceed the whole cache: clamp the fragment
    // size bound so oversized superblocks become ordinary FragmentTooLarge
    // bailouts (retry/backoff/blacklist) instead of un-fittable installs.
    // MaxFragmentBytes is not fingerprinted, so the clamp cannot
    // invalidate persisted caches.
    uint64_t Clamp = std::min<uint64_t>(Config.CodeCacheBytes, UINT32_MAX);
    if (this->Config.Dbt.MaxFragmentBytes == 0 ||
        this->Config.Dbt.MaxFragmentBytes > Clamp)
      this->Config.Dbt.MaxFragmentBytes = uint32_t(Clamp);
    TCache.setByteBudget(Config.CodeCacheBytes);
    TCache.setFaultInjector(Config.Dbt.Fault);
    TCache.setEvictionListener(
        [this](const dbt::Fragment &Frag) { onFragmentEvicted(Frag); });
  }
  if (Config.NativeTier) {
    // Probe for a host compiler before warm start so the import path knows
    // whether stored native objects can be validated and loaded. No
    // toolchain is a counted, fully graceful degrade: NativeSvc stays null
    // and every native code path below is gated on it.
    const native::HostCompiler &CC = native::hostCompiler();
    if (CC.Found)
      NativeSvc = std::make_unique<native::NativeService>(
          CC, Config.NativeWorkers, Config.NativeQueueDepth,
          Config.Dbt.Fault);
    else
      Nat.NoToolchain = 1;
  }
  if (Config.SharedStore) {
    PersistFingerprint = persist::fingerprint(Mem, EntryPc, Config.Dbt);
    if (Config.PersistLoad)
      warmStartFromShared();
  } else if (!Config.PersistPath.empty()) {
    PersistFingerprint = persist::fingerprint(Mem, EntryPc, Config.Dbt);
    if (Config.PersistLoad)
      warmStartFromPersisted();
  }
  LogicalFragments = TCache.fragmentCount();
  if (Config.AsyncTranslate && Config.TranslateWorkers > 0) {
    Service = std::make_unique<dbt::TranslationService>(
        this->Config.Dbt, Config.TranslateWorkers, Config.TranslateQueueDepth);
    // A draining fragment may chain to entries whose translation is still
    // in flight: a synchronous install at the same logical time would
    // already have them in the cache.
    TCache.setExtraChainable(
        [this](uint64_t VAddr) { return PendingSeqByEntry.count(VAddr) != 0; });
    for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments())
      ChainView.insert(Frag->EntryVAddr);
  }
}

// ---------------------------------------------------------------------------
// Persistent translation cache (warm start / save on exit).
// ---------------------------------------------------------------------------

VirtualMachine::~VirtualMachine() = default;

void VirtualMachine::importFragments(std::vector<dbt::Fragment> Frags) {
  size_t Installed = TCache.importAll(std::move(Frags));
  // Imported entries count as translated for the profiler, so hot-counter
  // qualification never tries to re-translate them, and their exit targets
  // become candidates exactly as after a cold install.
  for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments()) {
    Profile.addCandidate(Frag->EntryVAddr);
    Profile.markTranslated(Frag->EntryVAddr);
    for (const dbt::ExitRecord &Exit : Frag->Exits)
      Profile.addCandidate(Exit.VTarget);
  }
  Stats.add("persist.load_ok");
  Stats.set("persist.fragments_imported", Installed);
  if (Config.CodeCacheBytes != 0)
    Stats.set("persist.fragments_skipped_budget", TCache.importBudgetSkips());
}

const char *VirtualMachine::importLegacyFile() {
  Stats.add("persist.import_legacy");
  persist::LoadResult Loaded =
      persist::loadCacheFile(Config.PersistPath, PersistFingerprint);
  switch (Loaded.Status) {
  case persist::LoadStatus::Ok:
    importFragments(std::move(Loaded.Fragments));
    ImportedCostUnits = 0; // Legacy files carry no cost bookkeeping.
    return nullptr;
  case persist::LoadStatus::FingerprintMismatch: {
    // A legacy file for some *other* image (or config). The old format
    // would be clobbered by this run's save; instead preserve it as a
    // store slot under its own fingerprint — converting a legacy
    // single-image file into a multi-image store keeps the image.
    persist::LoadResult Foreign =
        persist::loadCacheFile(Config.PersistPath, Loaded.FileFingerprint);
    if (Foreign.Status == persist::LoadStatus::Ok) {
      std::vector<const dbt::Fragment *> Ptrs;
      Ptrs.reserve(Foreign.Fragments.size());
      for (const dbt::Fragment &Frag : Foreign.Fragments)
        Ptrs.push_back(&Frag);
      Store->put(Foreign.FileFingerprint, Ptrs, /*CostUnits=*/0);
    }
    Stats.add("persist.load_mismatch");
    return persist::getLoadStatusName(Loaded.Status);
  }
  default:
    Stats.add("persist.load_corrupt");
    return persist::getLoadStatusName(Loaded.Status);
  }
}

void VirtualMachine::warmStartFromPersisted() {
  Store = std::make_unique<persist::CacheStore>();
  persist::StoreStatus Opened = Store->open(Config.PersistPath);

  // Every import failure degrades to a cold start; a warm-start problem
  // must never be worse than not having a store at all. A missing file is
  // the normal first run and a store miss is the normal first run *of this
  // image*; everything else is counted under persist.import_rejected with
  // a per-reason breakdown. On corruption the store stays empty, so the
  // exit save rewrites the path with a clean artifact.
  const char *Rejected = nullptr;
  if (Config.Dbt.Fault &&
      Config.Dbt.Fault->shouldFail(dbt::FaultSite::PersistImport)) {
    Rejected = "injected-fault";
  } else {
    switch (Opened) {
    case persist::StoreStatus::FileNotFound:
      Stats.add("persist.load_nofile");
      return;
    case persist::StoreStatus::LegacyFile:
      Rejected = importLegacyFile();
      break;
    case persist::StoreStatus::Ok: {
      Stats.set("persist.store_images", Store->imageCount());
      Stats.set("persist.store_bytes", Store->totalPayloadBytes());
      std::vector<dbt::Fragment> Frags;
      persist::StoreStatus Found = Store->lookup(PersistFingerprint, Frags);
      if (Found == persist::StoreStatus::ImageNotFound) {
        // Other images live here; ours runs cold and saves a new slot.
        Stats.add("persist.store_miss");
        return;
      }
      if (Found != persist::StoreStatus::Ok) {
        // Structural corruption the CRCs happened to bless. Drop the slot
        // (the rest of the store is fine and stays preserved).
        Stats.add("persist.load_corrupt");
        Store->erase(PersistFingerprint);
        Rejected = persist::getStoreStatusName(Found);
        break;
      }
      Stats.add("persist.store_hit");
      ImportedCostUnits = Store->find(PersistFingerprint)->CostUnits;
      importFragments(std::move(Frags));
      importNativeObjects(*Store);
      break;
    }
    default:
      Stats.add("persist.load_corrupt");
      Rejected = persist::getStoreStatusName(Opened);
      break;
    }
  }
  if (Rejected) {
    Stats.add("persist.import_rejected");
    Stats.add(std::string("persist.import_rejected.") + Rejected);
  }
}

void VirtualMachine::warmStartFromShared() {
  // The shared-store path exists so a fleet of VMs can warm-start without
  // per-VM file I/O: the store was opened (read-only) once by the owner
  // and every lookup here is a const walk over immutable payload bytes.
  // The degrade taxonomy mirrors warmStartFromPersisted: any problem is a
  // counted cold start, never a failure.
  const persist::CacheStore &Shared = *Config.SharedStore;
  Stats.add("persist.store_readonly");
  Stats.set("persist.store_images", Shared.imageCount());
  Stats.set("persist.store_bytes", Shared.totalPayloadBytes());

  const char *Rejected = nullptr;
  if (Config.Dbt.Fault &&
      Config.Dbt.Fault->shouldFail(dbt::FaultSite::PersistImport)) {
    Rejected = "injected-fault";
  } else {
    std::vector<dbt::Fragment> Frags;
    persist::StoreStatus Found = Shared.lookup(PersistFingerprint, Frags);
    switch (Found) {
    case persist::StoreStatus::ImageNotFound:
      // Other images live here; ours runs cold (and stays unsaved — the
      // shared store is read-only).
      Stats.add("persist.store_miss");
      return;
    case persist::StoreStatus::Ok:
      Stats.add("persist.store_hit");
      ImportedCostUnits = Shared.find(PersistFingerprint)->CostUnits;
      importFragments(std::move(Frags));
      importNativeObjects(Shared);
      return;
    default:
      // Structural corruption the CRCs happened to bless. The store is
      // shared and read-only, so unlike the owning path the slot cannot
      // be dropped here; this VM just runs cold.
      Stats.add("persist.load_corrupt");
      Rejected = persist::getStoreStatusName(Found);
      break;
    }
  }
  Stats.add("persist.import_rejected");
  Stats.add(std::string("persist.import_rejected.") + Rejected);
}

void VirtualMachine::savePersistedCache() {
  // PersistLoad=false leaves Store null: start from an empty store and let
  // the read-merge-write below adopt whatever already lives on disk.
  if (!Store)
    Store = std::make_unique<persist::CacheStore>();

  std::vector<const dbt::Fragment *> Frags = TCache.exportAll();
  size_t SkippedCold = 0;
  if (Config.PersistMinExecCount > 0) {
    auto Cold = [&](const dbt::Fragment *Frag) {
      return Frag->ExecCount < Config.PersistMinExecCount;
    };
    SkippedCold = size_t(std::count_if(Frags.begin(), Frags.end(), Cold));
    Frags.erase(std::remove_if(Frags.begin(), Frags.end(), Cold),
                Frags.end());
  }

  // The slot's CostUnits track the total translator work invested across
  // its producing runs: what was imported plus what this run spent on top
  // (a pure warm run adds 0 and preserves the cold run's figure).
  Store->put(PersistFingerprint, Frags,
             ImportedCostUnits + Stats.get("dbt.cost.total"));

  if (NativeSvc) {
    // Persist the native objects under the image's native slot — imported
    // plus freshly compiled. Written even when empty: erasing instead
    // would be undone by saveMerged re-adopting the on-disk copy, leaving
    // a stale slot behind a changed toolchain.
    NativeSvc->waitAllIdle();
    drainNativeCompleted();
    Store->putRaw(native::slotFingerprint(PersistFingerprint),
                  native::encodeObjects(NativeObjects,
                                        NativeSvc->compiler().Checksum));
  }
  persist::SaveMergeResult Saved =
      Store->saveMerged(Config.PersistPath, Config.PersistMaxImages);
  Stats.add(Saved.Saved ? "persist.save_ok" : "persist.save_fail");
  if (Saved.Saved) {
    Stats.set("persist.fragments_saved", Frags.size());
    Stats.set("persist.fragments_skipped_cold", SkippedCold);
    Stats.set("persist.store_saved_images", Store->imageCount());
    if (Saved.Adopted)
      Stats.set("persist.store_merge_adopted", Saved.Adopted);
    if (Saved.Compacted)
      Stats.set("persist.store_compacted", Saved.Compacted);
    if (Saved.LockContended)
      Stats.add("persist.store_lock_contended");
  }
  // Lock-health counters live outside the Saved gate: a takeover or a
  // timed-out wait is worth counting even if the save then failed on I/O.
  if (Saved.LockBroken)
    Stats.add("persist.store_lock_broken", Saved.LockBroken);
  if (Saved.LockTimedOut)
    Stats.add("persist.store_lock_timeout");
}

// ---------------------------------------------------------------------------
// Native-host execution tier (DESIGN.md §13).
// ---------------------------------------------------------------------------

uint64_t VirtualMachine::nativeKey(dbt::Fragment &Frag) {
  if (Frag.NativeKey == 0)
    Frag.NativeKey = native::fragmentKey(Frag.Body, Frag.Variant);
  return Frag.NativeKey;
}

bool VirtualMachine::attachNative(dbt::Fragment &Frag,
                                  const std::vector<uint8_t> &Object) {
  if (Config.Dbt.Fault &&
      Config.Dbt.Fault->shouldFail(dbt::FaultSite::NativeLoad)) {
    ++Nat.LoadFailed;
    Frag.NativeState = dbt::Fragment::NativeFailed;
    return false;
  }
  std::shared_ptr<native::NativeModule> Module = native::loadModule(Object);
  if (!Module) {
    ++Nat.LoadFailed;
    Frag.NativeState = dbt::Fragment::NativeFailed;
    return false;
  }
  auto Code = std::make_shared<native::NativeCode>();
  Code->Fn = Module->entry();
  Code->Module = std::move(Module);
  Code->Meta = native::buildMeta(Frag.Body);
  Frag.Native = std::move(Code);
  Frag.NativeState = dbt::Fragment::NativeNone;
  return true;
}

void VirtualMachine::maybeNativeTierUp(dbt::Fragment *Frag) {
  if (Frag->Native || Frag->NativeState != dbt::Fragment::NativeNone ||
      Frag->ExecCount < Config.NativeThreshold)
    return;
  uint64_t Key = nativeKey(*Frag);
  auto Known = NativeObjects.find(Key);
  if (Known != NativeObjects.end()) {
    // Same body compiled before: this run behind an eviction/retranslation
    // cycle, a same-key fragment at another entry, or a warm-started
    // store. Re-attach is a map hit plus a (deduplicated) dlopen — never
    // a host compile.
    if (attachNative(*Frag, Known->second))
      ++Nat.Reattached;
    return;
  }
  native::NativeRequest Req;
  Req.Key = Key;
  Req.EntryVAddr = Frag->EntryVAddr;
  Req.Body = Frag->Body;
  Req.Variant = Frag->Variant;
  if (NativeSvc->trySubmit(std::move(Req))) {
    Frag->NativeState = dbt::Fragment::NativePending;
    ++Nat.Submitted;
  }
  // Queue full: stays NativeNone and re-qualifies on a later execution.
}

void VirtualMachine::drainNativeCompleted() {
  if (!NativeSvc->hasCompleted())
    return;
  std::vector<native::NativeCompletion> Done;
  NativeSvc->drainCompleted(Done);
  for (native::NativeCompletion &C : Done) {
    // Completions are keyed by body content, not fragment identity: find
    // a live fragment still waiting on this key. A linear walk on purpose
    // — completions are rare, and lookup() would bump eviction recency
    // the interpretive tiers never see at this point.
    dbt::Fragment *Waiter = nullptr;
    for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments())
      if (Frag->NativeState == dbt::Fragment::NativePending &&
          Frag->NativeKey == C.Key) {
        Waiter = Frag.get();
        break;
      }
    if (!C.Ok) {
      ++Nat.CompileFailed;
      if (Waiter)
        Waiter->NativeState = dbt::Fragment::NativeFailed;
      continue;
    }
    ++Nat.Compiles;
    auto Slot = NativeObjects.emplace(C.Key, std::move(C.Object)).first;
    if (!Waiter) {
      // Evicted or flushed while compiling. The object stays in the map:
      // if the body is ever re-translated it re-attaches instantly.
      ++Nat.PendingDrops;
      continue;
    }
    if (attachNative(*Waiter, Slot->second))
      ++Nat.Installed;
  }
}

void VirtualMachine::importNativeObjects(const persist::CacheStore &St) {
  if (!NativeSvc)
    return; // Tier off or no toolchain: cannot validate stored objects.
  const std::vector<uint8_t> *Payload =
      St.lookupRaw(native::slotFingerprint(PersistFingerprint));
  if (!Payload)
    return; // Store predates the native tier; normal cold-compile run.
  switch (native::decodeObjects(*Payload, NativeSvc->compiler().Checksum,
                                NativeObjects)) {
  case native::NativeStoreStatus::Ok:
    Nat.ImportedObjects = NativeObjects.size();
    // Attach eagerly: every imported fragment whose body has a stored
    // object runs natively from its first execution, so a warm start of a
    // stable workload performs zero host compilations.
    for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments()) {
      auto Known = NativeObjects.find(nativeKey(*Frag));
      if (Known != NativeObjects.end() && attachNative(*Frag, Known->second))
        ++Nat.Reattached;
    }
    break;
  case native::NativeStoreStatus::Stale:
    Stats.add("persist.import_rejected");
    Stats.add("persist.import_rejected.native_stale");
    break;
  case native::NativeStoreStatus::Malformed:
    Stats.add("persist.import_rejected");
    Stats.add("persist.import_rejected.native_malformed");
    break;
  }
}

void VirtualMachine::dualRasPush(uint64_t VRet) {
  DualRas.pushBackEvict(VRet); // Overflow forgets the deepest frame.
  ++Hot.RasPushes;
}

bool VirtualMachine::dualRasPop(uint64_t Actual) {
  if (DualRas.empty())
    return false;
  uint64_t VRet = DualRas.back();
  DualRas.popBack();
  return VRet == Actual;
}

// ---------------------------------------------------------------------------
// Interpretation, profiling, recording.
// ---------------------------------------------------------------------------

static void registerCandidates(dbt::ProfileController &Profile,
                               const StepInfo &Info) {
  if (!Info.IsControl || Info.Status != StepStatus::Ok)
    return;
  if (alpha::isIndirectBranch(Info.Inst.Op)) {
    Profile.addCandidate(Info.NextPc);
    return;
  }
  // Targets of backward conditional branches.
  if (alpha::isCondBranch(Info.Inst.Op) && Info.Taken &&
      Info.NextPc <= Info.Pc)
    Profile.addCandidate(Info.NextPc);
}

void VirtualMachine::maybePhaseFlush() {
  // Dynamo-style phase-change detection: an abrupt increase in fragment
  // generation rate triggers a full cache flush so the new phase's paths
  // can form fresh fragments (Section 4.1 discussion). Runs at fragment
  // *creation* time (synchronous install, or asynchronous submission) so
  // both modes see the same GuestInsts stamps and the same logical
  // fragment count, and decide flushes identically.
  if (!Config.FlushOnPhaseChange)
    return;
  RecentCreates.pushBackEvict(GuestInsts);
  while (!RecentCreates.empty() &&
         RecentCreates.front() + Config.PhaseWindow < GuestInsts)
    RecentCreates.popFront();
  if (RecentCreates.size() > Config.PhaseFragmentThreshold &&
      LogicalFragments > Config.PhaseFragmentThreshold) {
    TCache.flush();
    Profile.resetAfterFlush();
    RecentCreates.clear();
    LogicalFragments = 0;
    ++Flushes;
    if (Service) {
      // In-flight translations now belong to a dead generation: account
      // them when they drain, but never install them.
      ++Epoch;
      PendingSeqByEntry.clear();
      ChainView.clear();
    }
  }
}

void VirtualMachine::installPrepared(dbt::Fragment Frag) {
  uint64_t DegradedBefore = TCache.degradedFlushCount();
  dbt::Fragment &Installed = TCache.install(std::move(Frag));
  Stats.add("dbt.fragments");
  Stats.add("dbt.body_insts", Installed.Body.size());
  Stats.add("dbt.body_bytes", Installed.BodyBytes);
  Stats.add("dbt.source_insts", Installed.SourceInsts);
  Stats.add("dbt.nops_removed", Installed.NopsRemoved);
  if (TCache.degradedFlushCount() != DegradedBefore)
    handleDegradedFlush();
}

void VirtualMachine::onFragmentEvicted(const dbt::Fragment &Frag) {
  Profile.noteEvicted(Frag.EntryVAddr);
  EvictedEntries.insert(Frag.EntryVAddr);
  // New translations must stop chaining to the entry; exits already
  // chained to it are unchained by the cache itself.
  ChainView.erase(Frag.EntryVAddr);
}

void VirtualMachine::handleDegradedFlush() {
  // A failed eviction degraded to a wholesale flush in the middle of the
  // install that just returned. Mirror the phase-flush bookkeeping, then
  // re-mark what actually survived — the fragment installed into the
  // emptied cache — so its entry is not profiled toward a duplicate
  // install.
  Profile.resetAfterFlush();
  RecentCreates.clear();
  LogicalFragments = TCache.fragmentCount();
  for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments())
    Profile.markTranslated(Frag->EntryVAddr);
  if (Service) {
    // In-flight translations predate the flush: account them when they
    // drain, but never install them (the phase-flush epoch rule).
    ++Epoch;
    PendingSeqByEntry.clear();
    ChainView.clear();
    for (const std::unique_ptr<dbt::Fragment> &Frag : TCache.fragments())
      ChainView.insert(Frag->EntryVAddr);
  }
}

void VirtualMachine::installFragment(dbt::Fragment Frag) {
  maybePhaseFlush();
  ++LogicalFragments;
  uint64_t Entry = Frag.EntryVAddr;
  if (!EvictedEntries.empty() && EvictedEntries.erase(Entry))
    ++CacheRetranslations;
  Profile.markTranslated(Entry);
  // Exit targets of existing fragments become trace-start candidates.
  for (const dbt::ExitRecord &Exit : Frag.Exits)
    Profile.addCandidate(Exit.VTarget);
  installPrepared(std::move(Frag));
}

void VirtualMachine::recordAndTranslate(uint64_t HotPc) {
  dbt::SuperblockBuilder Builder(HotPc, Config.Dbt.MaxSuperblockInsts);
  for (;;) {
    StepInfo Info = Interp.step();
    if (Info.Status != StepStatus::Trapped) {
      ++GuestInsts;
      ++Hot.InterpInsts;
      registerCandidates(Profile, Info);
    }
    if (Builder.append(Info) == dbt::SuperblockBuilder::Status::Done)
      break;
    if (Info.Status != StepStatus::Ok)
      break;
  }
  assert(Builder.done() && "Recording ended without a superblock");
  dbt::Superblock Sb = Builder.take();
  if (Sb.Insts.empty()) {
    // The very first instruction trapped; nothing to translate.
    Profile.markTranslated(HotPc);
    return;
  }

  // A re-profile of an entry that failed translation before is a retry.
  if (Robust.Bailouts != 0 && Profile.failureCount(HotPc) > 0)
    ++Robust.Retries;

  if (Service) {
    submitTranslation(std::move(Sb));
    return;
  }

  dbt::ChainEnv Env;
  Env.IsTranslated = [this](uint64_t VAddr) { return TCache.contains(VAddr); };
  dbt::Expected<dbt::TranslationResult> Xlated =
      translate(Sb, Config.Dbt, Env);
  if (!Xlated) {
    noteTranslateFailure(HotPc, Xlated.status(), Sb.Insts.size());
    return;
  }
  dbt::TranslationResult Result = Xlated.take();
  Result.Cost.addTo(Stats);
  Stats.add("dbt.uops", Result.Uops);
  Stats.add("dbt.strands", Result.Strands);
  Stats.add("dbt.spills", Result.Spills);
  Stats.add("dbt.precopies", Result.PreCopies);
  Stats.add("dbt.trap_promotions", Result.TrapPromotions);
  installFragment(std::move(Result.Frag));
}

void VirtualMachine::noteTranslateFailure(uint64_t EntryPc,
                                          dbt::TranslateStatus Status,
                                          uint64_t SourceInsts) {
  ++Robust.Bailouts;
  ++Robust.ByReason[size_t(Status)];
  Robust.FallbackInsts += SourceInsts;
  if (Profile.recordFailure(EntryPc, Config.MaxTranslateRetries,
                            Config.BlacklistBackoff)) {
    // Just blacklisted: pending exits targeting this entry would never be
    // patched and their index records would leak for the rest of the run.
    TCache.dropPendingExitsTo(EntryPc);
  }
}

VirtualMachine::InterpOutcome VirtualMachine::interpretUntilTranslated() {
  while (GuestInsts < Config.MaxGuestInsts) {
    // Dispatch-loop safepoint: no translated-code pointer is live here, so
    // storage of fragments evicted/flushed since the last pass can go.
    TCache.reclaimEvicted();
    if (Service)
      drainCompleted();
    if (NativeSvc)
      drainNativeCompleted();
    uint64_t Pc = Interp.state().Pc;
    // Single hash probe per dispatch: the fragment found here is handed
    // back to the run loop and executed directly.
    if (dbt::Fragment *Frag = lookupSettled(Pc))
      return {StepStatus::Ok, {}, Frag};
    if (Profile.bump(Pc)) {
      recordAndTranslate(Pc);
      continue;
    }
    StepInfo Info = Interp.step();
    if (Info.Status == StepStatus::Trapped)
      return {StepStatus::Trapped, Info.TrapInfo, nullptr};
    ++GuestInsts;
    ++Hot.InterpInsts;
    if (Info.Status == StepStatus::Halted)
      return {StepStatus::Halted, {}, nullptr};
    registerCandidates(Profile, Info);
  }
  return {StepStatus::Ok, {}, nullptr};
}

// ---------------------------------------------------------------------------
// Asynchronous background translation.
// ---------------------------------------------------------------------------

void VirtualMachine::submitTranslation(dbt::Superblock Sb) {
  // Everything a synchronous install exposes before the fragment's first
  // execution happens here, at the sync install's logical point: profile
  // marks, candidate registration, exit patching in live fragments, and
  // the phase-flush decision. Only the fragment body arrives later.
  maybePhaseFlush();
  ++LogicalFragments;
  uint64_t Entry = Sb.EntryVAddr;
  if (!EvictedEntries.empty() && EvictedEntries.erase(Entry))
    ++CacheRetranslations;
  Profile.markTranslated(Entry);
  for (uint64_t Target : dbt::collectExitTargets(Sb))
    Profile.addCandidate(Target);
  TCache.patchPendingExitsTo(Entry);
  ChainView.insert(Entry);
  if (Service->outstandingCount() == 0)
    Async.XlateStartInsts = GuestInsts;
  uint64_t Seq =
      Service->submit(std::move(Sb), ChainView, Epoch, TCache.evictionEpoch());
  PendingSeqByEntry[Entry] = Seq;
  ++Async.Submitted;
}

void VirtualMachine::finishCompletion(dbt::TranslateCompletion C) {
  if (!C.ok()) {
    // A worker bailed out. Undo the optimistic submission-time effects:
    // the entry is no longer pending (lookupSettled must not wait on it),
    // new translations must not chain to it, and the profiler un-marks it
    // as translated so it can re-qualify — or be blacklisted. Fragments
    // whose exits were already patched to this entry self-heal: their
    // Chained exit finds no fragment and falls back to the interpreter.
    auto It = PendingSeqByEntry.find(C.EntryVAddr);
    if (It != PendingSeqByEntry.end() && It->second == C.Seq) {
      PendingSeqByEntry.erase(It);
      ChainView.erase(C.EntryVAddr);
      // Exits patched toward this entry at submission time now point at a
      // translation that will never arrive; rewrite them back to their
      // call-translator form so no chained branch leads nowhere.
      TCache.unchainExitsTo(C.EntryVAddr);
    }
    if (LogicalFragments > 0)
      --LogicalFragments; // Submission counted a fragment that never came.
    noteTranslateFailure(C.EntryVAddr, C.Status, C.SourceInsts);
    if (Service->outstandingCount() == 0)
      Async.InstsDuringXlate += GuestInsts - Async.XlateStartInsts;
    return;
  }

  dbt::TranslationResult &R = C.Result;
  // Translation-cost accounting is identical to the synchronous path; the
  // async split additionally attributes the decode share to the VM thread
  // (the recorder decodes every source instruction while building the
  // superblock there) and the rest — lowering, analysis, strands, codegen,
  // cache copy, and chain resolution, all of which translate() performs on
  // the worker — to the background pool. The VM thread's submission-time
  // backpatching is a few stores and is not priced by the cost model.
  R.Cost.addTo(Stats);
  Stats.add("dbt.uops", R.Uops);
  Stats.add("dbt.strands", R.Strands);
  Stats.add("dbt.spills", R.Spills);
  Stats.add("dbt.precopies", R.PreCopies);
  Stats.add("dbt.trap_promotions", R.TrapPromotions);
  Async.InlineUnits += R.Cost.Decode;
  Async.OffloadedUnits += R.Cost.total() - R.Cost.Decode;

  auto It = PendingSeqByEntry.find(C.EntryVAddr);
  if (It != PendingSeqByEntry.end() && It->second == C.Seq)
    PendingSeqByEntry.erase(It);

  if (C.Epoch == Epoch) {
    if (C.CacheGen != TCache.evictionEpoch())
      ++EvictRaces; // Snapshot predates evictions; install() reconciles.
    installPrepared(std::move(R.Frag));
    ++Async.Installed;
  } else {
    // Stale generation: a synchronous run installed this fragment and then
    // flushed it, so the dbt.* body statistics above still accrue — only
    // the install is skipped.
    Stats.add("dbt.fragments");
    Stats.add("dbt.body_insts", R.Frag.Body.size());
    Stats.add("dbt.body_bytes", R.Frag.BodyBytes);
    Stats.add("dbt.source_insts", R.Frag.SourceInsts);
    Stats.add("dbt.nops_removed", R.Frag.NopsRemoved);
    ++Async.DiscardedStale;
  }

  if (Service->outstandingCount() == 0)
    Async.InstsDuringXlate += GuestInsts - Async.XlateStartInsts;
}

void VirtualMachine::drainCompleted() {
  while (Service->nextReady()) {
    std::optional<dbt::TranslateCompletion> C = Service->tryTakeNext();
    if (!C)
      break;
    finishCompletion(std::move(*C));
  }
}

void VirtualMachine::waitForSeq(uint64_t Seq) {
  ++Async.DemandWaits;
  while (Service->deliveredCount() < Seq)
    finishCompletion(Service->takeNext());
}

void VirtualMachine::drainAllOutstanding() {
  if (!Service)
    return;
  while (Service->outstandingCount() != 0)
    finishCompletion(Service->takeNext());
}

dbt::Fragment *VirtualMachine::lookupSettled(uint64_t VAddr) {
  if (Service) {
    auto It = PendingSeqByEntry.find(VAddr);
    if (It != PendingSeqByEntry.end())
      waitForSeq(It->second);
  }
  return TCache.lookup(VAddr);
}

// ---------------------------------------------------------------------------
// Translated execution.
// ---------------------------------------------------------------------------

static OpClass classOf(const IisaInst &Inst) {
  switch (Inst.Kind) {
  case IKind::Compute:
    return alpha::isMul(Inst.AlphaOp) ? OpClass::IntMul : OpClass::IntAlu;
  case IKind::Load:
    return OpClass::Load;
  case IKind::Store:
    return OpClass::Store;
  case IKind::CondExit:
  case IKind::JumpPredict:
    return OpClass::CondBr;
  case IKind::Branch:
  case IKind::JumpDispatch:
    return OpClass::DirectBr;
  case IKind::ReturnDual:
    return OpClass::Return;
  default:
    return OpClass::IntAlu;
  }
}

static uint8_t traceReg(const IOperand &Op) {
  switch (Op.K) {
  case IOperand::Kind::Gpr:
    return Op.Reg == alpha::RegZero ? uarch::NoTraceReg : Op.Reg;
  case IOperand::Kind::Acc:
    return uint8_t(uarch::TraceAccBase + Op.Reg);
  default:
    return uarch::NoTraceReg;
  }
}

void VirtualMachine::emitFragmentTrace(
    const dbt::Fragment &Frag, const std::vector<IisaEvent> &Events,
    const iisa::IExit &Exit, uint64_t NextIPc) {
  if (!Timing)
    return;
  for (size_t E = 0; E != Events.size(); ++E) {
    const IisaEvent &Ev = Events[E];
    const IisaInst &Inst = Frag.Body[Ev.Index];
    TraceOp Op;
    Op.Class = classOf(Inst);
    Op.Pc = Frag.instPc(Ev.Index);
    Op.SizeBytes = Inst.SizeBytes;
    Op.MemAddr = Ev.MemAddr;
    Op.Src1 = traceReg(Inst.A);
    Op.Src2 = traceReg(Inst.B);
    Op.Dest = Inst.DestGpr == NoReg || Inst.DestGpr == alpha::RegZero
                  ? uarch::NoTraceReg
                  : Inst.DestGpr;
    Op.StrandAcc = Inst.DestAcc == NoReg
                       ? (Inst.A.isAcc()   ? Inst.A.Reg
                          : Inst.B.isAcc() ? Inst.B.Reg
                                           : uarch::NoTraceReg)
                       : Inst.DestAcc;
    Op.AccIn = Inst.A.isAcc() || Inst.B.isAcc();
    Op.GprWriteArchOnly = Inst.GprWriteArchOnly;
    Op.VCredit = Inst.VCredit;
    Op.RasPush = Inst.Kind == IKind::PushDualRas;

    bool IsLast = E + 1 == Events.size();
    switch (Inst.Kind) {
    case IKind::CondExit:
      Op.Taken = Ev.Taken;
      Op.NextPc = Ev.Taken ? NextIPc : Frag.instPc(Ev.Index) + Inst.SizeBytes;
      if (Ev.Taken && !IsLast)
        Op.NextPc = 0; // Unreachable: taken exits end the event list.
      break;
    case IKind::JumpPredict:
      Op.Taken = Ev.Taken; // Taken = prediction hit (branch to target).
      Op.NextPc = NextIPc;
      break;
    case IKind::Branch:
    case IKind::JumpDispatch:
      Op.Taken = true;
      Op.NextPc = NextIPc;
      break;
    case IKind::ReturnDual:
      Op.Taken = true;
      Op.NextPc = NextIPc;
      Op.RasHitKnown = true;
      Op.RasHit = Exit.K == iisa::IExit::Kind::Return && NextIPc != 0 &&
                  NextIPc != DispatchIPc && NextIPc != TranslatorIPc;
      break;
    default:
      Op.NextPc = Frag.instPc(Ev.Index) + Inst.SizeBytes;
      break;
    }
    Timing->consume(Op);
  }
}

void VirtualMachine::emitStubBranch(uint64_t FromIPc) {
  ++Hot.StubInsts;
  if (!Timing)
    return;
  TraceOp Op;
  Op.Class = OpClass::DirectBr;
  Op.Pc = FromIPc;
  Op.Taken = true;
  Op.NextPc = DispatchIPc;
  Timing->consume(Op);
}

void VirtualMachine::emitDispatch(uint64_t TargetVAddr, uint64_t ResolvedIPc) {
  ++Hot.DispatchCalls;
  Hot.DispatchInsts += DispatchInsts;
  if (!Timing)
    return;
  // The shared dispatch sequence: hash the V-PC, probe the PC translation
  // table (Figure 3), and jump indirect. All instructions sit at fixed
  // translation-cache addresses, so the final indirect jump shares one BTB
  // entry across every dispatch — the no_pred pathology of Section 4.3.
  uint64_t Hash = (TargetVAddr >> 2) * 0x9E3779B1ull;
  uint64_t Bucket = DispatchTableBase + (Hash & 0x3FFF) * 16;
  uint8_t ChainReg = 60;
  for (unsigned I = 0; I != DispatchInsts; ++I) {
    TraceOp Op;
    Op.Pc = DispatchIPc + I * 4;
    Op.Src1 = ChainReg;
    bool IsLoad = I == 4 || I == 7 || I == 10 || I == 13;
    if (I + 1 == DispatchInsts) {
      Op.Class = OpClass::Indirect;
      Op.Taken = true;
      Op.NextPc = ResolvedIPc;
    } else if (IsLoad) {
      Op.Class = OpClass::Load;
      Op.MemAddr = Bucket + (I & 1) * 8;
      Op.Dest = ChainReg;
    } else {
      Op.Class = OpClass::IntAlu;
      Op.Dest = ChainReg;
    }
    Timing->consume(Op);
  }
}

uint64_t VirtualMachine::exitTargetIPc(const iisa::IExit &Exit,
                                       dbt::Fragment *Next) {
  (void)Exit;
  return Next ? Next->IBase : TranslatorIPc;
}

VirtualMachine::SegmentOutcome
VirtualMachine::executeTranslated(dbt::Fragment *Frag) {
  ExecState.loadArchState(Interp.state());
  std::vector<IisaEvent> Events;
  ++Hot.Segments;

  auto ToInterp = [&](uint64_t VPc) {
    ArchState Arch = ExecState.toArchState();
    Arch.Pc = VPc;
    Interp.state() = Arch;
    SegmentOutcome Out;
    Out.K = SegmentOutcome::Kind::ToInterpreter;
    Out.NextVPc = VPc;
    return Out;
  };

  for (;;) {
    if (GuestInsts >= Config.MaxGuestInsts) {
      SegmentOutcome Out = ToInterp(Frag->EntryVAddr);
      Out.K = SegmentOutcome::Kind::Budget;
      return Out;
    }

    Events.clear();
    iisa::IExit Exit;
    bool RanNative = false;
    if (NativeSvc && !Timing) {
      // Hot loops never leave this dispatch loop, so the native tier's
      // drain/tier-up bookkeeping must also live here (attach never
      // destroys a fragment, so Frag stays valid). Detailed-timing runs
      // stay on the I-ISA tier: the model consumes per-instruction events.
      drainNativeCompleted();
      maybeNativeTierUp(Frag);
      if (Frag->Native) {
        Exit = native::runFragment(*Frag->Native, ExecState, Mem, Frag->Body);
        ++Frag->ExecCount;
        ++Nat.Runs;
        RanNative = true;
        // The accounting below is a pure function of the exit index: the
        // executor's event stream for an exit at body index i is exactly
        // instructions 0..i, precomputed as prefix sums at attach time.
        const native::CumCounters &Cum = Frag->Native->Meta.Cum[Exit.InstIndex];
        Nat.Insts += Exit.InstIndex + 1;
        Hot.FragInsts += Exit.InstIndex + 1;
        GuestInsts += Cum.VCredit;
        Hot.VInstsTranslated += Cum.VCredit;
        Hot.CopyInsts += Cum.CopyInsts;
        Hot.SourceOps += Cum.SourceOps;
        for (size_t U = 0; U != Cum.Usage.size(); ++U)
          Hot.Usage[U] += Cum.Usage[U];
        if (Config.Dbt.Chaining == dbt::ChainPolicy::SwPredRas)
          for (const auto &[PushIdx, VRet] : Frag->Native->Meta.RasPushes) {
            if (PushIdx > Exit.InstIndex)
              break;
            dualRasPush(VRet);
          }
      }
    }
    if (!RanNative) {
      Exit = iisa::execute(Frag->Body.data(), Frag->Body.size(), ExecState,
                           Mem, &Events);
      ++Frag->ExecCount;

      // Accounting pass (also performs dual-RAS pushes).
      for (const IisaEvent &Ev : Events) {
        const IisaInst &Inst = Frag->Body[Ev.Index];
        ++Hot.FragInsts;
        GuestInsts += Inst.VCredit;
        Hot.VInstsTranslated += Inst.VCredit;
        if (Inst.Kind == IKind::CopyToGpr || Inst.Kind == IKind::CopyFromGpr)
          ++Hot.CopyInsts;
        if (Inst.IsSourceOp) {
          ++Hot.SourceOps;
          ++Hot.Usage[size_t(Inst.Usage)];
        }
        if (Inst.Kind == IKind::PushDualRas &&
            Config.Dbt.Chaining == dbt::ChainPolicy::SwPredRas)
          dualRasPush(Inst.VTarget);
      }
    }

    // Exit decision.
    dbt::Fragment *Next = nullptr;
    bool NeedStubDispatch = false;
    bool RasMiss = false;
    switch (Exit.K) {
    case iisa::IExit::Kind::Chained:
      Next = lookupSettled(Exit.VTarget);
      ++(Next ? Hot.ExitChained : Hot.ExitChainedMissing);
      break;
    case iisa::IExit::Kind::ToTranslator:
      ++Hot.ExitTranslator;
      break;
    case iisa::IExit::Kind::PredictHit:
      Next = lookupSettled(Exit.VTarget);
      ++(Next ? Hot.PredictHit : Hot.PredictHitUntranslated);
      break;
    case iisa::IExit::Kind::PredictMiss:
      Next = lookupSettled(Exit.VTarget);
      NeedStubDispatch = true;
      ++Hot.PredictMiss;
      break;
    case iisa::IExit::Kind::Dispatch:
      Next = lookupSettled(Exit.VTarget);
      NeedStubDispatch = true;
      ++Hot.ExitDispatch;
      break;
    case iisa::IExit::Kind::Return: {
      bool VMatch = dualRasPop(Exit.VTarget);
      Next = VMatch ? lookupSettled(Exit.VTarget) : nullptr;
      if (Next) {
        ++Hot.ReturnHit;
      } else {
        // Mispredicted return: the unconditional branch after the return
        // redirects to dispatch (Section 3.2).
        RasMiss = true;
        NeedStubDispatch = true;
        Next = lookupSettled(Exit.VTarget);
        ++Hot.ReturnMiss;
      }
      break;
    }
    case iisa::IExit::Kind::Halt:
      ++Hot.ExitHalt;
      break;
    case iisa::IExit::Kind::Trap:
      ++Hot.ExitTrap;
      break;
    }

    // Trace emission.
    uint64_t NextIPc;
    if (Exit.K == iisa::IExit::Kind::Return && RasMiss)
      NextIPc = Frag->IBase + Frag->BodyBytes; // Falls into the stub.
    else if (NeedStubDispatch)
      NextIPc = Frag->IBase + Frag->BodyBytes;
    else
      NextIPc = exitTargetIPc(Exit, Next);
    // Correct the RasHit signal for the emitter: a hit jumps straight to
    // the target fragment.
    if (Exit.K == iisa::IExit::Kind::Return && !RasMiss)
      NextIPc = exitTargetIPc(Exit, Next);
    emitFragmentTrace(*Frag, Events, Exit, NextIPc);
    if (NeedStubDispatch) {
      emitStubBranch(Frag->IBase + Frag->BodyBytes);
      emitDispatch(Exit.VTarget, Next ? Next->IBase : TranslatorIPc);
    }

    switch (Exit.K) {
    case iisa::IExit::Kind::Halt: {
      // Count the HALT itself.
      SegmentOutcome Out;
      ArchState Arch = ExecState.toArchState();
      Arch.Pc = Frag->Body[Exit.InstIndex].VAddr;
      Interp.state() = Arch;
      Out.K = SegmentOutcome::Kind::Halted;
      return Out;
    }
    case iisa::IExit::Kind::Trap: {
      SegmentOutcome Out;
      Out.K = SegmentOutcome::Kind::Trapped;
      Out.Trap = dbt::recoverTrapState(*Frag, Exit.InstIndex, ExecState,
                                       Exit.TrapInfo);
      // Leave the interpreter at the recovered state (the VM could resume
      // interpretation there after trap delivery).
      Interp.state() = Out.Trap.Arch;
      return Out;
    }
    default:
      break;
    }

    if (!Next)
      return ToInterp(Exit.VTarget);
    Frag = Next;
  }
}

const StatisticSet &VirtualMachine::stats() {
  Stats.set("interp.insts", Hot.InterpInsts);
  Stats.set("vm.segments", Hot.Segments);
  Stats.set("vm.guest_insts", GuestInsts);
  Stats.set("vm.vinsts_translated", Hot.VInstsTranslated);
  Stats.set("frag.insts", Hot.FragInsts);
  Stats.set("frag.copy_insts", Hot.CopyInsts);
  Stats.set("frag.source_ops", Hot.SourceOps);
  for (size_t I = 0; I != Hot.Usage.size(); ++I)
    Stats.set(std::string("usage.") + getUsageName(UsageClass(I)),
              Hot.Usage[I]);
  Stats.set("exit.chained", Hot.ExitChained);
  Stats.set("exit.chained_missing", Hot.ExitChainedMissing);
  Stats.set("exit.translator", Hot.ExitTranslator);
  Stats.set("exit.predict_hit", Hot.PredictHit);
  Stats.set("exit.predict_hit_untranslated", Hot.PredictHitUntranslated);
  Stats.set("exit.predict_miss", Hot.PredictMiss);
  Stats.set("exit.dispatch", Hot.ExitDispatch);
  Stats.set("exit.return_hit", Hot.ReturnHit);
  Stats.set("exit.return_miss", Hot.ReturnMiss);
  Stats.set("exit.halt", Hot.ExitHalt);
  Stats.set("exit.trap", Hot.ExitTrap);
  Stats.set("stub.insts", Hot.StubInsts);
  Stats.set("dispatch.calls", Hot.DispatchCalls);
  Stats.set("dispatch.insts", Hot.DispatchInsts);
  Stats.set("ras.push", Hot.RasPushes);
  Stats.set("tcache.fragments", TCache.fragmentCount());
  Stats.set("tcache.body_bytes", TCache.totalBodyBytes());
  Stats.set("tcache.unique_source_insts", TCache.uniqueSourceInsts());
  Stats.set("tcache.patches", TCache.patchCount());
  Stats.set("tcache.flushes", TCache.flushCount());
  Stats.set("cache.evictions", TCache.evictionCount());
  Stats.set("cache.evicted_bytes", TCache.evictedBytes());
  Stats.set("cache.unchained_exits", TCache.unchainedExitCount());
  Stats.set("cache.retranslations", CacheRetranslations);
  Stats.set("cache.budget_high_water", TCache.budgetHighWater());
  Stats.set("cache.degraded_flushes", TCache.degradedFlushCount());
  Stats.set("cache.pending_dropped_blacklisted", TCache.droppedPendingCount());
  Stats.set("robust.bailouts", Robust.Bailouts);
  Stats.set("robust.retries", Robust.Retries);
  Stats.set("robust.fallback_insts", Robust.FallbackInsts);
  Stats.set("robust.blacklisted_pcs", Profile.blacklistedCount());
  for (size_t I = 0; I != Robust.ByReason.size(); ++I)
    if (Robust.ByReason[I])
      Stats.set(std::string("robust.bailout.") +
                    dbt::getTranslateStatusName(dbt::TranslateStatus(I)),
                Robust.ByReason[I]);
  if (Service) {
    Stats.set("async.workers", Service->workerCount());
    Stats.set("async.submitted", Async.Submitted);
    Stats.set("async.installed", Async.Installed);
    Stats.set("async.discarded_stale", Async.DiscardedStale);
    Stats.set("async.demand_waits", Async.DemandWaits);
    Stats.set("async.inline_units", Async.InlineUnits);
    Stats.set("async.offloaded_units", Async.OffloadedUnits);
    Stats.set("async.insts_during_xlate", Async.InstsDuringXlate);
    Stats.set("async.evict_races", EvictRaces);
  }
  if (Config.NativeTier) {
    Stats.set("native.enabled", NativeSvc ? 1 : 0);
    if (Nat.NoToolchain)
      Stats.set("native.no_toolchain", Nat.NoToolchain);
    if (NativeSvc) {
      Stats.set("native.workers", NativeSvc->workerCount());
      Stats.set("native.submitted", Nat.Submitted);
      Stats.set("native.compiles", Nat.Compiles);
      Stats.set("native.compile_failed", Nat.CompileFailed);
      Stats.set("native.load_failed", Nat.LoadFailed);
      Stats.set("native.installed", Nat.Installed);
      Stats.set("native.reattached", Nat.Reattached);
      Stats.set("native.pending_drops", Nat.PendingDrops);
      Stats.set("native.runs", Nat.Runs);
      Stats.set("native.insts", Nat.Insts);
      Stats.set("native.imported_objects", Nat.ImportedObjects);
      Stats.set("native.objects", NativeObjects.size());
      Stats.set("native.modules_live", native::liveModuleCount());
    }
  }
  return Stats;
}

/// Counters in stats() that are gauges of *current* VM state (occupancy,
/// high-water marks, pool sizes) rather than monotonically accumulating
/// event counts. A per-request delta must report these at face value: the
/// eviction statistics, for example, can shrink tcache.fragments below a
/// snapshot taken a request ago, and a saturating subtraction would then
/// claim "zero fragments resident" to one request and misattribute the
/// rest to another.
static const char *const GaugeStats[] = {
    "tcache.fragments",        "tcache.body_bytes",
    "tcache.unique_source_insts", "cache.budget_high_water",
    "robust.blacklisted_pcs",  "async.workers",
    "persist.store_images",    "persist.store_bytes",
    "native.enabled",          "native.workers",
    "native.objects",          "native.modules_live",
};

StatisticSet VirtualMachine::statsDelta() {
  const StatisticSet &Now = stats();
  StatisticSet Delta = Now.deltaFrom(StatsBaseline);
  for (const char *Gauge : GaugeStats)
    if (Now.has(Gauge))
      Delta.set(Gauge, Now.get(Gauge));
  StatsBaseline = Now;
  return Delta;
}

// ---------------------------------------------------------------------------
// Top-level run loop.
// ---------------------------------------------------------------------------

RunResult VirtualMachine::run() {
  RunResult Result = runLoop();
  // Settle in-flight translations before anything inspects the cache (the
  // persisted file and final statistics must match a synchronous run).
  drainAllOutstanding();
  if (NativeSvc)
    drainNativeCompleted();
  // A shared-store VM is a pure consumer: SharedStore takes precedence
  // over PersistPath entirely, including the save side.
  if (!Config.PersistPath.empty() && Config.PersistSave && !Config.SharedStore)
    savePersistedCache();
  return Result;
}

RunResult VirtualMachine::runLoop() {
  RunResult Result;
  while (GuestInsts < Config.MaxGuestInsts) {
    InterpOutcome Out = interpretUntilTranslated();
    if (Out.Status == StepStatus::Halted) {
      Result.Reason = StopReason::Halted;
      return Result;
    }
    if (Out.Status == StepStatus::Trapped) {
      Result.Reason = StopReason::Trapped;
      Result.Trap.Arch = Interp.state();
      Result.Trap.TrapInfo = Out.TrapInfo;
      return Result;
    }
    if (!Out.Frag)
      break; // Budget exhausted while interpreting.
    if (Timing)
      Timing->beginSegment();
    SegmentOutcome Seg = executeTranslated(Out.Frag);
    switch (Seg.K) {
    case SegmentOutcome::Kind::ToInterpreter:
      continue;
    case SegmentOutcome::Kind::Halted:
      Result.Reason = StopReason::Halted;
      return Result;
    case SegmentOutcome::Kind::Trapped:
      Result.Reason = StopReason::Trapped;
      Result.Trap = Seg.Trap;
      return Result;
    case SegmentOutcome::Kind::Budget:
      Result.Reason = StopReason::Budget;
      return Result;
    }
  }
  Result.Reason = StopReason::Budget;
  return Result;
}

// ---------------------------------------------------------------------------
// Original (non-DBT) simulation.
// ---------------------------------------------------------------------------

StepStatus vm::runOriginal(GuestMemory &Mem, uint64_t EntryPc,
                           uarch::TimingModel *Model, uint64_t MaxInsts,
                           StatisticSet *Stats) {
  Interpreter Interp(Mem);
  Interp.state().Pc = EntryPc;
  if (Model)
    Model->beginSegment();

  for (uint64_t N = 0; N != MaxInsts; ++N) {
    StepInfo Info = Interp.step();
    if (Info.Status == StepStatus::Trapped)
      return StepStatus::Trapped;

    if (Model) {
      const alpha::AlphaInst &Inst = Info.Inst;
      TraceOp Op;
      Op.Pc = Info.Pc;
      Op.MemAddr = Info.MemAddr;
      Op.Taken = Info.Taken;
      Op.NextPc = Info.NextPc;
      Op.VCredit = Inst.isNop() ? 0 : 1;
      std::array<uint8_t, 3> Ins;
      unsigned NumIns = Inst.inputRegs(Ins);
      if (NumIns > 0)
        Op.Src1 = Ins[0];
      if (NumIns > 1)
        Op.Src2 = Ins[1];
      int OutReg = Inst.outputReg();
      Op.Dest = OutReg < 0 ? uarch::NoTraceReg : uint8_t(OutReg);
      switch (Inst.info().Kind) {
      case alpha::InstKind::Mul:
        Op.Class = OpClass::IntMul;
        break;
      case alpha::InstKind::Load:
        Op.Class = OpClass::Load;
        break;
      case alpha::InstKind::Store:
        Op.Class = OpClass::Store;
        break;
      case alpha::InstKind::CondBranch:
        Op.Class = OpClass::CondBr;
        break;
      case alpha::InstKind::Br:
        Op.Class = OpClass::DirectBr;
        break;
      case alpha::InstKind::Bsr:
        Op.Class = OpClass::DirectBr;
        Op.RasPush = true;
        break;
      case alpha::InstKind::Jmp:
        Op.Class = OpClass::Indirect;
        break;
      case alpha::InstKind::Jsr:
        Op.Class = OpClass::Indirect;
        Op.RasPush = true;
        break;
      case alpha::InstKind::Ret:
        Op.Class = OpClass::Return;
        Op.Taken = true;
        break;
      default:
        Op.Class = OpClass::IntAlu;
        break;
      }
      Model->consume(Op);
    }
    if (Stats)
      Stats->add("orig.insts");

    if (Info.Status == StepStatus::Halted)
      return StepStatus::Halted;
  }
  return StepStatus::Ok;
}
