//===- core/Superblock.h - Recorded hot-path superblocks ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of translation (Section 3.1): a superblock — a single-entry,
/// multiple-exit instruction sequence recorded along the interpreted hot
/// path (a variant of Dynamo's Most Recently Executed Tail heuristic).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_SUPERBLOCK_H
#define ILDP_CORE_SUPERBLOCK_H

#include "alpha/AlphaInst.h"

#include <cstdint>
#include <vector>

namespace ildp {
namespace dbt {

/// One source instruction captured during recording.
struct SourceInst {
  uint64_t VAddr = 0;
  alpha::AlphaInst Inst;
  bool Taken = false;     ///< Control transfers: direction during recording.
  uint64_t NextVAddr = 0; ///< The address actually executed next.
};

/// Why recording stopped (Section 3.1's fragment-ending conditions).
enum class SbEndReason : uint8_t {
  IndirectJump,  ///< JMP or JSR.
  Return,        ///< RET.
  Trap,          ///< CALL_PAL (HALT or GENTRAP).
  BackwardTaken, ///< Backward taken conditional branch.
  Cycle,         ///< Already-collected instruction reached again.
  MaxSize,       ///< Size limit reached.
  Aborted,       ///< Recording hit a trap/fault mid-path (discarded tail).
};

/// A recorded superblock.
struct Superblock {
  uint64_t EntryVAddr = 0;
  std::vector<SourceInst> Insts;
  SbEndReason End = SbEndReason::MaxSize;
  /// The V-ISA address control flowed to after the final instruction.
  uint64_t FinalNextVAddr = 0;
};

/// The V-ISA targets of every patchable exit the translation of \p Sb will
/// carry (side exits of conditional branches plus the terminal branch),
/// computed from the recording alone. This mirrors the exit selection of
/// lowering + codegen exactly, so the VM can register exit targets as
/// trace-start candidates at recording time — before a background
/// translation of the superblock has produced the fragment (asynchronous
/// translation must register them at the same logical point a synchronous
/// install would). May contain duplicates.
std::vector<uint64_t> collectExitTargets(const Superblock &Sb);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_SUPERBLOCK_H
