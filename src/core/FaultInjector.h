//===- core/FaultInjector.h - Deterministic translation fault injection ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable fault injection for the guarded translation
/// pipeline (DESIGN.md §9). Each named site sits at one pipeline boundary:
/// the stage functions call shouldFail() on entry and bail out with
/// TranslateStatus::InjectedFault when the site fires. Sites:
///
///   Decode        - translate() input validation
///   Lowering      - lower()
///   Usage         - analyzeUsage()
///   StrandAlloc   - formStrandsAndAllocate()
///   CodeGen       - generateCode() body emission
///   Assemble      - generateCode() encoding/sizing pass
///   AsyncWorker   - TranslationService worker, before translate()
///   PersistImport - VM warm-start import of a persisted cache file
///   EvictSelect   - TranslationCache victim selection under a byte budget
///   Unchain       - TranslationCache exit unchaining during an eviction
///   NativeCompile - NativeService worker, before host compilation
///   NativeLoad    - dlopen/attach of a compiled native module
///
/// A fire at either eviction site aborts the eviction sequence; the cache
/// degrades to a wholesale flush rather than risking half-torn-down
/// linkage (DESIGN.md §10).
///
/// All counters are atomic: the injector is shared between the VM thread
/// and translation workers. Firing decisions depend only on the per-site
/// hit index, so a single-worker (or synchronous) run is exactly
/// reproducible; with several workers the *set* of fired hits is still
/// deterministic per site even though request interleaving is not.
///
/// The injector is test/bench machinery: a VM without one attached
/// (DbtConfig::Fault == nullptr) never pays more than a null-pointer check
/// per stage.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_FAULTINJECTOR_H
#define ILDP_CORE_FAULTINJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>

namespace ildp {
namespace dbt {

/// Named injection sites, one per guarded pipeline boundary.
enum class FaultSite : uint8_t {
  Decode,
  Lowering,
  Usage,
  StrandAlloc,
  CodeGen,
  Assemble,
  AsyncWorker,
  PersistImport,
  EvictSelect,
  Unchain,
  NativeCompile,
  NativeLoad,
};

constexpr unsigned NumFaultSites = 12;

/// Stable lowercase site name ("decode", "strand_alloc", ...).
const char *getFaultSiteName(FaultSite Site);

/// Deterministic per-site fault scheduler.
class FaultInjector {
public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Every pass through \p Site fails.
  void armAlways(FaultSite Site);
  /// The first \p Count passes through \p Site fail; later passes succeed.
  void armCount(FaultSite Site, uint64_t Count);
  /// A pass fails iff a seeded hash of its hit index lands under
  /// \p Numerator / \p Denominator (deterministic pseudo-random schedule).
  void armRandom(FaultSite Site, uint64_t Seed, uint64_t Numerator,
                 uint64_t Denominator);
  /// Stops \p Site from firing. Hit/fired counters are preserved.
  void disarm(FaultSite Site);

  /// Called by the pipeline at \p Site: counts the hit and reports whether
  /// the scheduled fault fires. Thread-safe.
  bool shouldFail(FaultSite Site);

  /// Times the site was reached / times it fired.
  uint64_t hitCount(FaultSite Site) const;
  uint64_t firedCount(FaultSite Site) const;
  /// Total fires across all sites.
  uint64_t totalFired() const;
  /// Zeroes all hit/fired counters (arming is untouched).
  void resetCounts();

private:
  enum class Mode : uint8_t { Off, Always, Count, Random };

  struct Site {
    std::atomic<Mode> M{Mode::Off};
    uint64_t Param = 0; ///< Count limit, or numerator for Random.
    uint64_t Denom = 1;
    uint64_t Seed = 0;
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Fired{0};
  };

  std::array<Site, NumFaultSites> Sites;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_FAULTINJECTOR_H
