//===- core/TranslationService.cpp - Background translation workers -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TranslationService.h"

#include "core/FaultInjector.h"

#include <cassert>

using namespace ildp;
using namespace ildp::dbt;

TranslationService::TranslationService(const DbtConfig &Config,
                                       unsigned Workers, size_t QueueDepth)
    : Config(Config), Requests(QueueDepth) {
  assert(Workers > 0 && "A translation service needs at least one worker");
  this->Workers.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    this->Workers.emplace_back([this] { workerMain(); });
}

TranslationService::~TranslationService() { shutdown(/*FinishQueued=*/false); }

void TranslationService::workerMain() {
  while (std::optional<TranslateRequest> Req = Requests.pop()) {
    TranslateCompletion Out;
    Out.Seq = Req->Seq;
    Out.Epoch = Req->Epoch;
    Out.CacheGen = Req->CacheGen;
    Out.EntryVAddr = Req->Sb.EntryVAddr;

    Out.SourceInsts = Req->Sb.Insts.size();

    ChainEnv Env;
    std::unordered_set<uint64_t> Chainable = std::move(Req->Chainable);
    Env.IsTranslated = [&Chainable](uint64_t VAddr) {
      return Chainable.count(VAddr) != 0;
    };
    if (Config.Fault && Config.Fault->shouldFail(FaultSite::AsyncWorker)) {
      Out.Status = TranslateStatus::InjectedFault;
      Out.Detail = "async_worker";
    } else if (Expected<TranslationResult> R =
                   translate(Req->Sb, Config, Env)) {
      Out.Result = R.take();
    } else {
      Out.Status = R.status();
      Out.Detail = R.detail();
    }

    {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      Done.emplace(Out.Seq, std::move(Out));
      ReadySeq.store(Done.begin()->first, std::memory_order_release);
    }
    DoneCv.notify_all();
  }
}

uint64_t TranslationService::submit(Superblock Sb,
                                    std::unordered_set<uint64_t> Chainable,
                                    uint64_t Epoch, uint64_t CacheGen) {
  assert(!ShutDown && "submit() after shutdown");
  TranslateRequest Req;
  Req.Seq = NextSubmitSeq;
  Req.Epoch = Epoch;
  Req.CacheGen = CacheGen;
  Req.Sb = std::move(Sb);
  Req.Chainable = std::move(Chainable);
  bool Accepted = Requests.push(std::move(Req));
  assert(Accepted && "Request queue closed while the service is live");
  (void)Accepted;
  return NextSubmitSeq++;
}

std::optional<TranslateCompletion> TranslationService::tryTakeNext() {
  std::lock_guard<std::mutex> Lock(DoneMutex);
  auto It = Done.find(NextDeliverSeq);
  if (It == Done.end())
    return std::nullopt;
  TranslateCompletion C = std::move(It->second);
  Done.erase(It);
  ReadySeq.store(Done.empty() ? 0 : Done.begin()->first,
                 std::memory_order_release);
  ++NextDeliverSeq;
  return C;
}

TranslateCompletion TranslationService::takeNext() {
  assert(NextDeliverSeq < NextSubmitSeq && "takeNext() with nothing pending");
  std::unique_lock<std::mutex> Lock(DoneMutex);
  DoneCv.wait(Lock, [&] { return Done.count(NextDeliverSeq) != 0; });
  auto It = Done.find(NextDeliverSeq);
  TranslateCompletion C = std::move(It->second);
  Done.erase(It);
  ReadySeq.store(Done.empty() ? 0 : Done.begin()->first,
                 std::memory_order_release);
  ++NextDeliverSeq;
  return C;
}

size_t TranslationService::shutdown(bool FinishQueued) {
  if (ShutDown)
    return 0;
  ShutDown = true;
  size_t Cancelled = FinishQueued ? (Requests.close(), size_t(0))
                                  : Requests.closeAndClear();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  return Cancelled;
}
