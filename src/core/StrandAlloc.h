//===- core/StrandAlloc.h - Strand formation & accumulator assignment -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's strand formation and accumulator assignment (Section 3.3):
///
/// **Strand formation** — every value-producing micro-op gets a strand
/// number. Zero local inputs start a strand (instructions with two global
/// register inputs are broken into copy-from-GPR + instruction); one local
/// input joins the producer's strand; with two local inputs a heuristic
/// picks (temp producer first, else the longer strand) and the other value
/// is demoted to a spill global. Conditional branches opportunistically
/// read a still-live accumulator (Figure 2's "P <- L1, if (A1 != 0)").
///
/// **Accumulator assignment** — strands map onto the finite logical
/// accumulators with a simple linear scan (no graph coloring). When the
/// translator runs out of accumulators, the live strand with the farthest
/// next activity is terminated: a copy-to-GPR materializes its value and,
/// if the strand has future instructions, a copy-from-GPR resumes it in a
/// fresh accumulator (recorded as a Reload for the code generator).
///
/// A final pass implements the precise-trap copy rule of Section 2.2 for
/// the basic ISA: a value whose accumulator is overwritten while its
/// architected register is still live at a later potentially-excepting
/// instruction must be copied to the GPR file ("local -> global" /
/// "no user -> global" promotions).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_STRANDALLOC_H
#define ILDP_CORE_STRANDALLOC_H

#include "core/Config.h"
#include "core/Lowering.h"
#include "core/TranslateStatus.h"

#include <vector>

namespace ildp {
namespace dbt {

/// Accumulator-assignment side products for the code generator.
struct StrandAllocResult {
  /// A strand resumption: emit copy-from-GPR of ValueDefIdx's value into
  /// NewAcc immediately before uop BeforeUopIdx.
  struct Reload {
    int32_t BeforeUopIdx;
    int32_t ValueDefIdx;
    int16_t NewAcc;
  };
  std::vector<Reload> Reloads; ///< Sorted by BeforeUopIdx.

  unsigned NumStrands = 0;
  unsigned SpillTerminations = 0;
  unsigned PreCopies = 0;      ///< Two-global-input copy-from-GPR count.
  unsigned TrapPromotions = 0; ///< Section 2.2 copy-rule promotions.
};

/// Runs strand formation, accumulator assignment, and (for the basic ISA)
/// the precise-trap copy rule over \p Block in place. Not used by the
/// straightening backend. On failure \p Block is partially mutated and
/// must be discarded.
Expected<StrandAllocResult> formStrandsAndAllocate(LoweredBlock &Block,
                                                   const DbtConfig &Config);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_STRANDALLOC_H
