//===- core/Lowering.h - Superblock to micro-op lowering ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a recorded superblock into the micro-op IR (see Uop.h for the
/// decomposition rules). Control-transfer handling:
///   - conditional branches become CondBr side-exit uops; non-final
///     branches taken at record time get their condition reversed so the
///     fall-through path stays inside the fragment (Section 3.2),
///   - BR disappears (straightening); BSR leaves a SaveRet uop,
///   - the superblock-ending instruction leaves no uop here — the code
///     generator emits the chaining sequence for it.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_LOWERING_H
#define ILDP_CORE_LOWERING_H

#include "core/Config.h"
#include "core/Superblock.h"
#include "core/TranslateStatus.h"
#include "core/Uop.h"

namespace ildp {
namespace dbt {

/// Per-side-exit description produced by lowering (consumed by codegen).
struct SideExit {
  int32_t UopIdx = -1;    ///< The CondBr uop.
  uint64_t ExitVAddr = 0; ///< Where the exit leads in V-ISA space.
};

/// Lowering result.
struct LoweredBlock {
  UopList List;
  std::vector<SideExit> SideExits;
  /// Number of source (V-ISA) instructions represented (including removed
  /// NOPs and straightened BRs).
  unsigned SourceInsts = 0;
  /// Number of NOPs / straightened BRs dropped.
  unsigned NopsRemoved = 0;
  /// V-instruction credit not yet attached to any uop (removed
  /// instructions at the block tail); codegen attaches it to the chaining
  /// code.
  unsigned TrailingVCredit = 0;
};

/// Returns the conditional branch opcode with the reversed condition.
/// Raises a TranslateAbort (UnsupportedOpcode) for non-branch opcodes.
alpha::Opcode reverseCondBranch(alpha::Opcode Op);

/// Lowers \p Sb under \p Config. Fails with a typed status instead of
/// asserting when the superblock violates recorder invariants.
Expected<LoweredBlock> lower(const Superblock &Sb, const DbtConfig &Config);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_LOWERING_H
