//===- core/FaultInjector.cpp - Deterministic translation fault injection -===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"

using namespace ildp;
using namespace ildp::dbt;

const char *dbt::getFaultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::Decode:
    return "decode";
  case FaultSite::Lowering:
    return "lowering";
  case FaultSite::Usage:
    return "usage";
  case FaultSite::StrandAlloc:
    return "strand_alloc";
  case FaultSite::CodeGen:
    return "codegen";
  case FaultSite::Assemble:
    return "assemble";
  case FaultSite::AsyncWorker:
    return "async_worker";
  case FaultSite::PersistImport:
    return "persist_import";
  case FaultSite::EvictSelect:
    return "evict_select";
  case FaultSite::Unchain:
    return "unchain";
  case FaultSite::NativeCompile:
    return "native_compile";
  case FaultSite::NativeLoad:
    return "native_load";
  }
  return "unknown";
}

void FaultInjector::armAlways(FaultSite S) {
  Sites[size_t(S)].M.store(Mode::Always, std::memory_order_release);
}

void FaultInjector::armCount(FaultSite S, uint64_t Count) {
  Site &Info = Sites[size_t(S)];
  Info.Param = Count;
  Info.M.store(Mode::Count, std::memory_order_release);
}

void FaultInjector::armRandom(FaultSite S, uint64_t Seed, uint64_t Numerator,
                              uint64_t Denominator) {
  Site &Info = Sites[size_t(S)];
  Info.Param = Numerator;
  Info.Denom = Denominator == 0 ? 1 : Denominator;
  Info.Seed = Seed;
  Info.M.store(Mode::Random, std::memory_order_release);
}

void FaultInjector::disarm(FaultSite S) {
  Sites[size_t(S)].M.store(Mode::Off, std::memory_order_release);
}

/// splitmix64 finalizer: a well-mixed hash of the hit index, so the Random
/// schedule is reproducible from (seed, hit index) alone.
static uint64_t mix(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

bool FaultInjector::shouldFail(FaultSite S) {
  Site &Info = Sites[size_t(S)];
  Mode M = Info.M.load(std::memory_order_acquire);
  if (M == Mode::Off) {
    Info.Hits.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t Hit = Info.Hits.fetch_add(1, std::memory_order_relaxed);
  bool Fire = false;
  switch (M) {
  case Mode::Off:
    break;
  case Mode::Always:
    Fire = true;
    break;
  case Mode::Count:
    Fire = Hit < Info.Param;
    break;
  case Mode::Random:
    Fire = mix(Info.Seed ^ Hit) % Info.Denom < Info.Param;
    break;
  }
  if (Fire)
    Info.Fired.fetch_add(1, std::memory_order_relaxed);
  return Fire;
}

uint64_t FaultInjector::hitCount(FaultSite S) const {
  return Sites[size_t(S)].Hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::firedCount(FaultSite S) const {
  return Sites[size_t(S)].Fired.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::totalFired() const {
  uint64_t Total = 0;
  for (const Site &Info : Sites)
    Total += Info.Fired.load(std::memory_order_relaxed);
  return Total;
}

void FaultInjector::resetCounts() {
  for (Site &Info : Sites) {
    Info.Hits.store(0, std::memory_order_relaxed);
    Info.Fired.store(0, std::memory_order_relaxed);
  }
}
