//===- core/TrapRecovery.cpp - Precise trap state reconstruction ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TrapRecovery.h"

#include <cassert>

using namespace ildp;
using namespace ildp::dbt;

RecoveredState dbt::recoverTrapState(const Fragment &Frag,
                                     uint32_t InstIndex,
                                     const iisa::IExecState &State,
                                     Trap RawTrap) {
  const PeiEntry *Entry = Frag.findPei(InstIndex);
  assert(Entry && "Trapping instruction has no PEI table entry");
  assert(State.VpcBase == Frag.EntryVAddr &&
         "set-VPC-base register does not anchor this fragment");

  RecoveredState Out;
  Out.TrapInfo = RawTrap;
  Out.TrapInfo.Pc = Entry->VAddr;

  // Architected registers: the GPR file is the base image...
  Out.Arch = State.toArchState();
  Out.Arch.Pc = Entry->VAddr;
  // ...overlaid with values the basic ISA still holds in accumulators.
  for (auto [Reg, Acc] : Entry->AccHeldRegs) {
    assert(Acc < iisa::MaxAccumulators && "Bad accumulator in PEI entry");
    Out.Arch.writeGpr(Reg, State.Acc[Acc]);
  }
  return Out;
}
