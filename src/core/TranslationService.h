//===- core/TranslationService.h - Background translation workers ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Asynchronous translation: takes the pure half of the pipeline
/// (lowering -> usage analysis -> strand formation -> code generation) off
/// the VM dispatch path and onto worker threads. Superblock recording stays
/// on the VM thread (it advances guest state); everything after it is a
/// pure function of (superblock, config, chain-environment snapshot) and
/// runs here.
///
/// Protocol: the VM submits a TranslateRequest (bounded queue, submission
/// blocks when full) and later drains TranslateCompletions *in submission
/// order* — takeNext()/tryTakeNext() reorder out-of-order worker
/// completions back into sequence, so fragment installation on the VM
/// thread is serialized exactly as a synchronous translator would have
/// installed, and all statistics stay deterministic.
///
/// The chain-environment snapshot (the set of V-ISA entries that are
/// translated *or pending*) is captured by value at submission; a worker
/// never touches VM-owned state. Epochs handle translation-cache flushes:
/// a flush bumps the epoch, and results from older epochs are drained for
/// their cost accounting but never installed.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRANSLATIONSERVICE_H
#define ILDP_CORE_TRANSLATIONSERVICE_H

#include "core/Superblock.h"
#include "core/Translator.h"
#include "support/WorkQueue.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

namespace ildp {
namespace dbt {

/// One unit of background translation work.
struct TranslateRequest {
  uint64_t Seq = 0;   ///< Submission sequence number (1-based).
  uint64_t Epoch = 0; ///< Translation-cache flush epoch at submission.
  /// Translation-cache eviction-event count at submission; echoed in the
  /// completion so the VM can tell that the Chainable snapshot predates
  /// evictions (install() then reconciles stale chained exits).
  uint64_t CacheGen = 0;
  Superblock Sb;
  /// Snapshot of the entries translated or pending at submission time;
  /// the worker's ChainEnv::IsTranslated queries this set, never the live
  /// translation cache.
  std::unordered_set<uint64_t> Chainable;
};

/// One finished translation attempt, handed back to the VM thread. A
/// worker that hits a pipeline bailout (or an injected fault) delivers a
/// typed failure completion — Status != Ok, Result empty — instead of
/// crashing the pool; the VM falls back to interpretation for the entry.
struct TranslateCompletion {
  uint64_t Seq = 0;
  uint64_t Epoch = 0;
  uint64_t CacheGen = 0; ///< Eviction-event count at submission (see above).
  uint64_t EntryVAddr = 0;
  /// Source instructions of the recorded superblock (kept for failure
  /// accounting: the recording was interpreted for nothing).
  uint64_t SourceInsts = 0;
  TranslateStatus Status = TranslateStatus::Ok;
  const char *Detail = ""; ///< Static string; never owned.
  TranslationResult Result;

  bool ok() const { return Status == TranslateStatus::Ok; }
};

/// A pool of translation worker threads with in-order completion delivery.
class TranslationService {
public:
  /// Spawns \p Workers threads translating under \p Config. \p QueueDepth
  /// bounds the request queue (back-pressure on the VM thread).
  TranslationService(const DbtConfig &Config, unsigned Workers,
                     size_t QueueDepth);
  ~TranslationService();

  TranslationService(const TranslationService &) = delete;
  TranslationService &operator=(const TranslationService &) = delete;

  /// Enqueues \p Sb for translation; blocks while the request queue is
  /// full. Returns the request's sequence number. \p CacheGen is the
  /// translation cache's eviction-event count at submission, echoed back
  /// in the completion.
  uint64_t submit(Superblock Sb, std::unordered_set<uint64_t> Chainable,
                  uint64_t Epoch, uint64_t CacheGen = 0);

  /// The completion with the lowest undelivered sequence number, if its
  /// translation has finished; std::nullopt otherwise. Never blocks.
  std::optional<TranslateCompletion> tryTakeNext();

  /// Blocks until the next-in-order completion is available and returns
  /// it. Must not be called with no request outstanding.
  TranslateCompletion takeNext();

  /// Cheap VM-thread fast path: true when tryTakeNext() would succeed.
  bool nextReady() const {
    return ReadySeq.load(std::memory_order_acquire) == NextDeliverSeq;
  }

  /// Requests submitted so far.
  uint64_t submittedCount() const { return NextSubmitSeq - 1; }
  /// Completions delivered so far.
  uint64_t deliveredCount() const { return NextDeliverSeq - 1; }
  /// Requests submitted but not yet delivered.
  uint64_t outstandingCount() const { return submittedCount() - deliveredCount(); }

  unsigned workerCount() const { return unsigned(Workers.size()); }

  /// Stops the pool. With \p FinishQueued, workers complete every queued
  /// request first (results stay takeable); otherwise queued requests are
  /// cancelled and dropped. Returns the number of requests cancelled.
  /// Idempotent; the destructor performs a cancelling shutdown.
  size_t shutdown(bool FinishQueued);

private:
  void workerMain();

  DbtConfig Config;
  WorkQueue<TranslateRequest> Requests;
  std::vector<std::thread> Workers;

  // Completion reordering. Workers insert under the mutex; the VM thread
  // removes in sequence order. ReadySeq caches the lowest buffered
  // sequence number so nextReady() is one atomic load on the VM thread.
  mutable std::mutex DoneMutex;
  std::condition_variable DoneCv;
  std::map<uint64_t, TranslateCompletion> Done;
  std::atomic<uint64_t> ReadySeq{0};

  // VM-thread-only counters (no locking needed).
  uint64_t NextSubmitSeq = 1;
  uint64_t NextDeliverSeq = 1;
  bool ShutDown = false;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRANSLATIONSERVICE_H
