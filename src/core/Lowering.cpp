//===- core/Lowering.cpp - Superblock to micro-op lowering ----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Lowering.h"

#include "alpha/Semantics.h"
#include "core/FaultInjector.h"

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::alpha;

Opcode dbt::reverseCondBranch(Opcode Op) {
  switch (Op) {
  case Opcode::BEQ:
    return Opcode::BNE;
  case Opcode::BNE:
    return Opcode::BEQ;
  case Opcode::BLT:
    return Opcode::BGE;
  case Opcode::BGE:
    return Opcode::BLT;
  case Opcode::BLE:
    return Opcode::BGT;
  case Opcode::BGT:
    return Opcode::BLE;
  case Opcode::BLBC:
    return Opcode::BLBS;
  case Opcode::BLBS:
    return Opcode::BLBC;
  default:
    bailout(TranslateStatus::UnsupportedOpcode, "Not a conditional branch");
  }
}

namespace {

/// Incremental lowering context for one superblock.
class LoweringContext {
public:
  LoweringContext(const Superblock &Sb, const DbtConfig &Config)
      : Sb(Sb), Config(Config) {}

  LoweredBlock run();

private:
  const Superblock &Sb;
  const DbtConfig &Config;
  LoweredBlock Out;
  /// V-credit carried by removed instructions (NOPs, straightened BRs)
  /// until the next emitted uop.
  unsigned PendingCredit = 0;
  bool CreditArmed = false; ///< Next emitted uop leads a source inst.

  UopInput regIn(uint8_t Reg) {
    return Reg == RegZero ? UopInput::imm(0) : UopInput::value(ValueId(Reg));
  }

  Uop &emit(Uop U, const SourceInst &Src) {
    U.VAddr = Src.VAddr;
    U.SrcIndex = int32_t(&Src - Sb.Insts.data());
    if (CreditArmed) {
      U.VCredit = uint8_t(1 + PendingCredit);
      PendingCredit = 0;
      CreditArmed = false;
    }
    Out.List.Uops.push_back(U);
    return Out.List.Uops.back();
  }

  void lowerOperate(const SourceInst &Src);
  void lowerCondMove(const SourceInst &Src);
  /// Returns the address input for a memory access, emitting the address
  /// add when decomposition is required.
  UopInput memAddress(const SourceInst &Src, int32_t &DispOut);
  void lowerLoad(const SourceInst &Src);
  void lowerStore(const SourceInst &Src);
  void lowerCondBranch(const SourceInst &Src, bool IsFinal);
  void lowerEnding(const SourceInst &Src);
};

} // namespace

void LoweringContext::lowerOperate(const SourceInst &Src) {
  const AlphaInst &I = Src.Inst;
  Uop U;
  U.Kind = UopKind::Alu;
  U.Op = I.Op;
  if (I.info().Form == Format::Mem) {
    // LDA/LDAH: base register plus immediate displacement.
    U.In1 = regIn(I.Rb);
    U.In2 = UopInput::imm(I.Disp);
    U.Out = ValueId(I.Ra);
  } else {
    U.In1 = regIn(I.Ra);
    U.In2 = I.HasLit ? UopInput::imm(I.Lit) : regIn(I.Rb);
    U.Out = ValueId(I.Rc);
  }
  emit(U, Src);
}

void LoweringContext::lowerCondMove(const SourceInst &Src) {
  const AlphaInst &I = Src.Inst;
  if (Config.Variant == iisa::IsaVariant::Straight) {
    // The straightening backend keeps Alpha semantics whole.
    Uop U;
    U.Kind = UopKind::Alu;
    U.Op = I.Op;
    U.In1 = regIn(I.Ra);
    U.In2 = I.HasLit ? UopInput::imm(I.Lit) : regIn(I.Rb);
    U.Out = ValueId(I.Rc);
    emit(U, Src);
    return;
  }

  // Modified ISA: the paper's two-instruction decomposition — the blend
  // reads the old value through its own (readable) destination-GPR field.
  if (Config.Variant == iisa::IsaVariant::Modified && Config.CmovTwoOp) {
    ValueId Mask2 = Out.List.newTemp();
    Uop M2;
    M2.Kind = UopKind::CmovMask;
    M2.Op = I.Op;
    M2.In1 = regIn(I.Ra);
    M2.Out = Mask2;
    emit(M2, Src);
    Uop Blend;
    Blend.Kind = UopKind::CmovBlend;
    Blend.Op = I.Op;
    Blend.In1 = UopInput::value(Mask2);
    Blend.In2 = I.HasLit ? UopInput::imm(I.Lit) : regIn(I.Rb);
    Blend.Out = ValueId(I.Rc);
    emit(Blend, Src);
    return;
  }

  // Generic decomposition through temps (Section 3.3's Temp class) so
  // every instruction has at most two inputs:
  //   m  = cond(Ra) ? ~0 : 0
  //   t  = Rb & m
  //   u  = Rc_old & ~m          (BIC)
  //   Rc = t | u
  ValueId M = Out.List.newTemp();
  ValueId T = Out.List.newTemp();
  ValueId U2 = Out.List.newTemp();

  Uop Mask;
  Mask.Kind = UopKind::CmovMask;
  Mask.Op = I.Op;
  Mask.In1 = regIn(I.Ra);
  Mask.Out = M;
  emit(Mask, Src);

  Uop And;
  And.Kind = UopKind::Alu;
  And.Op = Opcode::AND;
  And.In1 = I.HasLit ? UopInput::imm(I.Lit) : regIn(I.Rb);
  And.In2 = UopInput::value(M);
  And.Out = T;
  emit(And, Src);

  Uop Bic;
  Bic.Kind = UopKind::Alu;
  Bic.Op = Opcode::BIC;
  Bic.In1 = regIn(I.Rc);
  Bic.In2 = UopInput::value(M);
  Bic.Out = U2;
  emit(Bic, Src);

  Uop Or;
  Or.Kind = UopKind::Alu;
  Or.Op = Opcode::BIS;
  Or.In1 = UopInput::value(T);
  Or.In2 = UopInput::value(U2);
  Or.Out = ValueId(I.Rc);
  emit(Or, Src);
}

UopInput LoweringContext::memAddress(const SourceInst &Src, int32_t &DispOut) {
  const AlphaInst &I = Src.Inst;
  DispOut = 0;
  bool NeedSplit = Config.Variant != iisa::IsaVariant::Straight &&
                   (Config.SplitMemoryOps ? (I.Disp != 0 || I.Rb == RegZero)
                                          : I.Rb == RegZero);
  if (!NeedSplit) {
    if (Config.Variant == iisa::IsaVariant::Straight || !Config.SplitMemoryOps)
      DispOut = I.Disp;
    return regIn(I.Rb);
  }
  // Decompose: t = base + disp; access mem[t].
  ValueId T = Out.List.newTemp();
  Uop Add;
  Add.Kind = UopKind::Alu;
  Add.Op = Opcode::LDA;
  Add.In1 = regIn(I.Rb);
  Add.In2 = UopInput::imm(I.Disp);
  Add.Out = T;
  emit(Add, Src);
  return UopInput::value(T);
}

void LoweringContext::lowerLoad(const SourceInst &Src) {
  const AlphaInst &I = Src.Inst;
  int32_t Disp = 0;
  UopInput Addr = memAddress(Src, Disp);
  Uop U;
  U.Kind = UopKind::Load;
  U.Op = I.Op;
  U.In2 = Addr;
  U.MemDisp = Disp;
  U.Out = I.Ra == RegZero ? NoVal : ValueId(I.Ra);
  emit(U, Src);
}

void LoweringContext::lowerStore(const SourceInst &Src) {
  const AlphaInst &I = Src.Inst;
  int32_t Disp = 0;
  UopInput Addr = memAddress(Src, Disp);
  Uop U;
  U.Kind = UopKind::Store;
  U.Op = I.Op;
  U.In1 = regIn(I.Ra);
  U.In2 = Addr;
  U.MemDisp = Disp;
  emit(U, Src);
}

void LoweringContext::lowerCondBranch(const SourceInst &Src, bool IsFinal) {
  const AlphaInst &I = Src.Inst;
  uint64_t Target = I.branchTarget(Src.VAddr);
  uint64_t FallThrough = Src.VAddr + InstBytes;

  if (I.Ra == RegZero) {
    // Constant condition: either an unconditional branch in disguise
    // (straightened away like BR) or a never-taken branch (dropped).
    bool AlwaysTaken = evalBranchCond(I.Op, 0);
    (void)AlwaysTaken;
    ++Out.NopsRemoved;
    ++PendingCredit;
    // No uop: recording already followed the real direction.
    return;
  }

  Uop U;
  U.Kind = UopKind::CondBr;
  U.In1 = regIn(I.Ra);
  uint64_t ExitTo;
  if (IsFinal) {
    // Superblock-ending backward taken branch: keep the original sense;
    // the taken path exits (usually back to this fragment's own entry) and
    // the code generator appends the unconditional fall-through branch
    // (Figure 2's "P <- L1 if(...); P <- L2" pair).
    ensure(Src.Taken, TranslateStatus::InternalLowering,
           "Final conditional branch must have been taken");
    U.Op = I.Op;
    ExitTo = Target;
  } else if (Src.Taken) {
    // Taken at translation time: reverse the condition so fetch continues
    // into the recorded (taken) path; the exit leads to the fall-through.
    U.Op = reverseCondBranch(I.Op);
    ExitTo = FallThrough;
  } else {
    U.Op = I.Op;
    ExitTo = Target;
  }
  emit(U, Src);

  SideExit Exit;
  Exit.UopIdx = int32_t(Out.List.Uops.size()) - 1;
  Exit.ExitVAddr = ExitTo;
  Out.SideExits.push_back(Exit);
}

void LoweringContext::lowerEnding(const SourceInst &Src) {
  const AlphaInst &I = Src.Inst;
  switch (I.info().Kind) {
  case InstKind::Jmp:
  case InstKind::Jsr:
  case InstKind::Ret: {
    if (I.info().Kind == InstKind::Jsr && I.Ra != RegZero) {
      Uop Save;
      Save.Kind = UopKind::SaveRet;
      Save.Out = ValueId(I.Ra);
      Save.EmbAddr = Src.VAddr + InstBytes;
      emit(Save, Src);
    }
    if (I.info().Kind == InstKind::Jsr &&
        Config.Chaining == ChainPolicy::SwPredRas) {
      Uop Push;
      Push.Kind = UopKind::PushRas;
      Push.EmbAddr = Src.VAddr + InstBytes;
      emit(Push, Src);
    }
    ensure(I.Rb != RegZero, TranslateStatus::MalformedGuestInst,
           "Indirect jump through the zero register");
    Uop End;
    End.Kind = UopKind::EndJump;
    End.In1 = regIn(I.Rb);
    emit(End, Src);
    break;
  }
  case InstKind::Pal:
    // Halt/Gentrap chaining is emitted by codegen; keep the credit armed
    // for it.
    ++PendingCredit;
    break;
  default:
    break;
  }
}

LoweredBlock LoweringContext::run() {
  const size_t N = Sb.Insts.size();
  bool EnderIsLast = Sb.End == SbEndReason::IndirectJump ||
                     Sb.End == SbEndReason::Return ||
                     Sb.End == SbEndReason::Trap ||
                     Sb.End == SbEndReason::BackwardTaken;

  for (size_t Idx = 0; Idx != N; ++Idx) {
    const SourceInst &Src = Sb.Insts[Idx];
    const AlphaInst &I = Src.Inst;
    bool IsEnder = EnderIsLast && Idx == N - 1;
    ++Out.SourceInsts;
    CreditArmed = true;

    if (I.isNop() || (I.info().Kind == InstKind::Load && I.Ra == RegZero)) {
      // NOPs (and prefetch loads to R31) are removed by translation and do
      // not count in V-ISA program characteristics (Section 4.4) — no
      // V-credit is carried.
      ++Out.NopsRemoved;
      continue;
    }

    switch (I.info().Kind) {
    case InstKind::IntOp:
    case InstKind::Mul:
      lowerOperate(Src);
      break;
    case InstKind::CondMove:
      lowerCondMove(Src);
      break;
    case InstKind::Load:
      lowerLoad(Src);
      break;
    case InstKind::Store:
      lowerStore(Src);
      break;
    case InstKind::CondBranch:
      lowerCondBranch(Src, IsEnder);
      break;
    case InstKind::Br:
      // Straightened away. A BR that saves its return address becomes a
      // save-return-address instruction (Section 3.2).
      if (I.Ra != RegZero) {
        Uop Save;
        Save.Kind = UopKind::SaveRet;
        Save.Out = ValueId(I.Ra);
        Save.EmbAddr = Src.VAddr + InstBytes;
        emit(Save, Src);
      } else {
        ++Out.NopsRemoved;
        ++PendingCredit;
      }
      break;
    case InstKind::Bsr: {
      Uop Save;
      Save.Kind = UopKind::SaveRet;
      Save.Out = ValueId(I.Ra);
      Save.EmbAddr = Src.VAddr + InstBytes;
      emit(Save, Src);
      if (Config.Chaining == ChainPolicy::SwPredRas) {
        Uop Push;
        Push.Kind = UopKind::PushRas;
        Push.EmbAddr = Src.VAddr + InstBytes;
        emit(Push, Src);
      }
      break;
    }
    case InstKind::Jmp:
    case InstKind::Jsr:
    case InstKind::Ret:
    case InstKind::Pal:
      ensure(IsEnder, TranslateStatus::MalformedGuestInst,
             "Indirect jumps and CALL_PAL must end the block");
      lowerEnding(Src);
      break;
    }
    // An armed-but-unconsumed credit belongs to a removed instruction and
    // has already been folded into PendingCredit by the case above.
    CreditArmed = false;
  }

  Out.TrailingVCredit = PendingCredit;
  return std::move(Out);
}

Expected<LoweredBlock> dbt::lower(const Superblock &Sb,
                                  const DbtConfig &Config) {
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::Lowering))
    return {TranslateStatus::InjectedFault, "lowering"};
  try {
    return LoweringContext(Sb, Config).run();
  } catch (const TranslateAbort &Abort) {
    return Abort;
  }
}
