//===- core/SuperblockBuilder.cpp - Hot-path recording --------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SuperblockBuilder.h"

#include <cassert>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::alpha;

SuperblockBuilder::SuperblockBuilder(uint64_t EntryVAddr, unsigned MaxInsts)
    : MaxInsts(MaxInsts) {
  assert(MaxInsts >= 1 && "Superblock size limit must be positive");
  Sb.EntryVAddr = EntryVAddr;
}

SuperblockBuilder::Status SuperblockBuilder::finish(SbEndReason End,
                                                    uint64_t NextVAddr) {
  Sb.End = End;
  Sb.FinalNextVAddr = NextVAddr;
  Finished = true;
  return Status::Done;
}

SuperblockBuilder::Status SuperblockBuilder::append(const StepInfo &Info) {
  assert(!Finished && "append() after recording finished");

  if (Info.Status == StepStatus::Trapped) {
    // The trapping instruction is not collected; the tail before it is
    // still a valid superblock (ends with an exit branch to the trapping
    // address, which re-enters interpretation).
    return finish(SbEndReason::Aborted, Info.Pc);
  }

  SourceInst Src;
  Src.VAddr = Info.Pc;
  Src.Inst = Info.Inst;
  Src.Taken = Info.Taken;
  Src.NextVAddr = Info.NextPc;
  Sb.Insts.push_back(Src);
  Collected.insert(Info.Pc);

  const Opcode Op = Info.Inst.Op;

  // Trap instructions (CALL_PAL) end the superblock.
  if (Op == Opcode::CALL_PAL)
    return finish(SbEndReason::Trap, Info.NextPc);

  // Register-indirect jumps end the superblock.
  if (isIndirectBranch(Op))
    return finish(Op == Opcode::RET ? SbEndReason::Return
                                    : SbEndReason::IndirectJump,
                  Info.NextPc);

  // Backward taken conditional branches end the superblock.
  if (isCondBranch(Op) && Info.Taken && Info.NextPc <= Info.Pc)
    return finish(SbEndReason::BackwardTaken, Info.NextPc);

  // A cycle: the next instruction is already collected.
  if (Collected.count(Info.NextPc))
    return finish(SbEndReason::Cycle, Info.NextPc);

  if (Sb.Insts.size() >= MaxInsts)
    return finish(SbEndReason::MaxSize, Info.NextPc);

  return Status::Continue;
}

Superblock SuperblockBuilder::take() {
  assert(Finished && "take() before recording finished");
  return std::move(Sb);
}

std::vector<uint64_t> dbt::collectExitTargets(const Superblock &Sb) {
  // Must match lowerCondBranch() + Generator::emitChainTail() exactly:
  // every recordExit() call in codegen corresponds to one entry here.
  std::vector<uint64_t> Out;
  for (size_t I = 0; I != Sb.Insts.size(); ++I) {
    const SourceInst &Src = Sb.Insts[I];
    if (Src.Inst.info().Kind != InstKind::CondBranch)
      continue;
    if (Src.Inst.Ra == RegZero)
      continue; // Constant condition: straightened away, no exit.
    bool IsFinal =
        I + 1 == Sb.Insts.size() && Sb.End == SbEndReason::BackwardTaken;
    if (IsFinal) {
      // Superblock-ending backward taken branch: the taken path exits.
      Out.push_back(Src.Inst.branchTarget(Src.VAddr));
    } else if (Src.Taken) {
      // Condition reversed by lowering: the exit is the fall-through.
      Out.push_back(Src.VAddr + InstBytes);
    } else {
      Out.push_back(Src.Inst.branchTarget(Src.VAddr));
    }
  }
  switch (Sb.End) {
  case SbEndReason::BackwardTaken:
    // The unconditional fall-through branch codegen appends (Figure 2's
    // "P <- L2").
    Out.push_back(Sb.Insts.back().VAddr + InstBytes);
    break;
  case SbEndReason::Cycle:
  case SbEndReason::MaxSize:
  case SbEndReason::Aborted:
    Out.push_back(Sb.FinalNextVAddr);
    break;
  case SbEndReason::IndirectJump:
  case SbEndReason::Return:
  case SbEndReason::Trap:
    // Indirect ends chain through prediction/dispatch, not patchable
    // exits; trap ends stop in the fragment.
    break;
  }
  return Out;
}
