//===- core/Uop.h - Translation micro-op IR -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translator's internal form: one superblock lowered into a linear
/// list of micro-ops with at most two inputs and one output. Lowering
/// performs the paper's instruction decompositions:
///   - memory operations with a displacement split into an address add plus
///     a zero-displacement access (Section 2.1's "addressing modes perform
///     no address computation"),
///   - conditional moves decomposed through "temp" values (Section 3.3's
///     Temp usage class),
///   - BR/BSR straightened away (BSR leaves a save-return-address op),
/// while NOPs are dropped (Section 4.4).
///
/// The dependence/usage identification, strand formation, and accumulator
/// assignment passes annotate this IR in place; code generation then maps
/// each micro-op to I-ISA instructions.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_UOP_H
#define ILDP_CORE_UOP_H

#include "alpha/AlphaIsa.h"
#include "iisa/IisaInst.h"

#include <cstdint>
#include <vector>

namespace ildp {
namespace dbt {

/// Value identifiers: 0..31 name architected registers; FirstTemp and above
/// name translation-internal temps (decomposition values).
using ValueId = int16_t;
constexpr ValueId NoVal = -1;
constexpr ValueId FirstTemp = 32;

/// True for architected-register value ids (excluding R31, which never
/// appears as a value).
inline bool isArchValue(ValueId Id) { return Id >= 0 && Id < FirstTemp; }
inline bool isTempValue(ValueId Id) { return Id >= FirstTemp; }

/// Micro-op kinds.
enum class UopKind : uint8_t {
  Alu,      ///< Integer operate; Op gives semantics (LDA/LDAH carry their
            ///< displacement as the immediate input).
  CmovMask, ///< Condition-to-mask (CMOV decomposition head).
  CmovBlend,///< Modified-ISA two-op cmov tail: Out <- In1(mask) ? In2 :
            ///< old Out, the old value arriving through the destination
            ///< GPR field.
  Load,     ///< In2 = address value; Disp only in no-split mode.
  Store,    ///< In1 = data, In2 = address value.
  CondBr,   ///< Superblock side exit; In1 = condition value.
  SaveRet,  ///< Out <- embedded V-ISA return address (BSR/JSR).
  PushRas,  ///< Dual-address-RAS push site (BSR/JSR under the RAS policy).
  EndJump,  ///< Superblock-ending indirect jump; In1 = target value. The
            ///< code generator expands this into the chaining sequence.
};

/// One micro-op input.
struct UopInput {
  enum class Kind : uint8_t { None, Value, Imm };
  Kind K = Kind::None;
  ValueId Id = NoVal;
  int64_t Imm = 0;
  /// Filled by analysis: uop index of the reaching definition, or -1 for
  /// superblock live-ins.
  int32_t DefIdx = -1;

  static UopInput none() { return {}; }
  static UopInput value(ValueId Id) {
    UopInput In;
    In.K = Kind::Value;
    In.Id = Id;
    return In;
  }
  static UopInput imm(int64_t Value) {
    UopInput In;
    In.K = Kind::Imm;
    In.Imm = Value;
    return In;
  }

  bool isValue() const { return K == Kind::Value; }
  bool isImm() const { return K == Kind::Imm; }
  bool isNone() const { return K == Kind::None; }
};

/// One micro-op with its analysis annotations.
struct Uop {
  UopKind Kind = UopKind::Alu;
  alpha::Opcode Op = alpha::Opcode::Invalid; ///< Semantic payload.
  UopInput In1, In2;
  ValueId Out = NoVal;
  int32_t MemDisp = 0; ///< Memory displacement in no-split mode.
  uint64_t VAddr = 0;
  uint64_t EmbAddr = 0; ///< SaveRet/PushRas: the embedded return address.
  /// V-ISA instructions retired when this uop commits: 1 for the leading
  /// uop of a source instruction (plus one per preceding NOP or straightened
  /// BR, which leave no uops of their own), 0 for continuation uops.
  uint8_t VCredit = 0;
  int32_t SrcIndex = -1; ///< Index into the superblock.

  // ---- Filled by UsageAnalysis ----
  iisa::UsageClass OutUsage = iisa::UsageClass::None;
  int32_t NumUses = 0;
  int32_t RedefIdx = -1;  ///< Uop index redefining Out, or -1 (live to end).
  int32_t LastUseIdx = -1;
  bool NeedsGprCopy = false; ///< Basic ISA: materialize Out into a GPR.

  // ---- Filled by StrandAlloc ----
  int32_t Strand = -1;    ///< Strand id of the output value.
  int16_t Acc = -1;       ///< Accumulator assigned to the output.
  /// Two-global rule: a copy-from-GPR must be emitted before this uop for
  /// the given input slot (1 or 2); 0 = none.
  uint8_t PreCopySlot = 0;

  bool producesValue() const { return Out != NoVal; }
  bool isPei() const {
    return Kind == UopKind::Load || Kind == UopKind::Store;
  }
};

/// A lowered superblock.
struct UopList {
  std::vector<Uop> Uops;
  ValueId NextTemp = FirstTemp;

  ValueId newTemp() { return NextTemp++; }
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_UOP_H
