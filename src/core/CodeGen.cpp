//===- core/CodeGen.cpp - I-ISA / straightened-Alpha code generation ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CodeGen.h"

#include "core/FaultInjector.h"
#include "iisa/Encoding.h"

#include <unordered_map>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::iisa;
using ildp::alpha::RegZero;

namespace {

/// First I-ISA scratch register (VM-private; see iisa::NumIisaGprs).
constexpr uint8_t FirstScratch = 32;
constexpr unsigned NumScratch = NumIisaGprs - FirstScratch;
/// Scratch register reserved for straightening-backend chain sequences.
constexpr uint8_t ChainScratch = NumIisaGprs - 1;

/// Code generation walker.
class Generator {
public:
  Generator(const Superblock &Sb, const LoweredBlock &Block,
            const StrandAllocResult *Alloc, const DbtConfig &Config,
            const ChainEnv &Env)
      : Sb(Sb), Block(Block), Alloc(Alloc), Config(Config), Env(Env) {}

  Fragment run();

private:
  const Superblock &Sb;
  const LoweredBlock &Block;
  const StrandAllocResult *Alloc;
  const DbtConfig &Config;
  const ChainEnv &Env;

  Fragment Frag;
  unsigned PendingCredit = 0; ///< V-credit to attach to the next inst.

  /// Where each definition's value currently lives.
  struct Location {
    int16_t Acc = -1;
    bool InGpr = false;
  };
  std::vector<Location> Loc;              ///< Per uop index.
  std::array<int32_t, MaxAccumulators> AccContents; ///< Def idx or -1.
  std::array<int32_t, alpha::NumGprs> RegCurrentDef; ///< Per arch reg.

  /// Scratch GPR homes for temp values that needed spilling.
  std::unordered_map<int32_t, uint8_t> ScratchOf;
  /// Scratch free-at positions: ScratchBusyUntil[reg - FirstScratch].
  std::array<int32_t, NumScratch> ScratchBusyUntil;
  std::vector<int32_t> TempRangeEnd; ///< Per uop: scratch live-range end.

  bool isStraight() const {
    return Config.Variant == IsaVariant::Straight;
  }
  bool isBasic() const { return Config.Variant == IsaVariant::Basic; }

  IisaInst &emit(IisaInst Inst) {
    Inst.VCredit = uint8_t(PendingCredit);
    PendingCredit = 0;
    Frag.Body.push_back(Inst);
    return Frag.Body.back();
  }

  uint8_t scratchFor(int32_t DefIdx);
  uint8_t gprHomeOf(const UopInput &In);
  /// Accumulator-operand policy for resolveOperand.
  enum class AccUse { Require, Allow, Forbid };
  bool inputMustUseAcc(const UopInput &In) const;
  IOperand resolveOperand(const UopInput &In, AccUse Mode);
  void resolvePair(const Uop &U, bool Pre1, IOperand &A, IOperand &B);
  bool accHolds(int32_t DefIdx) const;
  void noteDef(int32_t UopIdx);
  void emitReloadsBefore(int32_t UopIdx, size_t &ReloadCursor);
  void emitPreCopy(int32_t UopIdx);
  void emitGprCopyAfter(int32_t UopIdx);
  void addPeiEntry(uint64_t VAddr);
  void fillDest(IisaInst &Inst, const Uop &U);
  void emitUop(int32_t UopIdx);
  void emitChainTail();
  void emitSwPredict(const Uop &EndU);
  bool exitIsPending(uint64_t Target) const;
  void recordExit(uint64_t Target, bool Pending) {
    Frag.Exits.push_back(
        {uint32_t(Frag.Body.size()) - 1, Target, Pending});
  }

  void computeTempRanges();
};

} // namespace

bool Generator::exitIsPending(uint64_t Target) const {
  if (Target == Sb.EntryVAddr)
    return false; // Self-chain: this fragment is about to be installed.
  return !Env.IsTranslated(Target);
}

void Generator::computeTempRanges() {
  const auto &Uops = Block.List.Uops;
  TempRangeEnd.assign(Uops.size(), -1);
  for (size_t Idx = 0; Idx != Uops.size(); ++Idx) {
    const Uop &U = Uops[Idx];
    if (!U.producesValue() || !isTempValue(U.Out))
      continue;
    TempRangeEnd[Idx] = std::max(U.LastUseIdx, int32_t(Idx));
  }
  if (Alloc)
    for (const StrandAllocResult::Reload &R : Alloc->Reloads)
      if (isTempValue(Uops[R.ValueDefIdx].Out))
        TempRangeEnd[R.ValueDefIdx] =
            std::max(TempRangeEnd[R.ValueDefIdx], R.BeforeUopIdx);
}

uint8_t Generator::scratchFor(int32_t DefIdx) {
  auto It = ScratchOf.find(DefIdx);
  if (It != ScratchOf.end())
    return It->second;
  // Linear-scan scratch assignment: first register whose previous range
  // has ended.
  for (unsigned I = 0; I != NumScratch; ++I) {
    uint8_t Reg = uint8_t(FirstScratch + I);
    if (Reg == ChainScratch)
      continue;
    if (ScratchBusyUntil[I] < DefIdx) {
      ScratchBusyUntil[I] = TempRangeEnd[DefIdx];
      ScratchOf.emplace(DefIdx, Reg);
      return Reg;
    }
  }
  bailout(TranslateStatus::ScratchExhausted,
          "Out of scratch registers for temp spills");
}

uint8_t Generator::gprHomeOf(const UopInput &In) {
  ensure(In.isValue(), TranslateStatus::InternalCodeGen,
         "GPR home of a non-value input");
  if (In.DefIdx < 0 || isArchValue(In.Id))
    return uint8_t(In.Id);
  return scratchFor(In.DefIdx);
}

bool Generator::accHolds(int32_t DefIdx) const {
  const Location &L = Loc[DefIdx];
  return L.Acc >= 0 && AccContents[L.Acc] == DefIdx;
}

bool Generator::inputMustUseAcc(const UopInput &In) const {
  if (isStraight() || !In.isValue() || In.DefIdx < 0)
    return false;
  const Uop &Def = Block.List.Uops[In.DefIdx];
  // Local and temp values travel through their strand's accumulator —
  // this is the defining property of strand formation (Section 3.3).
  return Def.OutUsage == UsageClass::Local ||
         Def.OutUsage == UsageClass::Temp;
}

IOperand Generator::resolveOperand(const UopInput &In, AccUse Mode) {
  switch (In.K) {
  case UopInput::Kind::None:
    return IOperand::none();
  case UopInput::Kind::Imm:
    return IOperand::imm(In.Imm);
  case UopInput::Kind::Value:
    break;
  }
  if (In.DefIdx < 0) {
    // Superblock live-in: always in the architected register file.
    ensure(isArchValue(In.Id), TranslateStatus::InternalCodeGen,
           "Temp live-in");
    return IOperand::gpr(uint8_t(In.Id));
  }
  if (isStraight())
    return IOperand::gpr(uint8_t(In.Id));

  if (Mode == AccUse::Require) {
    ensure(accHolds(In.DefIdx), TranslateStatus::InternalCodeGen,
           "Local value not available in its accumulator");
    return IOperand::acc(uint8_t(Loc[In.DefIdx].Acc));
  }
  // Opportunistic accumulator read of a still-live global value (Figure
  // 2's branch on A1) — only when no other operand claims the slot.
  if (Mode == AccUse::Allow && accHolds(In.DefIdx))
    return IOperand::acc(uint8_t(Loc[In.DefIdx].Acc));
  ensure(Loc[In.DefIdx].InGpr, TranslateStatus::InternalCodeGen,
         "Global value never materialized to GPR");
  return IOperand::gpr(gprHomeOf(In));
}

/// Resolves a two-input instruction's operands respecting the
/// one-accumulator-per-instruction rule: a local/temp input must read its
/// strand accumulator; at most one operand may use an accumulator.
void Generator::resolvePair(const Uop &U, bool Pre1, IOperand &A,
                            IOperand &B) {
  if (Pre1) {
    // Slot 1 was materialized by a copy-from-GPR into the uop's own
    // accumulator.
    ensure(U.Acc >= 0, TranslateStatus::InternalCodeGen,
           "Pre-copy without an accumulator");
    A = IOperand::acc(uint8_t(U.Acc));
    B = resolveOperand(U.In2, AccUse::Forbid);
    return;
  }
  bool Must1 = inputMustUseAcc(U.In1);
  bool Must2 = inputMustUseAcc(U.In2);
  ensure(!(Must1 && Must2), TranslateStatus::InternalCodeGen,
         "Two local inputs must have been split by strand formation");
  if (Must1) {
    A = resolveOperand(U.In1, AccUse::Require);
    B = resolveOperand(U.In2, AccUse::Forbid);
  } else if (Must2) {
    B = resolveOperand(U.In2, AccUse::Require);
    A = resolveOperand(U.In1, AccUse::Forbid);
  } else {
    A = resolveOperand(U.In1, AccUse::Allow);
    B = resolveOperand(U.In2, A.isAcc() ? AccUse::Forbid : AccUse::Allow);
  }
}

void Generator::noteDef(int32_t UopIdx) {
  const Uop &U = Block.List.Uops[UopIdx];
  ensure(U.producesValue(), TranslateStatus::InternalCodeGen,
         "noteDef of a valueless uop");
  Location &L = Loc[UopIdx];
  if (!isStraight() && U.Acc >= 0) {
    L.Acc = U.Acc;
    AccContents[U.Acc] = UopIdx;
  }
  // Modified ISA: the destination-GPR field materializes architected
  // values immediately — and scratch homes of global temps, which
  // fillDest routes through the same field (no separate copy needed).
  // The straightening backend writes GPRs natively.
  if (isStraight() ||
      (Config.Variant == IsaVariant::Modified &&
       (isArchValue(U.Out) || U.NeedsGprCopy)))
    L.InGpr = true;
  if (isArchValue(U.Out))
    RegCurrentDef[U.Out] = UopIdx;
}

void Generator::emitReloadsBefore(int32_t UopIdx, size_t &ReloadCursor) {
  if (!Alloc)
    return;
  while (ReloadCursor < Alloc->Reloads.size() &&
         Alloc->Reloads[ReloadCursor].BeforeUopIdx == UopIdx) {
    const StrandAllocResult::Reload &R = Alloc->Reloads[ReloadCursor++];
    const Uop &Def = Block.List.Uops[R.ValueDefIdx];
    ensure(Loc[R.ValueDefIdx].InGpr, TranslateStatus::InternalCodeGen,
           "Reload of a value with no GPR home");
    IisaInst Inst;
    Inst.Kind = IKind::CopyFromGpr;
    UopInput Src = UopInput::value(Def.Out);
    Src.DefIdx = R.ValueDefIdx;
    Inst.A = IOperand::gpr(gprHomeOf(Src));
    Inst.DestAcc = uint8_t(R.NewAcc);
    Inst.VAddr = Def.VAddr;
    emit(Inst);
    Loc[R.ValueDefIdx].Acc = R.NewAcc;
    AccContents[R.NewAcc] = R.ValueDefIdx;
  }
}

void Generator::emitPreCopy(int32_t UopIdx) {
  const Uop &U = Block.List.Uops[UopIdx];
  ensure(U.PreCopySlot == 1, TranslateStatus::InternalCodeGen,
         "Pre-copies always target slot 1");
  const UopInput &In = U.In1;
  IisaInst Inst;
  Inst.Kind = IKind::CopyFromGpr;
  if (In.DefIdx >= 0)
    ensure(Loc[In.DefIdx].InGpr, TranslateStatus::InternalCodeGen,
           "Pre-copy of an unmaterialized value");
  Inst.A = IOperand::gpr(gprHomeOf(In));
  ensure(U.Acc >= 0, TranslateStatus::InternalCodeGen,
         "Pre-copy without an accumulator");
  Inst.DestAcc = uint8_t(U.Acc);
  Inst.VAddr = U.VAddr;
  Inst.VCredit = uint8_t(PendingCredit);
  PendingCredit = 0;
  Frag.Body.push_back(Inst);
  // The copy's value lives in the accumulator the uop is about to consume
  // and overwrite; no Location entry is needed (single immediate use).
  AccContents[U.Acc] = UopIdx; // Transitively: "slot-1 value".
}

void Generator::emitGprCopyAfter(int32_t UopIdx) {
  const Uop &U = Block.List.Uops[UopIdx];
  if (!U.NeedsGprCopy || Loc[UopIdx].InGpr)
    return;
  ensure(U.producesValue(), TranslateStatus::InternalCodeGen,
         "GPR copy for a valueless uop");
  ensure(U.Acc >= 0, TranslateStatus::InternalCodeGen,
         "GPR copy without an accumulator");
  IisaInst Inst;
  Inst.Kind = IKind::CopyToGpr;
  Inst.A = IOperand::acc(uint8_t(U.Acc));
  UopInput Self = UopInput::value(U.Out);
  Self.DefIdx = UopIdx;
  Inst.DestGpr = gprHomeOf(Self);
  Inst.VAddr = U.VAddr;
  emit(Inst);
  Loc[UopIdx].InGpr = true;
}

void Generator::addPeiEntry(uint64_t VAddr) {
  PeiEntry Entry;
  Entry.InstIndex = uint32_t(Frag.Body.size()); // The inst about to be emitted.
  Entry.VAddr = VAddr;
  if (isBasic()) {
    for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg) {
      int32_t Def = RegCurrentDef[Reg];
      if (Def < 0 || Loc[Def].InGpr)
        continue;
      ensure(accHolds(Def), TranslateStatus::InternalCodeGen,
             "Architected value neither in GPR nor accumulator at a PEI");
      Entry.AccHeldRegs.push_back({uint8_t(Reg), uint8_t(Loc[Def].Acc)});
    }
  }
  Frag.PeiTable.push_back(std::move(Entry));
}

void Generator::fillDest(IisaInst &Inst, const Uop &U) {
  if (!U.producesValue())
    return;
  if (isStraight()) {
    ensure(isArchValue(U.Out), TranslateStatus::InternalCodeGen,
           "Straight backend with temps");
    Inst.DestGpr = uint8_t(U.Out);
    return;
  }
  ensure(U.Acc >= 0, TranslateStatus::InternalCodeGen,
         "Value-producing uop without an accumulator");
  Inst.DestAcc = uint8_t(U.Acc);
  if (Config.Variant == IsaVariant::Modified) {
    if (isArchValue(U.Out)) {
      Inst.DestGpr = uint8_t(U.Out);
      // Shadow-file-only (off the critical path) iff nothing ever reads
      // this value through the GPR file: in-block consumers go through the
      // accumulator and the register is overwritten before any exit.
      // Live-out and communication values are operational writes.
      Inst.GprWriteArchOnly = U.OutUsage == UsageClass::NoUser ||
                              U.OutUsage == UsageClass::Local;
    } else if (U.NeedsGprCopy) {
      // Global temps write their scratch home directly (no copy needed).
      UopInput Self = UopInput::value(U.Out);
      Self.DefIdx = int32_t(&U - Block.List.Uops.data());
      Inst.DestGpr = scratchFor(Self.DefIdx);
    }
  }
}

void Generator::emitUop(int32_t UopIdx) {
  const Uop &U = Block.List.Uops[UopIdx];
  PendingCredit += U.VCredit;

  if (U.PreCopySlot && !isStraight())
    emitPreCopy(UopIdx);

  IisaInst Inst;
  Inst.VAddr = U.VAddr;
  Inst.IsSourceOp = true;
  Inst.Usage = U.OutUsage;

  switch (U.Kind) {
  case UopKind::Alu:
  case UopKind::CmovMask: {
    Inst.Kind = U.Kind == UopKind::Alu ? IKind::Compute : IKind::CmovMask;
    Inst.AlphaOp = U.Op;
    resolvePair(U, U.PreCopySlot == 1 && !isStraight(), Inst.A, Inst.B);
    fillDest(Inst, U);
    emit(Inst);
    break;
  }
  case UopKind::CmovBlend: {
    ensure(Config.Variant == IsaVariant::Modified,
           TranslateStatus::InternalCodeGen,
           "cmov_blend is a modified-ISA form");
    Inst.Kind = IKind::CmovBlend;
    Inst.AlphaOp = U.Op;
    resolvePair(U, /*Pre1=*/false, Inst.A, Inst.B);
    fillDest(Inst, U);
    ensure(Inst.DestGpr != NoReg, TranslateStatus::InternalCodeGen,
           "cmov_blend requires the GPR field");
    // The old value is consumed through the GPR field: never shadow-only.
    Inst.GprWriteArchOnly = false;
    emit(Inst);
    break;
  }
  case UopKind::Load: {
    Inst.Kind = IKind::Load;
    Inst.AlphaOp = U.Op;
    Inst.MemDisp = U.MemDisp;
    Inst.B = resolveOperand(U.In2, inputMustUseAcc(U.In2) ? AccUse::Require
                                                          : AccUse::Allow);
    fillDest(Inst, U);
    addPeiEntry(U.VAddr);
    emit(Inst);
    break;
  }
  case UopKind::Store: {
    Inst.Kind = IKind::Store;
    Inst.AlphaOp = U.Op;
    Inst.MemDisp = U.MemDisp;
    resolvePair(U, U.PreCopySlot == 1 && !isStraight(), Inst.A, Inst.B);
    addPeiEntry(U.VAddr);
    emit(Inst);
    break;
  }
  case UopKind::CondBr: {
    // Located side exit: find its recorded target.
    uint64_t Target = 0;
    for (const SideExit &Exit : Block.SideExits)
      if (Exit.UopIdx == UopIdx) {
        Target = Exit.ExitVAddr;
        break;
      }
    ensure(Target != 0, TranslateStatus::InternalCodeGen,
           "Side exit without a target");
    Inst.Kind = IKind::CondExit;
    Inst.AlphaOp = U.Op;
    Inst.A = resolveOperand(U.In1, inputMustUseAcc(U.In1) ? AccUse::Require
                                                          : AccUse::Allow);
    Inst.VTarget = Target;
    Inst.ToTranslator = exitIsPending(Target);
    emit(Inst);
    recordExit(Target, Inst.ToTranslator);
    break;
  }
  case UopKind::SaveRet: {
    Inst.Kind = IKind::SaveRetAddr;
    Inst.VTarget = U.EmbAddr;
    ensure(isArchValue(U.Out), TranslateStatus::InternalCodeGen,
           "Return address into a temp");
    Inst.DestGpr = uint8_t(U.Out);
    // Return addresses are read by the callee's return: operational.
    Inst.GprWriteArchOnly = false;
    emit(Inst);
    Loc[UopIdx].InGpr = true;
    RegCurrentDef[U.Out] = UopIdx;
    return; // Dest handled; skip the generic noteDef path below.
  }
  case UopKind::PushRas: {
    Inst.Kind = IKind::PushDualRas;
    Inst.VTarget = U.EmbAddr;
    Inst.IsSourceOp = false;
    emit(Inst);
    return;
  }
  case UopKind::EndJump:
    // Expanded by emitChainTail().
    return;
  }

  if (U.producesValue())
    noteDef(UopIdx);
  if (!isStraight())
    emitGprCopyAfter(UopIdx);
}

void Generator::emitSwPredict(const Uop &EndU) {
  // The three-instruction compare-and-branch of Section 3.2, using the
  // special load-embedded-target-address instruction. The straightening
  // backend uses a reserved scratch register instead of an accumulator.
  uint64_t Predicted = Sb.FinalNextVAddr;
  IOperand Target = resolveOperand(EndU.In1, AccUse::Forbid);
  ensure(Target.isGpr(), TranslateStatus::InternalCodeGen,
         "Indirect target must be in a GPR");

  IisaInst LoadEmb;
  LoadEmb.Kind = IKind::LoadEmbTarget;
  LoadEmb.VTarget = Predicted;
  LoadEmb.VAddr = EndU.VAddr;
  IOperand CmpVal;
  if (isStraight()) {
    LoadEmb.DestGpr = ChainScratch;
    CmpVal = IOperand::gpr(ChainScratch);
  } else {
    LoadEmb.DestAcc = 0;
    CmpVal = IOperand::acc(0);
  }
  emit(LoadEmb);

  IisaInst Cmp;
  Cmp.Kind = IKind::Compute;
  Cmp.AlphaOp = alpha::Opcode::CMPEQ;
  Cmp.A = CmpVal;
  Cmp.B = Target;
  if (isStraight())
    Cmp.DestGpr = ChainScratch;
  else
    Cmp.DestAcc = 0;
  Cmp.VAddr = EndU.VAddr;
  emit(Cmp);

  IisaInst Jump;
  Jump.Kind = IKind::JumpPredict;
  Jump.A = CmpVal;
  Jump.B = Target;
  Jump.VTarget = Predicted;
  Jump.VAddr = EndU.VAddr;
  emit(Jump);
}

void Generator::emitChainTail() {
  PendingCredit += Block.TrailingVCredit;

  switch (Sb.End) {
  case SbEndReason::BackwardTaken: {
    // The final conditional exit was already emitted from its uop; append
    // the unconditional fall-through branch (Figure 2's "P <- L2").
    uint64_t FallThrough = Sb.Insts.back().VAddr + alpha::InstBytes;
    IisaInst Br;
    Br.Kind = IKind::Branch;
    Br.VTarget = FallThrough;
    Br.VAddr = Sb.Insts.back().VAddr;
    Br.ToTranslator = exitIsPending(FallThrough);
    emit(Br);
    recordExit(FallThrough, Br.ToTranslator);
    break;
  }
  case SbEndReason::Cycle:
  case SbEndReason::MaxSize:
  case SbEndReason::Aborted: {
    IisaInst Br;
    Br.Kind = IKind::Branch;
    Br.VTarget = Sb.FinalNextVAddr;
    Br.VAddr = Sb.Insts.empty() ? Sb.EntryVAddr : Sb.Insts.back().VAddr;
    Br.ToTranslator = exitIsPending(Sb.FinalNextVAddr);
    emit(Br);
    recordExit(Sb.FinalNextVAddr, Br.ToTranslator);
    break;
  }
  case SbEndReason::Trap: {
    const SourceInst &Last = Sb.Insts.back();
    IisaInst Pal;
    Pal.VAddr = Last.VAddr;
    Pal.IsSourceOp = true;
    if (Last.Inst.PalFunc == alpha::PalGentrap) {
      Pal.Kind = IKind::Gentrap;
      addPeiEntry(Last.VAddr);
    } else {
      Pal.Kind = IKind::Halt;
    }
    emit(Pal);
    break;
  }
  case SbEndReason::IndirectJump:
  case SbEndReason::Return: {
    const Uop &EndU = Block.List.Uops.back();
    ensure(EndU.Kind == UopKind::EndJump, TranslateStatus::InternalCodeGen,
           "Missing EndJump uop");
    // EndU's V-credit was already folded into PendingCredit by emitUop.
    bool IsReturn = Sb.End == SbEndReason::Return;
    switch (Config.Chaining) {
    case ChainPolicy::NoPred: {
      IisaInst Jump;
      Jump.Kind = IKind::JumpDispatch;
      Jump.B = resolveOperand(EndU.In1, AccUse::Forbid);
      Jump.VAddr = EndU.VAddr;
      emit(Jump);
      break;
    }
    case ChainPolicy::SwPredNoRas:
      emitSwPredict(EndU);
      break;
    case ChainPolicy::SwPredRas:
      if (IsReturn) {
        IisaInst Ret;
        Ret.Kind = IKind::ReturnDual;
        Ret.B = resolveOperand(EndU.In1, AccUse::Forbid);
        Ret.VAddr = EndU.VAddr;
        emit(Ret);
      } else {
        emitSwPredict(EndU);
      }
      break;
    }
    break;
  }
  }
}

Fragment Generator::run() {
  const auto &Uops = Block.List.Uops;
  Frag.EntryVAddr = Sb.EntryVAddr;
  Frag.Variant = Config.Variant;
  Frag.SourceInsts = Block.SourceInsts;
  Frag.NopsRemoved = Block.NopsRemoved;

  Loc.assign(Uops.size(), Location());
  AccContents.fill(-1);
  RegCurrentDef.fill(-1);
  ScratchBusyUntil.fill(-1);
  computeTempRanges();

  // Fragment prologue: embed the V-ISA entry address for PEI lookup
  // (Section 2.2).
  IisaInst SetVpc;
  SetVpc.Kind = IKind::SetVpcBase;
  SetVpc.VTarget = Sb.EntryVAddr;
  SetVpc.VAddr = Sb.EntryVAddr;
  emit(SetVpc);

  size_t ReloadCursor = 0;
  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    emitReloadsBefore(Idx, ReloadCursor);
    emitUop(Idx);
  }
  emitChainTail();

  ensure(!Frag.Body.empty() && Frag.Body.back().isExit(),
         TranslateStatus::InternalAssembly,
         "Fragment must end with an exit");

  // Assembly: encoding sizes and I-PC offsets.
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::Assemble))
    bailout(TranslateStatus::InjectedFault, "assemble");
  assignSizes(Frag.Body.data(), Frag.Body.data() + Frag.Body.size(),
              Config.Variant);
  Frag.InstOffset.resize(Frag.Body.size());
  uint32_t Offset = 0;
  for (size_t I = 0; I != Frag.Body.size(); ++I) {
    ensure(Frag.Body[I].SizeBytes != 0, TranslateStatus::InternalAssembly,
           "Unsized instruction after assignSizes");
    Frag.InstOffset[I] = Offset;
    Offset += Frag.Body[I].SizeBytes;
  }
  Frag.BodyBytes = Offset;
  ensure(Config.MaxFragmentBytes == 0 ||
             Frag.BodyBytes <= Config.MaxFragmentBytes,
         TranslateStatus::FragmentTooLarge,
         "Encoded body exceeds MaxFragmentBytes");

  // Distinct covered source addresses.
  Frag.SourceVAddrs.reserve(Sb.Insts.size());
  uint64_t Prev = ~uint64_t(0);
  for (const SourceInst &Src : Sb.Insts) {
    if (Src.VAddr != Prev)
      Frag.SourceVAddrs.push_back(Src.VAddr);
    Prev = Src.VAddr;
  }

  return std::move(Frag);
}

Expected<Fragment> dbt::generateCode(const Superblock &Sb,
                                     const LoweredBlock &Block,
                                     const StrandAllocResult *Alloc,
                                     const DbtConfig &Config,
                                     const ChainEnv &Env) {
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::CodeGen))
    return {TranslateStatus::InjectedFault, "codegen"};
  try {
    ensure((Config.Variant == IsaVariant::Straight) == (Alloc == nullptr),
           TranslateStatus::InternalCodeGen,
           "Accumulator backends require allocation results");
    return Generator(Sb, Block, Alloc, Config, Env).run();
  } catch (const TranslateAbort &Abort) {
    return Abort;
  }
}
