//===- core/SuperblockBuilder.h - Hot-path recording ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records a superblock while the VM interprets the hot path (the MRET
/// heuristic of Section 3.1). The VM feeds each interpreted StepInfo into
/// append(); the builder signals when one of the fragment-ending conditions
/// fires:
///   - register-indirect jumps or trap (CALL_PAL) instructions,
///   - backward taken conditional branches,
///   - a cycle (an already-collected instruction reached again),
///   - the maximum superblock size.
/// Unconditional direct branches (BR/BSR) are followed through — this is
/// where dynamic code straightening comes from.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_SUPERBLOCKBUILDER_H
#define ILDP_CORE_SUPERBLOCKBUILDER_H

#include "core/Superblock.h"
#include "interp/Interpreter.h"

#include <unordered_set>

namespace ildp {
namespace dbt {

/// Incremental superblock recorder.
class SuperblockBuilder {
public:
  /// Starts recording at \p EntryVAddr with the given size limit.
  SuperblockBuilder(uint64_t EntryVAddr, unsigned MaxInsts);

  /// Result of appending one interpreted instruction.
  enum class Status {
    Continue, ///< Keep recording.
    Done,     ///< Fragment-ending condition hit; take() the superblock.
  };

  /// Appends the interpreted instruction described by \p Info. \p Info must
  /// describe a successfully retired instruction (Status Ok or Halted), or
  /// a trapped one — a trap aborts recording cleanly (the instructions
  /// before the trap still form a valid superblock if non-empty).
  Status append(const StepInfo &Info);

  /// Returns the finished superblock. Call only after Status::Done.
  Superblock take();

  bool done() const { return Finished; }

private:
  Superblock Sb;
  unsigned MaxInsts;
  bool Finished = false;
  std::unordered_set<uint64_t> Collected;

  Status finish(SbEndReason End, uint64_t NextVAddr);
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_SUPERBLOCKBUILDER_H
