//===- core/TrapRecovery.h - Precise trap state reconstruction ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precise trap recovery (Section 2.2): given a trapping instruction's
/// fragment offset and the I-ISA machine state, reconstruct the exact
/// V-ISA architected state — the trapping instruction's V-ISA address (via
/// the PEI side table anchored by set-VPC-base) and the 32 architected
/// registers.
///
/// Because the translator never reorders instructions, values are produced
/// in program order; the only complication is the basic ISA, where some
/// architected values live in accumulators at the trap point. The PEI
/// entry's AccHeldRegs overlay resolves those. In the modified ISA the
/// (shadow) register file is precise by construction, as is the
/// straightening backend's.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRAPRECOVERY_H
#define ILDP_CORE_TRAPRECOVERY_H

#include "core/Fragment.h"
#include "iisa/Executor.h"
#include "interp/ArchState.h"

namespace ildp {
namespace dbt {

/// A recovered precise-trap context.
struct RecoveredState {
  ArchState Arch;   ///< Architected registers and PC at the trap.
  Trap TrapInfo;    ///< Trap descriptor with the V-ISA PC filled in.
};

/// Reconstructs architected state for a trap raised by the instruction at
/// \p InstIndex of \p Frag, with the executor state \p State at the moment
/// of the trap. \p RawTrap is the executor-reported trap (V-PC not yet
/// known). The instruction must be a PEI with a table entry.
RecoveredState recoverTrapState(const Fragment &Frag, uint32_t InstIndex,
                                const iisa::IExecState &State, Trap RawTrap);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRAPRECOVERY_H
