//===- core/TranslationCache.cpp - Fragment registry and patching ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TranslationCache.h"

#include "core/FaultInjector.h"

#include <bit>
#include <cassert>

using namespace ildp;
using namespace ildp::dbt;

Fragment &TranslationCache::install(Fragment Frag) {
  assert(!Index.count(Frag.EntryVAddr) &&
         "A fragment for this entry already exists");

  // Make room first: the budget must hold after every install. A fragment
  // larger than the whole budget is installed best-effort into an emptied
  // cache (the VM clamps DbtConfig::MaxFragmentBytes to the budget, so it
  // never produces one; direct users get the least-bad degradation).
  bool FlushedByThisInstall = false;
  if (Budget != 0 && TotalBytes + Frag.BodyBytes > Budget &&
      !evictToFit(Frag.BodyBytes)) {
    degradedFlush();
    FlushedByThisInstall = true;
  }

  auto Owned = std::make_unique<Fragment>(std::move(Frag));
  Fragment &F = *Owned;
  F.IBase = NextIBase;
  NextIBase += F.BodyBytes + 64; // Pad fragments apart (stub/alignment).
  TotalBytes += F.BodyBytes;
  for (uint64_t VAddr : F.SourceVAddrs)
    CoveredVAddrs.insert(VAddr);

  Fragments.push_back(std::move(Owned));
  Index.emplace(F.EntryVAddr, &F);

  // Authoritative exit pass. Codegen marked exits pending/chained against
  // its own chainability snapshot; the self-entry case, racing installs,
  // and — under a budget — evictions that happened since (including by
  // this very install) make this pass the source of truth:
  //   - pending exit, target chainable  -> patch + reverse-index
  //   - pending exit, target absent     -> pending multimap
  //   - chained exit, target absent     -> unchain back to call-translator
  //   - chained exit, target chainable  -> reverse-index only
  for (size_t E = 0; E != F.Exits.size(); ++E) {
    ExitRecord &Exit = F.Exits[E];
    // After a wholesale flush inside this very install, the extra
    // chainability view is stale until its owner observes the flush (the
    // asynchronous VM rebuilds it only after install() returns, and every
    // in-flight translation it describes will be discarded as stale), so
    // only actually-resident targets may stay chained.
    bool Chainable = FlushedByThisInstall ? Index.count(Exit.VTarget) != 0
                                          : isChainable(Exit.VTarget);
    if (Exit.Pending) {
      if (Chainable) {
        Exit.Pending = false;
        F.Body[Exit.InstIndex].ToTranslator = false;
        registerChainedInto(Exit.VTarget, &F, E);
        ++Patches;
      } else {
        Pending.emplace(Exit.VTarget, std::make_pair(&F, E));
      }
    } else if (!Chainable) {
      Exit.Pending = true;
      F.Body[Exit.InstIndex].ToTranslator = true;
      Pending.emplace(Exit.VTarget, std::make_pair(&F, E));
      ++UnchainedExits;
    } else {
      registerChainedInto(Exit.VTarget, &F, E);
    }
  }

  // Patch other fragments' pending exits that target the new entry.
  patchPendingExitsTo(F.EntryVAddr);

  if (TotalBytes > HighWater)
    HighWater = TotalBytes;
  return F;
}

size_t TranslationCache::patchPendingExitsTo(uint64_t EntryVAddr) {
  size_t Patched = 0;
  // Single multimap probe: the bucket found by equal_range is consumed by
  // the ranged erase below (previously a second hash walk erased by key).
  auto [It, End] = Pending.equal_range(EntryVAddr);
  for (auto Cur = It; Cur != End; ++Cur) {
    auto [Owner, ExitIdx] = Cur->second;
    ExitRecord &Exit = Owner->Exits[ExitIdx];
    assert(Exit.VTarget == EntryVAddr && "Pending index corrupt");
    if (!Exit.Pending)
      continue;
    Exit.Pending = false;
    Owner->Body[Exit.InstIndex].ToTranslator = false;
    registerChainedInto(EntryVAddr, Owner, ExitIdx);
    ++Patches;
    ++Patched;
  }
  Pending.erase(It, End);
  return Patched;
}

void TranslationCache::registerChainedInto(uint64_t Target, Fragment *Owner,
                                           size_t ExitIdx) {
  ChainedIn.emplace(Target, std::make_pair(Owner, ExitIdx));
}

size_t TranslationCache::unchainExitsTo(uint64_t EntryVAddr) {
  size_t Unchained = 0;
  auto [It, End] = ChainedIn.equal_range(EntryVAddr);
  for (auto Cur = It; Cur != End; ++Cur) {
    auto [Owner, ExitIdx] = Cur->second;
    ExitRecord &Exit = Owner->Exits[ExitIdx];
    assert(Exit.VTarget == EntryVAddr && "Reverse chain index corrupt");
    if (Exit.Pending)
      continue;
    Exit.Pending = true;
    Owner->Body[Exit.InstIndex].ToTranslator = true;
    Pending.emplace(EntryVAddr, std::make_pair(Owner, ExitIdx));
    ++Unchained;
  }
  ChainedIn.erase(It, End);
  UnchainedExits += Unchained;
  return Unchained;
}

size_t TranslationCache::dropPendingExitsTo(uint64_t EntryVAddr) {
  // The owners keep their call-translator exits (still correct — they exit
  // to the dispatcher); only the index records go, so a target that will
  // never translate cannot leak multimap entries for the rest of the run.
  size_t Dropped = Pending.erase(EntryVAddr);
  DroppedPending += Dropped;
  return Dropped;
}

void TranslationCache::forgetChainMemberships(Fragment &F) {
  for (size_t E = 0; E != F.Exits.size(); ++E) {
    const ExitRecord &Exit = F.Exits[E];
    auto &Map = Exit.Pending ? Pending : ChainedIn;
    auto [It, End] = Map.equal_range(Exit.VTarget);
    for (auto Cur = It; Cur != End; ++Cur)
      if (Cur->second.first == &F && Cur->second.second == E) {
        Map.erase(Cur);
        break;
      }
  }
}

Fragment *TranslationCache::selectVictim() {
  auto IsProtected = [&](uint64_t Entry) {
    for (size_t I = 0; I != RecentUse.size(); ++I)
      if (RecentUse.at(I) == Entry)
        return true;
    return false;
  };
  // Evictability key, smallest wins: recently-used entries lose to
  // everything else, then fewer powers of two of executions, then least
  // recently used, then lowest entry address (a total order, so victim
  // choice is deterministic for a deterministic install/lookup history).
  auto KeyOf = [&](const Fragment &F) {
    unsigned ExecBucket = unsigned(std::bit_width(F.ExecCount + 1)) - 1;
    return std::tuple<bool, unsigned, uint64_t, uint64_t>(
        IsProtected(F.EntryVAddr), ExecBucket, F.LastUseTick, F.EntryVAddr);
  };
  Fragment *Victim = nullptr;
  for (const std::unique_ptr<Fragment> &Frag : Fragments)
    if (!Victim || KeyOf(*Frag) < KeyOf(*Victim))
      Victim = Frag.get();
  return Victim;
}

bool TranslationCache::evictToFit(uint64_t NeededBytes) {
  while (TotalBytes + NeededBytes > Budget) {
    if (Fault && Fault->shouldFail(FaultSite::EvictSelect))
      return false;
    Fragment *Victim = selectVictim();
    if (!Victim)
      return false;
    if (Fault && Fault->shouldFail(FaultSite::Unchain))
      return false;
    evictFragment(*Victim);
  }
  return true;
}

void TranslationCache::evictFragment(Fragment &F) {
  if (EvictionListener)
    EvictionListener(F);
  // Purge the victim's own index records first, so the unchain pass below
  // never re-registers a pending record owned by the dying fragment (a
  // self-looping fragment chains into its own entry).
  forgetChainMemberships(F);
  unchainExitsTo(F.EntryVAddr);
  Index.erase(F.EntryVAddr);
  TotalBytes -= F.BodyBytes;
  EvictedBytes += F.BodyBytes;
  ++Evictions;
  moveToGraveyard(F);
}

void TranslationCache::moveToGraveyard(Fragment &F) {
  for (auto It = Fragments.begin(); It != Fragments.end(); ++It)
    if (It->get() == &F) {
      Graveyard.push_back(std::move(*It));
      Fragments.erase(It);
      return;
    }
  assert(false && "fragment not owned by this cache");
}

void TranslationCache::degradedFlush() {
  // Eviction could not proceed (injected fault, or nothing evictable): the
  // one always-safe fallback is the wholesale flush — crude, but it leaves
  // no partially-unchained linkage behind.
  ++DegradedFlushes;
  flush();
}

size_t TranslationCache::chainInvariantViolations() const {
  size_t Violations = 0;
  for (const std::unique_ptr<Fragment> &Frag : Fragments)
    for (const ExitRecord &Exit : Frag->Exits) {
      if (Frag->Body[Exit.InstIndex].ToTranslator != Exit.Pending)
        ++Violations; // Record and branch instruction disagree.
      if (!Exit.Pending && !isChainable(Exit.VTarget))
        ++Violations; // Chained branch into a non-resident I-PC.
    }
  return Violations;
}

std::vector<const Fragment *> TranslationCache::exportAll() const {
  std::vector<const Fragment *> Out;
  Out.reserve(Fragments.size());
  for (const std::unique_ptr<Fragment> &Frag : Fragments)
    Out.push_back(Frag.get());
  return Out;
}

size_t TranslationCache::importAll(std::vector<Fragment> Frags) {
  size_t Installed = 0;
  for (Fragment &Frag : Frags) {
    if (Index.count(Frag.EntryVAddr))
      continue;
    // A warm start must not thrash the cache it is warming: imports that
    // would force evictions are skipped instead (the entry re-qualifies
    // through profiling like any cold PC).
    if (Budget != 0 && TotalBytes + Frag.BodyBytes > Budget) {
      ++ImportBudgetSkips;
      continue;
    }
    // Rewind every patchable exit to the call-translator state it had when
    // codegen emitted it against an empty cache; install() below re-runs
    // the authoritative patch pass against what is actually present now.
    for (ExitRecord &Exit : Frag.Exits) {
      Exit.Pending = true;
      Frag.Body[Exit.InstIndex].ToTranslator = true;
    }
    install(std::move(Frag));
    ++Installed;
  }
  return Installed;
}

void TranslationCache::flush() {
  // Storage parks in the graveyard, not the free list: the VM may hold
  // raw Fragment pointers across the install that triggered a degradation
  // flush; they stay valid until reclaimEvicted() at a safepoint.
  for (std::unique_ptr<Fragment> &Frag : Fragments)
    Graveyard.push_back(std::move(Frag));
  Fragments.clear();
  Index.clear();
  Pending.clear();
  ChainedIn.clear();
  CoveredVAddrs.clear();
  RecentUse.clear();
  TotalBytes = 0;
  ++Flushes;
  // NextIBase keeps advancing monotonically so old I-PCs are never reused
  // (predictor state indexed by I-PC stays coherent across flushes).
}

Fragment *TranslationCache::lookup(uint64_t VAddr) {
  auto It = Index.find(VAddr);
  if (It == Index.end())
    return nullptr;
  Fragment *F = It->second;
  if (Budget != 0) { // Recency stamps exist only for the eviction policy.
    F->LastUseTick = ++UseTick;
    if (RecentUse.empty() || RecentUse.back() != VAddr)
      RecentUse.pushBackEvict(VAddr);
  }
  return F;
}

const Fragment *TranslationCache::lookup(uint64_t VAddr) const {
  auto It = Index.find(VAddr);
  return It == Index.end() ? nullptr : It->second;
}
