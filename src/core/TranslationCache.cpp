//===- core/TranslationCache.cpp - Fragment registry and patching ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TranslationCache.h"

#include <cassert>

using namespace ildp;
using namespace ildp::dbt;

Fragment &TranslationCache::install(Fragment Frag) {
  assert(!Index.count(Frag.EntryVAddr) &&
         "A fragment for this entry already exists");

  auto Owned = std::make_unique<Fragment>(std::move(Frag));
  Fragment &F = *Owned;
  F.IBase = NextIBase;
  NextIBase += F.BodyBytes + 64; // Pad fragments apart (stub/alignment).
  TotalBytes += F.BodyBytes;
  for (uint64_t VAddr : F.SourceVAddrs)
    CoveredVAddrs.insert(VAddr);

  Fragments.push_back(std::move(Owned));
  Index.emplace(F.EntryVAddr, &F);

  // Register this fragment's still-pending exits and resolve the ones whose
  // target is already translated (codegen marks exits pending based on the
  // same query, but the self-entry case and racing installs make this the
  // authoritative pass).
  for (size_t E = 0; E != F.Exits.size(); ++E) {
    ExitRecord &Exit = F.Exits[E];
    if (!Exit.Pending)
      continue;
    if (Index.count(Exit.VTarget) ||
        (ExtraChainable && ExtraChainable(Exit.VTarget))) {
      Exit.Pending = false;
      F.Body[Exit.InstIndex].ToTranslator = false;
      ++Patches;
    } else {
      Pending.emplace(Exit.VTarget, std::make_pair(&F, E));
    }
  }

  // Patch other fragments' pending exits that target the new entry.
  patchPendingExitsTo(F.EntryVAddr);

  return F;
}

size_t TranslationCache::patchPendingExitsTo(uint64_t EntryVAddr) {
  size_t Patched = 0;
  auto [It, End] = Pending.equal_range(EntryVAddr);
  for (auto Cur = It; Cur != End; ++Cur) {
    auto [Owner, ExitIdx] = Cur->second;
    ExitRecord &Exit = Owner->Exits[ExitIdx];
    assert(Exit.VTarget == EntryVAddr && "Pending index corrupt");
    if (!Exit.Pending)
      continue;
    Exit.Pending = false;
    Owner->Body[Exit.InstIndex].ToTranslator = false;
    ++Patches;
    ++Patched;
  }
  Pending.erase(EntryVAddr);
  return Patched;
}

std::vector<const Fragment *> TranslationCache::exportAll() const {
  std::vector<const Fragment *> Out;
  Out.reserve(Fragments.size());
  for (const std::unique_ptr<Fragment> &Frag : Fragments)
    Out.push_back(Frag.get());
  return Out;
}

size_t TranslationCache::importAll(std::vector<Fragment> Frags) {
  size_t Installed = 0;
  for (Fragment &Frag : Frags) {
    if (Index.count(Frag.EntryVAddr))
      continue;
    // Rewind every patchable exit to the call-translator state it had when
    // codegen emitted it against an empty cache; install() below re-runs
    // the authoritative patch pass against what is actually present now.
    for (ExitRecord &Exit : Frag.Exits) {
      Exit.Pending = true;
      Frag.Body[Exit.InstIndex].ToTranslator = true;
    }
    install(std::move(Frag));
    ++Installed;
  }
  return Installed;
}

void TranslationCache::flush() {
  Fragments.clear();
  Index.clear();
  Pending.clear();
  CoveredVAddrs.clear();
  TotalBytes = 0;
  ++Flushes;
  // NextIBase keeps advancing monotonically so old I-PCs are never reused
  // (predictor state indexed by I-PC stays coherent across flushes).
}

Fragment *TranslationCache::lookup(uint64_t VAddr) {
  auto It = Index.find(VAddr);
  return It == Index.end() ? nullptr : It->second;
}

const Fragment *TranslationCache::lookup(uint64_t VAddr) const {
  auto It = Index.find(VAddr);
  return It == Index.end() ? nullptr : It->second;
}
