//===- core/CodeGen.h - I-ISA / straightened-Alpha code generation --------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the fragment body from an analyzed micro-op list:
///
///   - **Basic** backend: one-GPR-per-instruction code with explicit
///     copy-to-GPR instructions for every global value (Section 2.1),
///   - **Modified** backend: destination-GPR fields carry architected
///     state; only copy-from-GPR instructions remain (Section 2.3),
///   - **Straight** backend: Alpha-equivalent code (the paper's
///     code-straightening-only DBT/simulator).
///
/// plus fragment chaining (Section 3.2): the set-VPC-base prologue,
/// conditional side exits (chained or call-translator-if-condition-is-met),
/// terminal branches, the three-instruction software jump prediction
/// sequence using load-embedded-target-address, the dual-address-RAS
/// return, and the PEI table for precise traps.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_CODEGEN_H
#define ILDP_CORE_CODEGEN_H

#include "core/Config.h"
#include "core/Fragment.h"
#include "core/Lowering.h"
#include "core/StrandAlloc.h"
#include "core/TranslateStatus.h"

#include <functional>

namespace ildp {
namespace dbt {

/// Translation-time environment queries.
struct ChainEnv {
  /// Returns true if a fragment for the given V-ISA entry exists (the exit
  /// can be chained immediately instead of calling the translator).
  std::function<bool(uint64_t)> IsTranslated = [](uint64_t) { return false; };
};

/// Generates the fragment body for \p Sb. \p Block must have been analyzed
/// (analyzeUsage) and, for the accumulator backends, allocated
/// (formStrandsAndAllocate); pass \p Alloc as nullptr for the straightening
/// backend. Fails with a typed status (scratch exhaustion, body over
/// DbtConfig::MaxFragmentBytes, internal invariant violations) instead of
/// asserting.
Expected<Fragment> generateCode(const Superblock &Sb,
                                const LoweredBlock &Block,
                                const StrandAllocResult *Alloc,
                                const DbtConfig &Config, const ChainEnv &Env);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_CODEGEN_H
