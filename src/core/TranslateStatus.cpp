//===- core/TranslateStatus.cpp - Typed translation-failure reporting -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TranslateStatus.h"

using namespace ildp;
using namespace ildp::dbt;

const char *dbt::getTranslateStatusName(TranslateStatus Status) {
  switch (Status) {
  case TranslateStatus::Ok:
    return "ok";
  case TranslateStatus::MalformedGuestInst:
    return "malformed_guest_inst";
  case TranslateStatus::UnsupportedOpcode:
    return "unsupported_opcode";
  case TranslateStatus::ScratchExhausted:
    return "scratch_exhausted";
  case TranslateStatus::FragmentTooLarge:
    return "fragment_too_large";
  case TranslateStatus::InternalLowering:
    return "internal_lowering";
  case TranslateStatus::InternalUsage:
    return "internal_usage";
  case TranslateStatus::InternalStrandAlloc:
    return "internal_strand_alloc";
  case TranslateStatus::InternalCodeGen:
    return "internal_codegen";
  case TranslateStatus::InternalAssembly:
    return "internal_assembly";
  case TranslateStatus::InjectedFault:
    return "injected_fault";
  }
  return "unknown";
}
