//===- core/Translator.cpp - Translation pipeline orchestration -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Translator.h"

#include "core/Lowering.h"
#include "core/StrandAlloc.h"
#include "core/UsageAnalysis.h"

#include <cassert>

using namespace ildp;
using namespace ildp::dbt;

namespace {

// Cost-model constants (translator instructions per unit of work),
// calibrated to the paper's ~1,125 average (Section 4.2). The CacheCopy
// constants model the measured ~20% spent copying translated-instruction
// structures field by field.
constexpr uint64_t CostDecodePerSrc = 60;
constexpr uint64_t CostAnalysisPerUop = 120;
constexpr uint64_t CostStrandPerUop = 160;
constexpr uint64_t CostCodeGenPerInst = 200;
constexpr uint64_t CostCacheCopyPerInst = 110;
constexpr uint64_t CostChainingPerExit = 300;
constexpr uint64_t CostPerFragment = 2000;

} // namespace

void TranslationCost::addTo(StatisticSet &Stats) const {
  Stats.add("dbt.cost.decode", Decode);
  Stats.add("dbt.cost.analysis", Analysis);
  Stats.add("dbt.cost.strands", Strands);
  Stats.add("dbt.cost.codegen", CodeGen);
  Stats.add("dbt.cost.cachecopy", CacheCopy);
  Stats.add("dbt.cost.chaining", Chaining);
  Stats.add("dbt.cost.overhead", Overhead);
  Stats.add("dbt.cost.total", total());
}

TranslationResult dbt::translate(const Superblock &Sb,
                                 const DbtConfig &Config,
                                 const ChainEnv &Env) {
  assert(!Sb.Insts.empty() && "Cannot translate an empty superblock");
  TranslationResult Result;

  LoweredBlock Block = lower(Sb, Config);
  Result.Uops = unsigned(Block.List.Uops.size());

  analyzeUsage(Block, Config);

  StrandAllocResult Alloc;
  bool Accumulators = Config.Variant != iisa::IsaVariant::Straight;
  if (Accumulators) {
    Alloc = formStrandsAndAllocate(Block, Config);
    Result.Strands = Alloc.NumStrands;
    Result.Spills = Alloc.SpillTerminations;
    Result.PreCopies = Alloc.PreCopies;
    Result.TrapPromotions = Alloc.TrapPromotions;
  }

  Result.Frag =
      generateCode(Sb, Block, Accumulators ? &Alloc : nullptr, Config, Env);

  TranslationCost &Cost = Result.Cost;
  Cost.Decode = CostDecodePerSrc * Sb.Insts.size();
  Cost.Analysis = CostAnalysisPerUop * Result.Uops;
  Cost.Strands = Accumulators ? CostStrandPerUop * Result.Uops : 0;
  Cost.CodeGen = CostCodeGenPerInst * Result.Frag.Body.size();
  Cost.CacheCopy = CostCacheCopyPerInst * Result.Frag.Body.size();
  Cost.Chaining = CostChainingPerExit * Result.Frag.Exits.size();
  Cost.Overhead = CostPerFragment;
  return Result;
}
