//===- core/Translator.cpp - Translation pipeline orchestration -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Translator.h"

#include "core/FaultInjector.h"
#include "core/Lowering.h"
#include "core/StrandAlloc.h"
#include "core/UsageAnalysis.h"

using namespace ildp;
using namespace ildp::dbt;

namespace {

// Cost-model constants (translator instructions per unit of work),
// calibrated to the paper's ~1,125 average (Section 4.2). The CacheCopy
// constants model the measured ~20% spent copying translated-instruction
// structures field by field.
constexpr uint64_t CostDecodePerSrc = 60;
constexpr uint64_t CostAnalysisPerUop = 120;
constexpr uint64_t CostStrandPerUop = 160;
constexpr uint64_t CostCodeGenPerInst = 200;
constexpr uint64_t CostCacheCopyPerInst = 110;
constexpr uint64_t CostChainingPerExit = 300;
constexpr uint64_t CostPerFragment = 2000;

} // namespace

void TranslationCost::addTo(StatisticSet &Stats) const {
  Stats.add("dbt.cost.decode", Decode);
  Stats.add("dbt.cost.analysis", Analysis);
  Stats.add("dbt.cost.strands", Strands);
  Stats.add("dbt.cost.codegen", CodeGen);
  Stats.add("dbt.cost.cachecopy", CacheCopy);
  Stats.add("dbt.cost.chaining", Chaining);
  Stats.add("dbt.cost.overhead", Overhead);
  Stats.add("dbt.cost.total", total());
}

/// Decode-stage validation: recording normally guarantees these (the
/// interpreter traps before appending a bad instruction), but superblocks
/// can also arrive from tests, fuzzers, or future network/persist paths.
static TranslateStatus validateDecoded(const Superblock &Sb,
                                       const DbtConfig &Config) {
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::Decode))
    return TranslateStatus::InjectedFault;
  if (Sb.Insts.empty())
    return TranslateStatus::MalformedGuestInst;
  for (const SourceInst &Src : Sb.Insts) {
    if (!Src.Inst.valid())
      return TranslateStatus::MalformedGuestInst;
    if (Src.VAddr & (alpha::InstBytes - 1))
      return TranslateStatus::MalformedGuestInst;
  }
  return TranslateStatus::Ok;
}

Expected<TranslationResult> dbt::translate(const Superblock &Sb,
                                           const DbtConfig &Config,
                                           const ChainEnv &Env) {
  if (TranslateStatus S = validateDecoded(Sb, Config);
      S != TranslateStatus::Ok)
    return {S, "decode"};
  TranslationResult Result;

  Expected<LoweredBlock> Lowered = lower(Sb, Config);
  if (!Lowered)
    return {Lowered.status(), Lowered.detail()};
  LoweredBlock Block = Lowered.take();
  Result.Uops = unsigned(Block.List.Uops.size());

  if (TranslateStatus S = analyzeUsage(Block, Config);
      S != TranslateStatus::Ok)
    return {S, "usage"};

  StrandAllocResult Alloc;
  bool Accumulators = Config.Variant != iisa::IsaVariant::Straight;
  if (Accumulators) {
    Expected<StrandAllocResult> Allocated =
        formStrandsAndAllocate(Block, Config);
    if (!Allocated)
      return {Allocated.status(), Allocated.detail()};
    Alloc = Allocated.take();
    Result.Strands = Alloc.NumStrands;
    Result.Spills = Alloc.SpillTerminations;
    Result.PreCopies = Alloc.PreCopies;
    Result.TrapPromotions = Alloc.TrapPromotions;
  }

  Expected<Fragment> Generated =
      generateCode(Sb, Block, Accumulators ? &Alloc : nullptr, Config, Env);
  if (!Generated)
    return {Generated.status(), Generated.detail()};
  Result.Frag = Generated.take();

  TranslationCost &Cost = Result.Cost;
  Cost.Decode = CostDecodePerSrc * Sb.Insts.size();
  Cost.Analysis = CostAnalysisPerUop * Result.Uops;
  Cost.Strands = Accumulators ? CostStrandPerUop * Result.Uops : 0;
  Cost.CodeGen = CostCodeGenPerInst * Result.Frag.Body.size();
  Cost.CacheCopy = CostCacheCopyPerInst * Result.Frag.Body.size();
  Cost.Chaining = CostChainingPerExit * Result.Frag.Exits.size();
  Cost.Overhead = CostPerFragment;
  return Result;
}
