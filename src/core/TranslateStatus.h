//===- core/TranslateStatus.h - Typed translation-failure reporting -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure model of the guarded translation pipeline: every stage
/// (decode validation -> lowering -> usage analysis -> strand allocation ->
/// code generation -> assembly) reports a typed TranslateStatus instead of
/// asserting, and the VM degrades to interpretation for the offending
/// region (DESIGN.md §9). Deep pipeline walkers raise a TranslateAbort via
/// bailout()/ensure(); the stage-boundary functions catch it and surface an
/// Expected<T>. The throw path only runs on malformed input or an injected
/// fault, so the no-fault pipeline pays nothing beyond the ensure()
/// branches themselves.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRANSLATESTATUS_H
#define ILDP_CORE_TRANSLATESTATUS_H

#include <cstdint>
#include <optional>
#include <utility>

namespace ildp {
namespace dbt {

/// Why a translation attempt was abandoned.
enum class TranslateStatus : uint8_t {
  Ok,
  MalformedGuestInst, ///< Recorded guest bytes violate recorder invariants.
  UnsupportedOpcode,  ///< Instruction form the pipeline cannot lower.
  ScratchExhausted,   ///< Out of accumulators/scratch GPRs after spilling.
  FragmentTooLarge,   ///< Encoded body exceeds DbtConfig::MaxFragmentBytes.
  InternalLowering,   ///< Invariant violated during lowering.
  InternalUsage,      ///< Invariant violated during usage analysis.
  InternalStrandAlloc,///< Invariant violated during strand allocation.
  InternalCodeGen,    ///< Invariant violated during code generation.
  InternalAssembly,   ///< Invariant violated while sizing/encoding the body.
  InjectedFault,      ///< Deterministic test fault (dbt::FaultInjector).
};

constexpr unsigned NumTranslateStatuses = 11;

/// Stable lowercase name, usable as a statistics-key suffix
/// ("robust.bailout.<name>").
const char *getTranslateStatusName(TranslateStatus Status);

/// Internal control-flow exception carrying a bailout out of a pipeline
/// walker. Never escapes a stage-boundary function (lower, analyzeUsage,
/// formStrandsAndAllocate, generateCode, translate): each catches it and
/// returns the status.
struct TranslateAbort {
  TranslateStatus Status;
  const char *Detail; ///< Static string; never owned.
};

/// Abandons the current translation with \p Status.
[[noreturn]] inline void bailout(TranslateStatus Status,
                                 const char *Detail = "") {
  throw TranslateAbort{Status, Detail};
}

/// Guarded replacement for assert() inside pipeline walkers: unlike an
/// assert, the check survives NDEBUG builds and degrades instead of dying.
inline void ensure(bool Cond, TranslateStatus Status,
                   const char *Detail = "") {
  if (!Cond)
    bailout(Status, Detail);
}

/// A value or a typed translation failure. The error state carries the
/// status plus a static detail string for diagnostics.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)), Status(TranslateStatus::Ok) {}
  Expected(TranslateStatus Status, const char *Detail = "")
      : Status(Status), Detail(Detail) {}
  Expected(const TranslateAbort &Abort)
      : Status(Abort.Status), Detail(Abort.Detail) {}

  explicit operator bool() const { return Status == TranslateStatus::Ok; }
  TranslateStatus status() const { return Status; }
  const char *detail() const { return Detail; }

  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }

  /// Moves the value out; only valid on success.
  T take() { return std::move(*Value); }

private:
  std::optional<T> Value;
  TranslateStatus Status;
  const char *Detail = "";
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRANSLATESTATUS_H
