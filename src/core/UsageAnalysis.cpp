//===- core/UsageAnalysis.cpp - Dependence and usage identification -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/UsageAnalysis.h"

#include "core/FaultInjector.h"

#include <unordered_map>

using namespace ildp;
using namespace ildp::dbt;
using iisa::UsageClass;

namespace {

/// Linear-scan analysis state.
struct Analyzer {
  std::vector<Uop> &Uops;
  const std::vector<SideExit> &SideExits;
  const DbtConfig &Config;

  /// Last definition index per value id.
  std::unordered_map<ValueId, int32_t> LastDef;
  /// Defs whose value is consumed by the block-ending indirect jump (the
  /// chaining compare/dispatch needs it in a GPR).
  std::vector<int32_t> ForceGprDefs;

  void resolveInput(UopInput &In, int32_t UserIdx);
  void run();
  void classify();
  void promoteAcrossExits();
};

} // namespace

void Analyzer::resolveInput(UopInput &In, int32_t UserIdx) {
  if (!In.isValue())
    return;
  auto It = LastDef.find(In.Id);
  In.DefIdx = It == LastDef.end() ? -1 : It->second;
  if (In.DefIdx < 0) {
    ensure(isArchValue(In.Id), TranslateStatus::InternalUsage,
           "Temp read before definition");
    return;
  }
  Uop &Def = Uops[In.DefIdx];
  ++Def.NumUses;
  Def.LastUseIdx = UserIdx;
}

void Analyzer::run() {
  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    Uop &U = Uops[Idx];
    resolveInput(U.In1, Idx);
    resolveInput(U.In2, Idx);

    // The superblock-ending indirect jump consumes its target through the
    // chaining code (software-prediction compare and the dispatch lookup),
    // which reads GPRs.
    if (U.Kind == UopKind::EndJump && U.In1.isValue() && U.In1.DefIdx >= 0)
      ForceGprDefs.push_back(U.In1.DefIdx);

    // cmov_blend implicitly reads its destination's old value through the
    // GPR field: count the use and force the producing write operational.
    if (U.Kind == UopKind::CmovBlend) {
      auto OldIt = LastDef.find(U.Out);
      if (OldIt != LastDef.end()) {
        Uop &OldDef = Uops[OldIt->second];
        ++OldDef.NumUses;
        OldDef.LastUseIdx = Idx;
        ForceGprDefs.push_back(OldIt->second);
      }
    }

    if (U.producesValue()) {
      auto [It, Inserted] = LastDef.try_emplace(U.Out, Idx);
      if (!Inserted) {
        Uops[It->second].RedefIdx = Idx;
        It->second = Idx;
      }
    }
  }
  classify();
  if (Config.Variant == iisa::IsaVariant::Basic)
    promoteAcrossExits();
}

void Analyzer::classify() {
  for (Uop &U : Uops) {
    if (!U.producesValue())
      continue;

    if (isTempValue(U.Out)) {
      if (U.NumUses == 0)
        U.OutUsage = UsageClass::NoUser;
      else if (U.NumUses == 1)
        U.OutUsage = UsageClass::Temp;
      else
        U.OutUsage = UsageClass::CommGlobal;
    } else if (U.Kind == UopKind::SaveRet) {
      // Return addresses live in GPRs (the save-V-ISA-return-address
      // instruction writes the register file directly).
      U.OutUsage = UsageClass::LiveOutGlobal;
    } else if (U.RedefIdx < 0) {
      // Conservatively live on superblock exit.
      U.OutUsage = UsageClass::LiveOutGlobal;
    } else if (U.NumUses == 0) {
      U.OutUsage = UsageClass::NoUser;
    } else if (U.NumUses == 1) {
      U.OutUsage = UsageClass::Local;
    } else {
      U.OutUsage = UsageClass::CommGlobal;
    }

    // Initial GPR-materialization decision. For the basic ISA every global
    // architected value needs an explicit copy-to-GPR; in the modified ISA
    // the destination-GPR field covers architected values and only global
    // *temps* need a scratch copy. The straightening backend has no
    // accumulators at all.
    switch (Config.Variant) {
    case iisa::IsaVariant::Basic:
      U.NeedsGprCopy = U.OutUsage == UsageClass::LiveOutGlobal ||
                       U.OutUsage == UsageClass::CommGlobal;
      // SaveRet writes the GPR directly; no separate copy.
      if (U.Kind == UopKind::SaveRet)
        U.NeedsGprCopy = false;
      break;
    case iisa::IsaVariant::Modified:
      U.NeedsGprCopy =
          isTempValue(U.Out) && U.OutUsage == UsageClass::CommGlobal;
      break;
    case iisa::IsaVariant::Straight:
      U.NeedsGprCopy = false;
      break;
    }
  }

  for (int32_t DefIdx : ForceGprDefs) {
    Uop &Def = Uops[DefIdx];
    if (Def.OutUsage == UsageClass::Local)
      Def.OutUsage = UsageClass::CommGlobal;
    else if (Def.OutUsage == UsageClass::Temp)
      Def.OutUsage = UsageClass::CommGlobal;
    if (Config.Variant == iisa::IsaVariant::Basic)
      Def.NeedsGprCopy = true;
    else if (Config.Variant == iisa::IsaVariant::Modified &&
             isTempValue(Def.Out))
      Def.NeedsGprCopy = true;
  }
}

void Analyzer::promoteAcrossExits() {
  if (SideExits.empty())
    return;
  // Sorted exit positions for window queries.
  std::vector<int32_t> ExitIdx;
  ExitIdx.reserve(SideExits.size());
  for (const SideExit &Exit : SideExits)
    ExitIdx.push_back(Exit.UopIdx);

  auto ExitInWindow = [&](int32_t Lo, int32_t Hi) {
    for (int32_t Idx : ExitIdx)
      if (Idx > Lo && Idx < Hi)
        return true;
    return false;
  };

  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    Uop &U = Uops[Idx];
    if (!U.producesValue() || !isArchValue(U.Out))
      continue;
    if (U.OutUsage != UsageClass::Local && U.OutUsage != UsageClass::NoUser)
      continue;
    ensure(U.RedefIdx >= 0, TranslateStatus::InternalUsage,
           "Local/NoUser implies a redefinition");
    if (!ExitInWindow(Idx, U.RedefIdx))
      continue;
    U.OutUsage = U.OutUsage == UsageClass::Local
                     ? UsageClass::LocalToGlobal
                     : UsageClass::NoUserToGlobal;
    U.NeedsGprCopy = true;
  }
}

TranslateStatus dbt::analyzeUsage(LoweredBlock &Block,
                                  const DbtConfig &Config) {
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::Usage))
    return TranslateStatus::InjectedFault;
  try {
    Analyzer A{Block.List.Uops, Block.SideExits, Config, {}, {}};
    A.run();
    return TranslateStatus::Ok;
  } catch (const TranslateAbort &Abort) {
    return Abort.Status;
  }
}
