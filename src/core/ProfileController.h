//===- core/ProfileController.h - Trace-start candidate profiling ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks execution counters for trace-start candidate instructions
/// (Section 3.1). Candidates are:
///   - targets of register-indirect jumps (JMP/JSR/RET),
///   - targets of backward conditional branches,
///   - exit targets of existing fragments.
/// When a candidate's counter reaches the hot threshold, the VM switches to
/// recording mode. The paper uses an unlimited number of counters
/// (Section 4.1); so do we.
///
/// Translation failures feed back here (DESIGN.md §9): an entry whose
/// translation bailed out gets its counter reset and its hot threshold
/// multiplied by a backoff factor, so the VM re-profiles it for ever longer
/// before retrying; after a bounded number of retries the entry is
/// blacklisted and interpreted forever. Failure state — unlike counters and
/// translation marks — deliberately survives a translation-cache flush: a
/// flush does not make a malformed superblock translatable.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_PROFILECONTROLLER_H
#define ILDP_CORE_PROFILECONTROLLER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace ildp {
namespace dbt {

/// Candidate counters plus the set of already-translated entry points.
class ProfileController {
public:
  explicit ProfileController(unsigned HotThreshold)
      : Threshold(HotThreshold) {}

  /// Registers \p VAddr as a trace-start candidate (idempotent).
  void addCandidate(uint64_t VAddr) { Candidates.insert(VAddr); }

  bool isCandidate(uint64_t VAddr) const { return Candidates.count(VAddr); }

  /// Bumps the execution counter of candidate \p VAddr. Returns true when
  /// the counter reaches the hot threshold for an address that has not been
  /// translated yet (i.e. recording should start here). Blacklisted entries
  /// never qualify; entries with past failures must reach their inflated
  /// per-entry threshold.
  bool bump(uint64_t VAddr) {
    if (Translated.count(VAddr) || !Candidates.count(VAddr))
      return false;
    unsigned Goal = Threshold;
    if (!Failed.empty()) { // Fast path: no failures ever -> one branch.
      auto It = Failed.find(VAddr);
      if (It != Failed.end()) {
        if (It->second.Blacklisted)
          return false;
        Goal = It->second.Threshold;
      }
    }
    // >= rather than ==: an entry whose fragment was evicted re-enters
    // profiling with its counter intact (noteEvicted), so the count may
    // already sit at or past the goal when it becomes bumpable again.
    return ++Counters[VAddr] >= Goal;
  }

  /// Marks \p VAddr as translated (its counter stops mattering).
  void markTranslated(uint64_t VAddr) { Translated.insert(VAddr); }

  /// The fragment for \p VAddr was evicted from the translation cache:
  /// drop only the translation mark, keeping the execution counter and any
  /// failure state intact. The entry re-enters profiling where it left
  /// off — a previously hot entry re-qualifies on its next bump instead of
  /// paying the full threshold again.
  void noteEvicted(uint64_t VAddr) { Translated.erase(VAddr); }

  bool isTranslated(uint64_t VAddr) const { return Translated.count(VAddr); }

  size_t candidateCount() const { return Candidates.size(); }

  /// Records a translation failure for \p VAddr: the entry's counter
  /// resets, its hot threshold is multiplied by \p Backoff (so it
  /// re-profiles exponentially longer before the next attempt), and once it
  /// has failed more than \p MaxRetries times it is blacklisted — bump()
  /// never fires for it again. Also drops any translation mark (an async
  /// submission marks optimistically). Returns true when the failure
  /// crossed into blacklisting.
  bool recordFailure(uint64_t VAddr, unsigned MaxRetries, uint64_t Backoff) {
    Translated.erase(VAddr);
    Counters.erase(VAddr);
    FailureState &F = Failed[VAddr];
    if (F.Blacklisted)
      return false;
    ++F.Failures;
    if (F.Failures > MaxRetries) {
      F.Blacklisted = true;
      return true;
    }
    if (Backoff == 0)
      Backoff = 1;
    uint64_t Next = uint64_t(F.Threshold ? F.Threshold : Threshold) * Backoff;
    constexpr uint64_t Cap = 1u << 30; // Avoid unsigned overflow; still
    F.Threshold = unsigned(Next < Cap ? Next : Cap); // effectively "never".
    return false;
  }

  bool isBlacklisted(uint64_t VAddr) const {
    auto It = Failed.find(VAddr);
    return It != Failed.end() && It->second.Blacklisted;
  }

  /// Translation failures recorded so far for \p VAddr.
  unsigned failureCount(uint64_t VAddr) const {
    auto It = Failed.find(VAddr);
    return It == Failed.end() ? 0 : It->second.Failures;
  }

  size_t blacklistedCount() const {
    size_t N = 0;
    for (const auto &KV : Failed)
      N += KV.second.Blacklisted;
    return N;
  }

  /// Forgets translation marks and counters (after a translation-cache
  /// flush): candidates stay registered, and hot paths must re-qualify.
  /// Failure/blacklist state survives — flushing the cache does not make a
  /// failing superblock translatable.
  void resetAfterFlush() {
    Translated.clear();
    Counters.clear();
  }

private:
  struct FailureState {
    unsigned Failures = 0;
    unsigned Threshold = 0; ///< 0 = base threshold (no failure yet).
    bool Blacklisted = false;
  };

  unsigned Threshold;
  std::unordered_set<uint64_t> Candidates;
  std::unordered_set<uint64_t> Translated;
  std::unordered_map<uint64_t, unsigned> Counters;
  std::unordered_map<uint64_t, FailureState> Failed;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_PROFILECONTROLLER_H
