//===- core/ProfileController.h - Trace-start candidate profiling ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks execution counters for trace-start candidate instructions
/// (Section 3.1). Candidates are:
///   - targets of register-indirect jumps (JMP/JSR/RET),
///   - targets of backward conditional branches,
///   - exit targets of existing fragments.
/// When a candidate's counter reaches the hot threshold, the VM switches to
/// recording mode. The paper uses an unlimited number of counters
/// (Section 4.1); so do we.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_PROFILECONTROLLER_H
#define ILDP_CORE_PROFILECONTROLLER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace ildp {
namespace dbt {

/// Candidate counters plus the set of already-translated entry points.
class ProfileController {
public:
  explicit ProfileController(unsigned HotThreshold)
      : Threshold(HotThreshold) {}

  /// Registers \p VAddr as a trace-start candidate (idempotent).
  void addCandidate(uint64_t VAddr) { Candidates.insert(VAddr); }

  bool isCandidate(uint64_t VAddr) const { return Candidates.count(VAddr); }

  /// Bumps the execution counter of candidate \p VAddr. Returns true when
  /// the counter reaches the hot threshold for an address that has not been
  /// translated yet (i.e. recording should start here).
  bool bump(uint64_t VAddr) {
    if (Translated.count(VAddr) || !Candidates.count(VAddr))
      return false;
    return ++Counters[VAddr] == Threshold;
  }

  /// Marks \p VAddr as translated (its counter stops mattering).
  void markTranslated(uint64_t VAddr) { Translated.insert(VAddr); }

  bool isTranslated(uint64_t VAddr) const { return Translated.count(VAddr); }

  size_t candidateCount() const { return Candidates.size(); }

  /// Forgets translation marks and counters (after a translation-cache
  /// flush): candidates stay registered, and hot paths must re-qualify.
  void resetAfterFlush() {
    Translated.clear();
    Counters.clear();
  }

private:
  unsigned Threshold;
  std::unordered_set<uint64_t> Candidates;
  std::unordered_set<uint64_t> Translated;
  std::unordered_map<uint64_t, unsigned> Counters;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_PROFILECONTROLLER_H
