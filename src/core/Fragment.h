//===- core/Fragment.h - Translation cache fragments ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fragment: one translated superblock resident in the translation cache
/// (Sections 3.1-3.2), stored in decoded I-ISA form together with its PEI
/// side table (Section 2.2) and its patchable exit records.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_FRAGMENT_H
#define ILDP_CORE_FRAGMENT_H

#include "core/Superblock.h"
#include "iisa/IisaInst.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ildp {

namespace native {
struct NativeCode;
}

namespace dbt {

/// One potentially-excepting-instruction record. The VM indexes this table
/// with the trapping instruction's fragment offset to find the V-ISA
/// address and to reconstruct architected registers whose current values
/// live only in accumulators (basic ISA).
struct PeiEntry {
  uint32_t InstIndex = 0; ///< Offset of the PEI in the fragment body.
  uint64_t VAddr = 0;     ///< V-ISA address of the source instruction.
  /// Basic ISA: architected registers whose value at this PEI is held in
  /// an accumulator rather than the GPR file: (register, accumulator).
  std::vector<std::pair<uint8_t, uint8_t>> AccHeldRegs;
};

/// A patchable fragment exit (cond_exit or branch instruction).
struct ExitRecord {
  uint32_t InstIndex = 0;
  uint64_t VTarget = 0;
  bool Pending = false; ///< Still a call-translator exit (not yet patched).
};

/// A translated superblock in the translation cache.
struct Fragment {
  uint64_t EntryVAddr = 0;
  iisa::IsaVariant Variant = iisa::IsaVariant::Modified;
  std::vector<iisa::IisaInst> Body;
  /// Byte offset of each instruction from IBase (I-PC formation for the
  /// timing models' I-cache and predictors).
  std::vector<uint32_t> InstOffset;
  std::vector<PeiEntry> PeiTable;
  std::vector<ExitRecord> Exits;
  /// Distinct source V-ISA addresses covered (footprint statistics).
  std::vector<uint64_t> SourceVAddrs;

  uint64_t IBase = 0; ///< Translation-cache address, assigned at install.
  uint64_t ExecCount = 0;
  /// Lookup recency stamp, maintained by TranslationCache::lookup() when a
  /// byte budget is set; the exec-weighted-LRU eviction tiebreaker.
  uint64_t LastUseTick = 0;
  unsigned SourceInsts = 0;  ///< Source instructions recorded (incl. NOPs).
  unsigned NopsRemoved = 0;
  unsigned BodyBytes = 0;    ///< Encoded size of the body.

  // Native-tier linkage (src/native). The core library never touches
  // these beyond default construction/destruction; the VM manages them.
  // Holding the NativeCode by shared_ptr means the dlopen'd module lives
  // exactly as long as some fragment (here or graveyarded) references it
  // — dlclose rides the reclaim safepoints for free.
  enum : uint8_t { NativeNone = 0, NativePending = 1, NativeFailed = 2 };
  uint64_t NativeKey = 0;   ///< native::fragmentKey(Body), 0 = uncomputed.
  uint8_t NativeState = NativeNone;
  std::shared_ptr<native::NativeCode> Native; ///< Set once compiled+loaded.

  /// I-PC of instruction \p Index.
  uint64_t instPc(size_t Index) const { return IBase + InstOffset[Index]; }

  /// PEI entry for the instruction at \p InstIndex, or nullptr.
  const PeiEntry *findPei(uint32_t InstIndex) const {
    for (const PeiEntry &Entry : PeiTable)
      if (Entry.InstIndex == InstIndex)
        return &Entry;
    return nullptr;
  }
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_FRAGMENT_H
