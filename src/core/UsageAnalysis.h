//===- core/UsageAnalysis.h - Dependence and usage identification ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "dependence/usage identification" step (Section 3.3): for
/// every micro-op output, determine how "global" its value is:
///
///   - no user: overwritten before any use,
///   - local: used exactly once before being overwritten,
///   - temp: single-use decomposition value,
///   - live-out global: live on superblock exit (conservatively, any
///     architected register not overwritten later in the block),
///   - communication global: used more than once before overwrite,
///   - spill global: forced global (assigned later by strand formation).
///
/// For the **basic** ISA the pass additionally performs the side-exit
/// promotions of Figure 7 ("local → global", "no user → global"): a value
/// whose architected register remains current across a conditional side
/// exit must be saved to the GPR file before that exit, because the next
/// fragment's accumulator map knows nothing about this one.
///
/// Because dynamically recorded superblocks are straight-line code, no
/// graph-based dependence analysis is needed — everything is a single
/// linear scan with a last-definition table, as the paper notes.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_USAGEANALYSIS_H
#define ILDP_CORE_USAGEANALYSIS_H

#include "core/Config.h"
#include "core/Lowering.h"
#include "core/Uop.h"

namespace ildp {
namespace dbt {

/// Runs reaching-definition resolution and usage classification over
/// \p Block in place (fills UopInput::DefIdx, Uop::OutUsage, NumUses,
/// RedefIdx, LastUseIdx, NeedsGprCopy). Returns TranslateStatus::Ok on
/// success or a typed failure; on failure \p Block is partially annotated
/// and must be discarded.
TranslateStatus analyzeUsage(LoweredBlock &Block, const DbtConfig &Config);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_USAGEANALYSIS_H
