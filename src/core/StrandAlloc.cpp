//===- core/StrandAlloc.cpp - Strand formation & accumulator assignment ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/StrandAlloc.h"

#include "core/FaultInjector.h"

#include <algorithm>
#include <limits>
#include <map>

using namespace ildp;
using namespace ildp::dbt;
using iisa::UsageClass;

namespace {

constexpr int32_t Never = std::numeric_limits<int32_t>::max();

/// Whole-pass working state.
class Allocator {
public:
  Allocator(LoweredBlock &Block, const DbtConfig &Config)
      : Uops(Block.List.Uops), Config(Config) {}

  StrandAllocResult run();

private:
  std::vector<Uop> &Uops;
  const DbtConfig &Config;
  StrandAllocResult Result;

  // ---- Strand formation state ----
  struct StrandInfo {
    std::vector<int32_t> Activity; ///< Uop indices (defs and acc reads).
    int32_t Len = 0;               ///< Definition count (length heuristic).
    int32_t LatestDef = -1;
  };
  std::vector<StrandInfo> Strands;
  /// Final strand id per original id (spill resumption renumbering).
  std::vector<int32_t> Remap;

  // ---- Allocation state ----
  struct AccState {
    int32_t Strand = -1; ///< Current owner, -1 when free.
  };
  std::vector<AccState> Accs;
  /// Next-activity cursor per strand.
  std::vector<size_t> Cursor;
  /// Per-strand currently assigned accumulator (-1 when none).
  std::vector<int16_t> AccOf;
  /// Reloads pending at a given uop index.
  std::map<int32_t, std::vector<std::pair<int32_t, int32_t>>> PendingReloads;
  /// Per-def: scaled position where its accumulator stops holding its
  /// value; Never if it survives to the end of the fragment. Positions are
  /// scaled by two so clobbers can be ordered against a PEI's fault check:
  /// 2*i   = clobbered by instruction i's own result write (suppressed if
  ///         i faults — a PEI at i is still recoverable),
  /// 2*i-1 = clobbered *before* instruction i executes (copy-from-GPR
  ///         pre-copies and spill reloads emit ahead of their instruction).
  std::vector<int32_t> AccEnd;
  /// Per-acc: the def whose value it last held (for AccEnd bookkeeping).
  std::vector<int32_t> LastHolder;
  /// Rotating allocation pointer (see acquireAcc).
  unsigned Rotate = 0;
  /// Latest definition of each strand *as of the allocation walk* —
  /// formation's StrandInfo::LatestDef is the final def over the whole
  /// block and must not be consulted mid-walk (spilling a strand before
  /// its later definitions would otherwise reference a future value).
  std::vector<int32_t> AllocLatest;

  int32_t newStrand() {
    Strands.emplace_back();
    Remap.push_back(int32_t(Strands.size()) - 1);
    Cursor.push_back(0);
    AccOf.push_back(-1);
    AllocLatest.push_back(-1);
    return int32_t(Strands.size()) - 1;
  }

  int32_t resolve(int32_t Strand) const {
    while (Strand >= 0 && Remap[Strand] != Strand)
      Strand = Remap[Strand];
    return Strand;
  }

  bool isLocalClassDef(const UopInput &In) const {
    if (!In.isValue() || In.DefIdx < 0)
      return false;
    UsageClass Class = Uops[In.DefIdx].OutUsage;
    return Class == UsageClass::Local || Class == UsageClass::Temp;
  }

  void formStrands();
  void assignAccumulators();
  void promoteForTraps();

  int32_t nextActivity(int32_t Strand, int32_t After);
  int16_t acquireAcc(int32_t AtIdx, int32_t ForStrand, bool PreClobber);
  void spillVictim(int32_t AtIdx);
};

} // namespace

void Allocator::formStrands() {
  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    Uop &U = Uops[Idx];
    if (U.Kind == UopKind::SaveRet || U.Kind == UopKind::PushRas ||
        U.Kind == UopKind::EndJump)
      continue;

    unsigned LocalSlots[2];
    unsigned NumLocal = 0;
    if (isLocalClassDef(U.In1))
      LocalSlots[NumLocal++] = 1;
    if (isLocalClassDef(U.In2))
      LocalSlots[NumLocal++] = 2;

    // Conditional branches may read a value that, while classified global,
    // is still sitting in its strand's accumulator (Figure 2's final
    // branch reads A1 even though R17 was copied out for liveness).
    if (U.Kind == UopKind::CondBr && NumLocal == 0 && U.In1.isValue() &&
        U.In1.DefIdx >= 0) {
      const Uop &Def = Uops[U.In1.DefIdx];
      int32_t S = Def.Strand >= 0 ? resolve(Def.Strand) : -1;
      if (S >= 0 && Strands[S].LatestDef == U.In1.DefIdx) {
        U.Strand = S;
        Strands[S].Activity.push_back(Idx);
        continue;
      }
      continue; // Condition read from the GPR file.
    }

    int32_t S = -1;
    switch (NumLocal) {
    case 0: {
      unsigned ValueIns =
          unsigned(U.In1.isValue()) + unsigned(U.In2.isValue());
      bool Produces = U.producesValue();
      if (ValueIns == 2) {
        // Two global register inputs: break into copy-from-GPR (which
        // starts the strand) plus the instruction reading it locally.
        U.PreCopySlot = 1;
        ++Result.PreCopies;
        S = newStrand();
        ++Strands[S].Len; // The implicit copy counts toward length.
      } else if (Produces) {
        S = newStrand();
      }
      break;
    }
    case 1: {
      const UopInput &In = LocalSlots[0] == 1 ? U.In1 : U.In2;
      S = resolve(Uops[In.DefIdx].Strand);
      ensure(S >= 0, TranslateStatus::InternalStrandAlloc,
             "Local input without a strand");
      break;
    }
    case 2: {
      const Uop &D1 = Uops[U.In1.DefIdx];
      const Uop &D2 = Uops[U.In2.DefIdx];
      bool PickFirst;
      if ((D1.OutUsage == UsageClass::Temp) !=
          (D2.OutUsage == UsageClass::Temp))
        PickFirst = D1.OutUsage == UsageClass::Temp;
      else
        PickFirst = Strands[resolve(D1.Strand)].Len >=
                    Strands[resolve(D2.Strand)].Len;
      Uop &Loser = Uops[PickFirst ? U.In2.DefIdx : U.In1.DefIdx];
      S = resolve((PickFirst ? D1 : D2).Strand);
      // The other local value is demoted to a spill global and read
      // through the register file.
      Loser.OutUsage = UsageClass::SpillGlobal;
      if (Config.Variant == iisa::IsaVariant::Basic ||
          isTempValue(Loser.Out))
        Loser.NeedsGprCopy = true;
      break;
    }
    }

    if (S < 0)
      continue;
    U.Strand = S;
    Strands[S].Activity.push_back(Idx);
    if (U.producesValue()) {
      ++Strands[S].Len;
      Strands[S].LatestDef = Idx;
    }
  }
  Result.NumStrands = unsigned(Strands.size());
}

int32_t Allocator::nextActivity(int32_t Strand, int32_t After) {
  const auto &Act = Strands[Strand].Activity;
  size_t &Cur = Cursor[Strand];
  while (Cur < Act.size() && Act[Cur] <= After)
    ++Cur;
  return Cur < Act.size() ? Act[Cur] : Never;
}

void Allocator::spillVictim(int32_t AtIdx) {
  // Choose the live strand whose next activity is farthest away.
  int32_t Victim = -1;
  int32_t FarthestNext = -1;
  for (const AccState &Acc : Accs) {
    if (Acc.Strand < 0)
      continue;
    int32_t Next = nextActivity(Acc.Strand, AtIdx - 1);
    if (Next > FarthestNext) {
      FarthestNext = Next;
      Victim = Acc.Strand;
    }
  }
  ensure(Victim >= 0, TranslateStatus::ScratchExhausted,
         "No strand to spill");
  ++Result.SpillTerminations;

  int16_t Acc = AccOf[Victim];
  int32_t LastDef = AllocLatest[Victim];
  ensure(LastDef >= 0, TranslateStatus::InternalStrandAlloc,
         "Spilling a strand that never defined a value");
  Uop &Def = Uops[LastDef];
  if (!Def.NeedsGprCopy) {
    // Materialize the terminated strand's value. In the modified ISA an
    // architected value is already in its destination GPR; temps always
    // need an explicit scratch copy.
    if (Config.Variant == iisa::IsaVariant::Basic || isTempValue(Def.Out))
      Def.NeedsGprCopy = true;
    if (Def.OutUsage == UsageClass::Local ||
        Def.OutUsage == UsageClass::Temp ||
        Def.OutUsage == UsageClass::NoUser)
      Def.OutUsage = UsageClass::SpillGlobal;
  }
  AccEnd[LastDef] = std::min(AccEnd[LastDef], 2 * AtIdx - 1);

  // If the strand has future activity, schedule its resumption as a new
  // strand seeded by a copy-from-GPR.
  int32_t Next = nextActivity(Victim, AtIdx - 1);
  if (Next != Never) {
    int32_t Resumed = newStrand();
    StrandInfo &Info = Strands[Resumed];
    const auto &Old = Strands[Victim].Activity;
    Info.Activity.assign(
        std::lower_bound(Old.begin(), Old.end(), Next), Old.end());
    Info.Len = Strands[Victim].Len;
    Info.LatestDef = LastDef;
    AllocLatest[Resumed] = LastDef; // The reload re-produces this value.
    Remap[Victim] = Resumed;
    PendingReloads[Next].push_back({LastDef, Resumed});
  }

  Accs[Acc].Strand = -1;
  AccOf[Victim] = -1;
}

int16_t Allocator::acquireAcc(int32_t AtIdx, int32_t ForStrand,
                              bool PreClobber) {
  // Rotate through the accumulators so successive strands take A0, A1,
  // A2, ... in order (matching the paper's Figure 2 assignment) instead
  // of eagerly reusing the lowest expired number. Reuse also keeps dead
  // values around longer for opportunistic reads.
  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    for (unsigned Step = 0; Step != Accs.size(); ++Step) {
      int16_t A = int16_t((Rotate + Step) % Accs.size());
      AccState &Acc = Accs[A];
      if (Acc.Strand >= 0 &&
          nextActivity(Acc.Strand, AtIdx - 1) != Never)
        continue;
      // Free (or naturally expired) accumulator.
      if (Acc.Strand >= 0)
        AccOf[Acc.Strand] = -1;
      if (LastHolder[A] >= 0)
        AccEnd[LastHolder[A]] = std::min(
            AccEnd[LastHolder[A]], 2 * AtIdx - int32_t(PreClobber));
      Acc.Strand = ForStrand;
      AccOf[ForStrand] = A;
      Rotate = unsigned(A + 1) % unsigned(Accs.size());
      return A;
    }
    spillVictim(AtIdx);
  }
  bailout(TranslateStatus::ScratchExhausted,
          "acquireAcc failed after spilling");
}

void Allocator::assignAccumulators() {
  Accs.assign(Config.NumAccumulators, AccState());
  LastHolder.assign(Config.NumAccumulators, -1);
  AccEnd.assign(Uops.size(), Never);

  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    // Strand resumptions scheduled before this uop.
    if (auto It = PendingReloads.find(Idx); It != PendingReloads.end()) {
      for (auto [ValueDefIdx, Resumed] : It->second) {
        // The reload instruction is emitted before uop Idx: pre-clobber.
        int16_t A = acquireAcc(Idx, Resumed, /*PreClobber=*/true);
        LastHolder[A] = ValueDefIdx;
        Result.Reloads.push_back({Idx, ValueDefIdx, A});
      }
    }

    Uop &U = Uops[Idx];
    if (U.Strand < 0)
      continue;
    int32_t S = resolve(U.Strand);
    U.Strand = S;
    if (AccOf[S] < 0 && (U.producesValue() || U.PreCopySlot))
      acquireAcc(Idx, S, /*PreClobber=*/U.PreCopySlot != 0);
    if (AccOf[S] < 0)
      continue; // Accumulator-read whose strand was never materialized.
    U.Acc = AccOf[S];

    if (U.producesValue()) {
      AllocLatest[S] = Idx;
      if (LastHolder[U.Acc] >= 0 && LastHolder[U.Acc] != Idx) {
        // A pre-copy overwrites the accumulator before the instruction;
        // the instruction's own result write only lands if it does not
        // fault.
        int32_t Clobber = 2 * Idx - int32_t(U.PreCopySlot != 0);
        AccEnd[LastHolder[U.Acc]] =
            std::min(AccEnd[LastHolder[U.Acc]], Clobber);
      }
      LastHolder[U.Acc] = Idx;
    }
  }

  std::sort(Result.Reloads.begin(), Result.Reloads.end(),
            [](const StrandAllocResult::Reload &L,
               const StrandAllocResult::Reload &R) {
              return L.BeforeUopIdx < R.BeforeUopIdx;
            });
}

void Allocator::promoteForTraps() {
  if (Config.Variant != iisa::IsaVariant::Basic)
    return;
  // Positions of potentially excepting instructions.
  std::vector<int32_t> Peis;
  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx)
    if (Uops[Idx].isPei())
      Peis.push_back(Idx);
  if (Peis.empty())
    return;

  for (int32_t Idx = 0, End = int32_t(Uops.size()); Idx != End; ++Idx) {
    Uop &U = Uops[Idx];
    if (!U.producesValue() || !isArchValue(U.Out) || U.NeedsGprCopy)
      continue;
    if (U.OutUsage != UsageClass::Local && U.OutUsage != UsageClass::NoUser)
      continue;
    ensure(U.RedefIdx >= 0, TranslateStatus::InternalStrandAlloc,
           "Local/NoUser implies redefinition");
    int32_t SafeEnd = AccEnd[Idx]; // Scaled position (see declaration).
    if (SafeEnd == Never || SafeEnd >= 2 * U.RedefIdx)
      continue; // The accumulator outlives the architected liveness.
    // Any PEI whose fault check happens after the accumulator dies but
    // not after the register's redefinition *completes* forces a copy
    // (Section 2.2). PEI fault checks sit at scaled position 2*p; a PEI
    // that is itself the redefining instruction still needs the old value
    // (its own write is suppressed when it faults), so the window is
    // half-open on the left only.
    auto It = std::upper_bound(
        Peis.begin(), Peis.end(), SafeEnd,
        [](int32_t Scaled, int32_t Pei) { return Scaled < 2 * Pei; });
    if (It == Peis.end() || *It > U.RedefIdx)
      continue;
    U.NeedsGprCopy = true;
    U.OutUsage = U.OutUsage == UsageClass::Local
                     ? UsageClass::LocalToGlobal
                     : UsageClass::NoUserToGlobal;
    ++Result.TrapPromotions;
  }
}

StrandAllocResult Allocator::run() {
  formStrands();
  assignAccumulators();
  promoteForTraps();
  return std::move(Result);
}

Expected<StrandAllocResult>
dbt::formStrandsAndAllocate(LoweredBlock &Block, const DbtConfig &Config) {
  if (Config.Fault && Config.Fault->shouldFail(FaultSite::StrandAlloc))
    return {TranslateStatus::InjectedFault, "strand_alloc"};
  try {
    ensure(Config.NumAccumulators >= 1 &&
               Config.NumAccumulators <= iisa::MaxAccumulators,
           TranslateStatus::InternalStrandAlloc,
           "Accumulator count out of range");
    ensure(Config.Variant != iisa::IsaVariant::Straight,
           TranslateStatus::InternalStrandAlloc,
           "The straightening backend has no strands");
    return Allocator(Block, Config).run();
  } catch (const TranslateAbort &Abort) {
    return Abort;
  }
}
