//===- core/Config.cpp - DBT configuration --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Config.h"

using namespace ildp;
using namespace ildp::dbt;

const char *dbt::getChainPolicyName(ChainPolicy Policy) {
  switch (Policy) {
  case ChainPolicy::NoPred:
    return "no_pred";
  case ChainPolicy::SwPredNoRas:
    return "sw_pred.no_ras";
  case ChainPolicy::SwPredRas:
    return "sw_pred.ras";
  }
  return "unknown";
}

const char *dbt::getVariantName(iisa::IsaVariant Variant) {
  switch (Variant) {
  case iisa::IsaVariant::Basic:
    return "basic";
  case iisa::IsaVariant::Modified:
    return "modified";
  case iisa::IsaVariant::Straight:
    return "straight";
  }
  return "unknown";
}
