//===- core/Translator.h - Translation pipeline orchestration -------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full translation pipeline on a recorded superblock:
/// lowering -> usage identification -> strand formation & accumulator
/// assignment -> code generation, and accounts the translation cost in
/// "translator instructions" the way the paper measures it with Atom
/// (Section 4.2: on average about 1,125 Alpha instructions to translate
/// one Alpha instruction, ~20% of it spent copying translated-instruction
/// structures into the translation cache field by field).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRANSLATOR_H
#define ILDP_CORE_TRANSLATOR_H

#include "core/CodeGen.h"
#include "core/Config.h"
#include "core/Fragment.h"
#include "core/Superblock.h"
#include "core/TranslateStatus.h"
#include "support/Statistics.h"

namespace ildp {
namespace dbt {

/// Per-phase translation-cost accounting, in translator instructions.
/// The constants are calibrated so a typical translation lands near the
/// paper's measured magnitude; the per-benchmark variation comes from real
/// structural differences (uop expansion, chaining, patch activity).
struct TranslationCost {
  uint64_t Decode = 0;     ///< Source fetch/decode during recording.
  uint64_t Analysis = 0;   ///< Dependence/usage identification.
  uint64_t Strands = 0;    ///< Strand formation + accumulator assignment.
  uint64_t CodeGen = 0;    ///< Instruction selection/emission.
  uint64_t CacheCopy = 0;  ///< Field-by-field fragment copy (Section 4.2).
  uint64_t Chaining = 0;   ///< Exit bookkeeping and patching.
  uint64_t Overhead = 0;   ///< Per-fragment fixed bookkeeping.

  uint64_t total() const {
    return Decode + Analysis + Strands + CodeGen + CacheCopy + Chaining +
           Overhead;
  }
  void addTo(StatisticSet &Stats) const;
};

/// Result of translating one superblock.
struct TranslationResult {
  Fragment Frag;
  TranslationCost Cost;
  unsigned Uops = 0;
  unsigned Strands = 0;
  unsigned Spills = 0;
  unsigned PreCopies = 0;
  unsigned TrapPromotions = 0;
};

/// Translates \p Sb under \p Config. \p Env supplies translation-time
/// queries (which targets already have fragments). Every pipeline stage is
/// guarded: malformed superblocks, resource exhaustion, internal invariant
/// violations, and injected faults surface as a typed failure — the caller
/// falls back to interpretation (DESIGN.md §9) — and never abort.
Expected<TranslationResult> translate(const Superblock &Sb,
                                      const DbtConfig &Config,
                                      const ChainEnv &Env);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRANSLATOR_H
