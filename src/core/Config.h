//===- core/Config.h - DBT configuration ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the dynamic binary translation system: ISA variant,
/// fragment-formation parameters (Section 4.1: superblock size 200, hot
/// threshold 50, four logical accumulators), chaining policy (Section 4.3),
/// and the memory-split ablation knob (Section 4.5 discusses not splitting
/// memory instructions).
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_CONFIG_H
#define ILDP_CORE_CONFIG_H

#include "iisa/IisaInst.h"

#include <cstdint>

namespace ildp {
namespace dbt {

class FaultInjector;

/// Fragment chaining policies evaluated in Section 4.3 / Figure 4.
enum class ChainPolicy : uint8_t {
  NoPred,      ///< Indirect jumps always branch to the shared dispatch code.
  SwPredNoRas, ///< Software jump-target prediction; returns treated like
               ///< other indirect jumps (compare-and-branch).
  SwPredRas,   ///< Software prediction plus the proposed dual-address
               ///< hardware RAS for returns (the paper's baseline).
};

/// Parameters of the translator.
struct DbtConfig {
  iisa::IsaVariant Variant = iisa::IsaVariant::Modified;
  ChainPolicy Chaining = ChainPolicy::SwPredRas;
  /// Hot-threshold for trace-start candidate counters (Section 4.1).
  unsigned HotThreshold = 50;
  /// Maximum superblock size in source instructions (Section 4.1).
  unsigned MaxSuperblockInsts = 200;
  /// Number of logical accumulators (4 in the baseline; 8 in Figure 9).
  unsigned NumAccumulators = 4;
  /// Decompose displacement-carrying memory operations into an address add
  /// plus a zero-displacement access (Section 2.1). Turning this off is the
  /// Section 4.5 ablation.
  bool SplitMemoryOps = true;
  /// Modified ISA only: decompose conditional moves into two instructions
  /// (cmov_mask + cmov_blend, using the readable destination-GPR field for
  /// the third operand) as the paper describes, instead of the generic
  /// four-operation mask/and/bic/bis expansion the basic ISA requires.
  bool CmovTwoOp = true;
  /// Upper bound on the encoded fragment body, in bytes; translation bails
  /// out with TranslateStatus::FragmentTooLarge beyond it. Generous by
  /// default (a 200-instruction superblock encodes far below this); tests
  /// shrink it to exercise the bailout path. The VM clamps this to
  /// VmConfig::CodeCacheBytes when a cache budget is set, so no single
  /// fragment can ever exceed the whole cache. Like Fault, not part of the
  /// persisted-cache config fingerprint: it changes *whether* a fragment
  /// exists, never its contents.
  uint32_t MaxFragmentBytes = 1u << 16;
  /// Deterministic fault injection for tests/benches (DESIGN.md §9/§10);
  /// non-owning, may be null. Not part of the persisted-cache config
  /// fingerprint: injected faults change *whether* a fragment exists, never
  /// its contents.
  FaultInjector *Fault = nullptr;
};

const char *getChainPolicyName(ChainPolicy Policy);
const char *getVariantName(iisa::IsaVariant Variant);

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_CONFIG_H
