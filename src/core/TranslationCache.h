//===- core/TranslationCache.h - Fragment registry and patching -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation cache (Section 3.1-3.2): maps V-ISA entry addresses to
/// fragments, assigns translation-cache (I-PC) addresses, and performs
/// exit patching — when a fragment for address X is installed, every
/// call-translator[-if-condition-is-met] exit targeting X in previously
/// installed fragments is rewritten into a normal chained branch.
///
/// The paper sidesteps cache management because its working sets fit
/// (Section 4.1). Beyond the paper, the cache optionally enforces a hard
/// byte budget (DESIGN.md §10): when an install would exceed it, victims
/// chosen by exec-count-weighted LRU are evicted until the new fragment
/// fits. Eviction is made safe by a reverse chain index: every chained
/// exit in a surviving fragment that targets an evicted entry is
/// *unchained* back to its call-translator form, so no branch ever leads
/// to a non-resident I-PC. With no budget set (the default) none of this
/// machinery runs and behavior is bit-identical to the append-only cache.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRANSLATIONCACHE_H
#define ILDP_CORE_TRANSLATIONCACHE_H

#include "core/Fragment.h"
#include "support/FixedRing.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ildp {
namespace dbt {

class FaultInjector;

/// Fragment registry with pending-exit patching and (optionally) a byte
/// budget enforced by exec-weighted LRU eviction.
class TranslationCache {
public:
  /// Translation-cache address space origin (synthetic I-PCs for the
  /// timing models' I-cache and predictors).
  static constexpr uint64_t TCacheBase = 0x200000000ull;

  /// Entries touched by the most recent lookups are protected from
  /// eviction (the FixedRing recency signal of DESIGN.md §10).
  static constexpr size_t RecentUseDepth = 8;

  TranslationCache() : RecentUse(RecentUseDepth) {}

  /// Installs \p Frag: evicts victims if a byte budget is set and would be
  /// exceeded, assigns the fragment's IBase, registers it under its entry
  /// address, and patches pending exits in all fragments (including the
  /// new one) that target already-translated entries. Exits of the new
  /// fragment that arrive pre-chained to entries that are no longer
  /// resident (an asynchronous worker translated against a stale snapshot,
  /// or this very install evicted the target) are unchained back to their
  /// call-translator form. Returns the installed fragment.
  Fragment &install(Fragment Frag);

  /// Fragment for entry \p VAddr, or nullptr. The non-const form stamps
  /// the fragment's recency (LastUseTick + protection ring) for the
  /// eviction policy.
  Fragment *lookup(uint64_t VAddr);
  const Fragment *lookup(uint64_t VAddr) const;

  bool contains(uint64_t VAddr) const { return Index.count(VAddr) != 0; }

  size_t fragmentCount() const { return Fragments.size(); }

  /// Total encoded bytes of all resident fragment bodies.
  uint64_t totalBodyBytes() const { return TotalBytes; }

  /// Number of distinct source V-ISA instruction addresses covered by any
  /// fragment (static footprint denominator for Table 2).
  size_t uniqueSourceInsts() const { return CoveredVAddrs.size(); }

  /// Number of exit patches performed so far.
  uint64_t patchCount() const { return Patches; }

  /// Patches every still-pending exit that targets \p EntryVAddr into its
  /// chained form and returns how many were patched. install() runs this
  /// for the new fragment's entry; the asynchronous VM also calls it at
  /// request-submission time — the logical point a synchronous translator
  /// would have installed — so fragments already executing observe the
  /// exact exit-kind sequence a synchronous run produces.
  size_t patchPendingExitsTo(uint64_t EntryVAddr);

  /// Optional extra chainability query consulted by install()'s patch pass
  /// in addition to the installed-fragment index. The asynchronous VM
  /// points this at its pending-translation set, so a draining fragment's
  /// exits toward not-yet-installed (but submitted) entries come out
  /// chained exactly as a synchronous install at the same logical time
  /// would have left them. Unset (synchronous operation), install()
  /// behaves bit-identically to before.
  void setExtraChainable(std::function<bool(uint64_t)> Query) {
    ExtraChainable = std::move(Query);
  }

  // ---- Byte budget and eviction (DESIGN.md §10) ----

  /// Hard bound on totalBodyBytes(); 0 (the default) disables eviction
  /// entirely and preserves the append-only behavior bit for bit.
  void setByteBudget(uint64_t Bytes) { Budget = Bytes; }
  uint64_t byteBudget() const { return Budget; }

  /// Called once per evicted fragment, before its linkage is torn down
  /// (the VM un-marks the entry in its profiler and drops its chain view).
  /// Not called for wholesale flushes, including the degradation flush.
  void setEvictionListener(std::function<void(const Fragment &)> Listener) {
    EvictionListener = std::move(Listener);
  }

  /// Attaches the fault injector driving the evict_select / unchain sites.
  void setFaultInjector(FaultInjector *Injector) { Fault = Injector; }

  /// Rewrites every chained exit targeting \p EntryVAddr in any resident
  /// fragment back to its call-translator (pending) form and re-registers
  /// it in the pending multimap. Used when an entry leaves the cache for
  /// any reason other than a flush: eviction, or a failed asynchronous
  /// completion whose exits were optimistically patched at submission
  /// time. Returns the number of exits unchained.
  size_t unchainExitsTo(uint64_t EntryVAddr);

  /// Drops every pending exit targeting \p EntryVAddr (the owner keeps its
  /// call-translator exit, it just stops being indexed). Used when the VM
  /// blacklists an entry: its translation will never arrive, so the
  /// pending records would otherwise leak forever. Returns the number
  /// dropped.
  size_t dropPendingExitsTo(uint64_t EntryVAddr);

  /// Destroys fragments retired by eviction or flush. Their storage is
  /// kept alive until this is called so raw Fragment pointers held across
  /// an install() (the VM's execute-translated loop) never dangle; the VM
  /// calls this at dispatch-loop safepoints, where no fragment is live.
  void reclaimEvicted() { Graveyard.clear(); }
  size_t graveyardSize() const { return Graveyard.size(); }

  uint64_t evictionCount() const { return Evictions; }
  uint64_t evictedBytes() const { return EvictedBytes; }
  uint64_t unchainedExitCount() const { return UnchainedExits; }
  uint64_t droppedPendingCount() const { return DroppedPending; }
  /// Wholesale flushes forced by a failed eviction (fault injection or no
  /// selectable victim).
  uint64_t degradedFlushCount() const { return DegradedFlushes; }
  /// Largest totalBodyBytes() ever observed after an install.
  uint64_t budgetHighWater() const { return HighWater; }
  /// Warm-start imports skipped because they did not fit the budget.
  uint64_t importBudgetSkips() const { return ImportBudgetSkips; }
  /// Monotonic count of eviction events (individual evictions and
  /// degradation flushes); the VM snapshots it around installs to detect
  /// that reconciliation work happened.
  uint64_t evictionEpoch() const { return Evictions + DegradedFlushes; }

  /// Test hook: number of chaining-invariant violations — a non-pending
  /// exit whose target is neither resident nor extra-chainable, or an exit
  /// record disagreeing with its branch instruction's ToTranslator form.
  /// Zero after any sequence of installs/evictions/flushes.
  size_t chainInvariantViolations() const;

  /// Number of flushes performed so far.
  uint64_t flushCount() const { return Flushes; }

  /// Flushes the whole cache (Dynamo-style reaction to a program phase
  /// change, which the paper notes its own system lacks — "once a fragment
  /// is constructed there is no second chance"; Section 4.1). All
  /// fragments, pending exits, and footprint accounting are discarded;
  /// I-PC assignment restarts so stale fragments cannot be re-entered.
  /// Fragment storage moves to the graveyard (see reclaimEvicted()).
  void flush();

  /// Iteration over all fragments (stable order of installation).
  const std::vector<std::unique_ptr<Fragment>> &fragments() const {
    return Fragments;
  }

  /// All resident fragments in install order, for serialization (the
  /// persistence layer snapshots these into a cache file). Evicted
  /// fragments left the vector at eviction time and are never exported.
  std::vector<const Fragment *> exportAll() const;

  /// Installs previously exported fragments (warm start). Every exit is
  /// first reset to its unpatched call-translator form and each fragment
  /// then goes through install(), so I-PC assignment and exit patching
  /// re-run from scratch and the chaining invariants hold exactly as they
  /// would after a cold translation of the same fragments. Fragments whose
  /// entry address is already present are skipped, as are fragments that
  /// would not fit a configured byte budget (a warm start must not thrash
  /// the cache it is trying to warm; counted by importBudgetSkips()).
  /// Returns the number actually installed.
  size_t importAll(std::vector<Fragment> Frags);

private:
  /// Exec-weighted LRU victim: the resident fragment with the smallest
  /// (log2 exec-count bucket, LastUseTick) outside the recent-use ring, or
  /// nullptr when nothing is evictable. Deterministic for a deterministic
  /// install/lookup sequence.
  Fragment *selectVictim();
  /// Evicts \p F: notifies the listener, unchains every surviving exit
  /// targeting it, purges its own pending entries and reverse-index
  /// memberships, and moves its storage to the graveyard.
  void evictFragment(Fragment &F);
  /// Frees at least \p NeededBytes of budget headroom. Returns false when
  /// eviction could not proceed (injected fault or no victim); the caller
  /// degrades to a wholesale flush.
  bool evictToFit(uint64_t NeededBytes);
  void degradedFlush();
  void registerChainedInto(uint64_t Target, Fragment *Owner, size_t ExitIdx);
  void forgetChainMemberships(Fragment &F);
  void moveToGraveyard(Fragment &F);
  bool isChainable(uint64_t VAddr) const {
    return Index.count(VAddr) != 0 ||
           (ExtraChainable && ExtraChainable(VAddr));
  }

  std::vector<std::unique_ptr<Fragment>> Fragments;
  std::unordered_map<uint64_t, Fragment *> Index;
  /// Pending exits by target address: (fragment, exit index).
  std::unordered_multimap<uint64_t, std::pair<Fragment *, size_t>> Pending;
  /// Reverse chain index: chained (non-pending) exits by target address.
  /// Maintained by install()/patchPendingExitsTo(); consulted by eviction
  /// so unchaining never scans the whole cache.
  std::unordered_multimap<uint64_t, std::pair<Fragment *, size_t>> ChainedIn;
  std::unordered_set<uint64_t> CoveredVAddrs;
  std::function<bool(uint64_t)> ExtraChainable;
  std::function<void(const Fragment &)> EvictionListener;
  FaultInjector *Fault = nullptr;
  /// Storage of evicted/flushed fragments awaiting reclaimEvicted().
  std::vector<std::unique_ptr<Fragment>> Graveyard;
  /// Entries of the last RecentUseDepth distinct lookups, protected from
  /// eviction.
  FixedRing<uint64_t> RecentUse;
  uint64_t NextIBase = TCacheBase;
  uint64_t TotalBytes = 0;
  uint64_t Budget = 0;
  uint64_t UseTick = 0;
  uint64_t Patches = 0;
  uint64_t Flushes = 0;
  uint64_t Evictions = 0;
  uint64_t EvictedBytes = 0;
  uint64_t UnchainedExits = 0;
  uint64_t DroppedPending = 0;
  uint64_t DegradedFlushes = 0;
  uint64_t HighWater = 0;
  uint64_t ImportBudgetSkips = 0;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRANSLATIONCACHE_H
