//===- core/TranslationCache.h - Fragment registry and patching -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation cache (Section 3.1-3.2): maps V-ISA entry addresses to
/// fragments, assigns translation-cache (I-PC) addresses, and performs
/// exit patching — when a fragment for address X is installed, every
/// call-translator[-if-condition-is-met] exit targeting X in previously
/// installed fragments is rewritten into a normal chained branch.
///
/// Translation cache management (flushing) is deliberately absent: the
/// paper's working sets fit comfortably (Section 4.1) and management
/// overhead is reported as negligible in prior work.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_CORE_TRANSLATIONCACHE_H
#define ILDP_CORE_TRANSLATIONCACHE_H

#include "core/Fragment.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ildp {
namespace dbt {

/// Fragment registry with pending-exit patching.
class TranslationCache {
public:
  /// Translation-cache address space origin (synthetic I-PCs for the
  /// timing models' I-cache and predictors).
  static constexpr uint64_t TCacheBase = 0x200000000ull;

  /// Installs \p Frag: assigns its IBase, registers it under its entry
  /// address, and patches pending exits in all fragments (including the
  /// new one) that target already-translated entries. Returns the
  /// installed fragment.
  Fragment &install(Fragment Frag);

  /// Fragment for entry \p VAddr, or nullptr.
  Fragment *lookup(uint64_t VAddr);
  const Fragment *lookup(uint64_t VAddr) const;

  bool contains(uint64_t VAddr) const { return Index.count(VAddr) != 0; }

  size_t fragmentCount() const { return Fragments.size(); }

  /// Total encoded bytes of all installed fragment bodies.
  uint64_t totalBodyBytes() const { return TotalBytes; }

  /// Number of distinct source V-ISA instruction addresses covered by any
  /// fragment (static footprint denominator for Table 2).
  size_t uniqueSourceInsts() const { return CoveredVAddrs.size(); }

  /// Number of exit patches performed so far.
  uint64_t patchCount() const { return Patches; }

  /// Patches every still-pending exit that targets \p EntryVAddr into its
  /// chained form and returns how many were patched. install() runs this
  /// for the new fragment's entry; the asynchronous VM also calls it at
  /// request-submission time — the logical point a synchronous translator
  /// would have installed — so fragments already executing observe the
  /// exact exit-kind sequence a synchronous run produces.
  size_t patchPendingExitsTo(uint64_t EntryVAddr);

  /// Optional extra chainability query consulted by install()'s patch pass
  /// in addition to the installed-fragment index. The asynchronous VM
  /// points this at its pending-translation set, so a draining fragment's
  /// exits toward not-yet-installed (but submitted) entries come out
  /// chained exactly as a synchronous install at the same logical time
  /// would have left them. Unset (synchronous operation), install()
  /// behaves bit-identically to before.
  void setExtraChainable(std::function<bool(uint64_t)> Query) {
    ExtraChainable = std::move(Query);
  }

  /// Number of flushes performed so far.
  uint64_t flushCount() const { return Flushes; }

  /// Flushes the whole cache (Dynamo-style reaction to a program phase
  /// change, which the paper notes its own system lacks — "once a fragment
  /// is constructed there is no second chance"; Section 4.1). All
  /// fragments, pending exits, and footprint accounting are discarded;
  /// I-PC assignment restarts so stale fragments cannot be re-entered.
  void flush();

  /// Iteration over all fragments (stable order of installation).
  const std::vector<std::unique_ptr<Fragment>> &fragments() const {
    return Fragments;
  }

  /// All fragments in install order, for serialization (the persistence
  /// layer snapshots these into a cache file).
  std::vector<const Fragment *> exportAll() const;

  /// Installs previously exported fragments (warm start). Every exit is
  /// first reset to its unpatched call-translator form and each fragment
  /// then goes through install(), so I-PC assignment and exit patching
  /// re-run from scratch and the chaining invariants hold exactly as they
  /// would after a cold translation of the same fragments. Fragments whose
  /// entry address is already present are skipped. Returns the number
  /// actually installed.
  size_t importAll(std::vector<Fragment> Frags);

private:
  std::vector<std::unique_ptr<Fragment>> Fragments;
  std::unordered_map<uint64_t, Fragment *> Index;
  /// Pending exits by target address: (fragment, exit index).
  std::unordered_multimap<uint64_t, std::pair<Fragment *, size_t>> Pending;
  std::unordered_set<uint64_t> CoveredVAddrs;
  std::function<bool(uint64_t)> ExtraChainable;
  uint64_t NextIBase = TCacheBase;
  uint64_t TotalBytes = 0;
  uint64_t Patches = 0;
  uint64_t Flushes = 0;
};

} // namespace dbt
} // namespace ildp

#endif // ILDP_CORE_TRANSLATIONCACHE_H
