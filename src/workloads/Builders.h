//===- workloads/Builders.h - Shared workload-building helpers ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers and layout conventions shared by the workload builders.
/// All addresses stay below 2^31 so LDAH/LDA pairs can form any pointer.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_WORKLOADS_BUILDERS_H
#define ILDP_WORKLOADS_BUILDERS_H

#include "alpha/Assembler.h"
#include "mem/GuestMemory.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

namespace ildp {
namespace workloads {

/// Guest memory layout shared by all workloads.
constexpr uint64_t CodeBase = 0x10000000;
constexpr uint64_t DataBase = 0x20000000;
constexpr uint64_t Data2Base = 0x28000000;
constexpr uint64_t StackTop = 0x30010000; ///< Stack grows down from here.

// Register conventions (beyond the standard Alpha software ones):
//   r9  (s0): running checksum accumulator
//   r30 (sp), r26 (ra), r27 (pv) as usual; v0 = final checksum.

/// Fills [Base, Base+Bytes) with deterministic pseudo-random bytes.
void fillRandomBytes(GuestMemory &Mem, uint64_t Base, uint64_t Bytes,
                     uint64_t Seed);

/// Fills a quadword table with deterministic pseudo-random values.
void fillRandomQwords(GuestMemory &Mem, uint64_t Base, uint64_t Count,
                      uint64_t Seed);

/// Emits the standard epilogue: v0 <- s0, HALT.
void emitEpilogue(alpha::Assembler &Asm);

// Per-workload builders. Each maps the program into \p Mem and returns its
// image descriptor.
WorkloadImage buildGzip(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildBzip2(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildCrafty(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildEon(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildGap(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildGcc(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildMcf(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildParser(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildPerlbmk(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildTwolf(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildVortex(GuestMemory &Mem, unsigned Scale);
WorkloadImage buildVpr(GuestMemory &Mem, unsigned Scale);

} // namespace workloads
} // namespace ildp

#endif // ILDP_WORKLOADS_BUILDERS_H
