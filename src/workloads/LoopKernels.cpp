//===- workloads/LoopKernels.cpp - Loop-dominated SPEC stand-ins ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop-dominated workloads: gzip (the paper's Figure 2 kernel plus a
/// quadword match scanner), bzip2 (move-to-front coding), crafty (bitboard
/// scans), mcf (pointer chasing), twolf (random swaps), and vpr (grid
/// relaxation sweeps).
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include <cassert>

using namespace ildp;
using namespace ildp::workloads;
using namespace ildp::alpha;
using Op = alpha::Opcode;

// ---------------------------------------------------------------------------
// 164.gzip — the paper's own example loop (Figure 2) over a byte buffer,
// plus a longest-match style quadword comparison scan (cmpbge/cttz).
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildGzip(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t BufBytes = 16 * 1024;
  constexpr uint64_t TableQwords = 256;
  fillRandomBytes(Mem, DataBase, BufBytes, 0xA11CE);
  fillRandomQwords(Mem, Data2Base, TableQwords, 0xB0B);
  Mem.mapRegion(StackTop - 0x10000, 0x10000);

  Assembler Asm(CodeBase);
  const unsigned InnerLen = 2048;
  const unsigned Outer = 12 * Scale;
  const unsigned Pairs = 384 * Scale;

  // r0 = hash table, r1 = hash state, r9 = checksum, r18 = outer counter,
  // r20 = buffer base, r7 = offset mask, r8 = hash multiplier.
  Asm.loadImm(0, int64_t(Data2Base));
  Asm.loadImm(20, int64_t(DataBase));
  Asm.loadImm(7, 0x3FF8);
  Asm.loadImm(8, int64_t(0x9E3779B1));
  Asm.loadImm(1, 0x1234);
  Asm.movi(0, 9);
  Asm.loadImm(18, Outer);

  // ---- Phase 1: the Figure 2 CRC/hash loop. ----
  auto OuterLoop = Asm.createLabel("outer");
  auto L1 = Asm.createLabel("L1");
  Asm.bind(OuterLoop);
  Asm.mov(20, 16);             // r16 = buffer
  Asm.loadImm(17, InnerLen);   // r17 = count
  Asm.bind(L1);
  // The Figure 2 body, unrolled by four (as -fast compilation would).
  for (int U = 0; U != 4; ++U) {
    Asm.ldbu(3, 0, 16);                // ldbu r3, 0[r16]
    Asm.operatei(Op::SUBL, 17, 1, 17); // subl r17, 1, r17
    Asm.lda(16, 1, 16);                // lda r16, 1[r16]
    Asm.operate(Op::XOR, 1, 3, 3);     // xor r1, r3, r3
    Asm.operatei(Op::SRL, 1, 8, 1);    // srl r1, 8, r1
    Asm.operatei(Op::AND, 3, 0xFF, 3); // and r3, 0xff, r3
    Asm.operate(Op::S8ADDQ, 3, 0, 3);  // s8addq r3, r0, r3
    Asm.ldq(3, 0, 3);                  // ldq r3, 0[r3]
    Asm.operate(Op::XOR, 3, 1, 1);     // xor r3, r1, r1
  }
  Asm.condBr(Op::BNE, 17, L1);         // bne r17, L1
  Asm.operate(Op::ADDQ, 9, 1, 9);
  Asm.operatei(Op::SUBL, 18, 1, 18);
  Asm.condBr(Op::BNE, 18, OuterLoop);

  // ---- Phase 2: quadword match scanning. ----
  Asm.loadImm(18, Pairs);
  auto PairLoop = Asm.createLabel("pair");
  auto MatchLoop = Asm.createLabel("match");
  auto Mismatch = Asm.createLabel("mismatch");
  auto MatchDone = Asm.createLabel("match_done");
  Asm.bind(PairLoop);
  Asm.operate(Op::AND, 1, 7, 4);      // off1
  Asm.operatei(Op::SRL, 1, 16, 5);
  Asm.operate(Op::AND, 5, 7, 5);      // off2
  Asm.operate(Op::ADDQ, 4, 20, 4);
  Asm.operate(Op::ADDQ, 5, 20, 5);
  Asm.loadImm(6, 24);                 // max quadwords to scan
  Asm.bind(MatchLoop);
  Asm.ldq(2, 0, 4);
  Asm.ldq(3, 0, 5);
  Asm.operate(Op::XOR, 2, 3, 2);
  Asm.condBr(Op::BNE, 2, Mismatch);
  Asm.lda(4, 8, 4);
  Asm.lda(5, 8, 5);
  Asm.operatei(Op::SUBQ, 6, 1, 6);
  Asm.condBr(Op::BNE, 6, MatchLoop);
  Asm.br(MatchDone);
  Asm.bind(Mismatch);
  // First differing byte via cmpbge(0, diff) + cttz of the inverted mask.
  Asm.operate(Op::CMPBGE, RegZero, 2, 3); // mask of zero bytes
  Asm.operate(Op::ORNOT, RegZero, 3, 3);  // invert
  Asm.operatei(Op::AND, 3, 0xFF, 3);
  Asm.operate(Op::CTTZ, RegZero, 3, 3);   // first nonzero-byte index
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.bind(MatchDone);
  Asm.operate(Op::MULQ, 1, 8, 1); // evolve the position hash
  Asm.lda(1, 0x55, 1);
  Asm.operatei(Op::SUBL, 18, 1, 18);
  Asm.condBr(Op::BNE, 18, PairLoop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "gzip";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Outer) * InnerLen * 10 + uint64_t(Pairs) * 40;
  return Image;
}

// ---------------------------------------------------------------------------
// 256.bzip2 — move-to-front coding with bucket counting: byte loads, short
// data-dependent scan loops, and store-heavy table shifting.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildBzip2(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t InputBytes = 6 * 1024;
  fillRandomBytes(Mem, DataBase, InputBytes, 0xBEEF);
  // Restrict the alphabet to 16 symbols (keeps MTF scans short).
  for (uint64_t I = 0; I != InputBytes; ++I) {
    MemAccessResult R = Mem.load(DataBase + I, 1);
    Mem.poke8(DataBase + I, uint8_t(R.Value & 0x0F));
  }
  // MTF table (16 bytes) + count buckets (16 longwords).
  Mem.mapRegion(Data2Base, 4096);
  for (unsigned I = 0; I != 16; ++I)
    Mem.poke8(Data2Base + I, uint8_t(I));

  Assembler Asm(CodeBase);
  const unsigned Reps = 2 * Scale;

  // r0 = MTF table, r1 = counts, r16 = input, r17 = remaining, r9 = sum.
  Asm.loadImm(0, int64_t(Data2Base));
  Asm.loadImm(1, int64_t(Data2Base + 256));
  Asm.movi(0, 9);
  Asm.loadImm(19, Reps);

  auto RepLoop = Asm.createLabel("rep");
  auto ByteLoop = Asm.createLabel("byte");
  auto Scan = Asm.createLabel("scan");
  auto ShiftLoop = Asm.createLabel("shift");
  auto ShiftDone = Asm.createLabel("shift_done");
  Asm.bind(RepLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, InputBytes);
  Asm.bind(ByteLoop);
  Asm.ldbu(2, 0, 16); // c = *p++
  Asm.lda(16, 1, 16);
  // counts[c]++.
  Asm.operate(Op::S4ADDQ, 2, 1, 3);
  Asm.ldl(4, 0, 3);
  Asm.operatei(Op::ADDL, 4, 1, 4);
  Asm.stl(4, 0, 3);
  // Scan the MTF table for c.
  Asm.mov(0, 5);  // scan pointer
  Asm.movi(0, 6); // index + 1
  Asm.bind(Scan);
  Asm.ldbu(7, 0, 5);
  Asm.lda(5, 1, 5);
  Asm.operatei(Op::ADDL, 6, 1, 6);
  Asm.operate(Op::CMPEQ, 7, 2, 8);
  Asm.condBr(Op::BEQ, 8, Scan);
  Asm.operatei(Op::SUBL, 6, 1, 6); // j
  Asm.lda(5, -1, 5);               // &table[j]
  Asm.operate(Op::ADDQ, 9, 6, 9);  // checksum += j
  // Shift table[0..j-1] up by one.
  Asm.mov(6, 4);
  Asm.condBr(Op::BEQ, 4, ShiftDone);
  Asm.bind(ShiftLoop);
  Asm.ldbu(7, -1, 5);
  Asm.stb(7, 0, 5);
  Asm.lda(5, -1, 5);
  Asm.operatei(Op::SUBL, 4, 1, 4);
  Asm.condBr(Op::BNE, 4, ShiftLoop);
  Asm.bind(ShiftDone);
  Asm.stb(2, 0, 0); // table[0] = c
  // Rank entropy estimate (in-place local chain redefining kernel temps).
  Asm.operatei(Op::SLL, 6, 2, 7);
  Asm.operate(Op::XOR, 7, 2, 7);
  Asm.operatei(Op::ADDL, 7, 3, 8);
  Asm.operate(Op::ADDQ, 9, 8, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, ByteLoop);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, RepLoop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "bzip2";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Reps) * InputBytes * 45;
  return Image;
}

// ---------------------------------------------------------------------------
// 186.crafty — bitboard processing: population counts, lowest-set-bit
// extraction, byte-manipulation mixing, attack-table probes.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildCrafty(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t Boards = 2048;
  constexpr uint64_t AttackQwords = 64;
  fillRandomQwords(Mem, DataBase, Boards, 0xC4AF7);
  fillRandomQwords(Mem, Data2Base, AttackQwords, 0x7AB1E);

  Assembler Asm(CodeBase);
  const unsigned Reps = 2 * Scale;

  // r0 = attack table, r16 = boards, r17 = count, r9 = checksum.
  Asm.loadImm(0, int64_t(Data2Base));
  Asm.movi(0, 9);
  Asm.loadImm(19, Reps);

  auto RepLoop = Asm.createLabel("rep");
  auto BoardLoop = Asm.createLabel("board");
  auto BitLoop = Asm.createLabel("bit");
  auto BitsDone = Asm.createLabel("bits_done");
  Asm.bind(RepLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, Boards);
  Asm.bind(BoardLoop);
  Asm.ldq(1, 0, 16);
  Asm.lda(16, 8, 16);
  Asm.condBr(Op::BEQ, 1, BitsDone);
  Asm.bind(BitLoop);
  Asm.operate(Op::CTTZ, RegZero, 1, 2); // square = lowest set bit
  Asm.operatei(Op::SUBQ, 1, 1, 3);
  Asm.operate(Op::AND, 1, 3, 1); // clear lowest bit
  Asm.operatei(Op::AND, 2, 63, 2);
  Asm.operate(Op::S8ADDQ, 2, 0, 4);
  Asm.ldq(5, 0, 4); // attack mask
  Asm.operate(Op::CTPOP, RegZero, 5, 6);
  Asm.operate(Op::ADDQ, 9, 6, 9);
  // Byte-manipulation mixing (extbl/insbl/mskbl/zapnot).
  Asm.operate(Op::EXTBL, 5, 2, 7);
  Asm.operate(Op::INSBL, 7, 2, 7);
  Asm.operate(Op::MSKBL, 5, 2, 5);
  Asm.operate(Op::BIS, 5, 7, 5);
  Asm.operatei(Op::ZAPNOT, 5, 0x55, 5);
  Asm.operate(Op::XOR, 9, 5, 9);
  // Mobility weighting (in-place local chain redefining kernel temps).
  Asm.operatei(Op::SRL, 6, 2, 4);
  Asm.operate(Op::ADDQ, 4, 6, 4);
  Asm.operatei(Op::SLL, 4, 1, 5);
  Asm.operatei(Op::ADDQ, 5, 3, 6);
  Asm.operate(Op::ADDQ, 9, 6, 9);
  Asm.condBr(Op::BNE, 1, BitLoop);
  Asm.bind(BitsDone);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, BoardLoop);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, RepLoop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "crafty";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Reps) * Boards * 32 * 14;
  return Image;
}

// ---------------------------------------------------------------------------
// 181.mcf — network-simplex flavored pointer chasing: chains of dependent
// loads over a large node pool, with conditional-move successor selection.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildMcf(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t Nodes = 16384;
  constexpr unsigned NodeBytes = 32; // {next, value, alt, pad}
  Mem.mapRegion(DataBase, Nodes * NodeBytes);
  Rng Rand(0x3C0FFEE);
  for (uint64_t I = 0; I != Nodes; ++I) {
    uint64_t Addr = DataBase + I * NodeBytes;
    uint64_t Next = DataBase + Rand.nextBelow(Nodes) * NodeBytes;
    uint64_t Alt = DataBase + Rand.nextBelow(Nodes) * NodeBytes;
    Mem.poke64(Addr + 0, Next);
    Mem.poke64(Addr + 8, Rand.next());
    Mem.poke64(Addr + 16, Alt);
  }

  Assembler Asm(CodeBase);
  const unsigned Steps = 36000 * Scale;

  // r16 = current node, r17 = steps, r9 = checksum.
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, Steps);
  Asm.movi(0, 9);

  auto Loop = Asm.createLabel("walk");
  Asm.bind(Loop);
  for (int U = 0; U != 4; ++U) { // unrolled node visits
    Asm.ldq(1, 8, 16);  // value
    Asm.ldq(2, 0, 16);  // next
    Asm.ldq(3, 16, 16); // alt
    Asm.operate(Op::ADDQ, 9, 1, 9);
    // Cost computation: an in-place local chain (temps redefined within
    // the block stay Local, like compiler-reused temporaries).
    Asm.operatei(Op::SRL, 1, 7, 4);
    Asm.operate(Op::XOR, 4, 1, 4);
    Asm.operatei(Op::SLL, 4, 1, 4);
    Asm.operatei(Op::SUBQ, 4, 3, 4);
    Asm.operate(Op::ADDQ, 9, 4, 9);
    Asm.operate(Op::CMOVLBS, 1, 2, 3); // r3 = (value & 1) ? next : alt
    Asm.mov(3, 16);
  }
  Asm.operatei(Op::SUBL, 17, 4, 17);
  Asm.condBr(Op::BNE, 17, Loop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "mcf";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Steps) * 8;
  return Image;
}

// ---------------------------------------------------------------------------
// 300.twolf — simulated-annealing style random swaps: LCG index generation,
// irregular loads, compare-and-swap with data-dependent branches.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildTwolf(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t Cells = 8192;
  fillRandomQwords(Mem, DataBase, Cells, 0x2D01F);

  Assembler Asm(CodeBase);
  const unsigned Swaps = 16000 * Scale;

  // r0 = array, r1 = LCG state, r7 = index mask, r8 = LCG multiplier.
  Asm.loadImm(0, int64_t(DataBase));
  Asm.loadImm(1, 0x5EED);
  Asm.loadImm(7, int64_t((Cells - 1) * 8) & ~7ll);
  Asm.loadImm(8, int64_t(6364136223846793005ull));
  Asm.movi(0, 9);
  Asm.loadImm(17, Swaps);

  auto Loop = Asm.createLabel("swap");
  Asm.bind(Loop);
  for (int U = 0; U != 4; ++U) { // unrolled swap attempts
    Asm.operate(Op::MULQ, 1, 8, 1);
    Asm.lda(1, 12345, 1);
    Asm.operatei(Op::SRL, 1, 20, 2);
    Asm.operate(Op::AND, 2, 7, 2);
    Asm.operatei(Op::SRL, 1, 40, 3);
    Asm.operate(Op::AND, 3, 7, 3);
    Asm.operate(Op::ADDQ, 0, 2, 2);
    Asm.operate(Op::ADDQ, 0, 3, 3);
    Asm.ldq(4, 0, 2);
    Asm.ldq(5, 0, 3);
    // Branch-free conditional swap (min/max via cmov, as compiled code
    // would): keeps the unrolled body a single path.
    Asm.operate(Op::CMPULT, 4, 5, 6);
    Asm.mov(4, 10);
    Asm.operate(Op::CMOVEQ, 6, 5, 10); // r10 = min-ordered first element
    Asm.mov(5, 11);
    Asm.operate(Op::CMOVEQ, 6, 4, 11); // r11 = the other
    Asm.stq(10, 0, 2);
    Asm.stq(11, 0, 3);
    Asm.operate(Op::ADDQ, 9, 6, 9);
    Asm.operate(Op::XOR, 9, 4, 9);
    // Wirelength delta estimate (in-place local chain; also makes the
    // earlier r2/r3 definitions locals by redefining them).
    Asm.operatei(Op::SRL, 4, 9, 2);
    Asm.operate(Op::XOR, 2, 5, 2);
    Asm.operatei(Op::SLL, 2, 2, 3);
    Asm.operatei(Op::ADDQ, 3, 7, 6);
    Asm.operate(Op::ADDQ, 9, 6, 9);
  }
  // A rare data-dependent event (annealing acceptance): mispredict-rich.
  auto NoBoost = Asm.createLabel("noboost");
  Asm.operatei(Op::AND, 1, 0x1F, 10);
  Asm.condBr(Op::BNE, 10, NoBoost);
  Asm.operatei(Op::SLL, 9, 1, 9);
  Asm.bind(NoBoost);
  Asm.operatei(Op::SUBL, 17, 4, 17);
  Asm.condBr(Op::BNE, 17, Loop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "twolf";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Swaps) * 18;
  return Image;
}

// ---------------------------------------------------------------------------
// 175.vpr — routing-cost grid relaxation: regular nested loops over a 2D
// longword grid with min-update conditional moves.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildVpr(GuestMemory &Mem, unsigned Scale) {
  constexpr unsigned W = 64;
  constexpr unsigned H = 64;
  Mem.mapRegion(DataBase, uint64_t(W) * H * 4);
  Rng Rand(0x9417);
  for (unsigned I = 0; I != W * H; ++I)
    Mem.poke32(DataBase + uint64_t(I) * 4, uint32_t(Rand.nextBelow(100000)));

  Assembler Asm(CodeBase);
  const unsigned Sweeps = 5 * Scale;

  // r0 = grid, r18 = sweep counter, r9 = checksum.
  Asm.loadImm(0, int64_t(DataBase));
  Asm.movi(0, 9);
  Asm.loadImm(18, Sweeps);

  auto SweepLoop = Asm.createLabel("sweep");
  auto RowLoop = Asm.createLabel("row");
  auto ColLoop = Asm.createLabel("col");
  Asm.bind(SweepLoop);
  Asm.loadImm(20, H - 1); // remaining rows
  // r22 = &grid[y][1], starting at y = 1.
  Asm.lda(22, W * 4 + 4, 0);
  Asm.bind(RowLoop);
  Asm.loadImm(21, 60); // 60 columns, processed four per unrolled body
  Asm.bind(ColLoop);
  for (int U = 0; U != 4; ++U) { // unrolled relaxation steps
    Asm.ldl(1, 0, 22);               // c
    Asm.ldl(2, -4, 22);              // left
    Asm.ldl(3, -int32_t(W) * 4, 22); // up
    Asm.operate(Op::ADDL, 2, 3, 4);
    Asm.operatei(Op::ADDL, 4, 1, 4);
    Asm.operatei(Op::SRL, 4, 1, 4); // (left+up+1)/2-ish relaxation
    Asm.operate(Op::CMPLT, 4, 1, 5);
    Asm.operate(Op::CMOVNE, 5, 4, 1); // c = min(c, relaxed)
    Asm.stl(1, 0, 22);
    // Congestion estimate: in-place local chain reusing the kernel temps,
    // which also turns the earlier r4/r5 definitions into locals.
    Asm.operatei(Op::SRL, 1, 3, 4);
    Asm.operate(Op::XOR, 4, 1, 4);
    Asm.operatei(Op::ADDL, 4, 5, 4);
    Asm.operatei(Op::ADDL, 4, 2, 5);
    Asm.operate(Op::ADDQ, 9, 5, 9);
    Asm.lda(22, 4, 22);
  }
  Asm.operatei(Op::SUBL, 21, 4, 21);
  Asm.condBr(Op::BNE, 21, ColLoop);
  Asm.lda(22, 16, 22); // skip columns 61..63 and column 0 of the next row
  Asm.operatei(Op::SUBL, 20, 1, 20);
  Asm.condBr(Op::BNE, 20, RowLoop);
  Asm.operatei(Op::SUBL, 18, 1, 18);
  Asm.condBr(Op::BNE, 18, SweepLoop);

  emitEpilogue(Asm);
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);

  WorkloadImage Image;
  Image.Name = "vpr";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Sweeps) * 60 * (H - 1) * 20;
  return Image;
}
