//===- workloads/Common.cpp - Shared workload-building helpers ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include <cassert>

using namespace ildp;
using namespace ildp::workloads;
using namespace ildp::alpha;

void workloads::fillRandomBytes(GuestMemory &Mem, uint64_t Base,
                                uint64_t Bytes, uint64_t Seed) {
  Rng Rand(Seed);
  Mem.mapRegion(Base, Bytes);
  for (uint64_t I = 0; I < Bytes; I += 8) {
    uint64_t Value = Rand.next();
    for (unsigned B = 0; B != 8 && I + B < Bytes; ++B)
      Mem.poke8(Base + I + B, uint8_t(Value >> (8 * B)));
  }
}

void workloads::fillRandomQwords(GuestMemory &Mem, uint64_t Base,
                                 uint64_t Count, uint64_t Seed) {
  Rng Rand(Seed);
  Mem.mapRegion(Base, Count * 8);
  for (uint64_t I = 0; I != Count; ++I)
    Mem.poke64(Base + I * 8, Rand.next());
}

void workloads::emitEpilogue(Assembler &Asm) {
  Asm.mov(9, RegV0); // v0 <- s0 (checksum).
  Asm.halt();
}

const std::vector<std::string> &workloads::workloadNames() {
  static const std::vector<std::string> Names = {
      "bzip2", "crafty", "eon",     "gap",   "gcc",    "gzip",
      "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
  return Names;
}

WorkloadImage workloads::buildWorkload(const std::string &Name,
                                       GuestMemory &Mem, unsigned Scale) {
  assert(Scale >= 1 && "Scale must be positive");
  if (Name == "gzip")
    return buildGzip(Mem, Scale);
  if (Name == "bzip2")
    return buildBzip2(Mem, Scale);
  if (Name == "crafty")
    return buildCrafty(Mem, Scale);
  if (Name == "eon")
    return buildEon(Mem, Scale);
  if (Name == "gap")
    return buildGap(Mem, Scale);
  if (Name == "gcc")
    return buildGcc(Mem, Scale);
  if (Name == "mcf")
    return buildMcf(Mem, Scale);
  if (Name == "parser")
    return buildParser(Mem, Scale);
  if (Name == "perlbmk")
    return buildPerlbmk(Mem, Scale);
  if (Name == "twolf")
    return buildTwolf(Mem, Scale);
  if (Name == "vortex")
    return buildVortex(Mem, Scale);
  if (Name == "vpr")
    return buildVpr(Mem, Scale);
  assert(false && "Unknown workload name");
  return {};
}
