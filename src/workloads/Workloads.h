//===- workloads/Workloads.h - Synthetic SPEC CPU2000 INT stand-ins -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Twelve synthetic Alpha guest programs, one per SPEC CPU2000 integer
/// benchmark the paper evaluates (Section 4.1). The paper's DEC-cc-compiled
/// Alpha binaries are unobtainable; each stand-in is hand-built with the
/// Alpha assembler to match its namesake's dominant kernel shape — the
/// instruction mix, control-flow profile (loop vs call vs indirect-dispatch
/// dominated), and memory behaviour that drive every effect the paper
/// measures (see DESIGN.md, substitutions):
///
///   gzip    — the paper's own Figure 2 CRC/hash inner loop + quadword
///             match scanning (cmpbge/cttz),
///   bzip2   — move-to-front coding + bucket counting (store heavy),
///   crafty  — bitboard scans (64-bit logicals, ctpop/cttz, table probes),
///   eon     — fixed-point shading with virtual-dispatch-style indirect
///             calls through an object table,
///   gap     — bytecode interpreter, jump-table dispatch via JMP,
///   gcc     — token-stream state machine, branchy, linked-list walks,
///   mcf     — network-simplex-style pointer chasing (dependent loads),
///   parser  — recursive-descent parsing (deep BSR/RET recursion),
///   perlbmk — opcode dispatch through an indirect-call handler table
///             (worst-case chaining expansion, as in the paper),
///   twolf   — pseudo-random placement swaps (irregular loads, cmov),
///   vortex  — record store/lookup with BSR-dominated call structure,
///   vpr     — routing-grid sweeps (nested loops, min-update cmovs).
///
/// Every workload ends with CALL_PAL HALT and leaves a data-dependent
/// checksum in v0; the correctness suite cross-validates interpreter vs
/// translated execution on final architected state.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_WORKLOADS_WORKLOADS_H
#define ILDP_WORKLOADS_WORKLOADS_H

#include "mem/GuestMemory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ildp {
namespace workloads {

/// A built guest program.
struct WorkloadImage {
  std::string Name;
  uint64_t EntryPc = 0;
  /// Rough dynamic V-ISA instruction count at Scale = 1 (for budgeting).
  uint64_t ApproxInsts = 0;
};

/// Names of all twelve workloads, in the paper's Table 2 order.
const std::vector<std::string> &workloadNames();

/// Builds \p Name into \p Mem. \p Scale multiplies the main iteration
/// counts (1 = the default used by the benches). Aborts on unknown names;
/// check workloadNames() first.
WorkloadImage buildWorkload(const std::string &Name, GuestMemory &Mem,
                            unsigned Scale = 1);

} // namespace workloads
} // namespace ildp

#endif // ILDP_WORKLOADS_WORKLOADS_H
