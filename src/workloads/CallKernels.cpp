//===- workloads/CallKernels.cpp - Call-dominated SPEC stand-ins ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-dominated workloads: parser (recursive-descent expression
/// parsing — deep BSR/RET recursion stressing return prediction) and
/// vortex (record store/lookup with BSR-dominated procedure structure, the
/// paper's lowest chaining expansion).
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include <cassert>
#include <vector>

using namespace ildp;
using namespace ildp::workloads;
using namespace ildp::alpha;
using Op = alpha::Opcode;

namespace {

void commit(GuestMemory &Mem, Assembler &Asm, std::vector<uint32_t> Words) {
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
}

// Token values for the parser grammar.
enum ParserTok : uint8_t {
  TokPlus = 10,
  TokTimes = 11,
  TokLParen = 12,
  TokRParen = 13,
  TokEndExpr = 14,
  TokEndInput = 15,
};

void genFactor(std::vector<uint8_t> &Out, Rng &Rand, int Depth);

void genTerm(std::vector<uint8_t> &Out, Rng &Rand, int Depth) {
  genFactor(Out, Rand, Depth);
  while (Rand.nextChance(3, 10)) {
    Out.push_back(TokTimes);
    genFactor(Out, Rand, Depth);
  }
}

void genExpr(std::vector<uint8_t> &Out, Rng &Rand, int Depth) {
  genTerm(Out, Rand, Depth);
  while (Rand.nextChance(4, 10)) {
    Out.push_back(TokPlus);
    genTerm(Out, Rand, Depth);
  }
}

void genFactor(std::vector<uint8_t> &Out, Rng &Rand, int Depth) {
  if (Depth < 5 && Rand.nextChance(1, 4)) {
    Out.push_back(TokLParen);
    genExpr(Out, Rand, Depth + 1);
    Out.push_back(TokRParen);
  } else {
    Out.push_back(uint8_t(Rand.nextBelow(10)));
  }
}

} // namespace

// ---------------------------------------------------------------------------
// 197.parser — recursive-descent parsing of arithmetic expressions:
// genuine recursion through BSR/RET with stack frames.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildParser(GuestMemory &Mem, unsigned Scale) {
  // Generate a valid token stream of expressions host-side.
  std::vector<uint8_t> Tokens;
  Rng Rand(0x9A25E2);
  const unsigned Exprs = 2200 * Scale;
  for (unsigned I = 0; I != Exprs; ++I) {
    genExpr(Tokens, Rand, 0);
    Tokens.push_back(TokEndExpr);
  }
  Tokens.push_back(TokEndInput);
  Mem.mapRegion(DataBase, Tokens.size() + 64);
  Mem.writeBlob(DataBase, Tokens.data(), Tokens.size());
  Mem.mapRegion(StackTop - 0x20000, 0x20000);

  Assembler Asm(CodeBase);
  auto MainLoop = Asm.createLabel("main_loop");
  auto Done = Asm.createLabel("done");
  auto ParseExpr = Asm.createLabel("parse_expr");
  auto ExprLoop = Asm.createLabel("expr_loop");
  auto ExprDone = Asm.createLabel("expr_done");
  auto ParseTerm = Asm.createLabel("parse_term");
  auto TermLoop = Asm.createLabel("term_loop");
  auto TermDone = Asm.createLabel("term_done");
  auto ParseFactor = Asm.createLabel("parse_factor");
  auto FactorParen = Asm.createLabel("factor_paren");

  // r16 = token cursor, r9 = checksum, r7 = value mask, r1 = result.
  Asm.loadImm(RegSP, int64_t(StackTop - 64));
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(7, 0xFFFF);
  Asm.movi(0, 9);

  Asm.bind(MainLoop);
  Asm.ldbu(1, 0, 16);
  Asm.operatei(Op::CMPEQ, 1, TokEndInput, 2);
  Asm.condBr(Op::BNE, 2, Done);
  Asm.bsr(RegRA, ParseExpr);
  Asm.operate(Op::ADDQ, 9, 1, 9);
  Asm.lda(16, 1, 16); // consume the end-of-expression token
  Asm.br(MainLoop);
  Asm.bind(Done);
  emitEpilogue(Asm);

  // parse_expr: term (('+') term)*; result in r1, r10 caller-saved here.
  Asm.bind(ParseExpr);
  Asm.lda(RegSP, -16, RegSP);
  Asm.stq(RegRA, 0, RegSP);
  Asm.stq(10, 8, RegSP);
  Asm.bsr(RegRA, ParseTerm);
  Asm.mov(1, 10);
  Asm.bind(ExprLoop);
  Asm.ldbu(2, 0, 16);
  Asm.operatei(Op::CMPEQ, 2, TokPlus, 3);
  Asm.condBr(Op::BEQ, 3, ExprDone);
  Asm.lda(16, 1, 16);
  Asm.bsr(RegRA, ParseTerm);
  Asm.operate(Op::ADDQ, 10, 1, 10);
  Asm.br(ExprLoop);
  Asm.bind(ExprDone);
  Asm.mov(10, 1);
  Asm.ldq(RegRA, 0, RegSP);
  Asm.ldq(10, 8, RegSP);
  Asm.lda(RegSP, 16, RegSP);
  Asm.ret(RegRA);

  // parse_term: factor (('*') factor)*.
  Asm.bind(ParseTerm);
  Asm.lda(RegSP, -16, RegSP);
  Asm.stq(RegRA, 0, RegSP);
  Asm.stq(11, 8, RegSP);
  Asm.bsr(RegRA, ParseFactor);
  Asm.mov(1, 11);
  Asm.bind(TermLoop);
  Asm.ldbu(2, 0, 16);
  Asm.operatei(Op::CMPEQ, 2, TokTimes, 3);
  Asm.condBr(Op::BEQ, 3, TermDone);
  Asm.lda(16, 1, 16);
  Asm.bsr(RegRA, ParseFactor);
  Asm.operate(Op::MULQ, 11, 1, 11);
  Asm.operate(Op::AND, 11, 7, 11); // keep values bounded
  Asm.br(TermLoop);
  Asm.bind(TermDone);
  Asm.mov(11, 1);
  Asm.ldq(RegRA, 0, RegSP);
  Asm.ldq(11, 8, RegSP);
  Asm.lda(RegSP, 16, RegSP);
  Asm.ret(RegRA);

  // parse_factor: digit | '(' expr ')'.
  Asm.bind(ParseFactor);
  Asm.ldbu(2, 0, 16);
  Asm.lda(16, 1, 16);
  Asm.operatei(Op::CMPEQ, 2, TokLParen, 3);
  Asm.condBr(Op::BNE, 3, FactorParen);
  Asm.mov(2, 1); // digit value
  Asm.operatei(Op::SLL, 2, 2, 3);
  Asm.operate(Op::XOR, 3, 2, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9); // lexical checksum
  Asm.ret(RegRA);
  Asm.bind(FactorParen);
  Asm.lda(RegSP, -16, RegSP);
  Asm.stq(RegRA, 0, RegSP);
  Asm.bsr(RegRA, ParseExpr); // recursion
  Asm.ldq(RegRA, 0, RegSP);
  Asm.lda(RegSP, 16, RegSP);
  Asm.lda(16, 1, 16); // consume ')'
  Asm.ret(RegRA);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));

  WorkloadImage Image;
  Image.Name = "parser";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Tokens.size()) * 16;
  return Image;
}

// ---------------------------------------------------------------------------
// 255.vortex — an object-store: hash-bucket record insertion and chained
// lookup, structured as BSR-called procedures (direct calls dominate).
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildVortex(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t BucketBase = Data2Base;          // 1024 head pointers
  constexpr uint64_t AllocBase = Data2Base + 0x4000;  // node arena
  const unsigned Inserts = 9000 * Scale;
  Mem.mapRegion(BucketBase, 0x4000);
  Mem.mapRegion(AllocBase, uint64_t(Inserts) * 24 + 4096);
  Mem.mapRegion(StackTop - 0x10000, 0x10000);

  Assembler Asm(CodeBase);
  auto MainLoop = Asm.createLabel("main_loop");
  auto Insert = Asm.createLabel("insert");
  auto Lookup = Asm.createLabel("lookup");
  auto LookLoop = Asm.createLabel("look_loop");
  auto LookMiss = Asm.createLabel("look_miss");
  auto LookHit = Asm.createLabel("look_hit");
  auto Bucket = Asm.createLabel("bucket");

  // r0 = buckets, r12 = bump allocator, r8 = key LCG, r21 = hash
  // multiplier, r13 = delayed key for lookups, r17 = iterations.
  Asm.loadImm(RegSP, int64_t(StackTop - 64));
  Asm.loadImm(0, int64_t(BucketBase));
  Asm.loadImm(12, int64_t(AllocBase));
  Asm.loadImm(8, 0xF00D);
  Asm.loadImm(21, int64_t(0x2545F4914F6CDD1Dull));
  Asm.movi(0, 13);
  Asm.movi(0, 9);
  Asm.loadImm(17, Inserts);

  Asm.bind(MainLoop);
  // Key generation (LCG).
  Asm.operate(Op::MULQ, 8, 21, 8);
  Asm.lda(8, 777, 8);
  Asm.mov(8, 2);
  Asm.bsr(RegRA, Insert);
  // Look up a key inserted earlier (r13 lags the key stream).
  Asm.mov(13, 2);
  Asm.bsr(RegRA, Lookup);
  Asm.operatei(Op::AND, 17, 7, 3);
  Asm.operate(Op::CMOVEQ, 3, 8, 13); // refresh the lagged key sometimes
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, MainLoop);
  emitEpilogue(Asm);

  // bucket: r3 <- &buckets[hash(r2)] (shared helper, BSR-called).
  Asm.bind(Bucket);
  Asm.operate(Op::MULQ, 2, 21, 3);
  Asm.operatei(Op::SRL, 3, 54, 3);
  Asm.operate(Op::S8ADDQ, 3, 0, 3);
  Asm.ret(RegRA);

  // insert(key=r2): push a 24-byte node {key, next, tag16} onto its chain.
  Asm.bind(Insert);
  Asm.mov(RegRA, 25);
  Asm.bsr(RegRA, Bucket);
  Asm.mov(25, RegRA);
  Asm.stq(2, 0, 12);  // node->key
  Asm.ldq(4, 0, 3);   // old head
  Asm.stq(4, 8, 12);  // node->next
  Asm.stw(2, 16, 12); // node->tag (16-bit field: stw/ldwu coverage)
  Asm.stq(12, 0, 3);  // head = node
  Asm.lda(12, 24, 12);
  // Record checksum maintenance (in-place local chain).
  Asm.operatei(Op::SRL, 2, 11, 4);
  Asm.operate(Op::XOR, 4, 2, 4);
  Asm.operatei(Op::SLL, 4, 1, 4);
  Asm.operate(Op::ADDQ, 9, 4, 9);
  Asm.ret(RegRA);

  // lookup(key=r2): walk the chain; on hit add the tag to the checksum.
  Asm.bind(Lookup);
  Asm.mov(RegRA, 25);
  Asm.bsr(RegRA, Bucket);
  Asm.mov(25, RegRA);
  Asm.ldq(4, 0, 3); // head
  Asm.condBr(Op::BEQ, 4, LookMiss);
  Asm.bind(LookLoop);
  Asm.ldq(5, 0, 4);
  Asm.operate(Op::CMPEQ, 5, 2, 6);
  Asm.condBr(Op::BNE, 6, LookHit);
  Asm.ldq(4, 8, 4);
  Asm.condBr(Op::BNE, 4, LookLoop);
  Asm.bind(LookMiss);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.ret(RegRA);
  Asm.bind(LookHit);
  Asm.ldwu(6, 16, 4);
  Asm.operate(Op::ADDQ, 9, 6, 9);
  Asm.ret(RegRA);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));

  WorkloadImage Image;
  Image.Name = "vortex";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Inserts) * 45;
  return Image;
}
