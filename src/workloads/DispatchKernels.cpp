//===- workloads/DispatchKernels.cpp - Indirect-dispatch SPEC stand-ins ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The indirect-control workloads: gap (bytecode interpreter, JMP jump
/// table), perlbmk (opcode handlers as procedures, JSR/RET dominated — the
/// paper's worst chaining expansion), eon (virtual-dispatch object
/// shading), and gcc (branch-tree state machine).
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include <cassert>

using namespace ildp;
using namespace ildp::workloads;
using namespace ildp::alpha;
using Op = alpha::Opcode;

namespace {

/// Writes assembled words into guest memory.
void commit(GuestMemory &Mem, Assembler &Asm, std::vector<uint32_t> Words) {
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
}

} // namespace

// ---------------------------------------------------------------------------
// 254.gap — a bytecode interpreter whose dispatch is a register-indirect
// JMP through a jump table, with short straight-line handlers.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildGap(GuestMemory &Mem, unsigned Scale) {
  constexpr unsigned NumOps = 8;
  constexpr uint64_t ProgBytes = 8 * 1024; // opcode, operand pairs
  constexpr uint64_t TableBase = Data2Base;
  constexpr uint64_t ScratchBase = Data2Base + 0x1000;
  // Opcode stream with bytecode-like target locality: long runs of the
  // same opcode (70% repeat probability) over a skewed distribution, so
  // software jump prediction behaves as it does on real interpreters.
  {
    Rng Rand(0x6A9);
    Mem.mapRegion(DataBase, ProgBytes + 64);
    uint8_t Cur = 0;
    for (uint64_t I = 0; I < ProgBytes; I += 2) {
      if (!Rand.nextChance(7, 10))
        Cur = uint8_t(Rand.nextBelow(Rand.nextChance(1, 2) ? 3 : NumOps));
      Mem.poke8(DataBase + I, Cur);
      Mem.poke8(DataBase + I + 1, uint8_t(Rand.next() & 0xFF));
    }
  }
  Mem.mapRegion(TableBase, 0x2000);
  fillRandomQwords(Mem, ScratchBase, 64, 0x517E);

  Assembler Asm(CodeBase);
  const unsigned Passes = 7 * Scale;

  // r0 = jump table, r16 = bytecode pc, r17 = remaining, r9 = accumulator,
  // r20 = scratch table, r19 = pass counter, r21/r22 = builtin pointers.
  Asm.loadImm(0, int64_t(TableBase));
  Asm.loadImm(20, int64_t(ScratchBase));
  Asm.movi(0, 9);
  Asm.loadImm(19, Passes);

  auto PassLoop = Asm.createLabel("pass");
  auto Fetch = Asm.createLabel("fetch");
  auto Done = Asm.createLabel("done");
  std::vector<Assembler::Label> Handlers;
  for (unsigned I = 0; I != NumOps; ++I)
    Handlers.push_back(Asm.createLabel("h" + std::to_string(I)));
  auto Builtin1 = Asm.createLabel("builtin1");
  auto Builtin2 = Asm.createLabel("builtin2");
  Asm.loadLabelAddr(21, Builtin1);
  Asm.loadLabelAddr(22, Builtin2);

  Asm.bind(PassLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, ProgBytes / 2);
  Asm.bind(Fetch);
  Asm.condBr(Op::BEQ, 17, Done);
  Asm.ldbu(1, 0, 16); // opcode
  Asm.ldbu(2, 1, 16); // operand
  Asm.lda(16, 2, 16);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.operate(Op::S8ADDQ, 1, 0, 3);
  Asm.ldq(27, 0, 3);
  Asm.jmp(RegZero, 27); // computed goto

  // Handlers; each ends with a straightenable direct branch back.
  Asm.bind(Handlers[0]);
  Asm.operate(Op::ADDQ, 9, 2, 9);
  Asm.operatei(Op::SLL, 2, 1, 4);
  Asm.operatei(Op::ADDQ, 4, 3, 4);
  Asm.operatei(Op::SRL, 4, 1, 4);
  Asm.operate(Op::XOR, 9, 4, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[1]);
  Asm.operate(Op::SUBQ, 9, 2, 9);
  Asm.operatei(Op::SRL, 2, 2, 4);
  Asm.operatei(Op::SUBQ, 4, 1, 4);
  Asm.operatei(Op::SLL, 4, 2, 4);
  Asm.operate(Op::ADDQ, 9, 4, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[2]);
  Asm.operate(Op::XOR, 9, 2, 9);
  Asm.operatei(Op::SLL, 9, 1, 4);
  Asm.operatei(Op::SRL, 4, 2, 4);
  Asm.operatei(Op::ADDQ, 4, 7, 4);
  Asm.operate(Op::ADDQ, 9, 4, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[3]);
  Asm.operatei(Op::SLL, 9, 1, 9);
  Asm.operate(Op::ADDQ, 9, 2, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[4]);
  Asm.operatei(Op::SRL, 9, 1, 9);
  Asm.operate(Op::XOR, 9, 2, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[5]);
  Asm.operatei(Op::AND, 2, 0x3F, 3);
  Asm.operate(Op::S8ADDQ, 3, 20, 3);
  Asm.ldq(4, 0, 3);
  Asm.operate(Op::ADDQ, 9, 4, 9);
  Asm.br(Fetch);
  Asm.bind(Handlers[6]);
  Asm.operatei(Op::AND, 2, 0x3F, 3);
  Asm.operate(Op::S8ADDQ, 3, 20, 3);
  Asm.stq(9, 0, 3);
  Asm.br(Fetch);
  Asm.bind(Handlers[7]);
  Asm.operate(Op::MULQ, 9, 2, 3);
  Asm.operate(Op::XOR, 9, 3, 9);
  // Builtin call through a function-pointer pair (second indirect site).
  Asm.mov(21, 25);
  Asm.operate(Op::CMOVLBS, 2, 22, 25);
  Asm.jsr(RegRA, 25);
  Asm.br(Fetch);
  Asm.bind(Builtin1);
  Asm.operatei(Op::ADDQ, 9, 3, 9);
  Asm.ret(RegRA);
  Asm.bind(Builtin2);
  Asm.operatei(Op::XOR, 9, 5, 9);
  Asm.ret(RegRA);

  Asm.bind(Done);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, PassLoop);
  emitEpilogue(Asm);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));
  for (unsigned I = 0; I != NumOps; ++I)
    Mem.poke64(TableBase + I * 8, Asm.labelAddr(Handlers[I]));

  WorkloadImage Image;
  Image.Name = "gap";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Passes) * (ProgBytes / 2) * 12;
  return Image;
}

// ---------------------------------------------------------------------------
// 253.perlbmk — opcode dispatch through *called* handlers (JSR through a
// handler table, RET back, plus a shared BSR helper): the call/return-
// dominated profile behind the paper's worst-case instruction expansion.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildPerlbmk(GuestMemory &Mem, unsigned Scale) {
  constexpr unsigned NumOps = 6;
  constexpr uint64_t ProgBytes = 6 * 1024;
  constexpr uint64_t TableBase = Data2Base;
  // Bytecode-like opcode locality (see gap) so handler-call prediction
  // sees realistic repetition.
  {
    Rng Rand(0x9E71);
    Mem.mapRegion(DataBase, ProgBytes + 64);
    uint8_t Cur = 0;
    for (uint64_t I = 0; I != ProgBytes; ++I) {
      if (!Rand.nextChance(7, 10))
        Cur = uint8_t(Rand.nextBelow(Rand.nextChance(1, 2) ? 2 : NumOps));
      Mem.poke8(DataBase + I, Cur);
    }
  }
  Mem.mapRegion(TableBase, 0x1000);
  Mem.mapRegion(StackTop - 0x10000, 0x10000);

  Assembler Asm(CodeBase);
  const unsigned Passes = 6 * Scale;

  // r0 = handler table, r16 = opcode pc, r17 = remaining, r9 = state,
  // r19 = pass counter, r2 = current opcode (handler argument).
  Asm.loadImm(0, int64_t(TableBase));
  Asm.loadImm(RegSP, int64_t(StackTop - 64));
  Asm.movi(0, 9);
  Asm.loadImm(19, Passes);

  auto PassLoop = Asm.createLabel("pass");
  auto Fetch = Asm.createLabel("fetch");
  auto Done = Asm.createLabel("done");
  auto Helper = Asm.createLabel("helper");
  std::vector<Assembler::Label> Handlers;
  for (unsigned I = 0; I != NumOps; ++I)
    Handlers.push_back(Asm.createLabel("op" + std::to_string(I)));

  Asm.bind(PassLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, ProgBytes);
  Asm.bind(Fetch);
  Asm.condBr(Op::BEQ, 17, Done);
  // Two opcodes per loop iteration through two distinct call sites, so
  // handler returns are polymorphic (as in the real interpreter, where
  // helpers are called from many places).
  Asm.ldbu(1, 0, 16);
  Asm.ldbu(2, 1, 16); // operand (next opcode byte doubles as data)
  Asm.operatei(Op::SUBL, 17, 2, 17);
  Asm.operate(Op::S8ADDQ, 1, 0, 3);
  Asm.ldq(27, 0, 3);
  Asm.jsr(RegRA, 27); // call site 1
  Asm.ldbu(1, 1, 16);
  Asm.ldbu(2, 2, 16);
  Asm.lda(16, 2, 16);
  Asm.operate(Op::S8ADDQ, 1, 0, 3);
  Asm.ldq(27, 0, 3);
  Asm.jsr(RegRA, 27); // call site 2
  Asm.br(Fetch);

  // A shared helper reached by BSR from several handlers.
  Asm.bind(Helper);
  Asm.operate(Op::ADDQ, 9, 2, 9);
  Asm.operatei(Op::SRL, 9, 3, 3);
  Asm.operate(Op::XOR, 9, 3, 9);
  Asm.ret(RegRA);

  // Handlers: leaf or helper-calling procedures.
  Asm.bind(Handlers[0]);
  Asm.operate(Op::ADDQ, 9, 2, 9);
  Asm.operatei(Op::SLL, 2, 3, 3);
  Asm.operate(Op::XOR, 3, 2, 3);
  Asm.operatei(Op::SRL, 3, 1, 3);
  Asm.operatei(Op::ADDQ, 3, 7, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.ret(RegRA);
  Asm.bind(Handlers[1]);
  Asm.operate(Op::XOR, 9, 2, 9);
  Asm.operatei(Op::SLL, 9, 1, 9);
  Asm.operatei(Op::SRL, 2, 2, 3);
  Asm.operate(Op::ADDQ, 3, 2, 3);
  Asm.operatei(Op::SLL, 3, 2, 3);
  Asm.operate(Op::XOR, 9, 3, 9);
  Asm.ret(RegRA);
  Asm.bind(Handlers[2]);
  // Calls the helper; preserves ra in a register (leaf chain).
  Asm.mov(RegRA, 25);
  Asm.bsr(RegRA, Helper);
  Asm.mov(25, RegRA);
  Asm.ret(RegRA);
  Asm.bind(Handlers[3]);
  Asm.operatei(Op::SUBQ, 9, 7, 9);
  Asm.operate(Op::SEXTB, RegZero, 9, 3);
  Asm.operate(Op::XOR, 9, 3, 9);
  Asm.operatei(Op::SLL, 3, 2, 3);
  Asm.operatei(Op::ADDQ, 3, 5, 3);
  Asm.operatei(Op::SRL, 3, 1, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.ret(RegRA);
  Asm.bind(Handlers[4]);
  // Stack-framed handler calling the helper.
  Asm.lda(RegSP, -16, RegSP);
  Asm.stq(RegRA, 0, RegSP);
  Asm.bsr(RegRA, Helper);
  Asm.ldq(RegRA, 0, RegSP);
  Asm.lda(RegSP, 16, RegSP);
  Asm.ret(RegRA);
  Asm.bind(Handlers[5]);
  Asm.operate(Op::MULQ, 9, 2, 3);
  Asm.operatei(Op::SRL, 3, 2, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.operatei(Op::SLL, 3, 1, 3);
  Asm.operate(Op::XOR, 3, 2, 3);
  Asm.operatei(Op::SRL, 3, 3, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.ret(RegRA);

  Asm.bind(Done);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, PassLoop);
  emitEpilogue(Asm);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));
  for (unsigned I = 0; I != NumOps; ++I)
    Mem.poke64(TableBase + I * 8, Asm.labelAddr(Handlers[I]));

  WorkloadImage Image;
  Image.Name = "perlbmk";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Passes) * ProgBytes * 15;
  return Image;
}

// ---------------------------------------------------------------------------
// 252.eon — fixed-point "shading" over an object array with virtual
// dispatch: each object's kind selects a method through a vtable, called
// with JSR; methods are arithmetic-dense.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildEon(GuestMemory &Mem, unsigned Scale) {
  constexpr unsigned NumKinds = 4;
  constexpr uint64_t Objects = 512;
  constexpr unsigned ObjBytes = 24; // {kind, a, b}
  constexpr uint64_t VtableBase = Data2Base;
  Mem.mapRegion(DataBase, Objects * ObjBytes);
  Mem.mapRegion(VtableBase, 0x1000);
  Mem.mapRegion(StackTop - 0x10000, 0x10000);
  Rng Rand(0xE0E);
  for (uint64_t I = 0; I != Objects; ++I) {
    uint64_t Addr = DataBase + I * ObjBytes;
    Mem.poke64(Addr + 0, Rand.nextBelow(NumKinds));
    Mem.poke64(Addr + 8, Rand.next() & 0xFFFF);
    Mem.poke64(Addr + 16, Rand.next() & 0xFFFF);
  }

  Assembler Asm(CodeBase);
  const unsigned Passes = 36 * Scale;

  // r0 = vtable, r16 = object cursor, r17 = remaining, r9 = accumulator.
  Asm.loadImm(0, int64_t(VtableBase));
  Asm.loadImm(RegSP, int64_t(StackTop - 64));
  Asm.movi(0, 9);
  Asm.loadImm(19, Passes);

  auto PassLoop = Asm.createLabel("pass");
  auto ObjLoop = Asm.createLabel("obj");
  std::vector<Assembler::Label> Methods;
  for (unsigned I = 0; I != NumKinds; ++I)
    Methods.push_back(Asm.createLabel("m" + std::to_string(I)));

  Asm.bind(PassLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, Objects);
  Asm.bind(ObjLoop);
  Asm.ldq(1, 0, 16);  // kind
  Asm.ldq(2, 8, 16);  // a
  Asm.ldq(3, 16, 16); // b
  Asm.operate(Op::S8ADDQ, 1, 0, 4);
  Asm.ldq(27, 0, 4);
  Asm.jsr(RegRA, 27);
  // Fixed-point post-mix in the caller (in-place local chain).
  Asm.operate(Op::MULQ, 2, 3, 4);
  Asm.operatei(Op::SRL, 4, 8, 4);
  Asm.operate(Op::ADDQ, 4, 2, 4);
  Asm.operatei(Op::SLL, 4, 1, 4);
  Asm.operate(Op::XOR, 4, 3, 4);
  Asm.operatei(Op::SRL, 4, 3, 4);
  Asm.operate(Op::ADDQ, 9, 4, 9);
  Asm.lda(16, ObjBytes, 16);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, ObjLoop);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, PassLoop);
  emitEpilogue(Asm);

  // Methods: arithmetic-dense fixed-point shading (in-place local chains
  // like the real renderer's expression trees).
  Asm.bind(Methods[0]); // diffuse
  Asm.operate(Op::MULQ, 2, 3, 5);
  Asm.operate(Op::ADDQ, 5, 2, 5);
  Asm.operatei(Op::SRL, 5, 4, 5);
  Asm.operatei(Op::ADDQ, 5, 3, 5);
  Asm.operatei(Op::SLL, 5, 1, 5);
  Asm.operate(Op::XOR, 5, 2, 5);
  Asm.operatei(Op::SRL, 5, 2, 5);
  Asm.operate(Op::ADDQ, 9, 5, 9);
  Asm.ret(RegRA);
  Asm.bind(Methods[1]); // specular
  Asm.operate(Op::ADDQ, 2, 3, 5);
  Asm.operatei(Op::SLL, 2, 2, 6);
  Asm.operate(Op::XOR, 5, 6, 5);
  Asm.operatei(Op::SRL, 5, 1, 5);
  Asm.operate(Op::MULQ, 5, 3, 6);
  Asm.operatei(Op::SRL, 6, 8, 6);
  Asm.operate(Op::ADDQ, 5, 6, 5);
  Asm.operatei(Op::AND, 5, 0xFF, 5);
  Asm.operate(Op::ADDQ, 9, 5, 9);
  Asm.ret(RegRA);
  Asm.bind(Methods[2]); // reflect: |a - b| with falloff
  Asm.operate(Op::SUBQ, 2, 3, 5);
  Asm.operate(Op::SUBQ, 3, 2, 6);
  Asm.operate(Op::CMOVLT, 5, 6, 5);
  Asm.operatei(Op::SRL, 5, 1, 6);
  Asm.operate(Op::ADDQ, 6, 5, 6);
  Asm.operatei(Op::SRL, 6, 2, 6);
  Asm.operate(Op::ADDQ, 9, 6, 9);
  Asm.ret(RegRA);
  Asm.bind(Methods[3]); // attenuate
  Asm.operate(Op::MULQ, 2, 2, 5);
  Asm.operatei(Op::SRL, 5, 6, 5);
  Asm.operate(Op::SUBQ, 5, 3, 5);
  Asm.operatei(Op::SLL, 5, 3, 6);
  Asm.operate(Op::SUBQ, 6, 5, 6);
  Asm.operatei(Op::SRL, 6, 1, 6);
  Asm.operate(Op::XOR, 9, 6, 9);
  Asm.ret(RegRA);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));
  for (unsigned I = 0; I != NumKinds; ++I)
    Mem.poke64(VtableBase + I * 8, Asm.labelAddr(Methods[I]));

  WorkloadImage Image;
  Image.Name = "eon";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Passes) * Objects * 20;
  return Image;
}

// ---------------------------------------------------------------------------
// 176.gcc — a token-stream state machine: a deep data-dependent branch
// tree (hard-to-predict branches), symbol-chain walks, and sparse stores.
// ---------------------------------------------------------------------------
WorkloadImage workloads::buildGcc(GuestMemory &Mem, unsigned Scale) {
  constexpr uint64_t Tokens = 12 * 1024;
  constexpr uint64_t ChainBase = Data2Base;
  constexpr unsigned ChainNodes = 64;
  fillRandomBytes(Mem, DataBase, Tokens, 0x6CC);
  for (uint64_t I = 0; I != Tokens; ++I) {
    MemAccessResult R = Mem.load(DataBase + I, 1);
    Mem.poke8(DataBase + I, uint8_t(R.Value & 0x0F));
  }
  // Symbol chain: 16-byte nodes {value, next}.
  Mem.mapRegion(ChainBase, ChainNodes * 16 + 64);
  Rng Rand(0x6CC2);
  for (unsigned I = 0; I != ChainNodes; ++I) {
    Mem.poke64(ChainBase + I * 16, Rand.next() & 0xFFFF);
    Mem.poke64(ChainBase + I * 16 + 8,
               ChainBase + Rand.nextBelow(ChainNodes) * 16);
  }

  Assembler Asm(CodeBase);
  const unsigned Passes = 3 * Scale;

  // r0 = chain base, r16 = token pc, r17 = remaining, r9 = state.
  Asm.loadImm(0, int64_t(ChainBase));
  Asm.movi(0, 9);
  Asm.loadImm(19, Passes);

  auto PassLoop = Asm.createLabel("pass");
  auto TokLoop = Asm.createLabel("tok");
  auto TokNext = Asm.createLabel("tok_next");
  auto Lo = Asm.createLabel("lo");
  auto LoLo = Asm.createLabel("lolo");
  auto LoHi = Asm.createLabel("lohi");
  auto HiLo = Asm.createLabel("hilo");
  auto HiHi = Asm.createLabel("hihi");
  auto Walk = Asm.createLabel("walk");

  Asm.bind(PassLoop);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, Tokens);
  Asm.bind(TokLoop);
  Asm.ldbu(1, 0, 16);
  Asm.lda(16, 1, 16);
  // Branch tree on the token value (bits are random: mispredict-rich).
  Asm.operatei(Op::CMPLT, 1, 8, 2);
  Asm.condBr(Op::BNE, 2, Lo);
  Asm.operatei(Op::CMPLT, 1, 12, 2);
  Asm.condBr(Op::BNE, 2, HiLo);
  Asm.bind(HiHi); // 12..15: walk the symbol chain 3 hops
  Asm.mov(0, 3);
  Asm.movi(3, 4);
  Asm.bind(Walk);
  Asm.ldq(5, 0, 3);
  Asm.operate(Op::ADDQ, 9, 5, 9);
  Asm.ldq(3, 8, 3);
  Asm.operatei(Op::SUBL, 4, 1, 4);
  Asm.condBr(Op::BNE, 4, Walk);
  Asm.br(TokNext);
  Asm.bind(HiLo); // 8..11: sign-extension mixing
  Asm.operate(Op::SEXTB, RegZero, 9, 3);
  Asm.operate(Op::SEXTW, RegZero, 9, 4);
  Asm.operate(Op::XOR, 3, 4, 3);
  Asm.operatei(Op::SLL, 3, 1, 3);
  Asm.operatei(Op::ADDQ, 3, 9, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.br(TokNext);
  Asm.bind(Lo);
  Asm.operatei(Op::CMPLT, 1, 4, 2);
  Asm.condBr(Op::BNE, 2, LoLo);
  Asm.bind(LoHi); // 4..7: store to the chain head value
  Asm.operate(Op::ADDQ, 9, 1, 9);
  Asm.stq(9, 0, 0);
  Asm.br(TokNext);
  Asm.bind(LoLo); // 0..3: arithmetic
  Asm.operate(Op::S4ADDQ, 1, 9, 9);
  Asm.operatei(Op::SRL, 9, 2, 3);
  Asm.operate(Op::XOR, 9, 3, 9);
  Asm.operatei(Op::SLL, 1, 2, 3);
  Asm.operatei(Op::SUBQ, 3, 2, 3);
  Asm.operate(Op::ADDQ, 9, 3, 9);
  Asm.bind(TokNext);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, TokLoop);
  Asm.operatei(Op::SUBL, 19, 1, 19);
  Asm.condBr(Op::BNE, 19, PassLoop);
  emitEpilogue(Asm);

  std::vector<uint32_t> Words = Asm.finalize();
  commit(Mem, Asm, std::move(Words));

  WorkloadImage Image;
  Image.Name = "gcc";
  Image.EntryPc = CodeBase;
  Image.ApproxInsts = uint64_t(Passes) * Tokens * 12;
  return Image;
}
