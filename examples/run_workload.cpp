//===- examples/run_workload.cpp - Full co-designed VM demonstration ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one synthetic SPEC workload three ways and prints the comparison:
///   1. the plain interpreter (the V-ISA reference),
///   2. the co-designed VM with the modified accumulator I-ISA on the ILDP
///      machine,
///   3. the code-straightening-only DBT on the superscalar machine.
///
/// Usage: run_workload [workload] [scale]
///   workload: one of the twelve SPEC stand-ins (default: gzip)
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ildp;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gzip";
  int ScaleArg = argc > 2 ? std::atoi(argv[2]) : 1;
  unsigned Scale = ScaleArg >= 1 ? unsigned(ScaleArg) : 1;
  bool Known = false;
  for (const std::string &W : workloads::workloadNames())
    Known |= W == Name;
  if (!Known) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name.c_str());
    for (const std::string &W : workloads::workloadNames())
      std::fprintf(stderr, " %s", W.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  // --- 1. Reference interpreter run. -------------------------------------
  GuestMemory RefMem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Name, RefMem, Scale);
  Interpreter Ref(RefMem);
  Ref.state().Pc = Image.EntryPc;
  StepInfo Last = Ref.run(1'000'000'000);
  if (Last.Status != StepStatus::Halted) {
    std::fprintf(stderr, "reference run did not halt cleanly\n");
    return 1;
  }
  uint64_t RefChecksum = Ref.state().readGpr(alpha::RegV0);
  std::printf("workload          : %s (scale %u)\n", Name.c_str(), Scale);
  std::printf("V-ISA instructions: %llu\n",
              (unsigned long long)Ref.retiredCount());
  std::printf("checksum (v0)     : 0x%016llx\n",
              (unsigned long long)RefChecksum);

  // --- 2. Co-designed VM: modified I-ISA on the ILDP machine. ------------
  {
    GuestMemory Mem;
    workloads::buildWorkload(Name, Mem, Scale);
    vm::VmConfig Config;
    Config.Dbt.Variant = iisa::IsaVariant::Modified;
    uarch::IldpParams Params;
    uarch::IldpModel Model(Params);
    vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
    Vm.setTimingModel(&Model);
    vm::RunResult Result = Vm.run();
    Model.finish();
    if (Result.Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "VM run did not halt cleanly\n");
      return 1;
    }
    uint64_t VmChecksum = Vm.interpreter().state().readGpr(alpha::RegV0);
    const StatisticSet &S = Vm.stats();
    std::printf("\n== modified I-ISA on ILDP (8 PEs) ==\n");
    std::printf("checksum match    : %s\n",
                VmChecksum == RefChecksum ? "yes" : "NO (bug!)");
    std::printf("fragments         : %llu\n",
                (unsigned long long)S.get("tcache.fragments"));
    std::printf("interp insts      : %llu\n",
                (unsigned long long)S.get("interp.insts"));
    std::printf("translated V-insts: %llu\n",
                (unsigned long long)S.get("vm.vinsts_translated"));
    std::printf("I-ISA insts       : %llu (+%llu dispatch)\n",
                (unsigned long long)S.get("frag.insts"),
                (unsigned long long)S.get("dispatch.insts"));
    std::printf("V-ISA IPC         : %.3f\n", Model.stats().ipc());
    std::printf("native I-ISA IPC  : %.3f\n", Model.stats().nativeIpc());
  }

  // --- 3. Straightening-only DBT on the superscalar machine. -------------
  {
    GuestMemory Mem;
    workloads::buildWorkload(Name, Mem, Scale);
    vm::VmConfig Config;
    Config.Dbt.Variant = iisa::IsaVariant::Straight;
    uarch::SuperscalarParams Params;
    uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/false);
    vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
    Vm.setTimingModel(&Model);
    vm::RunResult Result = Vm.run();
    Model.finish();
    if (Result.Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "straightening run did not halt cleanly\n");
      return 1;
    }
    uint64_t VmChecksum = Vm.interpreter().state().readGpr(alpha::RegV0);
    std::printf("\n== straightened Alpha on superscalar ==\n");
    std::printf("checksum match    : %s\n",
                VmChecksum == RefChecksum ? "yes" : "NO (bug!)");
    std::printf("V-ISA IPC         : %.3f\n", Model.stats().ipc());
    std::printf("mispredicts/1k    : %.2f\n",
                Model.stats().Insts
                    ? 1000.0 * double(Model.frontEndStats().totalMispredicts()) /
                          double(Model.stats().Insts)
                    : 0.0);
  }

  std::printf("\ndone.\n");
  return 0;
}
