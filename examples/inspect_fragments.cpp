//===- examples/inspect_fragments.cpp - Translation cache inspector -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a workload through the co-designed VM and dumps the translation
/// cache: every fragment's I-ISA code side by side with its source Alpha
/// instructions, execution counts, PEI tables, and exit state. The tool
/// for studying what the translator actually produced.
///
/// Usage: inspect_fragments [workload] [basic|modified|straight] [topN]
///
//===----------------------------------------------------------------------===//

#include "alpha/Disasm.h"
#include "core/Fragment.h"
#include "iisa/Disasm.h"
#include "interp/Interpreter.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ildp;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gzip";
  std::string VariantName = argc > 2 ? argv[2] : "modified";
  int TopArg = argc > 3 ? std::atoi(argv[3]) : 3;
  unsigned TopN = TopArg >= 1 ? unsigned(TopArg) : 3;

  iisa::IsaVariant Variant;
  if (VariantName == "basic")
    Variant = iisa::IsaVariant::Basic;
  else if (VariantName == "modified")
    Variant = iisa::IsaVariant::Modified;
  else if (VariantName == "straight")
    Variant = iisa::IsaVariant::Straight;
  else {
    std::fprintf(stderr, "unknown variant '%s'\n", VariantName.c_str());
    return 1;
  }

  bool Known = false;
  for (const std::string &W : workloads::workloadNames())
    Known |= W == Name;
  if (!Known) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  vm::VmConfig Config;
  Config.Dbt.Variant = Variant;
  vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
  if (Vm.run().Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "run did not halt cleanly\n");
    return 1;
  }

  const StatisticSet &S = Vm.stats();
  std::printf("workload %s, %s backend: %llu fragments, %llu patches, "
              "%llu bytes of translated code\n\n",
              Name.c_str(), VariantName.c_str(),
              (unsigned long long)S.get("tcache.fragments"),
              (unsigned long long)S.get("tcache.patches"),
              (unsigned long long)S.get("tcache.body_bytes"));

  // Rank fragments by executed instructions.
  std::vector<const dbt::Fragment *> Ranked;
  for (const auto &F : Vm.tcache().fragments())
    Ranked.push_back(F.get());
  std::sort(Ranked.begin(), Ranked.end(),
            [](const dbt::Fragment *A, const dbt::Fragment *B) {
              return A->ExecCount * A->Body.size() >
                     B->ExecCount * B->Body.size();
            });
  if (Ranked.size() > TopN)
    Ranked.resize(TopN);

  Interpreter Viewer(Mem); // Decode helper for source listing.
  for (const dbt::Fragment *Frag : Ranked) {
    std::printf("== fragment @0x%llx  (entry V-PC 0x%llx, executed %llu "
                "times, %u source insts, %u bytes) ==\n",
                (unsigned long long)Frag->IBase,
                (unsigned long long)Frag->EntryVAddr,
                (unsigned long long)Frag->ExecCount, Frag->SourceInsts,
                Frag->BodyBytes);

    uint64_t LastVAddr = 0;
    for (size_t I = 0; I != Frag->Body.size(); ++I) {
      const iisa::IisaInst &Inst = Frag->Body[I];
      // Print the source instruction once, above its translations.
      if (Inst.VAddr && Inst.VAddr != LastVAddr) {
        if (const alpha::AlphaInst *Src = Viewer.decodeAt(Inst.VAddr))
          std::printf("  ; 0x%llx: %s\n", (unsigned long long)Inst.VAddr,
                      alpha::disassemble(*Src, Inst.VAddr).c_str());
        LastVAddr = Inst.VAddr;
      }
      std::printf("    [%3zu] %-46s", I, iisa::disassemble(Inst).c_str());
      if (Inst.isPei())
        std::printf(" ; PEI");
      if (Inst.Usage != iisa::UsageClass::None &&
          Inst.Usage != iisa::UsageClass::Local)
        std::printf(" ; %s", iisa::getUsageName(Inst.Usage));
      std::printf("\n");
    }

    if (!Frag->PeiTable.empty()) {
      std::printf("  PEI table:\n");
      for (const dbt::PeiEntry &Entry : Frag->PeiTable) {
        std::printf("    inst %u -> V-PC 0x%llx", Entry.InstIndex,
                    (unsigned long long)Entry.VAddr);
        for (auto [Reg, Acc] : Entry.AccHeldRegs)
          std::printf("  r%u@A%u", Reg, Acc);
        std::printf("\n");
      }
    }
    if (!Frag->Exits.empty()) {
      std::printf("  exits:");
      for (const dbt::ExitRecord &Exit : Frag->Exits)
        std::printf(" [%u]->0x%llx%s", Exit.InstIndex,
                    (unsigned long long)Exit.VTarget,
                    Exit.Pending ? " (translator)" : "");
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
