//===- examples/quickstart.cpp - Figure 2 walkthrough ---------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour of the public API, built around the paper's own
/// worked example (Figure 2): assemble the 164.gzip inner loop, record it
/// as a superblock with the reference interpreter, translate it to both
/// accumulator ISAs, print the paper's four columns, and execute the
/// translated code to show architected-state equivalence.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "alpha/Disasm.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "iisa/Disasm.h"
#include "iisa/Executor.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace ildp;
using Op = alpha::Opcode;

int main() {
  // --- 1. Assemble Figure 2(a): the gzip CRC/hash loop. ------------------
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20000);  // r16 = buffer pointer
  Asm.loadImm(17, 64);       // r17 = count
  Asm.loadImm(0, 0x21000);   // r0  = hash table
  Asm.loadImm(1, 0x1234);    // r1  = hash state
  auto L1 = Asm.createLabel("L1");
  Asm.bind(L1);
  Asm.ldbu(3, 0, 16);                // ldbu   r3, 0[r16]
  Asm.operatei(Op::SUBL, 17, 1, 17); // subl   r17, 1, r17
  Asm.lda(16, 1, 16);                // lda    r16, 1[r16]
  Asm.operate(Op::XOR, 1, 3, 3);     // xor    r1, r3, r3
  Asm.operatei(Op::SRL, 1, 8, 1);    // srl    r1, 8, r1
  Asm.operatei(Op::AND, 3, 0xFF, 3); // and    r3, 0xff, r3
  Asm.operate(Op::S8ADDQ, 3, 0, 3);  // s8addq r3, r0, r3
  Asm.ldq(3, 0, 3);                  // ldq    r3, 0[r3]
  Asm.operate(Op::XOR, 3, 1, 1);     // xor    r3, r1, r1
  Asm.condBr(Op::BNE, 17, L1);       // bne    r17, L1
  Asm.halt();                        // L2:

  GuestMemory Mem;
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Mem.mapRegion(0x20000, 0x2000); // buffer + hash table (zero-filled)

  // --- 2. Interpret to the loop head, then record one superblock. --------
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  uint64_t LoopHead = Asm.labelAddr(L1);
  while (Interp.state().Pc != LoopHead)
    Interp.step();

  std::printf("== Figure 2(a): Alpha source ==\n");
  {
    Interpreter Viewer(Mem);
    for (uint64_t Pc = LoopHead; Pc <= LoopHead + 9 * 4; Pc += 4)
      std::printf("  %s\n",
                  alpha::disassemble(*Viewer.decodeAt(Pc), Pc).c_str());
  }

  dbt::SuperblockBuilder Builder(LoopHead, /*MaxInsts=*/200);
  while (Builder.append(Interp.step()) !=
         dbt::SuperblockBuilder::Status::Done) {
  }
  dbt::Superblock Sb = Builder.take();
  std::printf("\nrecorded a %zu-instruction superblock "
              "(ends: backward taken branch)\n",
              Sb.Insts.size());

  // --- 3. Translate to both accumulator ISAs. ----------------------------
  auto Translate = [&](iisa::IsaVariant Variant, const char *Title) {
    dbt::DbtConfig Config;
    Config.Variant = Variant;
    dbt::TranslationResult R =
        dbt::translate(Sb, Config, dbt::ChainEnv()).take();
    std::printf("\n== %s ==\n", Title);
    for (const iisa::IisaInst &Inst : R.Frag.Body)
      std::printf("  %s\n", iisa::disassemble(Inst).c_str());
    std::printf("  (%zu instructions, %u bytes, %u strands, "
                "%zu PEI entries)\n",
                R.Frag.Body.size(), R.Frag.BodyBytes, R.Strands,
                R.Frag.PeiTable.size());
    return R.Frag;
  };
  Translate(iisa::IsaVariant::Basic, "Figure 2(c): basic I-ISA");
  dbt::Fragment Modified =
      Translate(iisa::IsaVariant::Modified, "Figure 2(d): modified I-ISA");

  // --- 4. Execute the translated fragment; states must match. ------------
  // Fresh environment: run the interpreter to the loop head, take one
  // iteration as the reference, and replay the same iteration through the
  // translated fragment.
  GuestMemory Mem2;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem2.poke32(0x10000 + I * 4, Words[I]);
  Mem2.mapRegion(0x20000, 0x2000);
  Interpreter Ref(Mem2);
  Ref.state().Pc = 0x10000;
  while (Ref.state().Pc != LoopHead)
    Ref.step();
  ArchState Before = Ref.state();
  // One iteration under the interpreter.
  do {
    Ref.step();
  } while (Ref.state().Pc != LoopHead && Ref.state().Pc != LoopHead + 40);

  // Same iteration under the translated code.
  iisa::IExecState Exec;
  Exec.loadArchState(Before);
  GuestMemory Mem3;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem3.poke32(0x10000 + I * 4, Words[I]);
  Mem3.mapRegion(0x20000, 0x2000);
  iisa::IExit Exit = iisa::execute(Modified.Body.data(),
                                   Modified.Body.size(), Exec, Mem3, nullptr);

  bool Match = true;
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    Match &= Exec.toArchState().readGpr(Reg) == Ref.state().readGpr(Reg);
  std::printf("\n== equivalence check ==\n");
  std::printf("translated exit: chained to 0x%llx; architected state %s\n",
              (unsigned long long)Exit.VTarget,
              Match ? "matches the interpreter exactly" : "MISMATCH (bug!)");
  return Match ? 0 : 1;
}
