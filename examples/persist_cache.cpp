//===- examples/persist_cache.cpp - Warm-start demonstration --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the persistent translation cache: a cold run of a workload
/// translates its hot paths and saves the translation cache to disk; a
/// second run of the same workload imports the fragments and goes straight
/// to chained translated execution — zero fragments translated — while
/// producing the identical final checksum. A third run deliberately
/// corrupts the cache file to show the graceful cold-start fallback.
///
/// Usage: persist_cache [workload] [scale] [cache-file]
///   workload:   one of the twelve SPEC stand-ins (default: gzip)
///   cache-file: default "<workload>.tcache" in the working directory
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace ildp;

namespace {

struct RunSummary {
  uint64_t Checksum = 0;
  uint64_t Fragments = 0;  ///< Fragments resident at exit.
  uint64_t Translated = 0; ///< Fragments translated during THIS run.
  uint64_t Imported = 0;
  uint64_t InterpInsts = 0;
  uint64_t TransCost = 0; ///< Translator work units spent this run.
  bool Halted = false;
};

RunSummary runOnce(const std::string &Workload, unsigned Scale,
                   const std::string &CachePath) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, Scale);
  vm::VmConfig Config;
  Config.PersistPath = CachePath;
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();

  RunSummary S;
  S.Halted = Result.Reason == vm::StopReason::Halted;
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  const StatisticSet &Stats = Vm.stats();
  S.Fragments = Stats.get("tcache.fragments");
  S.Translated = Stats.get("dbt.fragments");
  S.Imported = Stats.get("persist.fragments_imported");
  S.InterpInsts = Stats.get("interp.insts");
  S.TransCost = Stats.get("dbt.cost.total");
  return S;
}

void printRun(const char *Label, const RunSummary &S) {
  std::printf("%s\n", Label);
  std::printf("  halted cleanly      : %s\n", S.Halted ? "yes" : "NO");
  std::printf("  checksum (v0)       : 0x%016llx\n",
              (unsigned long long)S.Checksum);
  std::printf("  fragments imported  : %llu\n", (unsigned long long)S.Imported);
  std::printf("  fragments translated: %llu\n",
              (unsigned long long)S.Translated);
  std::printf("  fragments at exit   : %llu\n",
              (unsigned long long)S.Fragments);
  std::printf("  interpreted insts   : %llu\n",
              (unsigned long long)S.InterpInsts);
  std::printf("  translator work     : %llu units\n\n",
              (unsigned long long)S.TransCost);
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gzip";
  int ScaleArg = argc > 2 ? std::atoi(argv[2]) : 1;
  unsigned Scale = ScaleArg >= 1 ? unsigned(ScaleArg) : 1;
  std::string CachePath = argc > 3 ? argv[3] : Name + ".tcache";
  bool Known = false;
  for (const std::string &W : workloads::workloadNames())
    Known |= W == Name;
  if (!Known) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name.c_str());
    for (const std::string &W : workloads::workloadNames())
      std::fprintf(stderr, " %s", W.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::remove(CachePath.c_str()); // Start from a guaranteed-cold state.
  std::printf("workload: %s (scale %u), cache file: %s\n\n", Name.c_str(),
              Scale, CachePath.c_str());

  RunSummary Cold = runOnce(Name, Scale, CachePath);
  printRun("== cold run (no cache file) ==", Cold);

  RunSummary Warm = runOnce(Name, Scale, CachePath);
  printRun("== warm run (cache imported) ==", Warm);

  // Flip one byte in the middle of the file: the CRC check must reject it
  // and the run must fall back to a full cold start, still correct.
  {
    std::fstream F(CachePath,
                   std::ios::binary | std::ios::in | std::ios::out);
    F.seekg(0, std::ios::end);
    long Size = long(F.tellg());
    F.seekp(Size / 2);
    char Byte = 0;
    F.seekg(Size / 2);
    F.read(&Byte, 1);
    Byte = char(Byte ^ 0x5A);
    F.seekp(Size / 2);
    F.write(&Byte, 1);
  }
  RunSummary Corrupt = runOnce(Name, Scale, CachePath);
  printRun("== corrupted-cache run (cold fallback) ==", Corrupt);

  bool Ok = Cold.Halted && Warm.Halted && Corrupt.Halted &&
            Warm.Checksum == Cold.Checksum &&
            Corrupt.Checksum == Cold.Checksum && Warm.Translated == 0 &&
            Warm.Imported == Cold.Fragments &&
            Warm.Fragments == Cold.Fragments && Corrupt.Imported == 0 &&
            Corrupt.Translated > 0;
  std::printf("warm start %s: translated %llu -> %llu fragments, "
              "translator work %llu -> %llu units\n",
              Ok ? "OK" : "FAILED", (unsigned long long)Cold.Translated,
              (unsigned long long)Warm.Translated,
              (unsigned long long)Cold.TransCost,
              (unsigned long long)Warm.TransCost);
  return Ok ? 0 : 1;
}
