//===- examples/persist_cache.cpp - Multi-image warm-start demo -----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the multi-image persistent cache store: cold runs of TWO
/// different workloads save their translation caches into one store file;
/// re-running either workload finds its own image slot by fingerprint and
/// goes straight to chained translated execution — zero fragments
/// translated — while producing the identical final checksum. A final run
/// deliberately corrupts the store to show the graceful cold-start
/// fallback (typed under persist.import_rejected.<reason>), after which
/// the exit save heals the artifact.
///
/// Usage: persist_cache [workload] [scale] [store-file]
///   workload:   one of the twelve SPEC stand-ins (default: gzip); the
///               demo picks a second, different workload automatically
///   store-file: default "persist_cache.tstore" in the working directory
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace ildp;

namespace {

struct RunSummary {
  uint64_t Checksum = 0;
  uint64_t Fragments = 0;  ///< Fragments resident at exit.
  uint64_t Translated = 0; ///< Fragments translated during THIS run.
  uint64_t Imported = 0;
  uint64_t StoreImages = 0; ///< Image slots in the store at load time.
  uint64_t InterpInsts = 0;
  uint64_t TransCost = 0; ///< Translator work units spent this run.
  bool Halted = false;
};

RunSummary runOnce(const std::string &Workload, unsigned Scale,
                   const std::string &StorePath) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, Scale);
  vm::VmConfig Config;
  Config.PersistPath = StorePath;
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();

  RunSummary S;
  S.Halted = Result.Reason == vm::StopReason::Halted;
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  const StatisticSet &Stats = Vm.stats();
  S.Fragments = Stats.get("tcache.fragments");
  S.Translated = Stats.get("dbt.fragments");
  S.Imported = Stats.get("persist.fragments_imported");
  S.StoreImages = Stats.get("persist.store_images");
  S.InterpInsts = Stats.get("interp.insts");
  S.TransCost = Stats.get("dbt.cost.total");
  return S;
}

void printRun(const std::string &Label, const RunSummary &S) {
  std::printf("%s\n", Label.c_str());
  std::printf("  halted cleanly      : %s\n", S.Halted ? "yes" : "NO");
  std::printf("  checksum (v0)       : 0x%016llx\n",
              (unsigned long long)S.Checksum);
  std::printf("  images in store     : %llu\n",
              (unsigned long long)S.StoreImages);
  std::printf("  fragments imported  : %llu\n", (unsigned long long)S.Imported);
  std::printf("  fragments translated: %llu\n",
              (unsigned long long)S.Translated);
  std::printf("  fragments at exit   : %llu\n",
              (unsigned long long)S.Fragments);
  std::printf("  interpreted insts   : %llu\n",
              (unsigned long long)S.InterpInsts);
  std::printf("  translator work     : %llu units\n\n",
              (unsigned long long)S.TransCost);
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gzip";
  int ScaleArg = argc > 2 ? std::atoi(argv[2]) : 1;
  unsigned Scale = ScaleArg >= 1 ? unsigned(ScaleArg) : 1;
  std::string StorePath = argc > 3 ? argv[3] : "persist_cache.tstore";
  bool Known = false;
  for (const std::string &W : workloads::workloadNames())
    Known |= W == Name;
  if (!Known) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name.c_str());
    for (const std::string &W : workloads::workloadNames())
      std::fprintf(stderr, " %s", W.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  // A second, different workload shares the store and proves the slots
  // coexist.
  std::string Other = Name == "gzip" ? "bzip2" : "gzip";

  std::remove(StorePath.c_str()); // Start from a guaranteed-cold state.
  std::printf("workloads: %s + %s (scale %u), shared store: %s\n\n",
              Name.c_str(), Other.c_str(), Scale, StorePath.c_str());

  RunSummary ColdA = runOnce(Name, Scale, StorePath);
  printRun("== cold run of " + Name + " (no store yet) ==", ColdA);
  RunSummary ColdB = runOnce(Other, Scale, StorePath);
  printRun("== cold run of " + Other + " (store miss, new slot) ==", ColdB);

  RunSummary WarmA = runOnce(Name, Scale, StorePath);
  printRun("== warm run of " + Name + " (slot found by fingerprint) ==",
           WarmA);
  RunSummary WarmB = runOnce(Other, Scale, StorePath);
  printRun("== warm run of " + Other + " (same store, own slot) ==", WarmB);

  // Flip one byte in the middle of the store: the CRC checks must reject
  // it and the run must fall back to a full cold start, still correct.
  {
    std::fstream F(StorePath,
                   std::ios::binary | std::ios::in | std::ios::out);
    F.seekg(0, std::ios::end);
    long Size = long(F.tellg());
    F.seekp(Size / 2);
    char Byte = 0;
    F.seekg(Size / 2);
    F.read(&Byte, 1);
    Byte = char(Byte ^ 0x5A);
    F.seekp(Size / 2);
    F.write(&Byte, 1);
  }
  RunSummary Corrupt = runOnce(Name, Scale, StorePath);
  printRun("== corrupted-store run of " + Name + " (cold fallback) ==",
           Corrupt);

  bool Ok = ColdA.Halted && ColdB.Halted && WarmA.Halted && WarmB.Halted &&
            Corrupt.Halted && WarmA.Checksum == ColdA.Checksum &&
            WarmB.Checksum == ColdB.Checksum &&
            Corrupt.Checksum == ColdA.Checksum && WarmA.Translated == 0 &&
            WarmB.Translated == 0 && WarmA.Imported == ColdA.Fragments &&
            WarmB.Imported == ColdB.Fragments && WarmA.StoreImages == 2 &&
            WarmB.StoreImages == 2 && Corrupt.Imported == 0 &&
            Corrupt.Translated > 0;
  std::printf("multi-image warm start %s: one store, two images; "
              "translator work %llu+%llu -> %llu+%llu units\n",
              Ok ? "OK" : "FAILED", (unsigned long long)ColdA.TransCost,
              (unsigned long long)ColdB.TransCost,
              (unsigned long long)WarmA.TransCost,
              (unsigned long long)WarmB.TransCost);
  return Ok ? 0 : 1;
}
