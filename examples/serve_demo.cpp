//===- examples/serve_demo.cpp - Line-oriented fleet service front end ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin front end over the in-process fleet service: one line in, one
/// line out. The scheduler itself is a library (src/serve/); this demo
/// only parses lines and prints responses, from stdin by default or from
/// a TCP socket with --port.
///
///   serve_demo [--store <path>] [--workers N] [--port P]
///              [--quota <tenant>=<rate>/<burst>/<inflight>]...
///              [--default-quota <rate>/<burst>/<inflight>]
///   serve_demo --seed <path>        build a warm store, then exit
///
/// Protocol (one request per line, blank-separated fields):
///
///   run <workload> [tenant=<t>] [priority=<interactive|normal|batch>]
///                  [max_insts=<n>] [deadline_us=<n>] [cache_bytes=<n>]
///   stats
///   quit
///
/// Responses:
///
///   ok <checksum-hex> insts=<n> wall_us=<n> worker=<n>
///   err <status> <detail> [retry_after_ms=<n>]
///
/// The TCP path speaks raw file descriptors and survives hostile
/// clients: reads and writes retry on EINTR, short writes are completed,
/// SIGPIPE is ignored (a client vanishing mid-response costs that
/// connection, never the server), over-long lines drop the connection,
/// and the accept loop outlives every per-connection failure.
///
/// Example session:
///
///   $ build/examples/serve_demo --store warm.tstore --workers 4
///   run gzip
///   ok 1f9a... insts=2755561 wall_us=10234 worker=0
///   run mcf deadline_us=100
///   err deadline wall-deadline
///
//===----------------------------------------------------------------------===//

#include "serve/ExecutionScheduler.h"
#include "workloads/Workloads.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::serve;

namespace {

/// Set by SIGTERM/SIGINT: finish what was accepted, then leave. The
/// handlers are installed without SA_RESTART so blocking reads and
/// accepts return EINTR and the serving loops can see the flag.
volatile std::sig_atomic_t ShutdownRequested = 0;

/// Serves one parsed line; returns the response line (without newline),
/// or an empty string for "quit".
std::string serveLine(ExecutionScheduler &Sched, const std::string &Line) {
  std::istringstream In(Line);
  std::string Cmd;
  In >> Cmd;
  if (Cmd.empty() || Cmd[0] == '#')
    return "# comment";
  if (Cmd == "quit" || Cmd == "exit")
    return "";
  if (Cmd == "stats") {
    std::string Out;
    for (const auto &[Name, Value] : Sched.fleet().stats().getWithPrefix(""))
      Out += Name + "=" + std::to_string(Value) + " ";
    return Out.empty() ? "(no stats)" : Out;
  }
  if (Cmd == "help" || Cmd != "run")
    return "err bad-command usage: run <workload> [tenant=t] [priority=p] "
           "[max_insts=n] [deadline_us=n] | stats | quit";

  ExecRequest Req;
  In >> Req.Workload;
  if (Req.Workload.empty())
    return "err bad-command missing workload name";
  std::string Opt;
  while (In >> Opt) {
    size_t Eq = Opt.find('=');
    std::string Key = Opt.substr(0, Eq);
    std::string Val = Eq == std::string::npos ? "" : Opt.substr(Eq + 1);
    if (Key == "tenant")
      Req.Tenant = Val;
    else if (Key == "priority") {
      if (!parsePriorityName(Val, Req.Lane))
        return "err bad-command unknown priority " + Val +
               " (interactive|normal|batch)";
    } else if (Key == "max_insts")
      Req.MaxGuestInsts = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "deadline_us")
      Req.DeadlineMicros = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "cache_bytes")
      Req.CodeCacheBytes = std::strtoull(Val.c_str(), nullptr, 0);
    else
      return "err bad-command unknown option " + Key;
  }

  ExecResponse Resp = Sched.submit(std::move(Req)).get();
  if (!Resp.ok()) {
    std::string Out = std::string("err ") + getExecStatusName(Resp.Status) +
                      " " + Resp.Detail;
    if (Resp.RetryAfterMs)
      Out += " retry_after_ms=" + std::to_string(Resp.RetryAfterMs);
    return Out;
  }
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "ok %llx insts=%llu wall_us=%.0f worker=%u",
                (unsigned long long)Resp.Checksum,
                (unsigned long long)Resp.GuestInsts, Resp.WallMicros,
                Resp.Worker);
  return Buf;
}

void serveStream(ExecutionScheduler &Sched, FILE *In, FILE *Out) {
  char LineBuf[4096];
  for (;;) {
    if (!std::fgets(LineBuf, sizeof(LineBuf), In)) {
      // A signal interrupting the read (EINTR, SA_RESTART off) is the
      // graceful-shutdown path; a true EOF or error ends the session
      // either way.
      if (!ShutdownRequested && std::ferror(In) && errno == EINTR) {
        std::clearerr(In);
        continue;
      }
      break;
    }
    std::string Line(LineBuf);
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    std::string Resp = serveLine(Sched, Line);
    if (Resp.empty())
      break;
    std::fprintf(Out, "%s\n", Resp.c_str());
    std::fflush(Out);
  }
}

int seedStore(const std::string &Path) {
  std::remove(Path.c_str());
  for (const std::string &W : workloads::workloadNames()) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    vm::VmConfig Config;
    Config.PersistPath = Path;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    if (Vm.run().Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "%s: seeding run did not halt\n", W.c_str());
      return 1;
    }
  }
  std::printf("seeded %zu workload images into %s\n",
              workloads::workloadNames().size(), Path.c_str());
  return 0;
}

/// Parses "<rate>/<burst>/<inflight>" into \p Quota. Returns false on a
/// malformed spec.
bool parseQuotaSpec(const std::string &Spec, TenantQuota &Quota) {
  size_t S1 = Spec.find('/');
  size_t S2 = S1 == std::string::npos ? S1 : Spec.find('/', S1 + 1);
  if (S2 == std::string::npos)
    return false;
  Quota.TokensPerSec = std::strtod(Spec.substr(0, S1).c_str(), nullptr);
  Quota.Burst = std::strtod(Spec.substr(S1 + 1, S2 - S1 - 1).c_str(), nullptr);
  Quota.MaxInFlight =
      uint32_t(std::strtoul(Spec.substr(S2 + 1).c_str(), nullptr, 0));
  return true;
}

#ifndef _WIN32

/// Writes all of \p Len bytes to \p Fd, completing short writes and
/// retrying EINTR. Returns false when the peer is gone (any other error).
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= size_t(N);
  }
  return true;
}

/// Buffered newline-delimited reader over a raw fd: partial reads and
/// EINTR are internal details; callers see whole lines.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  enum class Status { Line, Eof, TooLong };

  /// Reads the next line (CR/LF stripped) into \p Line. Eof covers both
  /// orderly close and read errors — either way the connection is done.
  Status readLine(std::string &Line) {
    Line.clear();
    for (;;) {
      while (Pos != Len) {
        char C = Buf[Pos++];
        if (C == '\n') {
          while (!Line.empty() && Line.back() == '\r')
            Line.pop_back();
          return Status::Line;
        }
        if (Line.size() >= MaxLine)
          return Status::TooLong;
        Line.push_back(C);
      }
      ssize_t N = read(Fd, Buf, sizeof(Buf));
      if (N < 0) {
        if (errno == EINTR) {
          if (ShutdownRequested)
            return Status::Eof; // Graceful stop: end this session.
          continue;
        }
        return Status::Eof;
      }
      if (N == 0)
        return Status::Eof; // Orderly EOF; an unterminated tail is dropped.
      Pos = 0;
      Len = size_t(N);
    }
  }

private:
  static constexpr size_t MaxLine = 64 * 1024;
  int Fd;
  char Buf[4096];
  size_t Pos = 0, Len = 0;
};

/// Serves one TCP client to completion. Any failure here is this
/// connection's problem only.
void serveClient(ExecutionScheduler &Sched, int Client) {
  LineReader Reader(Client);
  std::string Line;
  for (;;) {
    LineReader::Status S = Reader.readLine(Line);
    if (S == LineReader::Status::Eof)
      return;
    if (S == LineReader::Status::TooLong) {
      const char Err[] = "err bad-command line too long\n";
      writeAll(Client, Err, sizeof(Err) - 1);
      return;
    }
    std::string Resp = serveLine(Sched, Line);
    if (Resp.empty())
      return; // quit
    Resp += '\n';
    if (!writeAll(Client, Resp.data(), Resp.size()))
      return; // Peer went away mid-response.
  }
}

int serveTcp(ExecutionScheduler &Sched, unsigned Port) {
  // A client that disappears mid-write must cost an EPIPE errno, not a
  // process-killing signal.
  signal(SIGPIPE, SIG_IGN);
  int Listener = socket(AF_INET, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::perror("socket");
    return 1;
  }
  int One = 1;
  setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(uint16_t(Port));
  if (bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Listener, 4) < 0) {
    std::perror("bind/listen");
    close(Listener);
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (one client at a time; "
              "\"quit\" ends a session, Ctrl-C the server)\n",
              Port);
  while (!ShutdownRequested) {
    int Client = accept(Listener, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue; // Signal: the loop condition decides (graceful stop).
      std::perror("accept"); // Transient (ECONNABORTED, EMFILE): keep going.
      continue;
    }
    serveClient(Sched, Client);
    close(Client);
  }
  close(Listener);
  return 0;
}

/// SIGTERM/SIGINT request a graceful stop: stop accepting work, drain
/// what was admitted (shutdown(FinishQueued)), then exit — a fleet host
/// must never drop accepted requests on the floor when the platform
/// recycles it. Installed without SA_RESTART so the blocking accept/read
/// loops observe the flag.
void installShutdownHandlers() {
  struct sigaction Action {};
  Action.sa_handler = [](int) { ShutdownRequested = 1; };
  sigemptyset(&Action.sa_mask);
  Action.sa_flags = 0; // No SA_RESTART: blocking calls must EINTR.
  sigaction(SIGTERM, &Action, nullptr);
  sigaction(SIGINT, &Action, nullptr);
}
#endif

} // namespace

int main(int argc, char **argv) {
  std::string StorePath, SeedPath;
  unsigned Workers = 2, Port = 0;
  FleetConfig Config;
  bool BadArgs = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--store" && Next())
      StorePath = argv[I];
    else if (Arg == "--seed" && Next())
      SeedPath = argv[I];
    else if (Arg == "--workers" && Next())
      Workers = unsigned(std::strtoul(argv[I], nullptr, 0));
    else if (Arg == "--port" && Next())
      Port = unsigned(std::strtoul(argv[I], nullptr, 0));
    else if (Arg == "--quota" && Next()) {
      std::string Spec = argv[I];
      size_t Eq = Spec.find('=');
      TenantQuota Quota;
      if (Eq == std::string::npos ||
          !parseQuotaSpec(Spec.substr(Eq + 1), Quota)) {
        std::fprintf(stderr, "bad --quota spec %s\n", Spec.c_str());
        BadArgs = true;
      } else
        Config.TenantQuotas[Spec.substr(0, Eq)] = Quota;
    } else if (Arg == "--default-quota" && Next()) {
      if (!parseQuotaSpec(argv[I], Config.DefaultQuota)) {
        std::fprintf(stderr, "bad --default-quota spec %s\n", argv[I]);
        BadArgs = true;
      }
    } else
      BadArgs = true;
    if (BadArgs) {
      std::fprintf(
          stderr,
          "usage: %s [--store <path>] [--workers N] [--port P]\n"
          "       %*s [--quota <tenant>=<rate>/<burst>/<inflight>]...\n"
          "       %*s [--default-quota <rate>/<burst>/<inflight>]\n"
          "       %s --seed <path>\n",
          argv[0], int(std::strlen(argv[0])), "", int(std::strlen(argv[0])),
          "", argv[0]);
      return 2;
    }
  }
  if (!SeedPath.empty())
    return seedStore(SeedPath);

  Config.Workers = Workers;
  Config.StorePath = StorePath;
  ExecutionScheduler Sched(Config);
  Sched.fleet().registerWorkloads();
  std::fprintf(stderr, "fleet up: %u workers, %zu workloads, store %s\n",
               Workers, workloads::workloadNames().size(),
               StorePath.empty() ? "(cold)"
               : Sched.fleet().storeLoaded()
                   ? (StorePath + " (warm)").c_str()
                   : (StorePath + " (FAILED TO LOAD, serving cold)").c_str());

  int Rc = 0;
#ifndef _WIN32
  installShutdownHandlers();
  if (Port)
    Rc = serveTcp(Sched, Port);
  else
#endif
    serveStream(Sched, stdin, stdout);

  // Graceful exit, signal or EOF alike: every admitted request executes
  // before the process goes away (FinishQueued drain).
  Sched.shutdown(/*FinishQueued=*/true);
  if (ShutdownRequested)
    std::fprintf(stderr, "signal: drained queued requests, exiting\n");
  return Rc;
}
