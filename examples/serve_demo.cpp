//===- examples/serve_demo.cpp - Line-oriented fleet service front end ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin front end over the in-process fleet service: one line in, one
/// line out. The scheduler itself is a library (src/serve/); this demo
/// only parses lines and prints responses, from stdin by default or from
/// a TCP socket with --port.
///
///   serve_demo [--store <path>] [--workers N] [--port P]
///   serve_demo --seed <path>        build a warm store, then exit
///
/// Protocol (one request per line, blank-separated fields):
///
///   run <workload> [tenant=<t>] [max_insts=<n>] [deadline_us=<n>]
///   stats
///   quit
///
/// Responses:
///
///   ok <checksum-hex> insts=<n> wall_us=<n> worker=<n>
///   err <status> <detail>
///
/// Example session:
///
///   $ build/examples/serve_demo --store warm.tstore --workers 4
///   run gzip
///   ok 1f9a... insts=2755561 wall_us=10234 worker=0
///   run mcf deadline_us=100
///   err deadline wall-deadline
///
//===----------------------------------------------------------------------===//

#include "serve/ExecutionScheduler.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::serve;

namespace {

/// Serves one parsed line; returns the response line (without newline),
/// or an empty string for "quit".
std::string serveLine(ExecutionScheduler &Sched, const std::string &Line) {
  std::istringstream In(Line);
  std::string Cmd;
  In >> Cmd;
  if (Cmd.empty() || Cmd[0] == '#')
    return "# comment";
  if (Cmd == "quit" || Cmd == "exit")
    return "";
  if (Cmd == "stats") {
    std::string Out;
    for (const auto &[Name, Value] : Sched.fleet().stats().getWithPrefix(""))
      Out += Name + "=" + std::to_string(Value) + " ";
    return Out.empty() ? "(no stats)" : Out;
  }
  if (Cmd == "help" || Cmd != "run")
    return "err bad-command usage: run <workload> [tenant=t] [max_insts=n] "
           "[deadline_us=n] | stats | quit";

  ExecRequest Req;
  In >> Req.Workload;
  if (Req.Workload.empty())
    return "err bad-command missing workload name";
  std::string Opt;
  while (In >> Opt) {
    size_t Eq = Opt.find('=');
    std::string Key = Opt.substr(0, Eq);
    std::string Val = Eq == std::string::npos ? "" : Opt.substr(Eq + 1);
    if (Key == "tenant")
      Req.Tenant = Val;
    else if (Key == "max_insts")
      Req.MaxGuestInsts = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "deadline_us")
      Req.DeadlineMicros = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "cache_bytes")
      Req.CodeCacheBytes = std::strtoull(Val.c_str(), nullptr, 0);
    else
      return "err bad-command unknown option " + Key;
  }

  ExecResponse Resp = Sched.submit(std::move(Req)).get();
  if (!Resp.ok())
    return std::string("err ") + getExecStatusName(Resp.Status) + " " +
           Resp.Detail;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "ok %llx insts=%llu wall_us=%.0f worker=%u",
                (unsigned long long)Resp.Checksum,
                (unsigned long long)Resp.GuestInsts, Resp.WallMicros,
                Resp.Worker);
  return Buf;
}

void serveStream(ExecutionScheduler &Sched, FILE *In, FILE *Out) {
  char LineBuf[4096];
  while (std::fgets(LineBuf, sizeof(LineBuf), In)) {
    std::string Line(LineBuf);
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    std::string Resp = serveLine(Sched, Line);
    if (Resp.empty())
      break;
    std::fprintf(Out, "%s\n", Resp.c_str());
    std::fflush(Out);
  }
}

int seedStore(const std::string &Path) {
  std::remove(Path.c_str());
  for (const std::string &W : workloads::workloadNames()) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    vm::VmConfig Config;
    Config.PersistPath = Path;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    if (Vm.run().Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "%s: seeding run did not halt\n", W.c_str());
      return 1;
    }
  }
  std::printf("seeded %zu workload images into %s\n",
              workloads::workloadNames().size(), Path.c_str());
  return 0;
}

#ifndef _WIN32
int serveTcp(ExecutionScheduler &Sched, unsigned Port) {
  int Listener = socket(AF_INET, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::perror("socket");
    return 1;
  }
  int One = 1;
  setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(uint16_t(Port));
  if (bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Listener, 4) < 0) {
    std::perror("bind/listen");
    close(Listener);
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (one client at a time; "
              "\"quit\" ends a session, Ctrl-C the server)\n",
              Port);
  for (;;) {
    int Client = accept(Listener, nullptr, nullptr);
    if (Client < 0)
      continue;
    FILE *In = fdopen(Client, "r");
    FILE *Out = fdopen(dup(Client), "w");
    if (In && Out)
      serveStream(Sched, In, Out);
    if (In)
      fclose(In);
    if (Out)
      fclose(Out);
  }
}
#endif

} // namespace

int main(int argc, char **argv) {
  std::string StorePath, SeedPath;
  unsigned Workers = 2, Port = 0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--store" && Next())
      StorePath = argv[I];
    else if (Arg == "--seed" && Next())
      SeedPath = argv[I];
    else if (Arg == "--workers" && Next())
      Workers = unsigned(std::strtoul(argv[I], nullptr, 0));
    else if (Arg == "--port" && Next())
      Port = unsigned(std::strtoul(argv[I], nullptr, 0));
    else {
      std::fprintf(stderr,
                   "usage: %s [--store <path>] [--workers N] [--port P]\n"
                   "       %s --seed <path>\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (!SeedPath.empty())
    return seedStore(SeedPath);

  FleetConfig Config;
  Config.Workers = Workers;
  Config.StorePath = StorePath;
  ExecutionScheduler Sched(Config);
  Sched.fleet().registerWorkloads();
  std::fprintf(stderr, "fleet up: %u workers, %zu workloads, store %s\n",
               Workers, workloads::workloadNames().size(),
               StorePath.empty() ? "(cold)"
               : Sched.fleet().storeLoaded()
                   ? (StorePath + " (warm)").c_str()
                   : (StorePath + " (FAILED TO LOAD, serving cold)").c_str());

#ifndef _WIN32
  if (Port)
    return serveTcp(Sched, Port);
#endif
  serveStream(Sched, stdin, stdout);
  return 0;
}
