//===- examples/trap_recovery.cpp - Precise trap demonstration ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates Section 2.2's precise trap machinery end to end: a hot
/// loop walks off its mapped buffer deep inside translated code, and the
/// VM reconstructs the exact V-ISA architected state at the fault — the
/// trapping instruction's address via the PEI side table, and register
/// values held only in accumulators via the table's accumulator map
/// (basic ISA) or the shadow register file (modified ISA).
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "vm/VirtualMachine.h"

#include <cstdio>

using namespace ildp;
using Op = alpha::Opcode;

namespace {

/// A loop that faults after 1024 iterations — long after translation.
void buildProgram(GuestMemory &Mem, uint64_t &Entry) {
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20000);
  Asm.loadImm(17, 4000);
  Asm.movi(0, 9);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.operatei(Op::ADDQ, 9, 3, 2);  // locals live in accumulators...
  Asm.operatei(Op::SLL, 2, 2, 3);
  Asm.ldq(4, 0, 16);                // ...when this load eventually faults
  Asm.operate(Op::XOR, 3, 4, 5);
  Asm.operate(Op::ADDQ, 9, 5, 9);
  Asm.lda(16, 8, 16);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Entry = 0x10000;
  Mem.mapRegion(0x20000, 0x2000); // Only 8KB: iteration 1024 faults.
  for (unsigned I = 0; I != 1024; ++I)
    Mem.poke64(0x20000 + I * 8, I * 0x9E3779B97F4A7C15ull);
}

} // namespace

int main() {
  // Reference: the interpreter's precise state at the fault.
  GuestMemory RefMem;
  uint64_t Entry = 0;
  buildProgram(RefMem, Entry);
  Interpreter Ref(RefMem);
  Ref.state().Pc = Entry;
  StepInfo Last = Ref.run(1'000'000);
  if (Last.Status != StepStatus::Trapped) {
    std::fprintf(stderr, "expected a trap\n");
    return 1;
  }
  std::printf("interpreter reference: %s at V-PC 0x%llx, address 0x%llx "
              "(after %llu insts)\n",
              Last.TrapInfo.Kind == TrapKind::MemUnmapped ? "unmapped load"
                                                          : "trap",
              (unsigned long long)Last.TrapInfo.Pc,
              (unsigned long long)Last.TrapInfo.MemAddr,
              (unsigned long long)Ref.retiredCount());

  for (const char *Name : {"basic", "modified"}) {
    GuestMemory Mem;
    uint64_t E = 0;
    buildProgram(Mem, E);
    vm::VmConfig Config;
    Config.Dbt.Variant = Name[0] == 'b' ? iisa::IsaVariant::Basic
                                        : iisa::IsaVariant::Modified;
    vm::VirtualMachine Vm(Mem, E, Config);
    vm::RunResult Result = Vm.run();
    if (Result.Reason != vm::StopReason::Trapped) {
      std::fprintf(stderr, "%s: expected a trap from translated code\n",
                   Name);
      return 1;
    }
    bool FromTranslated = Vm.stats().get("exit.trap") > 0;
    bool PcMatch = Result.Trap.TrapInfo.Pc == Last.TrapInfo.Pc;
    bool AddrMatch = Result.Trap.TrapInfo.MemAddr == Last.TrapInfo.MemAddr;
    unsigned Mismatches = 0;
    for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
      Mismatches += Result.Trap.Arch.readGpr(Reg) != Ref.state().readGpr(Reg);

    std::printf("\n== %s ISA ==\n", Name);
    std::printf("trap raised from %s code\n",
                FromTranslated ? "translated" : "interpreted");
    std::printf("recovered V-PC: 0x%llx (%s), faulting address 0x%llx "
                "(%s)\n",
                (unsigned long long)Result.Trap.TrapInfo.Pc,
                PcMatch ? "exact" : "WRONG",
                (unsigned long long)Result.Trap.TrapInfo.MemAddr,
                AddrMatch ? "exact" : "WRONG");
    std::printf("architected registers: %u of 32 mismatched%s\n", Mismatches,
                Mismatches == 0 ? " — precise recovery" : " (bug!)");
    if (!FromTranslated || !PcMatch || !AddrMatch || Mismatches)
      return 1;
  }
  std::printf("\nprecise traps recovered identically under both "
              "accumulator ISAs.\n");
  return 0;
}
