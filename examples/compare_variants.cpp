//===- examples/compare_variants.cpp - ISA/machine comparison matrix ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one workload across the paper's whole design space and prints an
/// IPC matrix: both accumulator I-ISA variants on the ILDP machine (4 and
/// 8 PEs), the straightening-only DBT on the reference superscalar, and
/// the original (no-VM) binary on the same superscalar. The one-screen
/// version of the paper's Figure 8 discussion for a single workload.
///
/// Usage: compare_variants [workload] [scale]
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "support/TablePrinter.h"
#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace ildp;

namespace {

struct RowResult {
  double VIpc = 0;       ///< V-ISA instructions per cycle.
  double NativeIpc = 0;  ///< Machine-level (I-ISA or Alpha) IPC.
  uint64_t Fragments = 0;
  bool ChecksumOk = false;
};

/// Runs \p Name under the co-designed VM with \p Variant on \p Model.
RowResult runVm(const std::string &Name, unsigned Scale,
                iisa::IsaVariant Variant, uarch::TimingModel &Model,
                const uarch::PipelineStats &Pipe, uint64_t RefChecksum) {
  GuestMemory Mem;
  workloads::WorkloadImage Image = workloads::buildWorkload(Name, Mem, Scale);
  vm::VmConfig Config;
  Config.Dbt.Variant = Variant;
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  Vm.setTimingModel(&Model);
  vm::RunResult Result = Vm.run();
  Model.finish();
  RowResult Row;
  if (Result.Reason != vm::StopReason::Halted)
    return Row;
  Row.VIpc = Pipe.ipc();
  Row.NativeIpc = Pipe.nativeIpc();
  Row.Fragments = Vm.stats().get("tcache.fragments");
  Row.ChecksumOk =
      Vm.interpreter().state().readGpr(alpha::RegV0) == RefChecksum;
  return Row;
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gzip";
  int ScaleArg = argc > 2 ? std::atoi(argv[2]) : 1;
  unsigned Scale = ScaleArg >= 1 ? unsigned(ScaleArg) : 1;
  bool Known = false;
  for (const std::string &W : workloads::workloadNames())
    Known |= W == Name;
  if (!Known) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name.c_str());
    for (const std::string &W : workloads::workloadNames())
      std::fprintf(stderr, " %s", W.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  // Reference interpreter run: instruction count and result checksum.
  uint64_t RefChecksum = 0;
  uint64_t RefInsts = 0;
  {
    GuestMemory Mem;
    workloads::WorkloadImage Image = workloads::buildWorkload(Name, Mem, Scale);
    Interpreter Ref(Mem);
    Ref.state().Pc = Image.EntryPc;
    if (Ref.run(1'000'000'000).Status != StepStatus::Halted) {
      std::fprintf(stderr, "reference run did not halt cleanly\n");
      return 1;
    }
    RefChecksum = Ref.state().readGpr(alpha::RegV0);
    RefInsts = Ref.retiredCount();
  }
  std::printf("workload %s (scale %u): %llu V-ISA instructions, "
              "checksum 0x%016llx\n\n",
              Name.c_str(), Scale, (unsigned long long)RefInsts,
              (unsigned long long)RefChecksum);

  TablePrinter Table({"configuration", "machine", "v-ipc", "native ipc",
                      "fragments", "checksum"});
  auto AddRow = [&](const char *Config, const char *Machine,
                    const RowResult &Row) {
    Table.beginRow();
    Table.cell(Config);
    Table.cell(Machine);
    Table.cellFloat(Row.VIpc, 3);
    Table.cellFloat(Row.NativeIpc, 3);
    Table.cellInt(int64_t(Row.Fragments));
    Table.cell(Row.ChecksumOk ? "ok" : "MISMATCH");
  };

  // Accumulator variants on the ILDP machine, 8 and 4 PEs.
  for (unsigned Pes : {8u, 4u}) {
    uarch::IldpParams Params;
    Params.NumPEs = Pes;
    char Machine[32];
    std::snprintf(Machine, sizeof(Machine), "ILDP %u-PE", Pes);
    for (iisa::IsaVariant Variant :
         {iisa::IsaVariant::Modified, iisa::IsaVariant::Basic}) {
      uarch::IldpModel Model(Params);
      const char *Config = Variant == iisa::IsaVariant::Modified
                               ? "VM, modified I-ISA"
                               : "VM, basic I-ISA";
      AddRow(Config, Machine,
             runVm(Name, Scale, Variant, Model, Model.stats(), RefChecksum));
    }
  }

  // Straightening-only DBT on the reference superscalar.
  {
    uarch::SuperscalarParams Params;
    uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/false);
    AddRow("VM, straightened Alpha", "superscalar",
           runVm(Name, Scale, iisa::IsaVariant::Straight, Model, Model.stats(),
                 RefChecksum));
  }

  // Original binary, no VM, hardware RAS enabled.
  {
    GuestMemory Mem;
    workloads::WorkloadImage Image = workloads::buildWorkload(Name, Mem, Scale);
    uarch::SuperscalarParams Params;
    uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/true);
    StepStatus Status =
        vm::runOriginal(Mem, Image.EntryPc, &Model, 1'000'000'000ull);
    Model.finish();
    RowResult Row;
    Row.ChecksumOk = Status == StepStatus::Halted;
    Row.VIpc = Model.stats().ipc();
    Row.NativeIpc = Model.stats().nativeIpc();
    AddRow("original (no VM)", "superscalar", Row);
  }

  Table.print();
  std::printf("\nv-ipc counts Alpha instructions per cycle (the paper's "
              "metric);\nnative ipc counts what the machine actually "
              "executed (I-ISA\ninstructions under the VM).\n");
  return 0;
}
