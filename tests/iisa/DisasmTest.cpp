//===- tests/iisa/DisasmTest.cpp ------------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Disasm.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

TEST(IisaDisasm, Fig2Notation) {
  IisaInst Load;
  Load.Kind = IKind::Load;
  Load.AlphaOp = Opcode::LDBU;
  Load.B = IOperand::gpr(16);
  Load.DestAcc = 0;
  EXPECT_EQ(disassemble(Load), "A0 <- mem[R16]");

  Load.DestGpr = 3;
  EXPECT_EQ(disassemble(Load), "R3 (A0) <- mem[R16]");

  IisaInst Sub;
  Sub.Kind = IKind::Compute;
  Sub.AlphaOp = Opcode::SUBL;
  Sub.A = IOperand::gpr(17);
  Sub.B = IOperand::imm(1);
  Sub.DestAcc = 1;
  Sub.DestGpr = 17;
  EXPECT_EQ(disassemble(Sub), "R17 (A1) <- R17 - 1");

  IisaInst Xor;
  Xor.Kind = IKind::Compute;
  Xor.AlphaOp = Opcode::XOR;
  Xor.A = IOperand::acc(0);
  Xor.B = IOperand::gpr(1);
  Xor.DestAcc = 0;
  EXPECT_EQ(disassemble(Xor), "A0 <- A0 xor R1");

  IisaInst S8;
  S8.Kind = IKind::Compute;
  S8.AlphaOp = Opcode::S8ADDQ;
  S8.A = IOperand::acc(0);
  S8.B = IOperand::gpr(0);
  S8.DestAcc = 0;
  EXPECT_EQ(disassemble(S8), "A0 <- 8*A0 + R0");
}

TEST(IisaDisasm, CopiesAndControl) {
  IisaInst To;
  To.Kind = IKind::CopyToGpr;
  To.A = IOperand::acc(1);
  To.DestGpr = 17;
  EXPECT_EQ(disassemble(To), "R17 <- A1");

  IisaInst Cond;
  Cond.Kind = IKind::CondExit;
  Cond.AlphaOp = Opcode::BNE;
  Cond.A = IOperand::acc(1);
  Cond.VTarget = 0x1000;
  EXPECT_EQ(disassemble(Cond), "P <- 0x1000, if (A1 != 0)");
  Cond.ToTranslator = true;
  EXPECT_EQ(disassemble(Cond), "P <- 0x1000, if (A1 != 0) [translator]");

  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = 0x2000;
  EXPECT_EQ(disassemble(Br), "P <- 0x2000");
}

TEST(IisaDisasm, SpecialForms) {
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = 0xAB;
  EXPECT_EQ(disassemble(Vpc), "VPC <- 0xab");

  IisaInst Ret;
  Ret.Kind = IKind::ReturnDual;
  Ret.B = IOperand::gpr(26);
  EXPECT_EQ(disassemble(Ret), "P <- ras (R26)");

  IisaInst Halt;
  Halt.Kind = IKind::Halt;
  EXPECT_EQ(disassemble(Halt), "halt");
}
