//===- tests/iisa/ExecutorTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Executor.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

namespace {

IisaInst compute(Opcode Op, IOperand A, IOperand B, uint8_t Acc,
                 uint8_t Gpr = NoReg) {
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Op;
  I.A = A;
  I.B = B;
  I.DestAcc = Acc;
  I.DestGpr = Gpr;
  return I;
}

IisaInst branchTo(uint64_t Target) {
  IisaInst I;
  I.Kind = IKind::Branch;
  I.VTarget = Target;
  return I;
}

} // namespace

TEST(IisaExecutor, ComputeWritesAccAndGpr) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(1, 40);
  std::vector<IisaInst> Body = {
      compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(2), 0, 5),
      branchTo(0x2000),
  };
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Chained);
  EXPECT_EQ(Exit.VTarget, 0x2000u);
  EXPECT_EQ(S.Acc[0], 42u);
  EXPECT_EQ(S.readGpr(5), 42u);
}

TEST(IisaExecutor, BasicStyleCopies) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(17, 7);
  std::vector<IisaInst> Body;
  {
    IisaInst From;
    From.Kind = IKind::CopyFromGpr;
    From.A = IOperand::gpr(17);
    From.DestAcc = 1;
    Body.push_back(From);
  }
  Body.push_back(
      compute(Opcode::SUBQ, IOperand::acc(1), IOperand::imm(1), 1));
  {
    IisaInst To;
    To.Kind = IKind::CopyToGpr;
    To.A = IOperand::acc(1);
    To.DestGpr = 17;
    Body.push_back(To);
  }
  Body.push_back(branchTo(0));
  execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.readGpr(17), 6u);
}

TEST(IisaExecutor, LoadStoreWithEvents) {
  GuestMemory Mem;
  Mem.mapRegion(0x1000, 0x100);
  Mem.poke64(0x1008, 0xABCD);
  IExecState S;
  S.writeGpr(16, 0x1008);
  std::vector<IisaInst> Body;
  {
    IisaInst L;
    L.Kind = IKind::Load;
    L.AlphaOp = Opcode::LDQ;
    L.B = IOperand::gpr(16);
    L.DestAcc = 0;
    Body.push_back(L);
  }
  {
    IisaInst St;
    St.Kind = IKind::Store;
    St.AlphaOp = Opcode::STL;
    St.A = IOperand::acc(0);
    St.B = IOperand::gpr(16);
    St.MemDisp = 16;
    Body.push_back(St);
  }
  Body.push_back(branchTo(0));
  std::vector<IisaEvent> Events;
  execute(Body.data(), Body.size(), S, Mem, &Events);
  EXPECT_EQ(S.Acc[0], 0xABCDu);
  EXPECT_EQ(Mem.load(0x1018, 4).Value, 0xABCDu);
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].MemAddr, 0x1008u);
  EXPECT_EQ(Events[1].MemAddr, 0x1018u);
}

TEST(IisaExecutor, LoadFaultReportsTrap) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(16, 0x5000); // unmapped
  std::vector<IisaInst> Body;
  IisaInst L;
  L.Kind = IKind::Load;
  L.AlphaOp = Opcode::LDQ;
  L.B = IOperand::gpr(16);
  L.DestAcc = 0;
  Body.push_back(L);
  Body.push_back(branchTo(0));
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Trap);
  EXPECT_EQ(Exit.InstIndex, 0u);
  EXPECT_EQ(Exit.TrapInfo.Kind, TrapKind::MemUnmapped);
  EXPECT_EQ(Exit.TrapInfo.MemAddr, 0x5000u);
  EXPECT_EQ(S.Acc[0], 0u); // The faulting load must not write.
}

TEST(IisaExecutor, CondExitBothWays) {
  GuestMemory Mem;
  IExecState S;
  std::vector<IisaInst> Body;
  IisaInst Cond;
  Cond.Kind = IKind::CondExit;
  Cond.AlphaOp = Opcode::BNE;
  Cond.A = IOperand::acc(1);
  Cond.VTarget = 0x111;
  Body.push_back(Cond);
  Body.push_back(branchTo(0x222));

  S.Acc[1] = 1; // taken
  std::vector<IisaEvent> Events;
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, &Events);
  EXPECT_EQ(Exit.K, IExit::Kind::Chained);
  EXPECT_EQ(Exit.VTarget, 0x111u);
  EXPECT_TRUE(Events[0].Taken);

  S.Acc[1] = 0; // fall through
  Events.clear();
  Exit = execute(Body.data(), Body.size(), S, Mem, &Events);
  EXPECT_EQ(Exit.VTarget, 0x222u);
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_FALSE(Events[0].Taken);
}

TEST(IisaExecutor, SpecialInstructions) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(27, 0x4000);
  std::vector<IisaInst> Body;
  {
    IisaInst Vpc;
    Vpc.Kind = IKind::SetVpcBase;
    Vpc.VTarget = 0x1234;
    Body.push_back(Vpc);
  }
  {
    IisaInst Save;
    Save.Kind = IKind::SaveRetAddr;
    Save.DestGpr = 26;
    Save.VTarget = 0x1010;
    Body.push_back(Save);
  }
  {
    IisaInst Emb;
    Emb.Kind = IKind::LoadEmbTarget;
    Emb.DestAcc = 0;
    Emb.VTarget = 0x4000;
    Body.push_back(Emb);
  }
  Body.push_back(
      compute(Opcode::CMPEQ, IOperand::acc(0), IOperand::gpr(27), 0));
  {
    IisaInst Jump;
    Jump.Kind = IKind::JumpPredict;
    Jump.A = IOperand::acc(0);
    Jump.B = IOperand::gpr(27);
    Jump.VTarget = 0x4000;
    Body.push_back(Jump);
  }
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.VpcBase, 0x1234u);
  EXPECT_EQ(S.readGpr(26), 0x1010u);
  EXPECT_EQ(Exit.K, IExit::Kind::PredictHit);
  EXPECT_EQ(Exit.VTarget, 0x4000u);

  // Now with a different actual target: prediction misses.
  S.writeGpr(27, 0x8000);
  Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::PredictMiss);
  EXPECT_EQ(Exit.VTarget, 0x8000u);
}

TEST(IisaExecutor, ReturnAndDispatchExits) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(26, 0x9001); // low bits cleared on use
  std::vector<IisaInst> Body;
  IisaInst Ret;
  Ret.Kind = IKind::ReturnDual;
  Ret.B = IOperand::gpr(26);
  Body.push_back(Ret);
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Return);
  EXPECT_EQ(Exit.VTarget, 0x9000u);

  Body.clear();
  IisaInst Jd;
  Jd.Kind = IKind::JumpDispatch;
  Jd.B = IOperand::gpr(26);
  Body.push_back(Jd);
  Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Dispatch);
}

TEST(IisaExecutor, CmovMaskSemantics) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(1, 0);
  std::vector<IisaInst> Body;
  IisaInst Mask;
  Mask.Kind = IKind::CmovMask;
  Mask.AlphaOp = Opcode::CMOVEQ;
  Mask.A = IOperand::gpr(1);
  Mask.DestAcc = 2;
  Body.push_back(Mask);
  Body.push_back(branchTo(0));
  execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.Acc[2], ~uint64_t(0));

  S.writeGpr(1, 5);
  execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.Acc[2], 0u);
}

TEST(IisaExecutor, StraightCondMove) {
  GuestMemory Mem;
  IExecState S;
  S.writeGpr(1, 0);  // condition true for CMOVEQ
  S.writeGpr(2, 77);
  S.writeGpr(3, 11); // old value
  std::vector<IisaInst> Body;
  IisaInst Cmov;
  Cmov.Kind = IKind::Compute;
  Cmov.AlphaOp = Opcode::CMOVEQ;
  Cmov.A = IOperand::gpr(1);
  Cmov.B = IOperand::gpr(2);
  Cmov.DestGpr = 3;
  Body.push_back(Cmov);
  Body.push_back(branchTo(0));
  execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.readGpr(3), 77u);

  S.writeGpr(1, 9); // condition false: keep old
  S.writeGpr(3, 11);
  execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(S.readGpr(3), 11u);
}

TEST(IisaExecutor, ArchStateRoundTrip) {
  IExecState S;
  ArchState A;
  for (unsigned R = 0; R != 31; ++R)
    A.writeGpr(R, R * 3 + 1);
  S.loadArchState(A);
  S.writeGpr(40, 999); // scratch, not architected
  ArchState Out = S.toArchState();
  EXPECT_EQ(Out.Gpr, A.Gpr);
}

TEST(IisaExecutor, GentrapAndHalt) {
  GuestMemory Mem;
  IExecState S;
  std::vector<IisaInst> Body;
  IisaInst G;
  G.Kind = IKind::Gentrap;
  Body.push_back(G);
  IExit Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Trap);
  EXPECT_EQ(Exit.TrapInfo.Kind, TrapKind::Gentrap);

  Body.clear();
  IisaInst H;
  H.Kind = IKind::Halt;
  Body.push_back(H);
  Exit = execute(Body.data(), Body.size(), S, Mem, nullptr);
  EXPECT_EQ(Exit.K, IExit::Kind::Halt);
}
