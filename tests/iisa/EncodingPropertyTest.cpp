//===- tests/iisa/EncodingPropertyTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Properties of the 16/32/48-bit I-ISA encoding-size model (paper
/// Section 3.3): fixed-size formats, the short-immediate and
/// register-field-sharing rules that let the common accumulator forms fit
/// 16 bits, and monotonicity under operand widening.
///
//===----------------------------------------------------------------------===//

#include "iisa/Encoding.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;

namespace {

IisaInst computeAccOnly() {
  IisaInst Inst;
  Inst.Kind = IKind::Compute;
  Inst.A = IOperand::acc(0);
  Inst.DestAcc = 0;
  return Inst;
}

} // namespace

TEST(EncodingProperty, EmbeddedAddressFormatsAreAlways48Bits) {
  for (IKind Kind : {IKind::SetVpcBase, IKind::SaveRetAddr,
                     IKind::LoadEmbTarget, IKind::PushDualRas}) {
    IisaInst Inst;
    Inst.Kind = Kind;
    Inst.VTarget = 0x10000;
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 6u);
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Modified), 6u);
  }
}

TEST(EncodingProperty, FragmentExitsCarry32BitDisplacements) {
  for (IKind Kind : {IKind::CondExit, IKind::Branch, IKind::JumpPredict}) {
    IisaInst Inst;
    Inst.Kind = Kind;
    Inst.VTarget = 0x10000;
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Modified), 4u);
  }
}

TEST(EncodingProperty, RegisterIndirectAndPalFormsAre16Bits) {
  for (IKind Kind :
       {IKind::JumpDispatch, IKind::ReturnDual, IKind::Halt, IKind::Gentrap}) {
    IisaInst Inst;
    Inst.Kind = Kind;
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Modified), 2u);
  }
}

TEST(EncodingProperty, AccumulatorOnlyComputeFits16Bits) {
  // "A0 <- A0 srl 8"-style strand-internal instructions are the 16-bit
  // common case the ISA is designed around.
  IisaInst Inst = computeAccOnly();
  Inst.B = IOperand::imm(7); // Largest short immediate.
  EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 2u);
}

TEST(EncodingProperty, ShortImmediateBoundaryIsUnsigned3Bits) {
  IisaInst Inst = computeAccOnly();
  // 0..7 fit the 16-bit format's short immediate field.
  for (int64_t Imm : {0, 1, 7}) {
    Inst.B = IOperand::imm(Imm);
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 2u) << "imm " << Imm;
  }
  // 8, and any negative value, force the 32-bit format.
  for (int64_t Imm : {int64_t(8), int64_t(255), int64_t(-1), int64_t(32767),
                      int64_t(-32768)}) {
    Inst.B = IOperand::imm(Imm);
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 4u) << "imm " << Imm;
  }
  // Beyond 16 signed bits the 48-bit format is required.
  for (int64_t Imm : {int64_t(32768), int64_t(-32769), int64_t(1) << 30}) {
    Inst.B = IOperand::imm(Imm);
    EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 6u) << "imm " << Imm;
  }
}

TEST(EncodingProperty, MemoryDisplacementUsesTheSameImmediateRules) {
  IisaInst Load;
  Load.Kind = IKind::Load;
  Load.B = IOperand::acc(1); // Address in an accumulator.
  Load.DestAcc = 1;
  Load.MemDisp = 0;
  EXPECT_EQ(encodedSize(Load, IsaVariant::Basic), 2u);
  Load.MemDisp = 4;
  EXPECT_EQ(encodedSize(Load, IsaVariant::Basic), 2u);
  Load.MemDisp = -8;
  EXPECT_EQ(encodedSize(Load, IsaVariant::Basic), 4u);
  Load.MemDisp = 100000;
  EXPECT_EQ(encodedSize(Load, IsaVariant::Basic), 6u);
}

TEST(EncodingProperty, InPlaceGprFormSharesTheRegisterField) {
  // Modified-ISA "R17 (A1) <- R17 - 1": source and destination GPR are the
  // same architectural register, so one field serves both and the
  // instruction still fits 16 bits.
  IisaInst InPlace;
  InPlace.Kind = IKind::Compute;
  InPlace.A = IOperand::gpr(17);
  InPlace.B = IOperand::imm(1);
  InPlace.DestAcc = 1;
  InPlace.DestGpr = 17;
  EXPECT_EQ(encodedSize(InPlace, IsaVariant::Modified), 2u);

  // A different destination GPR needs its own field: 32 bits.
  InPlace.DestGpr = 18;
  EXPECT_EQ(encodedSize(InPlace, IsaVariant::Modified), 4u);
}

TEST(EncodingProperty, TwoDistinctGprReadsNeed32Bits) {
  IisaInst Inst;
  Inst.Kind = IKind::Compute;
  Inst.A = IOperand::gpr(1);
  Inst.B = IOperand::gpr(2);
  Inst.DestAcc = 0;
  EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 4u);
  // Collapsing to one distinct register restores the 16-bit form.
  Inst.B = IOperand::gpr(1);
  EXPECT_EQ(encodedSize(Inst, IsaVariant::Basic), 2u);
}

TEST(EncodingProperty, CopiesAreCompact) {
  IisaInst ToGpr;
  ToGpr.Kind = IKind::CopyToGpr;
  ToGpr.A = IOperand::acc(2);
  ToGpr.DestGpr = 9;
  EXPECT_EQ(encodedSize(ToGpr, IsaVariant::Basic), 2u);

  IisaInst FromGpr;
  FromGpr.Kind = IKind::CopyFromGpr;
  FromGpr.A = IOperand::gpr(9);
  FromGpr.DestAcc = 2;
  EXPECT_EQ(encodedSize(FromGpr, IsaVariant::Basic), 2u);
}

TEST(EncodingProperty, AssignSizesFillsEveryInstruction) {
  std::vector<IisaInst> Body;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Body.push_back(Vpc);
  Body.push_back(computeAccOnly());
  IisaInst Exit;
  Exit.Kind = IKind::Branch;
  Body.push_back(Exit);
  assignSizes(Body.data(), Body.data() + Body.size(), IsaVariant::Modified);
  EXPECT_EQ(Body[0].SizeBytes, 6u);
  EXPECT_EQ(Body[1].SizeBytes, 2u);
  EXPECT_EQ(Body[2].SizeBytes, 4u);
}

TEST(EncodingProperty, RandomSweepSizesAreValidAndMonotone) {
  // For any random compute instruction: the size is one of {2, 4, 6}, and
  // widening it (adding a distinct GPR read, or growing the immediate)
  // never shrinks the encoding.
  Rng R(0xE11C0D1Ull);
  for (int Case = 0; Case != 500; ++Case) {
    IisaInst Inst;
    Inst.Kind = IKind::Compute;
    Inst.DestAcc = uint8_t(R.next() % 4);
    // First input: accumulator or GPR.
    if (R.next() % 2)
      Inst.A = IOperand::acc(uint8_t(R.next() % 4));
    else
      Inst.A = IOperand::gpr(uint8_t(R.next() % 32));
    // Second input: nothing, accumulator, GPR, or immediate.
    switch (R.next() % 4) {
    case 0:
      break;
    case 1:
      Inst.B = IOperand::acc(uint8_t(R.next() % 4));
      break;
    case 2:
      Inst.B = IOperand::gpr(uint8_t(R.next() % 32));
      break;
    case 3:
      Inst.B = IOperand::imm(int64_t(R.next() % 100000) - 50000);
      break;
    }
    unsigned Size = encodedSize(Inst, IsaVariant::Basic);
    ASSERT_TRUE(Size == 2 || Size == 4 || Size == 6) << "size " << Size;

    // Widen: replace a non-GPR second input with a fresh distinct GPR.
    if (!Inst.B.isGpr() && !Inst.B.isImm()) {
      IisaInst Wide = Inst;
      uint8_t Fresh = Inst.A.isGpr() ? uint8_t((Inst.A.Reg + 1) % 32) : 0;
      Wide.B = IOperand::gpr(Fresh);
      EXPECT_GE(encodedSize(Wide, IsaVariant::Basic), Size);
    }
    // Widen: grow any immediate past 16 bits.
    if (Inst.B.isImm()) {
      IisaInst Wide = Inst;
      Wide.B = IOperand::imm(1ll << 20);
      EXPECT_GE(encodedSize(Wide, IsaVariant::Basic), Size);
    }
  }
}
