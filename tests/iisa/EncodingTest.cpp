//===- tests/iisa/EncodingTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/Encoding.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

TEST(IisaEncoding, InPlaceComputeIs16Bit) {
  // A0 <- A0 and 0xff ... small immediates stay 16-bit only up to 3 bits.
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Opcode::AND;
  I.A = IOperand::acc(0);
  I.B = IOperand::imm(7);
  I.DestAcc = 0;
  EXPECT_EQ(encodedSize(I, IsaVariant::Basic), 2u);
  I.B = IOperand::imm(255);
  EXPECT_EQ(encodedSize(I, IsaVariant::Basic), 4u);
  I.B = IOperand::imm(100000);
  EXPECT_EQ(encodedSize(I, IsaVariant::Basic), 6u);
}

TEST(IisaEncoding, OneGprStays16Bit) {
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Opcode::XOR;
  I.A = IOperand::acc(0);
  I.B = IOperand::gpr(1);
  I.DestAcc = 0;
  EXPECT_EQ(encodedSize(I, IsaVariant::Basic), 2u);
}

TEST(IisaEncoding, ModifiedDestGprCosts32Bits) {
  // The Section 2.3 tradeoff: a distinct destination-GPR specifier pushes
  // one-GPR instructions from 16 to 32 bits...
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Opcode::XOR;
  I.A = IOperand::acc(0);
  I.B = IOperand::gpr(1);
  I.DestAcc = 0;
  I.DestGpr = 3;
  EXPECT_EQ(encodedSize(I, IsaVariant::Modified), 4u);
  // ...but the in-place form ("R1 (A0) <- A0 xor R1") shares the field.
  I.DestGpr = 1;
  EXPECT_EQ(encodedSize(I, IsaVariant::Modified), 2u);
}

TEST(IisaEncoding, CopiesAre16Bit) {
  IisaInst To;
  To.Kind = IKind::CopyToGpr;
  To.A = IOperand::acc(1);
  To.DestGpr = 17;
  EXPECT_EQ(encodedSize(To, IsaVariant::Basic), 2u);

  IisaInst From;
  From.Kind = IKind::CopyFromGpr;
  From.A = IOperand::gpr(16);
  From.DestAcc = 2;
  EXPECT_EQ(encodedSize(From, IsaVariant::Basic), 2u);
}

TEST(IisaEncoding, EmbeddedAddressFormats48Bit) {
  for (IKind K : {IKind::SetVpcBase, IKind::SaveRetAddr,
                  IKind::LoadEmbTarget, IKind::PushDualRas}) {
    IisaInst I;
    I.Kind = K;
    I.VTarget = 0x12345678;
    if (K == IKind::SaveRetAddr)
      I.DestGpr = 26;
    if (K == IKind::LoadEmbTarget)
      I.DestAcc = 0;
    EXPECT_EQ(encodedSize(I, IsaVariant::Basic), 6u);
  }
}

TEST(IisaEncoding, ControlTransfers) {
  IisaInst Cond;
  Cond.Kind = IKind::CondExit;
  Cond.AlphaOp = Opcode::BNE;
  Cond.A = IOperand::acc(1);
  EXPECT_EQ(encodedSize(Cond, IsaVariant::Basic), 4u);

  IisaInst Ret;
  Ret.Kind = IKind::ReturnDual;
  Ret.B = IOperand::gpr(26);
  EXPECT_EQ(encodedSize(Ret, IsaVariant::Basic), 2u);

  IisaInst Halt;
  Halt.Kind = IKind::Halt;
  EXPECT_EQ(encodedSize(Halt, IsaVariant::Basic), 2u);
}

TEST(IisaEncoding, AssignSizesFillsAll) {
  IisaInst Insts[2];
  Insts[0].Kind = IKind::SetVpcBase;
  Insts[1].Kind = IKind::Halt;
  assignSizes(Insts, Insts + 2, IsaVariant::Basic);
  EXPECT_EQ(Insts[0].SizeBytes, 6u);
  EXPECT_EQ(Insts[1].SizeBytes, 2u);
}
