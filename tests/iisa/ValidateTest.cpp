//===- tests/iisa/ValidateTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "iisa/IisaInst.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

namespace {

IisaInst compute(IOperand A, IOperand B, uint8_t Acc, uint8_t Gpr = NoReg) {
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Opcode::ADDQ;
  I.A = A;
  I.B = B;
  I.DestAcc = Acc;
  I.DestGpr = Gpr;
  return I;
}

} // namespace

TEST(IisaValidate, BasicAcceptsFig2Forms) {
  // A0 <- mem[R16]
  IisaInst Load;
  Load.Kind = IKind::Load;
  Load.AlphaOp = Opcode::LDBU;
  Load.B = IOperand::gpr(16);
  Load.DestAcc = 0;
  EXPECT_EQ(validate(Load, IsaVariant::Basic), "");

  // A0 <- A0 xor R1
  EXPECT_EQ(validate(compute(IOperand::acc(0), IOperand::gpr(1), 0),
                     IsaVariant::Basic),
            "");

  // R17 <- A1
  IisaInst Copy;
  Copy.Kind = IKind::CopyToGpr;
  Copy.A = IOperand::acc(1);
  Copy.DestGpr = 17;
  EXPECT_EQ(validate(Copy, IsaVariant::Basic), "");
}

TEST(IisaValidate, BasicRejectsTwoGprs) {
  EXPECT_NE(validate(compute(IOperand::gpr(1), IOperand::gpr(2), 0),
                     IsaVariant::Basic),
            "");
  // One source GPR plus a destination GPR also exceeds the basic limit.
  EXPECT_NE(validate(compute(IOperand::acc(0), IOperand::gpr(2), 0, 3),
                     IsaVariant::Basic),
            "");
}

TEST(IisaValidate, ModifiedAllowsDestGpr) {
  // R3 (A0) <- A0 xor R3
  EXPECT_EQ(validate(compute(IOperand::acc(0), IOperand::gpr(3), 0, 3),
                     IsaVariant::Modified),
            "");
  // But still only one source GPR.
  EXPECT_NE(validate(compute(IOperand::gpr(1), IOperand::gpr(2), 0, 3),
                     IsaVariant::Modified),
            "");
}

TEST(IisaValidate, TwoAccumulatorInputsRejected) {
  EXPECT_NE(validate(compute(IOperand::acc(0), IOperand::acc(1), 0),
                     IsaVariant::Basic),
            "");
  EXPECT_NE(validate(compute(IOperand::acc(0), IOperand::acc(1), 0, 3),
                     IsaVariant::Modified),
            "");
}

TEST(IisaValidate, StraightRejectsAccumulators) {
  EXPECT_NE(validate(compute(IOperand::acc(0), IOperand::gpr(2), 0),
                     IsaVariant::Straight),
            "");
  IisaInst I = compute(IOperand::gpr(1), IOperand::gpr(2), NoReg, 3);
  EXPECT_EQ(validate(I, IsaVariant::Straight), "");
}

TEST(IisaValidate, ScratchRegistersLegal) {
  IisaInst I = compute(IOperand::acc(0), IOperand::gpr(40), 0, 63);
  EXPECT_EQ(validate(I, IsaVariant::Modified), "");
  I.DestGpr = 64; // out of the 64-register file
  EXPECT_NE(validate(I, IsaVariant::Modified), "");
}

TEST(IisaValidate, KindShapeChecks) {
  IisaInst Store;
  Store.Kind = IKind::Store;
  Store.AlphaOp = Opcode::STQ;
  Store.A = IOperand::acc(0);
  Store.B = IOperand::gpr(16);
  EXPECT_EQ(validate(Store, IsaVariant::Basic), "");
  Store.DestAcc = 1;
  EXPECT_NE(validate(Store, IsaVariant::Basic), "");

  IisaInst Cond;
  Cond.Kind = IKind::CondExit;
  Cond.AlphaOp = Opcode::BNE;
  Cond.A = IOperand::acc(1);
  Cond.VTarget = 0x1000;
  EXPECT_EQ(validate(Cond, IsaVariant::Basic), "");
  Cond.AlphaOp = Opcode::ADDQ;
  EXPECT_NE(validate(Cond, IsaVariant::Basic), "");

  IisaInst Ret;
  Ret.Kind = IKind::ReturnDual;
  Ret.B = IOperand::gpr(26);
  EXPECT_EQ(validate(Ret, IsaVariant::Basic), "");
  Ret.B = IOperand::imm(5);
  EXPECT_NE(validate(Ret, IsaVariant::Basic), "");

  IisaInst Cmov;
  Cmov.Kind = IKind::Compute;
  Cmov.AlphaOp = Opcode::CMOVEQ;
  Cmov.A = IOperand::gpr(1);
  Cmov.B = IOperand::gpr(2);
  Cmov.DestGpr = 3;
  // Whole conditional moves only exist in the straightening backend.
  EXPECT_EQ(validate(Cmov, IsaVariant::Straight), "");
  Cmov.DestAcc = 0;
  Cmov.B = IOperand::imm(2);
  Cmov.A = IOperand::acc(0);
  EXPECT_NE(validate(Cmov, IsaVariant::Modified), "");
}
