//===- tests/iisa/ExecutorEventTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor's per-instruction event stream is what the VM feeds the
/// timing models (one TraceOp per event), so its contracts matter as much
/// as architected state: exactly one event per executed instruction, in
/// body order, with effective addresses on memory events and the taken
/// flag on conditional exits. Checked over translated fragments of real
/// recorded superblocks.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "iisa/Executor.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

constexpr uint64_t DataBase = 0x20000;

/// Assembles the Figure 2 loop, records one superblock, translates it
/// with \p Variant, and returns the fragment plus a fresh environment.
struct LoopEnv {
  dbt::Fragment Frag;
  GuestMemory Mem;
  iisa::IExecState State;
  uint64_t LoopHead = 0;
};

LoopEnv makeLoopFragment(iisa::IsaVariant Variant) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, int64_t(DataBase));
  Asm.loadImm(17, 8);
  Asm.loadImm(1, 0x1234);
  auto L1 = Asm.createLabel("l1");
  Asm.bind(L1);
  Asm.ldbu(3, 0, 16);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.lda(16, 1, 16);
  Asm.operate(Op::XOR, 1, 3, 3);
  Asm.stb(3, 64, 16);
  Asm.condBr(Op::BNE, 17, L1);
  Asm.halt();

  std::vector<uint32_t> Words = Asm.finalize();
  GuestMemory RecMem;
  for (size_t I = 0; I != Words.size(); ++I)
    RecMem.poke32(0x10000 + I * 4, Words[I]);
  RecMem.mapRegion(DataBase, 0x1000);

  Interpreter Interp(RecMem);
  Interp.state().Pc = 0x10000;
  uint64_t LoopHead = Asm.labelAddr(L1);
  while (Interp.state().Pc != LoopHead)
    Interp.step();
  iisa::IExecState Entry;
  Entry.loadArchState(Interp.state());

  dbt::SuperblockBuilder Builder(LoopHead, /*MaxInsts=*/200);
  while (Builder.append(Interp.step()) !=
         dbt::SuperblockBuilder::Status::Done) {
  }
  dbt::DbtConfig Config;
  Config.Variant = Variant;
  LoopEnv S;
  S.Frag = dbt::translate(Builder.take(), Config, dbt::ChainEnv()).take().Frag;
  for (size_t I = 0; I != Words.size(); ++I)
    S.Mem.poke32(0x10000 + I * 4, Words[I]);
  S.Mem.mapRegion(DataBase, 0x1000);
  S.State = Entry;
  S.LoopHead = LoopHead;
  return S;
}

} // namespace

class ExecutorEventTest
    : public ::testing::TestWithParam<iisa::IsaVariant> {};

TEST_P(ExecutorEventTest, OneOrderedEventPerExecutedInstruction) {
  LoopEnv S = makeLoopFragment(GetParam());
  std::vector<iisa::IisaEvent> Events;
  iisa::IExit Exit = iisa::execute(S.Frag.Body.data(), S.Frag.Body.size(),
                                   S.State, S.Mem, &Events);

  // The recorded loop-back is kept as a conditional chained exit to the
  // fragment's own entry (self-loop), with a fall-through exit after it;
  // a taken pass therefore executes exactly the instructions up to and
  // including that cond_exit — one event each, in body order.
  ASSERT_TRUE(Exit.K == iisa::IExit::Kind::Chained ||
              Exit.K == iisa::IExit::Kind::ToTranslator);
  EXPECT_EQ(Exit.VTarget, S.LoopHead);
  ASSERT_LT(size_t(Exit.InstIndex), S.Frag.Body.size());
  ASSERT_EQ(Events.size(), size_t(Exit.InstIndex) + 1);
  for (size_t I = 0; I != Events.size(); ++I)
    EXPECT_EQ(Events[I].Index, I);
  // The loop-back condition held on this pass.
  EXPECT_EQ(S.Frag.Body[Exit.InstIndex].Kind, iisa::IKind::CondExit);
  EXPECT_TRUE(Events.back().Taken);
}

TEST_P(ExecutorEventTest, MemoryEventsCarryEffectiveAddresses) {
  LoopEnv S = makeLoopFragment(GetParam());
  std::vector<iisa::IisaEvent> Events;
  (void)iisa::execute(S.Frag.Body.data(), S.Frag.Body.size(), S.State, S.Mem,
                      &Events);
  unsigned Loads = 0, Stores = 0;
  for (const iisa::IisaEvent &Ev : Events) {
    const iisa::IisaInst &Inst = S.Frag.Body[Ev.Index];
    if (Inst.Kind == iisa::IKind::Load) {
      ++Loads;
      EXPECT_EQ(Ev.MemAddr, DataBase + 0u); // ldbu 0[r16], first iteration.
    } else if (Inst.Kind == iisa::IKind::Store) {
      ++Stores;
      // stb 64[r16] after the lda increment: 0x20001 + 64.
      EXPECT_EQ(Ev.MemAddr, DataBase + 1 + 64);
    } else {
      EXPECT_EQ(Ev.MemAddr, 0u) << "non-memory event carries an address";
    }
  }
  EXPECT_EQ(Loads, 1u);
  EXPECT_EQ(Stores, 1u);
}

TEST_P(ExecutorEventTest, VCreditsOverEventsAccountForAllSourceInsts) {
  // The timing models credit V-ISA instructions through the events'
  // per-instruction VCredit annotations: over one full fragment pass the
  // credits must sum to the source instructions (NOPs excluded).
  LoopEnv S = makeLoopFragment(GetParam());
  std::vector<iisa::IisaEvent> Events;
  (void)iisa::execute(S.Frag.Body.data(), S.Frag.Body.size(), S.State, S.Mem,
                      &Events);
  uint64_t Credits = 0;
  for (const iisa::IisaEvent &Ev : Events)
    Credits += S.Frag.Body[Ev.Index].VCredit;
  EXPECT_EQ(Credits, S.Frag.SourceInsts - S.Frag.NopsRemoved);
}

TEST_P(ExecutorEventTest, SideExitReportsTakenAndTruncatesStream) {
  // Run the loop to its final iteration's state (r17 == 1): the
  // conditional exit (the reversed loop-back branch) fires, the event
  // stream ends at that instruction, and the event is marked taken.
  LoopEnv S = makeLoopFragment(GetParam());
  // First execute iterations until r17 would hit 0 on this pass.
  for (int Iter = 0; Iter != 7; ++Iter) {
    std::vector<iisa::IisaEvent> Events;
    iisa::IExit Exit = iisa::execute(S.Frag.Body.data(), S.Frag.Body.size(),
                                     S.State, S.Mem, &Events);
    ASSERT_EQ(Exit.VTarget, S.LoopHead) << "pass " << Iter;
  }
  std::vector<iisa::IisaEvent> Events;
  iisa::IExit Exit = iisa::execute(S.Frag.Body.data(), S.Frag.Body.size(),
                                   S.State, S.Mem, &Events);
  // r17 reached 0: the fall-through (to HALT's address) side wins. The
  // recorded path embedded the taken loop-back, so this pass leaves by a
  // different exit than before.
  ASSERT_FALSE(Events.empty());
  const iisa::IisaEvent &Last = Events.back();
  EXPECT_EQ(Last.Index, Exit.InstIndex);
  EXPECT_EQ(Events.size(), size_t(Exit.InstIndex) + 1)
      << "events continue past the exiting instruction";
  // Exit target differs from the loop head (we left the loop).
  EXPECT_NE(Exit.VTarget, S.LoopHead);
}

TEST_P(ExecutorEventTest, NullEventSinkIsSupported) {
  // The VM's fast functional runs pass no sink; behaviour must match.
  LoopEnv A = makeLoopFragment(GetParam());
  LoopEnv B = makeLoopFragment(GetParam());
  std::vector<iisa::IisaEvent> Events;
  iisa::IExit ExitA = iisa::execute(A.Frag.Body.data(), A.Frag.Body.size(),
                                    A.State, A.Mem, &Events);
  iisa::IExit ExitB = iisa::execute(B.Frag.Body.data(), B.Frag.Body.size(),
                                    B.State, B.Mem, nullptr);
  EXPECT_EQ(ExitA.K, ExitB.K);
  EXPECT_EQ(ExitA.VTarget, ExitB.VTarget);
  ArchState SA = A.State.toArchState();
  ArchState SB = B.State.toArchState();
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(SA.readGpr(Reg), SB.readGpr(Reg)) << "r" << Reg;
}

INSTANTIATE_TEST_SUITE_P(Variants, ExecutorEventTest,
                         ::testing::Values(iisa::IsaVariant::Basic,
                                           iisa::IsaVariant::Modified,
                                           iisa::IsaVariant::Straight),
                         [](const ::testing::TestParamInfo<iisa::IsaVariant>
                                &Info) {
                           switch (Info.param) {
                           case iisa::IsaVariant::Basic:
                             return "basic";
                           case iisa::IsaVariant::Modified:
                             return "modified";
                           case iisa::IsaVariant::Straight:
                             return "straight";
                           }
                           return "unknown";
                         });
