//===- tests/persist/VmWarmStartTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end warm-start behavior of the co-designed VM: a cold run saves
/// its translation cache; a warm run of the same image imports it, executes
/// with ZERO fragments translated, and reaches the same architected state.
/// Every failure mode — truncated file, flipped payload byte, configuration
/// or guest-image fingerprint mismatch — must fall back to a correct cold
/// run, counted under the right statistic, and never crash.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheFile.h"
#include "persist/Fingerprint.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace ildp;

namespace {

struct Outcome {
  uint64_t Checksum = 0;
  StatisticSet Stats;
};

Outcome runWorkload(const std::string &Name, const vm::VmConfig &Config) {
  GuestMemory Mem;
  workloads::WorkloadImage Image = workloads::buildWorkload(Name, Mem, 1);
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  EXPECT_EQ(Result.Reason, vm::StopReason::Halted);
  Outcome Out;
  Out.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  Out.Stats = Vm.stats();
  return Out;
}

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

void corruptByte(const std::string &Path, long FromEnd) {
  std::fstream F(Path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(F.good());
  F.seekg(0, std::ios::end);
  long Size = long(F.tellg());
  ASSERT_GT(Size, FromEnd);
  char Byte = 0;
  F.seekg(Size - FromEnd);
  F.read(&Byte, 1);
  Byte = char(Byte ^ 0x5A);
  F.seekp(Size - FromEnd);
  F.write(&Byte, 1);
}

void truncateFile(const std::string &Path, size_t Keep) {
  std::ifstream In(Path, std::ios::binary);
  std::vector<char> Bytes((std::istreambuf_iterator<char>(In)),
                          std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), Keep);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), std::streamsize(Keep));
}

} // namespace

TEST(VmWarmStart, WarmRunTranslatesNothingAndMatchesCold) {
  std::string Path = tempPath("warm.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  Outcome Cold = runWorkload("gzip", Config);
  EXPECT_EQ(Cold.Stats.get("persist.load_nofile"), 1u);
  EXPECT_EQ(Cold.Stats.get("persist.save_ok"), 1u);
  ASSERT_GT(Cold.Stats.get("dbt.fragments"), 0u);

  Outcome Warm = runWorkload("gzip", Config);
  EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Warm.Stats.get("persist.fragments_imported"),
            Cold.Stats.get("tcache.fragments"));
  // The whole point: zero translation work on the warm path.
  EXPECT_EQ(Warm.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Warm.Stats.get("dbt.cost.total"), 0u);
  // Same program, same answer, same resident cache.
  EXPECT_EQ(Warm.Checksum, Cold.Checksum);
  EXPECT_EQ(Warm.Stats.get("tcache.fragments"),
            Cold.Stats.get("tcache.fragments"));
  EXPECT_EQ(Warm.Stats.get("tcache.body_bytes"),
            Cold.Stats.get("tcache.body_bytes"));
  // Warm execution starts in translated code: the interpreter only runs
  // where the cold run also had to fall back to it.
  EXPECT_LE(Warm.Stats.get("interp.insts"), Cold.Stats.get("interp.insts"));
}

TEST(VmWarmStart, CorruptPayloadFallsBackToCorrectColdRun) {
  std::string Path = tempPath("corrupt.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  Outcome Cold = runWorkload("gzip", Config);
  corruptByte(Path, 16);

  Outcome Fallback = runWorkload("gzip", Config);
  EXPECT_EQ(Fallback.Stats.get("persist.load_corrupt"), 1u);
  EXPECT_EQ(Fallback.Stats.get("persist.load_ok"), 0u);
  EXPECT_EQ(Fallback.Stats.get("persist.fragments_imported"), 0u);
  // Full cold behavior, still correct.
  EXPECT_EQ(Fallback.Stats.get("dbt.fragments"),
            Cold.Stats.get("dbt.fragments"));
  EXPECT_EQ(Fallback.Checksum, Cold.Checksum);
  // The failed load did not poison the save: the rewritten file warms the
  // next run again.
  Outcome Healed = runWorkload("gzip", Config);
  EXPECT_EQ(Healed.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Healed.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Healed.Checksum, Cold.Checksum);
}

TEST(VmWarmStart, TruncatedFileFallsBackToCorrectColdRun) {
  std::string Path = tempPath("trunc.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  Outcome Cold = runWorkload("gzip", Config);
  truncateFile(Path, 100);

  Outcome Fallback = runWorkload("gzip", Config);
  EXPECT_EQ(Fallback.Stats.get("persist.load_corrupt"), 1u);
  EXPECT_EQ(Fallback.Stats.get("dbt.fragments"),
            Cold.Stats.get("dbt.fragments"));
  EXPECT_EQ(Fallback.Checksum, Cold.Checksum);
}

TEST(VmWarmStart, ConfigChangeIsAStoreMissAndBothSlotsCoexist) {
  std::string Path = tempPath("config.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  Outcome Cold = runWorkload("gzip", Config);
  ASSERT_EQ(Cold.Stats.get("persist.save_ok"), 1u);

  // Same guest image, different translator configuration: fragments built
  // with 4 accumulators must not be executed under an 8-accumulator
  // config's expectations. The store has no slot for the new fingerprint,
  // so this run goes cold and appends its own slot.
  vm::VmConfig Other = Config;
  Other.Dbt.NumAccumulators = 8;
  Outcome Miss = runWorkload("gzip", Other);
  EXPECT_EQ(Miss.Stats.get("persist.store_miss"), 1u);
  EXPECT_EQ(Miss.Stats.get("persist.fragments_imported"), 0u);
  EXPECT_GT(Miss.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Miss.Checksum, Cold.Checksum);
  EXPECT_EQ(Miss.Stats.get("persist.store_saved_images"), 2u);

  // Both configurations now warm-start from the same artifact.
  Outcome WarmA = runWorkload("gzip", Config);
  EXPECT_EQ(WarmA.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(WarmA.Stats.get("dbt.fragments"), 0u);
  Outcome WarmB = runWorkload("gzip", Other);
  EXPECT_EQ(WarmB.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(WarmB.Stats.get("dbt.fragments"), 0u);
}

TEST(VmWarmStart, DifferentGuestImagesShareOneStore) {
  std::string Path = tempPath("image.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  runWorkload("gzip", Config);
  // A different workload (different guest pages) misses gzip's slot, runs
  // cold, and adds its own — without evicting gzip's.
  Outcome Other = runWorkload("bzip2", Config);
  EXPECT_EQ(Other.Stats.get("persist.store_miss"), 1u);
  EXPECT_EQ(Other.Stats.get("persist.load_ok"), 0u);
  EXPECT_GT(Other.Stats.get("dbt.fragments"), 0u);

  Outcome WarmGzip = runWorkload("gzip", Config);
  EXPECT_EQ(WarmGzip.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(WarmGzip.Stats.get("persist.store_images"), 2u);
  EXPECT_EQ(WarmGzip.Stats.get("dbt.fragments"), 0u);
  Outcome WarmBzip2 = runWorkload("bzip2", Config);
  EXPECT_EQ(WarmBzip2.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(WarmBzip2.Stats.get("dbt.fragments"), 0u);
}

TEST(VmWarmStart, StoreImageBoundEvictsStalestSlot) {
  std::string Path = tempPath("bound.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  Config.PersistMaxImages = 2;

  runWorkload("gzip", Config);
  runWorkload("bzip2", Config);
  Outcome Third = runWorkload("gcc", Config);
  EXPECT_EQ(Third.Stats.get("persist.store_compacted"), 1u);
  EXPECT_EQ(Third.Stats.get("persist.store_saved_images"), 2u);

  // gzip was written first and is the one evicted.
  Outcome ColdAgain = runWorkload("gzip", Config);
  EXPECT_EQ(ColdAgain.Stats.get("persist.store_miss"), 1u);
  Outcome WarmGcc = runWorkload("gcc", Config);
  EXPECT_EQ(WarmGcc.Stats.get("persist.store_hit"), 1u);
}

TEST(VmWarmStart, LegacyCacheFileImportsAndConvertsToStore) {
  std::string Path = tempPath("legacy.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  // Produce a legacy single-image cache file for gzip by re-saving a cold
  // run's fragments in the PR 1 format.
  Outcome Cold = runWorkload("gzip", Config);
  {
    GuestMemory Mem;
    workloads::WorkloadImage Image = workloads::buildWorkload("gzip", Mem, 1);
    vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
    vm::RunResult Result = Vm.run();
    ASSERT_EQ(Result.Reason, vm::StopReason::Halted);
    uint64_t Fp = persist::fingerprint(Mem, Image.EntryPc, Config.Dbt);
    ASSERT_TRUE(
        persist::saveCacheFile(Path, Fp, Vm.tcache().exportAll()));
  }

  // The legacy file warms the run and the exit save converts the path to
  // store format, which warms the run after that.
  Outcome Legacy = runWorkload("gzip", Config);
  EXPECT_EQ(Legacy.Stats.get("persist.import_legacy"), 1u);
  EXPECT_EQ(Legacy.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Legacy.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Legacy.Checksum, Cold.Checksum);

  Outcome Warm = runWorkload("gzip", Config);
  EXPECT_EQ(Warm.Stats.get("persist.import_legacy"), 0u);
  EXPECT_EQ(Warm.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(Warm.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Warm.Checksum, Cold.Checksum);
}

TEST(VmWarmStart, ForeignLegacyFileIsPreservedAsAStoreSlot) {
  std::string Path = tempPath("legacy-foreign.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  // A legacy cache file for gzip, then a bzip2 run against it: the
  // fingerprints differ, so bzip2 runs cold — but conversion to store
  // format must carry gzip's image along instead of clobbering it.
  {
    GuestMemory Mem;
    workloads::WorkloadImage Image = workloads::buildWorkload("gzip", Mem, 1);
    vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
    ASSERT_EQ(Vm.run().Reason, vm::StopReason::Halted);
    uint64_t Fp = persist::fingerprint(Mem, Image.EntryPc, Config.Dbt);
    std::remove(Path.c_str());
    ASSERT_TRUE(
        persist::saveCacheFile(Path, Fp, Vm.tcache().exportAll()));
  }

  Outcome Other = runWorkload("bzip2", Config);
  EXPECT_EQ(Other.Stats.get("persist.import_legacy"), 1u);
  EXPECT_EQ(Other.Stats.get("persist.load_mismatch"), 1u);
  EXPECT_GT(Other.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Other.Stats.get("persist.store_saved_images"), 2u);

  Outcome WarmGzip = runWorkload("gzip", Config);
  EXPECT_EQ(WarmGzip.Stats.get("persist.store_hit"), 1u);
  EXPECT_EQ(WarmGzip.Stats.get("dbt.fragments"), 0u);
}

TEST(VmWarmStart, SaveAndLoadKnobsAreIndependent) {
  std::string Path = tempPath("knobs.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  Config.PersistSave = false;

  Outcome NoSave = runWorkload("gzip", Config);
  EXPECT_EQ(NoSave.Stats.get("persist.save_ok"), 0u);
  EXPECT_FALSE(std::ifstream(Path).good()) << "file written despite knob";

  Config.PersistSave = true;
  runWorkload("gzip", Config);
  Config.PersistLoad = false;
  Outcome NoLoad = runWorkload("gzip", Config);
  EXPECT_EQ(NoLoad.Stats.get("persist.load_ok"), 0u);
  EXPECT_GT(NoLoad.Stats.get("dbt.fragments"), 0u);
}

TEST(VmWarmStart, ExecCountFloorSkipsColdFragments) {
  std::string Path = tempPath("floor.tcache");
  vm::VmConfig Config;
  Config.PersistPath = Path;

  Outcome Cold = runWorkload("gzip", Config);
  uint64_t AllFrags = Cold.Stats.get("persist.fragments_saved");
  ASSERT_GT(AllFrags, 0u);
  EXPECT_EQ(Cold.Stats.get("persist.fragments_skipped_cold"), 0u);

  // An absurdly high floor drops everything; saved + skipped must account
  // for every fragment.
  std::remove(Path.c_str());
  vm::VmConfig Floored = Config;
  Floored.PersistMinExecCount = 1'000'000'000;
  Outcome AllCold = runWorkload("gzip", Floored);
  EXPECT_EQ(AllCold.Stats.get("persist.save_ok"), 1u);
  EXPECT_EQ(AllCold.Stats.get("persist.fragments_saved"), 0u);
  EXPECT_EQ(AllCold.Stats.get("persist.fragments_skipped_cold"), AllFrags);

  // The filtered file is a valid (empty) cache: the next run degrades to a
  // cold start with the right answer, not a load failure.
  Outcome Reload = runWorkload("gzip", Floored);
  EXPECT_EQ(Reload.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Reload.Stats.get("persist.fragments_imported"), 0u);
  EXPECT_EQ(Reload.Checksum, Cold.Checksum);

  // A floor of 1 keeps every executed fragment (every installed fragment
  // of this run executes at least once) — identical to no floor here, but
  // through the filtering path.
  std::remove(Path.c_str());
  vm::VmConfig Floor1 = Config;
  Floor1.PersistMinExecCount = 1;
  Outcome Kept = runWorkload("gzip", Floor1);
  EXPECT_EQ(Kept.Stats.get("persist.fragments_saved") +
                Kept.Stats.get("persist.fragments_skipped_cold"),
            AllFrags);
  Outcome Warm = runWorkload("gzip", Floor1);
  EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Warm.Checksum, Cold.Checksum);
}

TEST(VmWarmStart, WarmStartWorksWithTimingIrrelevantChainingPolicies) {
  // Chaining policy participates in the fingerprint; each policy gets its
  // own compatible cache and warms up correctly.
  for (dbt::ChainPolicy Policy :
       {dbt::ChainPolicy::NoPred, dbt::ChainPolicy::SwPredNoRas,
        dbt::ChainPolicy::SwPredRas}) {
    std::string Path = tempPath("policy.tcache");
    vm::VmConfig Config;
    Config.PersistPath = Path;
    Config.Dbt.Chaining = Policy;

    Outcome Cold = runWorkload("gzip", Config);
    Outcome Warm = runWorkload("gzip", Config);
    EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
    EXPECT_EQ(Warm.Stats.get("dbt.fragments"), 0u);
    EXPECT_EQ(Warm.Checksum, Cold.Checksum);
  }
}
