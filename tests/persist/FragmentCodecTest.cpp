//===- tests/persist/FragmentCodecTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trip properties of the fragment codec and the export/import path:
/// randomly generated fragments survive encode -> decode with byte-identical
/// re-encodings, and a translation cache rebuilt via importAll() reaches the
/// same chained state — byte-identical bodies, same I-PC layout, and the
/// same patch behavior for fragments installed afterwards — as the cache it
/// was exported from.
///
//===----------------------------------------------------------------------===//

#include "persist/FragmentCodec.h"

#include "core/TranslationCache.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

IOperand randomOperand(Rng &R) {
  switch (R.nextBelow(4)) {
  case 0:
    return IOperand::none();
  case 1:
    return IOperand::acc(uint8_t(R.nextBelow(MaxAccumulators)));
  case 2:
    return IOperand::gpr(uint8_t(R.nextBelow(NumIisaGprs)));
  default:
    return IOperand::imm(int64_t(R.next()));
  }
}

/// A structurally valid fragment with randomized contents covering every
/// serialized field: mixed instruction kinds, PEI entries with acc-held
/// register lists, pending and patched exits, and a source-address map.
Fragment randomFragment(Rng &R, uint64_t Entry) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant(R.nextBelow(3));
  unsigned BodySize = 2 + unsigned(R.nextBelow(30));
  uint32_t Offset = 0;
  for (unsigned I = 0; I != BodySize; ++I) {
    IisaInst Inst;
    constexpr IKind Kinds[] = {IKind::Compute, IKind::CmovMask, IKind::Load,
                               IKind::Store,   IKind::CopyToGpr,
                               IKind::CopyFromGpr, IKind::SetVpcBase,
                               IKind::SaveRetAddr, IKind::PushDualRas};
    Inst.Kind = Kinds[R.nextBelow(std::size(Kinds))];
    Inst.AlphaOp = alpha::Opcode(R.nextBelow(alpha::NumOpcodes + 1));
    Inst.A = randomOperand(R);
    Inst.B = randomOperand(R);
    if (R.nextChance(1, 2))
      Inst.DestAcc = uint8_t(R.nextBelow(MaxAccumulators));
    if (R.nextChance(1, 2))
      Inst.DestGpr = uint8_t(R.nextBelow(NumIisaGprs));
    Inst.GprWriteArchOnly = R.nextChance(1, 3);
    Inst.VAddr = Entry + I * 4;
    Inst.VTarget = R.next();
    Inst.MemDisp = int32_t(R.next());
    Inst.VCredit = uint8_t(R.nextBelow(4));
    Inst.IsSourceOp = R.nextChance(2, 3);
    Inst.Usage = UsageClass(R.nextBelow(9));
    Inst.SizeBytes = uint8_t(2 + 2 * R.nextBelow(3));
    if (Inst.isPei() && R.nextChance(1, 2)) {
      PeiEntry Pei;
      Pei.InstIndex = I;
      Pei.VAddr = Inst.VAddr;
      unsigned Held = unsigned(R.nextBelow(4));
      for (unsigned P = 0; P != Held; ++P)
        Pei.AccHeldRegs.emplace_back(
            uint8_t(R.nextBelow(NumIisaGprs)),
            uint8_t(R.nextBelow(MaxAccumulators)));
      Inst.PeiIndex = int16_t(F.PeiTable.size());
      F.PeiTable.push_back(std::move(Pei));
    }
    F.InstOffset.push_back(Offset);
    Offset += Inst.SizeBytes;
    F.Body.push_back(Inst);
    if (R.nextChance(1, 4))
      F.SourceVAddrs.push_back(Inst.VAddr);
  }
  // Terminal exit (fragments always end in one).
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Entry + 0x1000 + R.nextBelow(0x1000) * 4;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.InstOffset.push_back(Offset);
  Offset += Br.SizeBytes;
  F.Body.push_back(Br);
  F.Exits.push_back(
      {uint32_t(F.Body.size() - 1), Br.VTarget, /*Pending=*/true});
  F.BodyBytes = Offset;
  F.SourceInsts = BodySize;
  F.NopsRemoved = unsigned(R.nextBelow(5));
  return F;
}

/// Deep comparison through re-encoding: two fragments are equal iff their
/// canonical encodings are byte-identical (the codec encodes every
/// persisted field deterministically).
void expectSameEncoding(const Fragment &A, const Fragment &B) {
  EXPECT_EQ(encodedBytes(A), encodedBytes(B));
}

} // namespace

class CodecRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecRoundTrip, DecodeReproducesEveryField) {
  Rng R(0xABCD0000ull + GetParam());
  for (unsigned I = 0; I != 16; ++I) {
    Fragment Orig = randomFragment(R, 0x10000 + I * 0x400);
    std::vector<uint8_t> Bytes = encodedBytes(Orig);

    ByteReader Reader(Bytes);
    Fragment Decoded;
    ASSERT_TRUE(decodeFragment(Reader, Decoded));
    EXPECT_TRUE(Reader.atEnd()) << "decoder left trailing bytes";

    expectSameEncoding(Orig, Decoded);
    // Spot checks on fields the encoding comparison can't localize.
    EXPECT_EQ(Decoded.EntryVAddr, Orig.EntryVAddr);
    EXPECT_EQ(Decoded.Variant, Orig.Variant);
    ASSERT_EQ(Decoded.Body.size(), Orig.Body.size());
    EXPECT_EQ(Decoded.InstOffset, Orig.InstOffset);
    EXPECT_EQ(Decoded.PeiTable.size(), Orig.PeiTable.size());
    EXPECT_EQ(Decoded.Exits.size(), Orig.Exits.size());
    EXPECT_EQ(Decoded.SourceVAddrs, Orig.SourceVAddrs);
    EXPECT_EQ(Decoded.BodyBytes, Orig.BodyBytes);
    // Install-time state is never persisted.
    EXPECT_EQ(Decoded.IBase, 0u);
    EXPECT_EQ(Decoded.ExecCount, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip, ::testing::Range(0u, 8u));

namespace {

/// A ring of N fragments (each exits to the next entry), installed into a
/// cache so that every exit ends up patched.
TranslationCache makeRingCache(Rng &R, unsigned N, uint64_t Base) {
  TranslationCache Cache;
  std::vector<Fragment> Frags;
  for (unsigned I = 0; I != N; ++I) {
    Fragment F = randomFragment(R, Base + I * 0x400);
    F.Exits[0].VTarget = Base + ((I + 1) % N) * 0x400;
    F.Body[F.Exits[0].InstIndex].VTarget = F.Exits[0].VTarget;
    Frags.push_back(std::move(F));
  }
  for (Fragment &F : Frags)
    Cache.install(std::move(F));
  return Cache;
}

} // namespace

TEST(ExportImport, RebuildsByteIdenticalChainedState) {
  Rng R(0xFEED5EEDull);
  TranslationCache Cold = makeRingCache(R, 12, 0x40000);

  // Serialize through the codec (as a cache file would) and import into a
  // fresh cache.
  ByteWriter W;
  for (const Fragment *F : Cold.exportAll())
    encodeFragment(*F, W);
  std::vector<uint8_t> Bytes = W.take();
  ByteReader Reader(Bytes);
  std::vector<Fragment> Decoded(12);
  for (Fragment &F : Decoded)
    ASSERT_TRUE(decodeFragment(Reader, F));
  ASSERT_TRUE(Reader.atEnd());

  TranslationCache Warm;
  EXPECT_EQ(Warm.importAll(std::move(Decoded)), 12u);
  ASSERT_EQ(Warm.fragmentCount(), Cold.fragmentCount());
  EXPECT_EQ(Warm.totalBodyBytes(), Cold.totalBodyBytes());
  EXPECT_EQ(Warm.uniqueSourceInsts(), Cold.uniqueSourceInsts());

  // Fragment-by-fragment: identical install order, I-PC layout, and
  // byte-identical bodies (exit patching re-ran and converged to the same
  // chained state).
  for (size_t I = 0; I != Cold.fragments().size(); ++I) {
    const Fragment &A = *Cold.fragments()[I];
    const Fragment &B = *Warm.fragments()[I];
    EXPECT_EQ(B.IBase, A.IBase);
    expectSameEncoding(A, B);
    for (size_t E = 0; E != A.Exits.size(); ++E)
      EXPECT_EQ(B.Exits[E].Pending, A.Exits[E].Pending);
  }
  // A full ring chains completely: importAll patched every exit again.
  EXPECT_EQ(Warm.patchCount(), Cold.patchCount());
}

TEST(ExportImport, SubsequentInstallsPatchIdentically) {
  // Cold cache: a chain A -> B -> C where C is NOT installed yet, so A's
  // ring is broken and B's exit pends on C. The imported cache must pend
  // on exactly the same target and patch at the same moment.
  Rng R(0x12345678ull);
  auto MakeChain = [&R](uint64_t Base) {
    std::vector<Fragment> Frags;
    for (unsigned I = 0; I != 3; ++I) {
      Fragment F = randomFragment(R, Base + I * 0x400);
      F.Exits[0].VTarget = Base + (I + 1) * 0x400;
      F.Body[F.Exits[0].InstIndex].VTarget = F.Exits[0].VTarget;
      Frags.push_back(std::move(F));
    }
    return Frags;
  };

  uint64_t Base = 0x80000;
  std::vector<Fragment> Chain = MakeChain(Base);
  Fragment Tail = std::move(Chain.back());
  Chain.pop_back();

  TranslationCache Cold;
  for (Fragment &F : Chain)
    Cold.install(std::move(F));

  ByteWriter W;
  for (const Fragment *F : Cold.exportAll())
    encodeFragment(*F, W);
  std::vector<uint8_t> Bytes = W.take();
  ByteReader Reader(Bytes);
  std::vector<Fragment> Decoded(2);
  for (Fragment &F : Decoded)
    ASSERT_TRUE(decodeFragment(Reader, F));

  TranslationCache Warm;
  EXPECT_EQ(Warm.importAll(std::move(Decoded)), 2u);
  uint64_t ColdPatches = Cold.patchCount();
  uint64_t WarmPatches = Warm.patchCount();

  // Install the missing tail into both caches: the pending exit on it must
  // patch in both, with the same per-install patch delta.
  Fragment TailCopy;
  {
    std::vector<uint8_t> TailBytes = encodedBytes(Tail);
    ByteReader TailReader(TailBytes);
    ASSERT_TRUE(decodeFragment(TailReader, TailCopy));
  }
  Cold.install(std::move(Tail));
  Warm.install(std::move(TailCopy));
  EXPECT_EQ(Cold.patchCount() - ColdPatches, Warm.patchCount() - WarmPatches);
  for (size_t I = 0; I != Cold.fragments().size(); ++I)
    expectSameEncoding(*Cold.fragments()[I], *Warm.fragments()[I]);
}

TEST(ExportImport, DuplicateEntriesAreSkipped) {
  Rng R(0x99999999ull);
  TranslationCache Cache;
  Cache.install(randomFragment(R, 0xA0000));

  std::vector<Fragment> Incoming;
  Incoming.push_back(randomFragment(R, 0xA0000)); // Duplicate entry.
  Incoming.push_back(randomFragment(R, 0xA0400));
  EXPECT_EQ(Cache.importAll(std::move(Incoming)), 1u);
  EXPECT_EQ(Cache.fragmentCount(), 2u);
}
