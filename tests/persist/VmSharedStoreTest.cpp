//===- tests/persist/VmSharedStoreTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VmConfig::SharedStore — the in-process warm-start path of the fleet
/// service: a VM handed an already-open read-only CacheStore warms from it
/// without any file I/O of its own, counts the mode under
/// "persist.store_readonly", never writes the store back, degrades
/// cleanly on a fingerprint miss or an injected import fault, and clamps
/// the import under a tiny code-cache budget exactly like the file path.
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "persist/CacheStore.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>

using namespace ildp;
using namespace ildp::vm;
using namespace ildp::persist;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

const std::string &workloadName() {
  static const std::string Name = workloads::workloadNames().front();
  return Name;
}

/// Seeds a store with the first workload's translations (cold run + save)
/// and returns the path. Built once; every test shares it read-only.
const std::string &seededStorePath() {
  static std::string Path;
  if (!Path.empty())
    return Path;
  // Pid-unique: parallel ctest runs each test in its own process, each
  // with its own lazy seeding pass over this path.
  Path = testing::TempDir() + "/shared-vm." + std::to_string(getpid()) +
         ".tstore";
  std::remove(Path.c_str());
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 1);
  VmConfig Config;
  Config.PersistPath = Path;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("persist.save_ok"), 1u);
  return Path;
}

const CacheStore &sharedStore() {
  static CacheStore Store;
  static bool Opened = false;
  if (!Opened) {
    EXPECT_EQ(Store.openReadOnly(seededStorePath()), StoreStatus::Ok);
    Opened = true;
  }
  return Store;
}

} // namespace

TEST(VmSharedStore, WarmStartDoesZeroTranslationWork) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 1);
  VmConfig Config;
  Config.SharedStore = &sharedStore();
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);

  const StatisticSet &S = Vm.stats();
  EXPECT_EQ(S.get("persist.store_readonly"), 1u);
  EXPECT_EQ(S.get("persist.store_hit"), 1u);
  EXPECT_GT(S.get("persist.fragments_imported"), 0u);
  EXPECT_EQ(S.get("dbt.fragments"), 0u);
  EXPECT_EQ(S.get("dbt.cost.total"), 0u);
}

TEST(VmSharedStore, SharedStoreWinsOverPersistPathAndNeverSaves) {
  std::string Decoy = testing::TempDir() + "/shared-vm-decoy.tstore";
  std::remove(Decoy.c_str());

  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 1);
  VmConfig Config;
  Config.SharedStore = &sharedStore();
  Config.PersistPath = Decoy; // Must be ignored entirely.
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("persist.store_hit"), 1u);
  EXPECT_EQ(Vm.stats().get("persist.save_ok"), 0u);
  std::ifstream In(Decoy);
  EXPECT_FALSE(In.good()) << "shared-store VM wrote a file";
}

TEST(VmSharedStore, FingerprintMissRunsColdAndCounted) {
  // Same workload at a different scale: different memory image, different
  // fingerprint, no slot in the store.
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 2);
  VmConfig Config;
  Config.SharedStore = &sharedStore();
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("persist.store_readonly"), 1u);
  EXPECT_EQ(Vm.stats().get("persist.store_miss"), 1u);
  EXPECT_GT(Vm.stats().get("dbt.fragments"), 0u);
}

TEST(VmSharedStore, InjectedImportFaultDegradesCold) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 1);
  FaultInjector Inj;
  Inj.armCount(FaultSite::PersistImport, 1);
  VmConfig Config;
  Config.SharedStore = &sharedStore();
  Config.Dbt.Fault = &Inj;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("persist.import_rejected.injected-fault"), 1u);
  EXPECT_EQ(Vm.stats().get("persist.fragments_imported"), 0u);
  EXPECT_GT(Vm.stats().get("dbt.fragments"), 0u);
}

TEST(VmSharedStore, TinyBudgetClampsImport) {
  constexpr uint64_t TinyBudget = 4096;
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(workloadName(), Mem, 1);
  VmConfig Config;
  Config.SharedStore = &sharedStore();
  Config.CodeCacheBytes = TinyBudget;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("persist.store_hit"), 1u);
  EXPECT_LE(Vm.stats().get("cache.budget_high_water"), TinyBudget);
}
