//===- tests/persist/CacheStoreReadOnlyTest.cpp ---------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read-only store open mode backing the fleet service: openReadOnly()
/// loads the same contents as open() but freezes the store — every mutator
/// is an inert no-op, saveMerged() neither stages a temp file nor touches
/// "<path>.lock", and a reader is oblivious to a concurrently held writer
/// lock. The concurrent-writer tests prove the fleet's warm-start
/// guarantee: readers never contend with writers, not even while a
/// saveMerged storm is rewriting the artifact under them.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"

#include <atomic>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

/// Small but non-trivial fragment (same shape as CacheStoreTest's).
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6};
  F.BodyBytes = 10;
  F.Exits.push_back({1, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  F.SourceInsts = 1;
  return F;
}

void putImage(CacheStore &Store, uint64_t Fingerprint, unsigned Count) {
  std::vector<Fragment> Storage;
  for (unsigned I = 0; I != Count; ++I)
    Storage.push_back(makeFragment(0x1000 + (Fingerprint & 0xFF) * 0x1000 +
                                       I * 0x100,
                                   0x500000 + I * 0x100));
  std::vector<const Fragment *> Frags;
  for (const Fragment &F : Storage)
    Frags.push_back(&F);
  Store.put(Fingerprint, Frags, /*CostUnits=*/Count * 10);
}

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
  return Path;
}

std::string seededStore(const char *Name, unsigned Images = 3) {
  std::string Path = tempPath(Name);
  CacheStore Store;
  for (unsigned I = 0; I != Images; ++I)
    putImage(Store, 0xA0 + I, I + 1);
  EXPECT_TRUE(Store.save(Path));
  return Path;
}

std::vector<char> fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(In),
                           std::istreambuf_iterator<char>());
}

bool fileExists(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return In.good();
}

/// Counts TempDir entries whose name starts with \p Prefix (staging-file
/// detector: a read-only store must never create "<name>.tmp.*").
size_t countFilesWithPrefix(const std::string &Prefix) {
  size_t Count = 0;
  DIR *Dir = opendir(testing::TempDir().c_str());
  if (!Dir)
    return 0;
  while (dirent *Ent = readdir(Dir))
    if (std::string(Ent->d_name).rfind(Prefix, 0) == 0)
      ++Count;
  closedir(Dir);
  return Count;
}

} // namespace

TEST(CacheStoreReadOnly, LoadsSameContentsAsOpen) {
  std::string Path = seededStore("ro-load.tstore");
  CacheStore Rw, Ro;
  ASSERT_EQ(Rw.open(Path), StoreStatus::Ok);
  ASSERT_EQ(Ro.openReadOnly(Path), StoreStatus::Ok);
  EXPECT_TRUE(Ro.readOnly());
  EXPECT_FALSE(Rw.readOnly());
  ASSERT_EQ(Ro.imageCount(), Rw.imageCount());
  EXPECT_EQ(Ro.totalPayloadBytes(), Rw.totalPayloadBytes());
  for (const StoreImage &Img : Rw.images()) {
    std::vector<Fragment> A, B;
    EXPECT_EQ(Ro.lookup(Img.Fingerprint, A), StoreStatus::Ok);
    EXPECT_EQ(Rw.lookup(Img.Fingerprint, B), StoreStatus::Ok);
    EXPECT_EQ(A.size(), B.size());
  }
}

TEST(CacheStoreReadOnly, MutatorsAreInert) {
  std::string Path = seededStore("ro-inert.tstore");
  std::vector<char> Before = fileBytes(Path);

  CacheStore Store;
  ASSERT_EQ(Store.openReadOnly(Path), StoreStatus::Ok);
  size_t Count = Store.imageCount();

  putImage(Store, 0xEE, 2); // put() on a frozen store: dropped.
  EXPECT_EQ(Store.imageCount(), Count);
  EXPECT_FALSE(Store.contains(0xEE));
  EXPECT_FALSE(Store.erase(0xA0));
  EXPECT_TRUE(Store.contains(0xA0));
  EXPECT_EQ(Store.compact(1), 0u);
  EXPECT_EQ(Store.imageCount(), Count);

  SaveMergeResult Merge = Store.saveMerged(Path);
  EXPECT_FALSE(Merge.Saved);
  EXPECT_FALSE(Merge.LockContended);
  EXPECT_EQ(Merge.Adopted, 0u);

  // No side channel either: the artifact is byte-identical and neither a
  // lock nor a staging file ever appeared.
  EXPECT_EQ(fileBytes(Path), Before);
  EXPECT_FALSE(fileExists(Path + ".lock"));
  EXPECT_EQ(countFilesWithPrefix("ro-inert.tstore.tmp"), 0u);
}

TEST(CacheStoreReadOnly, OpenThawsAndMissingFileStaysFrozen) {
  std::string Path = seededStore("ro-thaw.tstore");
  CacheStore Store;
  ASSERT_EQ(Store.openReadOnly(Path), StoreStatus::Ok);
  EXPECT_TRUE(Store.readOnly());
  // A later open() is a fresh mutable load.
  ASSERT_EQ(Store.open(Path), StoreStatus::Ok);
  EXPECT_FALSE(Store.readOnly());

  // A failed read-only open still freezes: a fleet whose store path was
  // bad must stay a pure consumer, not start writing the path.
  CacheStore Missing;
  EXPECT_EQ(Missing.openReadOnly(tempPath("ro-none.tstore")),
            StoreStatus::FileNotFound);
  EXPECT_TRUE(Missing.readOnly());
  putImage(Missing, 0x11, 1);
  EXPECT_EQ(Missing.imageCount(), 0u);
}

TEST(CacheStoreReadOnly, ReaderIgnoresHeldWriterLock) {
  std::string Path = seededStore("ro-lock.tstore");
  // Simulate a (possibly crashed) writer holding the lock.
  { std::ofstream Lock(Path + ".lock"); }
  ASSERT_TRUE(fileExists(Path + ".lock"));

  CacheStore Store;
  // The reader neither waits on nor removes the lock.
  EXPECT_EQ(Store.openReadOnly(Path), StoreStatus::Ok);
  std::vector<Fragment> Out;
  EXPECT_EQ(Store.lookup(0xA0, Out), StoreStatus::Ok);
  EXPECT_TRUE(fileExists(Path + ".lock"));
  std::remove((Path + ".lock").c_str());
}

TEST(CacheStoreReadOnly, ReadersNeverContendWithConcurrentWriter) {
  std::string Path = seededStore("ro-race.tstore");

  // One writer hammers saveMerged (lock + temp + rename churn) while
  // several readers repeatedly open read-only and look images up. Every
  // single read must succeed: saves are atomic renames, so a reader sees
  // either the previous or the next artifact, never a torn one, and the
  // writer's lock is invisible to it.
  std::atomic<bool> Stop{false};
  std::atomic<size_t> WriterSaves{0};
  std::thread Writer([&] {
    CacheStore Mine;
    Mine.open(Path);
    uint64_t Next = 0x100;
    while (!Stop.load(std::memory_order_acquire)) {
      putImage(Mine, Next++, 1);
      SaveMergeResult R = Mine.saveMerged(Path);
      if (R.Saved)
        WriterSaves.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr unsigned Readers = 3;
  constexpr unsigned ReadsEach = 40;
  std::atomic<size_t> GoodReads{0};
  std::vector<std::thread> Pool;
  for (unsigned R = 0; R != Readers; ++R)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I != ReadsEach; ++I) {
        CacheStore Ro;
        if (Ro.openReadOnly(Path) != StoreStatus::Ok)
          continue; // Never expected; counted by the final assert.
        std::vector<Fragment> Out;
        // The seed images are never evicted by the writer's merge.
        if (Ro.lookup(0xA0, Out) == StoreStatus::Ok && !Out.empty())
          GoodReads.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (std::thread &T : Pool)
    T.join();
  Stop.store(true, std::memory_order_release);
  Writer.join();

  EXPECT_EQ(GoodReads.load(), size_t(Readers) * ReadsEach);
  EXPECT_GT(WriterSaves.load(), 0u);
  EXPECT_FALSE(fileExists(Path + ".lock")); // Writer cleaned up after itself.
}
