//===- tests/persist/CacheFileFaultTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection against the cache-file loader. Cache files come from
/// disk and may be truncated, bit-flipped, version-skewed, or outright
/// garbage; every such file must be rejected with a meaningful status and
/// an empty fragment list — never accepted, never a crash. The sweeps here
/// truncate a valid file at every prefix length and flip every byte of it
/// one at a time.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheFile.h"

#include "persist/FragmentCodec.h"
#include "support/Rng.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

constexpr uint64_t TestFingerprint = 0x1122334455667788ull;

/// Small but non-trivial fragment: body with a PEI, one pending exit.
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Ld;
  Ld.Kind = IKind::Load;
  Ld.AlphaOp = alpha::Opcode::LDQ;
  Ld.B = IOperand::gpr(3);
  Ld.DestAcc = 1;
  Ld.VAddr = Entry;
  Ld.SizeBytes = 4;
  Ld.PeiIndex = 0;
  F.Body.push_back(Ld);
  F.PeiTable.push_back({1, Entry, {{uint8_t(5), uint8_t(1)}}});
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6, 10};
  F.BodyBytes = 14;
  F.Exits.push_back({2, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  F.SourceInsts = 2;
  return F;
}

std::string tempPath(const char *Name) {
  return testing::TempDir() + "/" + Name;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return {std::istreambuf_iterator<char>(In),
          std::istreambuf_iterator<char>()};
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            std::streamsize(Bytes.size()));
}

/// Writes a valid three-fragment cache file and returns its bytes.
std::vector<uint8_t> makeValidFile(const std::string &Path) {
  std::vector<const Fragment *> Frags;
  std::vector<Fragment> Storage;
  for (unsigned I = 0; I != 3; ++I)
    Storage.push_back(makeFragment(0x1000 + I * 0x100, 0x5000 + I * 0x100));
  for (const Fragment &F : Storage)
    Frags.push_back(&F);
  EXPECT_TRUE(saveCacheFile(Path, TestFingerprint, Frags));
  return readFile(Path);
}

} // namespace

TEST(CacheFileFault, ValidFileLoads) {
  std::string Path = tempPath("valid.tcache");
  std::vector<uint8_t> Bytes = makeValidFile(Path);
  ASSERT_GT(Bytes.size(), 48u);

  LoadResult Result = loadCacheFile(Path, TestFingerprint);
  ASSERT_EQ(Result.Status, LoadStatus::Ok) << getLoadStatusName(Result.Status);
  EXPECT_EQ(Result.FileFingerprint, TestFingerprint);
  ASSERT_EQ(Result.Fragments.size(), 3u);
  EXPECT_EQ(Result.Fragments[1].EntryVAddr, 0x1100u);
  EXPECT_EQ(Result.Fragments[1].PeiTable.size(), 1u);
}

TEST(CacheFileFault, MissingFileIsNotFound) {
  LoadResult Result =
      loadCacheFile(tempPath("does-not-exist.tcache"), TestFingerprint);
  EXPECT_EQ(Result.Status, LoadStatus::FileNotFound);
  EXPECT_TRUE(Result.Fragments.empty());
}

TEST(CacheFileFault, EveryTruncationIsRejected) {
  std::string Path = tempPath("trunc.tcache");
  std::vector<uint8_t> Bytes = makeValidFile(Path);

  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + long(Len));
    writeFile(Path, Cut);
    LoadResult Result = loadCacheFile(Path, TestFingerprint);
    EXPECT_NE(Result.Status, LoadStatus::Ok) << "accepted prefix " << Len;
    EXPECT_TRUE(Result.Fragments.empty()) << "fragments from prefix " << Len;
  }
}

TEST(CacheFileFault, EveryByteFlipIsRejected) {
  std::string Path = tempPath("flip.tcache");
  std::vector<uint8_t> Bytes = makeValidFile(Path);

  // Flipping any single bit pattern anywhere in the file must be caught:
  // header fields by the magic/version/fingerprint gates, section table
  // and payload by bounds checks and CRC32.
  for (size_t Pos = 0; Pos != Bytes.size(); ++Pos) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[Pos] ^= 0x5A;
    writeFile(Path, Bad);
    LoadResult Result = loadCacheFile(Path, TestFingerprint);
    EXPECT_NE(Result.Status, LoadStatus::Ok) << "accepted flip at " << Pos;
    EXPECT_TRUE(Result.Fragments.empty());
  }
}

TEST(CacheFileFault, FingerprintMismatchIsDistinguished) {
  std::string Path = tempPath("mismatch.tcache");
  makeValidFile(Path);

  LoadResult Result = loadCacheFile(Path, TestFingerprint ^ 1);
  EXPECT_EQ(Result.Status, LoadStatus::FingerprintMismatch);
  EXPECT_TRUE(Result.Fragments.empty());
  // The file itself is intact: its own fingerprint is still readable.
  EXPECT_EQ(Result.FileFingerprint, TestFingerprint);
}

TEST(CacheFileFault, ForeignMagicAndVersionAreRejected) {
  std::string Path = tempPath("magic.tcache");
  std::vector<uint8_t> Bytes = makeValidFile(Path);

  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] ^= 0xFF;
  writeFile(Path, BadMagic);
  EXPECT_EQ(loadCacheFile(Path, TestFingerprint).Status,
            LoadStatus::BadMagic);

  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[8] = uint8_t(CacheFormatVersion + 1);
  writeFile(Path, BadVersion);
  EXPECT_EQ(loadCacheFile(Path, TestFingerprint).Status,
            LoadStatus::BadVersion);

  // Arbitrary garbage of plausible size.
  Rng R(0xBADF00Dull);
  std::vector<uint8_t> Garbage(Bytes.size());
  for (uint8_t &B : Garbage)
    B = uint8_t(R.next());
  writeFile(Path, Garbage);
  LoadResult Result = loadCacheFile(Path, TestFingerprint);
  EXPECT_NE(Result.Status, LoadStatus::Ok);
  EXPECT_TRUE(Result.Fragments.empty());
}

TEST(CacheFileFault, PayloadCrcCatchesSectionCorruption) {
  std::string Path = tempPath("crc.tcache");
  std::vector<uint8_t> Bytes = makeValidFile(Path);

  // Flip a byte well inside the fragment payload (past header + section
  // table): only the section CRC can catch this one.
  std::vector<uint8_t> Bad = Bytes;
  Bad[Bytes.size() - 8] ^= 0x01;
  writeFile(Path, Bad);
  EXPECT_EQ(loadCacheFile(Path, TestFingerprint).Status,
            LoadStatus::BadChecksum);
}

TEST(CacheFileFault, SaveOverwritesAtomically) {
  // Saving over an existing file must leave either the old or the new
  // contents, and no stray ".tmp" on success.
  std::string Path = tempPath("overwrite.tcache");
  makeValidFile(Path);
  std::vector<Fragment> Storage;
  Storage.push_back(makeFragment(0x9000, 0x9100));
  std::vector<const Fragment *> Frags{&Storage[0]};
  ASSERT_TRUE(saveCacheFile(Path, TestFingerprint, Frags));

  std::ifstream Tmp(Path + ".tmp", std::ios::binary);
  EXPECT_FALSE(Tmp.good()) << "staging file left behind";
  LoadResult Result = loadCacheFile(Path, TestFingerprint);
  ASSERT_EQ(Result.Status, LoadStatus::Ok);
  EXPECT_EQ(Result.Fragments.size(), 1u);
}
