//===- tests/persist/StoreLockTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-recoverable store lock in isolation: PID recording, dead- and
/// live-holder discrimination, empty-file grace, takeover accounting, and
/// the bounded live-holder wait. Process-death scenarios with a real
/// killed holder live in VmConcurrentSaveTest (concurrency binary) and
/// ildp-crashtest; these tests cover the protocol's decision table
/// in-process.
///
//===----------------------------------------------------------------------===//

#include "persist/StoreLock.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <thread>

#ifndef _WIN32
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::persist;

namespace {

std::string tempLock(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  std::remove((Path + ".break").c_str());
  return Path;
}

bool fileExists(const std::string &Path) {
  std::ifstream In(Path);
  return In.good();
}

void writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Content;
}

/// A PID no live process can have: beyond Linux's largest configurable
/// pid_max (2^22), so kill(pid, 0) reports ESRCH.
constexpr long DeadPid = (1 << 30) + 12345;

} // namespace

#ifndef _WIN32

TEST(StoreLock, AcquiresRecordsPidAndReleases) {
  std::string Path = tempLock("lock-basic");
  {
    StoreLock Lock(Path);
    EXPECT_TRUE(Lock.held());
    EXPECT_FALSE(Lock.contended());
    EXPECT_EQ(Lock.broken(), 0u);
    EXPECT_FALSE(Lock.timedOut());
    EXPECT_EQ(StoreLock::readHolderPid(Path), long(::getpid()));
  }
  // Destructor released: the path is free and a new lock acquires
  // instantly.
  EXPECT_FALSE(fileExists(Path));
  StoreLock Again(Path);
  EXPECT_TRUE(Again.held());
}

TEST(StoreLock, ReadHolderPid) {
  std::string Path = tempLock("lock-read");
  EXPECT_EQ(StoreLock::readHolderPid(Path), -1); // No file.
  writeFile(Path, "12345\n");
  EXPECT_EQ(StoreLock::readHolderPid(Path), 12345);
  writeFile(Path, "");
  EXPECT_EQ(StoreLock::readHolderPid(Path), -1); // Empty.
  writeFile(Path, "not-a-pid");
  EXPECT_EQ(StoreLock::readHolderPid(Path), -1); // Garbage.
  writeFile(Path, "-7\n");
  EXPECT_EQ(StoreLock::readHolderPid(Path), -1); // Nonsense PID.
  // Current format carries a start-time token after the PID; the PID
  // still parses (and old token-less files remain readable above).
  writeFile(Path, "12345 67890\n");
  EXPECT_EQ(StoreLock::readHolderPid(Path), 12345);
  std::remove(Path.c_str());
}

TEST(StoreLock, BreaksDeadHoldersLock) {
  std::string Path = tempLock("lock-dead");
  writeFile(Path, std::to_string(DeadPid) + "\n");

  StoreLock Lock(Path);
  EXPECT_TRUE(Lock.held());
  EXPECT_TRUE(Lock.contended());
  EXPECT_GE(Lock.broken(), 1u);
  EXPECT_FALSE(Lock.timedOut());
  // The lock now names us, not the corpse.
  EXPECT_EQ(StoreLock::readHolderPid(Path), long(::getpid()));
}

TEST(StoreLock, EmptyLockFileReapedAfterGrace) {
  std::string Path = tempLock("lock-empty");
  writeFile(Path, "");

  StoreLock::Options Opts;
  Opts.EmptyGraceMillis = 30; // Keep the test fast.
  auto T0 = std::chrono::steady_clock::now();
  StoreLock Lock(Path, Opts);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_TRUE(Lock.held());
  EXPECT_GE(Lock.broken(), 1u);
  // The grace actually elapsed: an empty file is not broken on sight (it
  // may be a holder inside its create-to-write window).
  EXPECT_GE(TookMs, 25.0);
}

TEST(StoreLock, LiveHolderIsWaitedForThenTimedOut) {
  std::string Path = tempLock("lock-live");
  // A live holder: this very process. The waiter must NOT break it.
  writeFile(Path, std::to_string(long(::getpid())) + "\n");

  StoreLock::Options Opts;
  Opts.MaxWaitMillis = 80;
  auto T0 = std::chrono::steady_clock::now();
  StoreLock Lock(Path, Opts);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_FALSE(Lock.held());
  EXPECT_TRUE(Lock.timedOut());
  EXPECT_EQ(Lock.broken(), 0u);
  EXPECT_GE(TookMs, 75.0); // It genuinely waited the bound out.
  // The live holder's lock was never touched...
  EXPECT_EQ(StoreLock::readHolderPid(Path), long(::getpid()));
  std::remove(Path.c_str());
}

TEST(StoreLock, TimedOutLockReleasesNothing) {
  std::string Path = tempLock("lock-timeout-release");
  writeFile(Path, std::to_string(long(::getpid())) + "\n");
  {
    StoreLock::Options Opts;
    Opts.MaxWaitMillis = 20;
    StoreLock Lock(Path, Opts);
    EXPECT_FALSE(Lock.held());
  }
  // ...including at destruction: only a held lock is unlinked.
  EXPECT_TRUE(fileExists(Path));
  std::remove(Path.c_str());
}

TEST(StoreLock, ContendedHandoffBetweenThreads) {
  std::string Path = tempLock("lock-handoff");
  StoreLock *First = new StoreLock(Path);
  ASSERT_TRUE(First->held());

  // A second acquirer blocks on the live holder (same process: the PID is
  // alive), then wins promptly once the first releases.
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    delete First;
  });
  auto T0 = std::chrono::steady_clock::now();
  StoreLock Second(Path);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  Releaser.join();
  EXPECT_TRUE(Second.held());
  EXPECT_TRUE(Second.contended());
  EXPECT_EQ(Second.broken(), 0u); // A live holder is never broken.
  EXPECT_LT(TookMs, 10'000);
}

TEST(StoreLock, WedgedBreakerFallsBackToTimeout) {
  std::string Path = tempLock("lock-wedged-breaker");
  // A dead holder whose takeover can never complete: the break lock is
  // pinned by a LIVE process (this one) that never finishes. The
  // acquirer must degrade through the MaxWaitMillis bound — previously
  // the dead-holder path bypassed it and spun forever.
  writeFile(Path, std::to_string(DeadPid) + "\n");
  writeFile(Path + ".break", std::to_string(long(::getpid())) + "\n");

  StoreLock::Options Opts;
  Opts.MaxWaitMillis = 60;
  auto T0 = std::chrono::steady_clock::now();
  StoreLock Lock(Path, Opts);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_FALSE(Lock.held());
  EXPECT_TRUE(Lock.timedOut());
  EXPECT_EQ(Lock.broken(), 0u);
  EXPECT_GE(TookMs, 55.0); // The bound was genuinely waited out...
  // ...and the live breaker's file was never reaped.
  EXPECT_TRUE(fileExists(Path + ".break"));
  std::remove(Path.c_str());
  std::remove((Path + ".break").c_str());
}

#ifdef __linux__
TEST(StoreLock, RecycledHolderPidIsBrokenByStartTimeToken) {
  std::string Path = tempLock("lock-recycled");
  // A lock naming a LIVE pid (ours) but a start-time token no real
  // process can match: the recorded holder died and an unrelated
  // process recycled its number. kill(pid, 0) alone would wait the
  // full bound and then proceed unlocked — the lost-update window; the
  // token mismatch must break the lock promptly instead.
  writeFile(Path, std::to_string(long(::getpid())) + " 1\n");

  StoreLock::Options Opts;
  Opts.MaxWaitMillis = 5'000; // Must NOT be consumed.
  auto T0 = std::chrono::steady_clock::now();
  StoreLock Lock(Path, Opts);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_TRUE(Lock.held());
  EXPECT_GE(Lock.broken(), 1u);
  EXPECT_FALSE(Lock.timedOut());
  EXPECT_LT(TookMs, 2'000.0);
}
#endif // __linux__

TEST(StoreLock, DeadBreakerDoesNotWedgeTakeover) {
  std::string Path = tempLock("lock-dead-breaker");
  // A dead holder AND a dead breaker: a previous takeover died inside
  // its critical section. Both must be cleared.
  writeFile(Path, std::to_string(DeadPid) + "\n");
  writeFile(Path + ".break", std::to_string(DeadPid + 1) + "\n");

  StoreLock Lock(Path);
  EXPECT_TRUE(Lock.held());
  EXPECT_GE(Lock.broken(), 1u);
  EXPECT_FALSE(fileExists(Path + ".break"));
}

#endif // !_WIN32
