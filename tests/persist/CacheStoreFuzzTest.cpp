//===- tests/persist/CacheStoreFuzzTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection against the multi-image store loader. Store files come
/// from disk and may be truncated, bit-flipped, index-corrupted, or
/// hand-crafted to carry duplicate or out-of-bounds slots; every such file
/// must be rejected with a typed status and an empty store — never
/// accepted, never a crash. The sweeps truncate a valid store at every
/// prefix length and flip every byte of it one at a time; crafted cases
/// then forge an index whose CRC is valid but whose fields lie. A final
/// set runs corrupted stores through a whole VM and checks the typed
/// persist.import_rejected.<reason> degrade-to-cold-start contract.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"

#include "native/NativeCompiler.h"
#include "native/NativeStore.h"
#include "persist/Crc32.h"
#include "support/Rng.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

// Mirrors the on-disk layout documented in CacheStore.h; the crafted-index
// tests below patch fields at these offsets.
constexpr size_t HeaderBytes = 20;
constexpr size_t IndexEntryBytes = 52;
constexpr size_t IndexCrcOffset = 16;

/// Small but non-trivial fragment (same shape as CacheFileFaultTest).
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Ld;
  Ld.Kind = IKind::Load;
  Ld.AlphaOp = alpha::Opcode::LDQ;
  Ld.B = IOperand::gpr(3);
  Ld.DestAcc = 1;
  Ld.VAddr = Entry;
  Ld.SizeBytes = 4;
  Ld.PeiIndex = 0;
  F.Body.push_back(Ld);
  F.PeiTable.push_back({1, Entry, {{uint8_t(5), uint8_t(1)}}});
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6, 10};
  F.BodyBytes = 14;
  F.Exits.push_back({2, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  F.SourceInsts = 2;
  return F;
}

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return {std::istreambuf_iterator<char>(In),
          std::istreambuf_iterator<char>()};
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            std::streamsize(Bytes.size()));
}

/// Writes a valid three-image store and returns its bytes.
std::vector<uint8_t> makeValidStore(const std::string &Path) {
  CacheStore Store;
  for (uint64_t Fp : {0xA1ull, 0xB2ull, 0xC3ull}) {
    std::vector<Fragment> Storage;
    for (unsigned I = 0; I != 2; ++I)
      Storage.push_back(makeFragment(0x1000 + Fp * 0x100 + I * 0x10,
                                     0x5000 + I * 0x100));
    std::vector<const Fragment *> Frags;
    for (const Fragment &F : Storage)
      Frags.push_back(&F);
    Store.put(Fp, Frags, /*CostUnits=*/Fp);
  }
  EXPECT_TRUE(Store.save(Path));
  return readFile(Path);
}

void putLE64(std::vector<uint8_t> &Bytes, size_t Off, uint64_t Value) {
  for (unsigned I = 0; I != 8; ++I)
    Bytes[Off + I] = uint8_t(Value >> (8 * I));
}

void putLE32(std::vector<uint8_t> &Bytes, size_t Off, uint32_t Value) {
  for (unsigned I = 0; I != 4; ++I)
    Bytes[Off + I] = uint8_t(Value >> (8 * I));
}

/// Recomputes the header's index CRC over \p Count entries — the crafted
/// cases below forge index *fields* that must get past the CRC gate and be
/// caught by the per-field plausibility checks instead.
void fixIndexCrc(std::vector<uint8_t> &Bytes, size_t Count) {
  putLE32(Bytes, IndexCrcOffset,
          crc32(Bytes.data() + HeaderBytes, Count * IndexEntryBytes));
}

} // namespace

TEST(CacheStoreFuzz, ValidStoreLoads) {
  std::string Path = tempPath("fuzz-valid.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);
  ASSERT_GT(Bytes.size(), HeaderBytes + 3 * IndexEntryBytes);

  CacheStore Store;
  ASSERT_EQ(Store.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 3u);
}

TEST(CacheStoreFuzz, EveryTruncationIsRejected) {
  std::string Path = tempPath("fuzz-trunc.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);

  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + long(Len));
    writeFile(Path, Cut);
    CacheStore Store;
    EXPECT_NE(Store.open(Path), StoreStatus::Ok) << "accepted prefix " << Len;
    EXPECT_EQ(Store.imageCount(), 0u) << "images from prefix " << Len;
  }
}

TEST(CacheStoreFuzz, EveryByteFlipIsRejected) {
  std::string Path = tempPath("fuzz-flip.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);

  // Flipping any byte anywhere must be caught: magic/version by their
  // gates, the count and every index field by the index CRC, payload
  // bytes by the per-image CRC. Nothing in the file is unchecked.
  for (size_t Pos = 0; Pos != Bytes.size(); ++Pos) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[Pos] ^= 0x5A;
    writeFile(Path, Bad);
    CacheStore Store;
    EXPECT_NE(Store.open(Path), StoreStatus::Ok) << "accepted flip at " << Pos;
    EXPECT_EQ(Store.imageCount(), 0u);
  }
}

TEST(CacheStoreFuzz, DuplicateImageFingerprintIsRejected) {
  std::string Path = tempPath("fuzz-dup.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);

  // Forge the second slot's fingerprint to collide with the first and
  // re-sign the index: the duplicate check must fire, not the CRC.
  putLE64(Bytes, HeaderBytes + IndexEntryBytes, 0xA1);
  fixIndexCrc(Bytes, 3);
  writeFile(Path, Bytes);
  CacheStore Store;
  EXPECT_EQ(Store.open(Path), StoreStatus::DuplicateImage);
  EXPECT_EQ(Store.imageCount(), 0u);
}

TEST(CacheStoreFuzz, CraftedIndexFieldsAreRejected) {
  std::string Path = tempPath("fuzz-index.tstore");
  std::vector<uint8_t> Valid = makeValidStore(Path);

  // Payload offset pointing past end of file (CRC-valid index).
  std::vector<uint8_t> BadOffset = Valid;
  putLE64(BadOffset, HeaderBytes + 8, uint64_t(Valid.size()) + 1);
  fixIndexCrc(BadOffset, 3);
  writeFile(Path, BadOffset);
  CacheStore Store;
  EXPECT_EQ(Store.open(Path), StoreStatus::Truncated);

  // Payload size overrunning the file from a valid offset.
  std::vector<uint8_t> BadSize = Valid;
  putLE64(BadSize, HeaderBytes + 16, uint64_t(Valid.size()));
  fixIndexCrc(BadSize, 3);
  writeFile(Path, BadSize);
  EXPECT_EQ(Store.open(Path), StoreStatus::Truncated);

  // Fragment count larger than the payload could possibly encode.
  std::vector<uint8_t> BadCount = Valid;
  putLE32(BadCount, HeaderBytes + 28, 0x00FFFFFF);
  fixIndexCrc(BadCount, 3);
  writeFile(Path, BadCount);
  EXPECT_EQ(Store.open(Path), StoreStatus::BadIndex);

  // Image count beyond the corruption guard (index CRC can't help: the
  // count gate must fire before a huge index allocation is attempted).
  std::vector<uint8_t> BadImages = Valid;
  putLE32(BadImages, 12, MaxStoreImages + 1);
  writeFile(Path, BadImages);
  EXPECT_EQ(Store.open(Path), StoreStatus::BadIndex);
}

TEST(CacheStoreFuzz, BodyByteLieWithValidCrcsIsBadPayload) {
  // Corrupt the index's BodyBytes cross-check and re-sign everything: the
  // store opens (CRCs hold) but lookup() must refuse to hand the fragments
  // over, because the decoded payload contradicts the index.
  std::string Path = tempPath("fuzz-bodybytes.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);
  putLE64(Bytes, HeaderBytes + 32, 1); // True value: 2 fragments * 14.
  fixIndexCrc(Bytes, 3);
  writeFile(Path, Bytes);

  CacheStore Store;
  ASSERT_EQ(Store.open(Path), StoreStatus::Ok);
  std::vector<Fragment> Frags;
  EXPECT_EQ(Store.lookup(0xA1, Frags), StoreStatus::BadPayload);
  EXPECT_TRUE(Frags.empty());
  // The other slots are untouched and still decode.
  EXPECT_EQ(Store.lookup(0xB2, Frags), StoreStatus::Ok);
}

TEST(CacheStoreFuzz, ForeignMagicVersionAndGarbageAreRejected) {
  std::string Path = tempPath("fuzz-garbage.tstore");
  std::vector<uint8_t> Bytes = makeValidStore(Path);

  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] ^= 0xFF;
  writeFile(Path, BadMagic);
  CacheStore Store;
  EXPECT_EQ(Store.open(Path), StoreStatus::BadMagic);

  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[8] = uint8_t(CacheStoreVersion + 1);
  writeFile(Path, BadVersion);
  EXPECT_EQ(Store.open(Path), StoreStatus::BadVersion);

  Rng R(0xBADF00Dull);
  std::vector<uint8_t> Garbage(Bytes.size());
  for (uint8_t &B : Garbage)
    B = uint8_t(R.next());
  writeFile(Path, Garbage);
  EXPECT_NE(Store.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 0u);

  // Garbage behind a valid header prefix.
  std::vector<uint8_t> Wolf = Garbage;
  std::copy(Bytes.begin(), Bytes.begin() + 12, Wolf.begin());
  writeFile(Path, Wolf);
  EXPECT_NE(Store.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 0u);
}

// ---------------------------------------------------------------------------
// Whole-VM degrade contract: every corruption yields a correct cold start
// counted under persist.import_rejected.<reason>. The exhaustive sweeps
// above prove the loader catches everything; these prove the VM wiring.
// ---------------------------------------------------------------------------

namespace {

struct VmOutcome {
  uint64_t Checksum = 0;
  StatisticSet Stats;
};

VmOutcome runGzip(const vm::VmConfig &Config) {
  GuestMemory Mem;
  workloads::WorkloadImage Image = workloads::buildWorkload("gzip", Mem, 1);
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  EXPECT_EQ(Result.Reason, vm::StopReason::Halted);
  VmOutcome Out;
  Out.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  Out.Stats = Vm.stats();
  return Out;
}

} // namespace

TEST(CacheStoreFuzz, VmDegradesWithTypedReasonPerCorruption) {
  std::string Path = tempPath("fuzz-vm.tstore");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  VmOutcome Cold = runGzip(Config);
  std::vector<uint8_t> Valid = readFile(Path);
  ASSERT_GT(Valid.size(), HeaderBytes + IndexEntryBytes);

  struct Case {
    const char *Name;
    const char *Reason;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Case> Cases;
  Cases.push_back({"magic", "bad-magic", Valid});
  Cases.back().Bytes[0] ^= 0xFF;
  Cases.push_back({"version", "bad-version", Valid});
  Cases.back().Bytes[8] ^= 0x01;
  Cases.push_back({"truncated", "truncated",
                   {Valid.begin(), Valid.begin() + 10}});
  Cases.push_back({"index", "bad-index", Valid});
  Cases.back().Bytes[HeaderBytes + 3] ^= 0x5A; // Fingerprint byte.
  Cases.push_back({"payload", "bad-checksum", Valid});
  Cases.back().Bytes[Valid.size() - 1] ^= 0x5A;
  Cases.push_back({"duplicate", "duplicate-image", Valid});
  {
    // Two slots, same fingerprint: duplicate the only index entry.
    Case &Dup = Cases.back();
    std::vector<uint8_t> Entry(Dup.Bytes.begin() + HeaderBytes,
                               Dup.Bytes.begin() + HeaderBytes +
                                   IndexEntryBytes);
    Dup.Bytes.insert(Dup.Bytes.begin() + HeaderBytes + IndexEntryBytes,
                     Entry.begin(), Entry.end());
    putLE32(Dup.Bytes, 12, 2);
    // Both entries' payload offsets shifted by the inserted entry.
    for (size_t Slot = 0; Slot != 2; ++Slot) {
      size_t Off = HeaderBytes + Slot * IndexEntryBytes + 8;
      uint64_t Old = 0;
      for (unsigned I = 0; I != 8; ++I)
        Old |= uint64_t(Dup.Bytes[Off + I]) << (8 * I);
      putLE64(Dup.Bytes, Off, Old + IndexEntryBytes);
    }
    fixIndexCrc(Dup.Bytes, 2);
  }

  for (const Case &C : Cases) {
    writeFile(Path, C.Bytes);
    VmOutcome Out = runGzip(Config);
    EXPECT_EQ(Out.Stats.get("persist.load_corrupt"), 1u) << C.Name;
    EXPECT_EQ(Out.Stats.get("persist.load_ok"), 0u) << C.Name;
    EXPECT_EQ(Out.Stats.get("persist.import_rejected"), 1u) << C.Name;
    EXPECT_EQ(Out.Stats.get(std::string("persist.import_rejected.") +
                            C.Reason),
              1u)
        << C.Name;
    // Full cold behavior, still the right answer — and the exit save
    // heals the artifact for the next run.
    EXPECT_EQ(Out.Checksum, Cold.Checksum) << C.Name;
    EXPECT_EQ(Out.Stats.get("dbt.fragments"), Cold.Stats.get("dbt.fragments"))
        << C.Name;
    VmOutcome Healed = runGzip(Config);
    EXPECT_EQ(Healed.Stats.get("persist.store_hit"), 1u) << C.Name;
    EXPECT_EQ(Healed.Stats.get("dbt.fragments"), 0u) << C.Name;
  }
}

TEST(CacheStoreFuzz, StaleNativeObjectPayloadIsRejectedTyped) {
  if (!native::hostCompiler().found())
    GTEST_SKIP() << "no host C compiler on this machine";

  std::string Path = tempPath("fuzz-native-stale.tstore");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  Config.NativeTier = true;
  Config.NativeThreshold = 8;
  VmOutcome Cold = runGzip(Config);
  ASSERT_EQ(Cold.Stats.get("persist.save_ok"), 1u);
  ASSERT_GT(Cold.Stats.get("native.compiles"), 0u);

  // Re-sign the native slot as if a different toolchain/ABI had written
  // it: structurally pristine payload, wrong compile-command checksum.
  const uint64_t Checksum = native::hostCompiler().Checksum;
  {
    CacheStore Store;
    ASSERT_EQ(Store.open(Path), StoreStatus::Ok);
    uint64_t NativeSlot = 0;
    std::map<uint64_t, std::vector<uint8_t>> Objects;
    for (const StoreImage &Img : Store.images()) {
      const std::vector<uint8_t> *Raw = Store.lookupRaw(Img.Fingerprint);
      if (Raw && native::decodeObjects(*Raw, Checksum, Objects) ==
                     native::NativeStoreStatus::Ok) {
        NativeSlot = Img.Fingerprint;
        break;
      }
    }
    ASSERT_NE(NativeSlot, 0u) << "no native slot in the saved store";
    ASSERT_FALSE(Objects.empty());
    Store.putRaw(NativeSlot, native::encodeObjects(Objects, Checksum ^ 1));
    ASSERT_TRUE(Store.save(Path));
  }

  // The stale payload must be rejected with its typed reason BEFORE any
  // object is decoded or dlopen'd; the fragment import is untouched, the
  // answer doesn't change, and the tier recompiles from source.
  VmOutcome Warm = runGzip(Config);
  EXPECT_EQ(Warm.Stats.get("persist.import_rejected.native_stale"), 1u);
  EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Warm.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Warm.Stats.get("native.imported_objects"), 0u);
  EXPECT_GT(Warm.Stats.get("native.compiles"), 0u);
  EXPECT_EQ(Warm.Checksum, Cold.Checksum);

  // The warm run's exit save re-signed the slot with the live checksum:
  // the artifact is healed and imports cleanly again.
  VmOutcome Healed = runGzip(Config);
  EXPECT_EQ(Healed.Stats.get("persist.import_rejected.native_stale"), 0u);
  EXPECT_GT(Healed.Stats.get("native.imported_objects"), 0u);
  EXPECT_EQ(Healed.Checksum, Cold.Checksum);
}

TEST(CacheStoreFuzz, MalformedNativePayloadIsRejectedTyped) {
  // A toolchain is required twice over: the cold seed only writes a
  // native slot when it can compile, and the import path only runs with
  // a live native service.
  if (!native::hostCompiler().found())
    GTEST_SKIP() << "no host C compiler on this machine";

  std::string Path = tempPath("fuzz-native-malformed.tstore");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  Config.NativeTier = true;
  Config.NativeThreshold = 8;
  VmOutcome Cold = runGzip(Config);
  ASSERT_EQ(Cold.Stats.get("persist.save_ok"), 1u);

  const uint64_t Checksum = native::hostCompiler().Checksum;
  {
    CacheStore Store;
    ASSERT_EQ(Store.open(Path), StoreStatus::Ok);
    uint64_t NativeSlot = 0;
    std::map<uint64_t, std::vector<uint8_t>> Objects;
    for (const StoreImage &Img : Store.images()) {
      const std::vector<uint8_t> *Raw = Store.lookupRaw(Img.Fingerprint);
      if (Raw && native::decodeObjects(*Raw, Checksum, Objects) ==
                     native::NativeStoreStatus::Ok) {
        NativeSlot = Img.Fingerprint;
        break;
      }
    }
    ASSERT_NE(NativeSlot, 0u);
    // Truncate the payload mid-object: passes the store's CRC (re-signed
    // by save), fails native structural decoding.
    std::vector<uint8_t> Bad = native::encodeObjects(Objects, Checksum);
    Bad.resize(Bad.size() - 1);
    Store.putRaw(NativeSlot, std::move(Bad));
    ASSERT_TRUE(Store.save(Path));
  }

  VmOutcome Warm = runGzip(Config);
  EXPECT_EQ(Warm.Stats.get("persist.import_rejected.native_malformed"), 1u);
  EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
  EXPECT_EQ(Warm.Stats.get("native.imported_objects"), 0u);
  EXPECT_EQ(Warm.Checksum, Cold.Checksum);
}

TEST(CacheStoreFuzz, VmSurvivesSampledByteFlipSweep) {
  std::string Path = tempPath("fuzz-vm-sweep.tstore");
  vm::VmConfig Config;
  Config.PersistPath = Path;
  Config.PersistSave = false; // Keep the corrupted artifact in place.
  vm::VmConfig SaveConfig = Config;
  SaveConfig.PersistSave = true;
  VmOutcome Cold = runGzip(SaveConfig);
  std::vector<uint8_t> Valid = readFile(Path);

  // A full per-byte sweep through a whole VM run is the loader sweep's
  // job; here a strided sample proves the end-to-end contract: whatever
  // byte rots, the run completes cold with the right answer.
  for (size_t Pos = 0; Pos < Valid.size(); Pos += 131) {
    std::vector<uint8_t> Bad = Valid;
    Bad[Pos] ^= 0x5A;
    writeFile(Path, Bad);
    VmOutcome Out = runGzip(Config);
    EXPECT_EQ(Out.Checksum, Cold.Checksum) << "flip at " << Pos;
    EXPECT_EQ(Out.Stats.get("persist.load_ok"), 0u) << "flip at " << Pos;
    EXPECT_EQ(Out.Stats.get("persist.import_rejected"), 1u)
        << "flip at " << Pos;
  }
}
