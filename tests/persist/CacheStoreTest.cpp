//===- tests/persist/CacheStoreTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-image cache store, exercised at the API level: multiple image
/// slots round-trip through one file, put() updates a slot in place (with
/// SaveCount/CostUnits bookkeeping), compaction drops the stalest slots,
/// saves are atomic, and saveMerged() adopts slots written by concurrent
/// processes instead of clobbering them.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"

#include "persist/CacheFile.h"

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::persist;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

/// Small but non-trivial fragment: body with a PEI, one pending exit.
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Ld;
  Ld.Kind = IKind::Load;
  Ld.AlphaOp = alpha::Opcode::LDQ;
  Ld.B = IOperand::gpr(3);
  Ld.DestAcc = 1;
  Ld.VAddr = Entry;
  Ld.SizeBytes = 4;
  Ld.PeiIndex = 0;
  F.Body.push_back(Ld);
  F.PeiTable.push_back({1, Entry, {{uint8_t(5), uint8_t(1)}}});
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6, 10};
  F.BodyBytes = 14;
  F.Exits.push_back({2, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  F.SourceInsts = 2;
  return F;
}

/// Builds \p Count fragments and puts them into \p Store under
/// \p Fingerprint; entry addresses are derived from the fingerprint so
/// each image's payload is distinguishable.
void putImage(CacheStore &Store, uint64_t Fingerprint, unsigned Count,
              uint64_t CostUnits = 0) {
  std::vector<Fragment> Storage;
  for (unsigned I = 0; I != Count; ++I)
    Storage.push_back(makeFragment(0x1000 + (Fingerprint & 0xFF) * 0x1000 +
                                       I * 0x100,
                                   0x500000 + I * 0x100));
  std::vector<const Fragment *> Frags;
  for (const Fragment &F : Storage)
    Frags.push_back(&F);
  Store.put(Fingerprint, Frags, CostUnits);
}

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// Counts files in TempDir whose name starts with \p Prefix (staging-file
/// leak detector; temp names carry a pid + sequence suffix).
size_t countFilesWithPrefix(const std::string &Prefix) {
  size_t Count = 0;
  DIR *Dir = opendir(testing::TempDir().c_str());
  if (!Dir)
    return 0;
  while (dirent *Ent = readdir(Dir))
    if (std::string(Ent->d_name).rfind(Prefix, 0) == 0)
      ++Count;
  closedir(Dir);
  return Count;
}

} // namespace

TEST(CacheStore, MissingFileIsNotFound) {
  CacheStore Store;
  EXPECT_EQ(Store.open(tempPath("store-none.tstore")),
            StoreStatus::FileNotFound);
  EXPECT_EQ(Store.imageCount(), 0u);
}

TEST(CacheStore, MultipleImagesRoundTripThroughOneFile) {
  std::string Path = tempPath("store-rt.tstore");
  CacheStore Store;
  putImage(Store, 0xA1, 3, /*CostUnits=*/111);
  putImage(Store, 0xB2, 1, /*CostUnits=*/222);
  putImage(Store, 0xC3, 5, /*CostUnits=*/333);
  ASSERT_TRUE(Store.save(Path));

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  ASSERT_EQ(Loaded.imageCount(), 3u);
  for (uint64_t Fp : {0xA1ull, 0xB2ull, 0xC3ull}) {
    std::vector<Fragment> Frags;
    ASSERT_EQ(Loaded.lookup(Fp, Frags), StoreStatus::Ok) << "image " << Fp;
    EXPECT_EQ(Frags.size(), Store.find(Fp)->FragmentCount);
    for (const Fragment &F : Frags) {
      EXPECT_EQ(F.Body.size(), 3u);
      EXPECT_EQ(F.PeiTable.size(), 1u);
      EXPECT_EQ(F.Exits.size(), 1u);
    }
  }
  EXPECT_EQ(Loaded.find(0xB2)->CostUnits, 222u);
  EXPECT_EQ(Loaded.find(0xB2)->SaveCount, 1u);
  // Slot order (write order) survives the round trip.
  EXPECT_EQ(Loaded.images()[0].Fingerprint, 0xA1u);
  EXPECT_EQ(Loaded.images()[2].Fingerprint, 0xC3u);
}

TEST(CacheStore, LookupOfUnknownFingerprintIsImageNotFound) {
  CacheStore Store;
  putImage(Store, 0xA1, 2);
  std::vector<Fragment> Frags;
  EXPECT_EQ(Store.lookup(0xFF, Frags), StoreStatus::ImageNotFound);
  EXPECT_TRUE(Frags.empty());
}

TEST(CacheStore, PutReplacesSlotAndCarriesSaveCount) {
  std::string Path = tempPath("store-replace.tstore");
  CacheStore Store;
  putImage(Store, 0xA1, 3);
  putImage(Store, 0xB2, 2);
  // Rewrite A1 with a different fragment set: the slot is replaced (not
  // duplicated), its SaveCount advances, and it becomes the newest slot.
  putImage(Store, 0xA1, 5, /*CostUnits=*/99);
  ASSERT_EQ(Store.imageCount(), 2u);
  EXPECT_EQ(Store.find(0xA1)->FragmentCount, 5u);
  EXPECT_EQ(Store.find(0xA1)->SaveCount, 2u);
  EXPECT_EQ(Store.find(0xA1)->CostUnits, 99u);
  EXPECT_EQ(Store.images().back().Fingerprint, 0xA1u);

  ASSERT_TRUE(Store.save(Path));
  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Loaded.find(0xA1)->SaveCount, 2u);
  std::vector<Fragment> Frags;
  ASSERT_EQ(Loaded.lookup(0xA1, Frags), StoreStatus::Ok);
  EXPECT_EQ(Frags.size(), 5u);
}

TEST(CacheStore, EmptyImageSlotRoundTrips) {
  // A slot with zero fragments (everything filtered by the exec-count
  // floor) is a valid slot, not corruption.
  std::string Path = tempPath("store-empty.tstore");
  CacheStore Store;
  Store.put(0xE0, {}, /*CostUnits=*/7);
  ASSERT_TRUE(Store.save(Path));

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  std::vector<Fragment> Frags;
  EXPECT_EQ(Loaded.lookup(0xE0, Frags), StoreStatus::Ok);
  EXPECT_TRUE(Frags.empty());
  EXPECT_EQ(Loaded.find(0xE0)->CostUnits, 7u);
}

TEST(CacheStore, CompactDropsOldestWrittenSlots) {
  CacheStore Store;
  putImage(Store, 0x01, 1);
  putImage(Store, 0x02, 1);
  putImage(Store, 0x03, 1);
  putImage(Store, 0x01, 2); // Refresh 0x01: now newest, 0x02 is oldest.
  EXPECT_EQ(Store.compact(2), 1u);
  EXPECT_FALSE(Store.contains(0x02));
  EXPECT_TRUE(Store.contains(0x03));
  EXPECT_TRUE(Store.contains(0x01));
  EXPECT_EQ(Store.compact(0), 0u) << "0 means unbounded";
  EXPECT_EQ(Store.imageCount(), 2u);
}

TEST(CacheStore, SaveIsAtomicAndLeavesNoStagingFile) {
  std::string Path = tempPath("store-atomic.tstore");
  CacheStore Store;
  putImage(Store, 0xA1, 3);
  ASSERT_TRUE(Store.save(Path));
  // Overwrite with different contents; the old file must be replaced in
  // one step and no ".tmp.*" staging file may survive.
  putImage(Store, 0xB2, 1);
  ASSERT_TRUE(Store.save(Path));
  EXPECT_EQ(countFilesWithPrefix("store-atomic.tstore.tmp"), 0u);

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Loaded.imageCount(), 2u);
}

TEST(CacheStore, LegacyCacheFileIsDetectedNotRejected) {
  std::string Path = tempPath("store-legacy.tstore");
  Fragment F = makeFragment(0x1000, 0x2000);
  std::vector<const Fragment *> Frags{&F};
  ASSERT_TRUE(saveCacheFile(Path, 0xFEED, Frags));

  CacheStore Store;
  EXPECT_EQ(Store.open(Path), StoreStatus::LegacyFile);
  EXPECT_EQ(Store.imageCount(), 0u);
}

TEST(CacheStore, SaveMergedAdoptsSlotsFromConcurrentWriters) {
  std::string Path = tempPath("store-merge.tstore");
  // Writer A saves image A1. Writer B — which opened the path before A
  // existed, so holds only B2 — must not clobber A's slot.
  CacheStore A;
  putImage(A, 0xA1, 3);
  ASSERT_TRUE(A.save(Path));

  CacheStore B;
  putImage(B, 0xB2, 2);
  SaveMergeResult Merged = B.saveMerged(Path);
  EXPECT_TRUE(Merged.Saved);
  EXPECT_EQ(Merged.Adopted, 1u);
  EXPECT_EQ(Merged.Compacted, 0u);

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  ASSERT_EQ(Loaded.imageCount(), 2u);
  // Adopted slots are kept older than the writer's own.
  EXPECT_EQ(Loaded.images()[0].Fingerprint, 0xA1u);
  EXPECT_EQ(Loaded.images()[1].Fingerprint, 0xB2u);
  std::vector<Fragment> Frags;
  EXPECT_EQ(Loaded.lookup(0xA1, Frags), StoreStatus::Ok);
  EXPECT_EQ(Loaded.lookup(0xB2, Frags), StoreStatus::Ok);
}

TEST(CacheStore, SaveMergedOwnSlotWinsOnCollision) {
  std::string Path = tempPath("store-collide.tstore");
  CacheStore A;
  putImage(A, 0xA1, 3);
  ASSERT_TRUE(A.save(Path));

  // B rewrites the same image with a different fragment count: B's version
  // (the later writer of that image) must land on disk.
  CacheStore B;
  putImage(B, 0xA1, 5);
  SaveMergeResult Merged = B.saveMerged(Path);
  EXPECT_TRUE(Merged.Saved);
  EXPECT_EQ(Merged.Adopted, 0u);

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  ASSERT_EQ(Loaded.imageCount(), 1u);
  EXPECT_EQ(Loaded.find(0xA1)->FragmentCount, 5u);
}

TEST(CacheStore, SaveMergedAppliesImageBound) {
  std::string Path = tempPath("store-bound.tstore");
  CacheStore A;
  putImage(A, 0x01, 1);
  putImage(A, 0x02, 1);
  ASSERT_TRUE(A.save(Path));

  CacheStore B;
  putImage(B, 0x03, 1);
  SaveMergeResult Merged = B.saveMerged(Path, /*MaxImages=*/2);
  EXPECT_TRUE(Merged.Saved);
  EXPECT_EQ(Merged.Adopted, 2u);
  EXPECT_EQ(Merged.Compacted, 1u);

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  ASSERT_EQ(Loaded.imageCount(), 2u);
  // The oldest adopted slot is the one dropped; the writer's own slot is
  // newest and always survives.
  EXPECT_FALSE(Loaded.contains(0x01));
  EXPECT_TRUE(Loaded.contains(0x02));
  EXPECT_TRUE(Loaded.contains(0x03));
}

TEST(CacheStore, SaveMergedOverCorruptFileRewritesCleanly) {
  std::string Path = tempPath("store-heal.tstore");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "not a cache store at all";
  }
  CacheStore Store;
  putImage(Store, 0xA1, 1);
  SaveMergeResult Merged = Store.saveMerged(Path);
  EXPECT_TRUE(Merged.Saved);
  EXPECT_EQ(Merged.Adopted, 0u);

  CacheStore Loaded;
  ASSERT_EQ(Loaded.open(Path), StoreStatus::Ok);
  EXPECT_EQ(Loaded.imageCount(), 1u);
}

TEST(CacheStore, SaveMergedRemovesLockFile) {
  std::string Path = tempPath("store-lock.tstore");
  CacheStore Store;
  putImage(Store, 0xA1, 1);
  SaveMergeResult Merged = Store.saveMerged(Path);
  EXPECT_TRUE(Merged.Saved);
  EXPECT_FALSE(Merged.LockContended);
  EXPECT_FALSE(std::ifstream(Path + ".lock").good())
      << "lock file left behind";
}
