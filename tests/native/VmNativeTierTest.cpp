//===- tests/native/VmNativeTierTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-VM contracts of the native-host execution tier: bit-identical
/// architected state against pure interpretation on every workload; full
/// statistics identity against a native-off run (the tier may only add
/// `native.*` counters); warm starts that import persisted objects and
/// perform ZERO host compilations; deterministic graceful degrade with no
/// toolchain (ILDP_NATIVE_CC pointed at a nonexistent compiler); typed
/// degrade under armed native_compile / native_load faults; and precise
/// mid-fragment trap deopt out of native code.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/FaultInjector.h"
#include "native/NativeCompiler.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>

using namespace ildp;
using namespace ildp::vm;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

/// Low enough that every workload's hot code tiers up quickly.
constexpr uint64_t TestThreshold = 8;

bool hostToolchain() { return native::hostCompiler().found(); }

std::string tempStorePath(const char *Tag) {
  std::string Path = testing::TempDir() + "/native-" + Tag + "." +
                     std::to_string(getpid()) + ".tstore";
  std::remove(Path.c_str());
  return Path;
}

ArchState referenceRun(const std::string &Name) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  EXPECT_EQ(Interp.run(2'000'000'000ull).Status, StepStatus::Halted);
  return Interp.state();
}

void expectSameGprs(const ArchState &Got, const ArchState &Ref,
                    const std::string &Context) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

struct Outcome {
  ArchState Arch;
  StatisticSet Stats;
};

Outcome runWorkload(const std::string &Name, VmConfig Config) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Name;
  return {Vm.interpreter().state(), Vm.stats()};
}

VmConfig nativeConfig() {
  VmConfig Config;
  Config.NativeTier = true;
  Config.NativeThreshold = TestThreshold;
  return Config;
}

} // namespace

TEST(VmNativeTier, EveryWorkloadMatchesInterpreterCold) {
  for (const std::string &W : workloads::workloadNames()) {
    ArchState Ref = referenceRun(W);
    Outcome Out = runWorkload(W, nativeConfig());
    expectSameGprs(Out.Arch, Ref, W + "/native-cold");
    if (hostToolchain()) {
      EXPECT_EQ(Out.Stats.get("native.enabled"), 1u) << W;
      EXPECT_GT(Out.Stats.get("native.submitted"), 0u) << W;
    } else {
      EXPECT_EQ(Out.Stats.get("native.enabled"), 0u) << W;
      EXPECT_EQ(Out.Stats.get("native.no_toolchain"), 1u) << W;
    }
  }
}

TEST(VmNativeTier, StatsIdenticalToNativeOffRun) {
  // The native tier replaces the execution engine, not the execution: on
  // the same workload every counter outside native.* must be bit-identical
  // to a native-off run — exits, per-class usage tallies, V-instruction
  // credit, RAS traffic, translation work, everything. This holds even
  // though compile completion timing is nondeterministic, because all
  // native accounting is a pure function of the (deterministic) exit
  // indices.
  for (const std::string &W : {std::string("gzip"), std::string("mcf")}) {
    VmConfig Off;
    Outcome OffOut = runWorkload(W, Off);
    Outcome OnOut = runWorkload(W, nativeConfig());

    for (const auto &[Name, Value] : OffOut.Stats.getWithPrefix(""))
      EXPECT_EQ(OnOut.Stats.get(Name), Value) << W << ": stat " << Name;
    for (const auto &[Name, Value] : OnOut.Stats.getWithPrefix("")) {
      if (Name.rfind("native.", 0) != 0) {
        EXPECT_EQ(OffOut.Stats.get(Name), Value)
            << W << ": native-only stat " << Name;
      }
    }
    if (hostToolchain()) {
      EXPECT_GT(OnOut.Stats.get("native.submitted"), 0u) << W;
    }
  }
}

TEST(VmNativeTier, WarmStartCompilesNothingAndRunsNatively) {
  if (!hostToolchain())
    GTEST_SKIP() << "no host C compiler on this machine";

  std::string Path = tempStorePath("warm");
  ArchState Ref = referenceRun("gzip");

  // Save-runs until converged: the save path waits for in-flight compiles,
  // so each round persists every object its run qualified; once a warm run
  // qualifies nothing new, compiles hit zero and stay there.
  StatisticSet Last;
  uint64_t Compiles = 1;
  int Rounds = 0;
  for (; Rounds != 6 && Compiles != 0; ++Rounds) {
    VmConfig Config = nativeConfig();
    Config.PersistPath = Path;
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
    VirtualMachine Vm(Mem, Img.EntryPc, Config);
    EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
    expectSameGprs(Vm.interpreter().state(), Ref,
                   "warm round " + std::to_string(Rounds));
    Last = Vm.stats();
    Compiles = Last.get("native.compiles");
  }
  ASSERT_LT(Rounds, 6) << "native object set never converged";

  // The converged warm run: the acceptance criterion in person.
  EXPECT_EQ(Last.get("native.compiles"), 0u);
  EXPECT_EQ(Last.get("native.submitted"), 0u);
  EXPECT_GT(Last.get("native.imported_objects"), 0u);
  EXPECT_GT(Last.get("native.reattached"), 0u);
  EXPECT_GT(Last.get("native.runs"), 0u);
  EXPECT_GT(Last.get("native.insts"), 0u);
  // And it is genuinely warm on the fragment side too.
  EXPECT_EQ(Last.get("dbt.fragments"), 0u);
  std::remove(Path.c_str());
}

TEST(VmNativeTier, NoToolchainRunsExactlyAsToday) {
  // ILDP_NATIVE_CC pointed at a nonexistent binary is the deterministic
  // no-toolchain environment; the probe cache keys on the variable. The
  // prior value is restored so a CI run that sets the variable for the
  // whole binary keeps its simulated environment.
  const char *Prev = getenv("ILDP_NATIVE_CC");
  std::string Saved = Prev ? Prev : "";
  ASSERT_EQ(setenv("ILDP_NATIVE_CC", "/nonexistent/ildp-no-such-cc", 1), 0);
  ASSERT_FALSE(native::hostCompiler().found());

  Outcome Off = runWorkload("gzip", VmConfig());
  Outcome On = runWorkload("gzip", nativeConfig());
  expectSameGprs(On.Arch, Off.Arch, "no-toolchain");
  EXPECT_EQ(On.Stats.get("native.enabled"), 0u);
  EXPECT_EQ(On.Stats.get("native.no_toolchain"), 1u);
  EXPECT_FALSE(On.Stats.has("native.runs"));
  // Beyond the two gauges above, the run is indistinguishable from today.
  for (const auto &[Name, Value] : Off.Stats.getWithPrefix(""))
    EXPECT_EQ(On.Stats.get(Name), Value) << "stat " << Name;

  if (Prev)
    ASSERT_EQ(setenv("ILDP_NATIVE_CC", Saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("ILDP_NATIVE_CC"), 0);
}

TEST(VmNativeTier, ArmedCompileFaultDegradesToIisaTier) {
  if (!hostToolchain())
    GTEST_SKIP() << "no host C compiler on this machine";

  ArchState Ref = referenceRun("gzip");
  FaultInjector Inj;
  Inj.armCount(FaultSite::NativeCompile, 1u << 20); // Every compile fails.
  VmConfig Config = nativeConfig();
  Config.Dbt.Fault = &Inj;
  Outcome Out = runWorkload("gzip", Config);
  expectSameGprs(Out.Arch, Ref, "native-compile-fault");
  EXPECT_GT(Out.Stats.get("native.submitted"), 0u);
  EXPECT_GT(Out.Stats.get("native.compile_failed"), 0u);
  EXPECT_EQ(Out.Stats.get("native.compiles"), 0u);
  EXPECT_EQ(Out.Stats.get("native.runs"), 0u);
}

TEST(VmNativeTier, ArmedLoadFaultDegradesToIisaTier) {
  if (!hostToolchain())
    GTEST_SKIP() << "no host C compiler on this machine";

  // Seed a store with native objects, then warm-start with the dlopen
  // site armed: the attach fails, the fragment stays on the I-ISA tier,
  // the answer does not change.
  std::string Path = tempStorePath("loadfault");
  ArchState Ref = referenceRun("gzip");
  {
    VmConfig Config = nativeConfig();
    Config.PersistPath = Path;
    Outcome Seed = runWorkload("gzip", Config);
    expectSameGprs(Seed.Arch, Ref, "load-fault seed");
  }
  FaultInjector Inj;
  Inj.armCount(FaultSite::NativeLoad, 1);
  VmConfig Config = nativeConfig();
  Config.PersistPath = Path;
  Config.PersistSave = false;
  Config.Dbt.Fault = &Inj;
  Outcome Out = runWorkload("gzip", Config);
  expectSameGprs(Out.Arch, Ref, "native-load-fault");
  EXPECT_GT(Out.Stats.get("native.imported_objects"), 0u);
  EXPECT_EQ(Out.Stats.get("native.load_failed"), 1u);
  std::remove(Path.c_str());
}

TEST(VmNativeTier, MidFragmentTrapDeoptIsPrecise) {
  if (!hostToolchain())
    GTEST_SKIP() << "no host C compiler on this machine";

  // The VmTrapRecoveryTest walk-off-the-array program: its hot loop runs
  // 1024 iterations before the load faults mid-fragment. Warm-started
  // with persisted native objects the loop executes natively from its
  // first translated pass, so the trap is raised from compiled host code
  // and must recover the exact interpreter state through the PEI table.
  using Op = alpha::Opcode;
  auto Build = [](GuestMemory &Mem) {
    alpha::Assembler Asm(0x10000);
    Asm.loadImm(16, 0x20000);
    Asm.loadImm(17, 4000);
    Asm.movi(0, 9);
    auto Loop = Asm.createLabel("loop");
    Asm.bind(Loop);
    Asm.operatei(Op::ADDQ, 9, 3, 2);
    Asm.operatei(Op::SLL, 2, 2, 3);
    Asm.ldq(4, 0, 16);
    Asm.operate(Op::XOR, 3, 4, 5);
    Asm.operate(Op::ADDQ, 9, 5, 9);
    Asm.lda(16, 8, 16);
    Asm.operatei(Op::SUBL, 17, 1, 17);
    Asm.condBr(Op::BNE, 17, Loop);
    Asm.halt();
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(0x10000 + I * 4, Words[I]);
    Mem.mapRegion(0x20000, 0x2000);
    for (unsigned I = 0; I != 1024; ++I)
      Mem.poke64(0x20000 + I * 8, I * 0x9E3779B97F4A7C15ull);
    return uint64_t(0x10000);
  };

  ArchState Ref;
  Trap RefTrap;
  {
    GuestMemory Mem;
    uint64_t Entry = Build(Mem);
    Interpreter Interp(Mem);
    Interp.state().Pc = Entry;
    StepInfo Last = Interp.run(1'000'000);
    ASSERT_EQ(Last.Status, StepStatus::Trapped);
    Ref = Interp.state();
    RefTrap = Last.TrapInfo;
  }
  ASSERT_EQ(RefTrap.Kind, TrapKind::MemUnmapped);

  std::string Path = tempStorePath("trapdeopt");
  VmConfig Config = nativeConfig();
  Config.NativeThreshold = 1;
  Config.PersistPath = Path;
  StatisticSet Stats;
  RunResult Result;
  for (int Round = 0; Round != 2; ++Round) { // Round 1 runs warm+native.
    GuestMemory Mem;
    uint64_t Entry = Build(Mem);
    VirtualMachine Vm(Mem, Entry, Config);
    Result = Vm.run();
    ASSERT_EQ(Result.Reason, StopReason::Trapped);
    Stats = Vm.stats();

    EXPECT_EQ(Result.Trap.TrapInfo.Kind, RefTrap.Kind);
    EXPECT_EQ(Result.Trap.TrapInfo.Pc, RefTrap.Pc);
    EXPECT_EQ(Result.Trap.TrapInfo.MemAddr, RefTrap.MemAddr);
    for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
      EXPECT_EQ(Result.Trap.Arch.readGpr(Reg), Ref.readGpr(Reg))
          << "round " << Round << ": register r" << Reg
          << " not precisely recovered";
    EXPECT_EQ(Result.Trap.Arch.Pc, Ref.Pc);
  }
  // The warm round really took the native path up to the trap.
  EXPECT_GT(Stats.get("native.runs"), 0u);
  EXPECT_GT(Stats.get("exit.trap"), 0u);
  std::remove(Path.c_str());
}
