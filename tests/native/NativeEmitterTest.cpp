//===- tests/native/NativeEmitterTest.cpp ---------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emitter's contracts that need no host toolchain: fragmentKey()
/// covers exactly the emission-relevant fields (stable across exit
/// repatching and accounting metadata, sensitive to anything that changes
/// the generated code), and emission is total-or-refuse — malformed
/// bodies come back with a typed reason, never a bogus translation unit.
///
//===----------------------------------------------------------------------===//

#include "native/NativeEmitter.h"

#include "native/NativeAbi.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

namespace {

IisaInst compute(Opcode Op, IOperand A, IOperand B, uint8_t Acc,
                 uint8_t Gpr = NoReg) {
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Op;
  I.A = A;
  I.B = B;
  I.DestAcc = Acc;
  I.DestGpr = Gpr;
  return I;
}

IisaInst branchTo(uint64_t Target) {
  IisaInst I;
  I.Kind = IKind::Branch;
  I.VTarget = Target;
  return I;
}

std::vector<IisaInst> sampleBody() {
  std::vector<IisaInst> Body;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = 0x10000;
  Body.push_back(Vpc);
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(2),
                         0, 5));
  IisaInst Ld;
  Ld.Kind = IKind::Load;
  Ld.AlphaOp = Opcode::LDQ;
  Ld.B = IOperand::gpr(16);
  Ld.MemDisp = 8;
  Ld.DestAcc = 1;
  Ld.DestGpr = 4;
  Body.push_back(Ld);
  Body.push_back(branchTo(0x10020));
  return Body;
}

} // namespace

TEST(NativeEmitter, KeyIsDeterministic) {
  std::vector<IisaInst> Body = sampleBody();
  EXPECT_EQ(native::fragmentKey(Body, IsaVariant::Modified),
            native::fragmentKey(Body, IsaVariant::Modified));
  EXPECT_NE(native::fragmentKey(Body, IsaVariant::Modified),
            native::fragmentKey(Body, IsaVariant::Basic));
}

TEST(NativeEmitter, KeyIgnoresPatchableAndAccountingFields) {
  std::vector<IisaInst> Body = sampleBody();
  uint64_t Key = native::fragmentKey(Body, IsaVariant::Modified);

  // Exit repatching flips ToTranslator; imports/eviction churn the
  // accounting metadata. None of it changes the emitted code, so none of
  // it may change the key — this is what keeps one compiled object valid
  // across unchaining, re-install, and persist round-trips.
  std::vector<IisaInst> Patched = Body;
  Patched.back().ToTranslator = !Patched.back().ToTranslator;
  Patched[1].VCredit = 3;
  Patched[1].IsSourceOp = true;
  Patched[1].Usage = UsageClass::CommGlobal;
  Patched[2].VAddr = 0xDEAD;
  Patched[2].SizeBytes = 6;
  Patched[2].PeiIndex = 7;
  Patched[1].GprWriteArchOnly = true;
  EXPECT_EQ(native::fragmentKey(Patched, IsaVariant::Modified), Key);
}

TEST(NativeEmitter, KeyCoversEmissionRelevantFields) {
  std::vector<IisaInst> Body = sampleBody();
  uint64_t Key = native::fragmentKey(Body, IsaVariant::Modified);

  auto Mutated = [&](auto Mutate) {
    std::vector<IisaInst> Copy = Body;
    Mutate(Copy);
    return native::fragmentKey(Copy, IsaVariant::Modified);
  };
  EXPECT_NE(Mutated([](auto &B) { B[1].AlphaOp = Opcode::SUBQ; }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[1].A = IOperand::gpr(2); }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[1].B = IOperand::imm(3); }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[1].DestGpr = 6; }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[1].DestAcc = 7; }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[2].MemDisp = 16; }), Key);
  EXPECT_NE(Mutated([](auto &B) { B[3].VTarget = 0x10040; }), Key);
  EXPECT_NE(Mutated([](auto &B) { B.pop_back(); }), Key);
}

TEST(NativeEmitter, EmitsSelfContainedTranslationUnit) {
  native::EmitResult R =
      native::emitFragmentC(sampleBody(), IsaVariant::Modified);
  ASSERT_TRUE(R.Ok) << R.Reason;
  // The unit must be self-contained C: the ABI struct, the entry symbol,
  // and no includes (the compile command has no include paths).
  EXPECT_NE(R.Source.find("struct ildp_native_ctx"), std::string::npos);
  EXPECT_NE(R.Source.find(native::nativeEntrySymbol()), std::string::npos);
  EXPECT_EQ(R.Source.find("#include"), std::string::npos);
}

TEST(NativeEmitter, RefusesMalformedBodiesWithTypedReason) {
  native::EmitResult Empty =
      native::emitFragmentC({}, IsaVariant::Modified);
  EXPECT_FALSE(Empty.Ok);
  EXPECT_STREQ(Empty.Reason, "empty-body");

  std::vector<IisaInst> BadAcc = sampleBody();
  BadAcc[1].DestAcc = MaxAccumulators; // One past the hardware limit.
  native::EmitResult R1 = native::emitFragmentC(BadAcc, IsaVariant::Modified);
  EXPECT_FALSE(R1.Ok);
  EXPECT_STREQ(R1.Reason, "acc-out-of-range");

  std::vector<IisaInst> BadGpr = sampleBody();
  BadGpr[1].A = IOperand::gpr(NumIisaGprs); // One past the register file.
  native::EmitResult R2 = native::emitFragmentC(BadGpr, IsaVariant::Modified);
  EXPECT_FALSE(R2.Ok);
  EXPECT_STREQ(R2.Reason, "gpr-out-of-range");
}
