//===- tests/native/NativeStoreTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native-object persistence codec: exact round-trips, the
/// compile-command staleness gate (checked BEFORE any object bytes are
/// decoded), structural rejection of malformed payloads, and the raw
/// slot's interplay with CacheStore — raw payloads ride the store's
/// index/CRC/merge machinery but must never decode as fragments.
///
//===----------------------------------------------------------------------===//

#include "native/NativeStore.h"

#include "persist/CacheStore.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace ildp;
using namespace ildp::native;

namespace {

std::map<uint64_t, std::vector<uint8_t>> sampleObjects() {
  std::map<uint64_t, std::vector<uint8_t>> Objects;
  Objects[0x1111] = {0x7F, 'E', 'L', 'F', 1, 2, 3};
  Objects[0x2222] = std::vector<uint8_t>(300, 0xAB);
  Objects[0x3333] = {0x00}; // Single byte, and a zero at that.
  return Objects;
}

constexpr uint64_t Checksum = 0xFEEDFACE12345678ull;

void putLE32At(std::vector<uint8_t> &Bytes, size_t Off, uint32_t Value) {
  for (unsigned I = 0; I != 4; ++I)
    Bytes[Off + I] = uint8_t(Value >> (8 * I));
}

} // namespace

TEST(NativeStore, RoundTripIsExact) {
  std::map<uint64_t, std::vector<uint8_t>> Objects = sampleObjects();
  std::vector<uint8_t> Payload = encodeObjects(Objects, Checksum);

  std::map<uint64_t, std::vector<uint8_t>> Out;
  Out[0xDEAD] = {1}; // Must be cleared by decode.
  EXPECT_EQ(decodeObjects(Payload, Checksum, Out), NativeStoreStatus::Ok);
  EXPECT_EQ(Out, Objects);

  std::map<uint64_t, std::vector<uint8_t>> Empty;
  std::vector<uint8_t> EmptyPayload = encodeObjects(Empty, Checksum);
  EXPECT_EQ(decodeObjects(EmptyPayload, Checksum, Out),
            NativeStoreStatus::Ok);
  EXPECT_TRUE(Out.empty());
}

TEST(NativeStore, ChecksumMismatchIsStale) {
  std::vector<uint8_t> Payload = encodeObjects(sampleObjects(), Checksum);
  std::map<uint64_t, std::vector<uint8_t>> Out;
  EXPECT_EQ(decodeObjects(Payload, Checksum ^ 1, Out),
            NativeStoreStatus::Stale);
  EXPECT_TRUE(Out.empty());
}

TEST(NativeStore, StructuralDamageIsMalformed) {
  std::vector<uint8_t> Valid = encodeObjects(sampleObjects(), Checksum);
  std::map<uint64_t, std::vector<uint8_t>> Out;

  // Every truncation of an otherwise valid payload.
  for (size_t Len = 0; Len != Valid.size(); ++Len) {
    std::vector<uint8_t> Cut(Valid.begin(), Valid.begin() + long(Len));
    EXPECT_EQ(decodeObjects(Cut, Checksum, Out), NativeStoreStatus::Malformed)
        << "accepted prefix " << Len;
    EXPECT_TRUE(Out.empty()) << "objects from prefix " << Len;
  }

  std::vector<uint8_t> BadMagic = Valid;
  BadMagic[0] ^= 0xFF;
  EXPECT_EQ(decodeObjects(BadMagic, Checksum, Out),
            NativeStoreStatus::Malformed);

  std::vector<uint8_t> BadVersion = Valid;
  putLE32At(BadVersion, 8, NativeStoreVersion + 1);
  EXPECT_EQ(decodeObjects(BadVersion, Checksum, Out),
            NativeStoreStatus::Malformed);

  std::vector<uint8_t> BadCount = Valid;
  putLE32At(BadCount, 20, MaxNativeObjects + 1);
  EXPECT_EQ(decodeObjects(BadCount, Checksum, Out),
            NativeStoreStatus::Malformed);

  // Trailing garbage after the last object.
  std::vector<uint8_t> Trailing = Valid;
  Trailing.push_back(0x00);
  EXPECT_EQ(decodeObjects(Trailing, Checksum, Out),
            NativeStoreStatus::Malformed);
}

TEST(NativeStore, SlotFingerprintIsSaltedAwayFromImageFingerprint) {
  // The native slot must never collide with the image's own fragment slot
  // and must differ per image.
  EXPECT_NE(slotFingerprint(0xABCD), 0xABCDull);
  EXPECT_NE(slotFingerprint(0xABCD), slotFingerprint(0xABCEull));
  EXPECT_EQ(slotFingerprint(0xABCD), slotFingerprint(0xABCDull));
}

TEST(NativeStore, RawSlotRidesCacheStoreButNeverDecodesAsFragments) {
  std::string Path = testing::TempDir() + "/native-raw." +
                     std::to_string(getpid()) + ".tstore";
  std::remove(Path.c_str());

  std::vector<uint8_t> Payload = encodeObjects(sampleObjects(), Checksum);
  uint64_t Slot = slotFingerprint(0x1234);
  {
    persist::CacheStore Store;
    Store.putRaw(Slot, Payload);
    ASSERT_TRUE(Store.save(Path));
  }
  persist::CacheStore Store;
  // The slot passes the store's CRC/index validation on open...
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  const std::vector<uint8_t> *Loaded = Store.lookupRaw(Slot);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_EQ(*Loaded, Payload);
  std::map<uint64_t, std::vector<uint8_t>> Out;
  EXPECT_EQ(decodeObjects(*Loaded, Checksum, Out), NativeStoreStatus::Ok);

  // ...but a fragment lookup on it must refuse, not misparse.
  std::vector<dbt::Fragment> Frags;
  EXPECT_EQ(Store.lookup(Slot, Frags), persist::StoreStatus::BadPayload);
  EXPECT_TRUE(Frags.empty());

  std::remove(Path.c_str());
}
