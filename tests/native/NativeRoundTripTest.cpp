//===- tests/native/NativeRoundTripTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native tier's core conformance bar at the smallest possible grain:
/// emit a fragment body to C, compile it with the probed host toolchain,
/// dlopen it, run it — and require the resulting I-ISA machine state and
/// exit to be BIT-IDENTICAL to iisa::execute over the same body from the
/// same initial state. Every kind the emitter supports is exercised,
/// including side exits, software-predicted jumps, memory faults
/// mid-body, and GENTRAP. Skipped wholesale when no host compiler exists
/// (the VM-level suites prove that degrade separately).
///
//===----------------------------------------------------------------------===//

#include "native/NativeCompiler.h"
#include "native/NativeEmitter.h"
#include "native/NativeExec.h"
#include "native/NativeModule.h"

#include "mem/GuestMemory.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::iisa;
using alpha::Opcode;

namespace {

IisaInst compute(Opcode Op, IOperand A, IOperand B, uint8_t Acc,
                 uint8_t Gpr = NoReg) {
  IisaInst I;
  I.Kind = IKind::Compute;
  I.AlphaOp = Op;
  I.A = A;
  I.B = B;
  I.DestAcc = Acc;
  I.DestGpr = Gpr;
  return I;
}

IisaInst branchTo(uint64_t Target, bool ToTranslator = false) {
  IisaInst I;
  I.Kind = IKind::Branch;
  I.VTarget = Target;
  I.ToTranslator = ToTranslator;
  return I;
}

/// Emit + compile + load + wrap \p Body; hard-fails the test on any step.
std::shared_ptr<native::NativeCode>
compileBody(const std::vector<IisaInst> &Body, IsaVariant Variant) {
  native::EmitResult Emit = native::emitFragmentC(Body, Variant);
  EXPECT_TRUE(Emit.Ok) << Emit.Reason;
  if (!Emit.Ok)
    return nullptr;
  native::CompileResult Obj =
      native::compileToObject(native::hostCompiler(), Emit.Source);
  EXPECT_TRUE(Obj.Ok) << Obj.Diag << "\n--- emitted source ---\n"
                      << Emit.Source;
  if (!Obj.Ok)
    return nullptr;
  std::shared_ptr<native::NativeModule> Module = native::loadModule(Obj.Object);
  EXPECT_NE(Module, nullptr);
  if (!Module)
    return nullptr;
  auto Code = std::make_shared<native::NativeCode>();
  Code->Fn = Module->entry();
  Code->Module = std::move(Module);
  Code->Meta = native::buildMeta(Body);
  return Code;
}

/// Seeds deterministic non-trivial machine state.
void seedState(IExecState &S) {
  for (unsigned A = 0; A != MaxAccumulators; ++A)
    S.Acc[A] = 0x1111111111111111ull * (A + 1);
  for (unsigned G = 0; G != NumIisaGprs; ++G)
    if (G != alpha::RegZero)
      S.writeGpr(G, 0x9E3779B97F4A7C15ull * (G + 3));
}

void seedMemory(GuestMemory &Mem) {
  Mem.mapRegion(0x1000, 0x1000);
  for (unsigned I = 0; I != 0x200; ++I)
    Mem.poke64(0x1000 + I * 8, 0xC0FFEE0000ull + I);
}

/// Runs \p Body through both engines from identical state and requires
/// bit-identical outcomes: every accumulator, every GPR, the VPC base,
/// the exit record, and guest memory.
void expectSameRun(const std::vector<IisaInst> &Body, IsaVariant Variant,
                   const char *Context,
                   void (*Tweak)(IExecState &) = nullptr) {
  std::shared_ptr<native::NativeCode> Code = compileBody(Body, Variant);
  ASSERT_NE(Code, nullptr) << Context;

  GuestMemory RefMem, NatMem;
  seedMemory(RefMem);
  seedMemory(NatMem);
  IExecState Ref, Nat;
  seedState(Ref);
  seedState(Nat);
  if (Tweak) {
    Tweak(Ref);
    Tweak(Nat);
  }

  IExit RefExit = execute(Body.data(), Body.size(), Ref, RefMem, nullptr);
  IExit NatExit = native::runFragment(*Code, Nat, NatMem, Body);

  EXPECT_EQ(NatExit.K, RefExit.K) << Context;
  EXPECT_EQ(NatExit.VTarget, RefExit.VTarget) << Context;
  EXPECT_EQ(NatExit.InstIndex, RefExit.InstIndex) << Context;
  EXPECT_EQ(NatExit.TrapInfo.Kind, RefExit.TrapInfo.Kind) << Context;
  EXPECT_EQ(NatExit.TrapInfo.MemAddr, RefExit.TrapInfo.MemAddr) << Context;

  for (unsigned A = 0; A != MaxAccumulators; ++A)
    EXPECT_EQ(Nat.Acc[A], Ref.Acc[A]) << Context << ": acc " << A;
  for (unsigned G = 0; G != NumIisaGprs; ++G)
    EXPECT_EQ(Nat.readGpr(G), Ref.readGpr(G)) << Context << ": gpr " << G;
  EXPECT_EQ(Nat.VpcBase, Ref.VpcBase) << Context;
  for (unsigned I = 0; I != 0x200; ++I)
    EXPECT_EQ(NatMem.load(0x1000 + I * 8, 8).Value,
              RefMem.load(0x1000 + I * 8, 8).Value)
        << Context << ": mem word " << I;
}

class NativeRoundTrip : public ::testing::Test {
protected:
  void SetUp() override {
    if (!native::hostCompiler().found())
      GTEST_SKIP() << "no host C compiler on this machine";
  }
};

} // namespace

TEST_F(NativeRoundTrip, ComputeChain) {
  std::vector<IisaInst> Body;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = 0x10000;
  Body.push_back(Vpc);
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::gpr(2),
                         0, 5));
  Body.push_back(compute(Opcode::SLL, IOperand::acc(0), IOperand::imm(3),
                         0, 6));
  Body.push_back(compute(Opcode::ADDL, IOperand::acc(0), IOperand::gpr(3),
                         1, 7));
  Body.push_back(compute(Opcode::CMPULT, IOperand::acc(1), IOperand::acc(0),
                         2, 8));
  Body.push_back(compute(Opcode::XOR, IOperand::acc(2), IOperand::imm(-1),
                         3, 9));
  Body.push_back(compute(Opcode::UMULH, IOperand::gpr(4), IOperand::gpr(5),
                         4, 10));
  Body.push_back(compute(Opcode::ZAPNOT, IOperand::acc(4), IOperand::imm(0x33),
                         5, 11));
  Body.push_back(branchTo(0x10040));
  expectSameRun(Body, IsaVariant::Modified, "compute-chain");
}

TEST_F(NativeRoundTrip, LoadStoreWithDisplacement) {
  std::vector<IisaInst> Body;
  {
    IisaInst Ld;
    Ld.Kind = IKind::Load;
    Ld.AlphaOp = Opcode::LDQ;
    Ld.B = IOperand::imm(0x1000);
    Ld.MemDisp = 16;
    Ld.DestAcc = 0;
    Ld.DestGpr = 4;
    Body.push_back(Ld);
  }
  {
    IisaInst Ldl; // The one signed sub-width load.
    Ldl.Kind = IKind::Load;
    Ldl.AlphaOp = Opcode::LDL;
    Ldl.B = IOperand::imm(0x1000);
    Ldl.MemDisp = 4;
    Ldl.DestAcc = 1;
    Body.push_back(Ldl);
  }
  Body.push_back(compute(Opcode::ADDQ, IOperand::acc(0), IOperand::acc(1),
                         2, 5));
  {
    IisaInst St;
    St.Kind = IKind::Store;
    St.AlphaOp = Opcode::STL;
    St.A = IOperand::acc(2);
    St.B = IOperand::imm(0x1100);
    St.MemDisp = -8;
    Body.push_back(St);
  }
  {
    IisaInst Stb;
    Stb.Kind = IKind::Store;
    Stb.AlphaOp = Opcode::STB;
    Stb.A = IOperand::gpr(7);
    Stb.B = IOperand::imm(0x1200);
    Body.push_back(Stb);
  }
  Body.push_back(branchTo(0x10080));
  expectSameRun(Body, IsaVariant::Modified, "load-store");
}

TEST_F(NativeRoundTrip, CondExitBothWays) {
  auto MakeBody = [](Opcode Cond) {
    std::vector<IisaInst> Body;
    Body.push_back(compute(Opcode::CMPEQ, IOperand::gpr(1), IOperand::gpr(1),
                           0, NoReg));
    IisaInst Exit;
    Exit.Kind = IKind::CondExit;
    Exit.AlphaOp = Cond;
    Exit.A = IOperand::acc(0);
    Exit.VTarget = 0x20000;
    Body.push_back(Exit);
    Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(2), IOperand::imm(1),
                           1, 9));
    Body.push_back(branchTo(0x20040));
    return Body;
  };
  // CMPEQ(r1, r1) == 1: BNE takes the side exit at index 1, BEQ falls
  // through and leaves via the final branch — both must match, including
  // which trailing instructions (never) ran.
  expectSameRun(MakeBody(Opcode::BNE), IsaVariant::Modified, "side-exit");
  expectSameRun(MakeBody(Opcode::BEQ), IsaVariant::Modified, "fallthrough");
}

TEST_F(NativeRoundTrip, PredictedJumpHitAndMiss) {
  auto MakeBody = [](bool Hit) {
    std::vector<IisaInst> Body;
    // A receives the prediction compare result.
    Body.push_back(compute(Opcode::CMPEQ, IOperand::gpr(1),
                           Hit ? IOperand::gpr(1) : IOperand::gpr(2), 0));
    IisaInst J;
    J.Kind = IKind::JumpPredict;
    J.A = IOperand::acc(0);
    J.B = IOperand::gpr(3); // Actual target on a miss (low bits masked).
    J.VTarget = 0x30000;
    Body.push_back(J);
    return Body;
  };
  expectSameRun(MakeBody(true), IsaVariant::Modified, "predict-hit");
  expectSameRun(MakeBody(false), IsaVariant::Modified, "predict-miss");

  std::vector<IisaInst> Dispatch;
  Dispatch.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(0),
                             0, 5));
  IisaInst J;
  J.Kind = IKind::JumpDispatch;
  J.B = IOperand::gpr(6);
  Dispatch.push_back(J);
  expectSameRun(Dispatch, IsaVariant::Modified, "dispatch");

  std::vector<IisaInst> Ret;
  IisaInst Push;
  Push.Kind = IKind::PushDualRas;
  Push.VTarget = 0x40000;
  Ret.push_back(Push);
  IisaInst R;
  R.Kind = IKind::ReturnDual;
  R.B = IOperand::gpr(26);
  Ret.push_back(R);
  expectSameRun(Ret, IsaVariant::Modified, "return-dual");
}

TEST_F(NativeRoundTrip, CmovDecomposition) {
  auto MakeBody = [](uint64_t Selector) {
    std::vector<IisaInst> Body;
    Body.push_back(compute(Opcode::ADDQ, IOperand::imm(Selector),
                           IOperand::imm(0), 0));
    IisaInst Mask;
    Mask.Kind = IKind::CmovMask;
    Mask.AlphaOp = Opcode::CMOVNE;
    Mask.A = IOperand::acc(0);
    Mask.DestAcc = 1;
    Body.push_back(Mask);
    IisaInst Blend;
    Blend.Kind = IKind::CmovBlend;
    Blend.A = IOperand::acc(1);
    Blend.B = IOperand::gpr(4);
    Blend.DestGpr = 9; // Readable destination: the old-value operand.
    Body.push_back(Blend);
    Body.push_back(branchTo(0x50000));
    return Body;
  };
  expectSameRun(MakeBody(1), IsaVariant::Modified, "cmov-selected");
  expectSameRun(MakeBody(0), IsaVariant::Modified, "cmov-kept");
}

TEST_F(NativeRoundTrip, EmbeddedAddressSpecials) {
  std::vector<IisaInst> Body;
  IisaInst Save;
  Save.Kind = IKind::SaveRetAddr;
  Save.DestGpr = 26;
  Save.VTarget = 0x60004;
  Body.push_back(Save);
  IisaInst Emb;
  Emb.Kind = IKind::LoadEmbTarget;
  Emb.DestAcc = 3;
  Emb.VTarget = 0x60100;
  Body.push_back(Emb);
  Body.push_back(compute(Opcode::CMPEQ, IOperand::acc(3), IOperand::gpr(5),
                         0, 7));
  Body.push_back(branchTo(0x60200, /*ToTranslator=*/true));
  expectSameRun(Body, IsaVariant::Modified, "embedded-specials");
}

TEST_F(NativeRoundTrip, MidBodyMemoryFaultIsPrecise) {
  std::vector<IisaInst> Body;
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(7),
                         0, 5));
  {
    IisaInst St; // Lands in mapped memory: must be visible after the trap.
    St.Kind = IKind::Store;
    St.AlphaOp = Opcode::STQ;
    St.A = IOperand::acc(0);
    St.B = IOperand::imm(0x1800);
    Body.push_back(St);
  }
  {
    IisaInst Ld; // Unmapped: traps at index 2.
    Ld.Kind = IKind::Load;
    Ld.AlphaOp = Opcode::LDQ;
    Ld.B = IOperand::imm(0x7F0000);
    Ld.DestAcc = 1;
    Ld.DestGpr = 6;
    Body.push_back(Ld);
  }
  Body.push_back(branchTo(0x70000));
  expectSameRun(Body, IsaVariant::Modified, "mem-fault");

  std::vector<IisaInst> Misaligned;
  {
    IisaInst Ld;
    Ld.Kind = IKind::Load;
    Ld.AlphaOp = Opcode::LDQ;
    Ld.B = IOperand::imm(0x1003); // Mapped but misaligned.
    Ld.DestAcc = 0;
    Misaligned.push_back(Ld);
  }
  Misaligned.push_back(branchTo(0x70040));
  expectSameRun(Misaligned, IsaVariant::Modified, "mem-misaligned");
}

TEST_F(NativeRoundTrip, HaltAndGentrap) {
  std::vector<IisaInst> HaltBody;
  HaltBody.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::gpr(2),
                             0, 5));
  IisaInst H;
  H.Kind = IKind::Halt;
  HaltBody.push_back(H);
  expectSameRun(HaltBody, IsaVariant::Modified, "halt");

  std::vector<IisaInst> TrapBody;
  TrapBody.push_back(compute(Opcode::SUBQ, IOperand::gpr(1), IOperand::gpr(2),
                             0, 5));
  IisaInst G;
  G.Kind = IKind::Gentrap;
  TrapBody.push_back(G);
  expectSameRun(TrapBody, IsaVariant::Modified, "gentrap");
}

TEST_F(NativeRoundTrip, BasicVariantCopies) {
  std::vector<IisaInst> Body;
  IisaInst From;
  From.Kind = IKind::CopyFromGpr;
  From.A = IOperand::gpr(17);
  From.DestAcc = 1;
  Body.push_back(From);
  Body.push_back(compute(Opcode::S4ADDQ, IOperand::acc(1), IOperand::imm(5),
                         1));
  IisaInst To;
  To.Kind = IKind::CopyToGpr;
  To.A = IOperand::acc(1);
  To.DestGpr = 17;
  Body.push_back(To);
  Body.push_back(branchTo(0x80000));
  expectSameRun(Body, IsaVariant::Basic, "basic-copies");
}

TEST_F(NativeRoundTrip, R31StaysHardwiredZero) {
  std::vector<IisaInst> Body;
  // Writes to r31 are discarded; reads yield zero.
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(1),
                         0, uint8_t(alpha::RegZero)));
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(alpha::RegZero),
                         IOperand::imm(9), 1, 5));
  Body.push_back(branchTo(0x90000));
  expectSameRun(Body, IsaVariant::Modified, "r31");
}

TEST_F(NativeRoundTrip, ModuleRegistryDeduplicatesByContent) {
  std::vector<IisaInst> Body;
  Body.push_back(compute(Opcode::ADDQ, IOperand::gpr(1), IOperand::imm(1),
                         0, 5));
  Body.push_back(branchTo(0xA0000));
  native::EmitResult Emit = native::emitFragmentC(Body, IsaVariant::Modified);
  ASSERT_TRUE(Emit.Ok);
  native::CompileResult Obj =
      native::compileToObject(native::hostCompiler(), Emit.Source);
  ASSERT_TRUE(Obj.Ok) << Obj.Diag;

  size_t Before = native::liveModuleCount();
  std::shared_ptr<native::NativeModule> M1 = native::loadModule(Obj.Object);
  ASSERT_NE(M1, nullptr);
  std::shared_ptr<native::NativeModule> M2 = native::loadModule(Obj.Object);
  // Identical bytes: one dlopen serves both handles (the fleet-sharing
  // property), and dropping every handle unmaps exactly once.
  EXPECT_EQ(M1.get(), M2.get());
  EXPECT_EQ(native::liveModuleCount(), Before + 1);
  M1.reset();
  EXPECT_EQ(native::liveModuleCount(), Before + 1);
  M2.reset();
  EXPECT_EQ(native::liveModuleCount(), Before);
}
