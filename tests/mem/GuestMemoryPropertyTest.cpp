//===- tests/mem/GuestMemoryPropertyTest.cpp ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized property sweeps over the guest memory: store/load
/// round-trips at every access size and alignment, little-endian overlap
/// consistency between sizes, page-boundary behaviour, and fault
/// precision (a faulting access has no side effects).
///
//===----------------------------------------------------------------------===//

#include "mem/GuestMemory.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;

namespace {

constexpr uint64_t Base = 0x40000;
constexpr uint64_t RegionSize = 4 * GuestMemory::PageSize;

uint64_t truncateToSize(uint64_t Value, unsigned Size) {
  return Size == 8 ? Value : Value & ((uint64_t(1) << (Size * 8)) - 1);
}

} // namespace

class GuestMemSizeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GuestMemSizeTest, RandomAlignedRoundTrips) {
  unsigned Size = GetParam();
  GuestMemory Mem;
  Mem.mapRegion(Base, RegionSize);
  Rng R(0x6E0 + Size);
  for (int Case = 0; Case != 400; ++Case) {
    uint64_t Offset = R.nextBelow(RegionSize - 8) & ~uint64_t(Size - 1);
    uint64_t Value = R.next();
    ASSERT_EQ(Mem.store(Base + Offset, Value, Size), MemFaultKind::None);
    MemAccessResult Load = Mem.load(Base + Offset, Size);
    ASSERT_TRUE(Load.ok());
    EXPECT_EQ(Load.Value, truncateToSize(Value, Size))
        << "size " << Size << " offset " << Offset;
  }
}

TEST_P(GuestMemSizeTest, MisalignedAccessesFaultWithoutSideEffects) {
  unsigned Size = GetParam();
  if (Size == 1)
    GTEST_SKIP() << "byte accesses cannot be misaligned";
  GuestMemory Mem;
  Mem.mapRegion(Base, RegionSize);
  // Pre-fill a window, then attempt misaligned stores over it: each must
  // fault and leave the window untouched.
  for (unsigned I = 0; I != 16; ++I)
    Mem.poke8(Base + I, uint8_t(0xA0 + I));
  for (unsigned Mis = 1; Mis != Size; ++Mis) {
    EXPECT_EQ(Mem.store(Base + Mis, ~uint64_t(0), Size),
              MemFaultKind::Unaligned);
    MemAccessResult Load = Mem.load(Base + Mis, Size);
    EXPECT_EQ(Load.Fault, MemFaultKind::Unaligned);
  }
  for (unsigned I = 0; I != 16; ++I) {
    MemAccessResult Byte = Mem.load(Base + I, 1);
    ASSERT_TRUE(Byte.ok());
    EXPECT_EQ(Byte.Value, uint64_t(0xA0 + I));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GuestMemSizeTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "B" + std::to_string(Info.param);
                         });

TEST(GuestMemoryProperty, SubAccessesAgreeWithContainingQuadword) {
  // Little-endian consistency: for a random quadword, every smaller
  // aligned load inside it must equal the corresponding byte slice.
  GuestMemory Mem;
  Mem.mapRegion(Base, RegionSize);
  Rng R(0x11EE);
  for (int Case = 0; Case != 200; ++Case) {
    uint64_t Addr = Base + (R.nextBelow(RegionSize - 8) & ~uint64_t(7));
    uint64_t Value = R.next();
    ASSERT_EQ(Mem.store(Addr, Value, 8), MemFaultKind::None);
    for (unsigned Size : {1u, 2u, 4u}) {
      for (unsigned Off = 0; Off != 8; Off += Size) {
        MemAccessResult Load = Mem.load(Addr + Off, Size);
        ASSERT_TRUE(Load.ok());
        EXPECT_EQ(Load.Value, truncateToSize(Value >> (Off * 8), Size));
      }
    }
  }
}

TEST(GuestMemoryProperty, ByteWritesComposeIntoWiderReads) {
  // The dual direction: bytes written individually must assemble into the
  // little-endian wider value.
  GuestMemory Mem;
  Mem.mapRegion(Base, GuestMemory::PageSize);
  Rng R(0xBEEF);
  for (int Case = 0; Case != 200; ++Case) {
    uint64_t Addr = Base + (R.nextBelow(GuestMemory::PageSize - 8) &
                            ~uint64_t(7));
    uint64_t Value = R.next();
    for (unsigned I = 0; I != 8; ++I)
      Mem.poke8(Addr + I, uint8_t(Value >> (I * 8)));
    MemAccessResult Load = Mem.load(Addr, 8);
    ASSERT_TRUE(Load.ok());
    EXPECT_EQ(Load.Value, Value);
  }
}

TEST(GuestMemoryProperty, PageBoundaryAlignedAccessesWork) {
  // Aligned accesses never straddle a page, including the last slot of a
  // page and the first slot of the next.
  GuestMemory Mem;
  Mem.mapRegion(Base, 2 * GuestMemory::PageSize);
  uint64_t Boundary = Base + GuestMemory::PageSize;
  for (unsigned Size : {1u, 2u, 4u, 8u}) {
    uint64_t LastSlot = Boundary - Size;
    ASSERT_EQ(Mem.store(LastSlot, 0x1111111111111111ull, Size),
              MemFaultKind::None);
    ASSERT_EQ(Mem.store(Boundary, 0x2222222222222222ull, Size),
              MemFaultKind::None);
    EXPECT_EQ(Mem.load(LastSlot, Size).Value,
              truncateToSize(0x1111111111111111ull, Size));
    EXPECT_EQ(Mem.load(Boundary, Size).Value,
              truncateToSize(0x2222222222222222ull, Size));
  }
}

TEST(GuestMemoryProperty, UnmappedEdgesFaultPrecisely) {
  // Accesses just below and just above a mapped region fault as
  // Unmapped; the region's own edges work.
  GuestMemory Mem;
  Mem.mapRegion(Base, GuestMemory::PageSize);
  EXPECT_EQ(Mem.load(Base - 8, 8).Fault, MemFaultKind::Unmapped);
  EXPECT_EQ(Mem.load(Base + GuestMemory::PageSize, 8).Fault,
            MemFaultKind::Unmapped);
  EXPECT_TRUE(Mem.load(Base, 8).ok());
  EXPECT_TRUE(Mem.load(Base + GuestMemory::PageSize - 8, 8).ok());
  // Faulting loads report the address class, not stale data.
  MemAccessResult Below = Mem.load(Base - 8, 8);
  EXPECT_FALSE(Below.ok());
}

TEST(GuestMemoryProperty, MapRegionIsIdempotentAndPreservesContents) {
  GuestMemory Mem;
  Mem.mapRegion(Base, GuestMemory::PageSize);
  Mem.poke64(Base + 64, 0xFEEDFACECAFEBEEFull);
  // Re-mapping the same (or an overlapping) region must not zero what is
  // already there.
  Mem.mapRegion(Base, 2 * GuestMemory::PageSize);
  EXPECT_EQ(Mem.load(Base + 64, 8).Value, 0xFEEDFACECAFEBEEFull);
  EXPECT_TRUE(Mem.load(Base + GuestMemory::PageSize, 8).ok());
}

TEST(GuestMemoryProperty, SparsePagesAllocateOnlyWhatIsTouched) {
  GuestMemory Mem;
  size_t Before = Mem.mappedPageCount();
  // Touch two pages a gigabyte apart: exactly two pages materialize.
  Mem.poke64(0x1000000000ull, 1);
  Mem.poke64(0x2000000000ull, 2);
  EXPECT_EQ(Mem.mappedPageCount(), Before + 2);
  EXPECT_EQ(Mem.load(0x1000000000ull, 8).Value, 1u);
  EXPECT_EQ(Mem.load(0x2000000000ull, 8).Value, 2u);
}
