//===- tests/mem/GuestMemoryTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mem/GuestMemory.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(GuestMemory, UnmappedFaults) {
  GuestMemory Mem;
  EXPECT_EQ(Mem.load(0x1000, 8).Fault, MemFaultKind::Unmapped);
  EXPECT_EQ(Mem.store(0x1000, 1, 8), MemFaultKind::Unmapped);
  EXPECT_FALSE(Mem.isMapped(0x1000));
}

TEST(GuestMemory, MapAndRoundTrip) {
  GuestMemory Mem;
  Mem.mapRegion(0x2000, 0x100);
  EXPECT_TRUE(Mem.isMapped(0x2000));
  EXPECT_EQ(Mem.store(0x2008, 0x1122334455667788ull, 8),
            MemFaultKind::None);
  MemAccessResult R = Mem.load(0x2008, 8);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value, 0x1122334455667788ull);
}

TEST(GuestMemory, LittleEndianSubAccess) {
  GuestMemory Mem;
  Mem.mapRegion(0x3000, 64);
  Mem.store(0x3000, 0x1122334455667788ull, 8);
  EXPECT_EQ(Mem.load(0x3000, 1).Value, 0x88u);
  EXPECT_EQ(Mem.load(0x3001, 1).Value, 0x77u);
  EXPECT_EQ(Mem.load(0x3000, 2).Value, 0x7788u);
  EXPECT_EQ(Mem.load(0x3004, 4).Value, 0x11223344u);
}

TEST(GuestMemory, MisalignedFaults) {
  GuestMemory Mem;
  Mem.mapRegion(0x4000, 64);
  EXPECT_EQ(Mem.load(0x4001, 8).Fault, MemFaultKind::Unaligned);
  EXPECT_EQ(Mem.load(0x4002, 4).Fault, MemFaultKind::Unaligned);
  EXPECT_EQ(Mem.load(0x4001, 2).Fault, MemFaultKind::Unaligned);
  EXPECT_EQ(Mem.store(0x4004, 0, 8), MemFaultKind::Unaligned);
  // Byte accesses can never be misaligned.
  EXPECT_TRUE(Mem.load(0x4001, 1).ok());
}

TEST(GuestMemory, ZeroInitialized) {
  GuestMemory Mem;
  Mem.mapRegion(0x5000, GuestMemory::PageSize);
  EXPECT_EQ(Mem.load(0x5FF8, 8).Value, 0u);
}

TEST(GuestMemory, RegionSpansPages) {
  GuestMemory Mem;
  Mem.mapRegion(GuestMemory::PageSize - 8, 16);
  EXPECT_TRUE(Mem.isMapped(GuestMemory::PageSize - 1));
  EXPECT_TRUE(Mem.isMapped(GuestMemory::PageSize));
  EXPECT_EQ(Mem.mappedPageCount(), 2u);
}

TEST(GuestMemory, WriteBlobMapsOnDemand) {
  GuestMemory Mem;
  const uint8_t Data[] = {1, 2, 3, 4, 5};
  Mem.writeBlob(0x7FFE, Data, sizeof(Data)); // Crosses a page boundary.
  EXPECT_EQ(Mem.load(0x7FFE, 1).Value, 1u);
  EXPECT_EQ(Mem.load(0x8002, 1).Value, 5u);
}

TEST(GuestMemory, PokeHelpers) {
  GuestMemory Mem;
  Mem.poke32(0x9000, 0xCAFEBABE);
  Mem.poke64(0x9008, 0x0123456789ABCDEFull);
  EXPECT_EQ(Mem.load(0x9000, 4).Value, 0xCAFEBABEu);
  EXPECT_EQ(Mem.load(0x9008, 8).Value, 0x0123456789ABCDEFull);
}

TEST(GuestMemory, StoreDoesNotAllocate) {
  GuestMemory Mem;
  EXPECT_EQ(Mem.store(0xA000, 42, 8), MemFaultKind::Unmapped);
  EXPECT_EQ(Mem.mappedPageCount(), 0u);
}
