//===- tests/alpha/DisasmTest.cpp -----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alpha disassembler formatting: exact Figure 2 style strings for each
/// encoding format, plus a parameterized sweep asserting every opcode
/// renders with its own mnemonic and without placeholder text.
///
//===----------------------------------------------------------------------===//

#include "alpha/Decoder.h"
#include "alpha/Disasm.h"
#include "alpha/Encoder.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;

namespace {

AlphaInst makeRepresentative(Opcode Op) {
  const OpInfo &Info = getOpInfo(Op);
  AlphaInst Inst;
  Inst.Op = Op;
  switch (Info.Form) {
  case Format::Mem:
    Inst.Ra = 3;
    Inst.Rb = 16;
    Inst.Disp = -124;
    break;
  case Format::Branch:
    Inst.Ra = 17;
    Inst.Disp = -42;
    break;
  case Format::Operate:
    Inst.Ra = 1;
    Inst.Rb = 2;
    Inst.Rc = 3;
    break;
  case Format::Jump:
    Inst.Ra = 26;
    Inst.Rb = 27;
    break;
  case Format::Pal:
    Inst.PalFunc = PalGentrap;
    break;
  }
  return Inst;
}

class DisasmSweepTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST(Disasm, MemFormatMatchesFigure2Style) {
  AlphaInst Inst;
  Inst.Op = Opcode::LDBU;
  Inst.Ra = 3;
  Inst.Rb = 16;
  Inst.Disp = 0;
  EXPECT_EQ(disassemble(Inst, 0x1000), "ldbu r3, 0[r16]");
  Inst.Disp = -8;
  EXPECT_EQ(disassemble(Inst, 0x1000), "ldbu r3, -8[r16]");
}

TEST(Disasm, OperateRegisterAndLiteralForms) {
  AlphaInst Inst;
  Inst.Op = Opcode::SUBL;
  Inst.Ra = 17;
  Inst.Rc = 17;
  Inst.HasLit = true;
  Inst.Lit = 1;
  EXPECT_EQ(disassemble(Inst, 0), "subl r17, 1, r17");
  Inst.HasLit = false;
  Inst.Rb = 3;
  EXPECT_EQ(disassemble(Inst, 0), "subl r17, r3, r17");
}

TEST(Disasm, CondBranchRendersAbsoluteTarget) {
  // A branch at PC with displacement D targets PC + 4 + 4*D.
  AlphaInst Inst;
  Inst.Op = Opcode::BNE;
  Inst.Ra = 17;
  Inst.Disp = -10;
  std::string Text = disassemble(Inst, 0x10040);
  EXPECT_EQ(Text, "bne r17, 0x1001c");
}

TEST(Disasm, UnconditionalBrOmitsZeroLinkRegister) {
  AlphaInst Inst;
  Inst.Op = Opcode::BR;
  Inst.Ra = RegZero;
  Inst.Disp = 2;
  // BR with r31 link is the plain "br <target>" idiom.
  EXPECT_EQ(disassemble(Inst, 0x1000), "br 0x100c");
  // BSR keeps its (architecturally meaningful) link register.
  Inst.Op = Opcode::BSR;
  Inst.Ra = RegRA;
  EXPECT_EQ(disassemble(Inst, 0x1000), "bsr r26, 0x100c");
}

TEST(Disasm, JumpFormats) {
  AlphaInst Inst;
  Inst.Op = Opcode::JSR;
  Inst.Ra = 26;
  Inst.Rb = 27;
  EXPECT_EQ(disassemble(Inst, 0), "jsr r26, (r27)");
  Inst.Op = Opcode::RET;
  Inst.Rb = 26;
  // RET's link register is architecturally ignored and not printed.
  EXPECT_EQ(disassemble(Inst, 0), "ret (r26)");
}

TEST(Disasm, PalFunctionsNamed) {
  AlphaInst Halt;
  Halt.Op = Opcode::CALL_PAL;
  Halt.PalFunc = PalHalt;
  EXPECT_EQ(disassemble(Halt, 0), "call_pal halt");
  AlphaInst Gt;
  Gt.Op = Opcode::CALL_PAL;
  Gt.PalFunc = PalGentrap;
  EXPECT_EQ(disassemble(Gt, 0), "call_pal gentrap");
}

TEST(Disasm, InvalidInstruction) {
  AlphaInst Inst; // Default Op is Invalid.
  EXPECT_EQ(disassemble(Inst, 0), "<invalid>");
}

TEST_P(DisasmSweepTest, EveryOpcodeRendersItsMnemonic) {
  Opcode Op = static_cast<Opcode>(GetParam());
  AlphaInst Inst = makeRepresentative(Op);
  std::string Text = disassemble(Inst, 0x10000);
  // The mnemonic must lead the line, followed by an operand separator.
  std::string Mnemonic = getMnemonic(Op);
  ASSERT_GE(Text.size(), Mnemonic.size());
  EXPECT_EQ(Text.substr(0, Mnemonic.size()), Mnemonic);
  EXPECT_EQ(Text.find("<invalid>"), std::string::npos);
}

TEST_P(DisasmSweepTest, DisasmStableAcrossEncodeDecode) {
  // Disassembly is a function of the decoded fields only: re-encoding and
  // re-decoding must render the identical string.
  Opcode Op = static_cast<Opcode>(GetParam());
  AlphaInst Inst = makeRepresentative(Op);
  AlphaInst Decoded = decode(encode(Inst));
  EXPECT_EQ(disassemble(Inst, 0x10000), disassemble(Decoded, 0x10000));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmSweepTest, ::testing::Range(0u, NumOpcodes),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      return getMnemonic(static_cast<Opcode>(Info.param));
    });
