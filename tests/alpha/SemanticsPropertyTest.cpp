//===- tests/alpha/SemanticsPropertyTest.cpp ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests of the pure Alpha semantics against independent oracle
/// formulations over random operands, plus algebraic identities the
/// translator's correctness silently depends on (the cmov decomposition
/// identity, scaled-add composition, zap/extract duality).
///
//===----------------------------------------------------------------------===//

#include "alpha/Semantics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

class SemanticsProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  Rng Rand{GetParam() * 0x9E3779B97F4A7C15ull + 1};
};

} // namespace

TEST_P(SemanticsProperty, ScaledAddsCompose) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next(), B = Rand.next();
    EXPECT_EQ(evalIntOp(Op::S4ADDQ, A, B),
              evalIntOp(Op::ADDQ, A * 4, B));
    EXPECT_EQ(evalIntOp(Op::S8SUBQ, A, B),
              evalIntOp(Op::SUBQ, A * 8, B));
    EXPECT_EQ(evalIntOp(Op::S4ADDL, A, B),
              evalIntOp(Op::ADDL, A * 4, B));
  }
}

TEST_P(SemanticsProperty, LongwordOpsMatchQuadThenSext) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next(), B = Rand.next();
    EXPECT_EQ(evalIntOp(Op::ADDL, A, B),
              uint64_t(int64_t(int32_t(uint32_t(A + B)))));
    EXPECT_EQ(evalIntOp(Op::SUBL, A, B),
              uint64_t(int64_t(int32_t(uint32_t(A - B)))));
    EXPECT_EQ(evalIntOp(Op::MULL, A, B),
              uint64_t(int64_t(int32_t(uint32_t(A) * uint32_t(B)))));
  }
}

TEST_P(SemanticsProperty, UmulhMatchesWideMultiply) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next(), B = Rand.next();
    unsigned __int128 Wide = (unsigned __int128)A * B;
    EXPECT_EQ(evalIntOp(Op::UMULH, A, B), uint64_t(Wide >> 64));
    EXPECT_EQ(evalIntOp(Op::MULQ, A, B), uint64_t(Wide));
  }
}

TEST_P(SemanticsProperty, ZapZapnotPartition) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next();
    uint64_t Mask = Rand.nextBelow(256);
    // zap and zapnot with the same mask partition the value.
    EXPECT_EQ(evalIntOp(Op::ZAP, A, Mask) | evalIntOp(Op::ZAPNOT, A, Mask),
              A);
    EXPECT_EQ(evalIntOp(Op::ZAP, A, Mask) & evalIntOp(Op::ZAPNOT, A, Mask),
              0u);
  }
}

TEST_P(SemanticsProperty, ExtractInsertMaskRoundTrip) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next();
    uint64_t Pos = Rand.nextBelow(8);
    uint64_t Byte = evalIntOp(Op::EXTBL, A, Pos);
    EXPECT_LT(Byte, 256u);
    // Reinserting the extracted byte over the masked original restores A.
    uint64_t Rebuilt = evalIntOp(Op::MSKBL, A, Pos) |
                       evalIntOp(Op::INSBL, Byte, Pos);
    EXPECT_EQ(Rebuilt, A);
  }
}

TEST_P(SemanticsProperty, CmovDecompositionIdentity) {
  // The translator's four-op decomposition must equal the architectural
  // conditional move for every cmov flavor:
  //   m = cond(a) ? ~0 : 0;  rc' = (b & m) | (rc & ~m)
  static const Op Cmovs[] = {Op::CMOVEQ, Op::CMOVNE,  Op::CMOVLT,
                             Op::CMOVGE, Op::CMOVLE,  Op::CMOVGT,
                             Op::CMOVLBS, Op::CMOVLBC};
  for (int I = 0; I != 400; ++I) {
    Op O = Cmovs[Rand.nextBelow(std::size(Cmovs))];
    uint64_t A = Rand.nextChance(1, 4) ? Rand.nextBelow(3) : Rand.next();
    uint64_t B = Rand.next(), OldRc = Rand.next();
    uint64_t Architectural = evalCmovCond(O, A) ? B : OldRc;
    uint64_t M = evalCmovCond(O, A) ? ~uint64_t(0) : 0;
    uint64_t T = evalIntOp(Op::AND, B, M);
    uint64_t U = evalIntOp(Op::BIC, OldRc, M);
    EXPECT_EQ(evalIntOp(Op::BIS, T, U), Architectural);
  }
}

TEST_P(SemanticsProperty, BranchAndCmovConditionsAgree) {
  // Matching branch/cmov predicates must agree on every value.
  for (int I = 0; I != 200; ++I) {
    uint64_t V = Rand.nextChance(1, 4) ? Rand.nextBelow(3) : Rand.next();
    EXPECT_EQ(evalBranchCond(Op::BEQ, V), evalCmovCond(Op::CMOVEQ, V));
    EXPECT_EQ(evalBranchCond(Op::BNE, V), evalCmovCond(Op::CMOVNE, V));
    EXPECT_EQ(evalBranchCond(Op::BLT, V), evalCmovCond(Op::CMOVLT, V));
    EXPECT_EQ(evalBranchCond(Op::BGE, V), evalCmovCond(Op::CMOVGE, V));
    EXPECT_EQ(evalBranchCond(Op::BLE, V), evalCmovCond(Op::CMOVLE, V));
    EXPECT_EQ(evalBranchCond(Op::BGT, V), evalCmovCond(Op::CMOVGT, V));
    EXPECT_EQ(evalBranchCond(Op::BLBS, V), evalCmovCond(Op::CMOVLBS, V));
    EXPECT_EQ(evalBranchCond(Op::BLBC, V), evalCmovCond(Op::CMOVLBC, V));
    // Opposite predicates partition.
    EXPECT_NE(evalBranchCond(Op::BEQ, V), evalBranchCond(Op::BNE, V));
    EXPECT_NE(evalBranchCond(Op::BLT, V), evalBranchCond(Op::BGE, V));
    EXPECT_NE(evalBranchCond(Op::BLE, V), evalBranchCond(Op::BGT, V));
    EXPECT_NE(evalBranchCond(Op::BLBS, V), evalBranchCond(Op::BLBC, V));
  }
}

TEST_P(SemanticsProperty, CountInstructionsAgreeWithBuiltins) {
  for (int I = 0; I != 200; ++I) {
    uint64_t V = Rand.nextChance(1, 8) ? 0 : Rand.next();
    EXPECT_EQ(evalIntOp(Op::CTPOP, 0, V),
              uint64_t(__builtin_popcountll(V)));
    EXPECT_EQ(evalIntOp(Op::CTLZ, 0, V),
              V ? uint64_t(__builtin_clzll(V)) : 64u);
    EXPECT_EQ(evalIntOp(Op::CTTZ, 0, V),
              V ? uint64_t(__builtin_ctzll(V)) : 64u);
  }
}

TEST_P(SemanticsProperty, CmpbgeByteOracle) {
  for (int I = 0; I != 200; ++I) {
    uint64_t A = Rand.next(), B = Rand.next();
    uint64_t Mask = evalIntOp(Op::CMPBGE, A, B);
    for (unsigned Byte = 0; Byte != 8; ++Byte) {
      bool Expected =
          uint8_t(A >> (8 * Byte)) >= uint8_t(B >> (8 * Byte));
      EXPECT_EQ((Mask >> Byte) & 1, uint64_t(Expected));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsProperty,
                         ::testing::Range(uint64_t(1), uint64_t(6)));
