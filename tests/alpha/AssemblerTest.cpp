//===- tests/alpha/AssemblerTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "alpha/Decoder.h"
#include "alpha/Semantics.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

TEST(Assembler, BackwardBranchDisplacement) {
  Assembler Asm(0x1000);
  auto L = Asm.createLabel("loop");
  Asm.bind(L);
  Asm.nop();
  Asm.nop();
  Asm.condBr(Op::BNE, 1, L); // at 0x1008, target 0x1000 -> disp -3.
  std::vector<uint32_t> W = Asm.finalize();
  AlphaInst B = decode(W[2]);
  EXPECT_EQ(B.Op, Op::BNE);
  EXPECT_EQ(B.Disp, -3);
  EXPECT_EQ(B.branchTarget(0x1008), 0x1000u);
}

TEST(Assembler, ForwardBranchResolved) {
  Assembler Asm(0x2000);
  auto L = Asm.createLabel("fwd");
  Asm.condBr(Op::BEQ, 2, L);
  Asm.nop();
  Asm.nop();
  Asm.bind(L);
  Asm.halt();
  std::vector<uint32_t> W = Asm.finalize();
  AlphaInst B = decode(W[0]);
  EXPECT_EQ(B.branchTarget(0x2000), 0x200Cu);
}

TEST(Assembler, LabelAddr) {
  Assembler Asm(0x3000);
  Asm.nop();
  auto L = Asm.createLabel();
  Asm.bind(L);
  Asm.nop();
  (void)Asm.finalize();
  EXPECT_EQ(Asm.labelAddr(L), 0x3004u);
}

namespace {

/// Evaluates a loadImm sequence by interpreting its LDA/LDAH/SLL words.
uint64_t evalLoadImm(const std::vector<uint32_t> &Words, uint8_t Reg) {
  uint64_t Regs[32] = {};
  for (uint32_t Word : Words) {
    AlphaInst I = decode(Word);
    switch (I.Op) {
    case Op::LDA:
    case Op::LDAH: {
      uint64_t Base = I.Rb == RegZero ? 0 : Regs[I.Rb];
      Regs[I.Ra] = evalIntOp(I.Op, Base, uint64_t(int64_t(I.Disp)));
      break;
    }
    case Op::SLL:
      Regs[I.Rc] = evalIntOp(Op::SLL, Regs[I.Ra], I.Lit);
      break;
    case Op::BIS: {
      uint64_t B = I.HasLit ? I.Lit : (I.Rb == RegZero ? 0 : Regs[I.Rb]);
      uint64_t A = I.Ra == RegZero ? 0 : Regs[I.Ra];
      Regs[I.Rc] = A | B;
      break;
    }
    default:
      ADD_FAILURE() << "unexpected opcode in loadImm expansion: "
                    << getMnemonic(I.Op);
    }
  }
  return Regs[Reg];
}

class LoadImmTest : public ::testing::TestWithParam<int64_t> {};

} // namespace

TEST_P(LoadImmTest, MaterializesExactValue) {
  int64_t Value = GetParam();
  Assembler Asm(0x4000);
  Asm.loadImm(5, Value);
  std::vector<uint32_t> W = Asm.finalize();
  EXPECT_EQ(evalLoadImm(W, 5), uint64_t(Value)) << "value " << Value;
}

INSTANTIATE_TEST_SUITE_P(
    Values, LoadImmTest,
    ::testing::Values(int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                      int64_t(-32768), int64_t(32767), int64_t(32768),
                      int64_t(0x7FFF0000), int64_t(0x12345678),
                      int64_t(-0x12345678), int64_t(0x7FFFFFFF),
                      int64_t(-0x80000000ll), int64_t(0x100000000ll),
                      int64_t(0x123456789ABCDEFll),
                      int64_t(-0x123456789ABCDEFll),
                      int64_t(0x8000000080000000ull),
                      int64_t(0xDEADBEEFCAFEBABEull)));

TEST(Assembler, LoadLabelAddrResolves) {
  Assembler Asm(0x10000);
  auto L = Asm.createLabel("target");
  Asm.loadLabelAddr(4, L);
  Asm.nop();
  Asm.bind(L);
  Asm.halt();
  std::vector<uint32_t> W = Asm.finalize();
  // The first two words are LDAH+LDA that materialize the label address.
  std::vector<uint32_t> Pair(W.begin(), W.begin() + 2);
  EXPECT_EQ(evalLoadImm(Pair, 4), Asm.labelAddr(L));
}

TEST(Assembler, JumpAndPalForms) {
  Assembler Asm(0x5000);
  Asm.jsr(26, 27);
  Asm.ret();
  Asm.gentrap();
  Asm.halt();
  std::vector<uint32_t> W = Asm.finalize();
  EXPECT_EQ(decode(W[0]).Op, Op::JSR);
  EXPECT_EQ(decode(W[0]).Ra, 26);
  EXPECT_EQ(decode(W[0]).Rb, 27);
  EXPECT_EQ(decode(W[1]).Op, Op::RET);
  EXPECT_EQ(decode(W[1]).Rb, RegRA);
  EXPECT_EQ(decode(W[2]).PalFunc, unsigned(PalGentrap));
  EXPECT_EQ(decode(W[3]).PalFunc, unsigned(PalHalt));
}

TEST(Assembler, NopIsCanonical) {
  Assembler Asm(0x6000);
  Asm.nop();
  std::vector<uint32_t> W = Asm.finalize();
  AlphaInst I = decode(W[0]);
  EXPECT_TRUE(I.isNop());
}
