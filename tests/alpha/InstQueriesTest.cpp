//===- tests/alpha/InstQueriesTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operand-role queries (inputs/outputs) that the translator's usage
/// analysis depends on, plus the classification predicates.
///
//===----------------------------------------------------------------------===//

#include "alpha/AlphaInst.h"
#include "alpha/Disasm.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

AlphaInst operate(Op O, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
  AlphaInst I;
  I.Op = O;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Rc = Rc;
  return I;
}

} // namespace

TEST(InstQueries, OperateRoles) {
  AlphaInst I = operate(Op::ADDQ, 1, 2, 3);
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(I.inputRegs(Ins), 2u);
  EXPECT_EQ(Ins[0], 1);
  EXPECT_EQ(Ins[1], 2);
  EXPECT_EQ(I.outputReg(), 3);
}

TEST(InstQueries, LiteralSkipsRb) {
  AlphaInst I = operate(Op::ADDQ, 1, 31, 3);
  I.HasLit = true;
  I.Lit = 7;
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(I.inputRegs(Ins), 1u);
  EXPECT_EQ(Ins[0], 1);
}

TEST(InstQueries, ZeroRegisterFiltered) {
  AlphaInst I = operate(Op::ADDQ, 31, 2, 31);
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(I.inputRegs(Ins), 1u);
  EXPECT_EQ(Ins[0], 2);
  EXPECT_EQ(I.outputReg(), -1);
}

TEST(InstQueries, CondMoveReadsOldDest) {
  AlphaInst I = operate(Op::CMOVEQ, 1, 2, 3);
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(I.inputRegs(Ins), 3u);
  EXPECT_EQ(Ins[2], 3);
  EXPECT_EQ(I.outputReg(), 3);
}

TEST(InstQueries, LoadStoreRoles) {
  AlphaInst L;
  L.Op = Op::LDQ;
  L.Ra = 3;
  L.Rb = 16;
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(L.inputRegs(Ins), 1u);
  EXPECT_EQ(Ins[0], 16);
  EXPECT_EQ(L.outputReg(), 3);

  AlphaInst S;
  S.Op = Op::STQ;
  S.Ra = 3;
  S.Rb = 16;
  EXPECT_EQ(S.inputRegs(Ins), 2u);
  EXPECT_EQ(Ins[0], 16);
  EXPECT_EQ(Ins[1], 3);
  EXPECT_EQ(S.outputReg(), -1);
}

TEST(InstQueries, ControlRoles) {
  AlphaInst B;
  B.Op = Op::BNE;
  B.Ra = 17;
  std::array<uint8_t, 3> Ins;
  EXPECT_EQ(B.inputRegs(Ins), 1u);
  EXPECT_EQ(B.outputReg(), -1);

  AlphaInst Bsr;
  Bsr.Op = Op::BSR;
  Bsr.Ra = 26;
  EXPECT_EQ(Bsr.inputRegs(Ins), 0u);
  EXPECT_EQ(Bsr.outputReg(), 26);

  AlphaInst Jsr;
  Jsr.Op = Op::JSR;
  Jsr.Ra = 26;
  Jsr.Rb = 27;
  EXPECT_EQ(Jsr.inputRegs(Ins), 1u);
  EXPECT_EQ(Ins[0], 27);
  EXPECT_EQ(Jsr.outputReg(), 26);
}

TEST(InstQueries, Predicates) {
  EXPECT_TRUE(isLoad(Op::LDBU));
  EXPECT_FALSE(isLoad(Op::LDA)); // Address formation, not a memory access.
  EXPECT_TRUE(isStore(Op::STW));
  EXPECT_TRUE(isCondBranch(Op::BLBS));
  EXPECT_TRUE(isDirectBranch(Op::BR));
  EXPECT_TRUE(isDirectBranch(Op::BSR));
  EXPECT_TRUE(isIndirectBranch(Op::RET));
  EXPECT_TRUE(isCall(Op::JSR));
  EXPECT_FALSE(isCall(Op::JMP));
  EXPECT_TRUE(isCondMove(Op::CMOVGT));
  EXPECT_TRUE(isMul(Op::UMULH));
  EXPECT_TRUE(isPei(Op::LDQ));
  EXPECT_TRUE(isPei(Op::STB));
  EXPECT_TRUE(isPei(Op::CALL_PAL));
  EXPECT_FALSE(isPei(Op::ADDQ));
  EXPECT_TRUE(isControl(Op::CALL_PAL));
  EXPECT_FALSE(isControl(Op::LDQ));
}

TEST(InstQueries, NopDetection) {
  EXPECT_TRUE(operate(Op::BIS, 31, 31, 31).isNop());
  EXPECT_TRUE(operate(Op::ADDQ, 1, 2, 31).isNop());
  EXPECT_FALSE(operate(Op::ADDQ, 1, 2, 3).isNop());
  AlphaInst Load;
  Load.Op = Op::LDQ;
  Load.Ra = 31;
  Load.Rb = 2;
  EXPECT_FALSE(Load.isNop()); // Prefetch: has a memory side effect.
}

TEST(InstQueries, DisasmSmoke) {
  AlphaInst I = operate(Op::SUBL, 17, 31, 17);
  I.HasLit = true;
  I.Lit = 1;
  EXPECT_EQ(disassemble(I, 0x1000), "subl r17, 1, r17");

  AlphaInst L;
  L.Op = Op::LDBU;
  L.Ra = 3;
  L.Rb = 16;
  EXPECT_EQ(disassemble(L, 0), "ldbu r3, 0[r16]");

  AlphaInst B;
  B.Op = Op::BNE;
  B.Ra = 17;
  B.Disp = -4;
  EXPECT_EQ(disassemble(B, 0x100C), "bne r17, 0x1000");

  AlphaInst R;
  R.Op = Op::RET;
  R.Rb = 26;
  EXPECT_EQ(disassemble(R, 0), "ret (r26)");
}
