//===- tests/alpha/DecoderTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encode/decode round-trip over every supported opcode (parameterized),
/// plus spot checks of real Alpha bit layouts.
///
//===----------------------------------------------------------------------===//

#include "alpha/Decoder.h"
#include "alpha/Encoder.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;

namespace {

AlphaInst makeRepresentative(Opcode Op) {
  const OpInfo &Info = getOpInfo(Op);
  AlphaInst Inst;
  Inst.Op = Op;
  switch (Info.Form) {
  case Format::Mem:
    Inst.Ra = 3;
    Inst.Rb = 16;
    Inst.Disp = -124;
    break;
  case Format::Branch:
    Inst.Ra = 17;
    Inst.Disp = -42;
    break;
  case Format::Operate:
    Inst.Ra = 1;
    Inst.Rb = 2;
    Inst.Rc = 3;
    break;
  case Format::Jump:
    Inst.Ra = 26;
    Inst.Rb = 27;
    Inst.JumpHint = 0x1234;
    break;
  case Format::Pal:
    Inst.PalFunc = PalGentrap;
    break;
  }
  return Inst;
}

bool sameDecoded(const AlphaInst &A, const AlphaInst &B) {
  return A.Op == B.Op && A.Ra == B.Ra && A.Rb == B.Rb && A.Rc == B.Rc &&
         A.HasLit == B.HasLit && A.Lit == B.Lit && A.Disp == B.Disp &&
         A.JumpHint == B.JumpHint && A.PalFunc == B.PalFunc;
}

class RoundTripTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RoundTripTest, EncodeDecodeIdentity) {
  Opcode Op = static_cast<Opcode>(GetParam());
  AlphaInst Inst = makeRepresentative(Op);
  AlphaInst Decoded = decode(encode(Inst));
  EXPECT_TRUE(sameDecoded(Inst, Decoded))
      << "opcode " << getMnemonic(Op);
}

TEST_P(RoundTripTest, LiteralFormRoundTrips) {
  Opcode Op = static_cast<Opcode>(GetParam());
  if (getOpInfo(Op).Form != Format::Operate)
    GTEST_SKIP() << "not an operate-format opcode";
  AlphaInst Inst;
  Inst.Op = Op;
  Inst.Ra = 5;
  Inst.HasLit = true;
  Inst.Lit = 0xAB;
  Inst.Rc = 7;
  AlphaInst Decoded = decode(encode(Inst));
  EXPECT_TRUE(sameDecoded(Inst, Decoded)) << getMnemonic(Op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTripTest,
                         ::testing::Range(0u, NumOpcodes),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return getMnemonic(
                               static_cast<Opcode>(Info.param));
                         });

TEST(Decoder, RealAlphaBitPatterns) {
  // addq r1, r2, r3: opcode 0x10, func 0x20.
  // 0x10 << 26 | 1 << 21 | 2 << 16 | 0x20 << 5 | 3
  AlphaInst I = decode(0x40220403u);
  EXPECT_EQ(I.Op, Opcode::ADDQ);
  EXPECT_EQ(I.Ra, 1);
  EXPECT_EQ(I.Rb, 2);
  EXPECT_EQ(I.Rc, 3);
  EXPECT_FALSE(I.HasLit);

  // lda r16, 8(r30): opcode 0x08.
  AlphaInst Lda = decode(0x08u << 26 | 16u << 21 | 30u << 16 | 8u);
  EXPECT_EQ(Lda.Op, Opcode::LDA);
  EXPECT_EQ(Lda.Ra, 16);
  EXPECT_EQ(Lda.Rb, 30);
  EXPECT_EQ(Lda.Disp, 8);

  // ret (r26): opcode 0x1A, type 2.
  AlphaInst Ret = decode(0x1Au << 26 | 31u << 21 | 26u << 16 | 2u << 14);
  EXPECT_EQ(Ret.Op, Opcode::RET);
  EXPECT_EQ(Ret.Rb, 26);
}

TEST(Decoder, NegativeDisplacements) {
  AlphaInst I = decode(0x29u << 26 | 1u << 21 | 2u << 16 | 0xFFF8u);
  EXPECT_EQ(I.Op, Opcode::LDQ);
  EXPECT_EQ(I.Disp, -8);

  // Backward branch: disp21 = -1.
  AlphaInst B = decode(0x3Du << 26 | 4u << 21 | 0x1FFFFFu);
  EXPECT_EQ(B.Op, Opcode::BNE);
  EXPECT_EQ(B.Disp, -1);
}

TEST(Decoder, UnknownWordsDecodeInvalid) {
  // Opcode 0x3 is not allocated in our subset.
  EXPECT_EQ(decode(0x3u << 26).Op, Opcode::Invalid);
  // Operate group with an unused function code.
  EXPECT_EQ(decode(0x10u << 26 | 0x7Fu << 5).Op, Opcode::Invalid);
}

TEST(Decoder, BranchTargetComputation) {
  AlphaInst B;
  B.Op = Opcode::BR;
  B.Disp = -3;
  EXPECT_EQ(B.branchTarget(0x1000), 0x1000 + 4 - 12u);
  B.Disp = 5;
  EXPECT_EQ(B.branchTarget(0x1000), 0x1000 + 4 + 20u);
}
