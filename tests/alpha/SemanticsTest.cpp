//===- tests/alpha/SemanticsTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alpha/Semantics.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;

TEST(Semantics, LongwordOpsSignExtend) {
  EXPECT_EQ(evalIntOp(Opcode::ADDL, 0x7FFFFFFF, 1), 0xFFFFFFFF80000000ull);
  EXPECT_EQ(evalIntOp(Opcode::SUBL, 0, 1), ~uint64_t(0));
  EXPECT_EQ(evalIntOp(Opcode::MULL, 0x10000, 0x10000), 0u);
  EXPECT_EQ(evalIntOp(Opcode::ADDL, 1, 2), 3u);
}

TEST(Semantics, QuadwordArithmetic) {
  EXPECT_EQ(evalIntOp(Opcode::ADDQ, ~uint64_t(0), 1), 0u);
  EXPECT_EQ(evalIntOp(Opcode::SUBQ, 5, 7), uint64_t(-2));
  EXPECT_EQ(evalIntOp(Opcode::MULQ, 1ull << 32, 1ull << 32), 0u);
  EXPECT_EQ(evalIntOp(Opcode::UMULH, 1ull << 32, 1ull << 32), 1u);
}

TEST(Semantics, ScaledAdds) {
  EXPECT_EQ(evalIntOp(Opcode::S4ADDQ, 3, 5), 17u);
  EXPECT_EQ(evalIntOp(Opcode::S8ADDQ, 3, 5), 29u);
  EXPECT_EQ(evalIntOp(Opcode::S4SUBQ, 3, 5), 7u);
  EXPECT_EQ(evalIntOp(Opcode::S8SUBQ, 3, 5), 19u);
  EXPECT_EQ(evalIntOp(Opcode::S4ADDL, 0x40000000, 0), 0u);
}

TEST(Semantics, Comparisons) {
  EXPECT_EQ(evalIntOp(Opcode::CMPEQ, 4, 4), 1u);
  EXPECT_EQ(evalIntOp(Opcode::CMPEQ, 4, 5), 0u);
  EXPECT_EQ(evalIntOp(Opcode::CMPLT, uint64_t(-1), 0), 1u);
  EXPECT_EQ(evalIntOp(Opcode::CMPULT, uint64_t(-1), 0), 0u);
  EXPECT_EQ(evalIntOp(Opcode::CMPLE, 3, 3), 1u);
  EXPECT_EQ(evalIntOp(Opcode::CMPULE, 4, 3), 0u);
}

TEST(Semantics, CmpBge) {
  // Byte-wise A >= B produces one mask bit per byte.
  EXPECT_EQ(evalIntOp(Opcode::CMPBGE, 0, 0), 0xFFu);
  EXPECT_EQ(evalIntOp(Opcode::CMPBGE, 0x00FF, 0x0100), 0xFDu);
  // The equality-scan idiom: cmpbge(0, x) marks zero bytes of x.
  EXPECT_EQ(evalIntOp(Opcode::CMPBGE, 0, 0x00FF00FF00FF00FFull), 0xAAu);
}

TEST(Semantics, Logicals) {
  EXPECT_EQ(evalIntOp(Opcode::AND, 0xF0F0, 0xFF00), 0xF000u);
  EXPECT_EQ(evalIntOp(Opcode::BIC, 0xF0F0, 0xFF00), 0x00F0u);
  EXPECT_EQ(evalIntOp(Opcode::BIS, 0xF0F0, 0x0F0F), 0xFFFFu);
  EXPECT_EQ(evalIntOp(Opcode::ORNOT, 0, 0xFFFFFFFFFFFFFFF0ull), 0xFull);
  EXPECT_EQ(evalIntOp(Opcode::XOR, 0xFF, 0x0F), 0xF0u);
  // EQV is XNOR: equal operands give all ones.
  EXPECT_EQ(evalIntOp(Opcode::EQV, 0xF0, 0xF0), ~uint64_t(0));
  EXPECT_EQ(evalIntOp(Opcode::EQV, 0, ~uint64_t(0)), 0u);
}

TEST(Semantics, Shifts) {
  EXPECT_EQ(evalIntOp(Opcode::SLL, 1, 63), 1ull << 63);
  EXPECT_EQ(evalIntOp(Opcode::SRL, 1ull << 63, 63), 1u);
  EXPECT_EQ(evalIntOp(Opcode::SRA, uint64_t(-8), 2), uint64_t(-2));
  EXPECT_EQ(evalIntOp(Opcode::SRA, 8, 2), 2u);
  // Shift counts use only the low 6 bits.
  EXPECT_EQ(evalIntOp(Opcode::SLL, 1, 64), 1u);
}

TEST(Semantics, ByteManipulation) {
  uint64_t V = 0x8877665544332211ull;
  EXPECT_EQ(evalIntOp(Opcode::EXTBL, V, 0), 0x11u);
  EXPECT_EQ(evalIntOp(Opcode::EXTBL, V, 3), 0x44u);
  EXPECT_EQ(evalIntOp(Opcode::EXTWL, V, 2), 0x4433u);
  EXPECT_EQ(evalIntOp(Opcode::INSBL, 0xAB, 2), 0xAB0000u);
  EXPECT_EQ(evalIntOp(Opcode::MSKBL, V, 1), 0x8877665544330011ull);
  EXPECT_EQ(evalIntOp(Opcode::ZAP, V, 0x0F), 0x8877665500000000ull);
  EXPECT_EQ(evalIntOp(Opcode::ZAPNOT, V, 0x0F), 0x44332211ull);
}

TEST(Semantics, SignExtensionAndCounts) {
  EXPECT_EQ(evalIntOp(Opcode::SEXTB, 0, 0x80), uint64_t(int64_t(-128)));
  EXPECT_EQ(evalIntOp(Opcode::SEXTW, 0, 0x8000), uint64_t(int64_t(-32768)));
  EXPECT_EQ(evalIntOp(Opcode::CTPOP, 0, 0xFF), 8u);
  EXPECT_EQ(evalIntOp(Opcode::CTLZ, 0, 1), 63u);
  EXPECT_EQ(evalIntOp(Opcode::CTLZ, 0, 0), 64u);
  EXPECT_EQ(evalIntOp(Opcode::CTTZ, 0, 0x8000), 15u);
  EXPECT_EQ(evalIntOp(Opcode::CTTZ, 0, 0), 64u);
}

TEST(Semantics, AddressFormation) {
  EXPECT_EQ(evalIntOp(Opcode::LDA, 0x1000, uint64_t(int64_t(-16))),
            0xFF0u);
  EXPECT_EQ(evalIntOp(Opcode::LDAH, 0x10, 2), 0x20010u);
}

TEST(Semantics, BranchConditions) {
  EXPECT_TRUE(evalBranchCond(Opcode::BEQ, 0));
  EXPECT_FALSE(evalBranchCond(Opcode::BEQ, 1));
  EXPECT_TRUE(evalBranchCond(Opcode::BNE, 5));
  EXPECT_TRUE(evalBranchCond(Opcode::BLT, uint64_t(-1)));
  EXPECT_FALSE(evalBranchCond(Opcode::BLT, 0));
  EXPECT_TRUE(evalBranchCond(Opcode::BLE, 0));
  EXPECT_TRUE(evalBranchCond(Opcode::BGT, 1));
  EXPECT_TRUE(evalBranchCond(Opcode::BGE, 0));
  EXPECT_TRUE(evalBranchCond(Opcode::BLBS, 3));
  EXPECT_TRUE(evalBranchCond(Opcode::BLBC, 2));
}

TEST(Semantics, CmovConditions) {
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVEQ, 0));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVNE, 1));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVLT, uint64_t(-2)));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVGE, 0));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVLE, 0));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVGT, 2));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVLBS, 1));
  EXPECT_TRUE(evalCmovCond(Opcode::CMOVLBC, 0));
}

TEST(Semantics, LoadExtension) {
  EXPECT_EQ(extendLoadedValue(Opcode::LDBU, 0xFF), 0xFFu);
  EXPECT_EQ(extendLoadedValue(Opcode::LDWU, 0xFFFF), 0xFFFFu);
  EXPECT_EQ(extendLoadedValue(Opcode::LDL, 0x80000000),
            0xFFFFFFFF80000000ull);
  EXPECT_EQ(extendLoadedValue(Opcode::LDL, 0x7FFFFFFF), 0x7FFFFFFFull);
  EXPECT_EQ(extendLoadedValue(Opcode::LDQ, ~uint64_t(0)), ~uint64_t(0));
}
