//===- tests/interp/InterpreterTrapTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precise trap reporting by the reference interpreter: architected state
/// must be exactly that of the trapping instruction's boundary.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "alpha/Assembler.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

struct TestProgram {
  GuestMemory Mem;
  std::unique_ptr<Interpreter> Interp;

  explicit TestProgram(Assembler &Asm) {
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
    Interp = std::make_unique<Interpreter>(Mem);
    Interp->state().Pc = Asm.baseAddr();
  }
};

} // namespace

TEST(InterpreterTrap, UnmappedLoad) {
  Assembler Asm(0x1000);
  Asm.movi(1, 1);
  Asm.loadImm(16, 0x900000); // unmapped
  Asm.ldq(2, 8, 16);
  Asm.movi(99, 3); // must not execute
  Asm.halt();
  TestProgram P(Asm);
  StepInfo Last = P.Interp->run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::MemUnmapped);
  EXPECT_EQ(Last.TrapInfo.MemAddr, 0x900008u);
  // Architected state is precise: r1 written, r3 not, PC at the load.
  EXPECT_EQ(P.Interp->state().readGpr(1), 1u);
  EXPECT_EQ(P.Interp->state().readGpr(3), 0u);
  EXPECT_EQ(P.Interp->state().Pc, Last.TrapInfo.Pc);
}

TEST(InterpreterTrap, MisalignedStore) {
  Assembler Asm(0x1000);
  Asm.loadImm(16, 0x20000);
  Asm.stq(1, 4, 16); // 8-byte store, 4-byte aligned
  Asm.halt();
  TestProgram P(Asm);
  P.Mem.mapRegion(0x20000, 0x1000);
  StepInfo Last = P.Interp->run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::MemUnaligned);
}

TEST(InterpreterTrap, Gentrap) {
  Assembler Asm(0x1000);
  Asm.movi(5, 1);
  Asm.gentrap();
  Asm.halt();
  TestProgram P(Asm);
  StepInfo Last = P.Interp->run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::Gentrap);
  EXPECT_EQ(Last.TrapInfo.Pc, 0x1004u);
  EXPECT_EQ(P.Interp->state().readGpr(1), 5u);
}

TEST(InterpreterTrap, IllegalInstruction) {
  GuestMemory Mem;
  Mem.poke32(0x1000, 0x3u << 26); // unallocated opcode
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x1000;
  StepInfo Last = Interp.step();
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::IllegalInst);
}

TEST(InterpreterTrap, FetchFault) {
  GuestMemory Mem;
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x5000; // nothing mapped
  StepInfo Last = Interp.step();
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::FetchFault);
}

TEST(InterpreterTrap, TrappedInstructionDoesNotRetire) {
  Assembler Asm(0x1000);
  Asm.gentrap();
  TestProgram P(Asm);
  P.Interp->step();
  EXPECT_EQ(P.Interp->retiredCount(), 0u);
}

TEST(InterpreterTrap, ResumableAfterMappingMemory) {
  Assembler Asm(0x1000);
  Asm.loadImm(16, 0x30000);
  Asm.ldq(2, 0, 16);
  Asm.halt();
  TestProgram P(Asm);
  StepInfo Last = P.Interp->run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  // "Handle" the fault by mapping the page, then resume.
  P.Mem.mapRegion(0x30000, 0x1000);
  Last = P.Interp->run(100);
  EXPECT_EQ(Last.Status, StepStatus::Halted);
}
