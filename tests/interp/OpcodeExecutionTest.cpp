//===- tests/interp/OpcodeExecutionTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end per-opcode integration: every operate-format opcode is
/// assembled (encode), fetched from guest memory (decode), and executed by
/// the interpreter, and the result must match the pure semantics — the
/// full encode -> decode -> execute pipeline for the whole operate ISA,
/// in both register and literal forms, over random operands.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "alpha/Semantics.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;

namespace {

class OpcodeExecution : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(OpcodeExecution, RegisterFormMatchesSemantics) {
  Opcode Op = static_cast<Opcode>(GetParam());
  const OpInfo &Info = getOpInfo(Op);
  if (Info.Form != Format::Operate)
    GTEST_SKIP() << "not operate-format";

  Rng Rand(GetParam() * 7919 + 3);
  for (int Trial = 0; Trial != 20; ++Trial) {
    uint64_t A = Rand.next(), B = Rand.next(), OldC = Rand.next();
    Assembler Asm(0x1000);
    Asm.operate(Op, 1, 2, 3);
    Asm.halt();
    GuestMemory Mem;
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(0x1000 + I * 4, Words[I]);
    Interpreter Interp(Mem);
    Interp.state().Pc = 0x1000;
    Interp.state().writeGpr(1, A);
    Interp.state().writeGpr(2, B);
    Interp.state().writeGpr(3, OldC);
    ASSERT_EQ(Interp.run(10).Status, StepStatus::Halted);

    uint64_t Expected;
    if (isCondMove(Op))
      Expected = evalCmovCond(Op, A) ? B : OldC;
    else
      Expected = evalIntOp(Op, A, B);
    EXPECT_EQ(Interp.state().readGpr(3), Expected)
        << getMnemonic(Op) << " A=" << A << " B=" << B;
  }
}

TEST_P(OpcodeExecution, LiteralFormMatchesSemantics) {
  Opcode Op = static_cast<Opcode>(GetParam());
  const OpInfo &Info = getOpInfo(Op);
  if (Info.Form != Format::Operate)
    GTEST_SKIP() << "not operate-format";

  Rng Rand(GetParam() * 104729 + 5);
  for (int Trial = 0; Trial != 20; ++Trial) {
    uint64_t A = Rand.next(), OldC = Rand.next();
    uint8_t Lit = uint8_t(Rand.nextBelow(256));
    Assembler Asm(0x1000);
    Asm.operatei(Op, 1, Lit, 3);
    Asm.halt();
    GuestMemory Mem;
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(0x1000 + I * 4, Words[I]);
    Interpreter Interp(Mem);
    Interp.state().Pc = 0x1000;
    Interp.state().writeGpr(1, A);
    Interp.state().writeGpr(3, OldC);
    ASSERT_EQ(Interp.run(10).Status, StepStatus::Halted);

    uint64_t Expected;
    if (isCondMove(Op))
      Expected = evalCmovCond(Op, A) ? Lit : OldC;
    else
      Expected = evalIntOp(Op, A, Lit);
    EXPECT_EQ(Interp.state().readGpr(3), Expected)
        << getMnemonic(Op) << " A=" << A << " lit=" << unsigned(Lit);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeExecution,
                         ::testing::Range(0u, NumOpcodes),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return getMnemonic(
                               static_cast<Opcode>(Info.param));
                         });
