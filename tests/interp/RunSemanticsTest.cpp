//===- tests/interp/RunSemanticsTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter run-loop semantics: the MaxSteps boundary, retired-count
/// accounting, precise-trap state and resumability, and decode-cache
/// behaviour. These are the contracts the VM's interpret/profile stage
/// and the trap-recovery path rely on.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

GuestMemory loadProgram(const Assembler &Asm, std::vector<uint32_t> Words) {
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
  return Mem;
}

/// Counting loop: r9 += 1, N iterations, then HALT.
Assembler makeCountLoop(unsigned Iters) {
  Assembler Asm(0x10000);
  Asm.loadImm(17, Iters);
  auto L = Asm.createLabel("l");
  Asm.bind(L);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, L);
  Asm.halt();
  return Asm;
}

} // namespace

TEST(RunSemantics, RunStopsExactlyAtMaxSteps) {
  Assembler Asm = makeCountLoop(100);
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  StepInfo Last = Interp.run(7);
  EXPECT_EQ(Last.Status, StepStatus::Ok); // Budget hit, not HALT.
  EXPECT_EQ(Interp.retiredCount(), 7u);
  // The next step continues from exactly where run() stopped.
  EXPECT_EQ(Interp.state().Pc, Last.NextPc);
}

TEST(RunSemantics, RunIsResumableToCompletion) {
  Assembler Asm = makeCountLoop(50);
  std::vector<uint32_t> Words = Asm.finalize();
  GuestMemory MemA = loadProgram(Asm, Words);
  GuestMemory MemB = loadProgram(Asm, Words);

  // One big run and many small runs must retire the same instruction
  // count and produce the same architected state.
  Interpreter Whole(MemA);
  Whole.state().Pc = 0x10000;
  StepInfo End = Whole.run(1'000'000);
  ASSERT_EQ(End.Status, StepStatus::Halted);

  Interpreter Chunked(MemB);
  Chunked.state().Pc = 0x10000;
  StepInfo Last;
  do {
    Last = Chunked.run(13);
  } while (Last.Status == StepStatus::Ok);
  ASSERT_EQ(Last.Status, StepStatus::Halted);

  EXPECT_EQ(Whole.retiredCount(), Chunked.retiredCount());
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Whole.state().readGpr(Reg), Chunked.state().readGpr(Reg))
        << "r" << Reg;
}

TEST(RunSemantics, TrapLeavesStateAtFaultingInstruction) {
  Assembler Asm(0x10000);
  Asm.operatei(Op::ADDQ, 9, 5, 9); // Retires.
  Asm.loadImm(16, 0x900000);       // Unmapped address.
  Asm.ldq(3, 0, 16);               // Traps.
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  StepInfo Last = Interp.run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::MemUnmapped);
  EXPECT_EQ(Last.TrapInfo.MemAddr, 0x900000u);
  // Precise: PC points at the faulting load, r3 unmodified, the ADDQ's
  // effect is visible.
  EXPECT_EQ(Interp.state().Pc, Last.TrapInfo.Pc);
  EXPECT_EQ(Interp.state().readGpr(3), 0u);
  EXPECT_EQ(Interp.state().readGpr(9), 5u);
}

TEST(RunSemantics, TrapDoesNotRetireAndIsResumableAfterMapping) {
  // The OS-style recovery pattern: map the faulting page and re-execute
  // the same instruction.
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x80000);
  Asm.ldq(3, 8, 16);
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  StepInfo Last = Interp.run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  uint64_t RetiredAtTrap = Interp.retiredCount();

  Mem.mapRegion(0x80000, 0x1000);
  Mem.poke64(0x80008, 0xDEADBEEFull);
  Last = Interp.run(100);
  ASSERT_EQ(Last.Status, StepStatus::Halted);
  EXPECT_EQ(Interp.state().readGpr(3), 0xDEADBEEFull);
  // The faulting attempt itself retired nothing; the re-execution did.
  EXPECT_GT(Interp.retiredCount(), RetiredAtTrap);
}

TEST(RunSemantics, UnalignedAccessTrapsPrecisely) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20001); // Odd address.
  Asm.ldq(3, 0, 16);
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Mem.mapRegion(0x20000, 0x1000);
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  StepInfo Last = Interp.run(100);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::MemUnaligned);
  EXPECT_EQ(Last.TrapInfo.MemAddr, 0x20001u);
}

TEST(RunSemantics, FetchFromUnmappedMemoryTraps) {
  GuestMemory Mem;
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x500000; // Nothing mapped there.
  StepInfo Last = Interp.step();
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  EXPECT_EQ(Last.TrapInfo.Kind, TrapKind::FetchFault);
  EXPECT_EQ(Interp.state().Pc, 0x500000u);
}

TEST(RunSemantics, DecodeCacheReturnsConsistentInstruction) {
  Assembler Asm = makeCountLoop(3);
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Interpreter Interp(Mem);
  const AlphaInst *First = Interp.decodeAt(0x10000);
  ASSERT_NE(First, nullptr);
  Opcode Op0 = First->Op;
  // Repeated decode of the same address yields the same decoded fields
  // (and, with the cache, the same storage).
  const AlphaInst *Second = Interp.decodeAt(0x10000);
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(Second, First);
  EXPECT_EQ(Second->Op, Op0);
}

TEST(RunSemantics, StepInfoReportsControlFlowOutcomes) {
  Assembler Asm = makeCountLoop(2);
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  bool SawTaken = false;
  bool SawNotTaken = false;
  for (;;) {
    StepInfo Info = Interp.step();
    if (Info.Status != StepStatus::Ok)
      break;
    if (Info.IsControl && Info.Inst.Op == Op::BNE) {
      if (Info.Taken) {
        SawTaken = true;
        EXPECT_NE(Info.NextPc, Info.Pc + 4);
      } else {
        SawNotTaken = true;
        EXPECT_EQ(Info.NextPc, Info.Pc + 4);
      }
    }
  }
  EXPECT_TRUE(SawTaken);    // First iteration branches back.
  EXPECT_TRUE(SawNotTaken); // Final iteration falls through.
}

TEST(RunSemantics, MemAddrReportedForLoadsAndStores) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20010);
  Asm.stq(9, 8, 16); // Effective address 0x20018.
  Asm.ldq(3, 8, 16);
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  Mem.mapRegion(0x20000, 0x1000);
  Interpreter Interp(Mem);
  Interp.state().Pc = 0x10000;
  std::vector<uint64_t> Addrs;
  for (;;) {
    StepInfo Info = Interp.step();
    if (Info.Status != StepStatus::Ok)
      break;
    if (Info.Inst.info().Kind == InstKind::Load ||
        Info.Inst.info().Kind == InstKind::Store)
      Addrs.push_back(Info.MemAddr);
  }
  ASSERT_EQ(Addrs.size(), 2u);
  EXPECT_EQ(Addrs[0], 0x20018u);
  EXPECT_EQ(Addrs[1], 0x20018u);
}
