//===- tests/interp/InterpreterTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "alpha/Assembler.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

/// Assembles a program into fresh guest memory and returns an interpreter
/// positioned at its entry.
struct TestProgram {
  GuestMemory Mem;
  std::unique_ptr<Interpreter> Interp;

  explicit TestProgram(Assembler &Asm, uint64_t DataRegion = 0) {
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
    if (DataRegion)
      Mem.mapRegion(DataRegion, 0x1000);
    Interp = std::make_unique<Interpreter>(Mem);
    Interp->state().Pc = Asm.baseAddr();
  }
};

} // namespace

TEST(Interpreter, StraightLineArithmetic) {
  Assembler Asm(0x1000);
  Asm.movi(7, 1);                     // r1 = 7
  Asm.operatei(Op::SLL, 1, 4, 2);     // r2 = 112
  Asm.operate(Op::ADDQ, 1, 2, 3);     // r3 = 119
  Asm.operatei(Op::SUBQ, 3, 19, 0);   // r0 = 100
  Asm.halt();
  TestProgram P(Asm);
  StepInfo Last = P.Interp->run(100);
  EXPECT_EQ(Last.Status, StepStatus::Halted);
  EXPECT_EQ(P.Interp->state().readGpr(0), 100u);
  EXPECT_EQ(P.Interp->retiredCount(), 5u);
}

TEST(Interpreter, ZeroRegisterReadsZeroAndDiscardsWrites) {
  Assembler Asm(0x1000);
  Asm.operatei(Op::ADDQ, 31, 9, 31); // write to r31 discarded
  Asm.operate(Op::ADDQ, 31, 31, 1);  // r1 = 0
  Asm.halt();
  TestProgram P(Asm);
  P.Interp->state().writeGpr(1, 55);
  P.Interp->run(10);
  EXPECT_EQ(P.Interp->state().readGpr(31), 0u);
  EXPECT_EQ(P.Interp->state().readGpr(1), 0u);
}

TEST(Interpreter, LoadsAndStores) {
  Assembler Asm(0x1000);
  Asm.loadImm(16, 0x20000);
  Asm.loadImm(1, 0x1122334455667788ll);
  Asm.stq(1, 0, 16);
  Asm.ldbu(2, 0, 16);  // 0x88
  Asm.ldwu(3, 2, 16);  // 0x5566
  Asm.ldl(4, 4, 16);   // sext(0x11223344)
  Asm.ldq(5, 0, 16);
  Asm.stb(2, 8, 16);
  Asm.stw(3, 10, 16);
  Asm.stl(4, 12, 16);
  Asm.halt();
  TestProgram P(Asm, 0x20000);
  EXPECT_EQ(P.Interp->run(100).Status, StepStatus::Halted);
  const ArchState &S = P.Interp->state();
  EXPECT_EQ(S.readGpr(2), 0x88u);
  EXPECT_EQ(S.readGpr(3), 0x5566u);
  EXPECT_EQ(S.readGpr(4), 0x11223344u);
  EXPECT_EQ(S.readGpr(5), 0x1122334455667788ull);
  EXPECT_EQ(P.Mem.load(0x20008, 1).Value, 0x88u);
  EXPECT_EQ(P.Mem.load(0x2000A, 2).Value, 0x5566u);
  EXPECT_EQ(P.Mem.load(0x2000C, 4).Value, 0x11223344u);
}

TEST(Interpreter, CountedLoop) {
  Assembler Asm(0x1000);
  Asm.movi(10, 1); // counter
  Asm.movi(0, 2);  // sum
  auto L = Asm.createLabel("loop");
  Asm.bind(L);
  Asm.operate(Op::ADDQ, 2, 1, 2);
  Asm.operatei(Op::SUBQ, 1, 1, 1);
  Asm.condBr(Op::BNE, 1, L);
  Asm.halt();
  TestProgram P(Asm);
  EXPECT_EQ(P.Interp->run(1000).Status, StepStatus::Halted);
  EXPECT_EQ(P.Interp->state().readGpr(2), 55u); // 10+9+...+1
}

TEST(Interpreter, ConditionalMove) {
  Assembler Asm(0x1000);
  Asm.movi(0, 1);                      // r1 = 0 (condition)
  Asm.movi(11, 2);                     // r2 = 11
  Asm.movi(22, 3);                     // r3 = 22
  Asm.operate(Op::CMOVEQ, 1, 2, 3);    // r1==0 -> r3 = 11
  Asm.movi(1, 4);
  Asm.operate(Op::CMOVEQ, 4, 2, 5);    // r4!=0 -> r5 unchanged (0)
  Asm.halt();
  TestProgram P(Asm);
  P.Interp->run(100);
  EXPECT_EQ(P.Interp->state().readGpr(3), 11u);
  EXPECT_EQ(P.Interp->state().readGpr(5), 0u);
}

TEST(Interpreter, CallAndReturn) {
  Assembler Asm(0x1000);
  auto Func = Asm.createLabel("func");
  Asm.bsr(26, Func);
  Asm.operatei(Op::ADDQ, 0, 1, 0); // after return: r0 = 42 + 1
  Asm.halt();
  Asm.bind(Func);
  Asm.movi(42, 0);
  Asm.ret(26);
  TestProgram P(Asm);
  EXPECT_EQ(P.Interp->run(100).Status, StepStatus::Halted);
  EXPECT_EQ(P.Interp->state().readGpr(0), 43u);
}

TEST(Interpreter, IndirectJumpThroughRegister) {
  Assembler Asm(0x1000);
  auto Target = Asm.createLabel("target");
  Asm.loadLabelAddr(27, Target);
  Asm.jmp(31, 27);
  Asm.movi(1, 0); // skipped
  Asm.halt();
  Asm.bind(Target);
  Asm.movi(9, 0);
  Asm.halt();
  TestProgram P(Asm);
  EXPECT_EQ(P.Interp->run(100).Status, StepStatus::Halted);
  EXPECT_EQ(P.Interp->state().readGpr(0), 9u);
}

TEST(Interpreter, JsrRecordsReturnAddress) {
  Assembler Asm(0x1000);
  auto Func = Asm.createLabel("func");
  Asm.loadLabelAddr(27, Func); // 2 insts
  Asm.jsr(26, 27);             // at 0x1008; ra = 0x100C
  Asm.halt();
  Asm.bind(Func);
  Asm.mov(26, 5);
  Asm.halt();
  TestProgram P(Asm);
  P.Interp->run(100);
  EXPECT_EQ(P.Interp->state().readGpr(5), 0x100Cu);
}

TEST(Interpreter, StepInfoControlFlags) {
  Assembler Asm(0x1000);
  auto L = Asm.createLabel("l");
  Asm.movi(1, 1);
  Asm.condBr(Op::BEQ, 1, L); // not taken
  Asm.bind(L);
  Asm.halt();
  TestProgram P(Asm);
  StepInfo I1 = P.Interp->step();
  EXPECT_FALSE(I1.IsControl);
  StepInfo I2 = P.Interp->step();
  EXPECT_TRUE(I2.IsControl);
  EXPECT_FALSE(I2.Taken);
  EXPECT_EQ(I2.NextPc, I2.Pc + 4);
}

TEST(Interpreter, MulAndUmulh) {
  Assembler Asm(0x1000);
  Asm.loadImm(1, int64_t(0x100000000ll));
  Asm.operate(Op::MULQ, 1, 1, 2);  // low 64 bits: 0
  Asm.operate(Op::UMULH, 1, 1, 3); // high 64 bits: 1
  Asm.halt();
  TestProgram P(Asm);
  P.Interp->run(100);
  EXPECT_EQ(P.Interp->state().readGpr(2), 0u);
  EXPECT_EQ(P.Interp->state().readGpr(3), 1u);
}

TEST(Interpreter, RunBudgetStopsCleanly) {
  Assembler Asm(0x1000);
  auto L = Asm.createLabel("forever");
  Asm.bind(L);
  Asm.operatei(Op::ADDQ, 1, 1, 1);
  Asm.br(L);
  TestProgram P(Asm);
  StepInfo Last = P.Interp->run(10);
  EXPECT_EQ(Last.Status, StepStatus::Ok);
  EXPECT_EQ(P.Interp->retiredCount(), 10u);
}
