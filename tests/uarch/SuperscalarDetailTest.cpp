//===- tests/uarch/SuperscalarDetailTest.cpp ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed behaviour of the out-of-order superscalar model: window (ROB)
/// occupancy limits, issue bandwidth, mispredict redirect cost, RAS depth,
/// and the idealized no-communication-latency property the paper assumes.
///
//===----------------------------------------------------------------------===//

#include "uarch/SuperscalarModel.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

TraceOp alu(unsigned I, uint8_t Src, uint8_t Dest) {
  TraceOp Op;
  Op.Class = OpClass::IntAlu;
  Op.Pc = 0x1000 + (I % 256) * 4;
  Op.NextPc = Op.Pc + 4;
  Op.Src1 = Src;
  Op.Dest = Dest;
  Op.VCredit = 1;
  return Op;
}

} // namespace

TEST(SuperscalarDetail, WindowSizeLimitsMlp) {
  // Independent long-latency loads: a big window overlaps their misses, a
  // tiny window serializes them (the paper calls the 128-entry window
  // idealistic for exactly this reason).
  auto Run = [&](unsigned Rob) {
    SuperscalarParams P;
    P.RobSize = Rob;
    SuperscalarModel M(P, false);
    M.beginSegment();
    for (unsigned I = 0; I != 4000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::Load;
      Op.Pc = 0x1000 + (I % 64) * 4;
      Op.NextPc = Op.Pc + 4;
      Op.MemAddr = 0x200000 + uint64_t(I) * 4096; // always misses
      Op.Dest = uint8_t(2 + I % 8);
      Op.VCredit = 1;
      M.consume(Op);
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t Small = Run(4);
  uint64_t Big = Run(128);
  EXPECT_GT(Small, Big * 3);
}

TEST(SuperscalarDetail, IssueWidthCapsIpc) {
  auto Run = [&](unsigned Width) {
    SuperscalarParams P;
    P.IssueWidth = Width;
    P.Width = Width;
    SuperscalarModel M(P, false);
    M.beginSegment();
    for (unsigned I = 0; I != 20000; ++I)
      M.consume(alu(I, NoTraceReg, uint8_t(2 + I % 8)));
    M.finish();
    return M.stats().ipc();
  };
  double W1 = Run(1);
  double W4 = Run(4);
  EXPECT_LT(W1, 1.05);
  EXPECT_GT(W4, W1 * 2.5);
}

TEST(SuperscalarDetail, RedirectLatencyCostsCycles) {
  // A stream of hard-to-predict branches: doubling the redirect latency
  // must increase cycles measurably.
  auto Run = [&](unsigned Redirect) {
    SuperscalarParams P;
    P.Front.RedirectLatency = Redirect;
    SuperscalarModel M(P, false);
    M.beginSegment();
    uint64_t Lfsr = 0xACE1;
    for (unsigned I = 0; I != 10000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::CondBr;
      Op.Pc = 0x1000 + (I % 128) * 4;
      Lfsr = (Lfsr >> 1) ^ (-(Lfsr & 1) & 0xB400); // pseudo-random dirs
      Op.Taken = Lfsr & 1;
      Op.NextPc = Op.Taken ? 0x8000 + (I % 128) * 4 : Op.Pc + 4;
      Op.VCredit = 1;
      M.consume(Op);
      M.consume(alu(I, NoTraceReg, 2));
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t Fast = Run(3);
  uint64_t Slow = Run(12);
  EXPECT_GT(Slow, Fast + Fast / 10);
}

TEST(SuperscalarDetail, RasDepthMattersForDeepRecursion) {
  // Nested calls deeper than the RAS: returns beyond the depth mispredict.
  auto Run = [&](unsigned RasEntries, unsigned Depth) {
    SuperscalarParams P;
    P.Front.RasEntries = RasEntries;
    SuperscalarModel M(P, true);
    M.beginSegment();
    for (unsigned Round = 0; Round != 200; ++Round) {
      // Call chain down...
      for (unsigned D = 0; D != Depth; ++D) {
        TraceOp Call;
        Call.Class = OpClass::DirectBr;
        Call.Pc = 0x1000 + D * 0x100;
        Call.Taken = true;
        Call.NextPc = 0x1000 + (D + 1) * 0x100;
        Call.RasPush = true;
        Call.VCredit = 1;
        M.consume(Call);
      }
      // ...and return chain up.
      for (unsigned D = Depth; D-- > 0;) {
        TraceOp Ret;
        Ret.Class = OpClass::Return;
        Ret.Pc = 0x1000 + (D + 1) * 0x100 + 0x40;
        Ret.Taken = true;
        Ret.NextPc = 0x1000 + D * 0x100 + 4;
        Ret.VCredit = 1;
        M.consume(Ret);
      }
    }
    M.finish();
    return M.frontEndStats().RasMispredicts;
  };
  EXPECT_EQ(Run(16, 8), 0u);  // fits: all returns predicted
  EXPECT_GT(Run(4, 8), 400u); // overflow: deep returns mispredict
}

TEST(SuperscalarDetail, StoresOffCriticalPath) {
  // Stores retire without stalling dependents on D-cache latency.
  auto Run = [&](bool Stores) {
    SuperscalarParams P;
    SuperscalarModel M(P, false);
    M.beginSegment();
    for (unsigned I = 0; I != 10000; ++I) {
      if (Stores) {
        TraceOp St;
        St.Class = OpClass::Store;
        St.Pc = 0x1000 + (I % 64) * 4;
        St.NextPc = St.Pc + 4;
        St.MemAddr = 0x300000 + (I % 512) * 8;
        St.Src1 = 2;
        St.VCredit = 1;
        M.consume(St);
      } else {
        M.consume(alu(I, 2, NoTraceReg));
      }
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t WithStores = Run(true);
  uint64_t WithAlus = Run(false);
  // Stores cost no more than ~equivalent single-cycle operations.
  EXPECT_LT(WithStores, WithAlus + WithAlus / 4);
}
