//===- tests/uarch/CacheTest.cpp ------------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/Cache.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

CacheParams smallCache() {
  CacheParams P;
  P.LineBytes = 64;
  P.Assoc = 2;
  P.SizeBytes = 1024; // 8 sets x 2 ways.
  P.HitLatency = 2;
  P.RandomRepl = false;
  return P;
}

} // namespace

TEST(Cache, MissThenHit) {
  Cache C(smallCache());
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x103F)); // same line
  EXPECT_FALSE(C.access(0x1040)); // next line
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(Cache, LruEviction) {
  Cache C(smallCache());
  // Three lines mapping to the same set (stride = sets * line = 512).
  C.access(0x0000);
  C.access(0x0200);
  C.access(0x0000); // refresh LRU of line 0
  C.access(0x0400); // evicts 0x0200
  EXPECT_TRUE(C.probe(0x0000));
  EXPECT_FALSE(C.probe(0x0200));
  EXPECT_TRUE(C.probe(0x0400));
}

TEST(Cache, Invalidate) {
  Cache C(smallCache());
  C.access(0x1000);
  C.invalidate(0x1000);
  EXPECT_FALSE(C.probe(0x1000));
}

TEST(Cache, DirectMappedConflicts) {
  CacheParams P = smallCache();
  P.Assoc = 1; // 16 sets.
  Cache C(P);
  C.access(0x0000);
  C.access(0x0400); // same set (stride 1024), direct-mapped: evicts
  EXPECT_FALSE(C.probe(0x0000));
}

TEST(Cache, CapacityWorks) {
  Cache C(smallCache());
  // Fill the whole 1KB cache, then re-touch: all hits.
  for (uint64_t A = 0; A < 1024; A += 64)
    C.access(A);
  for (uint64_t A = 0; A < 1024; A += 64)
    EXPECT_TRUE(C.access(A));
}

TEST(Cache, RandomReplacementStillCaches) {
  CacheParams P = smallCache();
  P.RandomRepl = true;
  Cache C(P, /*Seed=*/5);
  C.access(0x2000);
  EXPECT_TRUE(C.access(0x2000));
}

TEST(MemorySide, LatencyComposition) {
  MemoryParams P;
  P.L2.SizeBytes = 4096;
  P.L2.Assoc = 2;
  P.L2.LineBytes = 128;
  P.L2.HitLatency = 8;
  P.MemLatency = 76;
  MemorySide M(P);
  // First touch: L2 miss -> 8 + 76.
  EXPECT_EQ(M.missLatency(0x8000), 84u);
  // Second touch of the same line: L2 hit -> 8.
  EXPECT_EQ(M.missLatency(0x8000), 8u);
}
