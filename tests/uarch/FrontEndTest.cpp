//===- tests/uarch/FrontEndTest.cpp ---------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/FrontEnd.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

TraceOp alu(uint64_t Pc) {
  TraceOp Op;
  Op.Class = OpClass::IntAlu;
  Op.Pc = Pc;
  Op.NextPc = Pc + 4;
  return Op;
}

TraceOp condBr(uint64_t Pc, bool Taken, uint64_t Target) {
  TraceOp Op;
  Op.Class = OpClass::CondBr;
  Op.Pc = Pc;
  Op.Taken = Taken;
  Op.NextPc = Taken ? Target : Pc + 4;
  return Op;
}

struct FrontEndFixture {
  MemoryParams MemParams;
  MemorySide Mem{MemParams};
  FrontEndParams Params;
  FrontEnd FE;

  explicit FrontEndFixture(bool Ras = false) : FE(Params, Mem, Ras) {
    FE.startSegment(0);
  }
};

} // namespace

TEST(FrontEnd, FetchBandwidthFourPerCycle) {
  FrontEndFixture F;
  // Warm the I-cache line first.
  (void)F.FE.next(alu(0x1000));
  uint64_t Base = F.FE.fetchCycle();
  uint64_t Cycles[8];
  for (int I = 0; I != 8; ++I) {
    F.FE.next(alu(0x1004 + I * 4));
    Cycles[I] = F.FE.fetchCycle();
  }
  // Eight sequential ALU ops need at least two more cycles at width 4.
  EXPECT_GE(Cycles[7], Base + 2);
}

TEST(FrontEnd, TakenBranchBreaksFetch) {
  FrontEndFixture F;
  // Train the predictor and BTB first (gshare history must settle).
  TraceOp B = condBr(0x1004, true, 0x1000);
  for (int I = 0; I != 20; ++I) {
    FrontEnd::Fetched R = F.FE.next(B);
    if (R.NeedResolveRedirect)
      F.FE.redirect(F.FE.fetchCycle());
    (void)F.FE.next(alu(0x1000));
  }
  FrontEnd::Fetched R = F.FE.next(B);
  ASSERT_FALSE(R.NeedResolveRedirect); // fully predicted now
  uint64_t After = F.FE.fetchCycle();
  (void)F.FE.next(alu(0x1000));
  // The correctly predicted taken branch still ends the fetch cycle.
  EXPECT_GT(F.FE.fetchCycle(), After);
}

TEST(FrontEnd, CondMispredictNeedsRedirect) {
  FrontEndFixture F;
  // Counters initialize weakly-not-taken: a taken branch mispredicts.
  FrontEnd::Fetched R = F.FE.next(condBr(0x2000, true, 0x3000));
  EXPECT_TRUE(R.NeedResolveRedirect);
  uint64_t Before = F.FE.fetchCycle();
  F.FE.redirect(Before + 50);
  EXPECT_EQ(F.FE.fetchCycle(), Before + 50 + F.Params.RedirectLatency);
  EXPECT_EQ(F.FE.stats().CondMispredicts, 1u);
}

TEST(FrontEnd, PredictedBranchNoRedirect) {
  FrontEndFixture F;
  // Train taken until the 12-bit global history saturates with this
  // branch's outcomes (each new history indexes a fresh counter).
  for (int I = 0; I != 20; ++I) {
    FrontEnd::Fetched R = F.FE.next(condBr(0x2000, true, 0x3000));
    if (R.NeedResolveRedirect)
      F.FE.redirect(F.FE.fetchCycle());
  }
  FrontEnd::Fetched R = F.FE.next(condBr(0x2000, true, 0x3000));
  EXPECT_FALSE(R.NeedResolveRedirect);
}

TEST(FrontEnd, IndirectTargetMispredict) {
  FrontEndFixture F;
  TraceOp J;
  J.Class = OpClass::Indirect;
  J.Pc = 0x4000;
  J.Taken = true;
  J.NextPc = 0x5000;
  FrontEnd::Fetched R1 = F.FE.next(J);
  EXPECT_TRUE(R1.NeedResolveRedirect); // BTB cold
  F.FE.redirect(F.FE.fetchCycle() + 1);
  FrontEnd::Fetched R2 = F.FE.next(J);
  EXPECT_FALSE(R2.NeedResolveRedirect); // BTB learned
  EXPECT_EQ(F.FE.stats().TargetMispredicts, 1u);
}

TEST(FrontEnd, ConventionalRasPredictsReturns) {
  FrontEndFixture F(/*Ras=*/true);
  TraceOp Call;
  Call.Class = OpClass::DirectBr;
  Call.Pc = 0x1000;
  Call.Taken = true;
  Call.NextPc = 0x8000;
  Call.RasPush = true;
  (void)F.FE.next(Call);

  TraceOp Ret;
  Ret.Class = OpClass::Return;
  Ret.Pc = 0x8010;
  Ret.Taken = true;
  Ret.NextPc = 0x1004; // matches the pushed return address
  FrontEnd::Fetched R = F.FE.next(Ret);
  EXPECT_FALSE(R.NeedResolveRedirect);
  EXPECT_EQ(F.FE.stats().RasMispredicts, 0u);

  // A return to somewhere else mispredicts (stack now empty).
  FrontEnd::Fetched R2 = F.FE.next(Ret);
  EXPECT_TRUE(R2.NeedResolveRedirect);
  EXPECT_EQ(F.FE.stats().RasMispredicts, 1u);
}

TEST(FrontEnd, DualRasResolvedExternally) {
  FrontEndFixture F(/*Ras=*/false);
  TraceOp Ret;
  Ret.Class = OpClass::Return;
  Ret.Pc = 0x9000;
  Ret.Taken = true;
  Ret.NextPc = 0x1234;
  Ret.RasHitKnown = true;
  Ret.RasHit = true;
  EXPECT_FALSE(F.FE.next(Ret).NeedResolveRedirect);
  Ret.RasHit = false;
  EXPECT_TRUE(F.FE.next(Ret).NeedResolveRedirect);
  EXPECT_EQ(F.FE.stats().RasMispredicts, 1u);
}

TEST(FrontEnd, ICacheMissStallsFetch) {
  FrontEndFixture F;
  (void)F.FE.next(alu(0x100000));
  uint64_t C1 = F.FE.fetchCycle();
  // Far line: compulsory I-cache miss adds L2+memory latency.
  (void)F.FE.next(alu(0x200000));
  EXPECT_GT(F.FE.fetchCycle(), C1 + 50);
  EXPECT_EQ(F.FE.stats().ICacheMisses, 2u);
}
